package protoobf

import (
	"protoobf/internal/gateway"
	"protoobf/internal/session"
)

// Gateway is a multi-process routing front: it accepts raw protoobf
// streams, peeks the single control frame a stream leads with, and
// routes the connection to a backend process — fresh dials round-robin
// across the fleet, resuming sessions to the backend that owns their
// dialect family (or to any backend, which restores the family from
// the ticket plus the shared artifact cache). After routing it splices
// bytes; it never holds dialect state of its own. See internal/gateway.
type Gateway = gateway.Gateway

// GatewayConfig configures NewGateway.
type GatewayConfig = gateway.Config

// GatewayStats is a point-in-time snapshot of a gateway's routing
// counters.
type GatewayStats = gateway.Stats

// Backend names one routable backend process of a gateway registry.
type Backend = gateway.Backend

// Registry is a gateway's routing table: live backends plus the bounded
// map of which backend last served each rekeyed dialect family.
type Registry = gateway.Registry

// NewRegistry builds an empty backend registry. ownerCap bounds the
// family-owner map (0 means a 65536-family default).
func NewRegistry(ownerCap int) *Registry { return gateway.NewRegistry(ownerCap) }

// NewGateway builds a routing gateway from cfg. The registry is
// required; an Opener (SeedOpener, or Endpoint.TicketOpener when the
// gateway process also compiles the family) lets it authenticate and
// family-route resumes, and a ReplayCache (NewReplayCache) makes
// tickets single-use fleet-wide at the front door.
func NewGateway(cfg GatewayConfig) (*Gateway, error) { return gateway.New(cfg) }

// SeedOpener builds a ticket opener from the fleet's base master seed —
// what a standalone gateway process, which never compiles a spec,
// authenticates resumption tickets with.
func SeedOpener(seed int64) session.TicketOpener { return gateway.SeedOpener(seed) }

// NewReplayCache builds a single-use ticket cache remembering up to
// capacity recently presented tickets (capacity <= 0 means the default
// window of 4096). Hand one to a GatewayConfig to reject fleet-wide
// ticket replays at the gateway.
func NewReplayCache(capacity int) *session.ReplayCache {
	return session.NewReplayCache(capacity)
}

// InspectTicket verifies a resumption ticket and reports its epoch and
// dialect family without building a session — the routing peek a
// gateway performs on each resume stream.
func InspectTicket(o session.TicketOpener, ticket []byte) (session.TicketInfo, error) {
	return session.InspectTicket(o, ticket)
}

// TicketOpener verifies sealed resumption tickets; see SeedOpener and
// Endpoint.TicketOpener.
type TicketOpener = session.TicketOpener

// TicketInfo is what InspectTicket learns from a ticket: the epoch it
// was exported at and, for rekeyed sessions, the dialect family seed
// that routing keys on.
type TicketInfo = session.TicketInfo
