module protoobf

go 1.22
