// Package protoobf is a Go implementation of specification-based protocol
// obfuscation (Duchêne, Alata, Nicomette, Kaâniche, Le Guernic:
// "Specification-based Protocol Obfuscation", DSN 2018).
//
// The framework obfuscates a communication protocol at the level of its
// message-format specification. The specification is compiled into a
// message format graph; invertible generic transformations (SplitAdd,
// SplitCat, ConstXor, BoundaryChange, PadInsert, ReadFromEnd, TabSplit,
// RepSplit, ChildMove, ...) are applied randomly to the graph; and the
// framework derives both a runtime serializer/parser and the Go source
// code of a standalone protocol library for the transformed format.
//
// Aggregation transformations execute inside the field setters and
// getters, ordering transformations during serialization, so the plain
// message never exists contiguously in process memory — which is what
// makes probe placement and classic protocol reverse engineering hard
// (the paper's §II-C challenges).
//
// # Quick start
//
//	proto, err := protoobf.Compile(mySpec, protoobf.Options{PerNode: 2, Seed: 42})
//	msg := proto.NewMessage()
//	s := msg.Scope()
//	_ = s.SetUint("txid", 7)
//	wireBytes, err := proto.Serialize(msg)
//	back, err := proto.Parse(wireBytes)
//
// Both communicating peers must be built from the same (spec, seed,
// options) triple; Compile is deterministic, so re-generating the
// library at regular intervals with a fresh seed yields a new protocol
// version without touching application code (paper §I).
package protoobf

import (
	"io"
	"net"
	"time"

	"protoobf/internal/core"
	"protoobf/internal/graph"
	"protoobf/internal/msgtree"
	"protoobf/internal/session"
	"protoobf/internal/session/sched"
	"protoobf/internal/transform"
)

// Protocol is a compiled, possibly obfuscated message format. See
// internal/core for the orchestration details.
type Protocol = core.Protocol

// Options selects the obfuscation workload.
type Options = core.ObfuscationOptions

// Message is a message AST under construction or parsed.
type Message = msgtree.Message

// Scope is the accessor cursor used to set and get fields by their
// original specification names.
type Scope = msgtree.Scope

// Graph is a message format graph (advanced use: inspection, custom
// transformation pipelines).
type Graph = graph.Graph

// Rotation derives deterministic protocol versions per epoch, the
// deployment model of the paper's conclusion (new obfuscated versions at
// regular intervals).
type Rotation = core.Rotation

// Compile parses a message-format specification and applies the
// requested obfuscation. The specification language is documented in
// internal/spec.
func Compile(source string, opts Options) (*Protocol, error) {
	return core.Compile(source, opts)
}

// NewRotation prepares an epoch-keyed family of protocol versions for
// the same specification. Peers sharing (spec, options) agree on every
// epoch's dialect without further coordination.
func NewRotation(source string, opts Options) (*Rotation, error) {
	return core.NewRotation(source, opts)
}

// TransformNames lists the generic transformations of the catalog
// (table I of the paper), usable in Options.Only / Options.Exclude.
func TransformNames() []string {
	var out []string
	for _, t := range transform.Catalog() {
		out = append(out, t.Name())
	}
	return out
}

// Session is an obfuscated message session over a live byte stream: each
// frame is tagged with its dialect epoch outside the obfuscated payload,
// and the dialect rotates mid-session — on a wall-clock schedule, by
// explicit Rotate/Advance calls, or by following the peer. Sessions can
// also rekey in-band (Session.Rekey or SessionOptions.RekeyEvery),
// switching the whole dialect family to a fresh obfuscation seed. See
// internal/session.
type Session = session.Conn

// Schedule derives dialect epochs from coarse wall-clock time: epoch e
// spans [genesis + e*interval, genesis + (e+1)*interval). Peers sharing
// (genesis, interval) converge on the same epoch — and therefore the
// same dialect — from their own clocks, with no coordination even after
// a partition. The clock is injectable (WithClock) for tests and
// simulations.
type Schedule = sched.Scheduler

// NewSchedule returns a wall-clock epoch schedule ticking every interval
// from genesis. It panics if interval is not positive.
func NewSchedule(genesis time.Time, interval time.Duration) *Schedule {
	return sched.New(genesis, interval)
}

// SessionOptions configures the rotation control plane of a session. The
// zero value gives a manually rotated session with default bounds.
type SessionOptions struct {
	// Schedule, when non-nil, advances the session's epoch from
	// wall-clock time (see Schedule). Nil means epochs move only via
	// Rotate/Advance or by following the peer.
	Schedule *Schedule

	// RekeyEvery, when nonzero, proposes an in-band rekey — a fresh
	// master seed for the dialect family, exchanged as a masked control
	// frame and acknowledged before either side uses it — every
	// RekeyEvery epochs. A rekeying session mutates its Rotation, so the
	// session must own the Rotation exclusively; do not share one
	// Rotation across rekey-enabled connections.
	RekeyEvery uint64

	// CacheWindow bounds how many compiled dialect epochs the session
	// (and its Rotation) keeps: 0 means the defaults, negative means
	// unbounded. Evicted epochs recompile deterministically on demand,
	// so the window keeps long-lived sessions at O(window) memory.
	CacheWindow int
}

// NewSession opens a session over rw speaking the epoch-keyed dialect
// family of rot. Both peers must share the rotation's (spec, options).
func NewSession(rw io.ReadWriter, rot *Rotation) (*Session, error) {
	return session.NewConn(rw, rot)
}

// NewSessionWith opens a session over rw with an explicit control-plane
// configuration: wall-clock scheduled rotation, periodic in-band
// rekeying, and a bounded dialect cache. A CacheWindow also bounds rot's
// compiled-version cache.
func NewSessionWith(rw io.ReadWriter, rot *Rotation, opts SessionOptions) (*Session, error) {
	if opts.CacheWindow != 0 {
		rot.Bound(opts.CacheWindow)
	}
	return session.NewConnOpts(rw, rot, session.Options{
		Schedule:    opts.Schedule,
		RekeyEvery:  opts.RekeyEvery,
		CacheWindow: opts.CacheWindow,
	})
}

// NewStaticSession opens a session over rw that speaks a single fixed
// protocol in every epoch (session framing without dialect rotation).
func NewStaticSession(rw io.ReadWriter, p *Protocol) (*Session, error) {
	return session.NewConn(rw, session.Fixed(p.Graph))
}

// NewSessionPair connects two in-memory session peers, each compiled
// independently from the same (spec, options) — exactly how deployed
// peers agree on every epoch's dialect without coordination (§VIII).
func NewSessionPair(source string, opts Options) (*Session, *Session, error) {
	return NewSessionPairWith(source, opts, SessionOptions{})
}

// NewSessionPairWith is NewSessionPair with a control-plane
// configuration applied to both peers (each still owns an independent
// Rotation, as deployed peers would).
func NewSessionPairWith(source string, opts Options, sopts SessionOptions) (*Session, *Session, error) {
	a, err := core.NewRotation(source, opts)
	if err != nil {
		return nil, nil, err
	}
	b, err := core.NewRotation(source, opts)
	if err != nil {
		return nil, nil, err
	}
	if sopts.CacheWindow != 0 {
		a.Bound(sopts.CacheWindow)
		b.Bound(sopts.CacheWindow)
	}
	o := session.Options{
		Schedule:    sopts.Schedule,
		RekeyEvery:  sopts.RekeyEvery,
		CacheWindow: sopts.CacheWindow,
	}
	return session.PairOpts(a, b, o, o)
}

// DialSession connects to addr over TCP and opens a session speaking
// rot's dialect family.
func DialSession(addr string, rot *Rotation) (*Session, net.Conn, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, nil, err
	}
	s, err := session.NewConn(conn, rot)
	if err != nil {
		conn.Close()
		return nil, nil, err
	}
	return s, conn, nil
}
