// Package protoobf is a Go implementation of specification-based protocol
// obfuscation (Duchêne, Alata, Nicomette, Kaâniche, Le Guernic:
// "Specification-based Protocol Obfuscation", DSN 2018).
//
// The framework obfuscates a communication protocol at the level of its
// message-format specification. The specification is compiled into a
// message format graph; invertible generic transformations (SplitAdd,
// SplitCat, ConstXor, BoundaryChange, PadInsert, ReadFromEnd, TabSplit,
// RepSplit, ChildMove, ...) are applied randomly to the graph; and the
// framework derives both a runtime serializer/parser and the Go source
// code of a standalone protocol library for the transformed format.
//
// Aggregation transformations execute inside the field setters and
// getters, ordering transformations during serialization, so the plain
// message never exists contiguously in process memory — which is what
// makes probe placement and classic protocol reverse engineering hard
// (the paper's §II-C challenges).
//
// # Quick start
//
// One-shot message work — compile a dialect, build, serialize, parse:
//
//	proto, err := protoobf.Compile(mySpec, protoobf.Options{PerNode: 2, Seed: 42})
//	msg := proto.NewMessage()
//	s := msg.Scope()
//	_ = s.SetUint("txid", 7)
//	wireBytes, err := proto.Serialize(msg)
//	back, err := proto.Parse(wireBytes)
//
// Live traffic — compile the dialect family once into an Endpoint and
// mint any number of concurrent sessions from it (the paper's §VIII
// deployment model: one compiled family, many peers, a new dialect
// every epoch):
//
//	ep, err := protoobf.NewEndpoint(mySpec, protoobf.Options{PerNode: 2, Seed: 42},
//	    protoobf.WithSchedule(protoobf.NewSchedule(genesis, time.Hour)))
//	ln, err := ep.Listen("tcp", ":9000")
//	for {
//	    sess, err := ln.Accept() // a ready session; sess.Close() when done
//	    ...
//	}
//
// Both communicating peers must be built from the same (spec, seed,
// options) triple; compilation is deterministic, so every peer derives
// the same dialect for every epoch with no coordination (paper §I).
package protoobf

import (
	"io"
	"time"

	"protoobf/internal/core"
	"protoobf/internal/graph"
	"protoobf/internal/msgtree"
	"protoobf/internal/session"
	"protoobf/internal/session/sched"
	"protoobf/internal/transform"
)

// Protocol is a compiled, possibly obfuscated message format. See
// internal/core for the orchestration details.
type Protocol = core.Protocol

// Options selects the obfuscation workload.
type Options = core.ObfuscationOptions

// Message is a message AST under construction or parsed.
type Message = msgtree.Message

// Scope is the accessor cursor used to set and get fields by their
// original specification names.
type Scope = msgtree.Scope

// Graph is a message format graph (advanced use: inspection, custom
// transformation pipelines).
type Graph = graph.Graph

// Rotation derives deterministic protocol versions per epoch, the
// deployment model of the paper's conclusion (new obfuscated versions at
// regular intervals). Endpoint is the usual owner of a Rotation; direct
// use remains for inspection and custom pipelines.
type Rotation = core.Rotation

// ErrSharedRekey is returned by the deprecated session constructors when
// a rekey-enabled Rotation would be shared across sessions — a sharing
// pattern that silently corrupts the seed family. Sessions minted from
// an Endpoint rekey independently and never hit this.
var ErrSharedRekey = core.ErrSharedRekey

// Compile parses a message-format specification and applies the
// requested obfuscation. The specification language is documented in
// internal/spec.
func Compile(source string, opts Options) (*Protocol, error) {
	return core.Compile(source, opts)
}

// NewRotation prepares an epoch-keyed family of protocol versions for
// the same specification. Peers sharing (spec, options) agree on every
// epoch's dialect without further coordination. Most callers want
// NewEndpoint instead, which owns a Rotation and mints share-safe
// sessions from it.
func NewRotation(source string, opts Options) (*Rotation, error) {
	return core.NewRotation(source, opts)
}

// TransformNames lists the generic transformations of the catalog
// (table I of the paper), usable in Options.Only / Options.Exclude.
func TransformNames() []string {
	var out []string
	for _, t := range transform.Catalog() {
		out = append(out, t.Name())
	}
	return out
}

// Session is an obfuscated message session over a live byte stream: each
// frame is tagged with its dialect epoch outside the obfuscated payload,
// and the dialect rotates mid-session — on a wall-clock schedule, by
// explicit Rotate/Advance calls, or by following the peer. Sessions can
// also rekey in-band (Session.Rekey, WithRekeyEvery on the epoch clock,
// WithRekeyAfterBytes on traffic volume), switching the whole dialect
// family to a fresh obfuscation seed — and they survive the connection
// they run on: Session.Export seals the resumable state into an opaque
// ticket, and Endpoint.Resume/DialResume reconstruct the session on a
// brand-new byte stream, rekeyed family and all. Sessions are minted
// from an Endpoint; see internal/session for the transport details.
type Session = session.Conn

// Schedule derives dialect epochs from coarse wall-clock time: epoch e
// spans [genesis + e*interval, genesis + (e+1)*interval). Peers sharing
// (genesis, interval) converge on the same epoch — and therefore the
// same dialect — from their own clocks, with no coordination even after
// a partition. The clock is injectable (WithClock) for tests and
// simulations.
type Schedule = sched.Scheduler

// NewSchedule returns a wall-clock epoch schedule ticking every interval
// from genesis. It panics if interval is not positive.
func NewSchedule(genesis time.Time, interval time.Duration) *Schedule {
	return sched.New(genesis, interval)
}

// Pipe returns the two ends of a buffered in-memory duplex stream —
// the in-process stand-in for a network connection in tests, examples
// and benchmarks. Unlike net.Pipe it is buffered, so one goroutine can
// Send on a session over one end and then Recv on the session over the
// other.
func Pipe() (io.ReadWriteCloser, io.ReadWriteCloser) {
	return session.NewDuplex()
}
