// Package protoobf is a Go implementation of specification-based protocol
// obfuscation (Duchêne, Alata, Nicomette, Kaâniche, Le Guernic:
// "Specification-based Protocol Obfuscation", DSN 2018).
//
// The framework obfuscates a communication protocol at the level of its
// message-format specification. The specification is compiled into a
// message format graph; invertible generic transformations (SplitAdd,
// SplitCat, ConstXor, BoundaryChange, PadInsert, ReadFromEnd, TabSplit,
// RepSplit, ChildMove, ...) are applied randomly to the graph; and the
// framework derives both a runtime serializer/parser and the Go source
// code of a standalone protocol library for the transformed format.
//
// Aggregation transformations execute inside the field setters and
// getters, ordering transformations during serialization, so the plain
// message never exists contiguously in process memory — which is what
// makes probe placement and classic protocol reverse engineering hard
// (the paper's §II-C challenges).
//
// # Quick start
//
//	proto, err := protoobf.Compile(mySpec, protoobf.Options{PerNode: 2, Seed: 42})
//	msg := proto.NewMessage()
//	s := msg.Scope()
//	_ = s.SetUint("txid", 7)
//	wireBytes, err := proto.Serialize(msg)
//	back, err := proto.Parse(wireBytes)
//
// Both communicating peers must be built from the same (spec, seed,
// options) triple; Compile is deterministic, so re-generating the
// library at regular intervals with a fresh seed yields a new protocol
// version without touching application code (paper §I).
package protoobf

import (
	"io"
	"net"

	"protoobf/internal/core"
	"protoobf/internal/graph"
	"protoobf/internal/msgtree"
	"protoobf/internal/session"
	"protoobf/internal/transform"
)

// Protocol is a compiled, possibly obfuscated message format. See
// internal/core for the orchestration details.
type Protocol = core.Protocol

// Options selects the obfuscation workload.
type Options = core.ObfuscationOptions

// Message is a message AST under construction or parsed.
type Message = msgtree.Message

// Scope is the accessor cursor used to set and get fields by their
// original specification names.
type Scope = msgtree.Scope

// Graph is a message format graph (advanced use: inspection, custom
// transformation pipelines).
type Graph = graph.Graph

// Rotation derives deterministic protocol versions per epoch, the
// deployment model of the paper's conclusion (new obfuscated versions at
// regular intervals).
type Rotation = core.Rotation

// Compile parses a message-format specification and applies the
// requested obfuscation. The specification language is documented in
// internal/spec.
func Compile(source string, opts Options) (*Protocol, error) {
	return core.Compile(source, opts)
}

// NewRotation prepares an epoch-keyed family of protocol versions for
// the same specification. Peers sharing (spec, options) agree on every
// epoch's dialect without further coordination.
func NewRotation(source string, opts Options) (*Rotation, error) {
	return core.NewRotation(source, opts)
}

// TransformNames lists the generic transformations of the catalog
// (table I of the paper), usable in Options.Only / Options.Exclude.
func TransformNames() []string {
	var out []string
	for _, t := range transform.Catalog() {
		out = append(out, t.Name())
	}
	return out
}

// Session is an obfuscated message session over a live byte stream: each
// frame is tagged with its dialect epoch outside the obfuscated payload,
// and either peer may rotate the dialect mid-session — the other follows
// automatically. See internal/session.
type Session = session.Conn

// NewSession opens a session over rw speaking the epoch-keyed dialect
// family of rot. Both peers must share the rotation's (spec, options).
func NewSession(rw io.ReadWriter, rot *Rotation) (*Session, error) {
	return session.NewConn(rw, rot)
}

// NewStaticSession opens a session over rw that speaks a single fixed
// protocol in every epoch (session framing without dialect rotation).
func NewStaticSession(rw io.ReadWriter, p *Protocol) (*Session, error) {
	return session.NewConn(rw, session.Fixed(p.Graph))
}

// NewSessionPair connects two in-memory session peers, each compiled
// independently from the same (spec, options) — exactly how deployed
// peers agree on every epoch's dialect without coordination (§VIII).
func NewSessionPair(source string, opts Options) (*Session, *Session, error) {
	a, err := core.NewRotation(source, opts)
	if err != nil {
		return nil, nil, err
	}
	b, err := core.NewRotation(source, opts)
	if err != nil {
		return nil, nil, err
	}
	return session.Pair(a, b)
}

// DialSession connects to addr over TCP and opens a session speaking
// rot's dialect family.
func DialSession(addr string, rot *Rotation) (*Session, net.Conn, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, nil, err
	}
	s, err := session.NewConn(conn, rot)
	if err != nil {
		conn.Close()
		return nil, nil, err
	}
	return s, conn, nil
}
