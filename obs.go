package protoobf

import (
	"encoding/json"
	"net"
	"net/http"
	"net/http/pprof"

	"protoobf/internal/metrics"
	"protoobf/internal/trace"
)

// TraceEvent is one session lifecycle event recorded by an endpoint
// built WithTrace: a sequence number (the total order, immune to clock
// steps), a timestamp, the event kind, the session the event belongs
// to, and per-kind epoch/detail context. Events marshal to readable
// JSON (kinds by name), which is what /trace.json serves.
type TraceEvent = trace.Event

// TraceKind identifies a TraceEvent's type. The kinds cover the
// session control plane end to end: session open/close, epoch
// crossings, the rekey handshake (propose, ack, rollback), the resume
// handshake (accept, reject with reason), cover traffic, and datagram
// packet rejects.
type TraceKind = trace.Kind

// The TraceKind values, re-exported so callers can filter Endpoint.Trace
// output without importing internal packages.
const (
	TraceSessionOpen   = trace.KindSessionOpen
	TraceSessionClose  = trace.KindSessionClose
	TraceEpochCross    = trace.KindEpochCross
	TraceRekeyPropose  = trace.KindRekeyPropose
	TraceRekeyAck      = trace.KindRekeyAck
	TraceRekeyRollback = trace.KindRekeyRollback
	TraceResumeAccept  = trace.KindResumeAccept
	TraceResumeReject  = trace.KindResumeReject
	TraceCoverBurst    = trace.KindCoverBurst
	TraceDgramReject   = trace.KindDgramReject
)

// ObsHandler returns the endpoint's observability surface as an
// http.Handler, stdlib only:
//
//	/metrics        Prometheus text exposition of Endpoint.Metrics
//	/snapshot.json  the same snapshot as JSON (machine-diffable)
//	/trace.json     Endpoint.Trace as JSON (empty array without WithTrace)
//	/debug/pprof/   the runtime profiles (CPU, heap, goroutines, ...)
//
// Mount it wherever the deployment serves HTTP, or hand it to ServeObs
// to get a dedicated listener. Every route is read-only and safe to
// leave enabled in production; /debug/pprof is the usual caveat (it
// reveals internals, so bind the obs address to loopback or a
// management network, never the obfuscated listener's address).
func ObsHandler(ep *Endpoint) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		WriteProm(w, ep.Metrics())
	})
	mux.HandleFunc("/snapshot.json", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(ep.Metrics())
	})
	mux.HandleFunc("/trace.json", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		evs := ep.Trace()
		if evs == nil {
			evs = []TraceEvent{}
		}
		json.NewEncoder(w).Encode(evs)
	})
	registerPprof(mux)
	return mux
}

// registerPprof mounts the runtime profile handlers on mux — the same
// routes net/http/pprof installs on http.DefaultServeMux, mounted
// explicitly so the obs surface never depends on the global mux (and
// never leaks onto servers that share it).
func registerPprof(mux *http.ServeMux) {
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
}

// ObsServer is a running observability listener (see ServeObs). Close
// shuts the listener down; Addr reports the bound address, which is how
// callers using ":0" learn the chosen port.
type ObsServer struct {
	l   net.Listener
	srv *http.Server
}

// Addr returns the server's bound address (e.g. "127.0.0.1:49231").
func (s *ObsServer) Addr() string { return s.l.Addr().String() }

// Close stops the server. In-flight requests are abandoned — the obs
// surface serves snapshots, nothing worth draining.
func (s *ObsServer) Close() error { return s.srv.Close() }

// ServeObs binds addr (host:port; use port 0 for an ephemeral port) and
// serves ObsHandler(ep) on it in a background goroutine:
//
//	obs, err := protoobf.ServeObs("127.0.0.1:9090", ep)
//	...
//	defer obs.Close()
//	// curl http://127.0.0.1:9090/metrics
//
// The returned server is already serving when ServeObs returns.
func ServeObs(addr string, ep *Endpoint) (*ObsServer, error) {
	l, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	srv := &http.Server{Handler: ObsHandler(ep)}
	go srv.Serve(l)
	return &ObsServer{l: l, srv: srv}, nil
}

// LintProm validates a Prometheus text exposition page the way a
// scraper would — header/sample ordering, label syntax, duplicate
// series, histogram bucket invariants. The self-check behind the obs
// surface's tests and the bench harness's mid-run scrape; exported so
// deployments embedding WriteProm output elsewhere can lint theirs too.
func LintProm(page []byte) error { return metrics.LintProm(page) }
