package protoobf_test

import (
	"context"
	"fmt"
	"testing"

	"protoobf"
)

func packetEndpoints(t *testing.T) (*protoobf.Endpoint, *protoobf.Endpoint) {
	t.Helper()
	opts := protoobf.Options{PerNode: 2, Seed: 0xD6}
	a, err := protoobf.NewEndpoint(beaconSpec, opts)
	if err != nil {
		t.Fatal(err)
	}
	b, err := protoobf.NewEndpoint(beaconSpec, opts)
	if err != nil {
		t.Fatal(err)
	}
	return a, b
}

// TestPacketSessionPipe drives the public packet surface over the
// in-memory pair in both modes, checking the endpoint's aggregated
// datagram metrics along the way.
func TestPacketSessionPipe(t *testing.T) {
	for _, zo := range []bool{false, true} {
		t.Run(fmt.Sprintf("zeroOverhead=%v", zo), func(t *testing.T) {
			epA, epB := packetEndpoints(t)
			ca, cb := protoobf.PacketPipe()
			a, err := epA.PacketSession(ca, protoobf.WithZeroOverhead(zo))
			if err != nil {
				t.Fatal(err)
			}
			b, err := epB.PacketSession(cb, protoobf.WithZeroOverhead(zo))
			if err != nil {
				t.Fatal(err)
			}
			for i := uint64(1); i <= 5; i++ {
				m, err := a.NewMessage()
				if err != nil {
					t.Fatal(err)
				}
				if err := m.Scope().SetUint("seqno", i); err != nil {
					t.Fatal(err)
				}
				if err := m.Scope().SetBytes("note", []byte("dgram")); err != nil {
					t.Fatal(err)
				}
				if err := a.Send(m); err != nil {
					t.Fatal(err)
				}
				got, err := b.Recv()
				if err != nil {
					t.Fatal(err)
				}
				seq, err := got.Scope().GetUint("seqno")
				if err != nil {
					t.Fatal(err)
				}
				if seq != i {
					t.Fatalf("seqno = %d, want %d", seq, i)
				}
			}
			// Rekey mid-session and keep talking under the new family.
			if _, err := a.Rekey(0xBEEF); err != nil {
				t.Fatal(err)
			}
			m, err := a.NewMessage()
			if err != nil {
				t.Fatal(err)
			}
			if err := m.Scope().SetUint("seqno", 6); err != nil {
				t.Fatal(err)
			}
			if err := m.Scope().SetBytes("note", []byte("rekeyed")); err != nil {
				t.Fatal(err)
			}
			if err := a.Send(m); err != nil {
				t.Fatal(err)
			}
			if _, err := b.Recv(); err != nil {
				t.Fatal(err)
			}
			ms := epA.Metrics()
			if ms.Dgram.DataSent != 6 {
				t.Fatalf("endpoint dgram sent = %d, want 6", ms.Dgram.DataSent)
			}
			if zo && ms.Dgram.OverheadBytes() != 0 {
				t.Fatalf("zero-overhead endpoint reports %d overhead bytes", ms.Dgram.OverheadBytes())
			}
			mb := epB.Metrics()
			if mb.Dgram.RekeysApplied != 1 {
				t.Fatalf("receiver endpoint rekeys = %d, want 1", mb.Dgram.RekeysApplied)
			}
		})
	}
}

// TestPacketUDP is the end-to-end UDP loopback exchange: ListenPacket
// demultiplexes peers by source address, DialPacket connects, and
// messages cross a real socket in both directions and both modes.
func TestPacketUDP(t *testing.T) {
	for _, zo := range []bool{false, true} {
		t.Run(fmt.Sprintf("zeroOverhead=%v", zo), func(t *testing.T) {
			epA, epB := packetEndpoints(t)
			ln, err := epB.ListenPacket("udp", "127.0.0.1:0", protoobf.WithZeroOverhead(zo))
			if err != nil {
				t.Fatal(err)
			}
			defer ln.Close()
			client, err := epA.DialPacket(context.Background(), "udp", ln.Addr().String(), protoobf.WithZeroOverhead(zo))
			if err != nil {
				t.Fatal(err)
			}
			defer client.Close()
			// First client packet both creates the server session and
			// must decode on it.
			m, err := client.NewMessage()
			if err != nil {
				t.Fatal(err)
			}
			if err := m.Scope().SetUint("seqno", 1); err != nil {
				t.Fatal(err)
			}
			if err := m.Scope().SetBytes("note", []byte("hello")); err != nil {
				t.Fatal(err)
			}
			if err := client.Send(m); err != nil {
				t.Fatal(err)
			}
			server, err := ln.Accept()
			if err != nil {
				t.Fatal(err)
			}
			got, err := server.Recv()
			if err != nil {
				t.Fatal(err)
			}
			if note, err := got.Scope().GetBytes("note"); err != nil || string(note) != "hello" {
				t.Fatalf("note = %q, err %v", note, err)
			}
			// And the return path, through the shared socket.
			reply, err := server.NewMessage()
			if err != nil {
				t.Fatal(err)
			}
			if err := reply.Scope().SetUint("seqno", 2); err != nil {
				t.Fatal(err)
			}
			if err := reply.Scope().SetBytes("note", []byte("ack")); err != nil {
				t.Fatal(err)
			}
			if err := server.Send(reply); err != nil {
				t.Fatal(err)
			}
			back, err := client.Recv()
			if err != nil {
				t.Fatal(err)
			}
			if note, err := back.Scope().GetBytes("note"); err != nil || string(note) != "ack" {
				t.Fatalf("reply note = %q, err %v", note, err)
			}
		})
	}
}

// TestPacketOptionPlacement pins the option discipline both ways:
// packet-only options are refused in stream-session position, and
// stream-only options are refused in packet-session position.
func TestPacketOptionPlacement(t *testing.T) {
	ep, _ := packetEndpoints(t)
	ca, cb := protoobf.Pipe()
	defer ca.Close()
	defer cb.Close()
	if _, err := ep.Session(ca, protoobf.WithZeroOverhead(true)); err == nil {
		t.Fatal("stream session accepted WithZeroOverhead")
	}
	if _, err := ep.Session(ca, protoobf.WithEpochWindow(8)); err == nil {
		t.Fatal("stream session accepted WithEpochWindow")
	}
	pa, pb := protoobf.PacketPipe()
	defer pa.Close()
	defer pb.Close()
	if _, err := ep.PacketSession(pa, protoobf.WithRekeyEvery(4)); err == nil {
		t.Fatal("packet session accepted WithRekeyEvery")
	}
	if _, err := ep.PacketSession(pa, protoobf.WithShaping(protoobf.DefaultShapeProfile())); err == nil {
		t.Fatal("packet session accepted WithShaping")
	}
	if _, err := ep.PacketSession(pa, protoobf.WithTicketReissue(true)); err == nil {
		t.Fatal("packet session accepted WithTicketReissue")
	}
}

// TestZeroOverheadRefusedOnStatic: static protocols cannot derive the
// packet pad, so zero-overhead mode must fail loudly, not silently
// downgrade.
func TestZeroOverheadRefusedOnStatic(t *testing.T) {
	proto, err := protoobf.Compile(beaconSpec, protoobf.Options{PerNode: 2, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	ep, err := protoobf.NewEndpoint("", protoobf.Options{}, protoobf.WithStaticProtocol(proto))
	if err != nil {
		t.Fatal(err)
	}
	pa, pb := protoobf.PacketPipe()
	defer pa.Close()
	defer pb.Close()
	if _, err := ep.PacketSession(pa, protoobf.WithZeroOverhead(true)); err == nil {
		t.Fatal("zero-overhead packet session built on a static endpoint")
	}
	// Normal mode over a static protocol is fine.
	if _, err := ep.PacketSession(pa); err != nil {
		t.Fatal(err)
	}
}
