// Tests and examples of the deprecated constructors. They live in this
// file — and only here — because cmd/deprecheck exempts *deprecated*
// files from the audit that keeps the rest of the repository off the
// legacy API. The acceptance bar for the wrappers is that they keep
// passing the tests they always passed.
package protoobf_test

import (
	"errors"
	"fmt"
	"testing"
	"time"

	"protoobf"
)

// ExampleNewSessionPair round-trips a message between two in-memory
// session peers and rotates the dialect mid-session.
func ExampleNewSessionPair() {
	spec := `
protocol ping;
root seq msg end {
    uint  seqno 4;
    bytes note end;
}`
	a, b, err := protoobf.NewSessionPair(spec, protoobf.Options{PerNode: 2, Seed: 7})
	if err != nil {
		panic(err)
	}
	for round := uint64(0); round < 2; round++ {
		m, err := a.NewMessage()
		if err != nil {
			panic(err)
		}
		if err := m.Scope().SetUint("seqno", 100+round); err != nil {
			panic(err)
		}
		if err := m.Scope().SetString("note", "hello"); err != nil {
			panic(err)
		}
		if err := a.Send(m); err != nil {
			panic(err)
		}
		got, err := b.Recv()
		if err != nil {
			panic(err)
		}
		seqno, _ := got.Scope().GetUint("seqno")
		fmt.Printf("epoch %d delivered seqno %d\n", b.Epoch(), seqno)
		if _, err := a.Rotate(); err != nil { // B follows on its next Recv
			panic(err)
		}
	}
	// Output:
	// epoch 0 delivered seqno 100
	// epoch 1 delivered seqno 101
}

// ExampleNewSessionPairWith runs the full control plane in memory: a
// shared wall-clock schedule (driven by a fake clock here) rotates the
// dialect, and both peers converge without any in-band coordination.
func ExampleNewSessionPairWith() {
	spec := `
protocol ping;
root seq msg end {
    uint  seqno 4;
    bytes note end;
}`
	genesis := time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)
	now := genesis
	schedule := protoobf.NewSchedule(genesis, time.Hour).WithClock(func() time.Time { return now })
	a, b, err := protoobf.NewSessionPairWith(spec,
		protoobf.Options{PerNode: 2, Seed: 7},
		protoobf.SessionOptions{Schedule: schedule, CacheWindow: 4})
	if err != nil {
		panic(err)
	}
	for round := uint64(0); round < 3; round++ {
		m, err := a.NewMessage() // adopts the schedule's epoch
		if err != nil {
			panic(err)
		}
		if err := m.Scope().SetUint("seqno", round); err != nil {
			panic(err)
		}
		if err := m.Scope().SetString("note", "tick"); err != nil {
			panic(err)
		}
		if err := a.Send(m); err != nil {
			panic(err)
		}
		if _, err := b.Recv(); err != nil {
			panic(err)
		}
		fmt.Printf("round %d at epoch %d\n", round, b.Epoch())
		now = now.Add(time.Hour) // wall clock advances for both peers
	}
	// Output:
	// round 0 at epoch 0
	// round 1 at epoch 1
	// round 2 at epoch 2
}

// TestSessionPairRotation drives the deprecated pair constructor: two
// in-memory peers exchange a message per epoch across three rotations,
// each frame decoded with the dialect its epoch header names.
func TestSessionPairRotation(t *testing.T) {
	a, b, err := protoobf.NewSessionPair(ticketSpec, protoobf.Options{PerNode: 2, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	for epoch := uint64(0); epoch < 4; epoch++ {
		m, err := a.NewMessage()
		if err != nil {
			t.Fatal(err)
		}
		s := m.Scope()
		if err := s.SetUint("version", 1); err != nil {
			t.Fatal(err)
		}
		if err := s.SetUint("kind", 1); err != nil {
			t.Fatal(err)
		}
		if err := s.SetString("user", "ada"); err != nil {
			t.Fatal(err)
		}
		item, err := s.Add("seats")
		if err != nil {
			t.Fatal(err)
		}
		if err := item.SetUint("seat", 100+epoch); err != nil {
			t.Fatal(err)
		}
		if err := a.Send(m); err != nil {
			t.Fatal(err)
		}
		got, err := b.Recv()
		if err != nil {
			t.Fatalf("epoch %d: %v", epoch, err)
		}
		items, err := got.Scope().Items("seats")
		if err != nil {
			t.Fatal(err)
		}
		seat, err := items[0].GetUint("seat")
		if err != nil {
			t.Fatal(err)
		}
		if seat != 100+epoch {
			t.Fatalf("epoch %d: seat = %d, want %d", epoch, seat, 100+epoch)
		}
		if got := b.Epoch(); got != epoch {
			t.Fatalf("receiver epoch = %d, want %d", got, epoch)
		}
		if epoch < 3 {
			if _, err := a.Rotate(); err != nil {
				t.Fatal(err)
			}
		}
	}
}

// TestSharedRekeyRefused pins the runtime enforcement of what used to be
// only a doc warning: sharing a rekey-enabled Rotation across sessions
// is a typed error, in every ordering.
func TestSharedRekeyRefused(t *testing.T) {
	spec := `
protocol ping;
root seq msg end {
    uint  seqno 4;
    bytes note end;
}`
	opts := protoobf.Options{PerNode: 1, Seed: 3}

	// Rekey session first, then any second session.
	rot, err := protoobf.NewRotation(spec, opts)
	if err != nil {
		t.Fatal(err)
	}
	rw1, _ := protoobf.Pipe()
	if _, err := protoobf.NewSessionWith(rw1, rot, protoobf.SessionOptions{RekeyEvery: 4}); err != nil {
		t.Fatal(err)
	}
	rw2, _ := protoobf.Pipe()
	if _, err := protoobf.NewSession(rw2, rot); !errors.Is(err, protoobf.ErrSharedRekey) {
		t.Fatalf("second session on rekey-owned rotation: err = %v, want ErrSharedRekey", err)
	}

	// Plain session first, then a rekey session on the shared rotation.
	rot2, err := protoobf.NewRotation(spec, opts)
	if err != nil {
		t.Fatal(err)
	}
	rw3, _ := protoobf.Pipe()
	if _, err := protoobf.NewSession(rw3, rot2); err != nil {
		t.Fatal(err)
	}
	rw4, _ := protoobf.Pipe()
	_, err = protoobf.NewSessionWith(rw4, rot2, protoobf.SessionOptions{RekeyEvery: 4})
	if !errors.Is(err, protoobf.ErrSharedRekey) {
		t.Fatalf("rekey session on shared rotation: err = %v, want ErrSharedRekey", err)
	}

	// Plain sessions keep sharing freely.
	rw5, _ := protoobf.Pipe()
	if _, err := protoobf.NewSession(rw5, rot2); err != nil {
		t.Fatalf("plain sharing broke: %v", err)
	}
}

// TestFailedConstructionLeavesRotationUntouched pins the satellite fix:
// NewSessionWith must not mutate the caller's Rotation (its cache bound)
// when session construction fails.
func TestFailedConstructionLeavesRotationUntouched(t *testing.T) {
	spec := `
protocol ping;
root seq msg end {
    uint  seqno 4;
    bytes note end;
}`
	rot, err := protoobf.NewRotation(spec, protoobf.Options{PerNode: 1, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	// Prime more cached versions than the tiny window below would keep.
	for e := uint64(0); e < 6; e++ {
		if _, err := rot.Version(e); err != nil {
			t.Fatal(err)
		}
	}
	before := rot.CacheLen()

	// Claim the rotation with a rekey session, then fail a second
	// construction that also asks for a tiny CacheWindow. The failure
	// must leave the rotation's cache exactly as it was.
	rw1, _ := protoobf.Pipe()
	if _, err := protoobf.NewSessionWith(rw1, rot, protoobf.SessionOptions{RekeyEvery: 4}); err != nil {
		t.Fatal(err)
	}
	grown := rot.CacheLen() // session construction may cache epoch 0
	rw2, _ := protoobf.Pipe()
	_, err = protoobf.NewSessionWith(rw2, rot, protoobf.SessionOptions{CacheWindow: 1})
	if !errors.Is(err, protoobf.ErrSharedRekey) {
		t.Fatalf("err = %v, want ErrSharedRekey", err)
	}
	if after := rot.CacheLen(); after != grown || after < before {
		t.Fatalf("failed construction re-bounded the caller's rotation: cache %d -> %d", grown, after)
	}
}
