package protoobf

import (
	"time"

	"protoobf/internal/session/shape"
)

// ShapeProfile describes a traffic shape: the frame-length distribution,
// inter-frame departure pacing and cover-traffic cadence an observer
// should see on a shaped session, regardless of what the application
// sends. Dialect rotation hides what messages *say*; a profile hides
// what they *look like* — without it, frame lengths and burst timing
// pass straight through and a ScrambleSuit-style statistical classifier
// identifies the protocol without decoding a byte.
//
// Profiles are plain data: build one literally, or start from
// DefaultShapeProfile and adjust. A profile must Validate (every bin
// inside (0, MTU], ordered gaps); session construction rejects one that
// does not.
type ShapeProfile = shape.Profile

// ShapeBin is one weighted length range of a ShapeProfile: target frame
// lengths are drawn uniformly from [Lo, Hi], bins chosen in proportion
// to Weight.
type ShapeBin = shape.Bin

// DefaultShapeProfile returns the ScrambleSuit-style bimodal default:
// most frames near a full MTU or in a mid-size band, sub-millisecond
// pacing, cover frames after a quarter second of silence.
func DefaultShapeProfile() ShapeProfile { return shape.Default() }

// WithShaping turns on traffic shaping for the endpoint's sessions (or,
// in session position, for one session): every outgoing data frame is
// padded to a length sampled from the profile — and split into
// fragments at the profile MTU — departures are paced by sampled
// inter-frame gaps, and an idle session emits cover frames the peer
// silently discards. The shape itself rotates: profile parameters are
// re-derived each epoch from the dialect family's seed lineage, so a
// rekey moves the traffic shape exactly as it moves the wire format.
//
// Shaping is symmetric: both peers must be built with the same profile
// (pad bytes ride inside the framed payload, and the receiver must
// strip them), exactly like the (spec, seed) contract. Cover frames
// alone are compatible with unshaped peers — every session discards
// them. Padding and pacing cost real overhead; Metrics reports both
// (pad bytes, injected delay) so the stealth/throughput trade is
// observable.
func WithShaping(p ShapeProfile) Option {
	return func(cfg *settings) { cfg.shape = &p }
}

// WithShapeClock injects the shaper's time source and delay primitive —
// nil defaults are time.Now and time.Sleep. A non-nil now marks the
// session as simulated: the idle cover scheduler goroutine is not
// started, and pacing consults the injected clock, which is how the
// adversary harness (and tests) capture deterministically shaped
// traffic with zero real sleeping. Production endpoints do not need
// this option.
func WithShapeClock(now func() time.Time, sleep func(time.Duration)) Option {
	return func(cfg *settings) {
		cfg.shapeClock = now
		cfg.shapeSleep = sleep
	}
}
