// Internal tests of the prefetch daemon and the Metrics API. These live
// in package protoobf (not protoobf_test) to inject the daemon's
// boundary wait, which keeps every test deterministic: the fake clock
// owns epoch time and the test owns the daemon's wake-ups.
package protoobf

import (
	"context"
	"fmt"
	"sync"
	"testing"
	"time"

	"protoobf/internal/session/sched"
)

// prefetchSpec is a small telemetry-style message: big enough that a
// dialect compile costs real work, small enough that the tests stay
// fast.
const prefetchSpec = `
protocol pftest;
root seq m end {
    uint device 2;
    uint seqno 4;
    bytes payload fixed 8;
}
`

// manualSleeper replaces the daemon's boundary wait: the daemon parks
// on it after every prefetch pass and the test releases it explicitly,
// so epoch time (the fake clock) and daemon wake-ups are both under
// test control.
type manualSleeper struct {
	parked chan struct{} // daemon signals: pass complete, waiting at the boundary
	kick   chan struct{} // test signals: boundary crossed, run the next pass
}

func newManualSleeper() *manualSleeper {
	return &manualSleeper{parked: make(chan struct{}), kick: make(chan struct{})}
}

func (s *manualSleeper) sleep(ctx context.Context, d time.Duration) bool {
	select {
	case s.parked <- struct{}{}:
	case <-ctx.Done():
		return false
	}
	select {
	case <-s.kick:
		return true
	case <-ctx.Done():
		return false
	}
}

// cycle crosses one epoch boundary: wake the daemon and wait for its
// pass to complete (it parks again when done).
func (s *manualSleeper) cycle() {
	s.kick <- struct{}{}
	<-s.parked
}

// prefetchRig is one endpoint with a scheduled fake clock and a parked
// prefetch daemon, primed through its first pass.
type prefetchRig struct {
	ep      *Endpoint
	clock   *sched.FakeClock
	sleeper *manualSleeper
	pf      *Prefetcher
	cancel  context.CancelFunc
}

const prefetchInterval = time.Minute

func newPrefetchRig(t *testing.T, depth int, extra ...Option) *prefetchRig {
	t.Helper()
	genesis := time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)
	clock := sched.NewFakeClock(genesis)
	schedule := NewSchedule(genesis, prefetchInterval).WithClock(clock.Now)
	sleeper := newManualSleeper()
	opts := append([]Option{
		WithSchedule(schedule),
		WithPrefetch(depth),
		withPrefetchSleep(sleeper.sleep),
	}, extra...)
	ep, err := NewEndpoint(prefetchSpec, Options{PerNode: 2, Seed: 77}, opts...)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	pf, err := ep.StartPrefetch(ctx)
	if err != nil {
		cancel()
		t.Fatal(err)
	}
	<-sleeper.parked // priming pass done
	rig := &prefetchRig{ep: ep, clock: clock, sleeper: sleeper, pf: pf, cancel: cancel}
	t.Cleanup(func() {
		cancel()
		pf.Wait()
	})
	return rig
}

// sessionPair mints two connected sessions from one endpoint (both
// sides of one endpoint share the family, exactly like two processes
// built from the same spec and seed).
func sessionPair(t *testing.T, ep *Endpoint, o ...SessionOption) (*Session, *Session) {
	t.Helper()
	ca, cb := Pipe()
	a, err := ep.Session(ca, o...)
	if err != nil {
		t.Fatal(err)
	}
	b, err := ep.Session(cb, o...)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		a.Release()
		b.Release()
	})
	return a, b
}

// trip sends one message from -> to and checks the decoded seqno.
func trip(from, to *Session, seqno uint64) error {
	m, err := from.NewMessage()
	if err != nil {
		return err
	}
	s := m.Scope()
	if err := s.SetUint("device", 3); err != nil {
		return err
	}
	if err := s.SetUint("seqno", seqno); err != nil {
		return err
	}
	if err := s.SetBytes("payload", []byte("01234567")); err != nil {
		return err
	}
	if err := from.Send(m); err != nil {
		return err
	}
	got, err := to.Recv()
	if err != nil {
		return err
	}
	v, err := got.Scope().GetUint("seqno")
	if err != nil {
		return err
	}
	if v != seqno {
		return fmt.Errorf("decoded seqno %d, want %d", v, seqno)
	}
	return nil
}

func TestStartPrefetchValidation(t *testing.T) {
	// No schedule.
	ep, err := NewEndpoint(prefetchSpec, Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ep.StartPrefetch(context.Background()); err == nil {
		t.Fatal("StartPrefetch without a schedule did not error")
	}

	// Static endpoint.
	p, err := Compile(prefetchSpec, Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	genesis := time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)
	st, err := NewEndpoint("", Options{}, WithStaticProtocol(p), WithSchedule(NewSchedule(genesis, time.Minute)))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := st.StartPrefetch(context.Background()); err == nil {
		t.Fatal("StartPrefetch on a static endpoint did not error")
	}

	// WithPrefetch is endpoint-level.
	rig := newPrefetchRig(t, 1)
	ca, _ := Pipe()
	if _, err := rig.ep.Session(ca, WithPrefetch(3)); err == nil {
		t.Fatal("per-session WithPrefetch did not error")
	}

	// Only one daemon per endpoint.
	if _, err := rig.ep.StartPrefetch(context.Background()); err == nil {
		t.Fatal("second StartPrefetch did not error")
	}

	// After the first daemon exits, a new one may start.
	rig.cancel()
	rig.pf.Wait()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	pf2, err := rig.ep.StartPrefetch(ctx)
	if err != nil {
		t.Fatalf("restart after stop: %v", err)
	}
	<-rig.sleeper.parked
	cancel()
	pf2.Wait()
}

// TestPrefetchEliminatesBoundaryCompiles is the acceptance property of
// the daemon: with prefetch running, crossing an epoch boundary costs
// the sessions zero demand compiles — every dialect they need was
// compiled ahead by the daemon — while without the daemon each
// boundary compiles on the session hot path.
func TestPrefetchEliminatesBoundaryCompiles(t *testing.T) {
	const epochs = 8

	t.Run("prefetch-on", func(t *testing.T) {
		rig := newPrefetchRig(t, 2)
		a, b := sessionPair(t, rig.ep)
		base := rig.ep.Metrics()
		for e := 1; e <= epochs; e++ {
			rig.clock.Advance(prefetchInterval)
			if err := trip(a, b, uint64(e)); err != nil {
				t.Fatalf("epoch %d: %v", e, err)
			}
			if err := trip(b, a, uint64(e)); err != nil {
				t.Fatalf("epoch %d (reverse): %v", e, err)
			}
			if got, want := a.Epoch(), uint64(e); got != want {
				t.Fatalf("session epoch = %d, want %d", got, want)
			}
			rig.sleeper.cycle()
		}
		m := rig.ep.Metrics()
		if demand := m.Rotation.DemandCompiles() - base.Rotation.DemandCompiles(); demand != 0 {
			t.Fatalf("sessions paid %d demand compiles across %d boundaries with prefetch on, want 0", demand, epochs)
		}
		if lead := m.Prefetch.Lead() - base.Prefetch.Lead(); lead < epochs {
			t.Fatalf("prefetch lead = %d across %d boundaries, want >= %d", lead, epochs, epochs)
		}
		if m.Prefetch.Late != 0 {
			t.Fatalf("prefetch reported %d late epochs under a test-controlled clock", m.Prefetch.Late)
		}
	})

	t.Run("prefetch-off", func(t *testing.T) {
		genesis := time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)
		clock := sched.NewFakeClock(genesis)
		schedule := NewSchedule(genesis, prefetchInterval).WithClock(clock.Now)
		ep, err := NewEndpoint(prefetchSpec, Options{PerNode: 2, Seed: 77}, WithSchedule(schedule))
		if err != nil {
			t.Fatal(err)
		}
		a, b := sessionPair(t, ep)
		base := ep.Metrics()
		for e := 1; e <= epochs; e++ {
			clock.Advance(prefetchInterval)
			if err := trip(a, b, uint64(e)); err != nil {
				t.Fatalf("epoch %d: %v", e, err)
			}
		}
		m := ep.Metrics()
		if demand := m.Rotation.DemandCompiles() - base.Rotation.DemandCompiles(); demand != epochs {
			t.Fatalf("demand compiles without prefetch = %d, want %d (one per boundary)", demand, epochs)
		}
	})
}

// TestPrefetchDeepWindow: with depth n the daemon keeps n upcoming
// epochs warm, so even a session that skips ahead within the window
// (a peer up to n-1 intervals fast) finds its dialect compiled.
func TestPrefetchDeepWindow(t *testing.T) {
	rig := newPrefetchRig(t, 4)
	base := rig.ep.Metrics()
	// The priming pass compiled epochs 1..4 ahead of time; fetching any
	// of them through the session-facing path must not compile.
	for e := uint64(1); e <= 4; e++ {
		if _, err := rig.ep.Version(e); err != nil {
			t.Fatal(err)
		}
	}
	m := rig.ep.Metrics()
	if demand := m.Rotation.DemandCompiles() - base.Rotation.DemandCompiles(); demand != 0 {
		t.Fatalf("window fetches paid %d demand compiles, want 0", demand)
	}
	if m.Rotation.PrefetchCompiles < 4 {
		t.Fatalf("prefetch compiles = %d after priming a depth-4 window, want >= 4", m.Rotation.PrefetchCompiles)
	}
}

// TestPrefetchVsRekeyRace runs scheduled rotation, a live prefetch
// daemon, and in-band rekeys concurrently across several session
// pairs. The property under -race: a session that rekeyed to a fresh
// seed family keeps decoding correctly — the daemon's prefetched
// base-family versions are keyed under the old family and are never
// served across the rekey boundary (a stale dialect would break the
// differential check inside trip).
func TestPrefetchVsRekeyRace(t *testing.T) {
	const (
		pairs  = 4
		epochs = 10
	)
	rig := newPrefetchRig(t, 2)
	type pair struct{ a, b *Session }
	ps := make([]pair, pairs)
	for i := range ps {
		// Every pair rekeys every 3 epochs, independently.
		a, b := sessionPair(t, rig.ep, WithRekeyEvery(3))
		ps[i] = pair{a, b}
	}
	for e := 1; e <= epochs; e++ {
		rig.clock.Advance(prefetchInterval)
		var wg sync.WaitGroup
		errs := make([]error, pairs)
		for i := range ps {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				for m := 0; m < 4; m++ {
					if err := trip(ps[i].a, ps[i].b, uint64(e*100+m)); err != nil {
						errs[i] = fmt.Errorf("epoch %d msg %d: %w", e, m, err)
						return
					}
					if err := trip(ps[i].b, ps[i].a, uint64(e*100+m)); err != nil {
						errs[i] = fmt.Errorf("epoch %d msg %d reverse: %w", e, m, err)
						return
					}
				}
			}(i)
		}
		wg.Wait()
		for i, err := range errs {
			if err != nil {
				t.Fatalf("pair %d: %v", i, err)
			}
		}
		rig.sleeper.cycle()
	}
	m := rig.ep.Metrics()
	if m.Rotation.Rekeys == 0 {
		t.Fatal("no rekeys completed; the race the test exists for never happened")
	}
	if m.Rotation.PrefetchCompiles == 0 {
		t.Fatal("no prefetch compiles; the race the test exists for never happened")
	}
}

// TestMetricsSnapshotConsistency hammers one endpoint with 64
// concurrent sessions while snapshots are taken in parallel, then
// checks the invariants every snapshot must satisfy: counters are
// monotonic between snapshots, per-shard rows sum to the totals, a
// compile (or a dedup join) implies a recorded miss, and prefetch
// attribution never exceeds the compile count.
func TestMetricsSnapshotConsistency(t *testing.T) {
	const (
		nPairs  = 32 // 64 sessions
		nEpochs = 6
	)
	rig := newPrefetchRig(t, 2)
	type pair struct{ a, b *Session }
	ps := make([]pair, nPairs)
	for i := range ps {
		a, b := sessionPair(t, rig.ep)
		ps[i] = pair{a, b}
	}

	check := func(m Metrics) error {
		var h, mi, ev uint64
		for _, row := range m.Rotation.Cache.PerShard {
			h += row.Hits
			mi += row.Misses
			ev += row.Evictions
		}
		if h != m.Rotation.Cache.Hits || mi != m.Rotation.Cache.Misses || ev != m.Rotation.Cache.Evictions {
			return fmt.Errorf("per-shard rows (%d/%d/%d) != totals (%d/%d/%d)",
				h, mi, ev, m.Rotation.Cache.Hits, m.Rotation.Cache.Misses, m.Rotation.Cache.Evictions)
		}
		if m.Rotation.PrefetchCompiles > m.Rotation.Compiles {
			return fmt.Errorf("prefetch compiles %d exceed total compiles %d",
				m.Rotation.PrefetchCompiles, m.Rotation.Compiles)
		}
		// Every compile or dedup join was preceded by a cache miss (the
		// constructor's eager probe is the one compile without a miss).
		if m.Rotation.Compiles+m.Rotation.CompileDedup > m.Rotation.Cache.Misses+1 {
			return fmt.Errorf("compiles %d + dedup %d exceed misses %d + 1",
				m.Rotation.Compiles, m.Rotation.CompileDedup, m.Rotation.Cache.Misses)
		}
		return nil
	}
	monotonic := func(prev, cur Metrics) error {
		type pairU struct {
			name       string
			prev, curr uint64
		}
		for _, f := range []pairU{
			{"Compiles", prev.Rotation.Compiles, cur.Rotation.Compiles},
			{"PrefetchCompiles", prev.Rotation.PrefetchCompiles, cur.Rotation.PrefetchCompiles},
			{"CompileDedup", prev.Rotation.CompileDedup, cur.Rotation.CompileDedup},
			{"Hits", prev.Rotation.Cache.Hits, cur.Rotation.Cache.Hits},
			{"Misses", prev.Rotation.Cache.Misses, cur.Rotation.Cache.Misses},
			{"Evictions", prev.Rotation.Cache.Evictions, cur.Rotation.Cache.Evictions},
			{"Cycles", prev.Prefetch.Cycles, cur.Prefetch.Cycles},
			{"Lead", prev.Prefetch.Lead(), cur.Prefetch.Lead()},
		} {
			if f.curr < f.prev {
				return fmt.Errorf("%s went backwards: %d -> %d", f.name, f.prev, f.curr)
			}
		}
		return nil
	}

	stop := make(chan struct{})
	snapErr := make(chan error, 1)
	go func() {
		prev := rig.ep.Metrics()
		for {
			select {
			case <-stop:
				snapErr <- nil
				return
			default:
			}
			cur := rig.ep.Metrics()
			if err := check(cur); err != nil {
				snapErr <- err
				return
			}
			if err := monotonic(prev, cur); err != nil {
				snapErr <- err
				return
			}
			prev = cur
		}
	}()

	for e := 1; e <= nEpochs; e++ {
		rig.clock.Advance(prefetchInterval)
		var wg sync.WaitGroup
		errs := make([]error, nPairs)
		for i := range ps {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				for m := 0; m < 3; m++ {
					if err := trip(ps[i].a, ps[i].b, uint64(e*10+m)); err != nil {
						errs[i] = err
						return
					}
				}
			}(i)
		}
		wg.Wait()
		for i, err := range errs {
			if err != nil {
				t.Fatalf("pair %d epoch %d: %v", i, e, err)
			}
		}
		rig.sleeper.cycle()
	}
	close(stop)
	if err := <-snapErr; err != nil {
		t.Fatal(err)
	}
	if err := check(rig.ep.Metrics()); err != nil {
		t.Fatal(err)
	}
}

// BenchmarkEpochBoundary measures what crossing a scheduled epoch
// boundary costs a live session pair, with and without the prefetch
// daemon. Each iteration advances the fake clock one interval and does
// one round trip — so the prefetch-off case pays the new epoch's
// dialect compile on the session hot path, while the prefetch-on case
// finds it already compiled (the daemon runs between iterations, off
// the measured path, exactly as it would run between boundaries in
// production). The demand-compiles/op metric makes the claim auditable:
// 0 with prefetch on, ~1 with prefetch off.
func BenchmarkEpochBoundary(b *testing.B) {
	genesis := time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)
	run := func(b *testing.B, prefetch bool) {
		clock := sched.NewFakeClock(genesis)
		schedule := NewSchedule(genesis, prefetchInterval).WithClock(clock.Now)
		opts := []Option{WithSchedule(schedule)}
		var sleeper *manualSleeper
		if prefetch {
			sleeper = newManualSleeper()
			opts = append(opts, WithPrefetch(2), withPrefetchSleep(sleeper.sleep))
		}
		ep, err := NewEndpoint(prefetchSpec, Options{PerNode: 2, Seed: 77}, opts...)
		if err != nil {
			b.Fatal(err)
		}
		if prefetch {
			ctx, cancel := context.WithCancel(context.Background())
			defer cancel()
			pf, err := ep.StartPrefetch(ctx)
			if err != nil {
				b.Fatal(err)
			}
			defer pf.Wait()
			defer cancel()
			<-sleeper.parked
		}
		ca, cb := Pipe()
		sa, err := ep.Session(ca)
		if err != nil {
			b.Fatal(err)
		}
		sb, err := ep.Session(cb)
		if err != nil {
			b.Fatal(err)
		}
		defer sa.Release()
		defer sb.Release()
		base := ep.Metrics()
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			clock.Advance(prefetchInterval)
			if err := trip(sa, sb, uint64(i)); err != nil {
				b.Fatal(err)
			}
			if prefetch {
				b.StopTimer()
				sleeper.cycle() // daemon refills the window off the measured path
				b.StartTimer()
			}
		}
		b.StopTimer()
		m := ep.Metrics()
		demand := m.Rotation.DemandCompiles() - base.Rotation.DemandCompiles()
		b.ReportMetric(float64(demand)/float64(b.N), "demand-compiles/op")
		if prefetch && demand != 0 {
			b.Fatalf("prefetch-on run paid %d demand compiles across %d boundaries, want 0", demand, b.N)
		}
		if !prefetch && demand == 0 {
			b.Fatalf("prefetch-off run paid no demand compiles across %d boundaries; the benchmark is not measuring the stall", b.N)
		}
	}
	b.Run("prefetch-off", func(b *testing.B) { run(b, false) })
	b.Run("prefetch-on", func(b *testing.B) { run(b, true) })
}
