package protoobf_test

import (
	"context"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"protoobf"
)

// startEchoListener serves the beacon echo loop used by the TCP resume
// tests: every accepted session answers each seqno with seqno+1000.
func startEchoListener(t *testing.T, ep *protoobf.Endpoint) *protoobf.Listener {
	t.Helper()
	ln, err := ep.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ln.Close() })
	go func() {
		for {
			sess, err := ln.Accept()
			if err != nil {
				return // listener closed
			}
			go func(sess *protoobf.Session) {
				defer sess.Close()
				for {
					got, err := sess.Recv()
					if err != nil {
						return
					}
					seq, err := got.Scope().GetUint("seqno")
					if err != nil {
						return
					}
					reply, err := sess.NewMessage()
					if err != nil {
						return
					}
					if reply.Scope().SetUint("seqno", seq+1000) != nil {
						return
					}
					if reply.Scope().SetString("note", "ack") != nil {
						return
					}
					if sess.Send(reply) != nil {
						return
					}
				}
			}(sess)
		}
	}()
	return ln
}

// echoTrip asks the echo server to bounce one seqno.
func echoTrip(sess *protoobf.Session, seqno uint64) error {
	m, err := sess.NewMessage()
	if err != nil {
		return err
	}
	if err := m.Scope().SetUint("seqno", seqno); err != nil {
		return err
	}
	if err := m.Scope().SetString("note", "n"); err != nil {
		return err
	}
	if err := sess.Send(m); err != nil {
		return err
	}
	got, err := sess.Recv()
	if err != nil {
		return err
	}
	v, err := got.Scope().GetUint("seqno")
	if err != nil {
		return err
	}
	if v != seqno+1000 {
		return fmt.Errorf("echoed seqno %d, want %d", v, seqno+1000)
	}
	return nil
}

// TestEndpointDialResume is the reconnect story over real TCP: a dialed
// session rekeys in-band, its connection is torn down mid-life, and
// DialResume re-attaches it — rekeyed family and all — on a brand-new
// connection through the same unmodified accept loop that serves fresh
// peers.
func TestEndpointDialResume(t *testing.T) {
	opts := protoobf.Options{PerNode: 1, Seed: 29}
	server, err := protoobf.NewEndpoint(beaconSpec, opts)
	if err != nil {
		t.Fatal(err)
	}
	client, err := protoobf.NewEndpoint(beaconSpec, opts)
	if err != nil {
		t.Fatal(err)
	}
	ln := startEchoListener(t, server)

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	sess, err := client.Dial(ctx, "tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	if err := echoTrip(sess, 1); err != nil {
		t.Fatal(err)
	}
	// Rekey in-band; the handshake completes across the next echoes.
	if _, err := sess.Rekey(0x0D1A); err != nil {
		t.Fatal(err)
	}
	if err := echoTrip(sess, 2); err != nil {
		t.Fatal(err)
	}
	if err := echoTrip(sess, 3); err != nil {
		t.Fatal(err)
	}
	// Rotate past the rekey boundary so the resumed state is nontrivial.
	for i := 0; i < 3; i++ {
		if _, err := sess.Rotate(); err != nil {
			t.Fatal(err)
		}
		if err := echoTrip(sess, 10+uint64(i)); err != nil {
			t.Fatal(err)
		}
	}
	wantEpoch := sess.Epoch()
	ticket, err := sess.Export()
	if err != nil {
		t.Fatal(err)
	}

	// The connection dies. A fresh Dial could never rejoin this session —
	// the server side would speak the base family — but DialResume does.
	if err := sess.Close(); err != nil {
		t.Fatal(err)
	}
	resumed, err := client.DialResume(ctx, "tcp", ln.Addr().String(), ticket)
	if err != nil {
		t.Fatal(err)
	}
	defer resumed.Close()
	if got := resumed.Epoch(); got != wantEpoch {
		t.Fatalf("resumed epoch = %d, want %d", got, wantEpoch)
	}
	for i := uint64(0); i < 4; i++ {
		if err := echoTrip(resumed, 100+i); err != nil {
			t.Fatalf("post-resume trip %d: %v", i, err)
		}
	}

	if got := client.Metrics().Resume.TicketsIssued; got != 1 {
		t.Fatalf("client tickets issued = %d, want 1", got)
	}
	// The accept side processes the resume frame on its Recv path; the
	// first post-resume echo has completed, so the accept is counted.
	if got := server.Metrics().Resume.Accepts; got != 1 {
		t.Fatalf("server resume accepts = %d, want 1", got)
	}
	if got := server.Metrics().Resume.Rejects(); got != 0 {
		t.Fatalf("server resume rejects = %d, want 0", got)
	}
}

// TestResumeWrongFamilyTicket: a ticket sealed by an endpoint with a
// different base seed is rejected locally by Resume (before anything
// touches the wire) and counted on the resuming endpoint.
func TestResumeWrongFamilyTicket(t *testing.T) {
	epA, err := protoobf.NewEndpoint(beaconSpec, protoobf.Options{PerNode: 1, Seed: 31})
	if err != nil {
		t.Fatal(err)
	}
	epB, err := protoobf.NewEndpoint(beaconSpec, protoobf.Options{PerNode: 1, Seed: 32})
	if err != nil {
		t.Fatal(err)
	}
	ca, cb := protoobf.Pipe()
	a, err := epA.Session(ca)
	if err != nil {
		t.Fatal(err)
	}
	b, err := epA.Session(cb)
	if err != nil {
		t.Fatal(err)
	}
	defer a.Release()
	defer b.Release()
	roundTrip(t, a, b, 1)
	ticket, err := a.Export()
	if err != nil {
		t.Fatal(err)
	}

	na, _ := protoobf.Pipe()
	if _, err := epB.Resume(na, ticket); err == nil {
		t.Fatal("ticket of a different family resumed")
	}
	if got := epB.Metrics().Resume.RejectedForged; got != 1 {
		t.Fatalf("forged rejects on resuming endpoint = %d, want 1", got)
	}
	// Truncated tickets die the same way.
	if _, err := epA.Resume(na, ticket[:4]); err == nil {
		t.Fatal("truncated ticket resumed")
	}
}

// TestKillResumeSoak is the migration soak: 64 concurrent sessions on
// one endpoint pair, each repeatedly exchanging traffic, rekeying its
// own family, being killed, and resuming on a fresh duplex — across
// scheduled epoch rotations — with every byte differentially verified.
// Run under -race this exercises ticket export/import racing the
// shared version cache, the family-liveness table, and the endpoint's
// resume counters from 64 goroutines at once.
func TestKillResumeSoak(t *testing.T) {
	const (
		nSessions = 64
		nCycles   = 3
	)
	clk := &fakeClock{t: time.Unix(1_700_000_000, 0)}
	schedule := protoobf.NewSchedule(clk.t, time.Minute).WithClock(clk.now)
	opts := protoobf.Options{PerNode: 1, Seed: 41}
	epSrv, err := protoobf.NewEndpoint(beaconSpec, opts, protoobf.WithSchedule(schedule))
	if err != nil {
		t.Fatal(err)
	}
	epCli, err := protoobf.NewEndpoint(beaconSpec, opts, protoobf.WithSchedule(schedule))
	if err != nil {
		t.Fatal(err)
	}

	type duo struct{ cli, srv *protoobf.Session }
	duos := make([]duo, nSessions)
	for i := range duos {
		ca, cb := protoobf.Pipe()
		cli, err := epCli.Session(ca)
		if err != nil {
			t.Fatal(err)
		}
		srv, err := epSrv.Session(cb)
		if err != nil {
			t.Fatal(err)
		}
		duos[i] = duo{cli: cli, srv: srv}
	}
	defer func() {
		for _, d := range duos {
			d.cli.Close()
			d.srv.Close()
		}
	}()

	for cycle := 0; cycle < nCycles; cycle++ {
		var wg sync.WaitGroup
		errs := make([]error, nSessions)
		for i := range duos {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				errs[i] = func() error {
					d := &duos[i]
					seq := uint64(cycle*1000 + i)
					// Traffic, then a session-private rekey; the
					// handshake completes across the next two trips.
					if err := soakTrip(d.cli, d.srv, seq); err != nil {
						return fmt.Errorf("pre-rekey: %w", err)
					}
					if _, err := d.cli.Rekey(int64(1000*cycle + i + 7)); err != nil {
						return fmt.Errorf("rekey: %w", err)
					}
					if err := soakTrip(d.cli, d.srv, seq+1); err != nil {
						return fmt.Errorf("rekey propose: %w", err)
					}
					if err := soakTrip(d.srv, d.cli, seq+2); err != nil {
						return fmt.Errorf("rekey ack: %w", err)
					}
					ticket, err := d.cli.Export()
					if err != nil {
						return fmt.Errorf("export: %w", err)
					}
					// Kill both ends; resume on a fresh duplex.
					d.cli.Close()
					d.srv.Close()
					ca, cb := protoobf.Pipe()
					srv2, err := epSrv.Session(cb)
					if err != nil {
						return fmt.Errorf("fresh acceptor: %w", err)
					}
					cli2, err := epCli.Resume(ca, ticket)
					if err != nil {
						return fmt.Errorf("resume: %w", err)
					}
					d.cli, d.srv = cli2, srv2
					if err := soakTrip(cli2, srv2, seq+3); err != nil {
						return fmt.Errorf("post-resume: %w", err)
					}
					return soakTrip(srv2, cli2, seq+4)
				}()
			}(i)
		}
		wg.Wait()
		for i, err := range errs {
			if err != nil {
				t.Fatalf("session %d cycle %d: %v", i, cycle, err)
			}
		}
		clk.advance(time.Minute)
	}

	srvM, cliM := epSrv.Metrics(), epCli.Metrics()
	if got, want := srvM.Resume.Accepts, uint64(nSessions*nCycles); got != want {
		t.Fatalf("server resume accepts = %d, want %d", got, want)
	}
	if got, want := cliM.Resume.TicketsIssued, uint64(nSessions*nCycles); got != want {
		t.Fatalf("client tickets issued = %d, want %d", got, want)
	}
	if got := srvM.Resume.Rejects() + cliM.Resume.Rejects(); got != 0 {
		t.Fatalf("soak produced %d resume rejects, want 0", got)
	}
	if srvM.Rotation.Rekeys == 0 {
		t.Fatal("soak completed no rekeys; it is not exercising migration of rekeyed sessions")
	}
}

// soakTrip sends one beacon from -> to and verifies the seqno.
func soakTrip(from, to *protoobf.Session, seqno uint64) error {
	m, err := from.NewMessage()
	if err != nil {
		return err
	}
	if err := m.Scope().SetUint("seqno", seqno); err != nil {
		return err
	}
	if err := m.Scope().SetString("note", "soak"); err != nil {
		return err
	}
	if err := from.Send(m); err != nil {
		return err
	}
	got, err := to.Recv()
	if err != nil {
		return err
	}
	v, err := got.Scope().GetUint("seqno")
	if err != nil {
		return err
	}
	if v != seqno {
		return fmt.Errorf("decoded seqno %d, want %d", v, seqno)
	}
	return nil
}

// BenchmarkResume measures what re-attaching a rekeyed session costs
// via a resumption ticket versus the no-ticket alternative — a fresh
// session that must negotiate a new in-band rekey (fresh family, fresh
// dialect compile, extra round trips) to get back to a private family.
// Each iteration reconnects over a fresh duplex up to the first
// verified round trip. The resume path stays warm (same lineage, cached
// dialects); the fresh path pays the re-rekey, exactly as a ticketless
// reconnect would in production.
func BenchmarkResume(b *testing.B) {
	opts := protoobf.Options{PerNode: 2, Seed: 61}
	newEndpoints := func(b *testing.B) (*protoobf.Endpoint, *protoobf.Endpoint) {
		b.Helper()
		epSrv, err := protoobf.NewEndpoint(beaconSpec, opts)
		if err != nil {
			b.Fatal(err)
		}
		epCli, err := protoobf.NewEndpoint(beaconSpec, opts)
		if err != nil {
			b.Fatal(err)
		}
		return epSrv, epCli
	}
	benchTrip := func(from, to *protoobf.Session, seq uint64) error {
		return soakTrip(from, to, seq)
	}

	b.Run("ticket-resume", func(b *testing.B) {
		epSrv, epCli := newEndpoints(b)
		// Establish once: traffic, an in-band rekey, a few rotations —
		// then export the ticket every iteration resumes from.
		ca, cb := protoobf.Pipe()
		cli, err := epCli.Session(ca)
		if err != nil {
			b.Fatal(err)
		}
		srv, err := epSrv.Session(cb)
		if err != nil {
			b.Fatal(err)
		}
		if err := benchTrip(cli, srv, 1); err != nil {
			b.Fatal(err)
		}
		if _, err := cli.Rekey(0x5EED); err != nil {
			b.Fatal(err)
		}
		if err := benchTrip(cli, srv, 2); err != nil {
			b.Fatal(err)
		}
		if err := benchTrip(srv, cli, 3); err != nil {
			b.Fatal(err)
		}
		ticket, err := cli.Export()
		if err != nil {
			b.Fatal(err)
		}
		cli.Close()
		srv.Close()

		base := epSrv.Metrics()
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			na, nb := protoobf.Pipe()
			srv2, err := epSrv.Session(nb)
			if err != nil {
				b.Fatal(err)
			}
			cli2, err := epCli.Resume(na, ticket)
			if err != nil {
				b.Fatal(err)
			}
			if err := benchTrip(cli2, srv2, uint64(i)); err != nil {
				b.Fatal(err)
			}
			cli2.Close()
			srv2.Close()
		}
		b.StopTimer()
		m := epSrv.Metrics()
		b.ReportMetric(float64(m.Rotation.DemandCompiles()-base.Rotation.DemandCompiles())/float64(b.N), "demand-compiles/op")
		if got := m.Resume.Accepts - base.Resume.Accepts; got != uint64(b.N) {
			b.Fatalf("resume accepts = %d, want %d", got, b.N)
		}
	})

	b.Run("fresh-dial-rekey", func(b *testing.B) {
		epSrv, epCli := newEndpoints(b)
		base := epSrv.Metrics()
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			na, nb := protoobf.Pipe()
			srv2, err := epSrv.Session(nb)
			if err != nil {
				b.Fatal(err)
			}
			cli2, err := epCli.Session(na)
			if err != nil {
				b.Fatal(err)
			}
			// A fresh family per reconnect, as a real re-rekey would be.
			if _, err := cli2.Rekey(int64(0x10_0000 + i)); err != nil {
				b.Fatal(err)
			}
			if err := benchTrip(cli2, srv2, uint64(i)); err != nil {
				b.Fatal(err)
			}
			if err := benchTrip(srv2, cli2, uint64(i)); err != nil {
				b.Fatal(err)
			}
			cli2.Close()
			srv2.Close()
		}
		b.StopTimer()
		m := epSrv.Metrics()
		b.ReportMetric(float64(m.Rotation.DemandCompiles()-base.Rotation.DemandCompiles())/float64(b.N), "demand-compiles/op")
	})
}

// TestWriteProm renders an endpoint's live metrics in the Prometheus
// text format and checks shape and a few values: every counter family
// has HELP/TYPE headers, the resume rejects carry reason labels, and
// the numbers match the snapshot they were rendered from.
func TestWriteProm(t *testing.T) {
	ep, err := protoobf.NewEndpoint(beaconSpec, protoobf.Options{PerNode: 1, Seed: 51})
	if err != nil {
		t.Fatal(err)
	}
	ca, cb := protoobf.Pipe()
	a, err := ep.Session(ca)
	if err != nil {
		t.Fatal(err)
	}
	b, err := ep.Session(cb)
	if err != nil {
		t.Fatal(err)
	}
	defer a.Release()
	defer b.Release()
	roundTrip(t, a, b, 9)
	if _, err := a.Export(); err != nil {
		t.Fatal(err)
	}

	m := ep.Metrics()
	var sb strings.Builder
	if err := protoobf.WriteProm(&sb, m); err != nil {
		t.Fatal(err)
	}
	out := sb.String()

	for _, want := range []string{
		"# HELP protoobf_rotation_compiles_total",
		"# TYPE protoobf_rotation_compiles_total counter",
		fmt.Sprintf("protoobf_rotation_compiles_total %d", m.Rotation.Compiles),
		fmt.Sprintf("protoobf_cache_hits_total %d", m.Rotation.Cache.Hits),
		"# TYPE protoobf_cache_entries gauge",
		fmt.Sprintf("protoobf_resume_tickets_issued_total %d", m.Resume.TicketsIssued),
		`protoobf_resume_rejects_total{reason="forged"} 0`,
		`protoobf_resume_rejects_total{reason="expired"} 0`,
		`protoobf_resume_rejects_total{reason="state"} 0`,
		`protoobf_cache_shard_hits_total{shard="0"}`,
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("prometheus output missing %q:\n%s", want, out)
		}
	}
	if m.Resume.TicketsIssued != 1 {
		t.Fatalf("tickets issued = %d, want 1", m.Resume.TicketsIssued)
	}
	// Exactly one exposition line per metric name+labels: no duplicates.
	seen := map[string]bool{}
	for _, line := range strings.Split(out, "\n") {
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		key := line[:strings.IndexByte(line, ' ')]
		if seen[key] {
			t.Fatalf("duplicate exposition line for %s", key)
		}
		seen[key] = true
	}
}
