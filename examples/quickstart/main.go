// Quickstart: compile a small message-format specification with
// obfuscation, build a message through the original field names,
// serialize it to obfuscated bytes, parse it back and inspect the
// generated protocol library.
package main

import (
	"fmt"
	"log"
	"strings"

	"protoobf"
)

const spec = `
protocol sensor;
root seq reading end {
    uint  station 2;
    uint  kind 1;
    uint  blen 2;
    seq body length(blen) {
        bytes name delim ";" min 1;
        uint  n 1;
        tabular samples count(n) { uint sample 2; }
    }
    optional alert when kind == 9 { bytes reason end; }
}
`

func main() {
	// Both peers compile the same spec with the same seed; regenerating
	// with a new seed yields a fresh protocol version without touching
	// this code (paper §I).
	proto, err := protoobf.Compile(spec, protoobf.Options{PerNode: 2, Seed: 2024})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(proto.Summary())
	fmt.Println("\napplied transformations:")
	fmt.Print(proto.Trace())

	// Build a message using ORIGINAL field names: the obfuscation is
	// invisible to the application (stable accessor interface, §VI).
	msg := proto.NewMessage()
	s := msg.Scope()
	check(s.SetUint("station", 0x0102))
	check(s.SetUint("kind", 9))
	check(s.SetString("name", "temp-probe-7"))
	for _, v := range []uint64{210, 215, 213} {
		item, err := s.Add("samples")
		check(err)
		check(item.SetUint("sample", v))
	}
	alert, err := s.Enable("alert")
	check(err)
	check(alert.SetString("reason", "over threshold"))

	wire, err := proto.Serialize(msg)
	check(err)
	fmt.Printf("\nobfuscated wire (%d bytes): %x\n", len(wire), wire)

	// The plain strings are scattered/transformed in the wire image.
	if !strings.Contains(string(wire), "temp-probe-7") {
		fmt.Println("note: the field value does not appear verbatim in the wire bytes")
	}

	back, err := proto.Parse(wire)
	check(err)
	bs := back.Scope()
	station, _ := bs.GetUint("station")
	name, _ := bs.GetBytes("name")
	items, _ := bs.Items("samples")
	fmt.Printf("parsed back: station=%#x name=%q samples=%d\n", station, name, len(items))
	for i, it := range items {
		v, _ := it.GetUint("sample")
		fmt.Printf("  sample[%d] = %d\n", i, v)
	}

	// The framework also emits a standalone Go library for this exact
	// obfuscated protocol (parser + serializer + accessors).
	src, err := proto.GenerateSource("sensorproto")
	check(err)
	fmt.Printf("\ngenerated library: %d lines of Go\n", strings.Count(src, "\n"))
}

func check(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
