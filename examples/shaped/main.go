// Traffic shaping in action: two endpoints speaking the same shaped
// profile exchange telemetry over an in-memory duplex while a tap
// counts what an on-path observer actually sees. The application sends
// tiny, bursty messages; the wire shows frame lengths sampled from the
// profile's bimodal bins and departures paced by its gap envelope —
// plus a cover frame once the session goes idle, which the receiver
// discards without surfacing. The endpoint's Metrics snapshot breaks
// the cost down: pad bytes, fragments, pacing delay, covers.
package main

import (
	"fmt"
	"io"
	"log"
	"time"

	"protoobf"
)

const spec = `
protocol beacon;
root seq msg end {
    uint  device 2;
    uint  seqno 4;
    uint  blen 2;
    seq body length(blen) {
        bytes status delim ";" min 1;
    }
    bytes sig end;
}
`

// meter counts the bytes and writes an observer on the client's side
// of the wire would see.
type meter struct {
	io.ReadWriter
	writes int
	bytes  int
}

func (m *meter) Write(p []byte) (int, error) {
	m.writes++
	m.bytes += len(p)
	return m.ReadWriter.Write(p)
}

func main() {
	opts := protoobf.Options{PerNode: 2, Seed: 0x5AFE}

	// A quick profile: bimodal lengths well above the app's frames, a
	// visible pacing envelope, covers after 150ms of silence. Both
	// peers must shape with the same profile — shaping changes the
	// data-frame payload layout.
	profile := protoobf.ShapeProfile{
		Name: "demo",
		Bins: []protoobf.ShapeBin{
			{Lo: 256, Hi: 512, Weight: 3},
			{Lo: 900, Hi: 1200, Weight: 1},
		},
		MTU:       1200,
		MinGap:    2 * time.Millisecond,
		MaxGap:    8 * time.Millisecond,
		CoverIdle: 150 * time.Millisecond,
	}
	epCli, err := protoobf.NewEndpoint(spec, opts, protoobf.WithShaping(profile))
	check(err)
	epSrv, err := protoobf.NewEndpoint(spec, opts, protoobf.WithShaping(profile))
	check(err)

	ca, cb := protoobf.Pipe()
	wire := &meter{ReadWriter: ca}
	cli, err := epCli.Session(wire)
	check(err)
	defer cli.Release()
	srv, err := epSrv.Session(cb)
	check(err)
	defer srv.Release()

	// The app sends 16 small beacons as fast as it can compose them;
	// the shaper turns that into profile-length, profile-paced frames.
	send := func(i int) {
		m, err := cli.NewMessage()
		check(err)
		s := m.Scope()
		check(s.SetUint("device", 7))
		check(s.SetUint("seqno", uint64(i)))
		check(s.SetBytes("status", []byte("ok;")))
		check(s.SetBytes("sig", nil))
		check(cli.Send(m))
		got, err := srv.Recv()
		check(err)
		seq, err := got.Scope().GetUint("seqno")
		check(err)
		if seq != uint64(i) {
			log.Fatalf("seqno %d != %d", seq, i)
		}
	}
	start := time.Now()
	for i := 0; i < 16; i++ {
		send(i)
	}
	elapsed := time.Since(start)
	fmt.Printf("16 beacons (~20 app bytes each) became %d wire bytes over %v — paced, padded, bimodal\n",
		wire.bytes, elapsed.Round(time.Millisecond))

	// Let the session idle past CoverIdle: the cover scheduler fills
	// the silence with decoys. The next Recv discards them on its way
	// to the real message — covers never surface to the application.
	time.Sleep(3 * profile.CoverIdle)
	send(16)

	cm := epCli.Metrics().Shape
	sm := epSrv.Metrics().Shape
	fmt.Printf("client shape metrics: %d shaped frames, %d pad bytes, %d fragments, %v pacing delay, %d covers sent\n",
		cm.ShapedFrames, cm.PadBytes, cm.Fragments, time.Duration(cm.DelayNanos).Round(time.Millisecond), cm.CoverSent)
	fmt.Printf("server shape metrics: %d covers discarded, %d unshape rejects\n",
		sm.CoverDropped, sm.UnshapeRejects)
}

func check(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
