// Version rotation (paper §VIII): peers that share a spec and a master
// seed derive a fresh obfuscated dialect per epoch, so a captured corpus
// from one epoch teaches an adversary nothing about the next. This demo
// shows three epochs of the same logical message and verifies that a
// peer can decode exactly the epochs it agrees on.
package main

import (
	"fmt"
	"log"

	"protoobf"
)

const spec = `
protocol beacon;
root seq msg end {
    uint  device 2;
    uint  seqno 4;
    uint  blen 2;
    seq body length(blen) {
        bytes status delim ";" min 1;
    }
    bytes sig end;
}
`

func main() {
	// Peer A and peer B configured identically (e.g. at deployment).
	a, err := protoobf.NewRotation(spec, protoobf.Options{PerNode: 2, Seed: 0xC0FFEE})
	check(err)
	b, err := protoobf.NewRotation(spec, protoobf.Options{PerNode: 2, Seed: 0xC0FFEE})
	check(err)

	for epoch := uint64(0); epoch < 3; epoch++ {
		sender, err := a.Version(epoch)
		check(err)
		receiver, err := b.Version(epoch)
		check(err)

		msg := sender.NewMessage()
		s := msg.Scope()
		check(s.SetUint("device", 42))
		check(s.SetUint("seqno", 1000+epoch))
		check(s.SetString("status", "ok"))
		check(s.SetBytes("sig", []byte{0xAA, 0xBB}))

		data, err := sender.Serialize(msg)
		check(err)
		fmt.Printf("epoch %d wire (%2d bytes): %x\n", epoch, len(data), data)

		back, err := receiver.Parse(data)
		check(err)
		seqno, _ := back.Scope().GetUint("seqno")
		fmt.Printf("epoch %d decoded seqno = %d (%d transformations in this dialect)\n",
			epoch, seqno, len(sender.Applied))
	}

	// A peer stuck on the wrong epoch cannot (usefully) decode.
	p0, err := a.Version(0)
	check(err)
	p1, err := a.Version(1)
	check(err)
	msg := p0.NewMessage()
	s := msg.Scope()
	check(s.SetUint("device", 42))
	check(s.SetUint("seqno", 7))
	check(s.SetString("status", "ok"))
	check(s.SetBytes("sig", nil))
	data, err := p0.Serialize(msg)
	check(err)
	if back, err := p1.Parse(data); err != nil {
		fmt.Printf("\nepoch-1 peer rejects an epoch-0 message: %v\n", err)
	} else {
		v, gerr := back.Scope().GetUint("seqno")
		fmt.Printf("\nepoch-1 peer mis-decodes the epoch-0 message (seqno=%d, err=%v)\n", v, gerr)
	}
}

func check(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
