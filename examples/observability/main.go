// The live observability surface: a server endpoint runs with event
// tracing on, serves real traffic — round trips, an in-band rekey, a
// kill-and-resume migration — and exposes everything it measured on an
// HTTP obs address (ServeObs): /metrics is a Prometheus page with the
// latency histograms (epoch boundary, rekey RTT, resume RTT, compile
// durations), /snapshot.json the same counters as JSON, /trace.json
// the structured event ring, and /debug/pprof the stock profiler. The
// program then scrapes its own surface like a monitoring system would
// and prints what came back — no client library on either side.
package main

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"log"
	"net/http"
	"strings"
	"time"

	"protoobf"
)

const spec = `
protocol beacon;
root seq msg end {
    uint  device 2;
    uint  seqno 4;
    uint  blen 2;
    seq body length(blen) {
        bytes status delim ";" min 1;
    }
    bytes sig end;
}
`

func main() {
	opts := protoobf.Options{PerNode: 2, Seed: 0x0B5E7E}

	// The client endpoint keeps a 256-event trace ring — it is the side
	// that proposes rekeys and presents resume tickets, so its
	// histograms time both round trips. The server runs untraced, as a
	// remote peer would.
	server, err := protoobf.NewEndpoint(spec, opts)
	check(err)
	client, err := protoobf.NewEndpoint(spec, opts, protoobf.WithTrace(256))
	check(err)

	// The obs surface is one call; ":0" picks a free port.
	obs, err := protoobf.ServeObs("127.0.0.1:0", client)
	check(err)
	defer obs.Close()
	fmt.Printf("obs surface on http://%s/metrics\n", obs.Addr())

	ln, err := server.Listen("tcp", "127.0.0.1:0")
	check(err)
	defer ln.Close()
	go serve(ln)

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()

	// Traffic worth observing: trips, a rekey handshake, a migration.
	sess, err := client.Dial(ctx, "tcp", ln.Addr().String())
	check(err)
	echo(sess, 1)
	_, err = sess.Rekey(0x5EED)
	check(err)
	echo(sess, 2) // carries the proposal; the server acks
	echo(sess, 3) // completes the handshake
	ticket, err := sess.Export()
	check(err)
	check(sess.Close())
	resumed, err := client.DialResume(ctx, "tcp", ln.Addr().String(), ticket)
	check(err)
	echo(resumed, 4)
	check(resumed.Close())

	// Scrape the Prometheus page and show the histogram families.
	page := get(obs.Addr(), "/metrics")
	check(protoobf.LintProm(page))
	shown := 0
	for _, line := range strings.Split(string(page), "\n") {
		if strings.HasPrefix(line, "# TYPE") && strings.Contains(line, "histogram") {
			fmt.Println(line)
			shown++
		}
	}
	fmt.Printf("scraped /metrics: %d bytes, lint clean, %d histogram families\n", len(page), shown)

	// The JSON snapshot carries the same numbers, typed.
	var snap protoobf.Metrics
	check(json.Unmarshal(get(obs.Addr(), "/snapshot.json"), &snap))
	fmt.Printf("snapshot: %d rekey handshake (p99 <= %v), %d ticket resume (p99 <= %v)\n",
		snap.Latency.RekeyRTT.Count,
		time.Duration(snap.Latency.RekeyRTT.Quantile(0.99)),
		snap.Latency.ResumeRTT.Count,
		time.Duration(snap.Latency.ResumeRTT.Quantile(0.99)))

	// And the trace ring replays the session lifecycle, event by event.
	var evs []protoobf.TraceEvent
	check(json.Unmarshal(get(obs.Addr(), "/trace.json"), &evs))
	fmt.Printf("trace: %d events\n", len(evs))
	for _, e := range evs {
		detail := ""
		if e.Detail != "" {
			detail = " (" + e.Detail + ")"
		}
		fmt.Printf("  seq=%-3d session=%d %s epoch=%d%s\n", e.Seq, e.Session, e.Kind, e.Epoch, detail)
	}
}

// get fetches one obs route, failing on a non-200 answer.
func get(addr, path string) []byte {
	resp, err := http.Get("http://" + addr + path)
	check(err)
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	check(err)
	if resp.StatusCode != http.StatusOK {
		log.Fatalf("GET %s: status %d", path, resp.StatusCode)
	}
	return body
}

// serve echoes each beacon's seqno back, +1000.
func serve(ln *protoobf.Listener) {
	for {
		sess, err := ln.Accept()
		if err != nil {
			return
		}
		go func(sess *protoobf.Session) {
			defer sess.Close()
			for {
				got, err := sess.Recv()
				if err != nil {
					return
				}
				seq, err := got.Scope().GetUint("seqno")
				if err != nil {
					return
				}
				reply, err := sess.NewMessage()
				if err != nil {
					return
				}
				s := reply.Scope()
				if s.SetUint("device", 9) != nil || s.SetUint("seqno", seq+1000) != nil ||
					s.SetString("status", "ack") != nil || s.SetBytes("sig", nil) != nil {
					return
				}
				if sess.Send(reply) != nil {
					return
				}
			}
		}(sess)
	}
}

// echo round-trips one seqno through the server.
func echo(sess *protoobf.Session, seqno uint64) {
	m, err := sess.NewMessage()
	check(err)
	s := m.Scope()
	check(s.SetUint("device", 1))
	check(s.SetUint("seqno", seqno))
	check(s.SetString("status", "ok"))
	check(s.SetBytes("sig", nil))
	check(sess.Send(m))
	got, err := sess.Recv()
	check(err)
	v, err := got.Scope().GetUint("seqno")
	check(err)
	if v != seqno+1000 {
		log.Fatalf("echoed seqno %d, want %d", v, seqno+1000)
	}
}

func check(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
