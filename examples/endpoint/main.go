// One endpoint, many peers (paper §VIII at deployment shape): a server
// compiles the dialect family once into an Endpoint and serves every
// client from it over real TCP — the long-lived polymorphic endpoint
// shape of ScrambleSuit-style deployments. Sessions minted from one
// Endpoint share the compiled dialect cache but rekey independently:
// here one client swaps its seed family mid-connection while its
// neighbors keep speaking the base family, which the pre-Endpoint API
// could not do without corrupting the shared Rotation.
package main

import (
	"context"
	"fmt"
	"log"
	"sync"

	"protoobf"
)

const spec = `
protocol beacon;
root seq msg end {
    uint  device 2;
    uint  seqno 4;
    uint  blen 2;
    seq body length(blen) {
        bytes status delim ";" min 1;
    }
    bytes sig end;
}
`

const clients = 4

func main() {
	opts := protoobf.Options{PerNode: 2, Seed: 0xC0FFEE}

	// The server side: one compiled family, unlimited sessions.
	server, err := protoobf.NewEndpoint(spec, opts)
	check(err)
	ln, err := server.Listen("tcp", "127.0.0.1:0")
	check(err)
	defer ln.Close()
	fmt.Printf("server endpoint listening on %s (one compiled family for all peers)\n", ln.Addr())

	go func() {
		for {
			sess, err := ln.Accept() // a ready session per connection
			if err != nil {
				return // listener closed
			}
			go serve(sess)
		}
	}()

	// Clients deployed identically: same (spec, options), own Endpoint.
	client, err := protoobf.NewEndpoint(spec, opts)
	check(err)

	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			sess, err := client.Dial(context.Background(), "tcp", ln.Addr().String())
			check(err)
			defer sess.Close()

			for i := 0; i < 2; i++ {
				send(sess, uint64(c), uint64(i))
			}
			// Client 0 rekeys its own connection mid-session: the seed
			// family swaps under this session only — the server session
			// serving it follows the in-band handshake, the other
			// clients keep the base family.
			if c == 0 {
				from, err := sess.Rekey(0xD1CE)
				check(err)
				fmt.Printf("client %d rekeyed its session from epoch %d (others unaffected)\n", c, from)
			}
			for i := 2; i < 4; i++ {
				send(sess, uint64(c), uint64(i))
			}
		}(c)
	}
	wg.Wait()

	fmt.Printf("served %d clients from one endpoint; %d dialect versions cached, shared by every session\n",
		clients, server.Rotation().CacheLen())
}

// serve echoes each beacon back with an acknowledging status.
func serve(sess *protoobf.Session) {
	defer sess.Close()
	for {
		m, err := sess.Recv() // handles the rekey handshake in-band
		if err != nil {
			return // client hung up
		}
		device, _ := m.Scope().GetUint("device")
		seqno, _ := m.Scope().GetUint("seqno")
		ack, err := sess.NewMessage()
		if err != nil {
			return
		}
		s := ack.Scope()
		if s.SetUint("device", device) != nil ||
			s.SetUint("seqno", seqno) != nil ||
			s.SetString("status", "ack") != nil ||
			s.SetBytes("sig", nil) != nil {
			return
		}
		if sess.Send(ack) != nil {
			return
		}
	}
}

// send round-trips one beacon and prints the acknowledgment.
func send(sess *protoobf.Session, device, seqno uint64) {
	m, err := sess.NewMessage()
	check(err)
	s := m.Scope()
	check(s.SetUint("device", device))
	check(s.SetUint("seqno", seqno))
	check(s.SetString("status", "ok"))
	check(s.SetBytes("sig", nil))
	check(sess.Send(m))
	ack, err := sess.Recv()
	check(err)
	got, _ := ack.Scope().GetUint("seqno")
	fmt.Printf("client %d: seqno %d acknowledged (session epoch %d)\n", device, got, sess.Epoch())
}

func check(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
