// The fleet topology in one process: two backend endpoints (each with
// ticket re-issue and a shared on-disk artifact cache) behind a
// routing gateway that holds no dialect state of its own. A client
// dials through the gateway, rekeys to a private dialect family,
// and then migrates between the two backends on resumption tickets —
// each ticket verified under the fleet seed at the front door, made
// single-use by the gateway's replay cache, and replaced in-band by
// the accepting backend. The final replay attempt shows a spent
// ticket dying at the gateway before any backend sees it.
package main

import (
	"context"
	"fmt"
	"log"
	"net"
	"os"
	"time"

	"protoobf"
)

const spec = `
protocol beacon;
root seq msg end {
    uint  device 2;
    uint  seqno 4;
    uint  blen 2;
    seq body length(blen) {
        bytes status delim ";" min 1;
    }
    bytes sig end;
}
`

const fleetSeed = 0x6A7E

func main() {
	opts := protoobf.Options{PerNode: 2, Seed: fleetSeed}
	artifacts, err := os.MkdirTemp("", "protoobf-artifacts-")
	check(err)
	defer os.RemoveAll(artifacts)

	// Two backends, as two processes would build them: same (spec,
	// seed), one shared artifact cache, tickets re-issued after every
	// rekey and resume so clients always hold a fresh (unspent) one.
	reg := protoobf.NewRegistry(0)
	backends := make([]*protoobf.Endpoint, 2)
	for i := range backends {
		ep, err := protoobf.NewEndpoint(spec, opts,
			protoobf.WithArtifactCache(artifacts),
			protoobf.WithTicketReissue(true))
		check(err)
		backends[i] = ep
		ln, err := ep.Listen("tcp", "127.0.0.1:0")
		check(err)
		defer ln.Close()
		go serve(ln, uint64(i+1)) // each backend tags its acks
		check(reg.Add(protoobf.Backend{
			Name: fmt.Sprintf("b%d", i+1),
			Addr: ln.Addr().String(),
		}))
	}

	// The gateway: routes on one peeked frame header, authenticates
	// tickets under the fleet seed, and makes them single-use.
	gw, err := protoobf.NewGateway(protoobf.GatewayConfig{
		Registry: reg,
		Opener:   protoobf.SeedOpener(fleetSeed),
		Replay:   protoobf.NewReplayCache(0),
	})
	check(err)
	gln, err := net.Listen("tcp", "127.0.0.1:0")
	check(err)
	go gw.Serve(gln)
	defer gw.Close()
	gwAddr := gln.Addr().String()
	fmt.Printf("gateway on %s fronting %d backends\n", gwAddr, len(reg.Backends()))

	client, err := protoobf.NewEndpoint(spec, opts,
		protoobf.WithArtifactCache(artifacts))
	check(err)
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()

	// Establish through the gateway and rekey to a private family.
	sess, err := client.Dial(ctx, "tcp", gwAddr)
	check(err)
	tag := echo(sess, 1)
	_, err = sess.Rekey(0x5EED)
	check(err)
	echo(sess, 2) // carries the proposal; the backend acks
	echo(sess, 3) // completes the handshake and triggers re-issue
	fmt.Printf("established on backend %d, rekeyed to a private family\n", tag)

	// Migrate twice: kill the connection, resume through the gateway on
	// the freshest ticket. The gateway routes each resume by the family
	// it reads from the ticket; whichever backend accepts restores the
	// session (artifact cache keeping it cheap) and issues a new ticket.
	var ticket []byte
	for hop := 1; hop <= 2; hop++ {
		ticket = sess.StoredTicket() // pushed by the backend after rekey/resume
		if ticket == nil {
			ticket, err = sess.Export()
			check(err)
		}
		check(sess.Close())
		sess, err = client.DialResume(ctx, "tcp", gwAddr, ticket)
		check(err)
		tag = echo(sess, uint64(100*hop))
		fmt.Printf("hop %d: resumed via gateway onto backend %d\n", hop, tag)
	}
	check(sess.Close())

	// `ticket` was presented on the final hop, so it is spent: a second
	// presentation dies at the front door — the gateway's replay cache
	// refuses it before any backend sees the stream.
	if replayed, err := client.DialResume(ctx, "tcp", gwAddr, ticket); err == nil {
		if _, rerr := replayed.Recv(); rerr == nil {
			log.Fatal("replayed ticket served traffic")
		}
		replayed.Close()
	}

	s := gw.Stats()
	fmt.Printf("gateway counters: fresh=%d resumed=%d replay-rejects=%d forged=%d\n",
		s.FreshRouted, s.ResumeRouted, s.ReplayRejects, s.ForgedRejects)
	for i, ep := range backends {
		m := ep.Metrics()
		fmt.Printf("backend %d: resume accepts=%d, tickets issued=%d, artifact loads=%d\n",
			i+1, m.Resume.Accepts, m.Resume.TicketsIssued, m.Rotation.ArtifactLoads)
	}
}

// serve echoes each beacon's seqno back (+1000), stamping the
// backend's tag into the device field so the client can tell which
// backend served it.
func serve(ln *protoobf.Listener, tag uint64) {
	for {
		sess, err := ln.Accept()
		if err != nil {
			return
		}
		go func(sess *protoobf.Session) {
			defer sess.Close()
			for {
				got, err := sess.Recv()
				if err != nil {
					return
				}
				seq, err := got.Scope().GetUint("seqno")
				if err != nil {
					return
				}
				reply, err := sess.NewMessage()
				if err != nil {
					return
				}
				s := reply.Scope()
				if s.SetUint("device", tag) != nil || s.SetUint("seqno", seq+1000) != nil ||
					s.SetString("status", "ack") != nil || s.SetBytes("sig", nil) != nil {
					return
				}
				if sess.Send(reply) != nil {
					return
				}
			}
		}(sess)
	}
}

// echo round-trips one seqno and returns the tag of the backend that
// answered.
func echo(sess *protoobf.Session, seqno uint64) uint64 {
	m, err := sess.NewMessage()
	check(err)
	s := m.Scope()
	check(s.SetUint("device", 1))
	check(s.SetUint("seqno", seqno))
	check(s.SetString("status", "ok"))
	check(s.SetBytes("sig", nil))
	check(sess.Send(m))
	got, err := sess.Recv()
	check(err)
	v, err := got.Scope().GetUint("seqno")
	check(err)
	if v != seqno+1000 {
		log.Fatalf("echoed seqno %d, want %d", v, seqno+1000)
	}
	tag, err := got.Scope().GetUint("device")
	check(err)
	return tag
}

func check(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
