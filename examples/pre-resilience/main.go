// Resilience demo (paper §VII-D): run the alignment-based protocol
// reverse engineering baseline against Modbus captures at increasing
// obfuscation levels and watch the inference collapse.
package main

import (
	"fmt"
	"log"

	"protoobf/internal/bench"
)

func main() {
	res, err := bench.RunResilience(bench.ResilienceConfig{
		PerType: 10,
		Levels:  []int{0, 1, 2, 3, 4},
		Seed:    2024,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(res.Table())
	fmt.Println()
	fmt.Println("The paper's Netzob expert recovered the exact plain Modbus format in")
	fmt.Println("under half an hour and obtained no relevant result on the 1-per-node")
	fmt.Println("version after two hours; the F1 collapse above is the same effect,")
	fmt.Println("measured against an automated alignment-based inference pipeline.")
}
