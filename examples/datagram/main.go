// Packet sessions in both wire modes. Part one soaks a session pair
// through a deliberately hostile in-memory packet link — 5% loss,
// duplication, adjacent reordering — with a rekey burst mid-stream,
// and shows the property streams cannot give: every surviving packet
// decodes on its own, so loss costs exactly the lost packets and
// nothing else. Part two is a zero-overhead echo over real loopback
// UDP: data packets leave as exactly the obfuscated payload, zero
// added bytes, which the endpoint's own byte counters prove.
package main

import (
	"context"
	"fmt"
	"io"
	"log"

	"protoobf"
	"protoobf/internal/session/dgram"
)

const spec = `
protocol beacon;
root seq msg end {
    uint  device 2;
    uint  seqno 4;
    uint  blen 2;
    seq body length(blen) {
        bytes status delim ";" min 1;
    }
    bytes sig end;
}
`

const msgs = 200

func main() {
	opts := protoobf.Options{PerNode: 2, Seed: 42}
	if err := lossyPair(opts); err != nil {
		log.Fatal(err)
	}
	if err := zeroOverheadUDP(opts); err != nil {
		log.Fatal(err)
	}
}

// lossyPair drives a packet session pair across a mutilated link.
func lossyPair(opts protoobf.Options) error {
	epA, err := protoobf.NewEndpoint(spec, opts)
	if err != nil {
		return err
	}
	epB, err := protoobf.NewEndpoint(spec, opts)
	if err != nil {
		return err
	}

	// The in-memory pair has UDP semantics; the lossy wrapper mutilates
	// the sender's packets deterministically (seeded), so this example
	// prints the same numbers every run.
	ca, cb := protoobf.PacketPipe()
	lossy := dgram.NewLossy(ca, dgram.LossyConfig{LossPct: 5, DupPct: 3, ReorderPct: 10, Seed: 7})
	sender, err := epA.PacketSession(lossy)
	if err != nil {
		return err
	}
	receiver, err := epB.PacketSession(cb)
	if err != nil {
		return err
	}

	for i := 0; i < msgs; i++ {
		// Rekey mid-stream: the proposal goes out as a redundant burst
		// of idempotent control packets, so the boundary survives the
		// same loss the data does.
		if i == msgs/2 {
			if _, err := sender.Rekey(0xBEEF); err != nil {
				return err
			}
		}
		if err := send(sender, uint64(i)); err != nil {
			return err
		}
	}
	lossy.Close() // flush the link; the receiver drains to EOF

	decoded := 0
	for {
		if _, err := receiver.Recv(); err != nil {
			if err == io.EOF {
				break
			}
			return err
		}
		decoded++
	}

	st := receiver.Stats()
	fmt.Printf("lossy pair: sent %d, link dropped %d / duped %d / reordered %d\n",
		msgs, lossy.Dropped, lossy.Duped, lossy.Reordered)
	fmt.Printf("            decoded %d, rekeys applied %d (redundant copies discarded %d), rejects %d\n",
		decoded, st.RekeysApplied, st.RekeyDups, st.Rejects())
	return nil
}

// zeroOverheadUDP echoes one message over loopback UDP with data
// packets stripped to the bare obfuscated payload.
func zeroOverheadUDP(opts protoobf.Options) error {
	epSrv, err := protoobf.NewEndpoint(spec, opts)
	if err != nil {
		return err
	}
	epCli, err := protoobf.NewEndpoint(spec, opts)
	if err != nil {
		return err
	}

	ln, err := epSrv.ListenPacket("udp", "127.0.0.1:0", protoobf.WithZeroOverhead(true))
	if err != nil {
		return err
	}
	defer ln.Close()
	client, err := epCli.DialPacket(context.Background(), "udp", ln.Addr().String(),
		protoobf.WithZeroOverhead(true))
	if err != nil {
		return err
	}
	defer client.Close()

	// The client's first packet both creates the server-side session
	// (ListenPacket demultiplexes peers by source address) and decodes
	// on it; the reply crosses back through the shared socket.
	if err := send(client, 1); err != nil {
		return err
	}
	server, err := ln.Accept()
	if err != nil {
		return err
	}
	if _, err := server.Recv(); err != nil {
		return err
	}
	if err := send(server, 2); err != nil {
		return err
	}
	if _, err := client.Recv(); err != nil {
		return err
	}

	// The proof, not the promise: wire bytes minus payload bytes on
	// data packets is the framing the session added — 12 per packet in
	// normal mode, exactly 0 here.
	d := epCli.Metrics().Dgram
	fmt.Printf("zero-overhead UDP: %d data packets, %d wire bytes, %d payload bytes, overhead %d bytes\n",
		d.DataSent, d.DataWireBytes, d.DataPayloadBytes, d.OverheadBytes())
	if d.OverheadBytes() != 0 {
		return fmt.Errorf("zero-overhead mode added %d bytes", d.OverheadBytes())
	}
	return nil
}

// send builds and ships one beacon message on c.
func send(c *protoobf.PacketSession, seq uint64) error {
	m, err := c.NewMessage()
	if err != nil {
		return err
	}
	s := m.Scope()
	if err := s.SetUint("device", 9); err != nil {
		return err
	}
	if err := s.SetUint("seqno", seq); err != nil {
		return err
	}
	if err := s.SetBytes("status", []byte("ok")); err != nil {
		return err
	}
	if err := s.SetBytes("sig", nil); err != nil {
		return err
	}
	return c.Send(m)
}
