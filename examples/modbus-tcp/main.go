// Modbus over TCP with an obfuscated protocol: the paper's §VII core
// application. A Modbus server and client are generated from the same
// (spec, seed) pair, so they speak the same transformed dialect; a
// network observer sees none of the plain TCP-Modbus structure.
package main

import (
	"fmt"
	"log"

	"protoobf/internal/core"
	"protoobf/internal/protocols/modbus"
	"protoobf/internal/rng"
	"protoobf/internal/transform"
	"protoobf/internal/wire"
)

func main() {
	const seed = 7
	const perNode = 2

	reqG, err := modbus.RequestGraph()
	check(err)
	respG, err := modbus.ResponseGraph()
	check(err)

	r := rng.New(seed)
	reqRes, err := transform.Obfuscate(reqG, transform.Options{PerNode: perNode}, r)
	check(err)
	respRes, err := transform.Obfuscate(respG, transform.Options{PerNode: perNode}, r)
	check(err)
	fmt.Printf("request graph: %d -> %d nodes (%d transformations)\n",
		reqG.NodeCount(), reqRes.Graph.NodeCount(), len(reqRes.Applied))
	fmt.Printf("response graph: %d -> %d nodes (%d transformations)\n",
		respG.NodeCount(), respRes.Graph.NodeCount(), len(respRes.Applied))

	srv := modbus.NewServer(reqRes.Graph, respRes.Graph, 1)
	addr, err := srv.Listen("127.0.0.1:0")
	check(err)
	defer srv.Close()
	fmt.Println("obfuscated modbus server on", addr)

	cli, err := modbus.Dial(addr, reqRes.Graph, respRes.Graph, 2)
	check(err)
	defer cli.Close()

	// Write three holding registers, then read them back.
	_, err = cli.Do(modbus.Request{TxID: 1, Unit: 1, Fc: modbus.FcWriteRegs, Addr: 100,
		Regs: []uint16{11, 22, 33}})
	check(err)
	resp, err := cli.Do(modbus.Request{TxID: 2, Unit: 1, Fc: modbus.FcReadHolding, Addr: 100, Qty: 3})
	check(err)
	fmt.Println("read holding 100..102 =", resp.Regs)

	// Set a coil and read it.
	_, err = cli.Do(modbus.Request{TxID: 3, Unit: 1, Fc: modbus.FcWriteCoil, Addr: 8, Val: 0xFF00})
	check(err)
	resp, err = cli.Do(modbus.Request{TxID: 4, Unit: 1, Fc: modbus.FcReadCoils, Addr: 8, Qty: 1})
	check(err)
	fmt.Printf("coil 8 = %d\n", resp.Bits[0]&1)

	// Show what actually travels on the wire vs the plain encoding.
	req := modbus.Request{TxID: 5, Unit: 1, Fc: modbus.FcReadHolding, Addr: 0x6B, Qty: 3}
	plainMsg, err := modbus.BuildRequest(reqG, rng.New(3), req)
	check(err)
	plainWire, err := wire.Serialize(plainMsg)
	check(err)
	obfMsg, err := modbus.BuildRequest(reqRes.Graph, rng.New(3), req)
	check(err)
	obfWire, err := wire.Serialize(obfMsg)
	check(err)
	fmt.Printf("\nplain request      (%2d bytes): %x\n", len(plainWire), plainWire)
	fmt.Printf("obfuscated request (%2d bytes): %x\n", len(obfWire), obfWire)

	_ = core.ObfuscationOptions{} // the public API wraps this pipeline; see examples/quickstart
}

func check(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
