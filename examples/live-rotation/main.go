// Live rotation (paper §VIII over a real byte stream): two peers
// exchange obfuscated messages over a connection while the protocol
// dialect rotates mid-session. Each frame carries its epoch outside the
// obfuscated payload; when peer A advances the epoch, peer B follows
// automatically on its next receive — no out-of-band coordination, and a
// corpus captured in one epoch is useless against the next.
package main

import (
	"fmt"
	"log"
	"net"

	"protoobf"
)

const spec = `
protocol beacon;
root seq msg end {
    uint  device 2;
    uint  seqno 4;
    uint  blen 2;
    seq body length(blen) {
        bytes status delim ";" min 1;
    }
    bytes sig end;
}
`

const epochs = 4 // epoch 0 plus three mid-session rotations

func main() {
	opts := protoobf.Options{PerNode: 2, Seed: 0xC0FFEE}

	// Peer A and peer B configured identically at deployment: each
	// compiles the same (spec, options) into its own Endpoint — the one
	// entry point a real deployment keeps for its whole session fleet.
	epA, err := protoobf.NewEndpoint(spec, opts)
	check(err)
	epB, err := protoobf.NewEndpoint(spec, opts)
	check(err)

	connA, connB := net.Pipe()
	defer connA.Close()
	defer connB.Close()

	a, err := epA.Session(connA)
	check(err)
	b, err := epB.Session(connB)
	check(err)

	// Peer B: decode every beacon with the dialect its frame names, and
	// acknowledge at B's current epoch — which follows A's rotations.
	done := make(chan struct{})
	go func() {
		defer close(done)
		for {
			m, err := b.Recv()
			if err != nil {
				return // pipe closed by A
			}
			s := m.Scope()
			seqno, _ := s.GetUint("seqno")
			status, _ := s.GetBytes("status")
			fmt.Printf("  B: epoch %d decoded seqno=%d status=%q\n", b.Epoch(), seqno, status)

			ack, err := b.NewMessage()
			if err != nil {
				log.Println("B:", err)
				return
			}
			as := ack.Scope()
			as.SetUint("device", 99)
			as.SetUint("seqno", seqno)
			as.SetString("status", "ack")
			as.SetBytes("sig", nil)
			if err := b.Send(ack); err != nil {
				log.Println("B:", err)
				return
			}
		}
	}()

	seqno := uint64(0)
	for epoch := uint64(0); epoch < epochs; epoch++ {
		proto, err := epA.Version(epoch)
		check(err)
		fmt.Printf("epoch %d: dialect with %d transformations\n", epoch, len(proto.Applied))

		for i := 0; i < 2; i++ {
			seqno++
			m, err := a.NewMessage()
			check(err)
			s := m.Scope()
			check(s.SetUint("device", 42))
			check(s.SetUint("seqno", seqno))
			check(s.SetString("status", "ok"))
			check(s.SetBytes("sig", []byte{0xAA, 0xBB}))
			check(a.Send(m))

			ack, err := a.Recv()
			check(err)
			v, _ := ack.Scope().GetUint("seqno")
			fmt.Printf("  A: ack for seqno=%d (A now at epoch %d)\n", v, a.Epoch())
		}

		// Rotate mid-session: only A decides; B follows on its next Recv.
		if epoch+1 < epochs {
			next, err := a.Rotate()
			check(err)
			fmt.Printf("A rotates the session to epoch %d\n", next)
		}
	}

	connA.Close()
	<-done
	fmt.Printf("\nexchanged %d beacons across %d epochs over one connection\n", seqno, epochs)
}

func check(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
