// Session migration in action: a client session on a TCP connection
// rekeys its dialect family in-band, exports a resumption ticket, has
// its connection killed mid-stream — and re-attaches on a brand-new
// connection with DialResume, same epoch, same rekeyed family,
// exchanging messages immediately. The same accept loop serves fresh
// and resuming peers; it never needs to know which is which. A fresh
// Dial, by contrast, could never rejoin this session: the server side
// of a new connection speaks the base family, and the client's rekeyed
// dialect would be gibberish to it.
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"protoobf"
)

const spec = `
protocol beacon;
root seq msg end {
    uint  device 2;
    uint  seqno 4;
    uint  blen 2;
    seq body length(blen) {
        bytes status delim ";" min 1;
    }
    bytes sig end;
}
`

func main() {
	opts := protoobf.Options{PerNode: 2, Seed: 0x316A7E}

	// Server and client endpoints, as two processes would build them
	// from the same (spec, seed).
	server, err := protoobf.NewEndpoint(spec, opts)
	check(err)
	client, err := protoobf.NewEndpoint(spec, opts)
	check(err)

	ln, err := server.Listen("tcp", "127.0.0.1:0")
	check(err)
	defer ln.Close()
	go serve(ln) // one ordinary echo loop for fresh AND resuming peers

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()

	// Establish: dial, move traffic, rekey the session's private family.
	sess, err := client.Dial(ctx, "tcp", ln.Addr().String())
	check(err)
	echo(sess, 1)
	from, err := sess.Rekey(0x5EED)
	check(err)
	echo(sess, 2) // carries the proposal; the server acks
	echo(sess, 3) // completes the handshake on our side
	for i := 0; i < 3; i++ {
		_, err = sess.Rotate()
		check(err)
		echo(sess, 10+uint64(i))
	}
	fmt.Printf("established: epoch %d, rekeyed from epoch %d, %d bytes moved\n",
		sess.Epoch(), from, sess.BytesMoved())

	// Export the ticket, then lose the connection.
	ticket, err := sess.Export()
	check(err)
	fmt.Printf("exported a %d-byte sealed resumption ticket\n", len(ticket))
	check(sess.Close())
	fmt.Println("connection killed")

	// Reconnect: the ticket re-attaches the session on a new stream.
	resumed, err := client.DialResume(ctx, "tcp", ln.Addr().String(), ticket)
	check(err)
	defer resumed.Close()
	fmt.Printf("resumed on a fresh connection at epoch %d (odometer %d bytes)\n",
		resumed.Epoch(), resumed.BytesMoved())
	for i := uint64(1); i <= 3; i++ {
		echo(resumed, 100+i)
	}
	fmt.Println("post-resume traffic flows under the rekeyed family")

	m := server.Metrics()
	fmt.Printf("server metrics: resume accepts=%d rejects=%d\n",
		m.Resume.Accepts, m.Resume.Rejects())
}

// serve echoes each beacon's seqno back, +1000.
func serve(ln *protoobf.Listener) {
	for {
		sess, err := ln.Accept()
		if err != nil {
			return
		}
		go func(sess *protoobf.Session) {
			defer sess.Close()
			for {
				got, err := sess.Recv()
				if err != nil {
					return
				}
				seq, err := got.Scope().GetUint("seqno")
				if err != nil {
					return
				}
				reply, err := sess.NewMessage()
				if err != nil {
					return
				}
				s := reply.Scope()
				if s.SetUint("device", 9) != nil || s.SetUint("seqno", seq+1000) != nil ||
					s.SetString("status", "ack") != nil || s.SetBytes("sig", nil) != nil {
					return
				}
				if sess.Send(reply) != nil {
					return
				}
			}
		}(sess)
	}
}

// echo round-trips one seqno through the server.
func echo(sess *protoobf.Session, seqno uint64) {
	m, err := sess.NewMessage()
	check(err)
	s := m.Scope()
	check(s.SetUint("device", 1))
	check(s.SetUint("seqno", seqno))
	check(s.SetString("status", "ok"))
	check(s.SetBytes("sig", nil))
	check(sess.Send(m))
	got, err := sess.Recv()
	check(err)
	v, err := got.Scope().GetUint("seqno")
	check(err)
	if v != seqno+1000 {
		log.Fatalf("echoed seqno %d, want %d", v, seqno+1000)
	}
}

func check(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
