// The rotation daemon in action: an endpoint with a fast wall-clock
// schedule runs StartPrefetch, so when each epoch boundary arrives the
// next dialects are already compiled and the live sessions rotate
// without ever paying a compile on their hot path. The endpoint's
// Metrics snapshot proves it — demand compiles stay at the one
// construction-time probe while the prefetch counters absorb every
// boundary — and a volume-triggered rekey (WithRekeyAfterBytes) swaps
// the seed family mid-run, ScrambleSuit-style, without disturbing the
// daemon.
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"protoobf"
)

const spec = `
protocol beacon;
root seq msg end {
    uint  device 2;
    uint  seqno 4;
    uint  blen 2;
    seq body length(blen) {
        bytes status delim ";" min 1;
    }
    bytes sig end;
}
`

const (
	interval = 300 * time.Millisecond // one dialect epoch
	epochs   = 4                      // boundaries to cross live
)

func main() {
	genesis := time.Now()
	opts := protoobf.Options{PerNode: 2, Seed: 0xDAE604}

	// One endpoint, scheduled rotation, a prefetch window of 2 epochs,
	// and a traffic-volume rekey trigger on every session.
	ep, err := protoobf.NewEndpoint(spec, opts,
		protoobf.WithSchedule(protoobf.NewSchedule(genesis, interval)),
		protoobf.WithPrefetch(2),
		protoobf.WithRekeyAfterBytes(1<<10),
	)
	check(err)

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	daemon, err := ep.StartPrefetch(ctx)
	check(err)
	fmt.Println("prefetch daemon started: next 2 epochs compile ahead of every boundary")

	// Two live sessions of the endpoint over an in-memory duplex (a TCP
	// pair via ep.Listen/ep.Dial behaves identically).
	ca, cb := protoobf.Pipe()
	a, err := ep.Session(ca)
	check(err)
	defer a.Release()
	b, err := ep.Session(cb)
	check(err)
	defer b.Release()

	seqno := uint64(0)
	for e := 0; e <= epochs; e++ {
		for i := 0; i < 4; i++ {
			// Both directions: the in-band rekey handshake completes on
			// the Recv paths, so each peer must read as well as write.
			seqno++
			send(a, b, seqno)
			send(b, a, seqno)
		}
		m := ep.Metrics()
		fmt.Printf("epoch %d: %d msgs, demand compiles %d, prefetched %d (lead %d), %d bytes moved, rekeys %d\n",
			a.Epoch(), seqno, m.Rotation.DemandCompiles(), m.Rotation.PrefetchCompiles,
			m.Prefetch.Lead(), a.BytesMoved(), m.Rotation.Rekeys)
		if e < epochs {
			time.Sleep(interval) // let the wall clock cross the boundary
		}
	}

	cancel()
	daemon.Wait()

	m := ep.Metrics()
	fmt.Printf("\nfinal snapshot:\n%s", m)
	fmt.Printf("sessions crossed %d scheduled boundaries without a boundary compile;\n", epochs)
	fmt.Println("the only demand compiles are the construction probe and the rekeyed family's first dialect")
}

// send round-trips one beacon from a to b and checks the seqno.
func send(a, b *protoobf.Session, seqno uint64) {
	m, err := a.NewMessage()
	check(err)
	s := m.Scope()
	check(s.SetUint("device", 1))
	check(s.SetUint("seqno", seqno))
	check(s.SetString("status", "ok"))
	check(s.SetBytes("sig", nil))
	check(a.Send(m))
	got, err := b.Recv()
	check(err)
	v, err := got.Scope().GetUint("seqno")
	check(err)
	if v != seqno {
		log.Fatalf("decoded seqno %d, want %d", v, seqno)
	}
}

func check(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
