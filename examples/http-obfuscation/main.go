// HTTP obfuscation tour: the same logical HTTP request serialized at
// increasing obfuscation levels, showing how the wire image diverges
// from the plain text protocol while the application code stays
// unchanged — and how the generated library grows (potency).
package main

import (
	"fmt"
	"log"
	"strings"

	"protoobf/internal/codegen"
	"protoobf/internal/metrics"
	"protoobf/internal/protocols/httpmsg"
	"protoobf/internal/rng"
	"protoobf/internal/transform"
	"protoobf/internal/wire"
)

func main() {
	reqG, err := httpmsg.RequestGraph()
	check(err)

	request := httpmsg.Request{
		Method:  "POST",
		URI:     "/api/v1/items",
		Version: "HTTP/1.1",
		Headers: []httpmsg.Header{
			{Name: "Host", Value: "example.com"},
			{Name: "User-Agent", Value: "protoobf-demo"},
		},
		Body: []byte("payload=hello"),
	}

	baselineSrc, err := codegen.Generate(reqG, codegen.Options{Seed: 1})
	check(err)
	baseline, err := metrics.Analyze(baselineSrc, "Parse")
	check(err)

	for perNode := 0; perNode <= 3; perNode++ {
		g := reqG
		applied := 0
		if perNode > 0 {
			res, err := transform.Obfuscate(reqG, transform.Options{PerNode: perNode}, rng.New(42))
			check(err)
			g = res.Graph
			applied = len(res.Applied)
		}
		m, err := httpmsg.BuildRequest(g, rng.New(7), request)
		check(err)
		data, err := wire.Serialize(m)
		check(err)

		src, err := codegen.Generate(g, codegen.Options{Seed: 1})
		check(err)
		pot, err := metrics.Analyze(src, "Parse")
		check(err)
		ratio := pot.Ratio(baseline)

		fmt.Printf("== %d obfuscation(s) per node (%d applied) ==\n", perNode, applied)
		fmt.Printf("wire (%d bytes): %s\n", len(data), preview(data))
		fmt.Printf("generated library: %d lines (%.1fx), call graph %d/%d (%.1fx size)\n\n",
			pot.Lines, ratio.Lines, pot.CallGraphSize, pot.CallGraphDepth, ratio.CallGraphSize)

		// Round trip through the obfuscated dialect.
		back, err := wire.Parse(g, data, rng.New(8))
		check(err)
		got, err := httpmsg.ExtractRequest(back)
		check(err)
		if got.URI != request.URI || string(got.Body) != string(request.Body) {
			log.Fatalf("round trip mismatch: %+v", got)
		}
	}
	fmt.Println("all levels round-tripped the same logical request")
}

// preview renders printable bytes and escapes the rest.
func preview(b []byte) string {
	const max = 120
	var sb strings.Builder
	for i, c := range b {
		if i >= max {
			sb.WriteString("…")
			break
		}
		if c >= 0x20 && c < 0x7f {
			sb.WriteByte(c)
		} else {
			fmt.Fprintf(&sb, "\\x%02x", c)
		}
	}
	return sb.String()
}

func check(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
