// Scheduled rotation: the paper's deployment model (§VIII, "new
// obfuscated versions at regular intervals") driven entirely by the
// rotation control plane. Two peers share only a specification, a master
// seed and a wall-clock schedule; their epochs advance from (simulated)
// time with no coordination, a partition heals because both clocks kept
// counting, and a periodic in-band rekey swaps the whole dialect family
// for a fresh obfuscation seed mid-connection.
package main

import (
	"fmt"
	"log"
	"time"

	"protoobf"
)

const spec = `
protocol beacon;
root seq msg end {
    uint  device 2;
    uint  seqno 4;
    uint  blen 2;
    seq body length(blen) {
        bytes status delim ";" min 1;
    }
    bytes sig end;
}
`

func main() {
	opts := protoobf.Options{PerNode: 2, Seed: 0xC0FFEE}

	// One shared schedule definition: epoch 0 starts at genesis, a new
	// dialect every interval. The demo drives a fake clock through the
	// schedule so it runs instantly; production peers would simply omit
	// WithClock and let time.Now do the driving.
	genesis := time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)
	const interval = time.Hour
	now := genesis
	clock := func() time.Time { return now }
	schedule := protoobf.NewSchedule(genesis, interval).WithClock(clock)

	// Each peer compiles the family once into an Endpoint; the control
	// plane is functional options shared by endpoint and session
	// construction.
	copts := []protoobf.EndpointOption{
		protoobf.WithSchedule(schedule),
		protoobf.WithRekeyEvery(3),  // swap the seed family every 3 epochs, in-band
		protoobf.WithCacheWindow(4), // keep at most 4 compiled dialects per session
	}
	epA, err := protoobf.NewEndpoint(spec, opts, copts...)
	check(err)
	epB, err := protoobf.NewEndpoint(spec, opts, copts...)
	check(err)
	connA, connB := protoobf.Pipe()
	a, err := epA.Session(connA)
	check(err)
	b, err := epB.Session(connB)
	check(err)

	send := func(from, to *protoobf.Session, seqno uint64, status string) {
		m, err := from.NewMessage() // adopts the schedule's current epoch
		check(err)
		s := m.Scope()
		check(s.SetUint("device", 42))
		check(s.SetUint("seqno", seqno))
		check(s.SetString("status", status))
		check(s.SetBytes("sig", nil))
		check(from.Send(m))
		got, err := to.Recv()
		check(err)
		v, _ := got.Scope().GetUint("seqno")
		fmt.Printf("  epoch %d: seqno=%d round-tripped (peer at epoch %d)\n",
			from.Epoch(), v, to.Epoch())
	}

	seqno := uint64(0)
	for step := 0; step < 5; step++ {
		fmt.Printf("wall clock %s -> schedule epoch %d\n",
			now.Format("15:04"), schedule.Epoch())
		seqno++
		send(a, b, seqno, "ok")
		seqno++
		send(b, a, seqno, "ack")
		now = now.Add(interval) // time passes; both peers see it
	}

	// Partition: the peers exchange nothing while many intervals pass.
	// Both clocks kept counting, so the first message after the gap
	// lands directly on the fleet-wide epoch — no resync protocol.
	fmt.Println("\n-- partition: 200 intervals pass with no traffic --")
	now = now.Add(200 * interval)
	seqno++
	send(a, b, seqno, "back")
	fmt.Printf("recovered at epoch %d; dialect caches stay bounded at 4 epochs per session\n",
		a.Epoch())

	fmt.Printf("\nexchanged %d beacons across %d scheduled epochs over one connection\n",
		seqno, a.Epoch()+1)
}

func check(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
