package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func write(t *testing.T, dir, name, content string) string {
	t.Helper()
	path := filepath.Join(dir, name)
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestCleanTree(t *testing.T) {
	dir := t.TempDir()
	write(t, dir, "README.md", `# Top
See [the docs](docs/GUIDE.md), [a section](docs/GUIDE.md#two-words), and
[the dir](docs/). External [site](https://example.org) is skipped.

`+"```"+`
[not a link](missing.md) inside a code fence
`+"```"+`
`)
	write(t, dir, "docs/GUIDE.md", "# Guide\n\n## Two words\n\nBack to [top](../README.md#top).\n")
	var out, errw bytes.Buffer
	if code := run([]string{dir}, &out, &errw); code != 0 {
		t.Fatalf("clean tree exits %d: %s", code, errw.String())
	}
	if !strings.Contains(out.String(), "0 broken") {
		t.Errorf("summary: %q", out.String())
	}
}

func TestBrokenLinksFail(t *testing.T) {
	dir := t.TempDir()
	write(t, dir, "a.md", "[gone](nope.md) and [bad anchor](b.md#missing)\n")
	write(t, dir, "b.md", "# Only heading\n")
	var out, errw bytes.Buffer
	if code := run([]string{dir}, &out, &errw); code != 1 {
		t.Fatalf("broken tree exits %d, want 1", code)
	}
	report := errw.String()
	if !strings.Contains(report, "nope.md") || !strings.Contains(report, "#missing") {
		t.Errorf("report misses breakages: %q", report)
	}
}

func TestSlugify(t *testing.T) {
	cases := map[string]string{
		"Two words":               "two-words",
		"Rotation control plane":  "rotation-control-plane",
		"`code` and *emph*!":      "code-and-emph",
		"Hyphen-ated_under score": "hyphen-ated_under-score",
		"Numbers 123":             "numbers-123",
	}
	for in, want := range cases {
		if got := slugify(in); got != want {
			t.Errorf("slugify(%q) = %q, want %q", in, got, want)
		}
	}
}

// TestRepoDocs runs the checker over the repository itself, so the
// tier-1 gate fails on documentation rot even before the CI docs job.
func TestRepoDocs(t *testing.T) {
	var out, errw bytes.Buffer
	if code := run([]string{"../.."}, &out, &errw); code != 0 {
		t.Fatalf("repository docs have broken links:\n%s", errw.String())
	}
}
