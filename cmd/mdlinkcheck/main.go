// Command mdlinkcheck verifies the intra-repository links of the
// project's markdown documentation: every relative link must point at
// an existing file or directory, and every #anchor into a markdown file
// must match a heading of the target. External links (http, https,
// mailto) are ignored — CI must not depend on the network — and links
// inside fenced code blocks are not links.
//
// Usage:
//
//	mdlinkcheck [root ...]     # default: .
//
// It exits nonzero listing every broken link, so the docs job fails
// before documentation rot lands.
package main

import (
	"bufio"
	"fmt"
	"io"
	"io/fs"
	"os"
	"path/filepath"
	"regexp"
	"strings"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, out, errw io.Writer) int {
	roots := args
	if len(roots) == 0 {
		roots = []string{"."}
	}
	var files []string
	for _, root := range roots {
		info, err := os.Stat(root)
		if err != nil {
			fmt.Fprintln(errw, "mdlinkcheck:", err)
			return 2
		}
		if !info.IsDir() {
			files = append(files, root)
			continue
		}
		err = filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if d.IsDir() {
				if name := d.Name(); name != "." && strings.HasPrefix(name, ".") {
					return filepath.SkipDir
				}
				return nil
			}
			if strings.EqualFold(filepath.Ext(path), ".md") {
				files = append(files, path)
			}
			return nil
		})
		if err != nil {
			fmt.Fprintln(errw, "mdlinkcheck:", err)
			return 2
		}
	}

	broken := 0
	checked := 0
	for _, file := range files {
		links, err := extractLinks(file)
		if err != nil {
			fmt.Fprintln(errw, "mdlinkcheck:", err)
			return 2
		}
		for _, l := range links {
			checked++
			if msg := checkLink(file, l); msg != "" {
				fmt.Fprintf(errw, "%s:%d: %s\n", file, l.line, msg)
				broken++
			}
		}
	}
	fmt.Fprintf(out, "mdlinkcheck: %d files, %d intra-repo links, %d broken\n",
		len(files), checked, broken)
	if broken > 0 {
		return 1
	}
	return 0
}

// link is one markdown link occurrence.
type link struct {
	target string
	line   int
}

// linkRe matches inline markdown links [text](target) and images; the
// target stops at whitespace or the closing paren, which also drops
// optional titles.
var linkRe = regexp.MustCompile(`\]\(([^)\s]+)(?:\s+"[^"]*")?\)`)

// extractLinks returns every link target of a markdown file with its
// line number, skipping fenced code blocks.
func extractLinks(path string) ([]link, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var links []link
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	inFence := false
	line := 0
	for sc.Scan() {
		line++
		text := sc.Text()
		if strings.HasPrefix(strings.TrimSpace(text), "```") {
			inFence = !inFence
			continue
		}
		if inFence {
			continue
		}
		for _, m := range linkRe.FindAllStringSubmatch(text, -1) {
			links = append(links, link{target: m[1], line: line})
		}
	}
	return links, sc.Err()
}

// checkLink validates one link found in file; it returns a description
// of the breakage or "" when the link is fine or out of scope.
func checkLink(file string, l link) string {
	t := l.target
	if strings.Contains(t, "://") || strings.HasPrefix(t, "mailto:") {
		return "" // external: not checked
	}
	path, anchor, _ := strings.Cut(t, "#")
	target := file
	if path != "" {
		target = filepath.Join(filepath.Dir(file), filepath.FromSlash(path))
		info, err := os.Stat(target)
		if err != nil {
			return fmt.Sprintf("broken link %q: %s does not exist", t, target)
		}
		if anchor != "" && info.IsDir() {
			return fmt.Sprintf("broken link %q: anchor into a directory", t)
		}
	}
	if anchor == "" {
		return ""
	}
	if !strings.EqualFold(filepath.Ext(target), ".md") {
		return "" // anchors into non-markdown files are not checked
	}
	anchors, err := headingAnchors(target)
	if err != nil {
		return fmt.Sprintf("broken link %q: %v", t, err)
	}
	if !anchors[strings.ToLower(anchor)] {
		return fmt.Sprintf("broken link %q: no heading for anchor #%s in %s", t, anchor, target)
	}
	return ""
}

// headingAnchors collects the GitHub-style anchor slugs of every
// heading in a markdown file, with duplicate headings suffixed -1, -2,
// ... as GitHub does.
func headingAnchors(path string) (map[string]bool, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	anchors := make(map[string]bool)
	seen := make(map[string]int)
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	inFence := false
	for sc.Scan() {
		text := sc.Text()
		if strings.HasPrefix(strings.TrimSpace(text), "```") {
			inFence = !inFence
			continue
		}
		if inFence || !strings.HasPrefix(text, "#") {
			continue
		}
		title := strings.TrimLeft(text, "#")
		if title == text || !strings.HasPrefix(title, " ") {
			continue // not a heading (e.g. a #! line)
		}
		slug := slugify(strings.TrimSpace(title))
		if n := seen[slug]; n > 0 {
			anchors[fmt.Sprintf("%s-%d", slug, n)] = true
		} else {
			anchors[slug] = true
		}
		seen[slug]++
	}
	return anchors, sc.Err()
}

// slugify approximates GitHub's heading-to-anchor rule: lowercase,
// spaces to hyphens, markdown emphasis stripped, punctuation dropped.
func slugify(title string) string {
	var sb strings.Builder
	for _, r := range strings.ToLower(title) {
		switch {
		case r >= 'a' && r <= 'z' || r >= '0' && r <= '9' || r == '-' || r == '_':
			sb.WriteRune(r)
		case r == ' ':
			sb.WriteByte('-')
		}
	}
	return sb.String()
}
