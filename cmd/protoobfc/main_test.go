package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRunBuiltin(t *testing.T) {
	out := filepath.Join(t.TempDir(), "gen.go")
	if err := run([]string{"-builtin", "modbus-request", "-per-node", "1", "-seed", "3", "-o", out}); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	src := string(data)
	for _, want := range []string{"package obfproto", "func Parse(", "func SelfTest()"} {
		if !strings.Contains(src, want) {
			t.Errorf("output lacks %q", want)
		}
	}
}

func TestRunSpecFile(t *testing.T) {
	spec := filepath.Join(t.TempDir(), "p.spec")
	if err := os.WriteFile(spec, []byte(`
protocol filep;
root seq m end { uint a 2; bytes b end; }
`), 0o644); err != nil {
		t.Fatal(err)
	}
	out := filepath.Join(t.TempDir(), "gen.go")
	if err := run([]string{"-spec", spec, "-per-node", "0", "-pkg", "filep", "-o", out}); err != nil {
		t.Fatal(err)
	}
	data, _ := os.ReadFile(out)
	if !strings.Contains(string(data), "package filep") {
		t.Error("package name flag ignored")
	}
}

func TestRunDot(t *testing.T) {
	out := filepath.Join(t.TempDir(), "g.dot")
	if err := run([]string{"-builtin", "http-request", "-per-node", "1", "-dot", "-o", out}); err != nil {
		t.Fatal(err)
	}
	data, _ := os.ReadFile(out)
	if !strings.Contains(string(data), "digraph") {
		t.Error("dot output malformed")
	}
}

func TestRunExclude(t *testing.T) {
	out := filepath.Join(t.TempDir(), "gen.go")
	err := run([]string{"-builtin", "modbus-request", "-per-node", "1", "-seed", "3",
		"-exclude", "PadInsert,ReadFromEnd", "-o", out})
	if err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-builtin", "modbus-request", "-exclude", "Nope", "-o", out}); err == nil {
		t.Error("unknown exclude accepted")
	}
}

func TestRunErrors(t *testing.T) {
	if err := run([]string{}); err == nil {
		t.Error("missing spec accepted")
	}
	if err := run([]string{"-builtin", "nope"}); err == nil {
		t.Error("unknown builtin accepted")
	}
	if err := run([]string{"-spec", "/does/not/exist"}); err == nil {
		t.Error("missing file accepted")
	}
}

func TestSplitComma(t *testing.T) {
	got := splitComma("a,b,,c")
	if len(got) != 3 || got[0] != "a" || got[2] != "c" {
		t.Errorf("splitComma = %v", got)
	}
	if splitComma("") != nil {
		t.Error("empty input should yield nil")
	}
}
