// Command protoobfc is the ProtoObf compiler: it reads a message-format
// specification, applies the requested number of obfuscating
// transformations per node, and emits the Go source code of the
// resulting protocol library (parser, serializer, accessors, SelfTest).
//
// Usage:
//
//	protoobfc -spec proto.spec -per-node 2 -seed 42 -pkg myproto -o myproto.go
//	protoobfc -spec proto.spec -trace          # print the transformation trace
//	protoobfc -spec proto.spec -dot            # print the graph in DOT format
//	protoobfc -builtin modbus-request ...      # use a bundled specification
package main

import (
	"flag"
	"fmt"
	"os"

	"protoobf/internal/core"
	"protoobf/internal/protocols/httpmsg"
	"protoobf/internal/protocols/modbus"
)

var builtins = map[string]string{
	"modbus-request":  modbus.RequestSpec,
	"modbus-response": modbus.ResponseSpec,
	"http-request":    httpmsg.RequestSpec,
	"http-response":   httpmsg.ResponseSpec,
}

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "protoobfc:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("protoobfc", flag.ContinueOnError)
	specPath := fs.String("spec", "", "path to the message format specification")
	builtin := fs.String("builtin", "", "use a bundled specification (modbus-request, modbus-response, http-request, http-response)")
	perNode := fs.Int("per-node", 1, "obfuscations per graph node (0 = plain)")
	seed := fs.Int64("seed", 1, "obfuscation seed (same seed = same protocol)")
	pkg := fs.String("pkg", "obfproto", "generated package name")
	out := fs.String("o", "", "output file (default: stdout)")
	trace := fs.Bool("trace", false, "print the applied transformations to stderr")
	dot := fs.Bool("dot", false, "print the transformed graph in Graphviz DOT format instead of code")
	exclude := fs.String("exclude", "", "comma-separated transformations to exclude")
	if err := fs.Parse(args); err != nil {
		return err
	}

	var source string
	switch {
	case *builtin != "":
		s, ok := builtins[*builtin]
		if !ok {
			return fmt.Errorf("unknown builtin %q", *builtin)
		}
		source = s
	case *specPath != "":
		data, err := os.ReadFile(*specPath)
		if err != nil {
			return err
		}
		source = string(data)
	default:
		return fmt.Errorf("one of -spec or -builtin is required")
	}

	opts := core.ObfuscationOptions{PerNode: *perNode, Seed: *seed}
	if *exclude != "" {
		opts.Exclude = splitComma(*exclude)
	}
	proto, err := core.Compile(source, opts)
	if err != nil {
		return err
	}
	fmt.Fprintln(os.Stderr, proto.Summary())
	if *trace {
		fmt.Fprint(os.Stderr, proto.Trace())
	}
	var output string
	if *dot {
		output = proto.Graph.Dot()
	} else {
		output, err = proto.GenerateSource(*pkg)
		if err != nil {
			return err
		}
	}
	if *out == "" {
		fmt.Print(output)
		return nil
	}
	return os.WriteFile(*out, []byte(output), 0o644)
}

func splitComma(s string) []string {
	var out []string
	start := 0
	for i := 0; i <= len(s); i++ {
		if i == len(s) || s[i] == ',' {
			if i > start {
				out = append(out, s[start:i])
			}
			start = i + 1
		}
	}
	return out
}
