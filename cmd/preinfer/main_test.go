package main

import (
	"encoding/hex"
	"os"
	"path/filepath"
	"testing"
)

func TestReadCapture(t *testing.T) {
	path := filepath.Join(t.TempDir(), "trace.hex")
	content := hex.EncodeToString([]byte("hello")) + "\n\n" + hex.EncodeToString([]byte{1, 2, 3}) + "\n"
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	msgs, err := readCapture(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(msgs) != 2 || string(msgs[0]) != "hello" || len(msgs[1]) != 3 {
		t.Errorf("msgs = %q", msgs)
	}
	// Bad hex reports the line.
	if err := os.WriteFile(path, []byte("zz\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := readCapture(path); err == nil {
		t.Error("bad hex accepted")
	}
}

func TestRunCaptureMode(t *testing.T) {
	path := filepath.Join(t.TempDir(), "trace.hex")
	var content string
	for _, m := range []string{"GET /a HTTP", "GET /b HTTP", "POST /c HTTP"} {
		content += hex.EncodeToString([]byte(m)) + "\n"
	}
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-capture", path, "-threshold", "0.5"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunDemoMode(t *testing.T) {
	if err := run([]string{"-demo-modbus", "-per-node", "1", "-per-type", "4"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunErrors(t *testing.T) {
	if err := run([]string{}); err == nil {
		t.Error("no mode accepted")
	}
	if err := run([]string{"-capture", "/does/not/exist"}); err == nil {
		t.Error("missing capture accepted")
	}
	// A capture with a single message cannot be analyzed.
	path := filepath.Join(t.TempDir(), "one.hex")
	if err := os.WriteFile(path, []byte(hex.EncodeToString([]byte("x"))+"\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-capture", path}); err == nil {
		t.Error("single-message capture accepted")
	}
}
