// Command preinfer runs the alignment-based protocol reverse engineering
// baseline on a capture: messages are clustered by Needleman–Wunsch
// similarity (UPGMA) and each cluster's field boundaries are inferred
// from the static/dynamic column structure — the classic PI/Netzob
// pipeline the paper's obfuscation is designed to defeat.
//
// The capture format is one message per line, hex-encoded. With
// -demo-modbus the tool generates its own Modbus capture (plain and
// obfuscated) and scores the inference against ground truth.
//
// Usage:
//
//	preinfer -capture trace.hex -threshold 0.5
//	preinfer -demo-modbus -per-node 1
package main

import (
	"bufio"
	"encoding/hex"
	"flag"
	"fmt"
	"os"

	"protoobf/internal/pre"
	"protoobf/internal/protocols/modbus"
	"protoobf/internal/rng"
	"protoobf/internal/transform"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "preinfer:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("preinfer", flag.ContinueOnError)
	capture := fs.String("capture", "", "hex capture file, one message per line")
	threshold := fs.Float64("threshold", 0.5, "clustering similarity threshold")
	demo := fs.Bool("demo-modbus", false, "generate and analyze a Modbus demo capture")
	perNode := fs.Int("per-node", 1, "obfuscation level for the demo capture")
	perType := fs.Int("per-type", 10, "messages per type in the demo capture")
	seed := fs.Int64("seed", 1, "demo capture seed")
	if err := fs.Parse(args); err != nil {
		return err
	}

	if *demo {
		return demoModbus(*perNode, *perType, *threshold, *seed)
	}
	if *capture == "" {
		return fmt.Errorf("pass -capture or -demo-modbus")
	}
	msgs, err := readCapture(*capture)
	if err != nil {
		return err
	}
	if len(msgs) < 2 {
		return fmt.Errorf("capture has %d messages; need at least 2", len(msgs))
	}
	sim := pre.SimilarityMatrix(msgs)
	clusters := pre.Cluster(sim, *threshold)
	fmt.Printf("%d messages -> %d clusters (threshold %.2f)\n", len(msgs), len(clusters), *threshold)
	for ci, c := range clusters {
		sub := make([][]byte, len(c))
		for k, i := range c {
			sub[k] = msgs[i]
		}
		model := pre.InferFields(sub)
		fmt.Printf("cluster %d: %d messages, template %d bytes, inferred field starts %v\n",
			ci, len(c), len(sub[model.Template]), model.Boundaries)
	}
	return nil
}

func readCapture(path string) ([][]byte, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var msgs [][]byte
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	line := 0
	for sc.Scan() {
		line++
		text := sc.Text()
		if text == "" {
			continue
		}
		b, err := hex.DecodeString(text)
		if err != nil {
			return nil, fmt.Errorf("line %d: %w", line, err)
		}
		msgs = append(msgs, b)
	}
	return msgs, sc.Err()
}

func demoModbus(perNode, perType int, threshold float64, seed int64) error {
	reqG, err := modbus.RequestGraph()
	if err != nil {
		return err
	}
	r := rng.New(seed)

	analyze := func(title string, msgs [][]byte, labels []int, truth [][]int) {
		a := pre.Run(msgs, labels, truth, threshold)
		fmt.Printf("%-28s clusters=%-3d true-types=%d pairwiseF1=%.2f fieldF1=%.2f\n",
			title, a.Classification.Clusters, a.Classification.TrueTypes,
			a.Classification.PairwiseF1, a.FieldF1)
	}

	msgs, labels, truth := pre.ModbusTrace(reqG, r, perType)
	analyze("plain modbus:", msgs, labels, truth)

	if perNode > 0 {
		res, err := transform.Obfuscate(reqG, transform.Options{PerNode: perNode}, rng.New(seed+1))
		if err != nil {
			return err
		}
		omsgs, olabels, otruth := pre.ModbusTrace(res.Graph, r, perType)
		analyze(fmt.Sprintf("obfuscated (%d/node):", perNode), omsgs, olabels, otruth)
		fmt.Printf("(%d transformations applied)\n", len(res.Applied))
	}
	return nil
}
