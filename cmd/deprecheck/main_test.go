package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func write(t *testing.T, dir, name, src string) {
	t.Helper()
	path := filepath.Join(dir, name)
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
}

func TestAuditFlagsQualifiedCalls(t *testing.T) {
	dir := t.TempDir()
	write(t, dir, "examples/demo/main.go", `package main

import "protoobf"

func main() {
	_, _, _ = protoobf.NewSessionPair("spec", protoobf.Options{})
	_, _ = protoobf.NewEndpoint("spec", protoobf.Options{}) // fine
}
`)
	got, err := audit(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || !strings.Contains(got[0], "NewSessionPair") {
		t.Fatalf("audit = %v, want one NewSessionPair violation", got)
	}
}

func TestAuditFlagsAliasedAndDotImports(t *testing.T) {
	dir := t.TempDir()
	write(t, dir, "aliased.go", `package main

import po "protoobf"

func main() { _, _ = po.NewSession(nil, nil) }
`)
	write(t, dir, "dotted.go", `package other

import . "protoobf"

func use() { _, _, _ = DialSession("x", nil) }
`)
	got, err := audit(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 {
		t.Fatalf("audit = %v, want aliased + dot-import violations", got)
	}
}

func TestAuditFlagsUnqualifiedInPackage(t *testing.T) {
	dir := t.TempDir()
	write(t, dir, "helper.go", `package protoobf

func helper() {
	_, _ = NewSession(nil, nil)
}
`)
	got, err := audit(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || !strings.Contains(got[0], "NewSession") {
		t.Fatalf("audit = %v, want one NewSession violation", got)
	}
}

func TestAuditExemptsDeprecatedFiles(t *testing.T) {
	dir := t.TempDir()
	write(t, dir, "deprecated.go", `package protoobf

func NewSession(a, b any) (any, error) { return NewSessionWith(a, b) }
func NewSessionWith(a, b any) (any, error) { return nil, nil }
`)
	write(t, dir, "deprecated_test.go", `package protoobf_test

import "protoobf"

func use() { _, _, _ = protoobf.DialSession("x", nil) }
`)
	got, err := audit(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Fatalf("audit flagged exempt files: %v", got)
	}
}

func TestAuditIgnoresOtherPackagesBareNames(t *testing.T) {
	dir := t.TempDir()
	write(t, dir, "other/thing.go", `package other

func NewSession() {}
func use() { NewSession() }
`)
	got, err := audit(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Fatalf("audit flagged an unrelated package's NewSession: %v", got)
	}
}

// TestRepoIsClean runs the audit over this repository itself — the same
// invocation CI uses.
func TestRepoIsClean(t *testing.T) {
	got, err := audit("../..")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Fatalf("repository calls deprecated constructors outside deprecated files:\n%s",
			strings.Join(got, "\n"))
	}
}
