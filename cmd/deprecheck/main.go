// Command deprecheck is the deprecation audit CI runs over this
// repository: it fails when non-deprecated code calls one of the
// deprecated session constructors. The deprecated API must keep
// compiling and passing its own tests, but nothing else in the repo —
// examples, benchmarks, tools, new tests — may quietly depend on it.
//
// The rule is file-granular: a file whose base name contains
// "deprecated" (deprecated.go, deprecated_test.go) is exempt, because
// that is where the wrappers and their tests live. Everything else is
// audited. Both qualified calls (protoobf.NewSession) and unqualified
// calls from inside the protoobf package are caught.
//
// Usage:
//
//	deprecheck [root]
//
// Exit status 1 when any violation is found.
package main

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// deprecatedCalls are the constructors retired by the Endpoint API.
var deprecatedCalls = map[string]string{
	"NewSession":         "Endpoint.Session",
	"NewSessionWith":     "Endpoint.Session with options",
	"NewStaticSession":   "NewEndpoint(WithStaticProtocol)",
	"NewSessionPair":     "two Endpoints over Pipe()",
	"NewSessionPairWith": "two Endpoints over Pipe() with options",
	"DialSession":        "Endpoint.Dial",
}

func main() {
	root := "."
	if len(os.Args) > 1 {
		root = os.Args[1]
	}
	violations, err := audit(root)
	if err != nil {
		fmt.Fprintln(os.Stderr, "deprecheck:", err)
		os.Exit(2)
	}
	if len(violations) > 0 {
		for _, v := range violations {
			fmt.Println(v)
		}
		fmt.Fprintf(os.Stderr, "deprecheck: %d call(s) to deprecated constructors outside deprecated files\n", len(violations))
		os.Exit(1)
	}
	fmt.Println("deprecheck: no deprecated-constructor calls outside deprecated files")
}

// audit walks root and returns one formatted line per violation,
// sorted for stable output.
func audit(root string) ([]string, error) {
	var violations []string
	err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			name := d.Name()
			if name == ".git" || name == "testdata" {
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(path, ".go") || exempt(path) {
			return nil
		}
		found, err := auditFile(path)
		if err != nil {
			return err
		}
		violations = append(violations, found...)
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.Strings(violations)
	return violations, nil
}

// exempt reports whether the file hosts the deprecated API or its
// tests.
func exempt(path string) bool {
	return strings.Contains(strings.ToLower(filepath.Base(path)), "deprecated")
}

// auditFile parses one file and collects calls to deprecated
// constructors: qualified calls through whatever local name the file
// imports the protoobf package under (plain, aliased, or dot), and
// bare X(...) inside package protoobf itself (where the constructors
// are in scope unqualified).
func auditFile(path string) ([]string, error) {
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, path, nil, parser.SkipObjectResolution)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	// Bare identifiers resolve to the deprecated constructors inside the
	// package itself and under a dot import of it.
	bareInScope := f.Name.Name == "protoobf"
	qualifiers := map[string]bool{}
	for _, imp := range f.Imports {
		if imp.Path.Value != `"protoobf"` {
			continue
		}
		switch {
		case imp.Name == nil:
			qualifiers["protoobf"] = true
		case imp.Name.Name == ".":
			bareInScope = true
		case imp.Name.Name != "_":
			qualifiers[imp.Name.Name] = true
		}
	}
	var found []string
	ast.Inspect(f, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		var name string
		switch fun := call.Fun.(type) {
		case *ast.SelectorExpr:
			if x, ok := fun.X.(*ast.Ident); ok && qualifiers[x.Name] {
				name = fun.Sel.Name
			}
		case *ast.Ident:
			if bareInScope {
				name = fun.Name
			}
		}
		if repl, bad := deprecatedCalls[name]; bad {
			pos := fset.Position(call.Pos())
			found = append(found, fmt.Sprintf("%s:%d: call to deprecated %s (use %s)", pos.Filename, pos.Line, name, repl))
		}
		return true
	})
	return found, nil
}
