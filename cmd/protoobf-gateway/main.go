// Command protoobf-gateway runs the multi-process obfuscation gateway:
// it accepts raw protoobf streams, peeks the one control frame each
// stream leads with, and routes the connection to a backend process —
// fresh dials round-robin across the fleet, resuming sessions toward
// the backend that owns their dialect family. Tickets are verified
// under the fleet seed at the front door and made single-use by a
// fleet-wide replay cache.
//
// Usage:
//
//	protoobf-gateway -listen :9000 -seed 42 \
//	    -backend b1=10.0.0.1:9001 -backend b2=10.0.0.2:9001
//
// SIGINT/SIGTERM stop the listener and print the routing counters.
package main

import (
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"syscall"

	"protoobf/internal/gateway"
	"protoobf/internal/session"
)

// backendFlags collects repeatable -backend name=addr flags.
type backendFlags []gateway.Backend

func (b *backendFlags) String() string {
	parts := make([]string, len(*b))
	for i, be := range *b {
		parts[i] = be.String()
	}
	return strings.Join(parts, ",")
}

func (b *backendFlags) Set(v string) error {
	be, err := parseBackend(v)
	if err != nil {
		return err
	}
	*b = append(*b, be)
	return nil
}

// parseBackend splits a name=addr flag value.
func parseBackend(v string) (gateway.Backend, error) {
	name, addr, err := splitNameAddr(v)
	if err != nil {
		return gateway.Backend{}, err
	}
	return gateway.Backend{Name: name, Addr: addr}, nil
}

// splitNameAddr splits a name=addr flag value, shared by -backend and
// -backend-obs.
func splitNameAddr(v string) (name, addr string, err error) {
	name, addr, ok := strings.Cut(v, "=")
	if !ok || name == "" || addr == "" {
		return "", "", fmt.Errorf("backend %q: want name=host:port", v)
	}
	return name, addr, nil
}

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "protoobf-gateway:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("protoobf-gateway", flag.ContinueOnError)
	var backends backendFlags
	listen := fs.String("listen", ":9000", "address to accept client streams on")
	seed := fs.Int64("seed", 0, "fleet master seed for ticket verification (required unless -no-verify)")
	noVerify := fs.Bool("no-verify", false, "route without authenticating resume tickets (no family routing, no replay defense)")
	replayWindow := fs.Int("replay-window", 0, "replay cache capacity in tickets (0 = default 4096, negative = disabled)")
	obsAddr := fs.String("obs", "", "serve /metrics, /snapshot.json and /debug/pprof on this address (empty = off)")
	var backendObs obsBackendFlags
	fs.Var(&backends, "backend", "backend as name=host:port (repeatable)")
	fs.Var(&backendObs, "backend-obs", "backend obs address as name=host:port, scraped into the fleet /metrics page (repeatable)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if len(backends) == 0 {
		return errors.New("at least one -backend name=host:port is required")
	}

	reg := gateway.NewRegistry(0)
	for _, b := range backends {
		if err := reg.Add(b); err != nil {
			return err
		}
	}
	cfg := gateway.Config{Registry: reg}
	if !*noVerify {
		cfg.Opener = gateway.SeedOpener(*seed)
		if *replayWindow >= 0 {
			cfg.Replay = session.NewReplayCache(*replayWindow)
		}
	}
	gw, err := gateway.New(cfg)
	if err != nil {
		return err
	}
	if *obsAddr != "" {
		ol, err := startObs(*obsAddr, gw, backendObs)
		if err != nil {
			return fmt.Errorf("obs: %w", err)
		}
		defer ol.Close()
		fmt.Fprintf(os.Stderr, "protoobf-gateway: obs on http://%s/metrics (%d backend obs)\n",
			ol.Addr(), len(backendObs))
	}

	sigCh := make(chan os.Signal, 1)
	signal.Notify(sigCh, os.Interrupt, syscall.SIGTERM)
	defer signal.Stop(sigCh)
	go func() {
		<-sigCh
		gw.Close()
	}()

	fmt.Fprintf(os.Stderr, "protoobf-gateway: listening on %s, %d backends\n", *listen, len(backends))
	err = gw.ListenAndServe(*listen)
	s := gw.Stats()
	fmt.Fprintf(os.Stderr,
		"protoobf-gateway: accepted=%d fresh=%d resumed=%d replay-rejects=%d forged-rejects=%d dial-errors=%d header-errors=%d\n",
		s.Accepted, s.FreshRouted, s.ResumeRouted, s.ReplayRejects, s.ForgedRejects, s.DialErrors, s.HeaderErrors)
	return err
}
