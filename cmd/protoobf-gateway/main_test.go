package main

import (
	"strings"
	"testing"
)

func TestParseBackend(t *testing.T) {
	b, err := parseBackend("b1=10.0.0.1:9001")
	if err != nil {
		t.Fatal(err)
	}
	if b.Name != "b1" || b.Addr != "10.0.0.1:9001" {
		t.Fatalf("parsed %+v", b)
	}
	for _, bad := range []string{"", "b1", "=addr", "b1=", "nameonly="} {
		if _, err := parseBackend(bad); err == nil {
			t.Fatalf("parseBackend(%q) accepted", bad)
		}
	}
	// IPv6 addresses keep everything after the first '='.
	b, err = parseBackend("v6=[::1]:9001")
	if err != nil {
		t.Fatal(err)
	}
	if b.Addr != "[::1]:9001" {
		t.Fatalf("v6 addr = %q", b.Addr)
	}
}

func TestRunRejectsEmptyFleet(t *testing.T) {
	err := run([]string{"-listen", "127.0.0.1:0"})
	if err == nil || !strings.Contains(err.Error(), "backend") {
		t.Fatalf("run without backends: %v", err)
	}
}

func TestBackendFlagAccumulates(t *testing.T) {
	var b backendFlags
	if err := b.Set("a=1:1"); err != nil {
		t.Fatal(err)
	}
	if err := b.Set("b=1:2"); err != nil {
		t.Fatal(err)
	}
	if got := b.String(); got != "a=1:1,b=1:2" {
		t.Fatalf("String() = %q", got)
	}
	if err := b.Set("garbage"); err == nil {
		t.Fatal("bad flag value accepted")
	}
}
