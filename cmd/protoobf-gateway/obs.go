package main

import (
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"sort"
	"strings"
	"time"

	"protoobf/internal/gateway"
	"protoobf/internal/metrics"
)

// The gateway's observability surface: its own routing counters plus a
// fleet view assembled by scraping each backend's obs address
// (-backend-obs name=addr, pointing at the /snapshot.json a backend
// serving protoobf.ObsHandler exposes). One gateway scrape therefore
// sees the whole fleet — every backend's families merged under a
// backend label — without the scraper having to reach the backends.

// obsBackend pairs a backend name with its obs (snapshot) address.
type obsBackend struct {
	name string
	addr string
}

// obsBackendFlags collects repeatable -backend-obs name=addr flags.
type obsBackendFlags []obsBackend

func (b *obsBackendFlags) String() string {
	s := ""
	for i, be := range *b {
		if i > 0 {
			s += ","
		}
		s += be.name + "=" + be.addr
	}
	return s
}

func (b *obsBackendFlags) Set(v string) error {
	name, addr, err := splitNameAddr(v)
	if err != nil {
		return err
	}
	*b = append(*b, obsBackend{name: name, addr: addr})
	return nil
}

// obsServer scrapes the fleet and serves the merged page.
type obsServer struct {
	gw       *gateway.Gateway
	backends []obsBackend
	client   *http.Client
}

// fetchSnapshot pulls one backend's /snapshot.json.
func (o *obsServer) fetchSnapshot(addr string) (metrics.Snapshot, error) {
	var snap metrics.Snapshot
	resp, err := o.client.Get("http://" + addr + "/snapshot.json")
	if err != nil {
		return snap, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return snap, fmt.Errorf("backend obs %s: status %d", addr, resp.StatusCode)
	}
	err = json.NewDecoder(resp.Body).Decode(&snap)
	return snap, err
}

// fleet scrapes every configured backend, returning the reachable
// snapshots plus a per-backend up/down map.
func (o *obsServer) fleet() ([]metrics.FleetSnapshot, map[string]bool) {
	up := make(map[string]bool, len(o.backends))
	var fleet []metrics.FleetSnapshot
	for _, b := range o.backends {
		snap, err := o.fetchSnapshot(b.addr)
		up[b.name] = err == nil
		if err != nil {
			continue
		}
		fleet = append(fleet, metrics.FleetSnapshot{Backend: b.name, Snap: snap})
	}
	return fleet, up
}

func (o *obsServer) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	gateway.WriteProm(w, o.gw.Stats())
	fleet, up := o.fleet()
	if len(o.backends) > 0 {
		fmt.Fprintf(w, "# HELP protoobf_gateway_backend_up Whether the backend's obs address answered the last fleet scrape.\n")
		fmt.Fprintf(w, "# TYPE protoobf_gateway_backend_up gauge\n")
		names := make([]string, 0, len(up))
		for n := range up {
			names = append(names, n)
		}
		sort.Strings(names)
		for _, n := range names {
			v := 0
			if up[n] {
				v = 1
			}
			fmt.Fprintf(w, "protoobf_gateway_backend_up{backend=\"%s\"} %d\n", escapeLabelValue(n), v)
		}
	}
	metrics.WriteFleetProm(w, fleet)
}

func (o *obsServer) handleSnapshot(w http.ResponseWriter, _ *http.Request) {
	fleet, up := o.fleet()
	backends := make(map[string]metrics.Snapshot, len(fleet))
	for _, f := range fleet {
		backends[f.Backend] = f.Snap
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(struct {
		Gateway  gateway.Stats               `json:"gateway"`
		Up       map[string]bool             `json:"up"`
		Backends map[string]metrics.Snapshot `json:"backends"`
	}{o.gw.Stats(), up, backends})
}

// startObs binds addr and serves the gateway obs surface on it. The
// returned listener address is how ":0" callers learn the bound port.
func startObs(addr string, gw *gateway.Gateway, backends []obsBackend) (net.Listener, error) {
	l, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	o := &obsServer{gw: gw, backends: backends, client: &http.Client{Timeout: 5 * time.Second}}
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", o.handleMetrics)
	mux.HandleFunc("/snapshot.json", o.handleSnapshot)
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	go (&http.Server{Handler: mux}).Serve(l)
	return l, nil
}

// escapeLabelValue escapes a Prometheus label value: backslash, quote
// and newline only (Go's %q escaping is not valid in the exposition
// format).
func escapeLabelValue(s string) string {
	r := strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)
	return r.Replace(s)
}
