// Command protoobf-bench regenerates the paper's evaluation (§VII):
// tables III/IV, the time figures 4/5, the potency figures 6/7, the
// §VII-D resilience assessment, and the per-transformation ablation.
//
// Usage:
//
//	protoobf-bench -protocol modbus -table             # table IV
//	protoobf-bench -protocol http -table -runs 1000    # table III, paper-scale
//	protoobf-bench -protocol http -figure time         # figure 4 data + fits
//	protoobf-bench -protocol modbus -figure potency    # figure 7 data
//	protoobf-bench -resilience                         # §VII-D
//	protoobf-bench -ablation -protocol modbus          # per-transformation study
//	protoobf-bench -session -epochs 64 -rekey-every 8  # scheduled-rotation session workload
//	protoobf-bench -endpoint -sessions 64 -epochs 16   # many sessions, one dialect family
//	protoobf-bench -endpoint -shards 1                 # same, on the single-mutex cache geometry
//	protoobf-bench -endpoint -prefetch 16 -metrics     # rotation daemon pre-compiling the epochs
//	protoobf-bench -endpoint -tcp                      # same workload over loopback TCP
//	protoobf-bench -migrate -sessions 8 -cycles 4      # kill-and-resume migration workload
//	protoobf-bench -migrate -tcp -metrics              # same over loopback TCP, with snapshots
//	protoobf-bench -adversary -out bench-out           # standing adversary run, BENCH_<runid>.json
//	protoobf-bench -gateway -sessions 1024             # fleet migration through the routing gateway
//	protoobf-bench -gateway -inproc -sessions 64       # same with goroutine backends (no fork)
//	protoobf-bench -all                                # everything, default sizes
//
// SIGINT/SIGTERM cancel a run cleanly: in-flight workloads stop between
// round trips, TCP listeners close, and background daemons exit before
// the process does.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"runtime"
	"sync/atomic"
	"syscall"
	"time"

	"protoobf/internal/bench"
)

func main() {
	// Track which signal cancelled the run so the exit status follows
	// the shell convention (128+signo: 130 for SIGINT, 143 for SIGTERM).
	var got atomic.Value
	sigCh := make(chan os.Signal, 1)
	signal.Notify(sigCh, os.Interrupt, syscall.SIGTERM)
	defer signal.Stop(sigCh)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go func() {
		s, ok := <-sigCh
		if ok {
			got.Store(s)
			cancel()
		}
	}()
	if err := run(ctx, os.Args[1:]); err != nil {
		if errors.Is(err, context.Canceled) {
			code := 130
			if s, _ := got.Load().(os.Signal); s == syscall.SIGTERM {
				code = 143
			}
			fmt.Fprintln(os.Stderr, "protoobf-bench: interrupted")
			os.Exit(code)
		}
		fmt.Fprintln(os.Stderr, "protoobf-bench:", err)
		os.Exit(1)
	}
}

func run(ctx context.Context, args []string) error {
	fs := flag.NewFlagSet("protoobf-bench", flag.ContinueOnError)
	protocol := fs.String("protocol", "modbus", "protocol to evaluate (modbus or http)")
	runs := fs.Int("runs", 50, "experiments per obfuscation level (paper: 1000)")
	msgs := fs.Int("msgs", 20, "messages per experiment for timing measures")
	seed := fs.Int64("seed", 1, "campaign seed")
	table := fs.Bool("table", false, "print the paper-style table (III or IV)")
	figure := fs.String("figure", "", "print figure data: time (fig 4/5) or potency (fig 6/7)")
	resilience := fs.Bool("resilience", false, "run the §VII-D resilience assessment")
	calibrate := fs.Float64("calibrate", 0, "search the per-node level whose residual PRE score falls below this target (e.g. 0.2)")
	ablation := fs.Bool("ablation", false, "run the per-transformation ablation study")
	adversaryWL := fs.Bool("adversary", false, "run the standing adversary evaluation and emit BENCH_<runid>.json")
	shapeWL := fs.Bool("shape", false, "with -adversary: also run the shaped evaluation and fail if a gated shaped distinguisher beats the stealth ceiling")
	outDir := fs.String("out", ".", "directory the adversary run writes its BENCH_<runid>.json into")
	runID := fs.String("runid", "", "run id naming the BENCH JSON file (default: UTC timestamp)")
	sessionWL := fs.Bool("session", false, "run the scheduled-rotation session workload")
	endpointWL := fs.Bool("endpoint", false, "run the many-sessions-one-family endpoint workload")
	migrateWL := fs.Bool("migrate", false, "run the kill-and-resume session migration workload")
	gatewayWL := fs.Bool("gateway", false, "run the multi-process gateway fleet-migration workload and emit BENCH_<runid>.json")
	udpWL := fs.Bool("udp", false, "run the datagram workload (lossy packet link, batch fast path, loopback UDP) and fail on decode crashes or nonzero zero-overhead data bytes")
	inproc := fs.Bool("inproc", false, "with -gateway: run the backends as goroutines instead of child processes")
	backendsN := fs.Int("backends", 2, "backend processes in the gateway workload")
	gatewayBackend := fs.String("gateway-backend", "", "internal: serve one backend of the -gateway workload (JSON config)")
	cycles := fs.Int("cycles", 4, "kill/resume cycles per session in the migration workload")
	sessions := fs.Int("sessions", 16, "concurrent session pairs in the endpoint workload")
	shards := fs.Int("shards", 0, "version-cache lock shards in the endpoint workload (0 = default, 1 = single mutex)")
	prefetch := fs.Int("prefetch", 0, "run the rotation daemon with this prefetch depth in the endpoint workload (0 = off; >= -epochs pre-compiles the whole run)")
	overTCP := fs.Bool("tcp", false, "run the endpoint workload over loopback TCP (Endpoint.Listen/Dial) instead of in-memory duplexes")
	showMetrics := fs.Bool("metrics", false, "print the endpoints' observability snapshots after the workload")
	epochs := fs.Int("epochs", 32, "scheduled rotations to cross in the session workloads")
	rekeyEvery := fs.Uint64("rekey-every", 0, "propose an in-band rekey every N epochs in the session workloads (0 = never)")
	window := fs.Int("window", 0, "dialect cache window for the session workloads (0 = defaults)")
	obsAddr := fs.String("obs", "", "serve /metrics, /snapshot.json and /debug/pprof on this address while workloads run (empty = off)")
	all := fs.Bool("all", false, "run every experiment for both protocols")
	if err := fs.Parse(args); err != nil {
		return err
	}

	// Child-process mode: the cross-process gateway workload re-invokes
	// this binary to run one backend; serve and exit before anything else.
	if *gatewayBackend != "" {
		return bench.RunGatewayBackendStdio(*gatewayBackend, os.Stdin, os.Stdout)
	}

	// The obs surface serves whatever workload endpoints are live at
	// scrape time; the gateway workload additionally self-scrapes it
	// mid-run and fails on an unserviceable page.
	obsBound := ""
	if *obsAddr != "" {
		ol, err := bench.StartObs(*obsAddr)
		if err != nil {
			return fmt.Errorf("obs: %w", err)
		}
		defer ol.Close()
		obsBound = ol.Addr().String()
		fmt.Fprintf(os.Stderr, "protoobf-bench: obs on http://%s/metrics\n", obsBound)
	}

	// The gateway workload has its own (larger) defaults for the shared
	// sizing flags; only explicit values override them.
	explicit := map[string]bool{}
	fs.Visit(func(f *flag.Flag) { explicit[f.Name] = true })

	if *gatewayWL {
		gcfg := bench.GatewayConfig{
			Backends: *backendsN,
			Seed:     *seed,
			InProc:   *inproc,
			Metrics:  *showMetrics,
			ObsAddr:  obsBound,
		}
		if explicit["sessions"] {
			gcfg.Sessions = *sessions
		}
		if explicit["cycles"] {
			gcfg.Cycles = *cycles
		}
		if explicit["msgs"] {
			gcfg.MsgsPerCycle = *msgs
		}
		res, err := bench.RunGateway(ctx, gcfg)
		if err != nil {
			return err
		}
		fmt.Print(res.Table())
		created := time.Now().UTC()
		id := *runID
		if id == "" {
			id = created.Format("20060102T150405Z")
		}
		rep := &bench.BenchReport{
			Schema:  bench.BenchSchema,
			RunID:   id,
			Created: created.Format(time.RFC3339),
			Go:      runtime.Version(),
			Seed:    *seed,
			PerNode: res.Config.PerNode,
			Gateway: &res.Report,
		}
		path, err := rep.WriteJSON(*outDir)
		if err != nil {
			return err
		}
		fmt.Printf("wrote %s\n", path)
		if res.Report.WarmDemandCompiles > 0 {
			return fmt.Errorf("warm fleet compiled %d dialects on demand — the artifact cache should have answered them (see %s)",
				res.Report.WarmDemandCompiles, path)
		}
		return nil
	}

	if *udpWL {
		dcfg := bench.DatagramConfig{Seed: *seed}
		if explicit["msgs"] {
			dcfg.Msgs = *msgs
		}
		res, err := bench.RunDatagram(ctx, dcfg)
		if err != nil {
			return err
		}
		fmt.Print(res.Table())
		created := time.Now().UTC()
		id := *runID
		if id == "" {
			id = created.Format("20060102T150405Z")
		}
		rep := &bench.BenchReport{
			Schema:   bench.BenchSchema,
			RunID:    id,
			Created:  created.Format(time.RFC3339),
			Go:       runtime.Version(),
			Seed:     *seed,
			PerNode:  res.Config.PerNode,
			Datagram: &res.Report,
		}
		path, err := rep.WriteJSON(*outDir)
		if err != nil {
			return err
		}
		fmt.Printf("wrote %s\n", path)
		if c := res.Report.Crashes(); c > 0 {
			return fmt.Errorf("datagram workload crashed the receiver %d times (see %s)", c, path)
		}
		if bad := res.Report.ZeroOverheadViolations(); len(bad) > 0 {
			for _, l := range bad {
				fmt.Fprintf(os.Stderr, "zero-overhead %s leg added %d framing bytes to data packets\n", l.Transport, l.DataOverheadBytes)
			}
			return fmt.Errorf("zero-overhead mode added framing bytes (see %s)", path)
		}
		return nil
	}

	if *adversaryWL {
		rep, err := bench.RunAdversary(ctx, bench.AdversaryConfig{
			RunID:   *runID,
			Seed:    *seed,
			PerNode: 2,
			Shape:   *shapeWL,
		})
		if err != nil {
			return err
		}
		fmt.Print(rep.Table())
		path, err := rep.WriteJSON(*outDir)
		if err != nil {
			return err
		}
		fmt.Printf("wrote %s\n", path)
		if rep.Mutation.Crashes > 0 {
			return fmt.Errorf("mutation campaign crashed %d times (see %s)", rep.Mutation.Crashes, path)
		}
		if rep.Shaping != nil {
			if bad := rep.Shaping.GateFailures(); len(bad) > 0 {
				for _, d := range bad {
					fmt.Fprintf(os.Stderr, "shaped %s accuracy %.3f exceeds the %.2f stealth gate\n", d.Name, d.Accuracy, bench.ShapeGate)
				}
				return fmt.Errorf("traffic shaping failed the stealth gate (see %s)", path)
			}
		}
		return nil
	}

	if *migrateWL {
		res, err := bench.RunMigrate(ctx, bench.MigrateConfig{
			Sessions:     *sessions,
			Cycles:       *cycles,
			MsgsPerCycle: *msgs,
			Seed:         *seed,
			OverTCP:      *overTCP,
			Metrics:      *showMetrics,
		})
		if err != nil {
			return err
		}
		fmt.Print(res.Table())
		return nil
	}

	if *endpointWL {
		res, err := bench.RunEndpoint(ctx, bench.EndpointConfig{
			Sessions:     *sessions,
			Epochs:       *epochs,
			MsgsPerEpoch: *msgs,
			RekeyEvery:   *rekeyEvery,
			Seed:         *seed,
			Window:       *window,
			Shards:       *shards,
			Prefetch:     *prefetch,
			OverTCP:      *overTCP,
			Metrics:      *showMetrics,
		})
		if err != nil {
			return err
		}
		fmt.Print(res.Table())
		return nil
	}

	if *sessionWL {
		res, err := bench.RunSession(ctx, bench.SessionConfig{
			Epochs:       *epochs,
			MsgsPerEpoch: *msgs,
			RekeyEvery:   *rekeyEvery,
			Seed:         *seed,
			Window:       *window,
		})
		if err != nil {
			return err
		}
		fmt.Print(res.Table())
		return nil
	}

	if *all {
		for _, p := range []string{"http", "modbus"} {
			res, err := bench.Run(bench.Config{Protocol: p, Runs: *runs, MsgsPerRun: *msgs, Seed: *seed})
			if err != nil {
				return err
			}
			fmt.Println(res.Table())
			fig, err := res.TimeFigure()
			if err != nil {
				return err
			}
			fmt.Println(firstLines(fig, 3))
			fmt.Println(res.PotencyFigure())
			ab, err := bench.RunAblation(p, *msgs, *seed)
			if err != nil {
				return err
			}
			fmt.Println(ab.Table())
		}
		rr, err := bench.RunResilience(bench.ResilienceConfig{Seed: *seed})
		if err != nil {
			return err
		}
		fmt.Println(rr.Table())
		return nil
	}

	if *resilience {
		rr, err := bench.RunResilience(bench.ResilienceConfig{Seed: *seed})
		if err != nil {
			return err
		}
		fmt.Print(rr.Table())
		return nil
	}
	if *calibrate > 0 {
		cr, err := bench.Calibrate(bench.CalibrateConfig{Target: *calibrate, Seed: *seed})
		if err != nil {
			return err
		}
		fmt.Print(cr.Table())
		return nil
	}
	if *ablation {
		ab, err := bench.RunAblation(*protocol, *msgs, *seed)
		if err != nil {
			return err
		}
		fmt.Print(ab.Table())
		return nil
	}

	needCampaign := *table || *figure != ""
	if !needCampaign {
		return fmt.Errorf("nothing to do: pass -table, -figure, -resilience, -calibrate, -ablation or -all")
	}
	res, err := bench.Run(bench.Config{Protocol: *protocol, Runs: *runs, MsgsPerRun: *msgs, Seed: *seed})
	if err != nil {
		return err
	}
	if *table {
		fmt.Print(res.Table())
	}
	switch *figure {
	case "":
	case "time":
		fig, err := res.TimeFigure()
		if err != nil {
			return err
		}
		fmt.Print(fig)
	case "potency":
		fmt.Print(res.PotencyFigure())
	default:
		return fmt.Errorf("unknown figure %q (want time or potency)", *figure)
	}
	return nil
}

func firstLines(s string, n int) string {
	out := ""
	count := 0
	for _, c := range s {
		out += string(c)
		if c == '\n' {
			count++
			if count == n {
				break
			}
		}
	}
	return out
}
