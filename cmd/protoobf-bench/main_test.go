package main

import (
	"context"
	"testing"
)

func TestRunTableSmall(t *testing.T) {
	if testing.Short() {
		t.Skip("campaign")
	}
	if err := run(context.Background(), []string{"-protocol", "http", "-table", "-runs", "2", "-msgs", "3"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunFigures(t *testing.T) {
	if testing.Short() {
		t.Skip("campaign")
	}
	if err := run(context.Background(), []string{"-protocol", "modbus", "-figure", "potency", "-runs", "2", "-msgs", "3"}); err != nil {
		t.Fatal(err)
	}
	if err := run(context.Background(), []string{"-protocol", "modbus", "-figure", "time", "-runs", "2", "-msgs", "3"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunSessionWorkload(t *testing.T) {
	if err := run(context.Background(), []string{"-session", "-epochs", "4", "-msgs", "4", "-rekey-every", "2", "-window", "4"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunEndpointWorkload(t *testing.T) {
	if err := run(context.Background(), []string{"-endpoint", "-sessions", "4", "-epochs", "3", "-msgs", "4", "-rekey-every", "2", "-window", "16", "-shards", "2"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunMigrateWorkload(t *testing.T) {
	if err := run(context.Background(), []string{"-migrate", "-sessions", "3", "-cycles", "2", "-msgs", "3"}); err != nil {
		t.Fatal(err)
	}
	if err := run(context.Background(), []string{"-migrate", "-sessions", "2", "-cycles", "2", "-msgs", "2", "-tcp", "-metrics"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunErrors(t *testing.T) {
	if err := run(context.Background(), []string{}); err == nil {
		t.Error("no action accepted")
	}
	if err := run(context.Background(), []string{"-figure", "nope", "-runs", "1", "-msgs", "2"}); err == nil {
		t.Error("unknown figure accepted")
	}
	if err := run(context.Background(), []string{"-protocol", "ftp", "-table", "-runs", "1"}); err == nil {
		t.Error("unknown protocol accepted")
	}
}

func TestFirstLines(t *testing.T) {
	if got := firstLines("a\nb\nc\n", 2); got != "a\nb\n" {
		t.Errorf("firstLines = %q", got)
	}
}
