package main

import (
	"context"
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

func TestRunTableSmall(t *testing.T) {
	if testing.Short() {
		t.Skip("campaign")
	}
	if err := run(context.Background(), []string{"-protocol", "http", "-table", "-runs", "2", "-msgs", "3"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunFigures(t *testing.T) {
	if testing.Short() {
		t.Skip("campaign")
	}
	if err := run(context.Background(), []string{"-protocol", "modbus", "-figure", "potency", "-runs", "2", "-msgs", "3"}); err != nil {
		t.Fatal(err)
	}
	if err := run(context.Background(), []string{"-protocol", "modbus", "-figure", "time", "-runs", "2", "-msgs", "3"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunSessionWorkload(t *testing.T) {
	if err := run(context.Background(), []string{"-session", "-epochs", "4", "-msgs", "4", "-rekey-every", "2", "-window", "4"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunEndpointWorkload(t *testing.T) {
	if err := run(context.Background(), []string{"-endpoint", "-sessions", "4", "-epochs", "3", "-msgs", "4", "-rekey-every", "2", "-window", "16", "-shards", "2"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunMigrateWorkload(t *testing.T) {
	if err := run(context.Background(), []string{"-migrate", "-sessions", "3", "-cycles", "2", "-msgs", "3"}); err != nil {
		t.Fatal(err)
	}
	if err := run(context.Background(), []string{"-migrate", "-sessions", "2", "-cycles", "2", "-msgs", "2", "-tcp", "-metrics"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunAdversaryWorkload(t *testing.T) {
	dir := t.TempDir()
	if err := run(context.Background(), []string{"-adversary", "-out", dir, "-runid", "cli-test", "-seed", "3"}); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(filepath.Join(dir, "BENCH_cli-test.json"))
	if err != nil {
		t.Fatalf("BENCH JSON not written: %v", err)
	}
	var rep map[string]any
	if err := json.Unmarshal(data, &rep); err != nil {
		t.Fatalf("BENCH JSON malformed: %v", err)
	}
	for _, key := range []string{"schema", "run_id", "created", "distinguishers", "mutation", "covert", "perf"} {
		if _, ok := rep[key]; !ok {
			t.Errorf("BENCH JSON lacks %q", key)
		}
	}
	if got := rep["schema"]; got != "protoobf-bench/v1" {
		t.Errorf("schema = %v", got)
	}
}

func TestRunErrors(t *testing.T) {
	if err := run(context.Background(), []string{}); err == nil {
		t.Error("no action accepted")
	}
	if err := run(context.Background(), []string{"-figure", "nope", "-runs", "1", "-msgs", "2"}); err == nil {
		t.Error("unknown figure accepted")
	}
	if err := run(context.Background(), []string{"-protocol", "ftp", "-table", "-runs", "1"}); err == nil {
		t.Error("unknown protocol accepted")
	}
}

func TestFirstLines(t *testing.T) {
	if got := firstLines("a\nb\nc\n", 2); got != "a\nb\n" {
		t.Errorf("firstLines = %q", got)
	}
}
