package protoobf_test

import (
	"bytes"
	"fmt"
	"testing"
	"time"

	"protoobf"
)

const ticketSpec = `
protocol ticket;
root seq msg end {
    uint  version 1;
    uint  kind 1;
    uint  blen 2;
    seq body length(blen) {
        bytes user delim ";" min 1;
        uint  n 1;
        tabular seats count(n) { uint seat 2; }
    }
    optional note when kind == 2 { bytes text end; }
}
`

func buildTicket(t *testing.T, proto *protoobf.Protocol, kind uint64) *protoobf.Message {
	t.Helper()
	msg := proto.NewMessage()
	s := msg.Scope()
	must := func(err error) {
		t.Helper()
		if err != nil {
			t.Fatal(err)
		}
	}
	must(s.SetUint("version", 1))
	must(s.SetUint("kind", kind))
	must(s.SetString("user", "ada"))
	for _, seat := range []uint64{101, 102} {
		item, err := s.Add("seats")
		must(err)
		must(item.SetUint("seat", seat))
	}
	if kind == 2 {
		sc, err := s.Enable("note")
		must(err)
		must(sc.SetString("text", "aisle please"))
	}
	return msg
}

func TestPublicAPIRoundTrip(t *testing.T) {
	for perNode := 0; perNode <= 3; perNode++ {
		proto, err := protoobf.Compile(ticketSpec, protoobf.Options{PerNode: perNode, Seed: 7})
		if err != nil {
			t.Fatalf("Compile(perNode=%d): %v", perNode, err)
		}
		for _, kind := range []uint64{1, 2} {
			msg := buildTicket(t, proto, kind)
			data, err := proto.Serialize(msg)
			if err != nil {
				t.Fatalf("Serialize: %v\n%s", err, proto.Trace())
			}
			back, err := proto.Parse(data)
			if err != nil {
				t.Fatalf("Parse: %v\n%s", err, proto.Trace())
			}
			s := back.Scope()
			if v, err := s.GetUint("kind"); err != nil || v != kind {
				t.Errorf("kind = %d, %v", v, err)
			}
			if u, err := s.GetBytes("user"); err != nil || string(u) != "ada" {
				t.Errorf("user = %q, %v", u, err)
			}
			items, err := s.Items("seats")
			if err != nil || len(items) != 2 {
				t.Fatalf("seats = %d, %v", len(items), err)
			}
			if v, _ := items[1].GetUint("seat"); v != 102 {
				t.Errorf("seat[1] = %d", v)
			}
		}
	}
}

func TestCompileDeterminism(t *testing.T) {
	a, err := protoobf.Compile(ticketSpec, protoobf.Options{PerNode: 2, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	b, err := protoobf.Compile(ticketSpec, protoobf.Options{PerNode: 2, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if a.Trace() != b.Trace() {
		t.Error("same seed, different transformation traces")
	}
	srcA, err := a.GenerateSource("p")
	if err != nil {
		t.Fatal(err)
	}
	srcB, err := b.GenerateSource("p")
	if err != nil {
		t.Fatal(err)
	}
	if srcA != srcB {
		t.Error("same seed, different generated source")
	}
}

func TestObfuscatedWireDiffersFromPlain(t *testing.T) {
	plain, err := protoobf.Compile(ticketSpec, protoobf.Options{PerNode: 0, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	obf, err := protoobf.Compile(ticketSpec, protoobf.Options{PerNode: 2, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	pd, err := plain.Serialize(buildTicket(t, plain, 1))
	if err != nil {
		t.Fatal(err)
	}
	od, err := obf.Serialize(buildTicket(t, obf, 1))
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(pd, od) {
		t.Error("obfuscated wire identical to plain wire")
	}
	if len(obf.Applied) == 0 {
		t.Error("no transformations applied")
	}
}

func TestTransformNames(t *testing.T) {
	names := protoobf.TransformNames()
	if len(names) != 13 {
		t.Errorf("%d transformations, want 13 (table I)", len(names))
	}
	want := map[string]bool{"SplitAdd": true, "ReadFromEnd": true, "ChildMove": true, "TabSplit": true}
	for _, n := range names {
		delete(want, n)
	}
	if len(want) != 0 {
		t.Errorf("missing transformations: %v", want)
	}
}

func TestGenerateSourceCompilesConceptually(t *testing.T) {
	proto, err := protoobf.Compile(ticketSpec, protoobf.Options{PerNode: 1, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	src, err := proto.GenerateSource("ticket")
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"package ticket", "func Parse(", "func SelfTest()"} {
		if !bytes.Contains([]byte(src), []byte(want)) {
			t.Errorf("generated source lacks %q", want)
		}
	}
}

// ExampleCompile demonstrates the end-to-end pipeline on a tiny spec.
func ExampleCompile() {
	proto, err := protoobf.Compile(`
protocol ping;
root seq msg end {
    uint  seqno 4;
    bytes note end;
}`, protoobf.Options{PerNode: 1, Seed: 12})
	if err != nil {
		panic(err)
	}
	m := proto.NewMessage()
	s := m.Scope()
	if err := s.SetUint("seqno", 41); err != nil {
		panic(err)
	}
	if err := s.SetString("note", "hello"); err != nil {
		panic(err)
	}
	data, err := proto.Serialize(m)
	if err != nil {
		panic(err)
	}
	back, err := proto.Parse(data)
	if err != nil {
		panic(err)
	}
	v, _ := back.Scope().GetUint("seqno")
	fmt.Println(v)
	// Output: 41
}

// ExampleNewRotation shows the epoch-keyed dialect family: the same
// message serializes to different wire bytes in different epochs, while
// every peer sharing (spec, options) derives identical dialects.
func ExampleNewRotation() {
	spec := `
protocol ping;
root seq msg end {
    uint  seqno 4;
    bytes note end;
}`
	rot, err := protoobf.NewRotation(spec, protoobf.Options{PerNode: 2, Seed: 7})
	if err != nil {
		panic(err)
	}
	serialize := func(epoch uint64) []byte {
		proto, err := rot.Version(epoch)
		if err != nil {
			panic(err)
		}
		m := proto.NewMessage()
		if err := m.Scope().SetUint("seqno", 9); err != nil {
			panic(err)
		}
		if err := m.Scope().SetString("note", "hi"); err != nil {
			panic(err)
		}
		data, err := proto.Serialize(m)
		if err != nil {
			panic(err)
		}
		return data
	}
	fmt.Println("epochs 0 and 1 share wire bytes:", bytes.Equal(serialize(0), serialize(1)))
	// Output: epochs 0 and 1 share wire bytes: false
}

// ExampleNewSchedule shows wall-clock epoch derivation with an injected
// clock: peers sharing (genesis, interval) agree on the epoch — and so
// on the dialect — from their own clocks, with no coordination.
func ExampleNewSchedule() {
	genesis := time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)
	s := protoobf.NewSchedule(genesis, time.Hour).WithClock(func() time.Time {
		return genesis.Add(36*time.Hour + 20*time.Minute)
	})
	fmt.Println("current epoch:", s.Epoch())
	next, wait := s.Next()
	fmt.Println("epoch", next, "starts in", wait)
	// Output:
	// current epoch: 36
	// epoch 37 starts in 40m0s
}

// Session-level coverage of the current API lives in endpoint_test.go;
// the deprecated constructors keep their original tests in
// deprecated_test.go.
