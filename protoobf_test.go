package protoobf_test

import (
	"bytes"
	"fmt"
	"testing"
	"time"

	"protoobf"
)

const ticketSpec = `
protocol ticket;
root seq msg end {
    uint  version 1;
    uint  kind 1;
    uint  blen 2;
    seq body length(blen) {
        bytes user delim ";" min 1;
        uint  n 1;
        tabular seats count(n) { uint seat 2; }
    }
    optional note when kind == 2 { bytes text end; }
}
`

func buildTicket(t *testing.T, proto *protoobf.Protocol, kind uint64) *protoobf.Message {
	t.Helper()
	msg := proto.NewMessage()
	s := msg.Scope()
	must := func(err error) {
		t.Helper()
		if err != nil {
			t.Fatal(err)
		}
	}
	must(s.SetUint("version", 1))
	must(s.SetUint("kind", kind))
	must(s.SetString("user", "ada"))
	for _, seat := range []uint64{101, 102} {
		item, err := s.Add("seats")
		must(err)
		must(item.SetUint("seat", seat))
	}
	if kind == 2 {
		sc, err := s.Enable("note")
		must(err)
		must(sc.SetString("text", "aisle please"))
	}
	return msg
}

func TestPublicAPIRoundTrip(t *testing.T) {
	for perNode := 0; perNode <= 3; perNode++ {
		proto, err := protoobf.Compile(ticketSpec, protoobf.Options{PerNode: perNode, Seed: 7})
		if err != nil {
			t.Fatalf("Compile(perNode=%d): %v", perNode, err)
		}
		for _, kind := range []uint64{1, 2} {
			msg := buildTicket(t, proto, kind)
			data, err := proto.Serialize(msg)
			if err != nil {
				t.Fatalf("Serialize: %v\n%s", err, proto.Trace())
			}
			back, err := proto.Parse(data)
			if err != nil {
				t.Fatalf("Parse: %v\n%s", err, proto.Trace())
			}
			s := back.Scope()
			if v, err := s.GetUint("kind"); err != nil || v != kind {
				t.Errorf("kind = %d, %v", v, err)
			}
			if u, err := s.GetBytes("user"); err != nil || string(u) != "ada" {
				t.Errorf("user = %q, %v", u, err)
			}
			items, err := s.Items("seats")
			if err != nil || len(items) != 2 {
				t.Fatalf("seats = %d, %v", len(items), err)
			}
			if v, _ := items[1].GetUint("seat"); v != 102 {
				t.Errorf("seat[1] = %d", v)
			}
		}
	}
}

func TestCompileDeterminism(t *testing.T) {
	a, err := protoobf.Compile(ticketSpec, protoobf.Options{PerNode: 2, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	b, err := protoobf.Compile(ticketSpec, protoobf.Options{PerNode: 2, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if a.Trace() != b.Trace() {
		t.Error("same seed, different transformation traces")
	}
	srcA, err := a.GenerateSource("p")
	if err != nil {
		t.Fatal(err)
	}
	srcB, err := b.GenerateSource("p")
	if err != nil {
		t.Fatal(err)
	}
	if srcA != srcB {
		t.Error("same seed, different generated source")
	}
}

func TestObfuscatedWireDiffersFromPlain(t *testing.T) {
	plain, err := protoobf.Compile(ticketSpec, protoobf.Options{PerNode: 0, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	obf, err := protoobf.Compile(ticketSpec, protoobf.Options{PerNode: 2, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	pd, err := plain.Serialize(buildTicket(t, plain, 1))
	if err != nil {
		t.Fatal(err)
	}
	od, err := obf.Serialize(buildTicket(t, obf, 1))
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(pd, od) {
		t.Error("obfuscated wire identical to plain wire")
	}
	if len(obf.Applied) == 0 {
		t.Error("no transformations applied")
	}
}

func TestTransformNames(t *testing.T) {
	names := protoobf.TransformNames()
	if len(names) != 13 {
		t.Errorf("%d transformations, want 13 (table I)", len(names))
	}
	want := map[string]bool{"SplitAdd": true, "ReadFromEnd": true, "ChildMove": true, "TabSplit": true}
	for _, n := range names {
		delete(want, n)
	}
	if len(want) != 0 {
		t.Errorf("missing transformations: %v", want)
	}
}

func TestGenerateSourceCompilesConceptually(t *testing.T) {
	proto, err := protoobf.Compile(ticketSpec, protoobf.Options{PerNode: 1, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	src, err := proto.GenerateSource("ticket")
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"package ticket", "func Parse(", "func SelfTest()"} {
		if !bytes.Contains([]byte(src), []byte(want)) {
			t.Errorf("generated source lacks %q", want)
		}
	}
}

// ExampleCompile demonstrates the end-to-end pipeline on a tiny spec.
func ExampleCompile() {
	proto, err := protoobf.Compile(`
protocol ping;
root seq msg end {
    uint  seqno 4;
    bytes note end;
}`, protoobf.Options{PerNode: 1, Seed: 12})
	if err != nil {
		panic(err)
	}
	m := proto.NewMessage()
	s := m.Scope()
	if err := s.SetUint("seqno", 41); err != nil {
		panic(err)
	}
	if err := s.SetString("note", "hello"); err != nil {
		panic(err)
	}
	data, err := proto.Serialize(m)
	if err != nil {
		panic(err)
	}
	back, err := proto.Parse(data)
	if err != nil {
		panic(err)
	}
	v, _ := back.Scope().GetUint("seqno")
	fmt.Println(v)
	// Output: 41
}

// ExampleNewRotation shows the epoch-keyed dialect family: the same
// message serializes to different wire bytes in different epochs, while
// every peer sharing (spec, options) derives identical dialects.
func ExampleNewRotation() {
	spec := `
protocol ping;
root seq msg end {
    uint  seqno 4;
    bytes note end;
}`
	rot, err := protoobf.NewRotation(spec, protoobf.Options{PerNode: 2, Seed: 7})
	if err != nil {
		panic(err)
	}
	serialize := func(epoch uint64) []byte {
		proto, err := rot.Version(epoch)
		if err != nil {
			panic(err)
		}
		m := proto.NewMessage()
		if err := m.Scope().SetUint("seqno", 9); err != nil {
			panic(err)
		}
		if err := m.Scope().SetString("note", "hi"); err != nil {
			panic(err)
		}
		data, err := proto.Serialize(m)
		if err != nil {
			panic(err)
		}
		return data
	}
	fmt.Println("epochs 0 and 1 share wire bytes:", bytes.Equal(serialize(0), serialize(1)))
	// Output: epochs 0 and 1 share wire bytes: false
}

// ExampleNewSessionPair round-trips a message between two in-memory
// session peers and rotates the dialect mid-session.
func ExampleNewSessionPair() {
	spec := `
protocol ping;
root seq msg end {
    uint  seqno 4;
    bytes note end;
}`
	a, b, err := protoobf.NewSessionPair(spec, protoobf.Options{PerNode: 2, Seed: 7})
	if err != nil {
		panic(err)
	}
	for round := uint64(0); round < 2; round++ {
		m, err := a.NewMessage()
		if err != nil {
			panic(err)
		}
		if err := m.Scope().SetUint("seqno", 100+round); err != nil {
			panic(err)
		}
		if err := m.Scope().SetString("note", "hello"); err != nil {
			panic(err)
		}
		if err := a.Send(m); err != nil {
			panic(err)
		}
		got, err := b.Recv()
		if err != nil {
			panic(err)
		}
		seqno, _ := got.Scope().GetUint("seqno")
		fmt.Printf("epoch %d delivered seqno %d\n", b.Epoch(), seqno)
		if _, err := a.Rotate(); err != nil { // B follows on its next Recv
			panic(err)
		}
	}
	// Output:
	// epoch 0 delivered seqno 100
	// epoch 1 delivered seqno 101
}

// ExampleNewSchedule shows wall-clock epoch derivation with an injected
// clock: peers sharing (genesis, interval) agree on the epoch — and so
// on the dialect — from their own clocks, with no coordination.
func ExampleNewSchedule() {
	genesis := time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)
	s := protoobf.NewSchedule(genesis, time.Hour).WithClock(func() time.Time {
		return genesis.Add(36*time.Hour + 20*time.Minute)
	})
	fmt.Println("current epoch:", s.Epoch())
	next, wait := s.Next()
	fmt.Println("epoch", next, "starts in", wait)
	// Output:
	// current epoch: 36
	// epoch 37 starts in 40m0s
}

// ExampleNewSessionPairWith runs the full control plane in memory: a
// shared wall-clock schedule (driven by a fake clock here) rotates the
// dialect, and both peers converge without any in-band coordination.
func ExampleNewSessionPairWith() {
	spec := `
protocol ping;
root seq msg end {
    uint  seqno 4;
    bytes note end;
}`
	genesis := time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)
	now := genesis
	schedule := protoobf.NewSchedule(genesis, time.Hour).WithClock(func() time.Time { return now })
	a, b, err := protoobf.NewSessionPairWith(spec,
		protoobf.Options{PerNode: 2, Seed: 7},
		protoobf.SessionOptions{Schedule: schedule, CacheWindow: 4})
	if err != nil {
		panic(err)
	}
	for round := uint64(0); round < 3; round++ {
		m, err := a.NewMessage() // adopts the schedule's epoch
		if err != nil {
			panic(err)
		}
		if err := m.Scope().SetUint("seqno", round); err != nil {
			panic(err)
		}
		if err := m.Scope().SetString("note", "tick"); err != nil {
			panic(err)
		}
		if err := a.Send(m); err != nil {
			panic(err)
		}
		if _, err := b.Recv(); err != nil {
			panic(err)
		}
		fmt.Printf("round %d at epoch %d\n", round, b.Epoch())
		now = now.Add(time.Hour) // wall clock advances for both peers
	}
	// Output:
	// round 0 at epoch 0
	// round 1 at epoch 1
	// round 2 at epoch 2
}

// TestSessionPairRotation drives the exported session API: two in-memory
// peers exchange a message per epoch across three rotations, each frame
// decoded with the dialect its epoch header names.
func TestSessionPairRotation(t *testing.T) {
	a, b, err := protoobf.NewSessionPair(ticketSpec, protoobf.Options{PerNode: 2, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	for epoch := uint64(0); epoch < 4; epoch++ {
		m, err := a.NewMessage()
		if err != nil {
			t.Fatal(err)
		}
		s := m.Scope()
		if err := s.SetUint("version", 1); err != nil {
			t.Fatal(err)
		}
		if err := s.SetUint("kind", 1); err != nil {
			t.Fatal(err)
		}
		if err := s.SetString("user", "ada"); err != nil {
			t.Fatal(err)
		}
		item, err := s.Add("seats")
		if err != nil {
			t.Fatal(err)
		}
		if err := item.SetUint("seat", 100+epoch); err != nil {
			t.Fatal(err)
		}
		if err := a.Send(m); err != nil {
			t.Fatal(err)
		}
		got, err := b.Recv()
		if err != nil {
			t.Fatalf("epoch %d: %v", epoch, err)
		}
		items, err := got.Scope().Items("seats")
		if err != nil {
			t.Fatal(err)
		}
		seat, err := items[0].GetUint("seat")
		if err != nil {
			t.Fatal(err)
		}
		if seat != 100+epoch {
			t.Fatalf("epoch %d: seat = %d, want %d", epoch, seat, 100+epoch)
		}
		if got := b.Epoch(); got != epoch {
			t.Fatalf("receiver epoch = %d, want %d", got, epoch)
		}
		if epoch < 3 {
			if _, err := a.Rotate(); err != nil {
				t.Fatal(err)
			}
		}
	}
}
