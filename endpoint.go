package protoobf

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net"
	"sync/atomic"
	"time"

	"protoobf/internal/artifact"
	"protoobf/internal/core"
	"protoobf/internal/metrics"
	"protoobf/internal/session"
	"protoobf/internal/trace"
)

// Endpoint is the share-safe entry point for a dialect family: it
// compiles the family once (one Rotation with a sharded compiled-version
// cache) and mints any number of concurrent sessions from it — over
// streams the caller owns (Session), over dialed connections (Dial), or
// from an accept loop (Listen). This is the paper's §VIII deployment
// shape: one compiled family serving many peers, every peer re-deriving
// each epoch's dialect independently.
//
// Sessions of one Endpoint share compiled dialects but never rekey
// state: each session resolves epochs through its own rekey view, so an
// in-band rekey negotiated on one connection (WithRekeyEvery or
// Session.Rekey) switches only that connection's family. This is what
// the deprecated per-session constructors could not offer — they bound
// rekey state to the shared Rotation itself.
//
// An Endpoint is safe for concurrent use.
type Endpoint struct {
	rot  *core.Rotation
	base settings

	// replay, when non-nil (WithTicketReplayWindow), makes resumption
	// tickets single-use across every session this endpoint accepts.
	replay *session.ReplayCache

	// prefetchStats counts the prefetch daemon's work; prefetchOn
	// guards against two daemons racing on one endpoint.
	prefetchStats metrics.PrefetchCounters
	prefetchOn    atomic.Bool

	// resumeStats aggregates the session-migration activity of every
	// session this endpoint mints: tickets exported, resumes accepted,
	// rejections by reason.
	resumeStats metrics.ResumeCounters

	// shapeStats aggregates the traffic-shaping activity of every
	// session this endpoint mints: frames morphed, pad and delay
	// overhead, cover frames sent and discarded, receive-side rejects.
	shapeStats metrics.ShapeCounters

	// dgramStats aggregates the packet-session activity of every
	// PacketSession this endpoint mints: packets moved, epoch-window
	// rejects, idempotent-rekey bookkeeping, framing overhead.
	dgramStats metrics.DgramCounters

	// latency aggregates the control-plane latency histograms of every
	// session this endpoint mints: epoch-boundary crossings, rekey
	// handshake round trips, resume handshake round trips.
	latency metrics.LatencyCounters

	// trace, when non-nil (WithTrace), records lifecycle events of every
	// session this endpoint mints into one bounded ring.
	trace *trace.Ring
}

// settings carries the control-plane configuration shared by endpoint
// and session construction. Option values layer: endpoint options set
// the defaults, per-session options override them.
type settings struct {
	schedule        *Schedule
	rekeyEvery      *uint64
	rekeyAfterBytes *uint64
	cacheWindow     *int
	resumeWindow    *uint64
	static          *Protocol
	versionWindow   int
	versionShards   int
	prefetch        int
	prefetchSleep   func(ctx context.Context, d time.Duration) bool
	shape           *ShapeProfile
	shapeClock      func() time.Time
	shapeSleep      func(time.Duration)
	artifactDir     string
	replayWindow    *int
	reissue         *bool
	epochWindow     *uint64
	zeroOverhead    *bool
	maxPacket       *int
	traceCap        int
	traceClock      func() time.Time
}

// Option is a functional option accepted by both NewEndpoint and
// Endpoint.Session (and the session-minting Dial/Listen): options given
// at endpoint construction become the default for every session, and
// options given per session override them for that session only.
type Option func(*settings)

// EndpointOption documents an Option in endpoint position.
type EndpointOption = Option

// SessionOption documents an Option in session position.
type SessionOption = Option

// WithSchedule derives the session epoch from coarse wall-clock time:
// sessions adopt the schedule's epoch on every NewMessage/Recv, so all
// peers sharing (genesis, interval) converge on the same dialect with no
// coordination, even across partitions. A nil schedule (the default)
// means epochs move only via Rotate/Advance or by following the peer.
func WithSchedule(s *Schedule) Option {
	return func(cfg *settings) { cfg.schedule = s }
}

// WithRekeyEvery proposes an in-band rekey — a fresh master seed for the
// dialect family, exchanged as a masked control frame and acknowledged
// before either side uses it — every n epochs. n = 0 (the default)
// disables automatic rekeying. Each session rekeys its own view of the
// family, so the option is safe on endpoints serving many sessions.
func WithRekeyEvery(n uint64) Option {
	return func(cfg *settings) { cfg.rekeyEvery = &n }
}

// WithRekeyAfterBytes proposes an in-band rekey once n bytes of framed
// traffic (payloads plus epoch headers, both directions) have moved on
// a session since its last rekey boundary — the ScrambleSuit-style
// volume trigger: heavy sessions rotate their seed family by traffic
// volume, not just on the epoch clock, bounding how much wire material
// any one family covers. n = 0 (the default) disables the trigger. It
// composes with WithRekeyEvery; whichever fires first proposes. Each
// session rekeys its own view, so the option is safe on endpoints
// serving many sessions.
func WithRekeyAfterBytes(n uint64) Option {
	return func(cfg *settings) { cfg.rekeyAfterBytes = &n }
}

// WithPrefetch sets how many upcoming epochs the endpoint's prefetch
// daemon (StartPrefetch) keeps compiled ahead of the schedule: at each
// epoch boundary the daemon compiles epochs next..next+n-1 before they
// become current, so sessions never pay a dialect compile on their hot
// path when the boundary arrives. n <= 0 leaves the default depth of 1.
// Endpoint-level only (the daemon is per endpoint, not per session).
func WithPrefetch(n int) Option {
	return func(cfg *settings) { cfg.prefetch = n }
}

// withPrefetchSleep injects the daemon's boundary wait for tests: fn is
// called with the time remaining until the next epoch boundary and
// returns false to stop the daemon (the production implementation waits
// on a timer or ctx.Done).
func withPrefetchSleep(fn func(ctx context.Context, d time.Duration) bool) Option {
	return func(cfg *settings) { cfg.prefetchSleep = fn }
}

// WithCacheWindow bounds how many compiled dialect epochs each session
// keeps: 0 means the default (session.DefaultCacheWindow), negative
// means unbounded. Evicted epochs recompile deterministically on
// demand — usually a hit in the endpoint's shared version cache — so the
// window keeps long-lived sessions at O(window) memory. For the shared
// version cache itself see WithVersionCache.
func WithCacheWindow(n int) Option {
	return func(cfg *settings) { cfg.cacheWindow = &n }
}

// WithResumeWindow bounds the lifetime of resumption tickets, in
// epochs: a session of this endpoint rejects (and counts, see Metrics)
// any ticket whose epoch lies more than n epochs behind its current
// one. Shorter windows bound how long a captured ticket could re-attach
// a stolen session; longer windows let peers return from longer
// outages. n = 0 (the default) means session.DefaultResumeWindow (64).
// It applies both to acceptors and to Resume/DialResume, which fail
// fast on a locally expired ticket.
func WithResumeWindow(n uint64) Option {
	return func(cfg *settings) { cfg.resumeWindow = &n }
}

// WithStaticProtocol pins sessions to a single fixed protocol in every
// epoch: session framing without dialect rotation. On NewEndpoint it
// makes the whole endpoint static (the spec and options arguments are
// ignored and no Rotation is compiled); on Endpoint.Session it pins just
// that session. Static sessions refuse to rekey.
func WithStaticProtocol(p *Protocol) Option {
	return func(cfg *settings) { cfg.static = p }
}

// WithVersionCache sizes the endpoint's shared compiled-version cache:
// window bounds the total number of cached versions across all sessions
// and families (0 means the default, negative means unbounded), and
// shards picks the lock-shard count (0 means the default; 1 degenerates
// to a single-mutex cache). Endpoint-level only; sessions bound their
// private dialect windows with WithCacheWindow.
func WithVersionCache(window, shards int) Option {
	return func(cfg *settings) {
		cfg.versionWindow = window
		cfg.versionShards = shards
	}
}

// WithArtifactCache backs the endpoint's dialect family with an
// on-disk artifact store at dir: every compiled dialect version is
// saved as a versioned artifact keyed by (spec digest, family seed,
// epoch), and version lookups try the store before compiling. A second
// process — or the same one after a restart — built from the same spec
// and options loads its dialects from the cache instead of recompiling,
// so backend cold-start and epoch storms become disk reads. Corrupt or
// mismatched artifacts are counted (Metrics().Rotation.ArtifactErrors)
// and fall back to compilation; the cache never changes wire behavior,
// only who pays for compilation. Endpoint-level only.
func WithArtifactCache(dir string) Option {
	return func(cfg *settings) { cfg.artifactDir = dir }
}

// WithTicketReplayWindow makes resumption tickets single-use across
// every session the endpoint accepts: a replay cache remembering up to
// n recently presented tickets (0 means session.DefaultReplayWindow)
// refuses the second presentation of any ticket with a counted
// `replay` reject reason. Without it (the default) a ticket stays
// acceptable until its resume window expires, which keeps reconnect
// semantics loose for single-process deployments; fleets fronted by a
// gateway should enable it and rely on WithTicketReissue to keep
// migrated sessions resumable. Endpoint-level only (the cache is what
// makes tickets single-use across sessions).
func WithTicketReplayWindow(n int) Option {
	return func(cfg *settings) { cfg.replayWindow = &n }
}

// WithTicketReissue pushes a fresh resumption ticket to the peer
// in-band after every committed rekey and after accepting a resume, so
// a session whose previous ticket was spent (single-use under a replay
// cache) or invalidated (by the rekey) is immediately migratable
// again. The peer stores the newest ticket; Session.StoredTicket
// returns it. Off by default.
func WithTicketReissue(on bool) Option {
	return func(cfg *settings) { cfg.reissue = &on }
}

// WithTrace turns on session event tracing: the endpoint keeps the
// newest n lifecycle events — session open/close, epoch crossings,
// rekey handshake steps, resume accepts and rejects (with reason),
// cover bursts, datagram rejects — of every session it mints in one
// bounded ring, read via Endpoint.Trace or served as /trace.json by
// ObsHandler. n <= 0 (the default) disables tracing, at the cost of a
// nil-check on each would-be emission. Endpoint-level only.
func WithTrace(n int) Option {
	return func(cfg *settings) { cfg.traceCap = n }
}

// withTraceClock injects the trace ring's clock for deterministic
// timestamps in tests.
func withTraceClock(clock func() time.Time) Option {
	return func(cfg *settings) { cfg.traceClock = clock }
}

// NewEndpoint compiles the dialect family of (spec, opts) once and
// returns the endpoint that mints its sessions. Endpoint options become
// the default control-plane configuration of every session; each can be
// overridden per session.
func NewEndpoint(spec string, opts Options, o ...EndpointOption) (*Endpoint, error) {
	ep := &Endpoint{}
	for _, fn := range o {
		fn(&ep.base)
	}
	if ep.base.static == nil {
		var rot *core.Rotation
		var err error
		if dir := ep.base.artifactDir; dir != "" {
			var store *artifact.Store
			store, err = artifact.NewStore(dir)
			if err != nil {
				return nil, fmt.Errorf("protoobf: artifact cache: %w", err)
			}
			rot, err = core.NewRotationStore(spec, opts, ep.base.versionWindow, ep.base.versionShards, store)
		} else {
			rot, err = core.NewRotationCache(spec, opts, ep.base.versionWindow, ep.base.versionShards)
		}
		if err != nil {
			return nil, err
		}
		ep.rot = rot
	}
	if w := ep.base.replayWindow; w != nil {
		ep.replay = session.NewReplayCache(*w)
	}
	if n := ep.base.traceCap; n > 0 {
		ep.trace = trace.NewWithClock(n, ep.base.traceClock)
	}
	return ep, nil
}

// Session opens a session over rw speaking the endpoint's dialect
// family, with the endpoint's control-plane defaults overridden by any
// per-session options. The stream stays owned by the caller unless the
// caller uses Session.Close, which closes rw when it implements
// io.Closer.
func (ep *Endpoint) Session(rw io.ReadWriter, o ...SessionOption) (*Session, error) {
	cfg, err := ep.sessionConfig(o)
	if err != nil {
		return nil, err
	}
	var versions session.Versioner
	switch {
	case cfg.static != nil:
		versions = session.Fixed(cfg.static.Graph)
	case ep.rot == nil:
		// A static endpoint whose per-session options cleared the
		// static protocol: there is no family to fall back to.
		return nil, errors.New("protoobf: static endpoint has no dialect family; sessions need WithStaticProtocol")
	default:
		versions = ep.rot.View()
	}
	return session.NewConnOpts(rw, versions, ep.sessionOpts(cfg))
}

// sessionConfig layers per-session options over the endpoint defaults
// and rejects endpoint-level options in session position.
func (ep *Endpoint) sessionConfig(o []SessionOption) (settings, error) {
	cfg := ep.base
	for _, fn := range o {
		fn(&cfg)
	}
	if cfg.versionWindow != ep.base.versionWindow || cfg.versionShards != ep.base.versionShards {
		return cfg, errors.New("protoobf: WithVersionCache is endpoint-level; pass it to NewEndpoint")
	}
	if cfg.prefetch != ep.base.prefetch {
		return cfg, errors.New("protoobf: WithPrefetch is endpoint-level; pass it to NewEndpoint")
	}
	if cfg.artifactDir != ep.base.artifactDir {
		return cfg, errors.New("protoobf: WithArtifactCache is endpoint-level; pass it to NewEndpoint")
	}
	if cfg.replayWindow != ep.base.replayWindow {
		return cfg, errors.New("protoobf: WithTicketReplayWindow is endpoint-level; pass it to NewEndpoint")
	}
	if cfg.traceCap != ep.base.traceCap {
		return cfg, errors.New("protoobf: WithTrace is endpoint-level; pass it to NewEndpoint")
	}
	if cfg.epochWindow != ep.base.epochWindow || cfg.zeroOverhead != ep.base.zeroOverhead || cfg.maxPacket != ep.base.maxPacket {
		return cfg, errors.New("protoobf: WithEpochWindow/WithZeroOverhead/WithMaxPacket configure packet sessions; pass them to PacketSession, DialPacket or ListenPacket")
	}
	return cfg, nil
}

// sessionOpts maps a layered configuration onto the session layer's
// option struct, wiring in the endpoint's shared resume counters.
func (ep *Endpoint) sessionOpts(cfg settings) session.Options {
	var sopts session.Options
	sopts.Schedule = cfg.schedule
	if cfg.rekeyEvery != nil {
		sopts.RekeyEvery = *cfg.rekeyEvery
	}
	if cfg.rekeyAfterBytes != nil {
		sopts.RekeyAfterBytes = *cfg.rekeyAfterBytes
	}
	if cfg.cacheWindow != nil {
		sopts.CacheWindow = *cfg.cacheWindow
	}
	if cfg.resumeWindow != nil {
		sopts.ResumeWindow = *cfg.resumeWindow
	}
	sopts.ResumeStats = &ep.resumeStats
	sopts.Replay = ep.replay
	if cfg.reissue != nil {
		sopts.ReissueTickets = *cfg.reissue
	}
	if cfg.shape != nil {
		p := *cfg.shape // each session owns its copy; profiles are small
		sopts.Shape = &p
	}
	sopts.ShapeClock = cfg.shapeClock
	sopts.ShapeSleep = cfg.shapeSleep
	sopts.ShapeStats = &ep.shapeStats
	sopts.Latency = &ep.latency
	sopts.Trace = ep.trace
	sopts.TraceID = ep.trace.NextSession()
	return sopts
}

// Resume reconstructs an exported session on a fresh byte stream: the
// ticket (from Session.Export, possibly minted by a different endpoint
// built from the same spec and seed) is opened locally, the session's
// rekey lineage and epoch are restored, and the in-band resume
// handshake re-attaches it to the peer on the other side of rw. The
// returned session is usable immediately; the acceptor's ack completes
// in-band on the Recv path. This is how sessions that have rekeyed —
// which a fresh Dial can never rejoin — survive connection loss.
//
// Like Session, the stream stays owned by the caller unless the caller
// uses Session.Close. Static endpoints cannot resume.
func (ep *Endpoint) Resume(rw io.ReadWriter, ticket []byte, o ...SessionOption) (*Session, error) {
	cfg, err := ep.sessionConfig(o)
	if err != nil {
		return nil, err
	}
	if cfg.static != nil || ep.rot == nil {
		return nil, errors.New("protoobf: static endpoints do not support session resumption")
	}
	return session.ResumeConn(rw, ep.rot.View(), ep.sessionOpts(cfg), ticket)
}

// DialResume connects to addr on the named network (see net.Dial) and
// resumes the exported session over the fresh connection — the
// reconnect path of a peer whose previous connection dropped. The
// returned session owns the connection: Session.Close closes it.
func (ep *Endpoint) DialResume(ctx context.Context, network, addr string, ticket []byte, o ...SessionOption) (*Session, error) {
	var d net.Dialer
	conn, err := d.DialContext(ctx, network, addr)
	if err != nil {
		return nil, err
	}
	s, err := ep.Resume(conn, ticket, o...)
	if err != nil {
		conn.Close()
		return nil, fmt.Errorf("protoobf: resume %s: %w", addr, err)
	}
	return s, nil
}

// Dial connects to addr on the named network (see net.Dial) and opens a
// session speaking the endpoint's dialect family over the connection.
// The returned session owns the connection: Session.Close closes it.
func (ep *Endpoint) Dial(ctx context.Context, network, addr string, o ...SessionOption) (*Session, error) {
	var d net.Dialer
	conn, err := d.DialContext(ctx, network, addr)
	if err != nil {
		return nil, err
	}
	s, err := ep.Session(conn, o...)
	if err != nil {
		conn.Close()
		return nil, fmt.Errorf("protoobf: dial %s: %w", addr, err)
	}
	return s, nil
}

// Listen announces on the local network address (see net.Listen) and
// returns an acceptor whose Accept yields ready sessions of this
// endpoint. Per-session options given here apply to every accepted
// session.
func (ep *Endpoint) Listen(network, addr string, o ...SessionOption) (*Listener, error) {
	l, err := net.Listen(network, addr)
	if err != nil {
		return nil, err
	}
	return &Listener{l: l, ep: ep, opts: o}, nil
}

// Version returns the compiled protocol of the given epoch under the
// endpoint's base family — what a rotation daemon pre-compiling the next
// epoch ahead of its boundary calls, and the shared lookup every session
// of the endpoint resolves through. For a static endpoint every epoch
// returns the pinned protocol.
func (ep *Endpoint) Version(epoch uint64) (*Protocol, error) {
	if ep.base.static != nil {
		return ep.base.static, nil
	}
	return ep.rot.Version(epoch)
}

// TicketOpener exposes the endpoint's dialect family as a ticket
// opener: a gateway fronting this endpoint's fleet uses it to verify
// and inspect resumption tickets (session.InspectTicket) for routing
// without building a session. It is nil for static endpoints, which
// cannot resume.
func (ep *Endpoint) TicketOpener() session.TicketOpener {
	if ep.rot == nil {
		return nil
	}
	return ep.rot.View()
}

// ReplayCache exposes the endpoint's single-use ticket cache (nil
// unless WithTicketReplayWindow was given) so a gateway and its
// backends can share one replay scope.
func (ep *Endpoint) ReplayCache() *session.ReplayCache { return ep.replay }

// Trace returns a copy of the endpoint's buffered lifecycle events,
// oldest first — always the newest WithTrace(n) (or fewer) events, with
// strictly increasing sequence numbers. Nil when tracing is off.
func (ep *Endpoint) Trace() []TraceEvent { return ep.trace.Events() }

// TraceEnabled reports whether WithTrace turned event tracing on.
func (ep *Endpoint) TraceEnabled() bool { return ep.trace.Enabled() }

// Rotation exposes the endpoint's shared dialect family for inspection
// (cache introspection, direct Version access). It is nil for static
// endpoints. Mutating it via deprecated single-owner paths while
// sessions are live defeats the endpoint's sharing guarantees.
func (ep *Endpoint) Rotation() *Rotation { return ep.rot }

// Listener accepts ready sessions of one Endpoint. It is a thin wrapper
// over the net.Listener it was created from, which remains reachable via
// Addr/Close semantics identical to net's.
type Listener struct {
	l    net.Listener
	ep   *Endpoint
	opts []SessionOption
}

// Accept waits for the next connection and returns a ready session over
// it. The session owns the accepted connection (Session.Close closes
// it). Errors from the underlying accept are returned as-is — a closed
// listener surfaces net.ErrClosed — while a session-construction failure
// on one connection closes that connection and is returned wrapped;
// accept loops that should survive a bad peer can check with
// errors.Is(err, ErrSessionSetup) and continue.
func (l *Listener) Accept() (*Session, error) {
	conn, err := l.l.Accept()
	if err != nil {
		return nil, err
	}
	s, err := l.ep.Session(conn, l.opts...)
	if err != nil {
		conn.Close()
		return nil, fmt.Errorf("%w: %w", ErrSessionSetup, err)
	}
	return s, nil
}

// ErrSessionSetup wraps per-connection session construction failures
// surfaced by Listener.Accept, distinguishing them from listener-fatal
// accept errors.
var ErrSessionSetup = errors.New("protoobf: session setup failed")

// Close closes the underlying listener; blocked Accept calls return
// net.ErrClosed.
func (l *Listener) Close() error { return l.l.Close() }

// Addr returns the listener's network address.
func (l *Listener) Addr() net.Addr { return l.l.Addr() }
