package protoobf_test

import (
	"context"
	"fmt"
	"sync"
	"testing"
	"time"

	"protoobf"
)

const beaconSpec = `
protocol beacon;
root seq msg end {
    uint  seqno 4;
    bytes note end;
}`

// fakeClock is a mutex-guarded clock for driving schedules from tests.
type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func (f *fakeClock) now() time.Time {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.t
}

func (f *fakeClock) advance(d time.Duration) {
	f.mu.Lock()
	f.t = f.t.Add(d)
	f.mu.Unlock()
}

// ExampleNewEndpoint shows the §VIII deployment shape: each peer
// compiles the dialect family once into an Endpoint, mints a session
// over the shared byte stream, and the dialect rotates mid-session.
func ExampleNewEndpoint() {
	opts := protoobf.Options{PerNode: 2, Seed: 7}
	server, err := protoobf.NewEndpoint(beaconSpec, opts)
	if err != nil {
		panic(err)
	}
	client, err := protoobf.NewEndpoint(beaconSpec, opts)
	if err != nil {
		panic(err)
	}
	cs, ss := protoobf.Pipe()
	a, err := client.Session(cs)
	if err != nil {
		panic(err)
	}
	b, err := server.Session(ss)
	if err != nil {
		panic(err)
	}
	for round := uint64(0); round < 2; round++ {
		m, err := a.NewMessage()
		if err != nil {
			panic(err)
		}
		if err := m.Scope().SetUint("seqno", 100+round); err != nil {
			panic(err)
		}
		if err := m.Scope().SetString("note", "hello"); err != nil {
			panic(err)
		}
		if err := a.Send(m); err != nil {
			panic(err)
		}
		got, err := b.Recv()
		if err != nil {
			panic(err)
		}
		seqno, _ := got.Scope().GetUint("seqno")
		fmt.Printf("epoch %d delivered seqno %d\n", b.Epoch(), seqno)
		if _, err := a.Rotate(); err != nil { // B follows on its next Recv
			panic(err)
		}
	}
	// Output:
	// epoch 0 delivered seqno 100
	// epoch 1 delivered seqno 101
}

// roundTrip sends one beacon from -> to and asserts the payload.
func roundTrip(t *testing.T, from, to *protoobf.Session, seqno uint64) {
	t.Helper()
	m, err := from.NewMessage()
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Scope().SetUint("seqno", seqno); err != nil {
		t.Fatal(err)
	}
	if err := m.Scope().SetString("note", "n"); err != nil {
		t.Fatal(err)
	}
	if err := from.Send(m); err != nil {
		t.Fatal(err)
	}
	got, err := to.Recv()
	if err != nil {
		t.Fatal(err)
	}
	if v, err := got.Scope().GetUint("seqno"); err != nil || v != seqno {
		t.Fatalf("round trip decoded seqno %d (%v), want %d", v, err, seqno)
	}
}

// TestEndpointConcurrentSessions runs N session pairs on one server
// Endpoint under mixed rotation regimes — scheduled clients adopt the
// shared wall clock themselves, unscheduled clients follow the server's
// frames — while a separate goroutine advances epoch time. Run under
// -race this is the share-safety test for the sharded version cache.
func TestEndpointConcurrentSessions(t *testing.T) {
	const (
		pairs    = 8
		rounds   = 40
		interval = time.Hour
	)
	opts := protoobf.Options{PerNode: 1, Seed: 41}
	genesis := time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)
	clock := &fakeClock{t: genesis}
	schedule := protoobf.NewSchedule(genesis, interval).WithClock(clock.now)

	server, err := protoobf.NewEndpoint(beaconSpec, opts, protoobf.WithSchedule(schedule))
	if err != nil {
		t.Fatal(err)
	}
	client, err := protoobf.NewEndpoint(beaconSpec, opts)
	if err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	stop := make(chan struct{})
	wg.Add(1)
	go func() { // epoch time passes while traffic flows
		defer wg.Done()
		for i := 0; i < 30; i++ {
			select {
			case <-stop:
				return
			default:
			}
			clock.advance(interval)
			time.Sleep(time.Millisecond)
		}
	}()

	errs := make(chan error, pairs)
	for p := 0; p < pairs; p++ {
		cs, ss := protoobf.Pipe()
		// Every server session inherits the endpoint's schedule; half
		// the clients schedule themselves, the other half follow the
		// server's reply epochs.
		var copts []protoobf.SessionOption
		if p%2 == 0 {
			copts = append(copts, protoobf.WithSchedule(schedule))
		}
		sc, err := client.Session(cs, copts...)
		if err != nil {
			t.Fatal(err)
		}
		sv, err := server.Session(ss)
		if err != nil {
			t.Fatal(err)
		}
		wg.Add(1)
		go func(p int, sc, sv *protoobf.Session) {
			defer wg.Done()
			defer sc.Release()
			defer sv.Release()
			for r := 0; r < rounds; r++ {
				seq := uint64(p*rounds + r)
				m, err := sc.NewMessage()
				if err != nil {
					errs <- fmt.Errorf("pair %d: %w", p, err)
					return
				}
				if err := m.Scope().SetUint("seqno", seq); err != nil {
					errs <- err
					return
				}
				if err := m.Scope().SetString("note", "n"); err != nil {
					errs <- err
					return
				}
				if err := sc.Send(m); err != nil {
					errs <- fmt.Errorf("pair %d send: %w", p, err)
					return
				}
				got, err := sv.Recv()
				if err != nil {
					errs <- fmt.Errorf("pair %d server recv: %w", p, err)
					return
				}
				v, _ := got.Scope().GetUint("seqno")
				if v != seq {
					errs <- fmt.Errorf("pair %d: decoded %d, want %d", p, v, seq)
					return
				}
				reply, err := sv.NewMessage() // adopts the schedule epoch
				if err != nil {
					errs <- err
					return
				}
				if err := reply.Scope().SetUint("seqno", seq); err != nil {
					errs <- err
					return
				}
				if err := reply.Scope().SetString("note", "ack"); err != nil {
					errs <- err
					return
				}
				if err := sv.Send(reply); err != nil {
					errs <- err
					return
				}
				if _, err := sc.Recv(); err != nil { // followers advance here
					errs <- fmt.Errorf("pair %d client recv: %w", p, err)
					return
				}
			}
			errs <- nil
		}(p, sc, sv)
	}
	for p := 0; p < pairs; p++ {
		if err := <-errs; err != nil {
			t.Fatal(err)
		}
	}
	close(stop)
	wg.Wait()

	if n := server.Rotation().CacheLen(); n == 0 {
		t.Error("server endpoint compiled nothing — sessions bypassed the shared cache")
	}
}

// TestEndpointSessionRekeyIndependence is the property the Endpoint
// exists for: an in-band rekey negotiated on one session of an endpoint
// leaves its sibling sessions — and the endpoint's base family — intact.
func TestEndpointSessionRekeyIndependence(t *testing.T) {
	opts := protoobf.Options{PerNode: 2, Seed: 17}
	server, err := protoobf.NewEndpoint(beaconSpec, opts)
	if err != nil {
		t.Fatal(err)
	}
	client, err := protoobf.NewEndpoint(beaconSpec, opts)
	if err != nil {
		t.Fatal(err)
	}
	baseSeed := func(ep *protoobf.Endpoint, epoch uint64) int64 {
		t.Helper()
		p, err := ep.Version(epoch)
		if err != nil {
			t.Fatal(err)
		}
		return p.Seed
	}
	wantSeed := baseSeed(server, 3)

	mk := func() (*protoobf.Session, *protoobf.Session) {
		t.Helper()
		cs, ss := protoobf.Pipe()
		sc, err := client.Session(cs)
		if err != nil {
			t.Fatal(err)
		}
		sv, err := server.Session(ss)
		if err != nil {
			t.Fatal(err)
		}
		return sc, sv
	}
	c1, s1 := mk()
	c2, s2 := mk()

	roundTrip(t, c1, s1, 1)
	roundTrip(t, c2, s2, 2)

	// Pair 1 rekeys: propose rides ahead of a data frame, the ack comes
	// back with the reply.
	if _, err := c1.Rekey(0xFEED); err != nil {
		t.Fatal(err)
	}
	roundTrip(t, c1, s1, 3) // server handles the propose, acks, advances
	roundTrip(t, s1, c1, 4) // client handles the ack and advances
	if c1.Epoch() == 0 || s1.Epoch() == 0 {
		t.Fatalf("rekey handshake did not advance the pair (client %d, server %d)", c1.Epoch(), s1.Epoch())
	}
	// Pair 1 keeps working under the new family.
	roundTrip(t, c1, s1, 5)

	// Pair 2 crosses the rekey boundary on the base family — exactly
	// the exchange the old shared-Rotation design corrupted.
	for e := 0; e < 3; e++ {
		if _, err := c2.Rotate(); err != nil {
			t.Fatal(err)
		}
		roundTrip(t, c2, s2, uint64(10+e))
	}
	// The endpoint's base family is untouched by pair 1's rekey.
	if got := baseSeed(server, 3); got != wantSeed {
		t.Errorf("base family seed changed across a session rekey: %d -> %d", wantSeed, got)
	}
}

// TestEndpointCacheSoak churns a session pair across ~1500 scheduled
// epochs and pins the sharded version cache (and the per-session
// dialect windows) to their configured bounds.
func TestEndpointCacheSoak(t *testing.T) {
	const (
		epochs   = 1500
		vwindow  = 12
		swindow  = 6
		interval = time.Minute
	)
	opts := protoobf.Options{PerNode: 0, Seed: 5}
	genesis := time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)
	clock := &fakeClock{t: genesis}
	schedule := protoobf.NewSchedule(genesis, interval).WithClock(clock.now)

	ep, err := protoobf.NewEndpoint(beaconSpec, opts,
		protoobf.WithSchedule(schedule),
		protoobf.WithVersionCache(vwindow, 4),
		protoobf.WithCacheWindow(swindow))
	if err != nil {
		t.Fatal(err)
	}
	cs, ss := protoobf.Pipe()
	a, err := ep.Session(cs)
	if err != nil {
		t.Fatal(err)
	}
	b, err := ep.Session(ss)
	if err != nil {
		t.Fatal(err)
	}
	for e := 0; e < epochs; e++ {
		clock.advance(interval)
		roundTrip(t, a, b, uint64(e))
		if n := ep.Rotation().CacheLen(); n > vwindow {
			t.Fatalf("epoch %d: shared cache holds %d versions, bound %d", e, n, vwindow)
		}
	}
	if got, want := a.Epoch(), uint64(epochs); got != want {
		t.Fatalf("soak ended at epoch %d, want %d", got, want)
	}
}

// TestEndpointDialListen exercises the net-native surface over loopback
// TCP: one listening endpoint serving several dialing clients, sessions
// owning their connections.
func TestEndpointDialListen(t *testing.T) {
	opts := protoobf.Options{PerNode: 1, Seed: 23}
	server, err := protoobf.NewEndpoint(beaconSpec, opts)
	if err != nil {
		t.Fatal(err)
	}
	client, err := protoobf.NewEndpoint(beaconSpec, opts)
	if err != nil {
		t.Fatal(err)
	}
	ln, err := server.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()

	go func() {
		for {
			sess, err := ln.Accept()
			if err != nil {
				return // listener closed
			}
			go func(sess *protoobf.Session) {
				defer sess.Close()
				for {
					got, err := sess.Recv()
					if err != nil {
						return
					}
					seq, _ := got.Scope().GetUint("seqno")
					reply, err := sess.NewMessage()
					if err != nil {
						return
					}
					if reply.Scope().SetUint("seqno", seq+1000) != nil {
						return
					}
					if reply.Scope().SetString("note", "ack") != nil {
						return
					}
					if sess.Send(reply) != nil {
						return
					}
				}
			}(sess)
		}
	}()

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	var wg sync.WaitGroup
	for c := 0; c < 3; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			sess, err := client.Dial(ctx, "tcp", ln.Addr().String())
			if err != nil {
				t.Error(err)
				return
			}
			defer sess.Close()
			for r := 0; r < 5; r++ {
				seq := uint64(c*100 + r)
				m, err := sess.NewMessage()
				if err != nil {
					t.Error(err)
					return
				}
				if err := m.Scope().SetUint("seqno", seq); err != nil {
					t.Error(err)
					return
				}
				if err := m.Scope().SetString("note", "n"); err != nil {
					t.Error(err)
					return
				}
				if err := sess.Send(m); err != nil {
					t.Error(err)
					return
				}
				got, err := sess.Recv()
				if err != nil {
					t.Error(err)
					return
				}
				if v, _ := got.Scope().GetUint("seqno"); v != seq+1000 {
					t.Errorf("client %d: got %d, want %d", c, v, seq+1000)
					return
				}
			}
		}(c)
	}
	wg.Wait()
}

// TestEndpointStatic pins the WithStaticProtocol path: session framing
// without dialect rotation, for both a static endpoint and a static
// session on a rotating endpoint.
func TestEndpointStatic(t *testing.T) {
	proto, err := protoobf.Compile(beaconSpec, protoobf.Options{PerNode: 2, Seed: 31})
	if err != nil {
		t.Fatal(err)
	}
	ep, err := protoobf.NewEndpoint("", protoobf.Options{}, protoobf.WithStaticProtocol(proto))
	if err != nil {
		t.Fatal(err)
	}
	if ep.Rotation() != nil {
		t.Error("static endpoint compiled a rotation")
	}
	cs, ss := protoobf.Pipe()
	a, err := ep.Session(cs)
	if err != nil {
		t.Fatal(err)
	}
	b, err := ep.Session(ss)
	if err != nil {
		t.Fatal(err)
	}
	roundTrip(t, a, b, 7)
	if _, err := a.Rekey(1); err == nil {
		t.Error("static session accepted a rekey")
	}

	// A rotating endpoint can still pin individual sessions.
	rot, err := protoobf.NewEndpoint(beaconSpec, protoobf.Options{PerNode: 2, Seed: 31})
	if err != nil {
		t.Fatal(err)
	}
	cs2, ss2 := protoobf.Pipe()
	x, err := rot.Session(cs2, protoobf.WithStaticProtocol(proto))
	if err != nil {
		t.Fatal(err)
	}
	y, err := rot.Session(ss2, protoobf.WithStaticProtocol(proto))
	if err != nil {
		t.Fatal(err)
	}
	roundTrip(t, x, y, 9)
}

// TestEndpointOptionMisuse pins the error paths for options that cannot
// apply where they were given.
func TestEndpointOptionMisuse(t *testing.T) {
	proto, err := protoobf.Compile(beaconSpec, protoobf.Options{PerNode: 1, Seed: 31})
	if err != nil {
		t.Fatal(err)
	}
	// A static endpoint has no family to fall back to when a session
	// clears the static protocol.
	ep, err := protoobf.NewEndpoint("", protoobf.Options{}, protoobf.WithStaticProtocol(proto))
	if err != nil {
		t.Fatal(err)
	}
	rw, _ := protoobf.Pipe()
	if _, err := ep.Session(rw, protoobf.WithStaticProtocol(nil)); err == nil {
		t.Error("static endpoint minted a session with no protocol at all")
	}
	// WithVersionCache is endpoint-level; in session position it would
	// silently do nothing, so it errors instead.
	rot, err := protoobf.NewEndpoint(beaconSpec, protoobf.Options{PerNode: 1, Seed: 31})
	if err != nil {
		t.Fatal(err)
	}
	rw2, _ := protoobf.Pipe()
	if _, err := rot.Session(rw2, protoobf.WithVersionCache(256, 8)); err == nil {
		t.Error("session accepted the endpoint-level WithVersionCache")
	}
}
