package core

import (
	"bytes"
	"errors"
	"strings"
	"sync"
	"testing"
)

const rotSpec = `
protocol rot;
root seq m end {
    uint a 2;
    uint b 4;
    bytes payload fixed 8;
}
`

func newTestRotation(t *testing.T, seed int64) *Rotation {
	t.Helper()
	r, err := NewRotation(rotSpec, ObfuscationOptions{PerNode: 2, Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func TestRekeyDeterministicAcrossPeers(t *testing.T) {
	a, b := newTestRotation(t, 11), newTestRotation(t, 11)
	for _, r := range []*Rotation{a, b} {
		if err := r.Rekey(5, 9999); err != nil {
			t.Fatal(err)
		}
	}
	for _, epoch := range []uint64{0, 4, 5, 6, 100} {
		pa, err := a.Version(epoch)
		if err != nil {
			t.Fatal(err)
		}
		pb, err := b.Version(epoch)
		if err != nil {
			t.Fatal(err)
		}
		if pa.Seed != pb.Seed {
			t.Errorf("epoch %d: peers diverged (%d vs %d)", epoch, pa.Seed, pb.Seed)
		}
		if pa.Trace() != pb.Trace() {
			t.Errorf("epoch %d: transformation traces diverged", epoch)
		}
	}
}

func TestRekeyBoundary(t *testing.T) {
	r := newTestRotation(t, 3)
	before, err := r.Version(4)
	if err != nil {
		t.Fatal(err)
	}
	beforeAt5, err := r.Version(5)
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Rekey(5, 4242); err != nil {
		t.Fatal(err)
	}
	// Epochs before the boundary keep their family...
	after, err := r.Version(4)
	if err != nil {
		t.Fatal(err)
	}
	if after.Seed != before.Seed {
		t.Errorf("pre-boundary epoch reseeded: %d -> %d", before.Seed, after.Seed)
	}
	// ...epochs at/past it switch (the cached old version is invalidated).
	afterAt5, err := r.Version(5)
	if err != nil {
		t.Fatal(err)
	}
	if afterAt5.Seed == beforeAt5.Seed {
		t.Error("post-boundary epoch kept the old family")
	}
	// A rekey cannot move backwards past a recorded point.
	if err := r.Rekey(4, 1); err == nil || !strings.Contains(err.Error(), "predates") {
		t.Errorf("backwards rekey: %v", err)
	}
	// Re-proposing the same boundary replaces the seed (the session
	// layer's tie-break).
	if err := r.Rekey(5, 5555); err != nil {
		t.Fatal(err)
	}
	replaced, err := r.Version(5)
	if err != nil {
		t.Fatal(err)
	}
	if replaced.Seed == afterAt5.Seed {
		t.Error("same-boundary rekey did not replace the seed")
	}
}

func TestDropRekey(t *testing.T) {
	r := newTestRotation(t, 13)
	base, err := r.Version(5)
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Rekey(5, 321); err != nil {
		t.Fatal(err)
	}
	switched, err := r.Version(5)
	if err != nil {
		t.Fatal(err)
	}
	if switched.Seed == base.Seed {
		t.Fatal("rekey did not switch the family")
	}
	// Mismatched drops are rejected; the matching drop restores the
	// previous family exactly.
	if err := r.DropRekey(5, 999); err == nil {
		t.Error("mismatched DropRekey accepted")
	}
	if err := r.DropRekey(5, 321); err != nil {
		t.Fatal(err)
	}
	restored, err := r.Version(5)
	if err != nil {
		t.Fatal(err)
	}
	if restored.Seed != base.Seed {
		t.Errorf("dropped rekey left seed %d, want %d", restored.Seed, base.Seed)
	}
	if err := r.DropRekey(5, 321); err == nil {
		t.Error("double DropRekey accepted")
	}
}

func TestRotationCacheBounded(t *testing.T) {
	r := newTestRotation(t, 7)
	r.Bound(4)
	for epoch := uint64(0); epoch < 100; epoch++ {
		if _, err := r.Version(epoch); err != nil {
			t.Fatal(err)
		}
		if n := r.CacheLen(); n > 4 {
			t.Fatalf("epoch %d: cache holds %d versions, bound 4", epoch, n)
		}
	}
	// Evicted epochs recompile to the same version.
	p0a, err := r.Version(0)
	if err != nil {
		t.Fatal(err)
	}
	fresh := newTestRotation(t, 7)
	p0b, err := fresh.Version(0)
	if err != nil {
		t.Fatal(err)
	}
	if p0a.Seed != p0b.Seed || p0a.Trace() != p0b.Trace() {
		t.Error("recompiled evicted epoch differs from the original compile")
	}
}

func TestControlPad(t *testing.T) {
	a, b := newTestRotation(t, 19), newTestRotation(t, 19)
	// Shared-history peers derive identical pads.
	if !bytes.Equal(a.ControlPad(3, 20), b.ControlPad(3, 20)) {
		t.Error("same-history pads differ")
	}
	// Pads vary by epoch and by family.
	if bytes.Equal(a.ControlPad(3, 20), a.ControlPad(4, 20)) {
		t.Error("pad does not vary with epoch")
	}
	other := newTestRotation(t, 20)
	if bytes.Equal(a.ControlPad(3, 20), other.ControlPad(3, 20)) {
		t.Error("pad does not vary with master seed")
	}
	// A rekey changes the pad at and past the boundary only.
	before3, before9 := a.ControlPad(3, 20), a.ControlPad(9, 20)
	if err := a.Rekey(5, 777); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.ControlPad(3, 20), before3) {
		t.Error("rekey changed a pre-boundary pad")
	}
	if bytes.Equal(a.ControlPad(9, 20), before9) {
		t.Error("rekey left a post-boundary pad unchanged")
	}
}

// TestViewIndependentRekey is the share-safety property behind the
// Endpoint API: views of one Rotation rekey independently, so a rekey
// negotiated on one session never switches the family under another.
func TestViewIndependentRekey(t *testing.T) {
	r := newTestRotation(t, 21)
	v1, v2 := r.View(), r.View()

	base, err := v2.Version(6)
	if err != nil {
		t.Fatal(err)
	}
	if err := v1.Rekey(5, 777); err != nil {
		t.Fatal(err)
	}
	// v1 sees the new family past the boundary...
	switched, err := v1.Version(6)
	if err != nil {
		t.Fatal(err)
	}
	if switched.Seed == base.Seed {
		t.Error("rekeyed view kept the base family")
	}
	// ...v2 and the Rotation's default view stay on the base family.
	still, err := v2.Version(6)
	if err != nil {
		t.Fatal(err)
	}
	if still.Seed != base.Seed {
		t.Error("rekey on one view leaked into a sibling view")
	}
	direct, err := r.Version(6)
	if err != nil {
		t.Fatal(err)
	}
	if direct.Seed != base.Seed {
		t.Error("rekey on one view leaked into the default view")
	}
	// Pads diverge accordingly: v1 masks with the new family at 6.
	if bytes.Equal(v1.ControlPad(6, 20), v2.ControlPad(6, 20)) {
		t.Error("post-rekey pads identical across views")
	}
	if !bytes.Equal(v1.ControlPad(4, 20), v2.ControlPad(4, 20)) {
		t.Error("pre-boundary pads differ across views")
	}
}

// TestViewSharedCompileCache checks views actually share compiled
// versions: the same (family, epoch) resolves to the same *Protocol
// across views, and a rekeyed view's old-family entries remain valid
// for its siblings.
func TestViewSharedCompileCache(t *testing.T) {
	r := newTestRotation(t, 23)
	v1, v2 := r.View(), r.View()
	p1, err := v1.Version(3)
	if err != nil {
		t.Fatal(err)
	}
	p2, err := v2.Version(3)
	if err != nil {
		t.Fatal(err)
	}
	if p1 != p2 {
		t.Error("sibling views compiled the same version twice")
	}
	n := r.CacheLen()
	if err := v1.Rekey(2, 999); err != nil {
		t.Fatal(err)
	}
	// Rekey is metadata-only: nothing is evicted.
	if got := r.CacheLen(); got != n {
		t.Errorf("rekey changed cache population: %d -> %d", n, got)
	}
	// v2 still hits the cached base-family version.
	p2b, err := v2.Version(3)
	if err != nil {
		t.Fatal(err)
	}
	if p2b != p2 {
		t.Error("sibling lost its cached version after an unrelated rekey")
	}
}

// TestVersionForConcurrent races many goroutines over a few epochs on
// one Rotation (run under -race): every goroutine must observe the same
// compiled version per epoch, and the compile dedup must keep the cache
// to one entry per (family, epoch).
func TestVersionForConcurrent(t *testing.T) {
	r := newTestRotation(t, 29)
	const workers, epochs = 16, 8
	got := make([][epochs]*Protocol, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			v := r.View()
			for e := 0; e < epochs; e++ {
				p, err := v.Version(uint64(e))
				if err != nil {
					t.Error(err)
					return
				}
				got[w][e] = p
			}
		}(w)
	}
	wg.Wait()
	for e := 0; e < epochs; e++ {
		for w := 1; w < workers; w++ {
			if got[w][e] != got[0][e] {
				t.Fatalf("epoch %d: worker %d observed a different compiled version", e, w)
			}
		}
	}
	if n := r.CacheLen(); n != epochs {
		t.Errorf("cache holds %d versions after dedup, want %d", n, epochs)
	}
}

// TestAttachSharing pins the ErrSharedRekey rules the deprecated
// constructors enforce.
func TestAttachSharing(t *testing.T) {
	r := newTestRotation(t, 31)
	// Many plain sessions may share.
	if err := r.Attach(false); err != nil {
		t.Fatal(err)
	}
	if err := r.Attach(false); err != nil {
		t.Fatal(err)
	}
	// A rekey session cannot join a shared rotation.
	if err := r.Attach(true); !errors.Is(err, ErrSharedRekey) {
		t.Fatalf("rekey attach on shared rotation: %v", err)
	}
	// A rekey session alone is fine; nothing may join it afterwards.
	solo := newTestRotation(t, 31)
	if err := solo.Attach(true); err != nil {
		t.Fatal(err)
	}
	if err := solo.Attach(false); !errors.Is(err, ErrSharedRekey) {
		t.Fatalf("attach after rekey owner: %v", err)
	}
	// Detach rolls the claim back.
	solo.Detach(true)
	if err := solo.Attach(false); err != nil {
		t.Fatalf("attach after detach: %v", err)
	}
}

// TestRotationStats pins the compile accounting the observability layer
// reports: the eager epoch-0 probe counts as one compile, every further
// epoch's first Version adds one, repeat lookups are pure cache hits,
// and rekeys/rollbacks on any view are tallied on the shared Rotation.
func TestRotationStats(t *testing.T) {
	r, err := NewRotation(rotSpec, ObfuscationOptions{PerNode: 1, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if got := r.Stats().Compiles; got != 1 {
		t.Fatalf("compiles after construction = %d, want 1 (the epoch-0 probe)", got)
	}
	for e := uint64(1); e <= 3; e++ {
		if _, err := r.Version(e); err != nil {
			t.Fatal(err)
		}
	}
	st := r.Stats()
	if st.Compiles != 4 {
		t.Fatalf("compiles after epochs 1..3 = %d, want 4", st.Compiles)
	}
	if st.PrefetchCompiles != 0 {
		t.Fatalf("prefetch compiles = %d with no prefetcher, want 0", st.PrefetchCompiles)
	}
	// Warm lookups: hits only, no new compiles.
	for e := uint64(0); e <= 3; e++ {
		if _, err := r.Version(e); err != nil {
			t.Fatal(err)
		}
	}
	st2 := r.Stats()
	if st2.Compiles != st.Compiles {
		t.Fatalf("warm lookups compiled: %d -> %d", st.Compiles, st2.Compiles)
	}
	if st2.Cache.Hits <= st.Cache.Hits {
		t.Fatalf("warm lookups did not hit the cache: %d -> %d", st.Cache.Hits, st2.Cache.Hits)
	}

	v := r.View()
	if err := v.Rekey(5, 0xABC); err != nil {
		t.Fatal(err)
	}
	if err := v.DropRekey(5, 0xABC); err != nil {
		t.Fatal(err)
	}
	st3 := r.Stats()
	if st3.Rekeys != 1 || st3.RekeyRollbacks != 1 {
		t.Fatalf("rekeys/rollbacks = %d/%d, want 1/1", st3.Rekeys, st3.RekeyRollbacks)
	}
}

// TestRotationPrefetch: a prefetched epoch is attributed to the
// prefetcher, and the session-facing Version that follows is a pure
// cache hit — zero demand compiles, the property the epoch-boundary
// daemon exists for.
func TestRotationPrefetch(t *testing.T) {
	r, err := NewRotation(rotSpec, ObfuscationOptions{PerNode: 1, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	compiled, err := r.Prefetch(1)
	if err != nil {
		t.Fatal(err)
	}
	if !compiled {
		t.Fatal("first Prefetch(1) reported compiled=false")
	}
	compiled, err = r.Prefetch(1)
	if err != nil {
		t.Fatal(err)
	}
	if compiled {
		t.Fatal("second Prefetch(1) recompiled a cached version")
	}
	before := r.Stats()
	p, err := r.Version(1)
	if err != nil {
		t.Fatal(err)
	}
	after := r.Stats()
	if after.Compiles != before.Compiles {
		t.Fatalf("Version(1) after Prefetch(1) compiled (%d -> %d)", before.Compiles, after.Compiles)
	}
	if after.DemandCompiles() != 1 { // the construction-time epoch-0 probe only
		t.Fatalf("demand compiles = %d, want 1", after.DemandCompiles())
	}
	// The prefetched version is the one served.
	direct, err := r.Version(1)
	if err != nil {
		t.Fatal(err)
	}
	if p != direct {
		t.Fatal("Prefetch and Version disagree on the compiled version")
	}
}

// TestRotationPrefetchRekeyedViewUnaffected: prefetching the base
// family must not leak into a rekeyed view — its epochs are keyed under
// the fresh family and compile (or hit) independently.
func TestRotationPrefetchRekeyedViewUnaffected(t *testing.T) {
	r, err := NewRotation(rotSpec, ObfuscationOptions{PerNode: 1, Seed: 13})
	if err != nil {
		t.Fatal(err)
	}
	v := r.View()
	if err := v.Rekey(2, 0xF00); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Prefetch(2); err != nil {
		t.Fatal(err)
	}
	base, err := r.Version(2)
	if err != nil {
		t.Fatal(err)
	}
	rekeyed, err := v.Version(2)
	if err != nil {
		t.Fatal(err)
	}
	if base == rekeyed {
		t.Fatal("rekeyed view was served the prefetched base-family version")
	}
}

// TestRotationCompileDedup: concurrent first lookups of one version
// share a single compile; the joiners are counted as dedup hits.
func TestRotationCompileDedup(t *testing.T) {
	r, err := NewRotation(rotSpec, ObfuscationOptions{PerNode: 2, Seed: 17})
	if err != nil {
		t.Fatal(err)
	}
	const workers = 8
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := r.Version(1); err != nil {
				t.Error(err)
			}
		}()
	}
	wg.Wait()
	st := r.Stats()
	if st.Compiles != 2 { // epoch-0 probe + one shared compile of epoch 1
		t.Fatalf("compiles = %d, want 2 (one shared compile)", st.Compiles)
	}
	if st.CompileDedup+st.Cache.Hits < workers-1 {
		t.Fatalf("dedup (%d) + hits (%d) cannot cover the %d joining workers",
			st.CompileDedup, st.Cache.Hits, workers-1)
	}
}

// TestRotationMissAccounting: one cold lookup is one miss — the
// singleflight re-check must not double-count it — and warm lookups
// are pure hits, so hit-rate arithmetic stays honest.
func TestRotationMissAccounting(t *testing.T) {
	r, err := NewRotation(rotSpec, ObfuscationOptions{PerNode: 1, Seed: 19})
	if err != nil {
		t.Fatal(err)
	}
	base := r.Stats()
	if _, err := r.Version(1); err != nil { // cold: miss + compile
		t.Fatal(err)
	}
	if _, err := r.Version(1); err != nil { // warm: hit
		t.Fatal(err)
	}
	st := r.Stats()
	if d := st.Cache.Misses - base.Cache.Misses; d != 1 {
		t.Fatalf("cold lookup recorded %d misses, want 1", d)
	}
	if d := st.Cache.Hits - base.Cache.Hits; d != 1 {
		t.Fatalf("warm lookup recorded %d hits, want 1", d)
	}
}

// hasFamily reports whether seed is among the active families at cur.
func hasFamily(fams []ActiveFamily, seed int64) bool {
	for _, f := range fams {
		if f.Seed == seed {
			return true
		}
	}
	return false
}

// TestActiveFamilyLifecycle pins the family-liveness table the prefetch
// daemon draws from: a rekey registers its family, demand lookups keep
// it alive, idling past familyIdleEpochs prunes it — and, critically, a
// later demand lookup from the still-live session re-registers it, so
// prefetch warming is never lost permanently to an idle period.
func TestActiveFamilyLifecycle(t *testing.T) {
	rot := newTestRotation(t, 77)
	v := rot.View()
	const fam = int64(0xAA)
	if err := v.Rekey(5, fam); err != nil {
		t.Fatal(err)
	}
	if fams := rot.ActiveFamilies(5); !hasFamily(fams, fam) {
		t.Fatalf("family not registered at rekey: %v", fams)
	}
	// Demand traffic at epoch 9 keeps it alive through epoch 9+idle.
	if _, err := v.Version(9); err != nil {
		t.Fatal(err)
	}
	if fams := rot.ActiveFamilies(9 + familyIdleEpochs); !hasFamily(fams, fam) {
		t.Fatalf("family pruned while within the idle window")
	}
	// A long idle prunes it...
	if fams := rot.ActiveFamilies(100); hasFamily(fams, fam) {
		t.Fatalf("family survived a %d-epoch idle: %v", 100-9, fams)
	}
	// ...and the session's next demand lookup re-registers it.
	if _, err := v.Version(100); err != nil {
		t.Fatal(err)
	}
	fams := rot.ActiveFamilies(100)
	if !hasFamily(fams, fam) {
		t.Fatal("pruned family did not re-register on a demand lookup")
	}
	for _, f := range fams {
		if f.Seed == fam && f.From > 100 {
			t.Fatalf("re-registered family starts at %d, after the demanded epoch", f.From)
		}
	}
	// The base family is never tracked.
	if _, err := rot.Version(100); err != nil {
		t.Fatal(err)
	}
	if fams := rot.ActiveFamilies(100); hasFamily(fams, rot.opts.Seed) {
		t.Fatal("base family entered the liveness table")
	}
}
