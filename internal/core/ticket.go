package core

import (
	"crypto/hmac"
	crand "crypto/rand"
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"fmt"
)

// Resumption-ticket sealing: the session migration subsystem captures a
// session's control-plane state (epoch, rekey lineage, traffic odometer)
// and carries it across byte streams as an opaque ticket. The ticket is
// sealed with a key derived from the dialect family's base master seed —
// the secret both endpoints of a deployment already share — so any
// endpoint built from the same (spec, seed) can open a peer's ticket,
// while an observer that lacks the seed can neither read the lineage nor
// forge a ticket that survives the tag check.
//
// The construction is a SHA-256 counter-mode keystream plus a truncated
// HMAC-SHA-256 tag over the masked body:
//
//	ticket: [16-byte nonce][masked state][16-byte tag]
//
// Like View.ControlPad this is obfuscation-grade protection, deliberately
// within the paper's threat model: the base seed is a 63-bit secret and
// the scheme is not a vetted AEAD. Deployments needing cryptographic
// confidentiality of the rekey lineage should run sessions (and store
// tickets) over protected channels; the sealing then keeps tickets
// opaque and unforgeable against everyone without the seed.
const (
	ticketNonceLen = 16
	ticketTagLen   = 16
	ticketOverhead = ticketNonceLen + ticketTagLen

	// maxTicketLen bounds what OpenTicket will even look at, so a hostile
	// resume frame cannot make the acceptor hash megabytes before the
	// (cheap) length check rejects it. Sized so the session layer's
	// longest admissible rekey lineage (256 points, ~4.1 KiB of state)
	// still seals; real tickets are well under 1 KiB.
	maxTicketLen = 8192
)

// ErrTicketInvalid reports a ticket that failed structural or tag
// verification: truncated, oversized, forged, or sealed under a
// different base seed.
var ErrTicketInvalid = errors.New("core: resumption ticket invalid (forged, corrupted, or wrong dialect family)")

// ticketKey derives the sealing key from the family's base master seed
// under a fixed domain string.
func ticketKey(secret int64) []byte {
	h := sha256.New()
	h.Write([]byte("protoobf resume ticket v1"))
	var b [8]byte
	binary.BigEndian.PutUint64(b[:], uint64(secret))
	h.Write(b[:])
	return h.Sum(nil)
}

// ticketMask XORs the counter-mode SHA-256 keystream of (key, nonce)
// over p in place. Masking and unmasking are the same operation.
func ticketMask(key, nonce, p []byte) {
	var blk [sha256.Size]byte
	var ctr [8]byte
	for off := 0; off < len(p); off += sha256.Size {
		binary.BigEndian.PutUint64(ctr[:], uint64(off/sha256.Size))
		h := sha256.New()
		h.Write(key)
		h.Write(nonce)
		h.Write(ctr[:])
		h.Sum(blk[:0])
		n := len(p) - off
		if n > sha256.Size {
			n = sha256.Size
		}
		for i := 0; i < n; i++ {
			p[off+i] ^= blk[i]
		}
	}
}

// ticketTag computes the truncated authentication tag over nonce and the
// masked body.
func ticketTag(key, nonce, masked []byte) []byte {
	mac := hmac.New(sha256.New, key)
	mac.Write(nonce)
	mac.Write(masked)
	return mac.Sum(nil)[:ticketTagLen]
}

// SealTicket seals plain into an opaque resumption ticket under the key
// derived from secret (the dialect family's base master seed). The
// plaintext is not retained: callers may reuse the slice.
func SealTicket(secret int64, plain []byte) ([]byte, error) {
	if len(plain) > maxTicketLen-ticketOverhead {
		return nil, fmt.Errorf("core: ticket state of %d bytes exceeds limit %d", len(plain), maxTicketLen-ticketOverhead)
	}
	key := ticketKey(secret)
	out := make([]byte, ticketNonceLen+len(plain), ticketNonceLen+len(plain)+ticketTagLen)
	if _, err := crand.Read(out[:ticketNonceLen]); err != nil {
		return nil, fmt.Errorf("core: ticket nonce: %w", err)
	}
	copy(out[ticketNonceLen:], plain)
	ticketMask(key, out[:ticketNonceLen], out[ticketNonceLen:])
	tag := ticketTag(key, out[:ticketNonceLen], out[ticketNonceLen:])
	return append(out, tag...), nil
}

// OpenTicket verifies and unseals a ticket previously produced by
// SealTicket under the same secret, returning the state plaintext in a
// fresh slice (the ticket bytes are not modified). Any structural or tag
// failure returns an error wrapping ErrTicketInvalid.
func OpenTicket(secret int64, ticket []byte) ([]byte, error) {
	if len(ticket) < ticketOverhead || len(ticket) > maxTicketLen {
		return nil, fmt.Errorf("%w: %d bytes", ErrTicketInvalid, len(ticket))
	}
	key := ticketKey(secret)
	nonce := ticket[:ticketNonceLen]
	masked := ticket[ticketNonceLen : len(ticket)-ticketTagLen]
	tag := ticket[len(ticket)-ticketTagLen:]
	// Constant-time tag comparison: hmac.Equal is subtle.ConstantTimeCompare
	// under the hood, so an attacker iterating forged tags learns nothing
	// from rejection timing about how many prefix bytes matched. Do not
	// replace with bytes.Equal.
	if !hmac.Equal(tag, ticketTag(key, nonce, masked)) {
		return nil, ErrTicketInvalid
	}
	plain := append([]byte(nil), masked...)
	ticketMask(key, nonce, plain)
	return plain, nil
}
