package core

import (
	"os"
	"testing"

	"protoobf/internal/artifact"
)

// writeHalf truncates the file to half its size, corrupting it.
func writeHalf(path string) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	return os.WriteFile(path, data[:len(data)/2], 0o644)
}

const storeTestSpec = `
protocol telemetry;
root seq msg end {
    uint  device 2;
    uint  seqno 4;
    uint  blen 2;
    seq body length(blen) {
        bytes status delim ";" min 1;
    }
    bytes sig end;
}
`

func newTestStore(t *testing.T) *artifact.Store {
	t.Helper()
	st, err := artifact.NewStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	return st
}

// Cold start compiles and persists; a second rotation on the same store
// restores every version without compiling anything.
func TestRotationStoreWarmStart(t *testing.T) {
	st := newTestStore(t)
	opts := ObfuscationOptions{PerNode: 2, Seed: 53}

	cold, err := NewRotationStore(storeTestSpec, opts, 0, 0, st)
	if err != nil {
		t.Fatal(err)
	}
	for e := uint64(0); e < 5; e++ {
		if _, err := cold.Version(e); err != nil {
			t.Fatalf("cold epoch %d: %v", e, err)
		}
	}
	cs := cold.Stats()
	if cs.Compiles != 5 || cs.ArtifactSaves != 5 || cs.ArtifactLoads != 0 {
		t.Fatalf("cold stats: compiles=%d saves=%d loads=%d, want 5/5/0", cs.Compiles, cs.ArtifactSaves, cs.ArtifactLoads)
	}

	warm, err := NewRotationStore(storeTestSpec, opts, 0, 0, st)
	if err != nil {
		t.Fatal(err)
	}
	for e := uint64(0); e < 5; e++ {
		if _, err := warm.Version(e); err != nil {
			t.Fatalf("warm epoch %d: %v", e, err)
		}
	}
	ws := warm.Stats()
	if ws.Compiles != 0 {
		t.Fatalf("warm start compiled %d versions, want 0", ws.Compiles)
	}
	if ws.ArtifactLoads != 5 {
		t.Fatalf("warm start loaded %d artifacts, want 5", ws.ArtifactLoads)
	}
	if ws.DemandCompiles() != 0 {
		t.Fatalf("warm start paid %d demand compiles, want 0", ws.DemandCompiles())
	}
}

// A restored version and its compiled twin must interoperate on the
// wire in both directions: the serialized graph is the contract, the
// re-derived RNG only feeds parser-ignored randomness.
func TestRestoredVersionWireInterop(t *testing.T) {
	st := newTestStore(t)
	opts := ObfuscationOptions{PerNode: 3, Seed: 91}

	cold, err := NewRotationStore(storeTestSpec, opts, 0, 0, st)
	if err != nil {
		t.Fatal(err)
	}
	warm, err := NewRotationStore(storeTestSpec, opts, 0, 0, st)
	if err != nil {
		t.Fatal(err)
	}

	for e := uint64(0); e < 4; e++ {
		compiled, err := cold.Version(e)
		if err != nil {
			t.Fatal(err)
		}
		restored, err := warm.Version(e)
		if err != nil {
			t.Fatal(err)
		}
		for _, dir := range []struct {
			name     string
			from, to *Protocol
		}{
			{"restored->compiled", restored, compiled},
			{"compiled->restored", compiled, restored},
		} {
			m := dir.from.NewMessage()
			s := m.Scope()
			if err := s.SetUint("device", 7); err != nil {
				t.Fatal(err)
			}
			if err := s.SetUint("seqno", 1000+e); err != nil {
				t.Fatal(err)
			}
			if err := s.SetString("status", "ok"); err != nil {
				t.Fatal(err)
			}
			if err := s.SetBytes("sig", nil); err != nil {
				t.Fatal(err)
			}
			data, err := dir.from.Serialize(m)
			if err != nil {
				t.Fatalf("epoch %d %s serialize: %v", e, dir.name, err)
			}
			got, err := dir.to.Parse(data)
			if err != nil {
				t.Fatalf("epoch %d %s parse: %v", e, dir.name, err)
			}
			v, err := got.Scope().GetUint("seqno")
			if err != nil {
				t.Fatal(err)
			}
			if v != 1000+e {
				t.Fatalf("epoch %d %s: decoded seqno %d, want %d", e, dir.name, v, 1000+e)
			}
		}
	}
	if warm.Stats().Compiles != 0 {
		t.Fatalf("warm rotation compiled %d versions during interop, want 0", warm.Stats().Compiles)
	}
}

// A corrupt artifact must not poison the rotation: the load error is
// counted and the version compiles as if the store missed.
func TestRotationStoreFallsBackOnCorruptArtifact(t *testing.T) {
	st := newTestStore(t)
	opts := ObfuscationOptions{PerNode: 2, Seed: 17}
	cold, err := NewRotationStore(storeTestSpec, opts, 0, 0, st)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cold.Version(1); err != nil {
		t.Fatal(err)
	}
	// Corrupt epoch 1's artifact on disk.
	k := artifact.Key{SpecDigest: artifact.SpecDigest(storeTestSpec, 2, nil, nil), Family: 17, Epoch: 1}
	if err := writeHalf(st.Path(k)); err != nil {
		t.Fatal(err)
	}
	warm, err := NewRotationStore(storeTestSpec, opts, 0, 0, st)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := warm.Version(1); err != nil {
		t.Fatalf("version after corrupt artifact: %v", err)
	}
	ws := warm.Stats()
	if ws.ArtifactErrors == 0 {
		t.Fatal("corrupt artifact load was not counted")
	}
	if ws.Compiles != 1 {
		t.Fatalf("fallback compiled %d versions, want 1", ws.Compiles)
	}
}
