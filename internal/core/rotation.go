package core

import (
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"fmt"
	"sync"
	"time"

	"protoobf/internal/artifact"
	"protoobf/internal/graph"
	"protoobf/internal/lru"
	"protoobf/internal/metrics"
)

// DefaultVersionWindow bounds how many compiled protocol versions a
// Rotation keeps. A session touches a handful of epochs around the
// current one (current send epoch, stale epochs with frames in flight,
// the rekey target); everything else recompiles deterministically on
// demand, so the window trades a rare recompile for O(window) instead of
// O(epochs) memory on long-lived rotations.
const DefaultVersionWindow = 64

// ErrSharedRekey reports an attempt to share one Rotation across
// sessions when in-band rekeying is in play. A rekey negotiated on one
// session switches the seed family under every other session using the
// same rekey state, silently desynchronizing them from their peers; the
// public constructors refuse the combination instead. Sessions minted
// from an Endpoint are exempt: each holds its own rekey View, so they
// share compiled versions without sharing rekey state.
var ErrSharedRekey = errors.New("protoobf: a rekey-enabled Rotation cannot be shared across sessions (use an Endpoint, whose sessions rekey independently)")

// Rotation implements the deployment model sketched in the paper's
// conclusion: "new obfuscated versions of the protocol can be easily
// generated [...] The deployment of new versions, at regular intervals,
// should decrease the likelihood that the protocol can be successfully
// reversed."
//
// Each epoch deterministically derives a fresh protocol version from
// (spec, seed family, epoch), so that independently deployed peers agree
// on the dialect of any epoch without coordination beyond a shared epoch
// counter — in deployment derived from coarse wall-clock time by
// internal/session/sched.
//
// A Rotation is the shared, compile-once half of the model: one process
// serving many concurrent sessions of the same dialect family keeps a
// single Rotation, whose compiled-version cache is sharded and keyed by
// (family seed, epoch) so hundreds of sessions hitting it do not
// serialize on one mutex. The mutable half — the rekey points recording
// that epochs from some boundary onward derive from a fresh master
// seed — lives in a View: every session takes its own View, so in-band
// rekeys negotiated on one session never touch another. The Rotation's
// own Rekey/DropRekey/ControlPad methods operate on a built-in default
// view, preserving the original single-owner behavior for code that
// uses a Rotation directly as a session Versioner.
type Rotation struct {
	source string
	opts   ObfuscationOptions

	cache *lru.Sharded[versionKey, *Protocol]

	// art, when non-nil, is the serialized-artifact store behind the
	// compiled-version cache: misses try a store load before compiling,
	// and fresh compiles are persisted for other processes (see
	// NewRotationStore). artDigest keys this rotation's artifacts;
	// orig is the once-parsed plain graph restored Protocols share.
	art       *artifact.Store
	artDigest [32]byte
	orig      *graph.Graph

	// flight deduplicates concurrent compiles of the same version: at an
	// epoch boundary every session of the family misses the cache at
	// once, and without dedup each would burn a full compile.
	flightMu sync.Mutex
	flight   map[versionKey]*flightCall

	// self is the default view behind the Rotation's own Versioner
	// methods (legacy single-owner use).
	self View

	// stats counts compile activity: atomic adds on the compile path,
	// snapshotted by Stats. Cache traffic is counted by the cache
	// itself.
	stats metrics.RotationCounters

	// fams tracks the rekeyed seed families recently active on this
	// Rotation's views — registered when a view rekeys (or imports a
	// resumption lineage) and refreshed by every demand lookup — so a
	// prefetch daemon can warm upcoming epochs of the families live
	// sessions actually speak, not just the base family. Bounded: stale
	// families age out after familyIdleEpochs without a demand lookup.
	famMu sync.Mutex
	fams  map[int64]familyTrack

	// Share accounting for the deprecated public constructors: a
	// rekey-enabled session must own its Rotation exclusively because it
	// rekeys the default view. Endpoint sessions use independent views
	// and never attach.
	shareMu       sync.Mutex
	attached      int
	rekeyAttached bool
}

// versionKey names one compiled protocol version: the master seed of
// the family active at the epoch, and the epoch itself. Keying the
// cache by family makes rekeying a pure metadata change — a rekeyed
// view simply starts asking for the new family's versions, while other
// views of the same Rotation keep hitting the old family's entries.
type versionKey struct {
	family int64
	epoch  uint64
}

// familyTrack is the liveness record of one rekeyed family: the epoch
// its rekey point starts at (prefetching earlier epochs of the family
// would compile versions no session can ever request) and the highest
// epoch a session demanded under it (the liveness signal — a live
// rekeyed session demands a fresh epoch of its family at every
// boundary, so lastSeen tracks the schedule while the session lives and
// freezes when it dies).
type familyTrack struct {
	from     uint64
	lastSeen uint64
}

// familyIdleEpochs is how many epochs a rekeyed family may go without a
// demand lookup before it stops being considered active: long enough to
// ride out a quiet session, short enough that dead families stop
// costing the prefetch daemon compiles.
const familyIdleEpochs = 8

// maxTrackedFamilies bounds the family-liveness table so a hostile or
// pathological rekey storm cannot grow it without limit; beyond the
// bound, new families are simply not tracked (they fall back to demand
// compiles, the behavior without the daemon).
const maxTrackedFamilies = 1024

// ActiveFamily is one rekeyed seed family a prefetch daemon should keep
// warm, and the epoch its lineage starts at.
type ActiveFamily struct {
	Seed int64
	From uint64
}

// flightCall is one in-progress compile; latecomers wait on done.
type flightCall struct {
	done chan struct{}
	p    *Protocol
	err  error
}

// rekeyPoint switches the master seed for epochs >= from.
type rekeyPoint struct {
	from uint64
	seed int64
}

// NewRotation validates the specification once and prepares the epoch
// cache (bounded at DefaultVersionWindow; see Bound). opts.Seed acts as
// the initial master seed; opts.PerNode/Only/Exclude apply to every
// version.
func NewRotation(source string, opts ObfuscationOptions) (*Rotation, error) {
	return NewRotationCache(source, opts, 0, 0)
}

// NewRotationCache is NewRotation with an explicit compiled-version
// cache geometry: window bounds the total number of cached versions
// (0 means DefaultVersionWindow, negative means unbounded) and shards
// picks the lock-shard count (0 means lru.DefaultShards; 1 degenerates
// to a single-mutex cache, the pre-sharding behavior).
func NewRotationCache(source string, opts ObfuscationOptions, window, shards int) (*Rotation, error) {
	if window == 0 {
		window = DefaultVersionWindow
	} else if window < 0 {
		window = 0 // lru: unbounded
	}
	// Compile epoch 0 eagerly so configuration errors surface here.
	probe := opts
	probe.Seed = deriveSeed(opts.Seed, 0)
	p, err := Compile(source, probe)
	if err != nil {
		return nil, fmt.Errorf("rotation: %w", err)
	}
	r := &Rotation{
		source: source,
		opts:   opts,
		cache: lru.NewSharded[versionKey, *Protocol](shards, window, func(k versionKey) uint64 {
			return lru.Mix64(uint64(k.family) ^ lru.Mix64(k.epoch+1))
		}, nil),
	}
	r.self.rot = r
	r.stats.Compiles.Add(1) // the eager epoch-0 probe above
	r.cache.Put(versionKey{family: opts.Seed, epoch: 0}, p)
	return r, nil
}

// View mints an independent rekey view of the dialect family. All views
// of one Rotation share the compiled-version cache (and its compile
// deduplication) but each records its own rekey points, so concurrent
// sessions rekey with their respective peers without interfering. A
// fresh view starts on the base family with no rekey points.
func (r *Rotation) View() *View {
	return &View{rot: r}
}

// Attach records a public-API session binding to this Rotation,
// enforcing the sharing rule: any number of non-rekeying sessions may
// share a Rotation, but a rekey-enabled session must be its only
// session ever. It returns ErrSharedRekey on violation. Detach undoes a
// successful Attach whose session construction subsequently failed.
func (r *Rotation) Attach(rekey bool) error {
	r.shareMu.Lock()
	defer r.shareMu.Unlock()
	if r.rekeyAttached || (rekey && r.attached > 0) {
		return ErrSharedRekey
	}
	if rekey {
		r.rekeyAttached = true
	}
	r.attached++
	return nil
}

// Detach rolls back an Attach (see Attach).
func (r *Rotation) Detach(rekey bool) {
	r.shareMu.Lock()
	defer r.shareMu.Unlock()
	r.attached--
	if rekey {
		r.rekeyAttached = false
	}
}

// Bound re-bounds the compiled-version cache to at most window versions
// in total, evicting the least recently used versions immediately. A
// window <= 0 removes the bound.
func (r *Rotation) Bound(window int) {
	r.cache.SetCap(window)
}

// CacheLen returns the number of compiled versions currently cached,
// across every family and shard.
func (r *Rotation) CacheLen() int {
	return r.cache.Len()
}

// Stats snapshots the Rotation's compile activity and its shared
// version cache's traffic. Snapshots are plain values; diff two to
// measure an interval.
func (r *Rotation) Stats() metrics.RotationStats {
	st := r.stats.Snapshot()
	st.Cache = r.cache.Stats()
	return st
}

// Prefetch compiles the given epoch's version of the base family ahead
// of need — what a rotation daemon calls before the epoch boundary so
// sessions never compile on their hot path. It reports whether this
// call performed the compile (false: the version was already cached or
// another goroutine's compile was joined). Prefetched compiles are
// attributed separately in Stats (RotationStats.PrefetchCompiles), so
// observers can verify that boundary crossings cost sessions zero
// demand compiles.
//
// Prefetch resolves the family through the default view, exactly like
// Version: endpoints never rekey their default view, so this is the
// base family every non-rekeyed session of the endpoint speaks. A
// session that negotiated an in-band rekey switched its own view to a
// fresh family — its post-boundary epochs are keyed under that family
// and are never served these base-family entries.
func (r *Rotation) Prefetch(epoch uint64) (compiled bool, err error) {
	r.self.mu.Lock()
	family := r.self.familySeedLocked(epoch)
	r.self.mu.Unlock()
	_, compiled, err = r.versionFor(family, epoch, true)
	return compiled, err
}

// PrefetchFamily compiles the given epoch's version of an explicit
// rekeyed seed family ahead of need — the companion to Prefetch for the
// families ActiveFamilies reports, so a daemon keeps rekeyed sessions as
// boundary-compile-free as base-family ones. It reports whether this
// call performed the compile.
func (r *Rotation) PrefetchFamily(family int64, epoch uint64) (compiled bool, err error) {
	_, compiled, err = r.versionFor(family, epoch, true)
	return compiled, err
}

// ActiveFamilies returns the rekeyed seed families considered live at
// the given current epoch — families some view rekeyed into and some
// session demanded a version of within the last familyIdleEpochs
// epochs. Stale entries are pruned as a side effect, so the table stays
// bounded by the set of genuinely live families.
func (r *Rotation) ActiveFamilies(cur uint64) []ActiveFamily {
	r.famMu.Lock()
	defer r.famMu.Unlock()
	out := make([]ActiveFamily, 0, len(r.fams))
	for seed, tr := range r.fams {
		if cur > tr.lastSeen+familyIdleEpochs {
			delete(r.fams, seed)
			continue
		}
		out = append(out, ActiveFamily{Seed: seed, From: tr.from})
	}
	return out
}

// noteRekey registers a freshly rekeyed family (a view's rekey point or
// an imported resumption lineage) in the liveness table.
func (r *Rotation) noteRekey(family int64, from uint64) {
	if family == r.opts.Seed {
		return
	}
	r.famMu.Lock()
	defer r.famMu.Unlock()
	if r.fams == nil {
		r.fams = make(map[int64]familyTrack)
	}
	tr, ok := r.fams[family]
	if !ok {
		if len(r.fams) >= maxTrackedFamilies {
			return
		}
		tr = familyTrack{from: from, lastSeen: from}
	}
	if from < tr.from {
		tr.from = from
	}
	if from > tr.lastSeen {
		tr.lastSeen = from
	}
	r.fams[family] = tr
}

// touchFamily refreshes (or re-registers) a rekeyed family's liveness
// on a demand lookup. Demand lookups only come from views resolving
// their own rekey points, so an absent entry means the family was
// pruned while its session idled — it re-enters here with the demanded
// epoch as a conservative lineage start, and the table stays bounded
// by maxTrackedFamilies regardless.
func (r *Rotation) touchFamily(family int64, epoch uint64) {
	if family == r.opts.Seed {
		return
	}
	r.famMu.Lock()
	tr, ok := r.fams[family]
	switch {
	case ok:
		if epoch > tr.lastSeen {
			tr.lastSeen = epoch
			r.fams[family] = tr
		}
	case len(r.fams) < maxTrackedFamilies:
		if r.fams == nil {
			r.fams = make(map[int64]familyTrack)
		}
		r.fams[family] = familyTrack{from: epoch, lastSeen: epoch}
	}
	r.famMu.Unlock()
}

// Version returns the protocol of the given epoch under the Rotation's
// default view, compiling it on first use (or again after eviction).
// The same epoch always yields the same transformed graph on every peer
// that shares the rotation's history of (spec, options, rekey points).
func (r *Rotation) Version(epoch uint64) (*Protocol, error) {
	return r.self.Version(epoch)
}

// Graph returns the transformed message-format graph of the given epoch
// under the default view. It is the session transport's Versioner
// interface (internal/session sits below this package and traffics in
// graphs, not Protocols).
func (r *Rotation) Graph(epoch uint64) (*graph.Graph, error) {
	return r.self.Graph(epoch)
}

// Rekey switches the default view's master seed for every epoch >=
// from. See View.Rekey; sessions that share a Rotation must not use
// this (the public constructors enforce it via Attach).
func (r *Rotation) Rekey(from uint64, seed int64) error {
	return r.self.Rekey(from, seed)
}

// DropRekey removes the default view's most recent rekey point if it
// matches (from, seed) exactly. See View.DropRekey.
func (r *Rotation) DropRekey(from uint64, seed int64) error {
	return r.self.DropRekey(from, seed)
}

// ControlPad derives the default view's control-frame masking pad. See
// View.ControlPad.
func (r *Rotation) ControlPad(epoch uint64, n int) []byte {
	return r.self.ControlPad(epoch, n)
}

// PacketPad derives the default view's packet masking pad. See
// View.PacketPad.
func (r *Rotation) PacketPad(epoch uint64, n int) []byte {
	return r.self.PacketPad(epoch, n)
}

// versionFor returns the compiled version of (family, epoch), serving
// it from the sharded cache when present. Misses compile outside any
// cache lock; concurrent misses of the same key share one compile.
// compiled reports whether this call performed the compile itself;
// prefetch attributes that compile to a prefetcher in the stats.
func (r *Rotation) versionFor(family int64, epoch uint64, prefetch bool) (p *Protocol, compiled bool, err error) {
	if !prefetch {
		// A demand lookup is the liveness signal of a rekeyed family; it
		// runs once per (session, epoch) thanks to the sessions' private
		// dialect caches, so the map touch is off the per-message path.
		r.touchFamily(family, epoch)
	}
	k := versionKey{family: family, epoch: epoch}
	if p, ok := r.cache.Get(k); ok {
		return p, false, nil
	}
	r.flightMu.Lock()
	if c, ok := r.flight[k]; ok {
		r.flightMu.Unlock()
		r.stats.CompileDedup.Add(1)
		<-c.done
		return c.p, false, c.err
	}
	// Re-check under the flight lock: the previous flight for this key
	// may have completed (and cached) between our miss and the lock.
	// Quiet lookup — this is still the same logical miss counted above.
	if p, ok := r.cache.GetQuiet(k); ok {
		r.flightMu.Unlock()
		return p, false, nil
	}
	c := &flightCall{done: make(chan struct{})}
	if r.flight == nil {
		r.flight = make(map[versionKey]*flightCall)
	}
	r.flight[k] = c
	r.flightMu.Unlock()

	// A store hit is not a compile: the work happened in another
	// process (or a previous life of this one), so DemandCompiles
	// stays untouched and only ArtifactLoads moves.
	if r.art != nil {
		if ap, ok := r.loadArtifact(k); ok {
			r.cache.Put(k, ap)
			c.p, c.err = ap, nil
			r.flightMu.Lock()
			delete(r.flight, k)
			r.flightMu.Unlock()
			close(c.done)
			return ap, false, nil
		}
	}
	opts := r.opts
	opts.Seed = deriveSeed(family, epoch)
	r.stats.Compiles.Add(1)
	if prefetch {
		r.stats.PrefetchCompiles.Add(1)
	}
	start := time.Now()
	p, err = Compile(r.source, opts)
	if prefetch {
		r.stats.PrefetchCompileNanos.ObserveDuration(time.Since(start))
	} else {
		r.stats.DemandCompileNanos.ObserveDuration(time.Since(start))
	}
	if err != nil {
		r.stats.CompileErrors.Add(1)
		err = fmt.Errorf("rotation epoch %d: %w", epoch, err)
	} else {
		r.cache.Put(k, p)
		if r.art != nil {
			r.saveArtifact(k, p)
		}
	}
	c.p, c.err = p, err

	r.flightMu.Lock()
	delete(r.flight, k)
	r.flightMu.Unlock()
	close(c.done)
	return p, true, err
}

// View is one session's window onto a shared Rotation: it resolves
// epochs to compiled versions through the Rotation's shared cache while
// holding the session-local rekey state (which master seed family is
// active from which epoch onward). core.Rotation documents the split;
// internal/session consumes a View through its Versioner, Rekeyer and
// Padder interfaces.
//
// A View is safe for concurrent use.
type View struct {
	rot *Rotation

	mu     sync.Mutex
	rekeys []rekeyPoint // ascending by from
}

// Rotation returns the shared Rotation this view resolves through.
func (v *View) Rotation() *Rotation { return v.rot }

// Version returns the protocol of the given epoch under this view's
// rekey history, compiling it through the shared cache on first use.
func (v *View) Version(epoch uint64) (*Protocol, error) {
	v.mu.Lock()
	family := v.familySeedLocked(epoch)
	v.mu.Unlock()
	p, _, err := v.rot.versionFor(family, epoch, false)
	return p, err
}

// Graph returns the transformed message-format graph of the given
// epoch — the session transport's Versioner interface.
func (v *View) Graph(epoch uint64) (*graph.Graph, error) {
	p, err := v.Version(epoch)
	if err != nil {
		return nil, err
	}
	return p.Graph, nil
}

// Rekey switches this view's master seed for every epoch >= from. Rekey
// points must not move backwards: a from below the latest recorded
// point is rejected, while a from equal to it replaces the point (how
// the session layer's deterministic tie-break between crossed proposals
// settles). Epochs before from keep deriving from the previously active
// family. Because the shared cache is keyed by (family, epoch), a rekey
// is pure metadata: no cached versions are invalidated, and other views
// of the same Rotation are untouched.
func (v *View) Rekey(from uint64, seed int64) error {
	v.mu.Lock()
	defer v.mu.Unlock()
	if n := len(v.rekeys); n > 0 && from <= v.rekeys[n-1].from {
		if from < v.rekeys[n-1].from {
			return fmt.Errorf("rotation: rekey from epoch %d predates rekey point %d", from, v.rekeys[n-1].from)
		}
		v.rekeys[n-1].seed = seed
	} else {
		v.rekeys = append(v.rekeys, rekeyPoint{from: from, seed: seed})
	}
	v.rot.stats.Rekeys.Add(1)
	v.rot.noteRekey(seed, from)
	return nil
}

// RekeyLineage exports the view's rekey history as parallel slices
// (ascending boundary epochs and the seed each switches to) — the
// session migration subsystem's raw material for a resumption ticket.
// The slices are fresh copies; mutating them does not affect the view.
func (v *View) RekeyLineage() (froms []uint64, seeds []int64) {
	v.mu.Lock()
	defer v.mu.Unlock()
	if len(v.rekeys) == 0 {
		return nil, nil
	}
	froms = make([]uint64, len(v.rekeys))
	seeds = make([]int64, len(v.rekeys))
	for i, p := range v.rekeys {
		froms[i] = p.from
		seeds[i] = p.seed
	}
	return froms, seeds
}

// ImportRekeys replays an exported rekey lineage into this view — how a
// resumed session reconstructs the family history a ticket describes.
// The view must be pristine (no rekey points of its own): a resumption
// lineage replaces a history, it does not merge with one. Boundary
// epochs must be strictly ascending and nonzero. Unlike Rekey, imports
// are not counted in RotationStats.Rekeys — they replay handshakes that
// already happened, on this or another endpoint.
func (v *View) ImportRekeys(froms []uint64, seeds []int64) error {
	if len(froms) != len(seeds) {
		return fmt.Errorf("rotation: lineage of %d boundaries with %d seeds", len(froms), len(seeds))
	}
	v.mu.Lock()
	defer v.mu.Unlock()
	if len(v.rekeys) != 0 {
		return fmt.Errorf("rotation: cannot import a lineage over %d existing rekey points", len(v.rekeys))
	}
	pts := make([]rekeyPoint, len(froms))
	last := uint64(0)
	for i := range froms {
		if froms[i] <= last {
			return fmt.Errorf("rotation: lineage boundary %d not ascending (after %d)", froms[i], last)
		}
		last = froms[i]
		pts[i] = rekeyPoint{from: froms[i], seed: seeds[i]}
	}
	v.rekeys = pts
	if n := len(pts); n > 0 {
		// Only the latest family is a prefetch target: earlier lineage
		// entries cover past epochs the session will never demand again.
		v.rot.noteRekey(pts[n-1].seed, pts[n-1].from)
	}
	return nil
}

// SealResume seals a resumption-state payload into an opaque ticket
// under the key derived from the Rotation's base master seed — the
// session layer's TicketSealer interface. Any view of any Rotation
// built from the same (spec, seed) can open the result.
func (v *View) SealResume(plain []byte) ([]byte, error) {
	return SealTicket(v.rot.opts.Seed, plain)
}

// OpenResume verifies and unseals a resumption ticket sealed by any
// peer sharing the base master seed. Forged or corrupted tickets fail
// with an error wrapping ErrTicketInvalid.
func (v *View) OpenResume(ticket []byte) ([]byte, error) {
	return OpenTicket(v.rot.opts.Seed, ticket)
}

// DropRekey removes the view's most recent rekey point if it matches
// (from, seed) exactly: the session layer's rollback when a rekey was
// applied locally but the handshake step that was supposed to commit it
// (the dialect compile or the ack write) failed, so the peer never
// learned of the switch.
func (v *View) DropRekey(from uint64, seed int64) error {
	v.mu.Lock()
	defer v.mu.Unlock()
	n := len(v.rekeys)
	if n == 0 || v.rekeys[n-1] != (rekeyPoint{from: from, seed: seed}) {
		return fmt.Errorf("rotation: no rekey point (%d, %d) to drop", from, seed)
	}
	v.rekeys = v.rekeys[:n-1]
	v.rot.stats.RekeyRollbacks.Add(1)
	return nil
}

// ControlPad derives the deterministic masking pad the session layer
// XORs over in-band control payloads (the rekey handshake). The pad is
// a SHA-256 stream keyed by the seed family active at the frame's epoch
// under a fixed domain string, so the known plaintext at the front of a
// control payload (the magic, a near-current epoch) cannot be inverted
// into the keystream or the family seed the way a plain PRNG stream
// could, and a forged frame fails the magic check after unmasking.
//
// This is obfuscation-grade protection, deliberately in the paper's
// threat model: the family master seed is a 63-bit secret and the
// construction is not a vetted AEAD. Deployments that need
// cryptographic confidentiality of the rekeyed seed should run the
// session over an encrypted channel; the masking then only keeps the
// control plane indistinguishable from payload bytes.
func (v *View) ControlPad(epoch uint64, n int) []byte {
	v.mu.Lock()
	family := v.familySeedLocked(epoch)
	v.mu.Unlock()
	var msg [24]byte
	binary.BigEndian.PutUint64(msg[0:8], uint64(family))
	binary.BigEndian.PutUint64(msg[8:16], epoch)
	pad := make([]byte, 0, (n+sha256.Size-1)/sha256.Size*sha256.Size)
	for ctr := uint64(0); len(pad) < n; ctr++ {
		binary.BigEndian.PutUint64(msg[16:24], ctr)
		h := sha256.New()
		h.Write([]byte("protoobf control pad v1"))
		h.Write(msg[:])
		pad = h.Sum(pad)
	}
	return pad[:n]
}

// PacketPad derives the deterministic masking pad the datagram session
// layer XORs over packet bytes: the zero-overhead mode's structural
// prefix on data packets, and the whole header+payload of control
// packets. It is the same SHA-256 stream construction as ControlPad but
// under its own domain string, so packet masking bytes can never be
// replayed against the stream layer's control plane (or vice versa) —
// and, like the dialect derivation, it is keyed by the family active at
// the epoch, so the pad rotates every epoch and jumps on rekey. The pad
// of one epoch is static across packets (an EtherGuard-style
// limitation, documented in docs/DATAGRAM.md): zero added bytes per
// packet leaves no room for a per-packet nonce.
func (v *View) PacketPad(epoch uint64, n int) []byte {
	v.mu.Lock()
	family := v.familySeedLocked(epoch)
	v.mu.Unlock()
	var msg [24]byte
	binary.BigEndian.PutUint64(msg[0:8], uint64(family))
	binary.BigEndian.PutUint64(msg[8:16], epoch)
	pad := make([]byte, 0, (n+sha256.Size-1)/sha256.Size*sha256.Size)
	for ctr := uint64(0); len(pad) < n; ctr++ {
		binary.BigEndian.PutUint64(msg[16:24], ctr)
		h := sha256.New()
		h.Write([]byte("protoobf packet pad v1"))
		h.Write(msg[:])
		pad = h.Sum(pad)
	}
	return pad[:n]
}

// ShapeSeed derives the traffic-shaping seed of an epoch from the seed
// family active at it — the session layer's ShapeSeeder interface. The
// derivation is domain-separated from the dialect derivation (a
// different constant folded into the master before the finalizer), so
// an observer who somehow learned the shape stream would still know
// nothing about the transformation selections, and vice versa. Because
// it follows the family, the shape rotates at every epoch boundary and
// jumps with every rekey, exactly like the dialect does.
func (v *View) ShapeSeed(epoch uint64) int64 {
	v.mu.Lock()
	family := v.familySeedLocked(epoch)
	v.mu.Unlock()
	const shapeDomain = 0x73686164 // "shad"
	return deriveSeed(family^shapeDomain, epoch)
}

// familySeedLocked returns the master seed active at epoch. Callers
// hold v.mu.
func (v *View) familySeedLocked(epoch uint64) int64 {
	seed := v.rot.opts.Seed
	for _, p := range v.rekeys {
		if p.from > epoch {
			break
		}
		seed = p.seed
	}
	return seed
}

// deriveSeed mixes the master seed and the epoch with an
// SplitMix64-style finalizer so adjacent epochs yield unrelated
// transformation selections.
func deriveSeed(master int64, epoch uint64) int64 {
	z := uint64(master) + 0x9E3779B97F4A7C15*(epoch+1)
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	z ^= z >> 31
	return int64(z >> 1) // keep it positive for readability in summaries
}
