package core

import (
	"fmt"
	"sync"

	"protoobf/internal/graph"
)

// Rotation implements the deployment model sketched in the paper's
// conclusion: "new obfuscated versions of the protocol can be easily
// generated [...] The deployment of new versions, at regular intervals,
// should decrease the likelihood that the protocol can be successfully
// reversed."
//
// Each epoch deterministically derives a fresh protocol version from
// (spec, master seed, epoch), so that independently deployed peers agree
// on the dialect of any epoch without coordination beyond a shared
// epoch counter (e.g. derived from coarse wall-clock time).
type Rotation struct {
	source string
	opts   ObfuscationOptions

	mu    sync.Mutex
	cache map[uint64]*Protocol
}

// NewRotation validates the specification once and prepares the epoch
// cache. opts.Seed acts as the master seed; opts.PerNode/Only/Exclude
// apply to every version.
func NewRotation(source string, opts ObfuscationOptions) (*Rotation, error) {
	// Compile epoch 0 eagerly so configuration errors surface here.
	probe := opts
	probe.Seed = deriveSeed(opts.Seed, 0)
	p, err := Compile(source, probe)
	if err != nil {
		return nil, fmt.Errorf("rotation: %w", err)
	}
	r := &Rotation{source: source, opts: opts, cache: map[uint64]*Protocol{0: p}}
	return r, nil
}

// Version returns the protocol of the given epoch, compiling it on first
// use. Versions are cached; the same epoch always yields the same
// transformed graph on every peer.
func (r *Rotation) Version(epoch uint64) (*Protocol, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if p, ok := r.cache[epoch]; ok {
		return p, nil
	}
	opts := r.opts
	opts.Seed = deriveSeed(r.opts.Seed, epoch)
	p, err := Compile(r.source, opts)
	if err != nil {
		return nil, fmt.Errorf("rotation epoch %d: %w", epoch, err)
	}
	r.cache[epoch] = p
	return p, nil
}

// Graph returns the transformed message-format graph of the given epoch.
// It is the session transport's Versioner interface (internal/session
// sits below this package and traffics in graphs, not Protocols).
func (r *Rotation) Graph(epoch uint64) (*graph.Graph, error) {
	p, err := r.Version(epoch)
	if err != nil {
		return nil, err
	}
	return p.Graph, nil
}

// deriveSeed mixes the master seed and the epoch with an
// SplitMix64-style finalizer so adjacent epochs yield unrelated
// transformation selections.
func deriveSeed(master int64, epoch uint64) int64 {
	z := uint64(master) + 0x9E3779B97F4A7C15*(epoch+1)
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	z ^= z >> 31
	return int64(z >> 1) // keep it positive for readability in summaries
}
