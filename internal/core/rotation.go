package core

import (
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"fmt"
	"sync"

	"protoobf/internal/graph"
	"protoobf/internal/lru"
	"protoobf/internal/metrics"
)

// DefaultVersionWindow bounds how many compiled protocol versions a
// Rotation keeps. A session touches a handful of epochs around the
// current one (current send epoch, stale epochs with frames in flight,
// the rekey target); everything else recompiles deterministically on
// demand, so the window trades a rare recompile for O(window) instead of
// O(epochs) memory on long-lived rotations.
const DefaultVersionWindow = 64

// ErrSharedRekey reports an attempt to share one Rotation across
// sessions when in-band rekeying is in play. A rekey negotiated on one
// session switches the seed family under every other session using the
// same rekey state, silently desynchronizing them from their peers; the
// public constructors refuse the combination instead. Sessions minted
// from an Endpoint are exempt: each holds its own rekey View, so they
// share compiled versions without sharing rekey state.
var ErrSharedRekey = errors.New("protoobf: a rekey-enabled Rotation cannot be shared across sessions (use an Endpoint, whose sessions rekey independently)")

// Rotation implements the deployment model sketched in the paper's
// conclusion: "new obfuscated versions of the protocol can be easily
// generated [...] The deployment of new versions, at regular intervals,
// should decrease the likelihood that the protocol can be successfully
// reversed."
//
// Each epoch deterministically derives a fresh protocol version from
// (spec, seed family, epoch), so that independently deployed peers agree
// on the dialect of any epoch without coordination beyond a shared epoch
// counter — in deployment derived from coarse wall-clock time by
// internal/session/sched.
//
// A Rotation is the shared, compile-once half of the model: one process
// serving many concurrent sessions of the same dialect family keeps a
// single Rotation, whose compiled-version cache is sharded and keyed by
// (family seed, epoch) so hundreds of sessions hitting it do not
// serialize on one mutex. The mutable half — the rekey points recording
// that epochs from some boundary onward derive from a fresh master
// seed — lives in a View: every session takes its own View, so in-band
// rekeys negotiated on one session never touch another. The Rotation's
// own Rekey/DropRekey/ControlPad methods operate on a built-in default
// view, preserving the original single-owner behavior for code that
// uses a Rotation directly as a session Versioner.
type Rotation struct {
	source string
	opts   ObfuscationOptions

	cache *lru.Sharded[versionKey, *Protocol]

	// flight deduplicates concurrent compiles of the same version: at an
	// epoch boundary every session of the family misses the cache at
	// once, and without dedup each would burn a full compile.
	flightMu sync.Mutex
	flight   map[versionKey]*flightCall

	// self is the default view behind the Rotation's own Versioner
	// methods (legacy single-owner use).
	self View

	// stats counts compile activity: atomic adds on the compile path,
	// snapshotted by Stats. Cache traffic is counted by the cache
	// itself.
	stats metrics.RotationCounters

	// Share accounting for the deprecated public constructors: a
	// rekey-enabled session must own its Rotation exclusively because it
	// rekeys the default view. Endpoint sessions use independent views
	// and never attach.
	shareMu       sync.Mutex
	attached      int
	rekeyAttached bool
}

// versionKey names one compiled protocol version: the master seed of
// the family active at the epoch, and the epoch itself. Keying the
// cache by family makes rekeying a pure metadata change — a rekeyed
// view simply starts asking for the new family's versions, while other
// views of the same Rotation keep hitting the old family's entries.
type versionKey struct {
	family int64
	epoch  uint64
}

// flightCall is one in-progress compile; latecomers wait on done.
type flightCall struct {
	done chan struct{}
	p    *Protocol
	err  error
}

// rekeyPoint switches the master seed for epochs >= from.
type rekeyPoint struct {
	from uint64
	seed int64
}

// NewRotation validates the specification once and prepares the epoch
// cache (bounded at DefaultVersionWindow; see Bound). opts.Seed acts as
// the initial master seed; opts.PerNode/Only/Exclude apply to every
// version.
func NewRotation(source string, opts ObfuscationOptions) (*Rotation, error) {
	return NewRotationCache(source, opts, 0, 0)
}

// NewRotationCache is NewRotation with an explicit compiled-version
// cache geometry: window bounds the total number of cached versions
// (0 means DefaultVersionWindow, negative means unbounded) and shards
// picks the lock-shard count (0 means lru.DefaultShards; 1 degenerates
// to a single-mutex cache, the pre-sharding behavior).
func NewRotationCache(source string, opts ObfuscationOptions, window, shards int) (*Rotation, error) {
	if window == 0 {
		window = DefaultVersionWindow
	} else if window < 0 {
		window = 0 // lru: unbounded
	}
	// Compile epoch 0 eagerly so configuration errors surface here.
	probe := opts
	probe.Seed = deriveSeed(opts.Seed, 0)
	p, err := Compile(source, probe)
	if err != nil {
		return nil, fmt.Errorf("rotation: %w", err)
	}
	r := &Rotation{
		source: source,
		opts:   opts,
		cache: lru.NewSharded[versionKey, *Protocol](shards, window, func(k versionKey) uint64 {
			return lru.Mix64(uint64(k.family) ^ lru.Mix64(k.epoch+1))
		}, nil),
	}
	r.self.rot = r
	r.stats.Compiles.Add(1) // the eager epoch-0 probe above
	r.cache.Put(versionKey{family: opts.Seed, epoch: 0}, p)
	return r, nil
}

// View mints an independent rekey view of the dialect family. All views
// of one Rotation share the compiled-version cache (and its compile
// deduplication) but each records its own rekey points, so concurrent
// sessions rekey with their respective peers without interfering. A
// fresh view starts on the base family with no rekey points.
func (r *Rotation) View() *View {
	return &View{rot: r}
}

// Attach records a public-API session binding to this Rotation,
// enforcing the sharing rule: any number of non-rekeying sessions may
// share a Rotation, but a rekey-enabled session must be its only
// session ever. It returns ErrSharedRekey on violation. Detach undoes a
// successful Attach whose session construction subsequently failed.
func (r *Rotation) Attach(rekey bool) error {
	r.shareMu.Lock()
	defer r.shareMu.Unlock()
	if r.rekeyAttached || (rekey && r.attached > 0) {
		return ErrSharedRekey
	}
	if rekey {
		r.rekeyAttached = true
	}
	r.attached++
	return nil
}

// Detach rolls back an Attach (see Attach).
func (r *Rotation) Detach(rekey bool) {
	r.shareMu.Lock()
	defer r.shareMu.Unlock()
	r.attached--
	if rekey {
		r.rekeyAttached = false
	}
}

// Bound re-bounds the compiled-version cache to at most window versions
// in total, evicting the least recently used versions immediately. A
// window <= 0 removes the bound.
func (r *Rotation) Bound(window int) {
	r.cache.SetCap(window)
}

// CacheLen returns the number of compiled versions currently cached,
// across every family and shard.
func (r *Rotation) CacheLen() int {
	return r.cache.Len()
}

// Stats snapshots the Rotation's compile activity and its shared
// version cache's traffic. Snapshots are plain values; diff two to
// measure an interval.
func (r *Rotation) Stats() metrics.RotationStats {
	st := r.stats.Snapshot()
	st.Cache = r.cache.Stats()
	return st
}

// Prefetch compiles the given epoch's version of the base family ahead
// of need — what a rotation daemon calls before the epoch boundary so
// sessions never compile on their hot path. It reports whether this
// call performed the compile (false: the version was already cached or
// another goroutine's compile was joined). Prefetched compiles are
// attributed separately in Stats (RotationStats.PrefetchCompiles), so
// observers can verify that boundary crossings cost sessions zero
// demand compiles.
//
// Prefetch resolves the family through the default view, exactly like
// Version: endpoints never rekey their default view, so this is the
// base family every non-rekeyed session of the endpoint speaks. A
// session that negotiated an in-band rekey switched its own view to a
// fresh family — its post-boundary epochs are keyed under that family
// and are never served these base-family entries.
func (r *Rotation) Prefetch(epoch uint64) (compiled bool, err error) {
	r.self.mu.Lock()
	family := r.self.familySeedLocked(epoch)
	r.self.mu.Unlock()
	_, compiled, err = r.versionFor(family, epoch, true)
	return compiled, err
}

// Version returns the protocol of the given epoch under the Rotation's
// default view, compiling it on first use (or again after eviction).
// The same epoch always yields the same transformed graph on every peer
// that shares the rotation's history of (spec, options, rekey points).
func (r *Rotation) Version(epoch uint64) (*Protocol, error) {
	return r.self.Version(epoch)
}

// Graph returns the transformed message-format graph of the given epoch
// under the default view. It is the session transport's Versioner
// interface (internal/session sits below this package and traffics in
// graphs, not Protocols).
func (r *Rotation) Graph(epoch uint64) (*graph.Graph, error) {
	return r.self.Graph(epoch)
}

// Rekey switches the default view's master seed for every epoch >=
// from. See View.Rekey; sessions that share a Rotation must not use
// this (the public constructors enforce it via Attach).
func (r *Rotation) Rekey(from uint64, seed int64) error {
	return r.self.Rekey(from, seed)
}

// DropRekey removes the default view's most recent rekey point if it
// matches (from, seed) exactly. See View.DropRekey.
func (r *Rotation) DropRekey(from uint64, seed int64) error {
	return r.self.DropRekey(from, seed)
}

// ControlPad derives the default view's control-frame masking pad. See
// View.ControlPad.
func (r *Rotation) ControlPad(epoch uint64, n int) []byte {
	return r.self.ControlPad(epoch, n)
}

// versionFor returns the compiled version of (family, epoch), serving
// it from the sharded cache when present. Misses compile outside any
// cache lock; concurrent misses of the same key share one compile.
// compiled reports whether this call performed the compile itself;
// prefetch attributes that compile to a prefetcher in the stats.
func (r *Rotation) versionFor(family int64, epoch uint64, prefetch bool) (p *Protocol, compiled bool, err error) {
	k := versionKey{family: family, epoch: epoch}
	if p, ok := r.cache.Get(k); ok {
		return p, false, nil
	}
	r.flightMu.Lock()
	if c, ok := r.flight[k]; ok {
		r.flightMu.Unlock()
		r.stats.CompileDedup.Add(1)
		<-c.done
		return c.p, false, c.err
	}
	// Re-check under the flight lock: the previous flight for this key
	// may have completed (and cached) between our miss and the lock.
	// Quiet lookup — this is still the same logical miss counted above.
	if p, ok := r.cache.GetQuiet(k); ok {
		r.flightMu.Unlock()
		return p, false, nil
	}
	c := &flightCall{done: make(chan struct{})}
	if r.flight == nil {
		r.flight = make(map[versionKey]*flightCall)
	}
	r.flight[k] = c
	r.flightMu.Unlock()

	opts := r.opts
	opts.Seed = deriveSeed(family, epoch)
	r.stats.Compiles.Add(1)
	if prefetch {
		r.stats.PrefetchCompiles.Add(1)
	}
	p, err = Compile(r.source, opts)
	if err != nil {
		r.stats.CompileErrors.Add(1)
		err = fmt.Errorf("rotation epoch %d: %w", epoch, err)
	} else {
		r.cache.Put(k, p)
	}
	c.p, c.err = p, err

	r.flightMu.Lock()
	delete(r.flight, k)
	r.flightMu.Unlock()
	close(c.done)
	return p, true, err
}

// View is one session's window onto a shared Rotation: it resolves
// epochs to compiled versions through the Rotation's shared cache while
// holding the session-local rekey state (which master seed family is
// active from which epoch onward). core.Rotation documents the split;
// internal/session consumes a View through its Versioner, Rekeyer and
// Padder interfaces.
//
// A View is safe for concurrent use.
type View struct {
	rot *Rotation

	mu     sync.Mutex
	rekeys []rekeyPoint // ascending by from
}

// Rotation returns the shared Rotation this view resolves through.
func (v *View) Rotation() *Rotation { return v.rot }

// Version returns the protocol of the given epoch under this view's
// rekey history, compiling it through the shared cache on first use.
func (v *View) Version(epoch uint64) (*Protocol, error) {
	v.mu.Lock()
	family := v.familySeedLocked(epoch)
	v.mu.Unlock()
	p, _, err := v.rot.versionFor(family, epoch, false)
	return p, err
}

// Graph returns the transformed message-format graph of the given
// epoch — the session transport's Versioner interface.
func (v *View) Graph(epoch uint64) (*graph.Graph, error) {
	p, err := v.Version(epoch)
	if err != nil {
		return nil, err
	}
	return p.Graph, nil
}

// Rekey switches this view's master seed for every epoch >= from. Rekey
// points must not move backwards: a from below the latest recorded
// point is rejected, while a from equal to it replaces the point (how
// the session layer's deterministic tie-break between crossed proposals
// settles). Epochs before from keep deriving from the previously active
// family. Because the shared cache is keyed by (family, epoch), a rekey
// is pure metadata: no cached versions are invalidated, and other views
// of the same Rotation are untouched.
func (v *View) Rekey(from uint64, seed int64) error {
	v.mu.Lock()
	defer v.mu.Unlock()
	if n := len(v.rekeys); n > 0 && from <= v.rekeys[n-1].from {
		if from < v.rekeys[n-1].from {
			return fmt.Errorf("rotation: rekey from epoch %d predates rekey point %d", from, v.rekeys[n-1].from)
		}
		v.rekeys[n-1].seed = seed
	} else {
		v.rekeys = append(v.rekeys, rekeyPoint{from: from, seed: seed})
	}
	v.rot.stats.Rekeys.Add(1)
	return nil
}

// DropRekey removes the view's most recent rekey point if it matches
// (from, seed) exactly: the session layer's rollback when a rekey was
// applied locally but the handshake step that was supposed to commit it
// (the dialect compile or the ack write) failed, so the peer never
// learned of the switch.
func (v *View) DropRekey(from uint64, seed int64) error {
	v.mu.Lock()
	defer v.mu.Unlock()
	n := len(v.rekeys)
	if n == 0 || v.rekeys[n-1] != (rekeyPoint{from: from, seed: seed}) {
		return fmt.Errorf("rotation: no rekey point (%d, %d) to drop", from, seed)
	}
	v.rekeys = v.rekeys[:n-1]
	v.rot.stats.RekeyRollbacks.Add(1)
	return nil
}

// ControlPad derives the deterministic masking pad the session layer
// XORs over in-band control payloads (the rekey handshake). The pad is
// a SHA-256 stream keyed by the seed family active at the frame's epoch
// under a fixed domain string, so the known plaintext at the front of a
// control payload (the magic, a near-current epoch) cannot be inverted
// into the keystream or the family seed the way a plain PRNG stream
// could, and a forged frame fails the magic check after unmasking.
//
// This is obfuscation-grade protection, deliberately in the paper's
// threat model: the family master seed is a 63-bit secret and the
// construction is not a vetted AEAD. Deployments that need
// cryptographic confidentiality of the rekeyed seed should run the
// session over an encrypted channel; the masking then only keeps the
// control plane indistinguishable from payload bytes.
func (v *View) ControlPad(epoch uint64, n int) []byte {
	v.mu.Lock()
	family := v.familySeedLocked(epoch)
	v.mu.Unlock()
	var msg [24]byte
	binary.BigEndian.PutUint64(msg[0:8], uint64(family))
	binary.BigEndian.PutUint64(msg[8:16], epoch)
	pad := make([]byte, 0, (n+sha256.Size-1)/sha256.Size*sha256.Size)
	for ctr := uint64(0); len(pad) < n; ctr++ {
		binary.BigEndian.PutUint64(msg[16:24], ctr)
		h := sha256.New()
		h.Write([]byte("protoobf control pad v1"))
		h.Write(msg[:])
		pad = h.Sum(pad)
	}
	return pad[:n]
}

// familySeedLocked returns the master seed active at epoch. Callers
// hold v.mu.
func (v *View) familySeedLocked(epoch uint64) int64 {
	seed := v.rot.opts.Seed
	for _, p := range v.rekeys {
		if p.from > epoch {
			break
		}
		seed = p.seed
	}
	return seed
}

// deriveSeed mixes the master seed and the epoch with an
// SplitMix64-style finalizer so adjacent epochs yield unrelated
// transformation selections.
func deriveSeed(master int64, epoch uint64) int64 {
	z := uint64(master) + 0x9E3779B97F4A7C15*(epoch+1)
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	z ^= z >> 31
	return int64(z >> 1) // keep it positive for readability in summaries
}
