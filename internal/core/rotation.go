package core

import (
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"sync"

	"protoobf/internal/graph"
	"protoobf/internal/lru"
)

// DefaultVersionWindow bounds how many compiled protocol versions a
// Rotation keeps. A session touches a handful of epochs around the
// current one (current send epoch, stale epochs with frames in flight,
// the rekey target); everything else recompiles deterministically on
// demand, so the window trades a rare recompile for O(window) instead of
// O(epochs) memory on long-lived rotations.
const DefaultVersionWindow = 64

// Rotation implements the deployment model sketched in the paper's
// conclusion: "new obfuscated versions of the protocol can be easily
// generated [...] The deployment of new versions, at regular intervals,
// should decrease the likelihood that the protocol can be successfully
// reversed."
//
// Each epoch deterministically derives a fresh protocol version from
// (spec, seed family, epoch), so that independently deployed peers agree
// on the dialect of any epoch without coordination beyond a shared epoch
// counter — in deployment derived from coarse wall-clock time by
// internal/session/sched.
//
// The seed family itself can change at run time: Rekey records that all
// epochs from a given point onward derive from a fresh master seed, the
// in-band rekey handshake of internal/session. Past epochs keep deriving
// from the family that was active when they were current, so frames in
// flight across a rekey still decode.
type Rotation struct {
	source string
	opts   ObfuscationOptions

	mu     sync.Mutex
	cache  *lru.Cache[uint64, *Protocol]
	rekeys []rekeyPoint // ascending by from
}

// rekeyPoint switches the master seed for epochs >= from.
type rekeyPoint struct {
	from uint64
	seed int64
}

// NewRotation validates the specification once and prepares the epoch
// cache (bounded at DefaultVersionWindow; see Bound). opts.Seed acts as
// the initial master seed; opts.PerNode/Only/Exclude apply to every
// version.
func NewRotation(source string, opts ObfuscationOptions) (*Rotation, error) {
	// Compile epoch 0 eagerly so configuration errors surface here.
	probe := opts
	probe.Seed = deriveSeed(opts.Seed, 0)
	p, err := Compile(source, probe)
	if err != nil {
		return nil, fmt.Errorf("rotation: %w", err)
	}
	r := &Rotation{
		source: source,
		opts:   opts,
		cache:  lru.New[uint64, *Protocol](DefaultVersionWindow, nil),
	}
	r.cache.Put(0, p)
	return r, nil
}

// Bound re-bounds the compiled-version cache to at most window epochs,
// evicting the least recently used versions immediately. A window <= 0
// removes the bound.
func (r *Rotation) Bound(window int) {
	r.mu.Lock()
	r.cache.SetCap(window)
	r.mu.Unlock()
}

// CacheLen returns the number of compiled versions currently cached.
func (r *Rotation) CacheLen() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.cache.Len()
}

// Version returns the protocol of the given epoch, compiling it on first
// use (or again after eviction). The same epoch always yields the same
// transformed graph on every peer that shares the rotation's history of
// (spec, options, rekey points).
func (r *Rotation) Version(epoch uint64) (*Protocol, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if p, ok := r.cache.Get(epoch); ok {
		return p, nil
	}
	opts := r.opts
	opts.Seed = deriveSeed(r.familySeed(epoch), epoch)
	p, err := Compile(r.source, opts)
	if err != nil {
		return nil, fmt.Errorf("rotation epoch %d: %w", epoch, err)
	}
	r.cache.Put(epoch, p)
	return p, nil
}

// Graph returns the transformed message-format graph of the given epoch.
// It is the session transport's Versioner interface (internal/session
// sits below this package and traffics in graphs, not Protocols).
func (r *Rotation) Graph(epoch uint64) (*graph.Graph, error) {
	p, err := r.Version(epoch)
	if err != nil {
		return nil, err
	}
	return p.Graph, nil
}

// Rekey switches the master seed for every epoch >= from, invalidating
// any cached version at or past that point. Rekey points must not move
// backwards: a from below the latest recorded point is rejected, while a
// from equal to it replaces the point (how the session layer's
// deterministic tie-break between crossed proposals settles). Epochs
// before from keep deriving from the previously active family.
func (r *Rotation) Rekey(from uint64, seed int64) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if n := len(r.rekeys); n > 0 && from <= r.rekeys[n-1].from {
		if from < r.rekeys[n-1].from {
			return fmt.Errorf("rotation: rekey from epoch %d predates rekey point %d", from, r.rekeys[n-1].from)
		}
		r.rekeys[n-1].seed = seed
	} else {
		r.rekeys = append(r.rekeys, rekeyPoint{from: from, seed: seed})
	}
	// Versions at or past the rekey point were compiled under the old
	// family; drop them so the next use recompiles under the new one.
	r.cache.DeleteIf(func(epoch uint64, _ *Protocol) bool { return epoch >= from }, nil)
	return nil
}

// DropRekey removes the most recent rekey point if it matches (from,
// seed) exactly: the session layer's rollback when a rekey was applied
// locally but the handshake step that was supposed to commit it (the
// dialect compile or the ack write) failed, so the peer never learned
// of the switch. Cached versions at or past the dropped point are
// invalidated back to the previous family.
func (r *Rotation) DropRekey(from uint64, seed int64) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	n := len(r.rekeys)
	if n == 0 || r.rekeys[n-1] != (rekeyPoint{from: from, seed: seed}) {
		return fmt.Errorf("rotation: no rekey point (%d, %d) to drop", from, seed)
	}
	r.rekeys = r.rekeys[:n-1]
	r.cache.DeleteIf(func(epoch uint64, _ *Protocol) bool { return epoch >= from }, nil)
	return nil
}

// ControlPad derives the deterministic masking pad the session layer
// XORs over in-band control payloads (the rekey handshake). The pad is
// a SHA-256 stream keyed by the seed family active at the frame's epoch
// under a fixed domain string, so the known plaintext at the front of a
// control payload (the magic, a near-current epoch) cannot be inverted
// into the keystream or the family seed the way a plain PRNG stream
// could, and a forged frame fails the magic check after unmasking.
//
// This is obfuscation-grade protection, deliberately in the paper's
// threat model: the family master seed is a 63-bit secret and the
// construction is not a vetted AEAD. Deployments that need
// cryptographic confidentiality of the rekeyed seed should run the
// session over an encrypted channel; the masking then only keeps the
// control plane indistinguishable from payload bytes.
func (r *Rotation) ControlPad(epoch uint64, n int) []byte {
	r.mu.Lock()
	family := r.familySeed(epoch)
	r.mu.Unlock()
	var msg [24]byte
	binary.BigEndian.PutUint64(msg[0:8], uint64(family))
	binary.BigEndian.PutUint64(msg[8:16], epoch)
	pad := make([]byte, 0, (n+sha256.Size-1)/sha256.Size*sha256.Size)
	for ctr := uint64(0); len(pad) < n; ctr++ {
		binary.BigEndian.PutUint64(msg[16:24], ctr)
		h := sha256.New()
		h.Write([]byte("protoobf control pad v1"))
		h.Write(msg[:])
		pad = h.Sum(pad)
	}
	return pad[:n]
}

// familySeed returns the master seed active at epoch. Callers hold r.mu.
func (r *Rotation) familySeed(epoch uint64) int64 {
	seed := r.opts.Seed
	for _, p := range r.rekeys {
		if p.from > epoch {
			break
		}
		seed = p.seed
	}
	return seed
}

// deriveSeed mixes the master seed and the epoch with an
// SplitMix64-style finalizer so adjacent epochs yield unrelated
// transformation selections.
func deriveSeed(master int64, epoch uint64) int64 {
	z := uint64(master) + 0x9E3779B97F4A7C15*(epoch+1)
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	z ^= z >> 31
	return int64(z >> 1) // keep it positive for readability in summaries
}
