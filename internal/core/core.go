// Package core is the orchestration layer of the ProtoObf framework
// (paper §IV, figure 2): it ties the specification front-end, the
// obfuscating transformation engine, the runtime serializer/parser and
// the source-code generator together behind one Protocol type.
//
// The pipeline is exactly the paper's:
//
//	specification S ──spec.Parse──▶ G1 ──transform.Obfuscate──▶ Gn+1
//	Gn+1 ──codegen.Generate──▶ parser/serializer/accessor source
//	Gn+1 + message AST ──wire.Serialize/Parse──▶ obfuscated bytes
package core

import (
	"fmt"

	"protoobf/internal/codegen"
	"protoobf/internal/graph"
	"protoobf/internal/msgtree"
	"protoobf/internal/rng"
	"protoobf/internal/spec"
	"protoobf/internal/transform"
	"protoobf/internal/wire"
)

// Protocol is a compiled (and possibly obfuscated) message format.
type Protocol struct {
	// Original is G1, the graph of the plain specification.
	Original *graph.Graph
	// Graph is G_{n+1}, the transformed graph (== Original when no
	// obfuscation was applied).
	Graph *graph.Graph
	// Applied lists the applied transformations.
	Applied []transform.Applied
	// Rejected counts rolled-back transformation attempts.
	Rejected int
	// Seed is the obfuscation seed; the same (spec, seed, options) pair
	// always yields the same protocol.
	Seed int64

	rng *rng.R
}

// ObfuscationOptions selects the transformation workload.
type ObfuscationOptions struct {
	// PerNode is the maximum number of obfuscations per graph node
	// (0 disables obfuscation; the paper evaluates 0..4).
	PerNode int
	// Seed drives transformation selection and instantiation.
	Seed int64
	// Only/Exclude restrict the generic transformation catalog
	// (ablation studies).
	Only    []string
	Exclude []string
}

// Compile parses a specification and applies the requested obfuscation.
func Compile(source string, opts ObfuscationOptions) (*Protocol, error) {
	g1, err := spec.Parse(source)
	if err != nil {
		return nil, err
	}
	return Obfuscate(g1, opts)
}

// Obfuscate derives a Protocol from an existing message format graph.
func Obfuscate(g1 *graph.Graph, opts ObfuscationOptions) (*Protocol, error) {
	r := rng.New(opts.Seed)
	res, err := transform.Obfuscate(g1, transform.Options{
		PerNode: opts.PerNode,
		Only:    opts.Only,
		Exclude: opts.Exclude,
	}, r)
	if err != nil {
		return nil, err
	}
	return &Protocol{
		Original: g1.Clone(),
		Graph:    res.Graph,
		Applied:  res.Applied,
		Rejected: res.Rejected,
		Seed:     opts.Seed,
		rng:      r.Split(),
	}, nil
}

// NewMessage returns an empty message AST for the protocol.
func (p *Protocol) NewMessage() *msgtree.Message {
	return msgtree.New(p.Graph, p.rng.Split())
}

// Serialize renders a message to obfuscated wire bytes.
func (p *Protocol) Serialize(m *msgtree.Message) ([]byte, error) {
	return wire.Serialize(m)
}

// Parse rebuilds a message AST from obfuscated wire bytes.
func (p *Protocol) Parse(data []byte) (*msgtree.Message, error) {
	return wire.Parse(p.Graph, data, p.rng.Split())
}

// GenerateSource emits the standalone Go protocol library for the
// transformed graph (parser, serializer, accessors, SelfTest).
func (p *Protocol) GenerateSource(pkg string) (string, error) {
	return codegen.Generate(p.Graph, codegen.Options{Package: pkg, Seed: p.Seed})
}

// Trace renders the applied transformations, one per line.
func (p *Protocol) Trace() string {
	res := transform.Result{Applied: p.Applied}
	return res.Trace()
}

// Summary describes the protocol in one line.
func (p *Protocol) Summary() string {
	return fmt.Sprintf("protocol %s: %d nodes (%d original), %d transformations applied, seed %d",
		p.Graph.ProtocolName, p.Graph.NodeCount(), p.Original.NodeCount(), len(p.Applied), p.Seed)
}
