package core

import (
	"fmt"

	"protoobf/internal/artifact"
	"protoobf/internal/lru"
	"protoobf/internal/rng"
	"protoobf/internal/spec"
)

// NewRotationStore is NewRotationCache backed by a serialized-artifact
// store: versions present in the store are restored instead of
// compiled, and versions this process compiles are persisted for the
// rest of the fleet. A nil store degrades to NewRotationCache. The
// store is consulted inside the compile singleflight, so an epoch storm
// costs one disk load, not one per session.
//
// Restored versions are interoperable with compiled ones by
// construction: the transformed graph (the part both peers must agree
// on byte-for-byte) travels in the artifact, while the per-dialect RNG
// is re-derived from the version seed. The RNG only feeds pad bytes and
// random split halves, which every parser skips, so a restored sender
// and a compiled receiver (or vice versa) always understand each other.
func NewRotationStore(source string, opts ObfuscationOptions, window, shards int, store *artifact.Store) (*Rotation, error) {
	if store == nil {
		return NewRotationCache(source, opts, window, shards)
	}
	if window == 0 {
		window = DefaultVersionWindow
	} else if window < 0 {
		window = 0 // lru: unbounded
	}
	// Parse once up front: configuration errors surface here even when
	// every version loads from the store, and the parsed graph doubles
	// as the shared Original of restored Protocols.
	orig, err := spec.Parse(source)
	if err != nil {
		return nil, fmt.Errorf("rotation: %w", err)
	}
	r := &Rotation{
		source: source,
		opts:   opts,
		cache: lru.NewSharded[versionKey, *Protocol](shards, window, func(k versionKey) uint64 {
			return lru.Mix64(uint64(k.family) ^ lru.Mix64(k.epoch+1))
		}, nil),
		art:       store,
		artDigest: artifact.SpecDigest(source, opts.PerNode, opts.Only, opts.Exclude),
		orig:      orig,
	}
	r.self.rot = r
	// Epoch-0 probe, like NewRotationCache — but a warm store turns the
	// cold-start compile into a load.
	k := versionKey{family: opts.Seed, epoch: 0}
	if p, ok := r.loadArtifact(k); ok {
		r.cache.Put(k, p)
		return r, nil
	}
	probe := opts
	probe.Seed = deriveSeed(opts.Seed, 0)
	p, err := Compile(source, probe)
	if err != nil {
		return nil, fmt.Errorf("rotation: %w", err)
	}
	r.stats.Compiles.Add(1)
	r.cache.Put(k, p)
	r.saveArtifact(k, p)
	return r, nil
}

// loadArtifact tries to restore (family, epoch) from the artifact
// store. Store errors (corrupt file, key mismatch, I/O) are counted and
// degrade to a miss — the caller compiles instead.
func (r *Rotation) loadArtifact(k versionKey) (*Protocol, bool) {
	a, ok, err := r.art.Load(artifact.Key{SpecDigest: r.artDigest, Family: k.family, Epoch: k.epoch})
	if err != nil {
		r.stats.ArtifactErrors.Add(1)
		return nil, false
	}
	if !ok {
		return nil, false
	}
	r.stats.ArtifactLoads.Add(1)
	seed := deriveSeed(k.family, k.epoch)
	// The Protocol of a restored version: the transformed graph from the
	// artifact, the shared plain graph as Original, and a fresh RNG from
	// the version seed. The transformation records (Applied) do not
	// survive serialization — only their product, the graph, does.
	return &Protocol{
		Original: r.orig,
		Graph:    a.Graph,
		Seed:     seed,
		rng:      rng.New(seed).Split(),
	}, true
}

// saveArtifact persists a freshly compiled version, best-effort: a
// failed save costs the fleet a recompile later, never correctness.
// The graph pointer is shared with the live Protocol, which is safe
// because graphs are immutable once compiled and Encode only reads.
func (r *Rotation) saveArtifact(k versionKey, p *Protocol) {
	if err := r.art.Save(&artifact.Artifact{
		Key:     artifact.Key{SpecDigest: r.artDigest, Family: k.family, Epoch: k.epoch},
		PerNode: r.opts.PerNode,
		Applied: len(p.Applied),
		Graph:   p.Graph,
	}); err != nil {
		r.stats.ArtifactErrors.Add(1)
		return
	}
	r.stats.ArtifactSaves.Add(1)
}
