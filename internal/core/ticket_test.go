package core

import (
	"bytes"
	"errors"
	"testing"
)

func TestTicketRoundTrip(t *testing.T) {
	plain := []byte("epoch and lineage state")
	ticket, err := SealTicket(53, plain)
	if err != nil {
		t.Fatalf("seal: %v", err)
	}
	got, err := OpenTicket(53, ticket)
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	if !bytes.Equal(got, plain) {
		t.Fatalf("opened %q, want %q", got, plain)
	}
}

// Forged-tag rejection must hold for a flip anywhere in the ticket: the
// tag itself (the constant-time compare's direct input), the nonce, and
// the masked body (both covered by the tag).
func TestOpenTicketRejectsEveryFlippedByte(t *testing.T) {
	ticket, err := SealTicket(53, []byte("state"))
	if err != nil {
		t.Fatal(err)
	}
	for i := range ticket {
		bad := append([]byte(nil), ticket...)
		bad[i] ^= 0x01
		if _, err := OpenTicket(53, bad); !errors.Is(err, ErrTicketInvalid) {
			t.Fatalf("byte %d flipped: got %v, want ErrTicketInvalid", i, err)
		}
	}
}

func TestOpenTicketRejectsWrongSeed(t *testing.T) {
	ticket, err := SealTicket(53, []byte("state"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := OpenTicket(54, ticket); !errors.Is(err, ErrTicketInvalid) {
		t.Fatalf("wrong seed: got %v, want ErrTicketInvalid", err)
	}
}

func TestOpenTicketRejectsBadLengths(t *testing.T) {
	for _, n := range []int{0, 1, ticketOverhead - 1, maxTicketLen + 1} {
		if _, err := OpenTicket(53, make([]byte, n)); !errors.Is(err, ErrTicketInvalid) {
			t.Fatalf("%d bytes: got %v, want ErrTicketInvalid", n, err)
		}
	}
}

func TestSealTicketRejectsOversizedState(t *testing.T) {
	if _, err := SealTicket(53, make([]byte, maxTicketLen)); err == nil {
		t.Fatal("sealed a state larger than any admissible ticket")
	}
}

// Tickets must not leak their plaintext: sealing the same state twice
// yields unrelated bytes (fresh nonce, fresh keystream).
func TestSealTicketMasksState(t *testing.T) {
	plain := []byte("the same state twice")
	a, err := SealTicket(53, append([]byte(nil), plain...))
	if err != nil {
		t.Fatal(err)
	}
	b, err := SealTicket(53, append([]byte(nil), plain...))
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(a, b) {
		t.Fatal("two seals of the same state are identical")
	}
	if bytes.Contains(a, plain) {
		t.Fatal("sealed ticket contains the plaintext state")
	}
}
