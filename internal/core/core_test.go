package core

import (
	"strings"
	"testing"

	"protoobf/internal/msgtree"
)

const demoSource = `
protocol core_demo;
root seq m end {
    uint  a 2;
    uint  blen 2;
    seq b length(blen) {
        bytes s delim ";" min 1;
    }
    bytes tail end;
}
`

func build(t *testing.T, p *Protocol) *msgtree.Message {
	t.Helper()
	m := p.NewMessage()
	sc := m.Scope()
	for _, err := range []error{
		sc.SetUint("a", 300),
		sc.SetString("s", "str"),
		sc.SetString("tail", "T"),
	} {
		if err != nil {
			t.Fatal(err)
		}
	}
	return m
}

func TestCompileAndRoundTrip(t *testing.T) {
	p, err := Compile(demoSource, ObfuscationOptions{PerNode: 2, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	if p.Original.NodeCount() >= p.Graph.NodeCount() {
		t.Error("obfuscation did not grow the graph")
	}
	m := build(t, p)
	data, err := p.Serialize(m)
	if err != nil {
		t.Fatal(err)
	}
	back, err := p.Parse(data)
	if err != nil {
		t.Fatal(err)
	}
	if v, err := back.Scope().GetUint("a"); err != nil || v != 300 {
		t.Errorf("a = %d, %v", v, err)
	}
}

func TestCompileBadSpec(t *testing.T) {
	if _, err := Compile("protocol x;", ObfuscationOptions{}); err == nil {
		t.Error("bad spec accepted")
	}
	if _, err := Compile(demoSource, ObfuscationOptions{PerNode: 1, Only: []string{"Nope"}}); err == nil {
		t.Error("bad transform filter accepted")
	}
}

func TestProtocolMetadata(t *testing.T) {
	p, err := Compile(demoSource, ObfuscationOptions{PerNode: 1, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(p.Summary(), "core_demo") {
		t.Errorf("Summary = %q", p.Summary())
	}
	if len(p.Applied) == 0 || p.Trace() == "" {
		t.Error("trace empty")
	}
	src, err := p.GenerateSource("lib")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(src, "package lib") {
		t.Error("generated source lacks package clause")
	}
}

// TestOriginalUntouched: the original graph stays usable for the plain
// protocol (the paper's level-0 baseline).
func TestOriginalUntouched(t *testing.T) {
	p, err := Compile(demoSource, ObfuscationOptions{PerNode: 3, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Original.Validate(); err != nil {
		t.Fatalf("original graph invalid: %v", err)
	}
	for _, n := range p.Original.Nodes() {
		if n.Reversed || n.Comb != nil || len(n.Ops) > 0 {
			t.Fatalf("original graph carries obfuscation artifacts at %q", n.Name)
		}
	}
}

func TestRotationDeterministicPerEpoch(t *testing.T) {
	r1, err := NewRotation(demoSource, ObfuscationOptions{PerNode: 2, Seed: 77})
	if err != nil {
		t.Fatal(err)
	}
	r2, err := NewRotation(demoSource, ObfuscationOptions{PerNode: 2, Seed: 77})
	if err != nil {
		t.Fatal(err)
	}
	// Same epoch on independent rotations: identical dialects.
	for _, epoch := range []uint64{0, 1, 9} {
		p1, err := r1.Version(epoch)
		if err != nil {
			t.Fatal(err)
		}
		p2, err := r2.Version(epoch)
		if err != nil {
			t.Fatal(err)
		}
		if p1.Trace() != p2.Trace() {
			t.Fatalf("epoch %d: peers disagree on the dialect", epoch)
		}
		// A message serialized by peer 1 parses on peer 2.
		m := build(t, p1)
		data, err := p1.Serialize(m)
		if err != nil {
			t.Fatal(err)
		}
		back, err := p2.Parse(data)
		if err != nil {
			t.Fatalf("epoch %d: cross-peer parse: %v", epoch, err)
		}
		if v, _ := back.Scope().GetUint("a"); v != 300 {
			t.Errorf("epoch %d: a = %d", epoch, v)
		}
	}
	// Different epochs: different dialects.
	p0, _ := r1.Version(0)
	p1, _ := r1.Version(1)
	if p0.Trace() == p1.Trace() {
		t.Error("epochs 0 and 1 produced the same transformation trace")
	}
	// Caching returns the same object.
	pa, _ := r1.Version(5)
	pb, _ := r1.Version(5)
	if pa != pb {
		t.Error("epoch cache miss")
	}
}

func TestRotationCrossEpochIncompatible(t *testing.T) {
	r, err := NewRotation(demoSource, ObfuscationOptions{PerNode: 2, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	p0, _ := r.Version(0)
	p1, _ := r.Version(1)
	m := build(t, p0)
	data, err := p0.Serialize(m)
	if err != nil {
		t.Fatal(err)
	}
	// A different epoch's parser should not quietly accept the message
	// with the same content. (It may fail to parse, or parse to junk —
	// either way the logical value must not silently match everywhere.)
	back, err := p1.Parse(data)
	if err == nil {
		if v, gerr := back.Scope().GetUint("a"); gerr == nil && v == 300 {
			sb, _ := back.Scope().GetBytes("s")
			if string(sb) == "str" {
				t.Error("cross-epoch message decoded identically; rotation is pointless")
			}
		}
	}
}

func TestRotationBadSpec(t *testing.T) {
	if _, err := NewRotation("nope", ObfuscationOptions{}); err == nil {
		t.Error("bad spec accepted")
	}
}
