package msgtree

import (
	"fmt"
	"sort"
	"strings"

	"protoobf/internal/graph"
)

// Snapshot captures the logical content of a message: every original
// user field value, optional presence flags and repetition item counts,
// keyed by original field names with item indices. Two messages carry
// the same information iff their snapshots are equal, regardless of the
// transformations applied to the underlying graph — this is the oracle
// the round-trip property tests rely on.
func (m *Message) Snapshot() (map[string]string, error) {
	out := make(map[string]string)
	if err := m.snapWalk(m.Root, "", out); err != nil {
		return nil, err
	}
	return out, nil
}

func (m *Message) snapWalk(v *Value, prefix string, out map[string]string) error {
	n := v.Node
	if n.Origin.Role == graph.RolePad {
		return nil
	}
	// Value-bearing node for an original field.
	if (n.Kind == graph.Terminal || n.Comb != nil) && n.Origin.Role == graph.RoleWhole {
		if n.AutoFill {
			return nil // serializer-computed, not part of the logical content
		}
		val, err := m.GetNodeValue(v)
		if err != nil {
			return fmt.Errorf("snapshot %s%s: %w", prefix, n.Origin.Name, err)
		}
		out[prefix+n.Origin.Name] = val.String()
		return nil
	}
	if n.Kind == graph.Terminal {
		// Synthetic terminal (length fields, detached split parts):
		// not part of the logical content.
		return nil
	}
	switch {
	case n.Kind == graph.Optional:
		key := prefix + n.Origin.Name + ".present"
		out[key] = fmt.Sprintf("%v", v.Present)
		if v.Present {
			for _, k := range v.Kids {
				if err := m.snapWalk(k, prefix, out); err != nil {
					return err
				}
			}
		}
		return nil
	case (n.Kind == graph.Repetition || n.Kind == graph.Tabular) && !underSplitPair(n),
		n.Kind == graph.Sequence && isSplitPair(n):
		items, err := m.itemScopes(v)
		if err != nil {
			return err
		}
		out[prefix+n.Origin.Name+".count"] = fmt.Sprintf("%d", len(items))
		for i, item := range items {
			p := fmt.Sprintf("%s%s[%d].", prefix, n.Origin.Name, i)
			for _, r := range item.roots {
				if err := m.snapWalk(r, p, out); err != nil {
					return err
				}
			}
		}
		return nil
	default:
		// Plain sequences and RoleGroup wrappers are transparent.
		for _, k := range v.Kids {
			if err := m.snapWalk(k, prefix, out); err != nil {
				return err
			}
		}
		return nil
	}
}

// underSplitPair reports whether n is one half of a TabSplit/RepSplit
// pair (handled by the pair Sequence, not individually).
func underSplitPair(n *graph.Node) bool {
	return n.Parent != nil && isSplitPair(n.Parent)
}

// FormatSnapshot renders a snapshot deterministically for debugging.
func FormatSnapshot(s map[string]string) string {
	keys := make([]string, 0, len(s))
	for k := range s {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	for _, k := range keys {
		fmt.Fprintf(&b, "%s = %s\n", k, s[k])
	}
	return b.String()
}

// SnapshotsEqual compares two snapshots and returns a description of the
// first difference, or "" when equal.
func SnapshotsEqual(a, b map[string]string) string {
	for k, va := range a {
		vb, ok := b[k]
		if !ok {
			return fmt.Sprintf("key %q missing from second snapshot", k)
		}
		if va != vb {
			return fmt.Sprintf("key %q: %s != %s", k, va, vb)
		}
	}
	for k := range b {
		if _, ok := a[k]; !ok {
			return fmt.Sprintf("key %q missing from first snapshot", k)
		}
	}
	return ""
}
