// Package msgtree implements message instances: abstract syntax trees
// (ASTs) that instantiate a message format graph (paper §V-A), plus the
// accessor interface (setters and getters) the core application uses.
//
// The accessors address fields by their ORIGINAL specification names even
// when the underlying graph has been obfuscated: aggregation
// transformations (Split*, Const*) are performed on the fly inside the
// setters and getters, so the process memory only ever holds the
// intermediate representation described in the paper (§VI) — never the
// plain message.
package msgtree

import (
	"fmt"

	"protoobf/internal/graph"
	"protoobf/internal/rng"
)

// Value is one node of a message AST. It mirrors a graph.Node.
type Value struct {
	Node   *graph.Node
	Parent *Value
	// Bytes holds the wire-level (post-transformation) bytes of a
	// Terminal node.
	Bytes []byte
	// Kids are the instantiated children. For Repetition/Tabular nodes
	// they are the items (each an instance of the single child node).
	Kids []*Value
	// Present tells whether an Optional subtree is instantiated.
	Present bool
	// set tracks whether a Terminal has been assigned a value.
	set bool
}

// Message is an AST under construction or resulting from a parse.
type Message struct {
	G    *graph.Graph
	Root *Value
	Rng  *rng.R
}

// New creates an empty message instance for graph g. The random source is
// used by Split* setters (a fresh split for every message, which is what
// gives "various representations of the same message", paper table II)
// and to fill padding fields.
func New(g *graph.Graph, r *rng.R) *Message {
	m := &Message{G: g, Rng: r}
	m.Root = m.instantiate(g.Root, nil)
	return m
}

// instantiate builds the skeleton Value for node n.
func (m *Message) instantiate(n *graph.Node, parent *Value) *Value {
	v := &Value{Node: n, Parent: parent}
	switch n.Kind {
	case graph.Terminal:
		if n.Origin.Role == graph.RolePad {
			v.Bytes = m.Rng.PadBytes(n.Boundary.Size)
			v.set = true
		}
	case graph.Sequence:
		for _, c := range n.Children {
			v.Kids = append(v.Kids, m.instantiate(c, v))
		}
	case graph.Optional:
		// Child instantiated by Enable.
	case graph.Repetition, graph.Tabular:
		// Items appended by Add.
	}
	return v
}

// IsSet reports whether a Terminal instance holds a value.
func (v *Value) IsSet() bool { return v.set }

// SetWire assigns raw wire bytes to a Terminal instance (used by the
// parser; the bytes are stored as-is, transformations are inverted by the
// getters).
func (v *Value) SetWire(b []byte) {
	v.Bytes = b
	v.set = true
}

// FindRef resolves a reference to the original field name from the
// position of `from` in the instance tree, searching the enclosing scopes
// from innermost to outermost. It never crosses Repetition/Tabular item
// boundaries (a reference inside an item resolves within that item or in
// scopes enclosing the whole repetition, never in sibling items).
func FindRef(from *Value, name string) *Value {
	cur := from
	for cur != nil {
		if hit := scanScope(cur, name); hit != nil {
			return hit
		}
		p := cur.Parent
		if p != nil && (p.Node.Kind == graph.Repetition || p.Node.Kind == graph.Tabular) {
			cur = p.Parent // skip sibling items
		} else {
			cur = p
		}
	}
	return nil
}

func scanScope(v *Value, name string) *Value {
	n := v.Node
	if n.Origin.Name == name &&
		(n.Origin.Role == graph.RoleWhole || n.Origin.Role == graph.RoleLengthOf) &&
		(n.Kind == graph.Terminal || n.Comb != nil) {
		return v
	}
	if n.Kind == graph.Repetition || n.Kind == graph.Tabular {
		return nil // do not look inside items
	}
	for _, k := range v.Kids {
		if hit := scanScope(k, name); hit != nil {
			return hit
		}
	}
	return nil
}

// Scope is an accessor cursor over one or more instance subtrees. A scope
// usually wraps a single subtree; after a TabSplit transformation one
// original item spans the two halves of the pair, hence the slice.
type Scope struct {
	m     *Message
	roots []*Value
}

// Scope returns the root scope of the message.
func (m *Message) Scope() *Scope {
	return &Scope{m: m, roots: []*Value{m.Root}}
}

// locate finds the unique value-bearing instance node for original field
// name within the scope, without crossing Repetition/Tabular items.
func (s *Scope) locate(name string) (*Value, error) {
	var found *Value
	var walk func(v *Value) error
	walk = func(v *Value) error {
		n := v.Node
		if n.Origin.Name == name && n.Origin.Role == graph.RoleWhole {
			if found != nil {
				return fmt.Errorf("field %q is ambiguous in this scope", name)
			}
			found = v
			return nil
		}
		switch n.Kind {
		case graph.Repetition, graph.Tabular:
			// Items are addressed through item scopes.
			return nil
		case graph.Optional:
			if !v.Present {
				// Keep looking elsewhere; if the target is inside
				// this optional the caller gets a "not found" error
				// suggesting Enable.
				return nil
			}
		}
		for _, k := range v.Kids {
			if err := walk(k); err != nil {
				return err
			}
		}
		return nil
	}
	for _, r := range s.roots {
		if err := walk(r); err != nil {
			return nil, err
		}
	}
	if found == nil {
		if s.m.nodeInGraph(name) {
			return nil, fmt.Errorf("field %q is not reachable in this scope (inside a disabled optional or a repetition item?)", name)
		}
		return nil, fmt.Errorf("unknown field %q", name)
	}
	return found, nil
}

// locateContainer finds an instance node by original name regardless of
// its role (used for Optional/Repetition/Tabular containers).
func (s *Scope) locateContainer(name string) (*Value, error) {
	var found *Value
	var walk func(v *Value)
	walk = func(v *Value) {
		if found != nil {
			return
		}
		n := v.Node
		// Only RoleWhole containers match: RoleGroup wrappers (e.g. the
		// Sequence introduced by BoundaryChange) are transparent and the
		// search descends into them to find the real container.
		if n.Origin.Name == name && n.Origin.Role == graph.RoleWhole && n.Kind != graph.Terminal {
			found = v
			return
		}
		switch n.Kind {
		case graph.Repetition, graph.Tabular:
			return
		case graph.Optional:
			if !v.Present {
				return
			}
		}
		for _, k := range v.Kids {
			walk(k)
		}
	}
	for _, r := range s.roots {
		walk(r)
	}
	if found == nil {
		return nil, fmt.Errorf("container %q not reachable in this scope", name)
	}
	return found, nil
}

func (m *Message) nodeInGraph(name string) bool {
	return m.G.FindOriginal(name) != nil
}

// opWidth returns the modulus width for integer value operations on n.
func opWidth(n *graph.Node) int {
	switch {
	case n.Comb != nil:
		return n.Comb.Width
	case n.Enc == graph.EncUint:
		return n.Boundary.Size
	default:
		return 8 // EncASCII: full 64-bit arithmetic
	}
}

// SetNodeValue assigns the user-level value v to the value-bearing
// instance node iv, applying the node's aggregation pipeline on the fly:
// Const* operations first, then Split* decompositions recursively.
func (m *Message) SetNodeValue(iv *Value, v graph.Val) error {
	n := iv.Node
	if n.MinLen > 0 && v.IsBytes && len(v.B) < n.MinLen {
		return fmt.Errorf("field %q: value %d bytes, minimum %d", n.Origin.Name, len(v.B), n.MinLen)
	}
	// Overflow must surface before the value pipeline masks it away:
	// every op is a bijection modulo 2^(8*width), so information above
	// the width is lost silently otherwise.
	if !v.IsBytes && n.Enc == graph.EncUint {
		if w := opWidth(n); w < 8 && v.U >= uint64(1)<<(8*w) {
			return fmt.Errorf("field %q: value %d overflows %d-byte field", n.Origin.Name, v.U, w)
		}
	}
	if n.Kind == graph.Terminal && n.Enc == graph.EncBytes && n.Boundary.Kind == graph.Delimited && v.IsBytes {
		if containsSub(v.B, n.Boundary.Delim) {
			return fmt.Errorf("field %q: value contains the delimiter %q", n.Origin.Name, n.Boundary.Delim)
		}
	}
	tv, err := graph.ApplyOps(n.Ops, opWidth(n), v)
	if err != nil {
		return fmt.Errorf("field %q: %w", n.Origin.Name, err)
	}
	if n.Comb == nil {
		if n.Kind != graph.Terminal {
			return fmt.Errorf("field %q: not a value-bearing node", n.Origin.Name)
		}
		width := 0
		if n.Enc == graph.EncUint {
			width = n.Boundary.Size
		}
		b, err := graph.EncodeTerminal(n.Enc, width, tv)
		if err != nil {
			return fmt.Errorf("field %q: %w", n.Origin.Name, err)
		}
		if n.Boundary.Kind == graph.Fixed && len(b) != n.Boundary.Size {
			return fmt.Errorf("field %q: %d bytes for a %d-byte fixed field", n.Origin.Name, len(b), n.Boundary.Size)
		}
		iv.Bytes = b
		iv.set = true
		return nil
	}
	// Split node: decompose and recurse into the two halves by role.
	if n.Comb.Kind == graph.CombCat && !tv.IsBytes {
		// Concatenation splits operate on the byte representation.
		raw := graph.EncodeUintBE(tv.U, n.Comb.Width)
		tv = graph.BytesVal(raw)
	}
	l, r, err := graph.SplitVals(*n.Comb, tv, m.Rng.Uint64())
	if err != nil {
		return fmt.Errorf("field %q: %w", n.Origin.Name, err)
	}
	lv, rv := splitHalves(iv)
	if lv == nil || rv == nil {
		return fmt.Errorf("field %q: split halves missing", n.Origin.Name)
	}
	if err := m.SetNodeValue(lv, l); err != nil {
		return err
	}
	return m.SetNodeValue(rv, r)
}

// GetNodeValue recovers the user-level value of a value-bearing instance
// node, inverting splits and value operations.
func (m *Message) GetNodeValue(iv *Value) (graph.Val, error) {
	n := iv.Node
	var tv graph.Val
	if n.Comb == nil {
		if n.Kind != graph.Terminal {
			return graph.Val{}, fmt.Errorf("field %q: not a value-bearing node", n.Origin.Name)
		}
		if !iv.set {
			return graph.Val{}, fmt.Errorf("field %q: not set", n.Origin.Name)
		}
		v, err := graph.DecodeTerminal(n.Enc, iv.Bytes)
		if err != nil {
			return graph.Val{}, fmt.Errorf("field %q: %w", n.Origin.Name, err)
		}
		tv = v
	} else {
		lv, rv := splitHalves(iv)
		if lv == nil || rv == nil {
			return graph.Val{}, fmt.Errorf("field %q: split halves missing", n.Origin.Name)
		}
		l, err := m.GetNodeValue(lv)
		if err != nil {
			return graph.Val{}, err
		}
		r, err := m.GetNodeValue(rv)
		if err != nil {
			return graph.Val{}, err
		}
		v, err := graph.CombineVals(*n.Comb, l, r)
		if err != nil {
			return graph.Val{}, fmt.Errorf("field %q: %w", n.Origin.Name, err)
		}
		if n.Comb.Kind == graph.CombCat && n.Enc != graph.EncBytes {
			dec, err := graph.DecodeTerminal(n.Enc, v.B)
			if err != nil {
				return graph.Val{}, fmt.Errorf("field %q: %w", n.Origin.Name, err)
			}
			v = dec
		}
		tv = v
	}
	out, err := graph.InvertOps(n.Ops, opWidth(n), tv)
	if err != nil {
		return graph.Val{}, fmt.Errorf("field %q: %w", n.Origin.Name, err)
	}
	return out, nil
}

// findRoleHolder is the instance-level analog of graph.FindRoleHolder:
// the shallowest descendant of iv carrying the split role, seen through
// RoleGroup wrappers (e.g. a BoundaryChange applied to a split half).
func findRoleHolder(iv *Value, role graph.Role) *Value {
	var rec func(v *Value) *Value
	rec = func(v *Value) *Value {
		if v.Node.Origin.Role == role {
			return v
		}
		// Sealed sub-units: the halves of a nested or foreign split
		// belong to that split, not to the one being resolved.
		if v.Node.Origin.Role == graph.RoleSplitLeft || v.Node.Origin.Role == graph.RoleSplitRight ||
			v.Node.Comb != nil {
			return nil
		}
		if v.Node.Kind == graph.Repetition || v.Node.Kind == graph.Tabular {
			return nil
		}
		for _, k := range v.Kids {
			if hit := rec(k); hit != nil {
				return hit
			}
		}
		return nil
	}
	for _, k := range iv.Kids {
		if hit := rec(k); hit != nil {
			return hit
		}
	}
	return nil
}

// splitHalves returns the instance nodes holding the left and right
// halves of a split node, identified by role (position-independent, since
// ChildMove may have swapped them, and wrapper-transparent).
func splitHalves(iv *Value) (l, r *Value) {
	return findRoleHolder(iv, graph.RoleSplitLeft), findRoleHolder(iv, graph.RoleSplitRight)
}

// containsSub reports whether b contains sub.
func containsSub(b, sub []byte) bool {
	if len(sub) == 0 || len(b) < len(sub) {
		return false
	}
	for i := 0; i+len(sub) <= len(b); i++ {
		match := true
		for j := range sub {
			if b[i+j] != sub[j] {
				match = false
				break
			}
		}
		if match {
			return true
		}
	}
	return false
}

// --- public accessor API -------------------------------------------------

// SetUint assigns an integer value to the original field name.
func (s *Scope) SetUint(name string, u uint64) error {
	return s.set(name, graph.UintVal(u))
}

// SetBytes assigns a byte value to the original field name.
func (s *Scope) SetBytes(name string, b []byte) error {
	return s.set(name, graph.BytesVal(b))
}

// SetString assigns a string value to the original field name.
func (s *Scope) SetString(name, v string) error {
	return s.set(name, graph.BytesVal([]byte(v)))
}

func (s *Scope) set(name string, v graph.Val) error {
	iv, err := s.locate(name)
	if err != nil {
		return err
	}
	if iv.Node.AutoFill {
		return fmt.Errorf("field %q is computed by the serializer", name)
	}
	return s.m.SetNodeValue(iv, v)
}

// GetUint reads an integer field.
func (s *Scope) GetUint(name string) (uint64, error) {
	v, err := s.get(name)
	if err != nil {
		return 0, err
	}
	if v.IsBytes {
		return 0, fmt.Errorf("field %q holds bytes", name)
	}
	return v.U, nil
}

// GetBytes reads a byte field.
func (s *Scope) GetBytes(name string) ([]byte, error) {
	v, err := s.get(name)
	if err != nil {
		return nil, err
	}
	if !v.IsBytes {
		return nil, fmt.Errorf("field %q holds an integer", name)
	}
	return v.B, nil
}

func (s *Scope) get(name string) (graph.Val, error) {
	iv, err := s.locate(name)
	if err != nil {
		return graph.Val{}, err
	}
	return s.m.GetNodeValue(iv)
}

// Enable instantiates an Optional subtree and returns a scope over it.
// The caller remains responsible for setting the guard field to a value
// satisfying the presence predicate.
func (s *Scope) Enable(name string) (*Scope, error) {
	iv, err := s.locateContainer(name)
	if err != nil {
		return nil, err
	}
	if iv.Node.Kind != graph.Optional {
		return nil, fmt.Errorf("field %q is not optional", name)
	}
	if !iv.Present {
		iv.Present = true
		iv.Kids = []*Value{s.m.instantiate(iv.Node.Child(), iv)}
	}
	return &Scope{m: s.m, roots: iv.Kids}, nil
}

// Disable removes an Optional subtree.
func (s *Scope) Disable(name string) error {
	iv, err := s.locateContainer(name)
	if err != nil {
		return err
	}
	if iv.Node.Kind != graph.Optional {
		return fmt.Errorf("field %q is not optional", name)
	}
	iv.Present = false
	iv.Kids = nil
	return nil
}

// Present reports whether an Optional subtree is instantiated.
func (s *Scope) Present(name string) (bool, error) {
	iv, err := s.locateContainer(name)
	if err != nil {
		return false, err
	}
	if iv.Node.Kind != graph.Optional {
		return false, fmt.Errorf("field %q is not optional", name)
	}
	return iv.Present, nil
}

// Add appends one item to a Repetition or Tabular and returns its scope.
// When the container was split (TabSplit/RepSplit) the returned scope
// spans the corresponding item of every half.
func (s *Scope) Add(name string) (*Scope, error) {
	iv, err := s.locateContainer(name)
	if err != nil {
		return nil, err
	}
	return s.m.addItem(iv)
}

func (m *Message) addItem(iv *Value) (*Scope, error) {
	n := iv.Node
	switch {
	case n.Kind == graph.Repetition || n.Kind == graph.Tabular:
		item := m.instantiate(n.Child(), iv)
		iv.Kids = append(iv.Kids, item)
		return &Scope{m: m, roots: []*Value{item}}, nil
	case n.Kind == graph.Sequence && isSplitPair(n):
		// One logical item spans both halves (which may sit inside
		// RoleGroup wrappers added by later transformations).
		var roots []*Value
		for _, role := range []graph.Role{graph.RoleSplitLeft, graph.RoleSplitRight} {
			half := findRoleHolder(iv, role)
			if half == nil {
				return nil, fmt.Errorf("field %q: split half %v missing", n.Origin.Name, role)
			}
			sub, err := m.addItem(half)
			if err != nil {
				return nil, err
			}
			roots = append(roots, sub.roots...)
		}
		return &Scope{m: m, roots: roots}, nil
	default:
		return nil, fmt.Errorf("field %q is not repeated", n.Origin.Name)
	}
}

// isSplitPair reports whether n is the pair Sequence introduced by
// TabSplit or RepSplit.
func isSplitPair(n *graph.Node) bool { return n.IsSplitPair() }

// Items returns one scope per item of a Repetition or Tabular.
func (s *Scope) Items(name string) ([]*Scope, error) {
	iv, err := s.locateContainer(name)
	if err != nil {
		return nil, err
	}
	return s.m.itemScopes(iv)
}

func (m *Message) itemScopes(iv *Value) ([]*Scope, error) {
	n := iv.Node
	switch {
	case n.Kind == graph.Repetition || n.Kind == graph.Tabular:
		out := make([]*Scope, len(iv.Kids))
		for i, k := range iv.Kids {
			out[i] = &Scope{m: m, roots: []*Value{k}}
		}
		return out, nil
	case n.Kind == graph.Sequence && isSplitPair(n):
		var halves [][]*Scope
		for _, role := range []graph.Role{graph.RoleSplitLeft, graph.RoleSplitRight} {
			half := findRoleHolder(iv, role)
			if half == nil {
				return nil, fmt.Errorf("field %q: split half %v missing", n.Origin.Name, role)
			}
			hs, err := m.itemScopes(half)
			if err != nil {
				return nil, err
			}
			halves = append(halves, hs)
		}
		if len(halves) != 2 || len(halves[0]) != len(halves[1]) {
			return nil, fmt.Errorf("field %q: split halves have mismatched item counts", n.Origin.Name)
		}
		out := make([]*Scope, len(halves[0]))
		for i := range out {
			out[i] = &Scope{m: m, roots: append(append([]*Value{}, halves[0][i].roots...), halves[1][i].roots...)}
		}
		return out, nil
	default:
		return nil, fmt.Errorf("field %q is not repeated", n.Origin.Name)
	}
}

// Count returns the number of items in a Repetition or Tabular.
func (s *Scope) Count(name string) (int, error) {
	items, err := s.Items(name)
	if err != nil {
		return 0, err
	}
	return len(items), nil
}
