package msgtree

import (
	"strings"
	"testing"
	"testing/quick"

	"protoobf/internal/graph"
	"protoobf/internal/rng"
	"protoobf/internal/spec"
)

const demoSpec = `
protocol demo;
root seq msg end {
    bytes magic fixed 2;
    uint  kind 1;
    uint  plen 2;
    seq payload length(plen) {
        bytes name delim ";" min 1;
        uint  cnt 1;
        tabular items count(cnt) { uint item 2; }
        optional maybe when kind == 7 { bytes extra delim "|"; }
    }
    bytes body end;
}
`

func demoGraph(t testing.TB) *graph.Graph {
	t.Helper()
	g, err := spec.Parse(demoSpec)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestSetGetRoundTrip(t *testing.T) {
	m := New(demoGraph(t), rng.New(1))
	s := m.Scope()
	if err := s.SetUint("kind", 5); err != nil {
		t.Fatal(err)
	}
	if v, err := s.GetUint("kind"); err != nil || v != 5 {
		t.Errorf("kind = %d, %v", v, err)
	}
	if err := s.SetBytes("magic", []byte{1, 2}); err != nil {
		t.Fatal(err)
	}
	if b, err := s.GetBytes("magic"); err != nil || len(b) != 2 {
		t.Errorf("magic = %x, %v", b, err)
	}
	if err := s.SetString("name", "zed"); err != nil {
		t.Fatal(err)
	}
	if b, _ := s.GetBytes("name"); string(b) != "zed" {
		t.Errorf("name = %q", b)
	}
}

func TestSetErrors(t *testing.T) {
	m := New(demoGraph(t), rng.New(1))
	s := m.Scope()
	if err := s.SetUint("ghost", 1); err == nil || !strings.Contains(err.Error(), "unknown field") {
		t.Errorf("unknown field: %v", err)
	}
	if err := s.SetUint("kind", 256); err == nil {
		t.Error("overflow accepted on 1-byte field")
	}
	if err := s.SetUint("plen", 1); err == nil || !strings.Contains(err.Error(), "computed by the serializer") {
		t.Errorf("autofill write: %v", err)
	}
	if err := s.SetBytes("magic", []byte{1, 2, 3}); err == nil {
		t.Error("wrong fixed size accepted")
	}
	if err := s.SetString("name", "a;b"); err == nil {
		t.Error("value containing its delimiter accepted")
	}
	if err := s.SetString("name", ""); err == nil {
		t.Error("value below MinLen accepted")
	}
	if err := s.SetBytes("kind", []byte{1}); err == nil {
		t.Error("bytes written to integer field")
	}
	if err := s.SetUint("magic", 1); err == nil {
		t.Error("integer written to bytes field")
	}
	// Field inside a disabled optional.
	if err := s.SetString("extra", "x"); err == nil || !strings.Contains(err.Error(), "not reachable") {
		t.Errorf("disabled optional: %v", err)
	}
	// Field inside items must be set through item scopes.
	if err := s.SetUint("item", 1); err == nil {
		t.Error("container-internal field set from outer scope")
	}
}

func TestOptionalLifecycle(t *testing.T) {
	m := New(demoGraph(t), rng.New(1))
	s := m.Scope()
	if p, err := s.Present("maybe"); err != nil || p {
		t.Errorf("Present = %v, %v", p, err)
	}
	sc, err := s.Enable("maybe")
	if err != nil {
		t.Fatal(err)
	}
	if err := sc.SetString("extra", "bonus"); err != nil {
		t.Fatal(err)
	}
	// After Enable, the outer scope reaches inside.
	if b, err := s.GetBytes("extra"); err != nil || string(b) != "bonus" {
		t.Errorf("extra = %q, %v", b, err)
	}
	if p, _ := s.Present("maybe"); !p {
		t.Error("Present false after Enable")
	}
	if err := s.Disable("maybe"); err != nil {
		t.Fatal(err)
	}
	if p, _ := s.Present("maybe"); p {
		t.Error("Present true after Disable")
	}
	// Enable on a non-optional errors.
	if _, err := s.Enable("magic"); err == nil {
		t.Error("Enable on terminal accepted")
	}
	if _, err := s.Enable("items"); err == nil {
		t.Error("Enable on tabular accepted")
	}
}

func TestItemsAndCount(t *testing.T) {
	m := New(demoGraph(t), rng.New(1))
	s := m.Scope()
	for i := 0; i < 3; i++ {
		it, err := s.Add("items")
		if err != nil {
			t.Fatal(err)
		}
		if err := it.SetUint("item", uint64(10+i)); err != nil {
			t.Fatal(err)
		}
	}
	if n, err := s.Count("items"); err != nil || n != 3 {
		t.Errorf("Count = %d, %v", n, err)
	}
	items, err := s.Items("items")
	if err != nil {
		t.Fatal(err)
	}
	for i, it := range items {
		if v, _ := it.GetUint("item"); v != uint64(10+i) {
			t.Errorf("item[%d] = %d", i, v)
		}
	}
	if _, err := s.Add("kind"); err == nil {
		t.Error("Add on terminal accepted")
	}
	if _, err := s.Items("payload"); err == nil {
		t.Error("Items on plain sequence accepted")
	}
}

// TestValuePipelineProperty: for arbitrary ops pipelines on a 2-byte
// field, SetNodeValue followed by GetNodeValue is the identity.
func TestValuePipelineProperty(t *testing.T) {
	f := func(raw uint16, addK, xorK uint64) bool {
		g := demoGraph(t)
		n := g.Find("plen")
		n.Ops = []graph.ValueOp{
			{Kind: graph.OpAdd, K: addK},
			{Kind: graph.OpXor, K: xorK},
		}
		m := New(g, rng.New(int64(raw)))
		iv, err := m.Scope().locate("plen")
		if err != nil {
			return false
		}
		if err := m.SetNodeValue(iv, graph.UintVal(uint64(raw))); err != nil {
			return false
		}
		v, err := m.GetNodeValue(iv)
		return err == nil && v.U == uint64(raw)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestSnapshotContent(t *testing.T) {
	m := New(demoGraph(t), rng.New(1))
	s := m.Scope()
	for _, step := range []error{
		s.SetBytes("magic", []byte{9, 9}),
		s.SetUint("kind", 7),
		s.SetString("name", "nn"),
		s.SetString("body", "B"),
	} {
		if step != nil {
			t.Fatal(step)
		}
	}
	sc, err := s.Enable("maybe")
	if err != nil {
		t.Fatal(err)
	}
	if err := sc.SetString("extra", "e"); err != nil {
		t.Fatal(err)
	}
	snap, err := m.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	for k, want := range map[string]string{
		"kind":          "7",
		"name":          `"nn"`,
		"maybe.present": "true",
		"extra":         `"e"`,
		"items.count":   "0",
	} {
		if snap[k] != want {
			t.Errorf("snapshot[%s] = %q, want %q\nfull:\n%s", k, snap[k], want, FormatSnapshot(snap))
		}
	}
	if _, ok := snap["plen"]; ok {
		t.Error("auto-filled field leaked into the snapshot")
	}
	// Unset user field -> snapshot errors.
	m2 := New(demoGraph(t), rng.New(1))
	if _, err := m2.Snapshot(); err == nil {
		t.Error("snapshot of empty message should fail")
	}
}

func TestSnapshotsEqualHelper(t *testing.T) {
	a := map[string]string{"x": "1"}
	b := map[string]string{"x": "1"}
	if d := SnapshotsEqual(a, b); d != "" {
		t.Errorf("equal snapshots reported: %s", d)
	}
	b["x"] = "2"
	if d := SnapshotsEqual(a, b); !strings.Contains(d, `"x"`) {
		t.Errorf("diff = %q", d)
	}
	delete(b, "x")
	if d := SnapshotsEqual(a, b); d == "" {
		t.Error("missing key not reported")
	}
	if d := SnapshotsEqual(b, a); d == "" {
		t.Error("extra key not reported")
	}
}

func TestFindRefScoping(t *testing.T) {
	// A reference inside a repetition item must resolve within the item,
	// not in a sibling item.
	src := `
protocol scoped;
root seq m end {
    repeat rows until "$$" {
        seq row {
            bytes rk delim "=" min 1;
            uint  rl 4;
            bytes rv length(rl);
        }
    }
    bytes tail end;
}`
	g, err := spec.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	m := New(g, rng.New(1))
	s := m.Scope()
	row1, err := s.Add("rows")
	if err != nil {
		t.Fatal(err)
	}
	if err := row1.SetString("rk", "a"); err != nil {
		t.Fatal(err)
	}
	if err := row1.SetString("rv", "longvalue"); err != nil {
		t.Fatal(err)
	}
	row2, err := s.Add("rows")
	if err != nil {
		t.Fatal(err)
	}
	if err := row2.SetString("rk", "b"); err != nil {
		t.Fatal(err)
	}
	if err := row2.SetString("rv", "x"); err != nil {
		t.Fatal(err)
	}
	// FindRef from row2's rv must find row2's rl, not row1's.
	rows, _ := s.Items("rows")
	rv2, err := rows[1].locate("rv")
	if err != nil {
		t.Fatal(err)
	}
	ref := FindRef(rv2, "rl")
	if ref == nil {
		t.Fatal("rl not found")
	}
	if ref.Parent != rv2.Parent {
		t.Error("FindRef crossed into a sibling item")
	}
}
