package dgram

import (
	"errors"
	"fmt"

	"protoobf/internal/frame"
	"protoobf/internal/msgtree"
	"protoobf/internal/trace"
	"protoobf/internal/wire"
)

// Zero-overhead mode, after EtherGuard's obfuscation design: a data
// packet on the wire is exactly the obfuscated payload — no header, no
// epoch tag, 0 added bytes — with only a short structural prefix XORed
// against a per-epoch packet pad both peers derive from the shared
// secret. The epoch is implicit: the receiver trial-decodes the packet
// against each candidate epoch of its window, nearest-to-horizon first,
// and accepts the first that parses. Control packets keep full
// treatment (header plus payload masked with the whole-packet pad, plus
// random padding), so on the wire every packet is uniformly
// high-entropy bytes of message-plausible length.
//
// Two costs are inherent to the trade and documented in
// docs/DATAGRAM.md: the pad is static per epoch (identical prefix
// plaintext repeats observably within one epoch — EtherGuard has the
// same limitation, bounded here by epoch rotation), and a packet that
// decodes under no candidate epoch is indistinguishable noise, so all
// zero-overhead rejects are counted as parse rejects rather than
// stale/future.

// zoPrefixLen is how many leading bytes of a data packet the pad
// masks. The prefix covers the structural region — tags, length
// words, discriminators near the front of real protocol messages —
// which is what a classifier keys on; the rest of the payload is
// already obfuscation output. Masking only a bounded prefix keeps the
// per-packet XOR cost flat regardless of payload size.
const zoPrefixLen = 32

// packetPad returns at least n bytes of the packet pad of epoch,
// cached per epoch so the hot path does not re-derive the keystream
// (one SHA-256 chain per derivation) for every packet and every trial.
func (c *Conn) packetPad(epoch uint64, n int) ([]byte, error) {
	pp, ok := c.versions.(PacketPadder)
	if !ok {
		return nil, errors.New("dgram: zero-overhead mode without a PacketPadder")
	}
	c.mu.Lock()
	if pad, ok := c.pads.Get(epoch); ok && len(pad) >= n {
		c.mu.Unlock()
		return pad, nil
	}
	c.mu.Unlock()
	want := n
	if want < 2*zoPrefixLen {
		// Derive a little extra so header trials (12 bytes) and data
		// prefixes (32 bytes) share one cache entry.
		want = 2 * zoPrefixLen
	}
	pad := pp.PacketPad(epoch, want)
	c.mu.Lock()
	c.pads.Put(epoch, pad)
	c.mu.Unlock()
	return pad, nil
}

// maskPacketPrefix XORs the packet pad of epoch over pkt[:n] in place
// (mask and unmask are the same operation).
func (c *Conn) maskPacketPrefix(epoch uint64, pkt []byte, n int) error {
	if n > len(pkt) {
		n = len(pkt)
	}
	pad, err := c.packetPad(epoch, n)
	if err != nil {
		return err
	}
	for i := 0; i < n; i++ {
		pkt[i] ^= pad[i]
	}
	return nil
}

// encodeDataZO serializes m into a zero-overhead data packet: the
// obfuscated payload itself, prefix-masked. Callers hold smu.
func (c *Conn) encodeDataZO(m *msgtree.Message, epoch uint64) ([]byte, error) {
	out, err := wire.SerializeAppend(m, c.wbuf[:0])
	if err != nil {
		return nil, err
	}
	c.wbuf = out
	if len(out) > c.maxPacket {
		return nil, fmt.Errorf("dgram: message of %d bytes exceeds max packet %d", len(out), c.maxPacket)
	}
	n := len(out)
	if n > zoPrefixLen {
		n = zoPrefixLen
	}
	if err := c.maskPacketPrefix(epoch, out, n); err != nil {
		return nil, err
	}
	return out, nil
}

// candidateEpochs fills cands with the epochs of the decode window
// ordered by likelihood: the horizon itself, then alternating one
// behind, one ahead, two behind, two ahead, … out to ±W. Steady-state
// packets match the first candidate; the worst case (an undecodable
// packet) costs 2W+1 trials.
func (c *Conn) candidateEpochs(cands []uint64) []uint64 {
	h := c.horizon.Load()
	cands = append(cands[:0], h)
	for d := uint64(1); d <= c.window; d++ {
		if h >= d {
			cands = append(cands, h-d)
		}
		cands = append(cands, h+d)
	}
	return cands
}

// decodeZO decodes one zero-overhead packet by trial. Control packets
// are tried first — a header trial per candidate is a 12-byte XOR plus
// an exact 64-bit epoch match, a far stronger and cheaper discriminator
// than a full parse — then data packets, nearest candidate first. Each
// data trial parses a fresh copy of the packet because unmasking is
// destructive and the parser must see the prefix unmasked under
// exactly one epoch.
func (c *Conn) decodeZO(pkt []byte, memo *dialectMemo) (*msgtree.Message, error) {
	if len(pkt) == 0 {
		c.stats.RejectedMalformed.Add(1)
		c.tr.Emit(c.traceID, trace.KindDgramReject, 0, "malformed")
		return nil, errors.New("dgram: empty packet")
	}
	var cbuf [2*DefaultEpochWindow + 1]uint64
	cands := c.candidateEpochs(cbuf[:0])

	// Control trial: unmask a 12-byte header copy under each candidate
	// pad and demand full consistency — a known control kind, the
	// packet's epoch word equal to the candidate (a 1-in-2^64 accident
	// otherwise), and a payload length the packet can hold.
	if len(pkt) >= frame.EpochHeaderLen {
		var hdr [frame.EpochHeaderLen]byte
		for _, e := range cands {
			pad, err := c.packetPad(e, frame.EpochHeaderLen)
			if err != nil {
				c.stats.RejectedParse.Add(1)
				return nil, err
			}
			for i := range hdr {
				hdr[i] = pkt[i] ^ pad[i]
			}
			kind, n, epoch, err := frame.DecodeHeader(hdr[:])
			if err != nil || kind == frame.KindData || kind > frame.KindMax ||
				epoch != e || frame.EpochHeaderLen+n > len(pkt) {
				continue
			}
			full, err := c.packetPad(e, frame.EpochHeaderLen+n)
			if err != nil {
				c.stats.RejectedParse.Add(1)
				return nil, err
			}
			body := append(c.scratch[:0], pkt[frame.EpochHeaderLen:frame.EpochHeaderLen+n]...)
			c.scratch = body
			for i := range body {
				body[i] ^= full[frame.EpochHeaderLen+i]
			}
			return nil, c.handleControl(kind, e, body)
		}
	}

	// Data trial: unmask the prefix under each candidate epoch and let
	// that epoch's dialect judge the whole packet. A wrong epoch leaves
	// the structural prefix scrambled, so its parse fails immediately.
	prefix := len(pkt)
	if prefix > zoPrefixLen {
		prefix = zoPrefixLen
	}
	for _, e := range cands {
		g, err := c.memoDialect(e, memo)
		if err != nil {
			continue
		}
		pad, err := c.packetPad(e, prefix)
		if err != nil {
			c.stats.RejectedParse.Add(1)
			return nil, err
		}
		trial := append(c.scratch[:0], pkt...)
		c.scratch = trial
		for i := 0; i < prefix; i++ {
			trial[i] ^= pad[i]
		}
		c.mu.Lock()
		r := c.mrng.Split()
		c.mu.Unlock()
		// The parser copies terminal content out of the trial buffer,
		// so reusing scratch for the next packet cannot corrupt a
		// returned message.
		m, err := wire.Parse(g, trial, r)
		if err != nil {
			continue
		}
		c.advanceHorizon(e)
		c.stats.DataRecv.Add(1)
		return m, nil
	}
	c.stats.RejectedParse.Add(1)
	c.tr.Emit(c.traceID, trace.KindDgramReject, c.horizon.Load(), "parse")
	return nil, fmt.Errorf("dgram: packet of %d bytes decoded under no candidate epoch (horizon %d, window %d)", len(pkt), c.horizon.Load(), c.window)
}
