package dgram

import (
	"fmt"
	"io"
	"testing"

	"protoobf/internal/core"
	"protoobf/internal/frame"
	"protoobf/internal/graph"
	"protoobf/internal/msgtree"
	"protoobf/internal/rng"
)

const beaconSpec = `
protocol beacon;
root seq msg end {
    uint  device 2;
    uint  seqno 4;
    uint  blen 2;
    seq body length(blen) {
        bytes status delim ";" min 1;
    }
    bytes sig end;
}
`

func buildBeacon(s *msgtree.Scope, r *rng.R, seqno uint64) error {
	if err := s.SetUint("device", uint64(r.Intn(1<<16))); err != nil {
		return err
	}
	if err := s.SetUint("seqno", seqno); err != nil {
		return err
	}
	if err := s.SetBytes("status", r.PadBytes(1+r.Intn(12))); err != nil {
		return err
	}
	return s.SetBytes("sig", r.Bytes(r.Intn(8)))
}

func rotation(t *testing.T, seed int64) *core.Rotation {
	t.Helper()
	rot, err := core.NewRotation(beaconSpec, core.ObfuscationOptions{PerNode: 2, Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	return rot
}

func testPair(t *testing.T, opts Options) (*Conn, *Conn) {
	t.Helper()
	a, b, err := Pair(rotation(t, 0xC0FFEE), rotation(t, 0xC0FFEE), opts, opts)
	if err != nil {
		t.Fatal(err)
	}
	return a, b
}

// sendOne composes, sends and returns the snapshot of one message.
func sendOne(t *testing.T, c *Conn, r *rng.R, seqno uint64) map[string]string {
	t.Helper()
	m, err := c.NewMessage()
	if err != nil {
		t.Fatal(err)
	}
	if err := buildBeacon(m.Scope(), r, seqno); err != nil {
		t.Fatal(err)
	}
	snap, err := m.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Send(m); err != nil {
		t.Fatalf("send: %v", err)
	}
	return snap
}

func recvMatch(t *testing.T, c *Conn, want map[string]string) {
	t.Helper()
	got, err := c.Recv()
	if err != nil {
		t.Fatalf("recv: %v", err)
	}
	have, err := got.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if diff := msgtree.SnapshotsEqual(want, have); diff != "" {
		t.Fatalf("differential mismatch: %s", diff)
	}
}

// TestRoundTrip exercises both modes in both directions across manual
// epoch advances: each packet decodes by its own epoch tag (or trial),
// with no stream to follow.
func TestRoundTrip(t *testing.T) {
	for _, zo := range []bool{false, true} {
		t.Run(fmt.Sprintf("zeroOverhead=%v", zo), func(t *testing.T) {
			a, b := testPair(t, Options{ZeroOverhead: zo})
			r := rng.New(7)
			seq := uint64(0)
			for epoch := uint64(0); epoch < 3; epoch++ {
				for i := 0; i < 4; i++ {
					seq++
					recvMatch(t, b, sendOne(t, a, r, seq))
					seq++
					recvMatch(t, a, sendOne(t, b, r, seq))
				}
				if err := a.Advance(epoch + 1); err != nil {
					t.Fatal(err)
				}
				if err := b.Advance(epoch + 1); err != nil {
					t.Fatal(err)
				}
			}
			if got := a.Stats().DataSent; got != seq/2 {
				t.Fatalf("a sent %d data packets, want %d", got, seq/2)
			}
			if a.Stats().Rejects()+b.Stats().Rejects() != 0 {
				t.Fatalf("lossless roundtrip produced rejects: a=%+v b=%+v", a.Stats(), b.Stats())
			}
		})
	}
}

// TestEpochSkewWithinWindow pins the window rule's accept side: a
// receiver far ahead still decodes packets up to exactly W epochs
// behind its horizon, without regressing it.
func TestEpochSkewWithinWindow(t *testing.T) {
	a, b := testPair(t, Options{Window: 4})
	r := rng.New(11)
	if err := b.Advance(10); err != nil {
		t.Fatal(err)
	}
	if err := a.Advance(6); err != nil { // 10 - 6 = W: last acceptable
		t.Fatal(err)
	}
	recvMatch(t, b, sendOne(t, a, r, 1))
	if got := b.Horizon(); got != 10 {
		t.Fatalf("horizon regressed to %d after in-window stale packet", got)
	}
	if rej := b.Stats().Rejects(); rej != 0 {
		t.Fatalf("in-window packet rejected: %d", rej)
	}
}

// TestEpochWindowStaleReject is the satellite edge case: a packet from
// epoch horizon−W−1 is rejected and counted, and the session keeps
// decoding in-window traffic afterwards.
func TestEpochWindowStaleReject(t *testing.T) {
	a, b := testPair(t, Options{Window: 4})
	r := rng.New(13)
	if err := b.Advance(10); err != nil {
		t.Fatal(err)
	}
	if err := a.Advance(5); err != nil { // 10 - 5 = W+1: one too old
		t.Fatal(err)
	}
	sendOne(t, a, r, 1) // rejected by b
	if err := a.Advance(10); err != nil {
		t.Fatal(err)
	}
	recvMatch(t, b, sendOne(t, a, r, 2)) // Recv skips the stale packet
	s := b.Stats()
	if s.RejectedStale != 1 {
		t.Fatalf("stale rejects = %d, want 1 (stats %+v)", s.RejectedStale, s)
	}
	if s.DataRecv != 1 {
		t.Fatalf("data received = %d, want 1", s.DataRecv)
	}
}

// sink captures written packets without delivering them anywhere, to
// hand-feed a receiver's Decode.
type sink struct{ pkts [][]byte }

func (s *sink) Write(p []byte) (int, error) {
	s.pkts = append(s.pkts, append([]byte(nil), p...))
	return len(p), nil
}
func (s *sink) Read(p []byte) (int, error) { return 0, io.EOF }

// TestEpochWindowFutureReject pins the other edge: a packet more than W
// epochs ahead of the horizon is rejected and counted as future.
func TestEpochWindowFutureReject(t *testing.T) {
	tap := &sink{}
	a, err := NewConn(tap, rotation(t, 0xC0FFEE), Options{Window: 4})
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Advance(5); err != nil { // receiver horizon 0, W=4: 5 is too far
		t.Fatal(err)
	}
	r := rng.New(17)
	sendOne(t, a, r, 1)
	pa, _ := NewPair()
	b, err := NewConn(pa, rotation(t, 0xC0FFEE), Options{Window: 4})
	if err != nil {
		t.Fatal(err)
	}
	if m, err := b.Decode(tap.pkts[0]); m != nil || err == nil {
		t.Fatalf("future packet decoded: m=%v err=%v", m, err)
	}
	if s := b.Stats(); s.RejectedFuture != 1 {
		t.Fatalf("future rejects = %d, want 1 (stats %+v)", s.RejectedFuture, s)
	}
}

// TestZeroOverheadOutOfWindow: in zero-overhead mode an out-of-window
// packet has no readable epoch tag — it simply decodes under no
// candidate and is counted as a parse reject.
func TestZeroOverheadOutOfWindow(t *testing.T) {
	tap := &sink{}
	a, err := NewConn(tap, rotation(t, 0xC0FFEE), Options{Window: 2, ZeroOverhead: true})
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Advance(8); err != nil {
		t.Fatal(err)
	}
	r := rng.New(19)
	sendOne(t, a, r, 1)
	pa, _ := NewPair()
	b, err := NewConn(pa, rotation(t, 0xC0FFEE), Options{Window: 2, ZeroOverhead: true})
	if err != nil {
		t.Fatal(err)
	}
	if m, err := b.Decode(tap.pkts[0]); m != nil || err == nil {
		t.Fatalf("out-of-window zero-overhead packet decoded: m=%v err=%v", m, err)
	}
	if s := b.Stats(); s.RejectedParse != 1 {
		t.Fatalf("parse rejects = %d, want 1 (stats %+v)", s.RejectedParse, s)
	}
}

// TestRekeyIdempotent is the satellite edge case: the redundant rekey
// burst applies the boundary exactly once, counting the extra copies
// as duplicates, and traffic under the new family decodes.
func TestRekeyIdempotent(t *testing.T) {
	for _, zo := range []bool{false, true} {
		t.Run(fmt.Sprintf("zeroOverhead=%v", zo), func(t *testing.T) {
			a, b := testPair(t, Options{ZeroOverhead: zo, RekeyRedundancy: 3})
			r := rng.New(23)
			recvMatch(t, b, sendOne(t, a, r, 1))
			from, err := a.Rekey(0xFEED)
			if err != nil {
				t.Fatal(err)
			}
			if from != 1 {
				t.Fatalf("rekey boundary = %d, want 1", from)
			}
			// The next data message flushes the three control copies
			// through b's receive loop.
			recvMatch(t, b, sendOne(t, a, r, 2))
			s := b.Stats()
			if s.RekeysApplied != 1 {
				t.Fatalf("rekeys applied = %d, want 1 (stats %+v)", s.RekeysApplied, s)
			}
			if s.RekeyDups != 2 {
				t.Fatalf("rekey dups = %d, want 2 (stats %+v)", s.RekeyDups, s)
			}
			if b.Horizon() != from {
				t.Fatalf("receiver horizon = %d, want %d", b.Horizon(), from)
			}
			// And the new family carries traffic both ways.
			recvMatch(t, a, sendOne(t, b, r, 3))
		})
	}
}

// TestCoverDiscarded is the satellite edge case: cover packets are
// discarded and counted by receivers in both modes.
func TestCoverDiscarded(t *testing.T) {
	for _, zo := range []bool{false, true} {
		t.Run(fmt.Sprintf("zeroOverhead=%v", zo), func(t *testing.T) {
			a, b := testPair(t, Options{ZeroOverhead: zo})
			r := rng.New(29)
			for i := 0; i < 3; i++ {
				if err := a.SendCover(); err != nil {
					t.Fatal(err)
				}
			}
			recvMatch(t, b, sendOne(t, a, r, 1))
			if got := b.Stats().CoverDropped; got != 3 {
				t.Fatalf("covers dropped = %d, want 3", got)
			}
			if got := a.Stats().CoverSent; got != 3 {
				t.Fatalf("covers sent = %d, want 3", got)
			}
			if b.Stats().DataRecv != 1 {
				t.Fatalf("data packet lost behind covers")
			}
		})
	}
}

// TestZeroOverheadAddsNoBytes proves the mode's claim from the byte
// counters: in zero-overhead mode data packets add exactly 0 bytes on
// the wire; in normal mode exactly the 12-byte header each.
func TestZeroOverheadAddsNoBytes(t *testing.T) {
	for _, zo := range []bool{false, true} {
		t.Run(fmt.Sprintf("zeroOverhead=%v", zo), func(t *testing.T) {
			a, b := testPair(t, Options{ZeroOverhead: zo})
			r := rng.New(31)
			const n = 20
			for i := uint64(1); i <= n; i++ {
				recvMatch(t, b, sendOne(t, a, r, i))
			}
			s := a.Stats()
			want := uint64(0)
			if !zo {
				want = n * frame.EpochHeaderLen
			}
			if got := s.OverheadBytes(); got != want {
				t.Fatalf("overhead = %d bytes over %d packets, want %d", got, s.DataSent, want)
			}
			if zo && s.ZeroOverheadSent != n {
				t.Fatalf("zero-overhead sent = %d, want %d", s.ZeroOverheadSent, n)
			}
		})
	}
}

// TestBatchRoundTrip drives the batch fast paths end to end over the
// in-memory pair, which implements both batch interfaces.
func TestBatchRoundTrip(t *testing.T) {
	for _, zo := range []bool{false, true} {
		t.Run(fmt.Sprintf("zeroOverhead=%v", zo), func(t *testing.T) {
			a, b := testPair(t, Options{ZeroOverhead: zo})
			r := rng.New(37)
			const n = 12
			msgs := make([]*msgtree.Message, n)
			want := make([]map[string]string, n)
			for i := range msgs {
				m, err := a.NewMessage()
				if err != nil {
					t.Fatal(err)
				}
				if err := buildBeacon(m.Scope(), r, uint64(i)); err != nil {
					t.Fatal(err)
				}
				snap, err := m.Snapshot()
				if err != nil {
					t.Fatal(err)
				}
				msgs[i], want[i] = m, snap
			}
			if err := a.SendBatch(msgs); err != nil {
				t.Fatal(err)
			}
			var got []*msgtree.Message
			for len(got) < n {
				batch, err := b.RecvBatch(n)
				if err != nil {
					t.Fatal(err)
				}
				got = append(got, batch...)
			}
			if len(got) != n {
				t.Fatalf("received %d messages, want %d", len(got), n)
			}
			for i, m := range got {
				have, err := m.Snapshot()
				if err != nil {
					t.Fatal(err)
				}
				if diff := msgtree.SnapshotsEqual(want[i], have); diff != "" {
					t.Fatalf("message %d: %s", i, diff)
				}
			}
			if a.Stats().DataSent != n {
				t.Fatalf("batch sent = %d, want %d", a.Stats().DataSent, n)
			}
		})
	}
}

// TestMaxPacketRejected: oversized messages fail at Send — the layer
// never fragments.
func TestMaxPacketRejected(t *testing.T) {
	a, _ := testPair(t, Options{MaxPacket: 64})
	m, err := a.NewMessage()
	if err != nil {
		t.Fatal(err)
	}
	s := m.Scope()
	if err := s.SetUint("device", 1); err != nil {
		t.Fatal(err)
	}
	if err := s.SetUint("seqno", 2); err != nil {
		t.Fatal(err)
	}
	if err := s.SetBytes("status", rng.New(1).PadBytes(16)); err != nil {
		t.Fatal(err)
	}
	if err := s.SetBytes("sig", make([]byte, 200)); err != nil {
		t.Fatal(err)
	}
	if err := a.Send(m); err == nil {
		t.Fatal("oversized message sent without error")
	}
}

// TestZeroOverheadNeedsPacketPadder: zero-overhead mode is refused at
// construction when the Versioner cannot derive packet pads.
func TestZeroOverheadNeedsPacketPadder(t *testing.T) {
	rot := rotation(t, 1)
	g, err := rot.Graph(0)
	if err != nil {
		t.Fatal(err)
	}
	pa, _ := NewPair()
	if _, err := NewConn(pa, fixedVersioner{g: g}, Options{ZeroOverhead: true}); err == nil {
		t.Fatal("zero-overhead accepted a Versioner without PacketPad")
	}
}

type fixedVersioner struct{ g *graph.Graph }

func (f fixedVersioner) Graph(uint64) (*graph.Graph, error) { return f.g, nil }

// TestLossySoak is the headline guarantee: 5% loss plus reordering and
// duplication, mid-stream rekeys and covers, and every packet that
// arrives either decodes to exactly what was sent or is dropped and
// counted — never a crash, never a corrupted message.
func TestLossySoak(t *testing.T) {
	for _, zo := range []bool{false, true} {
		t.Run(fmt.Sprintf("zeroOverhead=%v", zo), func(t *testing.T) {
			pa, pb := NewPair()
			lossy := NewLossy(pa, LossyConfig{LossPct: 5, DupPct: 3, ReorderPct: 10, Seed: 0x50AC})
			a, err := NewConn(lossy, rotation(t, 0xC0FFEE), Options{ZeroOverhead: zo})
			if err != nil {
				t.Fatal(err)
			}
			b, err := NewConn(pb, rotation(t, 0xC0FFEE), Options{ZeroOverhead: zo})
			if err != nil {
				t.Fatal(err)
			}
			r := rng.New(41)
			const n = 300
			want := make(map[uint64]map[string]string, n)
			for i := uint64(1); i <= n; i++ {
				want[i] = sendOne(t, a, r, i)
				if i%100 == 0 {
					if _, err := a.Rekey(int64(i)); err != nil {
						t.Fatalf("rekey at %d: %v", i, err)
					}
				}
				if i%40 == 0 {
					if err := a.SendCover(); err != nil {
						t.Fatal(err)
					}
				}
			}
			lossy.Close() // flush held packet, EOF b after drain
			decoded := 0
			for {
				m, err := b.Recv()
				if err == io.EOF {
					break
				}
				if err != nil {
					t.Fatalf("recv: %v", err)
				}
				have, err := m.Snapshot()
				if err != nil {
					t.Fatal(err)
				}
				sc := m.Scope()
				seq, err := sc.GetUint("seqno")
				if err != nil {
					t.Fatal(err)
				}
				snap, ok := want[seq]
				if !ok {
					t.Fatalf("received unknown seqno %d", seq)
				}
				if diff := msgtree.SnapshotsEqual(snap, have); diff != "" {
					t.Fatalf("seqno %d corrupted in transit: %s", seq, diff)
				}
				decoded++
			}
			s := b.Stats()
			t.Logf("zo=%v: sent=%d decoded=%d dropped=%d duped=%d reordered=%d; recv stats: %+v",
				zo, n, decoded, lossy.Dropped, lossy.Reordered, lossy.Duped, s)
			// At 5% loss roughly 95% should land; demand at least 85%
			// so the assertion is about systemic failure, not one seed.
			if decoded < n*85/100 {
				t.Fatalf("decoded only %d of %d messages", decoded, n)
			}
			if s.RekeysApplied == 0 {
				t.Fatal("no rekey survived the burst redundancy")
			}
		})
	}
}
