// Package dgram is the packet-oriented session layer: obfuscated
// message sessions over lossy, reordering datagram transports (UDP,
// in-memory packet pairs) where internal/session assumes an ordered
// byte stream.
//
// Every datagram is self-contained. A normal-mode packet is one epoch
// frame — [4-byte kind|length][8-byte epoch][payload] — so the receiver
// decodes each packet independently with the dialect its header names.
// There is no epoch-follow rule and no reassembly: instead of following
// the peer's epochs, the receiver accepts any packet whose epoch lies
// within a window W of its receive horizon (the highest epoch it has
// successfully decoded, floored by its own schedule), tolerating up to
// W epochs of reordering and loss skew in either direction. Packets
// outside the window are dropped and counted, never fatal: on a
// datagram link a bad packet is noise, not a broken session.
//
// The control plane is idempotent because any packet can be lost:
// rekeys are proposed as a redundant burst of identical control packets
// and applied exactly once (duplicates are counted and discarded);
// there is no ack. Cover packets are chaff every receiver discards.
//
// Zero-overhead mode (see zerooverhead.go) removes even the 12-byte
// header from data packets: the wire packet is exactly the obfuscated
// payload, with only a structural prefix masked, and the receiver
// trial-decodes against the candidate epochs of its window.
package dgram

import (
	"errors"
	"fmt"
	"io"
	"sync"
	"sync/atomic"

	"protoobf/internal/frame"
	"protoobf/internal/graph"
	"protoobf/internal/lru"
	"protoobf/internal/metrics"
	"protoobf/internal/msgtree"
	"protoobf/internal/rng"
	"protoobf/internal/session"
	"protoobf/internal/session/sched"
	"protoobf/internal/trace"
	"protoobf/internal/wire"
)

// PacketPadder is the Versioner extension zero-overhead mode requires:
// a deterministic per-(family, epoch) pad both peers derive from their
// shared secret, XORed over packet bytes. core.View implements it under
// a domain string separate from the stream layer's control pad.
type PacketPadder interface {
	PacketPad(epoch uint64, n int) []byte
}

// BatchWriter is the optional transport extension behind SendBatch:
// one call delivers many packets, amortizing per-packet transport
// overhead. The in-memory packet pair implements it; transports
// without it fall back to one Write per packet.
type BatchWriter interface {
	WritePacketBatch(pkts [][]byte) error
}

// BatchReader is the optional transport extension behind RecvBatch: it
// blocks for the first packet, then drains whatever else is queued, up
// to len(bufs) packets, writing packet i into bufs[i] and its length
// into sizes[i]. Transports without it deliver one packet per RecvBatch.
type BatchReader interface {
	ReadPacketBatch(bufs [][]byte, sizes []int) (int, error)
}

// DefaultEpochWindow is the default decode window W: packets up to W
// epochs behind or ahead of the receive horizon decode; anything
// further is dropped and counted. Cooperating peers drift by at most
// the reorder depth of the link plus clock skew, so a small window is
// generous — and in zero-overhead mode each extra epoch costs the
// receiver one more trial decode on undecodable packets.
const DefaultEpochWindow = 4

// DefaultMaxPacket bounds one datagram. It comfortably covers an
// Ethernet-ish MTU with obfuscation growth; transports with jumbo
// frames (or the in-memory pair) can raise it up to frame.MaxFrame.
const DefaultMaxPacket = 2048

// DefaultRekeyRedundancy is how many identical copies of a rekey
// control packet a burst sends. The handshake has no ack, so
// redundancy is what rides out loss: at 5% independent loss, three
// copies fail together about once per 8000 rekeys.
const DefaultRekeyRedundancy = 3

// Options configures a datagram session. The zero value gives a
// manually rotated normal-mode session with default bounds.
type Options struct {
	// Schedule derives the send epoch from coarse wall-clock time,
	// exactly as in the stream layer: the horizon adopts the schedule
	// epoch on every Send/Recv/NewMessage. Nil means epochs move only
	// via Advance or by decoding a peer packet from a higher epoch.
	Schedule *sched.Scheduler

	// Window is the epoch decode window W (0 = DefaultEpochWindow).
	Window uint64

	// ZeroOverhead strips the 12-byte header from data packets: the
	// wire packet is the obfuscated payload with a masked structural
	// prefix, 0 added bytes. Requires a Versioner implementing
	// PacketPadder. Control packets keep full treatment plus random
	// padding. Both peers must agree on the mode.
	ZeroOverhead bool

	// MaxPacket bounds one datagram in bytes (0 = DefaultMaxPacket,
	// capped at frame.MaxFrame). Messages that serialize past the
	// bound are rejected at Send — the layer never fragments.
	MaxPacket int

	// CacheWindow bounds the per-connection dialect cache exactly as
	// in the stream layer: 0 means session.DefaultCacheWindow,
	// negative means unbounded.
	CacheWindow int

	// RekeyRedundancy is how many copies of each rekey control packet
	// Rekey sends (0 = DefaultRekeyRedundancy).
	RekeyRedundancy int

	// Stats, when non-nil, receives the session's packet activity —
	// how the endpoint layer aggregates per-session datagram events
	// into one observable counter block.
	Stats *metrics.DgramCounters

	// Trace, when non-nil, receives the session's lifecycle events
	// (packet rejects, cover packets), labeled TraceID. A nil ring
	// disables tracing at nil-check cost.
	Trace   *trace.Ring
	TraceID uint64
}

// Conn is an obfuscated message session over a packet transport: Send
// writes one datagram per message, Recv decodes each incoming datagram
// independently by its epoch (within the window), and control packets
// (idempotent rekey bursts, cover chaff) ride the same reserved frame
// kinds as the stream layer.
//
// The transport contract is datagram semantics over io.ReadWriter: one
// Write sends one packet, one Read returns one whole packet (a
// connected net.UDPConn and the in-memory packet pair both satisfy
// it). Conn is safe for concurrent use.
type Conn struct {
	rw       io.ReadWriter
	versions session.Versioner

	window     uint64
	zo         bool
	maxPacket  int
	redundancy int
	schedule   *sched.Scheduler
	stats      *metrics.DgramCounters
	tr         *trace.Ring
	traceID    uint64

	// horizon is the receive/send anchor: the highest epoch decoded or
	// scheduled so far. Monotonic, lock-free reads.
	horizon atomic.Uint64

	mu       sync.Mutex // guards dialects, byGraph, pads, mrng, lastRekey
	dialects *lru.Cache[uint64, *graph.Graph]
	byGraph  map[*graph.Graph]uint64
	pads     *lru.Cache[uint64, []byte] // zero-overhead packet pads per epoch
	mrng     *rng.R
	// lastRekey records the highest rekey boundary applied (by either
	// side), the idempotence anchor: a control packet proposing a
	// boundary at or below it is a duplicate, discarded and counted.
	lastRekey *rekeyPoint

	smu  sync.Mutex // serializes Send's buffer reuse
	wbuf []byte

	pmu     sync.Mutex // serializes Recv's buffer reuse and trial scratch
	rbuf    []byte
	scratch []byte
	// batch receive scratch, allocated on first RecvBatch over a
	// BatchReader transport (guarded by pmu).
	bbufs  [][]byte
	bsizes []int
}

type rekeyPoint struct {
	from uint64
	seed int64
}

// NewConn opens a datagram session over rw. With a Schedule the
// horizon starts at the schedule's current epoch; otherwise at 0. The
// starting dialect is compiled eagerly so configuration errors surface
// here, not on the first packet.
func NewConn(rw io.ReadWriter, versions session.Versioner, opts Options) (*Conn, error) {
	window := opts.Window
	if window == 0 {
		window = DefaultEpochWindow
	}
	maxPacket := opts.MaxPacket
	if maxPacket == 0 {
		maxPacket = DefaultMaxPacket
	}
	if maxPacket < frame.EpochHeaderLen+1 || maxPacket > frame.MaxFrame {
		return nil, fmt.Errorf("dgram: max packet %d outside [%d, %d]", maxPacket, frame.EpochHeaderLen+1, frame.MaxFrame)
	}
	if opts.ZeroOverhead {
		if _, ok := versions.(PacketPadder); !ok {
			return nil, errors.New("dgram: zero-overhead mode needs a Versioner with PacketPad (a rotation view; static sessions cannot)")
		}
	}
	cacheWindow := opts.CacheWindow
	if cacheWindow == 0 {
		cacheWindow = session.DefaultCacheWindow
	} else if cacheWindow < 0 {
		cacheWindow = 0 // lru: unbounded
	}
	// The dialect cache must hold the whole decode window around the
	// horizon or in-window packets would thrash it.
	if cacheWindow != 0 && uint64(cacheWindow) < 2*window+1 {
		cacheWindow = int(2*window + 1)
	}
	redundancy := opts.RekeyRedundancy
	if redundancy <= 0 {
		redundancy = DefaultRekeyRedundancy
	}
	stats := opts.Stats
	if stats == nil {
		stats = &metrics.DgramCounters{}
	}
	c := &Conn{
		rw:         rw,
		versions:   versions,
		window:     window,
		zo:         opts.ZeroOverhead,
		maxPacket:  maxPacket,
		redundancy: redundancy,
		schedule:   opts.Schedule,
		stats:      stats,
		tr:         opts.Trace,
		traceID:    opts.TraceID,
		byGraph:    make(map[*graph.Graph]uint64),
		mrng:       rng.New(0xd6a4),
		wbuf:       frame.GetBuffer(),
		rbuf:       make([]byte, maxPacket),
	}
	c.dialects = lru.New[uint64, *graph.Graph](cacheWindow, func(epoch uint64, g *graph.Graph) {
		if c.byGraph[g] == epoch {
			delete(c.byGraph, g)
		}
	})
	c.pads = lru.New[uint64, []byte](cacheWindow, nil)
	start := uint64(0)
	if c.schedule != nil {
		start = c.schedule.Epoch()
	}
	if _, err := c.dialect(start); err != nil {
		return nil, err
	}
	c.horizon.Store(start)
	return c, nil
}

// Pair connects two in-memory datagram peers over a lossless packet
// pair, each speaking the dialect family of its Versioner — the
// datagram analogue of session.PairOpts.
func Pair(a, b session.Versioner, aopts, bopts Options) (*Conn, *Conn, error) {
	pa, pb := NewPair()
	x, err := NewConn(pa, a, aopts)
	if err != nil {
		return nil, nil, err
	}
	y, err := NewConn(pb, b, bopts)
	if err != nil {
		return nil, nil, err
	}
	return x, y, nil
}

// Horizon returns the session's current epoch anchor (lock-free).
func (c *Conn) Horizon() uint64 { return c.horizon.Load() }

// Stats snapshots the session's packet counters.
func (c *Conn) Stats() metrics.DgramStats { return c.stats.Snapshot() }

// ZeroOverhead reports whether the session runs in zero-overhead mode.
func (c *Conn) ZeroOverhead() bool { return c.zo }

// Release returns the session's pooled buffers to the shared pool. The
// session must not be used afterwards.
func (c *Conn) Release() {
	c.smu.Lock()
	frame.PutBuffer(c.wbuf)
	c.wbuf = nil
	c.smu.Unlock()
}

// Close closes the underlying transport (when it implements io.Closer)
// and releases the session's buffers.
func (c *Conn) Close() error {
	var err error
	if cl, ok := c.rw.(io.Closer); ok {
		err = cl.Close()
	}
	c.Release()
	return err
}

// advanceHorizon raises the horizon monotonically.
func (c *Conn) advanceHorizon(epoch uint64) {
	for {
		cur := c.horizon.Load()
		if epoch <= cur || c.horizon.CompareAndSwap(cur, epoch) {
			return
		}
	}
}

// syncSchedule adopts the schedule's current epoch as the horizon.
// Unlike the stream layer there is no pending-rekey gate: datagram
// rekeys apply immediately (no ack to wait for).
func (c *Conn) syncSchedule() error {
	if c.schedule == nil {
		return nil
	}
	if target := c.schedule.Epoch(); target > c.horizon.Load() {
		if _, err := c.dialect(target); err != nil {
			return err
		}
		c.advanceHorizon(target)
	}
	return nil
}

// dialect fetches the graph of epoch through the bounded cache,
// recording it so Send can recover the epoch a message was composed
// for. Compilation happens outside c.mu.
func (c *Conn) dialect(epoch uint64) (*graph.Graph, error) {
	c.mu.Lock()
	if g, ok := c.dialects.Get(epoch); ok {
		c.mu.Unlock()
		return g, nil
	}
	c.mu.Unlock()
	g, err := c.versions.Graph(epoch)
	if err != nil {
		return nil, fmt.Errorf("dgram: epoch %d: %w", epoch, err)
	}
	c.mu.Lock()
	c.dialects.Put(epoch, g)
	c.byGraph[g] = epoch
	c.mu.Unlock()
	return g, nil
}

// NewMessage returns an empty message bound to the current horizon's
// dialect. Like the stream layer, the binding survives a concurrent
// epoch advance: Send tags the packet with the epoch the message was
// composed for.
func (c *Conn) NewMessage() (*msgtree.Message, error) {
	if err := c.syncSchedule(); err != nil {
		return nil, err
	}
	g, err := c.dialect(c.horizon.Load())
	if err != nil {
		return nil, err
	}
	c.mu.Lock()
	r := c.mrng.Split()
	c.mu.Unlock()
	return msgtree.New(g, r), nil
}

// Advance raises the horizon to epoch, compiling its dialect first.
func (c *Conn) Advance(epoch uint64) error {
	if _, err := c.dialect(epoch); err != nil {
		return err
	}
	c.advanceHorizon(epoch)
	return nil
}

// Send serializes m into one datagram under the epoch whose dialect
// composed it and writes it. Steady-state sends reuse the connection's
// buffer and do not allocate. A message larger than MaxPacket (after
// obfuscation and framing) is rejected — the layer never fragments.
func (c *Conn) Send(m *msgtree.Message) error {
	if err := c.syncSchedule(); err != nil {
		return err
	}
	c.mu.Lock()
	epoch, ok := c.byGraph[m.G]
	c.mu.Unlock()
	if !ok {
		return fmt.Errorf("dgram: message graph %q does not belong to this session (or its epoch left the cache window)", m.G.ProtocolName)
	}
	c.smu.Lock()
	defer c.smu.Unlock()
	pkt, err := c.encodeData(m, epoch)
	if err != nil {
		return err
	}
	if _, err := c.rw.Write(pkt); err != nil {
		return err
	}
	c.countDataSent(1, uint64(len(pkt)))
	return nil
}

// countDataSent tallies n data packets totalling wireBytes on the
// wire. The payload-byte tally follows from the mode's fixed per-packet
// overhead: the whole packet in zero-overhead mode, wire minus the
// header otherwise.
func (c *Conn) countDataSent(n, wireBytes uint64) {
	c.stats.DataSent.Add(n)
	c.stats.DataWireBytes.Add(wireBytes)
	if c.zo {
		c.stats.ZeroOverheadSent.Add(n)
		c.stats.DataPayloadBytes.Add(wireBytes)
	} else {
		c.stats.DataPayloadBytes.Add(wireBytes - n*frame.EpochHeaderLen)
	}
}

// SendBatch serializes and sends many messages under one lock
// acquisition, staging all packets and delivering them in one
// WritePacketBatch call when the transport supports it. The per-batch
// dialect and pad lookups are amortized: consecutive messages of one
// epoch (the common case) resolve the epoch's state once.
func (c *Conn) SendBatch(ms []*msgtree.Message) error {
	if len(ms) == 0 {
		return nil
	}
	if err := c.syncSchedule(); err != nil {
		return err
	}
	// One lock round for all epoch bindings.
	epochs := make([]uint64, len(ms))
	c.mu.Lock()
	for i, m := range ms {
		e, ok := c.byGraph[m.G]
		if !ok {
			c.mu.Unlock()
			return fmt.Errorf("dgram: message %d: graph %q does not belong to this session", i, m.G.ProtocolName)
		}
		epochs[i] = e
	}
	c.mu.Unlock()
	c.smu.Lock()
	defer c.smu.Unlock()
	bw, batched := c.rw.(BatchWriter)
	var pkts [][]byte
	var arena []byte
	if batched {
		pkts = make([][]byte, 0, len(ms))
		arena = frame.GetBuffer()
		defer func() { frame.PutBuffer(arena) }()
	}
	sent, wireBytes := uint64(0), uint64(0)
	lens := make([]int, 0, len(ms))
	for i, m := range ms {
		pkt, err := c.encodeData(m, epochs[i])
		if err != nil {
			return err
		}
		if batched {
			// Stage a copy in the arena; slice views are taken after the
			// arena stops growing (growth would invalidate them).
			arena = append(arena, pkt...)
			lens = append(lens, len(pkt))
		} else {
			if _, err := c.rw.Write(pkt); err != nil {
				return err
			}
			sent++
			wireBytes += uint64(len(pkt))
		}
	}
	if batched {
		// Slice views are cut only now, against the final backing array.
		off := 0
		for _, n := range lens {
			pkts = append(pkts, arena[off:off+n])
			off += n
			wireBytes += uint64(n)
		}
		if err := bw.WritePacketBatch(pkts); err != nil {
			return err
		}
		sent = uint64(len(pkts))
	}
	c.countDataSent(sent, wireBytes)
	c.stats.SendBatchSizes.Observe(sent)
	return nil
}

// encodeData builds one data packet for m at epoch into the send
// buffer. Callers hold smu; the returned slice is valid until the next
// encode.
func (c *Conn) encodeData(m *msgtree.Message, epoch uint64) ([]byte, error) {
	if c.zo {
		return c.encodeDataZO(m, epoch)
	}
	if cap(c.wbuf) < frame.EpochHeaderLen {
		c.wbuf = make([]byte, 0, 512)
	}
	out, err := wire.SerializeAppend(m, c.wbuf[:frame.EpochHeaderLen])
	if err != nil {
		return nil, err
	}
	c.wbuf = out
	if len(out) > c.maxPacket {
		return nil, fmt.Errorf("dgram: message of %d bytes exceeds max packet %d", len(out), c.maxPacket)
	}
	if err := frame.EncodeHeader(out[:frame.EpochHeaderLen], frame.KindData, epoch, len(out)-frame.EpochHeaderLen); err != nil {
		return nil, err
	}
	return out, nil
}

// Rekey switches the dialect family to seed from the next epoch onward
// and tells the peer with a redundant burst of identical control
// packets. Unlike the stream layer's handshake there is no ack: the
// switch applies locally at once, the burst rides out loss, and the
// receiver applies the boundary idempotently however many copies
// arrive. Packets of pre-boundary epochs still decode on both sides
// (the family is epoch-ranged), so data in flight across the boundary
// survives. The caller is the single initiator by convention: datagram
// sessions resolve no proposal races, so only one side should rekey.
//
// Rekeying mutates the session's Versioner; like the stream layer, a
// rekeying Conn must own its view exclusively.
func (c *Conn) Rekey(seed int64) (uint64, error) {
	rk, ok := c.versions.(session.Rekeyer)
	if !ok {
		return 0, errors.New("dgram: versioner does not support rekeying")
	}
	if err := c.syncSchedule(); err != nil {
		return 0, err
	}
	c.mu.Lock()
	from := c.horizon.Load() + 1
	if c.lastRekey != nil && from <= c.lastRekey.from {
		from = c.lastRekey.from + 1
	}
	c.mu.Unlock()
	if err := rk.Rekey(from, seed); err != nil {
		return 0, fmt.Errorf("dgram: rekey: %w", err)
	}
	c.dropEpochStateFrom(from)
	if _, err := c.dialect(from); err != nil {
		// Roll the family switch back; the peer never heard of it.
		type dropper interface {
			DropRekey(from uint64, seed int64) error
		}
		if d, ok := c.versions.(dropper); ok {
			if rerr := d.DropRekey(from, seed); rerr == nil {
				c.dropEpochStateFrom(from)
			}
		}
		return 0, err
	}
	c.mu.Lock()
	c.lastRekey = &rekeyPoint{from: from, seed: seed}
	c.mu.Unlock()
	c.stats.RekeysApplied.Add(1)
	// The burst is sent after the local switch: a copy the peer decodes
	// applies the same boundary, and our post-boundary data packets are
	// already valid. Copies after the first failing to write is not
	// fatal — redundancy is best-effort by design.
	var firstErr error
	for i := 0; i < c.redundancy; i++ {
		if err := c.sendRekeyPacket(from, seed); err != nil {
			if firstErr == nil {
				firstErr = err
			}
			continue
		}
		c.stats.ControlSent.Add(1)
	}
	c.advanceHorizon(from)
	return from, firstErr
}

// sendRekeyPacket writes one rekey control packet: the shared
// magic/epoch/seed payload (masked with the control pad of the
// pre-boundary epoch, exactly as on streams) plus random padding so
// the rekey burst does not telegraph itself by a fixed packet size.
func (c *Conn) sendRekeyPacket(from uint64, seed int64) error {
	hdrEpoch := from - 1
	var inner [frame.ControlLen]byte
	frame.EncodeControl(inner[:], from, seed)
	c.maskControl(hdrEpoch, inner[:])
	return c.sendControlPacket(frame.KindRekeyPropose, hdrEpoch, inner[:])
}

// SendCover writes one cover (decoy) packet: random chaff of a random
// plausible size under the current horizon's epoch. Every receiver
// discards (and counts) covers, so covers are always safe to emit.
func (c *Conn) SendCover() error {
	if err := c.syncSchedule(); err != nil {
		return err
	}
	c.mu.Lock()
	n := 16 + c.mrng.Pick(144)
	chaff := c.mrng.Bytes(n)
	c.mu.Unlock()
	if err := c.sendControlPacket(frame.KindCover, c.horizon.Load(), chaff); err != nil {
		return err
	}
	c.stats.ControlSent.Add(1)
	c.stats.CoverSent.Add(1)
	c.tr.Emit(c.traceID, trace.KindCoverBurst, c.horizon.Load(), "")
	return nil
}

// sendControlPacket builds and writes one control packet: plaintext
// header plus payload plus random padding in normal mode, or the
// fully packet-pad-masked equivalent in zero-overhead mode. The
// padding varies the packet size; the header's length word names the
// true payload length, so receivers ignore the tail.
func (c *Conn) sendControlPacket(kind byte, hdrEpoch uint64, payload []byte) error {
	c.smu.Lock()
	defer c.smu.Unlock()
	pkt := c.wbuf[:0]
	if cap(pkt) < frame.EpochHeaderLen {
		pkt = make([]byte, 0, 512)
	}
	pkt = pkt[:frame.EpochHeaderLen]
	if err := frame.EncodeHeader(pkt, kind, hdrEpoch, len(payload)); err != nil {
		return err
	}
	pkt = append(pkt, payload...)
	c.mu.Lock()
	padLen := c.mrng.Pick(64)
	pad := c.mrng.Bytes(padLen)
	c.mu.Unlock()
	if len(pkt)+padLen <= c.maxPacket {
		pkt = append(pkt, pad...)
	}
	c.wbuf = pkt
	if len(pkt) > c.maxPacket {
		return fmt.Errorf("dgram: control packet of %d bytes exceeds max packet %d", len(pkt), c.maxPacket)
	}
	if c.zo {
		c.maskPacketPrefix(hdrEpoch, pkt, frame.EpochHeaderLen+len(payload))
	}
	_, err := c.rw.Write(pkt)
	return err
}

// maskControl XORs the stream layer's control pad over p — the inner
// masking layer shared by both transports. Without a Padder the
// payload travels unmasked (acceptable only on protected links).
func (c *Conn) maskControl(epoch uint64, p []byte) {
	pd, ok := c.versions.(session.Padder)
	if !ok {
		return
	}
	pad := pd.ControlPad(epoch, len(p))
	for i := range p {
		p[i] ^= pad[i]
	}
}

// Recv reads datagrams until one decodes to a data message. Control
// packets are handled along the way; packets that fail any check —
// outside the epoch window, malformed, undecodable — are counted and
// dropped, and the loop keeps reading: on a lossy link a bad packet
// must not kill the session. Only transport errors surface.
func (c *Conn) Recv() (*msgtree.Message, error) {
	for {
		if err := c.syncSchedule(); err != nil {
			return nil, err
		}
		c.pmu.Lock()
		n, err := c.rw.Read(c.rbuf)
		if err != nil {
			c.pmu.Unlock()
			return nil, err
		}
		m, _ := c.decodeLocked(c.rbuf[:n], nil)
		c.pmu.Unlock()
		if m != nil {
			return m, nil
		}
	}
}

// RecvBatch reads up to max packets in one transport call (blocking
// for the first) and decodes them with the per-batch dialect lookup
// amortized, returning the data messages among them in arrival order.
// Transports without BatchReader deliver one message per call. An
// empty result with a nil error means the batch held only control or
// rejected packets.
func (c *Conn) RecvBatch(max int) ([]*msgtree.Message, error) {
	if max <= 0 {
		max = 1
	}
	br, ok := c.rw.(BatchReader)
	if !ok {
		m, err := c.Recv()
		if err != nil {
			return nil, err
		}
		return []*msgtree.Message{m}, nil
	}
	if err := c.syncSchedule(); err != nil {
		return nil, err
	}
	c.pmu.Lock()
	defer c.pmu.Unlock()
	if len(c.bbufs) < max {
		c.bbufs = make([][]byte, max)
		for i := range c.bbufs {
			c.bbufs[i] = make([]byte, c.maxPacket)
		}
		c.bsizes = make([]int, max)
	}
	n, err := br.ReadPacketBatch(c.bbufs[:max], c.bsizes[:max])
	if err != nil {
		return nil, err
	}
	c.stats.RecvBatchSizes.Observe(uint64(n))
	var out []*msgtree.Message
	var memo dialectMemo
	for i := 0; i < n; i++ {
		if m, _ := c.decodeLocked(c.bbufs[i][:c.bsizes[i]], &memo); m != nil {
			out = append(out, m)
		}
	}
	return out, nil
}

// Decode processes one raw packet: a data packet returns its message, a
// control packet is handled and returns (nil, nil), and a rejected
// packet returns (nil, err) after counting the reason. It is the
// packet-level entry point Recv loops over, exported for the adversary
// harness and fuzzers to drive decode behavior directly. Decode may
// modify pkt in place (unmasking).
func (c *Conn) Decode(pkt []byte) (*msgtree.Message, error) {
	c.pmu.Lock()
	defer c.pmu.Unlock()
	return c.decodeLocked(pkt, nil)
}

// dialectMemo caches the last (epoch, graph) resolution within one
// receive batch, so a run of same-epoch packets — the steady state —
// pays one dialect cache lookup, not one per packet.
type dialectMemo struct {
	valid bool
	epoch uint64
	g     *graph.Graph
}

func (c *Conn) memoDialect(epoch uint64, memo *dialectMemo) (*graph.Graph, error) {
	if memo != nil && memo.valid && memo.epoch == epoch {
		return memo.g, nil
	}
	g, err := c.dialect(epoch)
	if err == nil && memo != nil {
		*memo = dialectMemo{valid: true, epoch: epoch, g: g}
	}
	return g, err
}

// decodeLocked is Decode under pmu.
func (c *Conn) decodeLocked(pkt []byte, memo *dialectMemo) (*msgtree.Message, error) {
	if c.zo {
		return c.decodeZO(pkt, memo)
	}
	if len(pkt) < frame.EpochHeaderLen {
		c.stats.RejectedMalformed.Add(1)
		c.tr.Emit(c.traceID, trace.KindDgramReject, 0, "malformed")
		return nil, fmt.Errorf("dgram: packet of %d bytes is shorter than the %d-byte header", len(pkt), frame.EpochHeaderLen)
	}
	kind, n, epoch, err := frame.DecodeHeader(pkt[:frame.EpochHeaderLen])
	if err != nil || kind > frame.KindMax || frame.EpochHeaderLen+n > len(pkt) {
		c.stats.RejectedMalformed.Add(1)
		c.tr.Emit(c.traceID, trace.KindDgramReject, 0, "malformed")
		if err == nil {
			err = fmt.Errorf("dgram: malformed packet header (kind %#02x, length %d of %d bytes)", kind, n, len(pkt))
		}
		return nil, err
	}
	if rejected, err := c.checkWindow(epoch); rejected {
		return nil, err
	}
	body := pkt[frame.EpochHeaderLen : frame.EpochHeaderLen+n]
	if kind != frame.KindData {
		// Bytes past the payload are the control padding; ignored.
		return nil, c.handleControl(kind, epoch, body)
	}
	if len(pkt) != frame.EpochHeaderLen+n {
		// Data packets are never padded: trailing bytes mean tampering
		// or a framing bug, not slack to skip over.
		c.stats.RejectedMalformed.Add(1)
		c.tr.Emit(c.traceID, trace.KindDgramReject, epoch, "malformed")
		return nil, fmt.Errorf("dgram: data packet of %d bytes with %d-byte payload claim", len(pkt), n)
	}
	g, err := c.memoDialect(epoch, memo)
	if err != nil {
		c.stats.RejectedParse.Add(1)
		c.tr.Emit(c.traceID, trace.KindDgramReject, epoch, "parse")
		return nil, err
	}
	c.mu.Lock()
	r := c.mrng.Split()
	c.mu.Unlock()
	m, err := wire.Parse(g, body, r)
	if err != nil {
		c.stats.RejectedParse.Add(1)
		c.tr.Emit(c.traceID, trace.KindDgramReject, epoch, "parse")
		return nil, fmt.Errorf("dgram: epoch %d: %w", epoch, err)
	}
	c.advanceHorizon(epoch)
	c.stats.DataRecv.Add(1)
	return m, nil
}

// checkWindow applies the epoch-window acceptance rule against the
// current horizon, counting the reject when the epoch falls outside.
func (c *Conn) checkWindow(epoch uint64) (rejected bool, err error) {
	h := c.horizon.Load()
	if epoch+c.window < h {
		c.stats.RejectedStale.Add(1)
		c.tr.Emit(c.traceID, trace.KindDgramReject, epoch, "stale")
		return true, fmt.Errorf("dgram: packet epoch %d is %d behind horizon %d (window %d)", epoch, h-epoch, h, c.window)
	}
	if epoch > h+c.window {
		c.stats.RejectedFuture.Add(1)
		c.tr.Emit(c.traceID, trace.KindDgramReject, epoch, "future")
		return true, fmt.Errorf("dgram: packet epoch %d is %d ahead of horizon %d (window %d)", epoch, epoch-h, h, c.window)
	}
	return false, nil
}

// handleControl dispatches one in-window control packet body.
func (c *Conn) handleControl(kind byte, hdrEpoch uint64, body []byte) error {
	switch kind {
	case frame.KindCover:
		c.stats.CoverDropped.Add(1)
		return nil
	case frame.KindRekeyPropose:
		if len(body) != frame.ControlLen {
			c.stats.RejectedMalformed.Add(1)
			c.tr.Emit(c.traceID, trace.KindDgramReject, hdrEpoch, "malformed")
			return fmt.Errorf("dgram: rekey packet with %d-byte payload, want %d", len(body), frame.ControlLen)
		}
		c.maskControl(hdrEpoch, body)
		from, seed, err := frame.DecodeControl(body)
		if err != nil || from == 0 || from != hdrEpoch+1 {
			c.stats.RejectedParse.Add(1)
			c.tr.Emit(c.traceID, trace.KindDgramReject, hdrEpoch, "parse")
			if err == nil {
				err = fmt.Errorf("dgram: rekey boundary %d contradicts packet epoch %d", from, hdrEpoch)
			}
			return err
		}
		return c.handleRekey(from, seed)
	default:
		// The remaining reserved kinds (rekey ack, resume, ticket) are
		// stream-layer machinery with no datagram meaning: reject them
		// countably rather than guessing.
		c.stats.RejectedMalformed.Add(1)
		c.tr.Emit(c.traceID, trace.KindDgramReject, hdrEpoch, "malformed")
		return fmt.Errorf("dgram: frame kind %#02x has no datagram semantics", kind)
	}
}

// handleRekey applies a peer's rekey boundary exactly once. Duplicate
// copies of the burst — and replays of any earlier boundary — are
// counted and discarded, which is what makes redundant proposals safe.
func (c *Conn) handleRekey(from uint64, seed int64) error {
	rk, ok := c.versions.(session.Rekeyer)
	if !ok {
		c.stats.RejectedMalformed.Add(1)
		return errors.New("dgram: peer requested rekey but versioner cannot rekey")
	}
	c.mu.Lock()
	if lr := c.lastRekey; lr != nil && from <= lr.from {
		c.mu.Unlock()
		c.stats.RekeyDups.Add(1)
		return nil
	}
	c.mu.Unlock()
	if err := rk.Rekey(from, seed); err != nil {
		c.stats.RejectedParse.Add(1)
		return fmt.Errorf("dgram: rekey: %w", err)
	}
	c.dropEpochStateFrom(from)
	c.mu.Lock()
	c.lastRekey = &rekeyPoint{from: from, seed: seed}
	c.mu.Unlock()
	c.stats.RekeysApplied.Add(1)
	// Adopt the boundary as the horizon: the peer is already sending
	// under the new family at `from`.
	if err := c.Advance(from); err != nil {
		return err
	}
	return nil
}

// dropEpochStateFrom invalidates cached dialects and packet pads at or
// past a rekey boundary — they were derived under the old family.
func (c *Conn) dropEpochStateFrom(from uint64) {
	c.mu.Lock()
	c.dialects.DeleteIf(
		func(e uint64, _ *graph.Graph) bool { return e >= from },
		func(e uint64, g *graph.Graph) {
			if c.byGraph[g] == e {
				delete(c.byGraph, g)
			}
		})
	c.pads.DeleteIf(func(e uint64, _ []byte) bool { return e >= from }, nil)
	c.mu.Unlock()
}
