package dgram

import (
	"io"
	"sync"

	"protoobf/internal/rng"
)

// packetQueue is one direction of the in-memory pair: a bounded FIFO
// of whole packets with datagram semantics (one Write enqueues one
// packet, one Read dequeues one, truncating into the caller's buffer
// like a UDP socket read).
type packetQueue struct {
	mu     sync.Mutex
	cond   *sync.Cond
	pkts   [][]byte
	bound  int
	closed bool
}

func newPacketQueue(bound int) *packetQueue {
	q := &packetQueue{bound: bound}
	q.cond = sync.NewCond(&q.mu)
	return q
}

func (q *packetQueue) push(p []byte) error {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.closed {
		return io.ErrClosedPipe
	}
	if len(q.pkts) >= q.bound {
		// Datagram semantics: a full queue drops, it does not block —
		// backpressure on a lossy transport is loss.
		return nil
	}
	buf := make([]byte, len(p))
	copy(buf, p)
	q.pkts = append(q.pkts, buf)
	q.cond.Signal()
	return nil
}

func (q *packetQueue) pop(p []byte) (int, error) {
	q.mu.Lock()
	defer q.mu.Unlock()
	for len(q.pkts) == 0 {
		if q.closed {
			return 0, io.EOF
		}
		q.cond.Wait()
	}
	pkt := q.pkts[0]
	q.pkts = q.pkts[1:]
	return copy(p, pkt), nil
}

// popBatch blocks for the first packet, then drains whatever else is
// queued, up to len(bufs).
func (q *packetQueue) popBatch(bufs [][]byte, sizes []int) (int, error) {
	q.mu.Lock()
	defer q.mu.Unlock()
	for len(q.pkts) == 0 {
		if q.closed {
			return 0, io.EOF
		}
		q.cond.Wait()
	}
	n := 0
	for n < len(bufs) && n < len(sizes) && len(q.pkts) > 0 {
		pkt := q.pkts[0]
		q.pkts = q.pkts[1:]
		sizes[n] = copy(bufs[n], pkt)
		n++
	}
	return n, nil
}

func (q *packetQueue) close() {
	q.mu.Lock()
	q.closed = true
	q.cond.Broadcast()
	q.mu.Unlock()
}

// PacketEnd is one side of an in-memory datagram pair. It has UDP-like
// semantics — whole packets, bounded queues that drop on overflow,
// reads that truncate — and implements the BatchWriter/BatchReader
// fast paths, making it both the loopback transport for tests and
// benches and the reference implementation of the batch interfaces.
type PacketEnd struct {
	in, out *packetQueue
}

// NewPair returns two connected in-memory datagram endpoints.
func NewPair() (*PacketEnd, *PacketEnd) {
	a := newPacketQueue(1024)
	b := newPacketQueue(1024)
	return &PacketEnd{in: a, out: b}, &PacketEnd{in: b, out: a}
}

// Write sends p as one packet. A full peer queue drops the packet
// silently (datagram semantics); only a closed pair errors.
func (e *PacketEnd) Write(p []byte) (int, error) {
	if err := e.out.push(p); err != nil {
		return 0, err
	}
	return len(p), nil
}

// Read blocks for the next packet and copies it into p, truncating
// like a datagram socket when p is too small.
func (e *PacketEnd) Read(p []byte) (int, error) {
	return e.in.pop(p)
}

// WritePacketBatch sends each slice as one packet.
func (e *PacketEnd) WritePacketBatch(pkts [][]byte) error {
	for _, p := range pkts {
		if err := e.out.push(p); err != nil {
			return err
		}
	}
	return nil
}

// ReadPacketBatch blocks for the first packet, then drains up to
// len(bufs) queued packets without further blocking.
func (e *PacketEnd) ReadPacketBatch(bufs [][]byte, sizes []int) (int, error) {
	return e.in.popBatch(bufs, sizes)
}

// Close shuts both directions; the peer's pending reads return io.EOF.
func (e *PacketEnd) Close() error {
	e.in.close()
	e.out.close()
	return nil
}

// LossyConfig describes deterministic packet mutilation for tests and
// benches: percentages are per-packet probabilities driven by a seeded
// generator, so a given seed reproduces the exact same loss pattern.
type LossyConfig struct {
	// LossPct drops this percentage of written packets.
	LossPct int
	// DupPct delivers this percentage of written packets twice.
	DupPct int
	// ReorderPct holds this percentage of written packets back one
	// slot, swapping them with the next packet — adjacent reordering,
	// the dominant real-world pattern.
	ReorderPct int
	// Seed drives the deterministic coin flips.
	Seed int64
}

// Lossy wraps a datagram transport with seeded loss, duplication and
// adjacent reordering on the write side; reads pass through. The
// wrapper forwards the batch fast paths of the inner transport when
// present, applying the same per-packet coin flips.
type Lossy struct {
	inner io.ReadWriter
	cfg   LossyConfig

	mu   sync.Mutex
	r    *rng.R
	held []byte // packet delayed one slot by reordering

	// Tallies of what the wrapper actually did, for bench reporting.
	Written, Dropped, Duped, Reordered int
}

// NewLossy wraps inner with the configured mutilation.
func NewLossy(inner io.ReadWriter, cfg LossyConfig) *Lossy {
	return &Lossy{inner: inner, cfg: cfg, r: rng.New(cfg.Seed)}
}

func (l *Lossy) Read(p []byte) (int, error) { return l.inner.Read(p) }

// Write applies the coin flips to one packet. Reordering holds the
// packet and releases it after the next write; Close flushes a held
// packet so nothing is silently lost at shutdown.
func (l *Lossy) Write(p []byte) (int, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.writeLocked(p)
}

func (l *Lossy) writeLocked(p []byte) (int, error) {
	l.Written++
	if l.cfg.LossPct > 0 && l.r.Pick(100) < l.cfg.LossPct {
		l.Dropped++
		return len(p), nil
	}
	if l.cfg.ReorderPct > 0 && l.held == nil && l.r.Pick(100) < l.cfg.ReorderPct {
		l.held = append([]byte(nil), p...)
		l.Reordered++
		return len(p), nil
	}
	if err := l.deliver(p); err != nil {
		return 0, err
	}
	if l.held != nil {
		held := l.held
		l.held = nil
		if err := l.deliver(held); err != nil {
			return 0, err
		}
	}
	return len(p), nil
}

func (l *Lossy) deliver(p []byte) error {
	if _, err := l.inner.Write(p); err != nil {
		return err
	}
	if l.cfg.DupPct > 0 && l.r.Pick(100) < l.cfg.DupPct {
		l.Duped++
		if _, err := l.inner.Write(p); err != nil {
			return err
		}
	}
	return nil
}

// WritePacketBatch applies the per-packet coin flips to each packet of
// the batch, then forwards the survivors in one call when the inner
// transport supports batching.
func (l *Lossy) WritePacketBatch(pkts [][]byte) error {
	bw, ok := l.inner.(BatchWriter)
	if !ok {
		l.mu.Lock()
		defer l.mu.Unlock()
		for _, p := range pkts {
			if _, err := l.writeLocked(p); err != nil {
				return err
			}
		}
		return nil
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make([][]byte, 0, len(pkts)+1)
	for _, p := range pkts {
		l.Written++
		if l.cfg.LossPct > 0 && l.r.Pick(100) < l.cfg.LossPct {
			l.Dropped++
			continue
		}
		if l.cfg.ReorderPct > 0 && l.held == nil && l.r.Pick(100) < l.cfg.ReorderPct {
			l.held = append([]byte(nil), p...)
			l.Reordered++
			continue
		}
		out = append(out, p)
		if l.held != nil {
			out = append(out, l.held)
			l.held = nil
		}
		if l.cfg.DupPct > 0 && l.r.Pick(100) < l.cfg.DupPct {
			l.Duped++
			out = append(out, p)
		}
	}
	if len(out) == 0 {
		return nil
	}
	return bw.WritePacketBatch(out)
}

// ReadPacketBatch forwards the inner transport's batch read.
func (l *Lossy) ReadPacketBatch(bufs [][]byte, sizes []int) (int, error) {
	if br, ok := l.inner.(BatchReader); ok {
		return br.ReadPacketBatch(bufs, sizes)
	}
	if len(bufs) == 0 || len(sizes) == 0 {
		return 0, nil
	}
	n, err := l.inner.Read(bufs[0])
	if err != nil {
		return 0, err
	}
	sizes[0] = n
	return 1, nil
}

// Close flushes a held (reordered) packet and closes the inner
// transport when it can be closed.
func (l *Lossy) Close() error {
	l.mu.Lock()
	if l.held != nil {
		held := l.held
		l.held = nil
		l.deliver(held)
	}
	l.mu.Unlock()
	if c, ok := l.inner.(io.Closer); ok {
		return c.Close()
	}
	return nil
}
