package session

import (
	"fmt"
	"strings"
	"testing"

	"protoobf/internal/frame"
	"protoobf/internal/metrics"
	"protoobf/internal/rng"
)

// exportAfterRekey runs a session pair through a rekey and some traffic
// and exports a resumable ticket from a.
func exportAfterRekey(t *testing.T, a, b *Conn, r *rng.R) []byte {
	t.Helper()
	build := specCases[0].build
	exchange(t, a, b, build, r)
	if _, err := a.Rekey(0x5EED); err != nil {
		t.Fatal(err)
	}
	exchange(t, a, b, build, r)
	exchange(t, b, a, build, r)
	ticket, err := a.Export()
	if err != nil {
		t.Fatal(err)
	}
	return ticket
}

// The replay-gap regression test: with a shared ReplayCache on the
// acceptor side, the second presentation of one ticket is refused and
// counted, even though it lands on a brand-new acceptor session.
func TestResumeReplayRejected(t *testing.T) {
	rotA, rotB := newTestRotations(t, 77)
	r := rng.New(5)
	a, b := resumePair(t, rotA, rotB, Options{}, Options{})
	ticket := exportAfterRekey(t, a, b, r)

	replay := NewReplayCache(0)
	var stats metrics.ResumeCounters
	accept := Options{Replay: replay, ResumeStats: &stats}
	build := specCases[0].build

	// First presentation: accepted.
	ca, cb := newPipe()
	b1, err := NewConnOpts(cb, rotB.View(), accept)
	if err != nil {
		t.Fatal(err)
	}
	defer b1.Release()
	a1, err := ResumeConn(ca, rotA.View(), Options{}, ticket)
	if err != nil {
		t.Fatal(err)
	}
	defer a1.Release()
	exchange(t, a1, b1, build, r)
	if got := stats.Accepts.Load(); got != 1 {
		t.Fatalf("first resume: accepts = %d, want 1", got)
	}
	if replay.Len() != 1 {
		t.Fatalf("replay cache remembers %d tickets, want 1", replay.Len())
	}

	// Second presentation of the same ticket, fresh acceptor session
	// sharing the cache: refused, counted as replay.
	ca2, cb2 := newPipe()
	b2, err := NewConnOpts(cb2, rotB.View(), accept)
	if err != nil {
		t.Fatal(err)
	}
	defer b2.Release()
	a2, err := ResumeConn(ca2, rotA.View(), Options{}, ticket)
	if err != nil {
		t.Fatal(err)
	}
	defer a2.Release()
	m, err := a2.NewMessage()
	if err != nil {
		t.Fatal(err)
	}
	if err := specCases[0].build(m.Scope(), r); err != nil {
		t.Fatal(err)
	}
	if err := a2.Send(m); err != nil {
		t.Fatal(err)
	}
	_, err = b2.Recv()
	if err == nil || !strings.Contains(err.Error(), "single-use") {
		t.Fatalf("replayed resume: err = %v, want single-use rejection", err)
	}
	if got := stats.RejectedReplayed.Load(); got != 1 {
		t.Fatalf("RejectedReplayed = %d, want 1", got)
	}
	if got := stats.Accepts.Load(); got != 1 {
		t.Fatalf("accepts after replay = %d, want still 1", got)
	}
	// Rejects() aggregates the new reason.
	if got := stats.Snapshot().Rejects(); got != 1 {
		t.Fatalf("Rejects() = %d, want 1", got)
	}
}

// A forged ticket must still land in the forged bucket, not replay:
// the replay gate runs only after authenticity, so garbage cannot
// pollute the cache. ResumeConn refuses a forged ticket client-side,
// so drive the acceptor with a raw transport.
func TestForgedTicketStillCountsForged(t *testing.T) {
	rotA, rotB := newTestRotations(t, 78)
	ticket, err := rotA.View().SealResume((&resumeState{epoch: 0, bytesMoved: 64, sinceRekey: 64}).encode())
	if err != nil {
		t.Fatal(err)
	}
	forged := append([]byte(nil), ticket...)
	forged[len(forged)-1] ^= 0x01 // tag byte

	replay := NewReplayCache(0)
	var stats metrics.ResumeCounters
	ca, cb := newPipe()
	bc, err := NewConnOpts(cb, rotB.View(), Options{Replay: replay, ResumeStats: &stats})
	if err != nil {
		t.Fatal(err)
	}
	defer bc.Release()
	tr := NewTransport(ca)
	if err := tr.sendFrameAt(frame.KindResume, 0, forged); err != nil {
		t.Fatal(err)
	}
	if _, err := bc.Recv(); err == nil {
		t.Fatal("forged ticket accepted")
	}
	if got := stats.RejectedForged.Load(); got != 1 {
		t.Fatalf("RejectedForged = %d, want 1", got)
	}
	if got := stats.RejectedReplayed.Load(); got != 0 {
		t.Fatalf("RejectedReplayed = %d, want 0 (forged tickets must not reach the replay gate)", got)
	}
	if replay.Len() != 0 {
		t.Fatalf("replay cache witnessed a forged ticket (len %d)", replay.Len())
	}
}

// With ReissueTickets on the acceptor, a committed rekey pushes a fresh
// ticket in-band; the initiator stores it and can resume with it on a
// fresh byte stream — closing the migrate-then-rekey-then-migrate loop.
func TestTicketReissueAfterRekey(t *testing.T) {
	rotA, rotB := newTestRotations(t, 79)
	r := rng.New(5)
	build := specCases[0].build
	a, b := resumePair(t, rotA, rotB, Options{}, Options{ReissueTickets: true})

	if a.StoredTicket() != nil {
		t.Fatal("ticket stored before any rekey")
	}
	exchange(t, a, b, build, r)
	if _, err := a.Rekey(0x1CEE); err != nil {
		t.Fatal(err)
	}
	// The ack commits the rekey on a; b's re-issued ticket follows the
	// ack on the same stream, so one more b->a exchange delivers it.
	exchange(t, a, b, build, r)
	exchange(t, b, a, build, r)

	ticket := a.StoredTicket()
	if ticket == nil {
		t.Fatal("no ticket re-issued after rekey")
	}
	// The pushed ticket resumes a fresh byte stream, replay cache and
	// all: the re-issued ticket is a distinct single use.
	replay := NewReplayCache(0)
	ca, cb := newPipe()
	b2, err := NewConnOpts(cb, rotB.View(), Options{Replay: replay})
	if err != nil {
		t.Fatal(err)
	}
	defer b2.Release()
	a2, err := ResumeConn(ca, rotA.View(), Options{}, ticket)
	if err != nil {
		t.Fatal(err)
	}
	defer a2.Release()
	exchange(t, a2, b2, build, r)
	exchange(t, b2, a2, build, r)
	if got, want := lineageOf2(t, a2), lineageOf2(t, b2); got != want {
		t.Fatalf("lineage mismatch after re-issued resume: %s vs %s", got, want)
	}
}

// Accepting a resume also re-issues: the migrated session leaves the
// handshake holding a fresh ticket for its next migration, instead of
// a spent one.
func TestTicketReissueAfterResume(t *testing.T) {
	rotA, rotB := newTestRotations(t, 80)
	r := rng.New(5)
	build := specCases[0].build
	a, b := resumePair(t, rotA, rotB, Options{}, Options{})
	first := exportAfterRekey(t, a, b, r)

	ca, cb := newPipe()
	b2, err := NewConnOpts(cb, rotB.View(), Options{ReissueTickets: true})
	if err != nil {
		t.Fatal(err)
	}
	defer b2.Release()
	a2, err := ResumeConn(ca, rotA.View(), Options{}, first)
	if err != nil {
		t.Fatal(err)
	}
	defer a2.Release()
	// The resume-ack and the re-issued ticket both precede b2's first
	// data frame; a round trip drains them.
	exchange(t, a2, b2, build, r)
	exchange(t, b2, a2, build, r)

	next := a2.StoredTicket()
	if next == nil {
		t.Fatal("no ticket re-issued after resume accept")
	}
	if string(next) == string(first) {
		t.Fatal("re-issued ticket identical to the spent one")
	}
	// And the fresh ticket works.
	ca3, cb3 := newPipe()
	b3, err := NewConnOpts(cb3, rotB.View(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer b3.Release()
	a3, err := ResumeConn(ca3, rotA.View(), Options{}, next)
	if err != nil {
		t.Fatal(err)
	}
	defer a3.Release()
	exchange(t, a3, b3, build, r)
}

// InspectTicket opens a ticket without building a session — the gateway
// uses it to route on the ticket's family.
func TestInspectTicket(t *testing.T) {
	rotA, rotB := newTestRotations(t, 81)
	r := rng.New(5)
	a, b := resumePair(t, rotA, rotB, Options{}, Options{})
	build := specCases[0].build

	// Un-rekeyed ticket: base family, no lineage.
	exchange(t, a, b, build, r)
	fresh, err := a.Export()
	if err != nil {
		t.Fatal(err)
	}
	info, err := InspectTicket(rotA.View(), fresh)
	if err != nil {
		t.Fatal(err)
	}
	if info.Rekeyed {
		t.Fatal("un-rekeyed ticket reports a rekey lineage")
	}
	if info.Epoch != a.Epoch() {
		t.Fatalf("ticket epoch = %d, want %d", info.Epoch, a.Epoch())
	}

	// Rekeyed ticket: Family is the last rekey seed.
	const seed = int64(0xC0FFEE)
	if _, err := a.Rekey(seed); err != nil {
		t.Fatal(err)
	}
	exchange(t, a, b, build, r)
	exchange(t, b, a, build, r)
	rekeyed, err := a.Export()
	if err != nil {
		t.Fatal(err)
	}
	info, err = InspectTicket(rotA.View(), rekeyed)
	if err != nil {
		t.Fatal(err)
	}
	if !info.Rekeyed {
		t.Fatal("rekeyed ticket reports no lineage")
	}
	if info.Family != seed {
		t.Fatalf("ticket family = %#x, want %#x", info.Family, seed)
	}

	// Garbage and truncation are loud errors, not zero values.
	if _, err := InspectTicket(rotA.View(), []byte("not a ticket, not even close")); err == nil {
		t.Fatal("garbage ticket inspected without error")
	}
	if _, err := InspectTicket(rotA.View(), rekeyed[:len(rekeyed)-1]); err == nil {
		t.Fatal("truncated ticket inspected without error")
	}
}

// lineageOf2 renders a session's rekey lineage as a comparable string.
func lineageOf2(t *testing.T, c *Conn) string {
	t.Helper()
	froms, seeds := lineageOf(t, c)
	return fmt.Sprintf("%v/%v", froms, seeds)
}

// ReplayCache is bounded: old tickets age out instead of growing the
// cache without limit.
func TestReplayCacheBounded(t *testing.T) {
	rc := NewReplayCache(4)
	tickets := make([][]byte, 6)
	for i := range tickets {
		tickets[i] = []byte{byte(i), 0xAA, 0xBB}
		if rc.Witness(tickets[i]) {
			t.Fatalf("fresh ticket %d reported as replay", i)
		}
	}
	if rc.Len() != 4 {
		t.Fatalf("cache len = %d, want 4", rc.Len())
	}
	if !rc.Witness(tickets[5]) {
		t.Fatal("recent ticket not remembered")
	}
	if rc.Witness(tickets[0]) {
		t.Fatal("evicted ticket still remembered")
	}
}
