package session

import (
	"bytes"
	"errors"
	"strings"
	"testing"
	"time"

	"protoobf/internal/core"
	"protoobf/internal/frame"
	"protoobf/internal/metrics"
	"protoobf/internal/rng"
	"protoobf/internal/session/sched"
)

// resumePair builds a session pair over fresh views of two rotations
// compiled from the same (spec, opts) — the deployment shape of a
// resumable session (views implement the ticket interfaces; bare
// rotations do too via their default view, but migration always runs
// on per-session views in practice).
func resumePair(t *testing.T, rotA, rotB *core.Rotation, aopts, bopts Options) (*Conn, *Conn) {
	t.Helper()
	a, b, err := PairOpts(rotA.View(), rotB.View(), aopts, bopts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		a.Release()
		b.Release()
	})
	return a, b
}

func newTestRotations(t *testing.T, seed int64) (*core.Rotation, *core.Rotation) {
	t.Helper()
	opts := core.ObfuscationOptions{PerNode: 2, Seed: seed}
	rotA, err := core.NewRotation(beaconSpec, opts)
	if err != nil {
		t.Fatal(err)
	}
	rotB, err := core.NewRotation(beaconSpec, opts)
	if err != nil {
		t.Fatal(err)
	}
	return rotA, rotB
}

// lineageOf reads a session's rekey history through the interface the
// migration subsystem uses.
func lineageOf(t *testing.T, c *Conn) ([]uint64, []int64) {
	t.Helper()
	lin, ok := c.versions.(Lineage)
	if !ok {
		t.Fatal("versioner has no lineage")
	}
	froms, seeds := lin.RekeyLineage()
	return froms, seeds
}

// TestResumeRoundtrip is the subsystem's core property: a session that
// has both rotated epochs and rekeyed its family is exported, its
// streams are dropped, and the ticket reconstructs it on a brand-new
// duplex — same epoch, same (rekeyed!) family, continuous odometer —
// with messages flowing in both directions immediately.
func TestResumeRoundtrip(t *testing.T) {
	rotA, rotB := newTestRotations(t, 21)
	a, b := resumePair(t, rotA, rotB, Options{}, Options{})
	r := rng.New(11)
	build := specCases[0].build

	exchange(t, a, b, build, r) // epoch 0, base family

	// Rekey (a proposes, b acks on its Recv, a completes on its Recv).
	if _, err := a.Rekey(0x5EED); err != nil {
		t.Fatal(err)
	}
	exchange(t, a, b, build, r)
	exchange(t, b, a, build, r)

	// Rotate a few epochs past the rekey boundary.
	for i := 0; i < 3; i++ {
		if _, err := a.Rotate(); err != nil {
			t.Fatal(err)
		}
		exchange(t, a, b, build, r)
	}
	wantEpoch := a.Epoch()
	if wantEpoch < 4 {
		t.Fatalf("setup epoch = %d, want >= 4", wantEpoch)
	}

	ticket, err := a.Export()
	if err != nil {
		t.Fatal(err)
	}
	movedAtExport := a.BytesMoved()
	if movedAtExport == 0 {
		t.Fatal("exported session moved no bytes")
	}

	// The connection dies; both sides meet again over a fresh duplex.
	ca, cb := newPipe()
	b2, err := NewConnOpts(cb, rotB.View(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	a2, err := ResumeConn(ca, rotA.View(), Options{}, ticket)
	if err != nil {
		t.Fatal(err)
	}
	defer a2.Release()
	defer b2.Release()

	if got := a2.Epoch(); got != wantEpoch {
		t.Fatalf("resumed epoch = %d, want %d", got, wantEpoch)
	}
	if got := a2.BytesMoved(); got != movedAtExport {
		t.Fatalf("resumed odometer = %d, want %d", got, movedAtExport)
	}

	// Data flows immediately; the acceptor adopts the ticket from the
	// first frame and both sides speak the rekeyed family.
	exchange(t, a2, b2, build, r)
	exchange(t, b2, a2, build, r)

	for _, c := range []*Conn{a2, b2} {
		froms, seeds := lineageOf(t, c)
		if len(froms) != 1 || froms[0] != 1 || seeds[0] != 0x5EED {
			t.Fatalf("resumed lineage = %v/%v, want [1]/[0x5EED]", froms, seeds)
		}
	}
	if got := b2.Epoch(); got != wantEpoch {
		t.Fatalf("acceptor epoch after resume = %d, want %d", got, wantEpoch)
	}

	// And the session keeps living a normal life: another rekey and more
	// rotation on the resumed pair.
	if _, err := a2.Rekey(0xBEEF); err != nil {
		t.Fatal(err)
	}
	exchange(t, a2, b2, build, r)
	exchange(t, b2, a2, build, r)
	if froms, _ := lineageOf(t, a2); len(froms) != 2 {
		t.Fatalf("post-resume rekey not recorded: lineage %v", froms)
	}
}

// TestResumeScheduledSession: a resumed session with a schedule adopts
// the fleet's current epoch — not the ticket's — exactly as a session
// that had stayed connected across the partition would have.
func TestResumeScheduledSession(t *testing.T) {
	rotA, rotB := newTestRotations(t, 33)
	clock := sched.NewFakeClock(schedGenesis)
	schedule := sched.New(schedGenesis, time.Minute).WithClock(clock.Now)
	aopts := Options{Schedule: schedule}
	a, b := resumePair(t, rotA, rotB, aopts, aopts)
	r := rng.New(7)
	build := specCases[0].build

	clock.Advance(2 * time.Minute) // epoch 2
	exchange(t, a, b, build, r)
	if _, err := a.Rekey(0x7777); err != nil {
		t.Fatal(err)
	}
	exchange(t, a, b, build, r)
	exchange(t, b, a, build, r)

	ticket, err := a.Export()
	if err != nil {
		t.Fatal(err)
	}

	// The fleet keeps rotating while the peer is gone.
	clock.Advance(3 * time.Minute) // epoch 5

	ca, cb := newPipe()
	b2, err := NewConnOpts(cb, rotB.View(), aopts)
	if err != nil {
		t.Fatal(err)
	}
	a2, err := ResumeConn(ca, rotA.View(), aopts, ticket)
	if err != nil {
		t.Fatal(err)
	}
	defer a2.Release()
	defer b2.Release()

	if got := a2.Epoch(); got != 5 {
		t.Fatalf("resumed scheduled epoch = %d, want 5", got)
	}
	exchange(t, a2, b2, build, r)
	exchange(t, b2, a2, build, r)
	froms, _ := lineageOf(t, b2)
	if len(froms) != 1 {
		t.Fatalf("acceptor lineage after scheduled resume = %v", froms)
	}
}

// TestResumeRacingCrossedRekey is the glare case: the acceptor mints an
// automatic rekey proposal at construction (its schedule says one is
// overdue) before it has seen the resume frame. The proposal is masked
// under the acceptor's pre-resume state and must die; the resuming side
// drops it unread while its ack is outstanding; and a post-resume rekey
// still completes, proving the control plane reconverged.
func TestResumeRacingCrossedRekey(t *testing.T) {
	rotA, rotB := newTestRotations(t, 55)
	clock := sched.NewFakeClock(schedGenesis)
	schedule := sched.New(schedGenesis, time.Minute).WithClock(clock.Now)
	base := Options{Schedule: schedule}
	a, b := resumePair(t, rotA, rotB, base, base)
	r := rng.New(19)
	build := specCases[0].build

	clock.Advance(time.Minute) // epoch 1
	exchange(t, a, b, build, r)
	if _, err := a.Rekey(0x1234); err != nil {
		t.Fatal(err)
	}
	exchange(t, a, b, build, r)
	exchange(t, b, a, build, r)
	clock.Advance(time.Minute) // epoch 2
	exchange(t, a, b, build, r)

	ticket, err := a.Export()
	if err != nil {
		t.Fatal(err)
	}

	// Fresh acceptor with an aggressive rekey schedule: RekeyEvery 1 and
	// a deterministic seed source. Construction itself writes a proposal
	// into the pipe — the crossed frame the resuming side must survive.
	var stats metrics.ResumeCounters
	ca, cb := newPipe()
	bopts := base
	bopts.RekeyEvery = 1
	bopts.SeedSource = func() (int64, error) { return 0x9999, nil }
	bopts.ResumeStats = &stats
	b2, err := NewConnOpts(cb, rotB.View(), bopts)
	if err != nil {
		t.Fatal(err)
	}
	b2.mu.Lock()
	pendingAtConstruction := b2.pending != nil
	b2.mu.Unlock()
	if !pendingAtConstruction {
		t.Fatal("acceptor did not mint the construction-time proposal the test exists for")
	}

	aopts := base
	aopts.ResumeStats = &stats
	a2, err := ResumeConn(ca, rotA.View(), aopts, ticket)
	if err != nil {
		t.Fatal(err)
	}
	defer a2.Release()
	defer b2.Release()

	// The acceptor processes the resume on its first Recv: send a2 -> b2
	// first. At this point its construction-time proposal must be dead —
	// checked before the reverse exchange, whose NewMessage legitimately
	// mints a fresh (post-resume) proposal under RekeyEvery 1.
	exchange(t, a2, b2, build, r)
	if got := stats.Accepts.Load(); got != 1 {
		t.Fatalf("resume accepts = %d, want 1", got)
	}
	if got := stats.Snapshot().Rejects(); got != 0 {
		t.Fatalf("resume rejects = %d, want 0", got)
	}
	b2.mu.Lock()
	stillPending := b2.pending != nil
	b2.mu.Unlock()
	if stillPending {
		t.Fatal("acceptor's pre-resume proposal survived the resume")
	}

	// The reverse direction makes a2 consume the dead proposal (dropped
	// unread), the resume ack, and the fresh post-resume proposal.
	exchange(t, b2, a2, build, r)

	// The control plane must reconverge: the next boundary proposes under
	// the resumed family and the handshake completes.
	clock.Advance(time.Minute) // epoch 3; RekeyEvery 1 on b2 re-proposes
	exchange(t, b2, a2, build, r)
	exchange(t, a2, b2, build, r)
	exchange(t, b2, a2, build, r)
	// Both lineages start with the ticket's boundary and extend with the
	// post-resume rekey; a further handshake may still be in flight on
	// one side (RekeyEvery 1 proposes every epoch), so the completed
	// prefix must agree rather than the lengths.
	fa, sa := lineageOf(t, a2)
	fb, sb := lineageOf(t, b2)
	if len(fb) < 2 || len(fa) < len(fb) {
		t.Fatalf("post-resume rekey did not reconverge: lineages %v vs %v", fa, fb)
	}
	for i := range fb {
		if fa[i] != fb[i] || sa[i] != sb[i] {
			t.Fatalf("lineages diverged at %d: %v/%v vs %v/%v", i, fa, sa, fb, sb)
		}
	}
}

// TestResumeRejections drives every acceptor-side rejection path with
// crafted frames from a raw transport and checks each is counted under
// its reason — the observability half of the forgery defenses.
func TestResumeRejections(t *testing.T) {
	build := specCases[0].build

	mkState := func(epoch uint64) *resumeState {
		return &resumeState{epoch: epoch, bytesMoved: 64, sinceRekey: 64}
	}
	newAcceptor := func(t *testing.T, opts Options, seed int64) (*Conn, *Transport, *metrics.ResumeCounters, *core.Rotation) {
		t.Helper()
		rotA, rotB := newTestRotations(t, seed)
		var stats metrics.ResumeCounters
		opts.ResumeStats = &stats
		ca, cb := newPipe()
		acc, err := NewConnOpts(cb, rotB.View(), opts)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(acc.Release)
		return acc, NewTransport(ca), &stats, rotA
	}

	t.Run("forged-ticket", func(t *testing.T) {
		acc, tr, stats, _ := newAcceptor(t, Options{}, 60)
		if err := tr.sendFrameAt(frame.KindResume, 0, bytes.Repeat([]byte{0xAB}, 80)); err != nil {
			t.Fatal(err)
		}
		if _, err := acc.Recv(); err == nil {
			t.Fatal("forged ticket accepted")
		} else if !errors.Is(err, core.ErrTicketInvalid) {
			t.Fatalf("forged ticket error = %v, want ErrTicketInvalid", err)
		}
		if got := stats.RejectedForged.Load(); got != 1 {
			t.Fatalf("forged rejects = %d, want 1", got)
		}
	})

	t.Run("bit-flipped-ticket", func(t *testing.T) {
		acc, tr, stats, rotA := newAcceptor(t, Options{}, 61)
		ticket, err := rotA.View().SealResume(mkState(0).encode())
		if err != nil {
			t.Fatal(err)
		}
		ticket[len(ticket)/2] ^= 0x01
		if err := tr.sendFrameAt(frame.KindResume, 0, ticket); err != nil {
			t.Fatal(err)
		}
		if _, err := acc.Recv(); err == nil {
			t.Fatal("bit-flipped ticket accepted")
		}
		if got := stats.RejectedForged.Load(); got != 1 {
			t.Fatalf("forged rejects = %d, want 1", got)
		}
	})

	t.Run("expired-ticket", func(t *testing.T) {
		clock := sched.NewFakeClock(schedGenesis)
		schedule := sched.New(schedGenesis, time.Minute).WithClock(clock.Now)
		clock.Advance(40 * time.Minute) // epoch 40
		acc, tr, stats, rotA := newAcceptor(t, Options{Schedule: schedule, ResumeWindow: 16}, 62)
		ticket, err := rotA.View().SealResume(mkState(3).encode())
		if err != nil {
			t.Fatal(err)
		}
		if err := tr.sendFrameAt(frame.KindResume, 3, ticket); err != nil {
			t.Fatal(err)
		}
		if _, err := acc.Recv(); err == nil || !strings.Contains(err.Error(), "expired") {
			t.Fatalf("expired ticket error = %v", err)
		}
		if got := stats.RejectedExpired.Load(); got != 1 {
			t.Fatalf("expired rejects = %d, want 1", got)
		}
	})

	t.Run("far-future-ticket", func(t *testing.T) {
		acc, tr, stats, rotA := newAcceptor(t, Options{}, 63)
		ticket, err := rotA.View().SealResume(mkState(10_000).encode())
		if err != nil {
			t.Fatal(err)
		}
		if err := tr.sendFrameAt(frame.KindResume, 10_000, ticket); err != nil {
			t.Fatal(err)
		}
		if _, err := acc.Recv(); err == nil {
			t.Fatal("far-future ticket accepted")
		}
		if got := stats.RejectedExpired.Load(); got != 1 {
			t.Fatalf("expired rejects = %d, want 1", got)
		}
	})

	t.Run("reframed-epoch", func(t *testing.T) {
		// A real ticket carried under a different header epoch (dodging
		// expiry bounds) must fail the sealed-epoch consistency check.
		acc, tr, stats, rotA := newAcceptor(t, Options{}, 64)
		ticket, err := rotA.View().SealResume(mkState(2).encode())
		if err != nil {
			t.Fatal(err)
		}
		if err := tr.sendFrameAt(frame.KindResume, 7, ticket); err != nil {
			t.Fatal(err)
		}
		if _, err := acc.Recv(); err == nil || !strings.Contains(err.Error(), "contradicts") {
			t.Fatalf("reframed ticket error = %v", err)
		}
		if got := stats.RejectedForged.Load(); got != 1 {
			t.Fatalf("forged rejects = %d, want 1", got)
		}
	})

	t.Run("established-session", func(t *testing.T) {
		rotA, rotB := newTestRotations(t, 65)
		var stats metrics.ResumeCounters
		a, b := resumePair(t, rotA, rotB, Options{ResumeStats: &stats}, Options{ResumeStats: &stats})
		r := rng.New(5)
		exchange(t, a, b, build, r) // traffic: b is established now
		ticket, err := a.Export()
		if err != nil {
			t.Fatal(err)
		}
		if err := a.t.sendFrameAt(frame.KindResume, a.Epoch(), ticket); err != nil {
			t.Fatal(err)
		}
		if _, err := b.Recv(); err == nil || !strings.Contains(err.Error(), "established") {
			t.Fatalf("established-session resume error = %v", err)
		}
		if got := stats.RejectedState.Load(); got != 1 {
			t.Fatalf("state rejects = %d, want 1", got)
		}
	})
}

// TestResumeStaticUnsupported: static sessions can neither export nor
// resume — their versioner has no secret to seal with.
func TestResumeStaticUnsupported(t *testing.T) {
	proto, err := core.Compile(beaconSpec, core.ObfuscationOptions{PerNode: 2, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	ca, _ := newPipe()
	c, err := NewConn(ca, Fixed(proto.Graph))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Release()
	if _, err := c.Export(); err == nil {
		t.Fatal("static session exported a ticket")
	}
	if _, err := ResumeConn(ca, Fixed(proto.Graph), Options{}, []byte("x")); err == nil {
		t.Fatal("static session resumed a ticket")
	}
}

// TestResumeVolumeTriggerContinuity: the odometer datum survives
// migration — a session resumed just short of its volume-rekey
// threshold proposes right after crossing it, instead of restarting the
// count from zero.
func TestResumeVolumeTriggerContinuity(t *testing.T) {
	rotA, rotB := newTestRotations(t, 71)
	const limit = 4096
	seedSrc := func() (int64, error) { return 0x4444, nil }
	aopts := Options{RekeyAfterBytes: limit, SeedSource: seedSrc}
	a, b := resumePair(t, rotA, rotB, aopts, Options{})
	r := rng.New(23)
	build := specCases[0].build

	// Move some traffic, but stay under the threshold.
	for a.BytesMoved() < limit/2 {
		exchange(t, a, b, build, r)
	}
	ticket, err := a.Export()
	if err != nil {
		t.Fatal(err)
	}
	moved := a.BytesMoved()

	ca, cb := newPipe()
	b2, err := NewConnOpts(cb, rotB.View(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	a2, err := ResumeConn(ca, rotA.View(), aopts, ticket)
	if err != nil {
		t.Fatal(err)
	}
	defer a2.Release()
	defer b2.Release()
	if got := a2.BytesMoved(); got != moved {
		t.Fatalf("resumed odometer = %d, want %d", got, moved)
	}

	// Crossing the remaining distance triggers the volume rekey: the
	// resumed session remembered how far it already was.
	for a2.BytesMoved() < limit {
		exchange(t, a2, b2, build, r)
	}
	exchange(t, a2, b2, build, r) // consume the proposal window
	exchange(t, b2, a2, build, r) // ack completes
	froms, seeds := lineageOf(t, a2)
	if len(froms) != 1 || seeds[0] != 0x4444 {
		t.Fatalf("volume rekey after resume not completed: lineage %v/%v", froms, seeds)
	}
}

// FuzzResumeTicket fuzzes the ticket state parser — the exact bytes an
// acceptor trusts after the seal tag passes. decodeState must cleanly
// accept or reject, never panic, and accepted states must re-encode to
// the identical bytes (the encoding is canonical, so a ticket cannot
// have two readings).
func FuzzResumeTicket(f *testing.F) {
	// Seed corpus: realistic states (with and without lineage), the
	// truncations, a lineage-count lie, and a non-ascending lineage.
	empty := resumeState{epoch: 3, bytesMoved: 900, sinceRekey: 100, lastRekeyFrom: 2, cacheWindow: 16}
	f.Add(empty.encode())
	rich := resumeState{
		epoch: 40, bytesMoved: 1 << 30, sinceRekey: 1 << 12, lastRekeyFrom: 33, cacheWindow: 16,
		froms: []uint64{5, 17, 33}, seeds: []int64{0x5EED, -44, 0x7FFF_FFFF},
	}
	f.Add(rich.encode())
	f.Add(rich.encode()[:resumeStateFixedLen-1])
	f.Add(rich.encode()[:resumeStateFixedLen+3])
	lied := rich.encode()
	lied[41] = 0xFF // claim 255 rekeys, carry 3
	f.Add(lied)
	desc := resumeState{epoch: 9, froms: []uint64{8, 2}, seeds: []int64{1, 2}}
	f.Add(desc.encode())

	f.Fuzz(func(t *testing.T, data []byte) {
		st, err := decodeState(data)
		if err != nil {
			return
		}
		re := st.encode()
		if !bytes.Equal(re, data) {
			t.Fatalf("decode/encode not canonical:\n in: %x\nout: %x", data, re)
		}
		if st.sinceRekey > st.bytesMoved {
			t.Fatal("accepted state with inconsistent odometer")
		}
		for i := 1; i < len(st.froms); i++ {
			if st.froms[i] <= st.froms[i-1] {
				t.Fatal("accepted non-ascending lineage")
			}
		}
	})
}

// TestExportCompactsLineage: however many times a session has rekeyed,
// its ticket carries only the active boundary (plus any future one) —
// so long-lived heavy-rekey sessions never outgrow the parser's
// lineage bound — and the compacted ticket still resumes correctly.
func TestExportCompactsLineage(t *testing.T) {
	rotA, rotB := newTestRotations(t, 90)
	a, b := resumePair(t, rotA, rotB, Options{}, Options{})
	r := rng.New(31)
	build := specCases[0].build

	// Three rekeys across manual rotations: lineage of 3 on both views.
	for k := 0; k < 3; k++ {
		exchange(t, a, b, build, r)
		if _, err := a.Rekey(int64(0x1000 + k)); err != nil {
			t.Fatal(err)
		}
		exchange(t, a, b, build, r)
		exchange(t, b, a, build, r)
		if _, err := a.Rotate(); err != nil {
			t.Fatal(err)
		}
		exchange(t, a, b, build, r)
	}
	if froms, _ := lineageOf(t, a); len(froms) != 3 {
		t.Fatalf("setup lineage = %v, want 3 points", froms)
	}

	ticket, err := a.Export()
	if err != nil {
		t.Fatal(err)
	}
	plain, err := rotA.View().OpenResume(ticket)
	if err != nil {
		t.Fatal(err)
	}
	st, err := decodeState(plain)
	if err != nil {
		t.Fatal(err)
	}
	if len(st.froms) != 1 || st.seeds[0] != 0x1002 {
		t.Fatalf("exported lineage = %v/%v, want the single active point (seed 0x1002)", st.froms, st.seeds)
	}

	// The compacted ticket resumes: both sides agree on the family.
	ca, cb := newPipe()
	b2, err := NewConnOpts(cb, rotB.View(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	a2, err := ResumeConn(ca, rotA.View(), Options{}, ticket)
	if err != nil {
		t.Fatal(err)
	}
	defer a2.Release()
	defer b2.Release()
	exchange(t, a2, b2, build, r)
	exchange(t, b2, a2, build, r)
}

// TestTicketMaxLineage pins the bound alignment between the state
// parser and the seal layer: the longest lineage decodeState admits
// (maxResumeRekeys points) still seals and round-trips, so Export can
// never build a state its own subsystem refuses to carry.
func TestTicketMaxLineage(t *testing.T) {
	rotA, _ := newTestRotations(t, 82)
	st := resumeState{epoch: uint64(maxResumeRekeys) + 5, bytesMoved: 1, cacheWindow: 16}
	for i := 0; i < maxResumeRekeys; i++ {
		st.froms = append(st.froms, uint64(i+1))
		st.seeds = append(st.seeds, int64(i)*3+1)
	}
	ticket, err := rotA.View().SealResume(st.encode())
	if err != nil {
		t.Fatalf("max-lineage state did not seal: %v", err)
	}
	plain, err := rotA.View().OpenResume(ticket)
	if err != nil {
		t.Fatal(err)
	}
	back, err := decodeState(plain)
	if err != nil {
		t.Fatal(err)
	}
	if len(back.froms) != maxResumeRekeys {
		t.Fatalf("round-tripped lineage of %d points, want %d", len(back.froms), maxResumeRekeys)
	}
}

// TestTicketSealRoundtrip pins the seal layer's properties from the
// session layer's perspective: a ticket opens under any view sharing
// the base seed, fails under a different base seed, and every
// single-byte corruption is rejected.
func TestTicketSealRoundtrip(t *testing.T) {
	rotA, _ := newTestRotations(t, 80)
	other, err := core.NewRotation(beaconSpec, core.ObfuscationOptions{PerNode: 2, Seed: 81})
	if err != nil {
		t.Fatal(err)
	}
	st := resumeState{epoch: 12, bytesMoved: 4096, sinceRekey: 512, lastRekeyFrom: 9,
		cacheWindow: 16, froms: []uint64{9}, seeds: []int64{0x1111}}
	plain := st.encode()
	ticket, err := rotA.View().SealResume(plain)
	if err != nil {
		t.Fatal(err)
	}
	back, err := rotA.View().OpenResume(ticket)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(back, plain) {
		t.Fatal("seal/open did not round-trip")
	}
	if bytes.Contains(ticket, plain[4:20]) {
		t.Fatal("ticket carries state bytes in the clear")
	}
	if _, err := other.View().OpenResume(ticket); err == nil {
		t.Fatal("ticket opened under a different base seed")
	}
	for i := range ticket {
		mut := append([]byte(nil), ticket...)
		mut[i] ^= 0x80
		if _, err := rotA.View().OpenResume(mut); err == nil {
			t.Fatalf("ticket with byte %d corrupted still opened", i)
		}
	}
}
