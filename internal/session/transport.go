package session

import (
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"

	"protoobf/internal/frame"
)

// Transport is the epoch-tagged framed byte layer of a session: it moves
// already-serialized payloads over rw, stamping each outgoing frame with
// the current epoch and surfacing the epoch of each incoming frame.
// Applications that manage their own protocol graphs (the protocol core
// applications) use it directly; Conn builds the dialect-aware message
// layer on top.
//
// Methods are safe for concurrent use: writes are serialized by one
// writer lock, reads by one reader lock, and the epoch is read without
// locking.
type Transport struct {
	epoch atomic.Uint64

	// maxLead bounds how far ahead of the current epoch an incoming
	// frame may pull the send epoch via the follow rule; frames beyond
	// it are still delivered but do not move the epoch, so a forged
	// epoch header cannot pin the (monotonic) epoch at a garbage value.
	maxLead uint64

	wmu  sync.Mutex // serializes frame writes, guards whdr
	w    io.Writer
	whdr [frame.EpochHeaderLen]byte

	rmu  sync.Mutex // serializes frame reads, guards rbuf and rhdr
	r    io.Reader
	rbuf []byte
	rhdr [frame.EpochHeaderLen]byte
}

// NewTransport wraps rw in a session transport starting at epoch 0.
func NewTransport(rw io.ReadWriter) *Transport {
	return &Transport{w: rw, r: rw, rbuf: frame.GetBuffer(), maxLead: DefaultMaxEpochLead}
}

// Release returns the transport's internal buffers to the shared pool.
// Call it once the transport is done (after the connection closes); the
// transport must not be used afterwards.
func (t *Transport) Release() {
	t.rmu.Lock()
	frame.PutBuffer(t.rbuf)
	t.rbuf = nil
	t.rmu.Unlock()
}

// Epoch returns the current send epoch (lock-free).
func (t *Transport) Epoch() uint64 { return t.epoch.Load() }

// Advance raises the send epoch to epoch. Epochs are monotonic: a value
// at or below the current epoch is ignored, so racing advances (local
// rotation vs. following a peer) settle on the highest epoch seen.
func (t *Transport) Advance(epoch uint64) {
	for {
		cur := t.epoch.Load()
		if epoch <= cur || t.epoch.CompareAndSwap(cur, epoch) {
			return
		}
	}
}

// SendPayload writes one payload tagged with the current epoch.
func (t *Transport) SendPayload(payload []byte) error {
	return t.sendPayloadAt(t.epoch.Load(), payload)
}

// sendPayloadAt writes one data payload tagged with an explicit epoch
// (used by Conn, which binds the epoch to the message's graph, and by
// ServeLoop, which answers with the request's epoch).
func (t *Transport) sendPayloadAt(epoch uint64, payload []byte) error {
	return t.sendFrameAt(frame.KindData, epoch, payload)
}

// sendFrameAt writes one frame of any kind. The header is staged in the
// transport's own scratch so the hot path does not allocate; Conn's
// control plane (the rekey handshake) sends its control frames through
// here with a nonzero kind.
func (t *Transport) sendFrameAt(kind byte, epoch uint64, payload []byte) error {
	t.wmu.Lock()
	defer t.wmu.Unlock()
	if err := frame.EncodeHeader(t.whdr[:], kind, epoch, len(payload)); err != nil {
		return err
	}
	if _, err := t.w.Write(t.whdr[:]); err != nil {
		return err
	}
	_, err := t.w.Write(payload)
	return err
}

// recvFrame reads one frame under rmu into buf, via the transport's own
// header scratch (no per-read allocation).
func (t *Transport) recvFrame(buf []byte) ([]byte, uint64, byte, error) {
	t.rmu.Lock()
	defer t.rmu.Unlock()
	return t.recvFrameLocked(buf)
}

func (t *Transport) recvFrameLocked(buf []byte) ([]byte, uint64, byte, error) {
	if _, err := io.ReadFull(t.r, t.rhdr[:]); err != nil {
		return buf, 0, 0, err
	}
	kind, n, epoch, err := frame.DecodeHeader(t.rhdr[:])
	if err != nil {
		return buf, 0, 0, err
	}
	out, err := frame.ReadBody(t.r, buf, n)
	return out, epoch, kind, err
}

// RecvPayload reads one data frame, appending the payload to buf (which
// may be nil or a recycled buffer) and returning the extended slice and
// the frame's epoch. Control frames (the session layer's rekey
// handshake) are read and discarded: raw transport users exchange
// payloads only, and a control frame neither surfaces nor moves the
// epoch. Receiving a data epoch above the current send epoch — but
// within DefaultMaxEpochLead of it — advances it, so a peer follows the
// other side's rotation automatically; a frame naming a far-future epoch
// is delivered without moving the epoch (the caller sees the raw epoch
// and decides).
func (t *Transport) RecvPayload(buf []byte) ([]byte, uint64, error) {
	for {
		out, epoch, kind, err := t.recvFrame(buf)
		if err != nil {
			return out, 0, err
		}
		if kind != frame.KindData {
			buf = out[:0]
			continue
		}
		t.follow(epoch)
		return out, epoch, nil
	}
}

// follow applies the bounded follow rule.
func (t *Transport) follow(epoch uint64) {
	if cur := t.epoch.Load(); epoch > cur && epoch-cur <= t.maxLead {
		t.Advance(epoch)
	}
}

// Roundtrip sends a request payload and returns the response payload and
// its epoch. The returned slice is an internal buffer valid until the
// next Roundtrip; callers keeping the bytes must copy. This is the client
// side of a request/response core application.
func (t *Transport) Roundtrip(req []byte) ([]byte, uint64, error) {
	if err := t.SendPayload(req); err != nil {
		return nil, 0, err
	}
	t.rmu.Lock()
	defer t.rmu.Unlock()
	for {
		out, epoch, kind, err := t.recvFrameLocked(t.rbuf[:0])
		if err != nil {
			return nil, 0, err
		}
		t.rbuf = out
		if kind != frame.KindData {
			continue
		}
		t.follow(epoch)
		return out, epoch, nil
	}
}

// ServeLoop is the server side of a request/response core application:
// it reads request payloads and answers each with handle's response,
// tagged with the request's epoch, until the stream ends or handle fails.
// The request slice passed to handle is reused across iterations.
func (t *Transport) ServeLoop(handle func(req []byte) ([]byte, error)) error {
	buf := frame.GetBuffer()
	defer func() { frame.PutBuffer(buf) }() // buf rebinds as frames grow it
	for {
		req, epoch, err := t.RecvPayload(buf[:0])
		if err != nil {
			if err == io.EOF {
				return nil
			}
			return err
		}
		buf = req
		resp, err := handle(req)
		if err != nil {
			return fmt.Errorf("session: handle: %w", err)
		}
		if err := t.sendPayloadAt(epoch, resp); err != nil {
			return err
		}
	}
}

// Serve accepts connections from ln until it is closed, running serve on
// a fresh Transport per connection in its own goroutine. It factors the
// accept loop the protocol core applications previously duplicated.
func Serve(ln net.Listener, serve func(t *Transport)) {
	for {
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		go func() {
			defer conn.Close()
			t := NewTransport(conn)
			defer t.Release()
			serve(t)
		}()
	}
}
