package session

import (
	"bytes"
	"io"
	"testing"

	"protoobf/internal/core"
	"protoobf/internal/frame"
)

// discardWriter adapts a reader-only fuzz stream into the io.ReadWriter
// NewConn expects; writes vanish.
type discardWriter struct{ io.Reader }

func (discardWriter) Write(p []byte) (int, error) { return len(p), nil }

// FuzzSessionRecv feeds arbitrary byte streams to a session receiver:
// malformed, truncated or cross-dialect frames must surface errors, never
// panic or hang. The loop is bounded because every frame consumes at
// least a header's worth of input.
func FuzzSessionRecv(f *testing.F) {
	proto, err := core.Compile(beaconSpec, core.ObfuscationOptions{PerNode: 2, Seed: 5})
	if err != nil {
		f.Fatal(err)
	}

	// Seed corpus: a valid frame, its truncations, a huge length, and an
	// unknown-epoch frame.
	valid := &bytes.Buffer{}
	tr := NewTransport(valid)
	if err := tr.SendPayload([]byte("not a beacon")); err != nil {
		f.Fatal(err)
	}
	vb := valid.Bytes()
	f.Add(vb)
	f.Add(vb[:len(vb)-3])
	f.Add(vb[:frame.EpochHeaderLen-2])
	f.Add([]byte{0xFF, 0xFF, 0xFF, 0xFF, 1, 2, 3, 4, 5, 6, 7, 8})
	f.Add(append([]byte{0, 0, 0, 2, 0, 0, 0, 0, 0, 0, 0, 9}, 'h', 'i'))

	f.Fuzz(func(t *testing.T, data []byte) {
		c, err := NewConn(discardWriter{bytes.NewReader(data)}, Fixed(proto.Graph))
		if err != nil {
			t.Fatal(err)
		}
		for {
			if _, err := c.Recv(); err != nil {
				break
			}
		}
	})
}

// FuzzTransportRecv exercises the frame layer alone with buffer reuse
// across frames.
func FuzzTransportRecv(f *testing.F) {
	f.Add([]byte{0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0})
	f.Add([]byte{0, 0, 0, 5, 0, 0, 0, 0, 0, 0, 0, 1, 'a', 'b'})
	f.Fuzz(func(t *testing.T, data []byte) {
		tr := NewTransport(discardWriter{bytes.NewReader(data)})
		buf := frame.GetBuffer()
		defer frame.PutBuffer(buf)
		for {
			out, _, err := tr.RecvPayload(buf[:0])
			if err != nil {
				break
			}
			buf = out
		}
	})
}
