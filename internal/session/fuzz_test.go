package session

import (
	"bytes"
	"encoding/binary"
	"io"
	"testing"

	"protoobf/internal/core"
	"protoobf/internal/frame"
)

// discardWriter adapts a reader-only fuzz stream into the io.ReadWriter
// NewConn expects; writes vanish.
type discardWriter struct{ io.Reader }

func (discardWriter) Write(p []byte) (int, error) { return len(p), nil }

// FuzzSessionRecv feeds arbitrary byte streams to a session receiver:
// malformed, truncated or cross-dialect frames must surface errors, never
// panic or hang. The loop is bounded because every frame consumes at
// least a header's worth of input.
func FuzzSessionRecv(f *testing.F) {
	proto, err := core.Compile(beaconSpec, core.ObfuscationOptions{PerNode: 2, Seed: 5})
	if err != nil {
		f.Fatal(err)
	}

	// Seed corpus: a valid frame, its truncations, a huge length, and an
	// unknown-epoch frame.
	valid := &bytes.Buffer{}
	tr := NewTransport(valid)
	if err := tr.SendPayload([]byte("not a beacon")); err != nil {
		f.Fatal(err)
	}
	vb := valid.Bytes()
	f.Add(vb)
	f.Add(vb[:len(vb)-3])
	f.Add(vb[:frame.EpochHeaderLen-2])
	f.Add([]byte{0xFF, 0xFF, 0xFF, 0xFF, 1, 2, 3, 4, 5, 6, 7, 8})
	f.Add(append([]byte{0, 0, 0, 2, 0, 0, 0, 0, 0, 0, 0, 9}, 'h', 'i'))

	f.Fuzz(func(t *testing.T, data []byte) {
		c, err := NewConn(discardWriter{bytes.NewReader(data)}, Fixed(proto.Graph))
		if err != nil {
			t.Fatal(err)
		}
		for {
			if _, err := c.Recv(); err != nil {
				break
			}
		}
	})
}

// FuzzTransportRecv exercises the frame layer alone with buffer reuse
// across frames.
func FuzzTransportRecv(f *testing.F) {
	f.Add([]byte{0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0})
	f.Add([]byte{0, 0, 0, 5, 0, 0, 0, 0, 0, 0, 0, 1, 'a', 'b'})
	f.Fuzz(func(t *testing.T, data []byte) {
		tr := NewTransport(discardWriter{bytes.NewReader(data)})
		buf := frame.GetBuffer()
		defer frame.PutBuffer(buf)
		for {
			out, _, err := tr.RecvPayload(buf[:0])
			if err != nil {
				break
			}
			buf = out
		}
	})
}

// FuzzControlFrame fuzzes the rekey control-frame parser directly:
// arbitrary (kind, header epoch, payload) triples — the exact surface a
// peer controls after the transport framing — must be cleanly accepted
// or rejected, never panic, and never corrupt the session (a second
// dispatch of anything must still be safe). The versioner is a real
// rotation view, so accepted proposals exercise the full unmask →
// magic-check → plausibility → apply → compile → ack path.
func FuzzControlFrame(f *testing.F) {
	rot, err := core.NewRotation(beaconSpec, core.ObfuscationOptions{Seed: 7})
	if err != nil {
		f.Fatal(err)
	}

	// Seed corpus: a correctly masked proposal and ack for epoch 1 (the
	// golden path), the same bytes unmasked (wrong-family forgery), a
	// short payload, an oversized one, and unknown kinds.
	seedView := rot.View()
	mkControl := func(from uint64, seed int64) []byte {
		p := make([]byte, controlLen)
		binary.BigEndian.PutUint32(p[:4], controlMagic)
		binary.BigEndian.PutUint64(p[4:12], from)
		binary.BigEndian.PutUint64(p[12:20], uint64(seed))
		pad := seedView.ControlPad(from-1, controlLen)
		for i := range p {
			p[i] ^= pad[i]
		}
		return p
	}
	f.Add(byte(frame.KindRekeyPropose), uint64(0), mkControl(1, 0x5EED))
	f.Add(byte(frame.KindRekeyAck), uint64(0), mkControl(1, 0x5EED))
	f.Add(byte(frame.KindRekeyPropose), uint64(0), func() []byte {
		p := make([]byte, controlLen)
		binary.BigEndian.PutUint32(p[:4], controlMagic)
		binary.BigEndian.PutUint64(p[4:12], 1)
		return p
	}())
	f.Add(byte(frame.KindRekeyPropose), uint64(3), []byte{1, 2, 3})
	f.Add(byte(frame.KindRekeyAck), uint64(9), make([]byte, controlLen+5))
	f.Add(byte(0x7F), uint64(0), mkControl(2, -1))

	f.Fuzz(func(t *testing.T, kind byte, hdrEpoch uint64, payload []byte) {
		// Fresh view per run: rekey state must not leak across inputs
		// (the corpus would otherwise order-depend), while compiled
		// dialects stay shared in the rotation's cache.
		c, err := NewConn(discardWriter{bytes.NewReader(nil)}, rot.View())
		if err != nil {
			t.Fatal(err)
		}
		// handleControl mutates payload in place (unmasking); hand it a
		// copy so the second dispatch below sees the original bytes.
		p1 := append([]byte(nil), payload...)
		err1 := c.handleControl(kind, hdrEpoch, p1)
		if len(payload) != controlLen && err1 == nil {
			t.Fatalf("payload of %d bytes accepted, want %d", len(payload), controlLen)
		}
		// Whatever the first dispatch did, the session must survive a
		// replay of the same frame (duplicate delivery) and keep working.
		p2 := append([]byte(nil), payload...)
		_ = c.handleControl(kind, hdrEpoch, p2)
		if _, err := c.NewMessage(); err != nil {
			t.Fatalf("session unusable after control frames: %v", err)
		}
	})
}
