// Package sched derives dialect epochs from coarse wall-clock time,
// the paper's deployment model (§VIII: new obfuscated versions "at
// regular intervals") made operational. Two peers configured with the
// same genesis instant and interval length compute the same epoch from
// their own clocks, so they converge on the same dialect with no
// coordination at all — including after a network partition, when the
// returning peer's clock has kept counting intervals and its scheduler
// lands directly on the fleet-wide current epoch.
//
// The clock is injectable (Scheduler.WithClock) so tests and examples
// drive epoch time deterministically; production schedulers use
// time.Now. Clock skew between peers is absorbed by the session layer's
// epoch follow rule and its dialect cache window: a peer up to
// (window-1) intervals behind still decodes the frames of a peer that
// has already crossed into the next epoch.
package sched

import "time"

// Scheduler maps wall-clock time onto a monotonically increasing epoch
// counter: epoch e spans [genesis + e*interval, genesis + (e+1)*interval).
// A Scheduler is immutable after construction and safe for concurrent
// use as long as its clock function is.
type Scheduler struct {
	genesis  time.Time
	interval time.Duration
	now      func() time.Time
}

// New returns a scheduler ticking every interval from genesis, reading
// time.Now. It panics if interval is not positive, mirroring
// time.NewTicker: a zero interval is a configuration bug, not a runtime
// condition.
func New(genesis time.Time, interval time.Duration) *Scheduler {
	if interval <= 0 {
		panic("sched: non-positive interval")
	}
	return &Scheduler{genesis: genesis, interval: interval, now: time.Now}
}

// WithClock returns a copy of the scheduler reading time from now
// instead of time.Now — the injectable clock for tests, simulations and
// examples. The function must be safe for concurrent calls.
func (s *Scheduler) WithClock(now func() time.Time) *Scheduler {
	c := *s
	c.now = now
	return &c
}

// Genesis returns the instant of epoch 0.
func (s *Scheduler) Genesis() time.Time { return s.genesis }

// Interval returns the length of one epoch.
func (s *Scheduler) Interval() time.Duration { return s.interval }

// Epoch returns the epoch the clock currently falls in. Instants before
// genesis clamp to epoch 0, so a peer with a slightly early clock speaks
// the first dialect rather than underflowing.
func (s *Scheduler) Epoch() uint64 {
	return s.EpochAt(s.now())
}

// EpochAt returns the epoch a given instant falls in.
func (s *Scheduler) EpochAt(t time.Time) uint64 {
	d := t.Sub(s.genesis)
	if d < 0 {
		return 0
	}
	return uint64(d / s.interval)
}

// Next returns the upcoming epoch and how long until it starts — the
// sleep a rotation daemon wants between dialect switches.
func (s *Scheduler) Next() (uint64, time.Duration) {
	t := s.now()
	e := s.EpochAt(t)
	start := s.genesis.Add(time.Duration(e+1) * s.interval)
	return e + 1, start.Sub(t)
}
