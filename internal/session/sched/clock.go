package sched

import (
	"sync"
	"time"
)

// FakeClock is a hand-driven clock for tests, simulations and examples:
// pass its Now method to Scheduler.WithClock and advance it explicitly.
// It is safe for concurrent use, so one goroutine can advance epoch time
// while session peers read it.
type FakeClock struct {
	mu sync.Mutex
	t  time.Time
}

// NewFakeClock returns a fake clock frozen at start.
func NewFakeClock(start time.Time) *FakeClock {
	return &FakeClock{t: start}
}

// Now returns the current fake instant.
func (f *FakeClock) Now() time.Time {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.t
}

// Advance moves the clock forward by d.
func (f *FakeClock) Advance(d time.Duration) {
	f.mu.Lock()
	f.t = f.t.Add(d)
	f.mu.Unlock()
}

// Set jumps the clock to t (backwards jumps are allowed; schedulers
// clamp instants before genesis to epoch 0).
func (f *FakeClock) Set(t time.Time) {
	f.mu.Lock()
	f.t = t
	f.mu.Unlock()
}
