package sched

import (
	"testing"
	"time"
)

var genesis = time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)

func TestEpochAt(t *testing.T) {
	s := New(genesis, time.Hour)
	cases := []struct {
		at   time.Time
		want uint64
	}{
		{genesis.Add(-time.Minute), 0}, // pre-genesis clamps
		{genesis, 0},
		{genesis.Add(59 * time.Minute), 0},
		{genesis.Add(time.Hour), 1},
		{genesis.Add(time.Hour + time.Nanosecond), 1},
		{genesis.Add(1000 * time.Hour), 1000},
	}
	for _, tc := range cases {
		if got := s.EpochAt(tc.at); got != tc.want {
			t.Errorf("EpochAt(%v) = %d, want %d", tc.at, got, tc.want)
		}
	}
}

func TestIndependentClocksConverge(t *testing.T) {
	// Two peers with independent fake clocks that agree only on
	// (genesis, interval) compute the same epoch — even when one clock
	// jumped a partition's worth of intervals and the clocks are skewed
	// within an interval of each other.
	clockA := NewFakeClock(genesis)
	clockB := NewFakeClock(genesis.Add(3 * time.Second)) // skew < interval
	a := New(genesis, time.Minute).WithClock(clockA.Now)
	b := New(genesis, time.Minute).WithClock(clockB.Now)

	clockA.Advance(500 * time.Minute)
	clockB.Advance(500 * time.Minute)
	if ea, eb := a.Epoch(), b.Epoch(); ea != 500 || eb != 500 {
		t.Fatalf("epochs after jump: A=%d B=%d, want 500/500", ea, eb)
	}
}

func TestNext(t *testing.T) {
	clock := NewFakeClock(genesis.Add(90 * time.Second))
	s := New(genesis, time.Minute).WithClock(clock.Now)
	next, wait := s.Next()
	if next != 2 || wait != 30*time.Second {
		t.Fatalf("Next() = (%d, %v), want (2, 30s)", next, wait)
	}
}

func TestNonPositiveIntervalPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("New with zero interval did not panic")
		}
	}()
	New(genesis, 0)
}
