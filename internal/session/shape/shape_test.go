package shape

import (
	"testing"
	"time"
)

// TestDefaultValidates pins the shipped default to its own contract.
func TestDefaultValidates(t *testing.T) {
	if err := Default().Validate(); err != nil {
		t.Fatalf("Default() does not validate: %v", err)
	}
}

func TestValidateRejects(t *testing.T) {
	base := Default()
	cases := []struct {
		name string
		mut  func(*Profile)
	}{
		{"no bins", func(p *Profile) { p.Bins = nil }},
		{"mtu below trailer", func(p *Profile) { p.MTU = TrailerLen }},
		{"zero weight", func(p *Profile) { p.Bins[0].Weight = 0 }},
		{"negative weight", func(p *Profile) { p.Bins[0].Weight = -1 }},
		{"zero lo", func(p *Profile) { p.Bins[0].Lo = 0 }},
		{"hi below lo", func(p *Profile) { p.Bins[0].Hi = p.Bins[0].Lo - 1 }},
		{"hi above mtu", func(p *Profile) { p.Bins[1].Hi = p.MTU + 1 }},
		{"negative min gap", func(p *Profile) { p.MinGap = -time.Millisecond }},
		{"max gap below min", func(p *Profile) { p.MaxGap = p.MinGap - 1 }},
		{"negative cover idle", func(p *Profile) { p.CoverIdle = -time.Second }},
	}
	for _, tc := range cases {
		p := base
		p.Bins = append([]Bin(nil), base.Bins...)
		tc.mut(&p)
		if err := p.Validate(); err == nil {
			t.Errorf("%s: Validate accepted a broken profile", tc.name)
		}
	}
}

// TestSamplerHonorsSupport drives 10k draws and checks every target lies
// in some bin (or was clamped up to the requested minimum) and never
// exceeds the MTU — the property the shaped send path relies on to fit
// every frame.
func TestSamplerHonorsSupport(t *testing.T) {
	p := Default()
	s := NewSampler(p, 42)
	inBin := func(n int) bool {
		for _, b := range p.Bins {
			if n >= b.Lo && n <= b.Hi {
				return true
			}
		}
		return false
	}
	for i := 0; i < 10000; i++ {
		min := 1 + i%p.MTU // sweep every feasible minimum
		n := s.TargetLen(min)
		if n < min {
			t.Fatalf("draw %d: TargetLen(%d) = %d below the minimum", i, min, n)
		}
		if n > p.MTU {
			t.Fatalf("draw %d: TargetLen(%d) = %d above MTU %d", i, min, n, p.MTU)
		}
		if n != min && !inBin(n) {
			t.Fatalf("draw %d: unclamped target %d lies in no bin", i, n)
		}
	}
}

// TestSamplerGapBounds checks 10k gaps stay inside [MinGap, MaxGap].
func TestSamplerGapBounds(t *testing.T) {
	p := Default()
	s := NewSampler(p, 7)
	for i := 0; i < 10000; i++ {
		g := s.Gap()
		if g < p.MinGap || g > p.MaxGap {
			t.Fatalf("draw %d: gap %v outside [%v, %v]", i, g, p.MinGap, p.MaxGap)
		}
	}
}

// TestSamplerDeterministic: two samplers sharing (profile, seed) draw
// identical length and gap sequences even when one writes far more pad —
// the property that keeps two shaped peers' observable streams aligned.
func TestSamplerDeterministic(t *testing.T) {
	p := Default()
	a, b := NewSampler(p, 99), NewSampler(p, 99)
	var buf []byte
	for i := 0; i < 1000; i++ {
		// a pads heavily, b not at all: the target/gap streams must not care.
		buf = a.AppendPad(buf[:0], 100)
		if la, lb := a.TargetLen(1), b.TargetLen(1); la != lb {
			t.Fatalf("draw %d: targets diverged (%d vs %d) under different pad volume", i, la, lb)
		}
		if ga, gb := a.Gap(), b.Gap(); ga != gb {
			t.Fatalf("draw %d: gaps diverged (%v vs %v) under different pad volume", i, ga, gb)
		}
	}
}

// TestDeriveValidAndDeterministic: derived profiles validate for many
// (seed, epoch) pairs, equal inputs derive equal profiles, and distinct
// epochs actually move the shape.
func TestDeriveValidAndDeterministic(t *testing.T) {
	base := Default()
	moved := false
	for epoch := uint64(0); epoch < 200; epoch++ {
		d := Derive(base, 1234, epoch)
		if err := d.Validate(); err != nil {
			t.Fatalf("epoch %d: derived profile invalid: %v", epoch, err)
		}
		if d.MinGap < base.MinGap || d.MaxGap > base.MaxGap {
			t.Fatalf("epoch %d: derived gaps [%v, %v] escape the base envelope [%v, %v]",
				epoch, d.MinGap, d.MaxGap, base.MinGap, base.MaxGap)
		}
		d2 := Derive(base, 1234, epoch)
		for i := range d.Bins {
			if d.Bins[i] != d2.Bins[i] {
				t.Fatalf("epoch %d: Derive not deterministic: %+v vs %+v", epoch, d.Bins[i], d2.Bins[i])
			}
		}
		if d.Bins[0] != base.Bins[0] {
			moved = true
		}
	}
	if !moved {
		t.Fatal("200 epochs of Derive never moved the first bin — the shape does not rotate")
	}
	if Derive(base, 1, 5).Bins[0] == Derive(base, 2, 5).Bins[0] &&
		Derive(base, 1, 6).Bins[0] == Derive(base, 2, 6).Bins[0] {
		t.Fatal("distinct seeds derive identical bins across epochs")
	}
}

func TestTrailerRoundtrip(t *testing.T) {
	s := NewSampler(Default(), 3)
	for _, tc := range []struct {
		content int
		pad     int
		more    bool
	}{
		{0, 0, false},
		{1, 0, true},
		{100, 57, false},
		{100, 57, true},
		{1444, 0, true},
		{0, 1444, false},
	} {
		buf := s.AppendPad(nil, tc.content) // arbitrary content bytes
		buf = s.AppendPad(buf, tc.pad)
		buf = AppendTrailer(buf, tc.pad, tc.more)
		if want := tc.content + tc.pad + TrailerLen; len(buf) != want {
			t.Fatalf("%+v: framed %d bytes, want %d", tc, len(buf), want)
		}
		chunk, more, err := SplitTrailer(buf)
		if err != nil {
			t.Fatalf("%+v: SplitTrailer: %v", tc, err)
		}
		if len(chunk) != tc.content || more != tc.more {
			t.Fatalf("%+v: got %d content bytes, more=%v", tc, len(chunk), more)
		}
	}
}

func TestSplitTrailerRejects(t *testing.T) {
	for _, tc := range []struct {
		name string
		p    []byte
	}{
		{"empty", nil},
		{"short", []byte{0, 0, 4}},
		{"reserved flags", AppendTrailer(nil, 0, false)[:3:3]},
		{"overhead above frame", []byte{0x00, 0x00, 0x00, 0x09}},
		{"overhead below trailer", []byte{0x00, 0x00, 0x00, 0x01}},
		{"zero overhead", []byte{0x00, 0x00, 0x00, 0x00}},
	} {
		p := tc.p
		if tc.name == "reserved flags" {
			p = append(p, 0x41, 0x00, 0x00, 0x04) // flag bit 0x40 set
		}
		if _, _, err := SplitTrailer(p); err == nil {
			t.Errorf("%s: SplitTrailer accepted %x", tc.name, p)
		}
	}
}

func TestMixSeedSpread(t *testing.T) {
	seen := map[int64]bool{}
	for epoch := uint64(0); epoch < 1000; epoch++ {
		s := MixSeed(42, epoch)
		if s < 0 {
			t.Fatalf("epoch %d: negative mixed seed %d", epoch, s)
		}
		if seen[s] {
			t.Fatalf("epoch %d: mixed seed %d collides", epoch, s)
		}
		seen[s] = true
	}
}
