// Package shape defines traffic-shaping profiles for the session layer:
// target frame-length distributions, inter-frame departure pacing and
// cover-traffic cadence. The paper's obfuscation morphs the wire
// *format* per epoch but leaves frame lengths and burst timing
// untouched, so a ScrambleSuit-style statistical observer classifies
// sessions without decoding a byte; a Profile is the counter-measure:
// every outgoing data frame is padded (and, above the MTU, split) to a
// length sampled from the profile, departures are paced to sampled
// inter-frame gaps, and idle sessions emit cover frames, so the
// observable length/timing distributions are the profile's, not the
// application's.
//
// Samplers are deterministic and seedable — captures and tests
// reproduce bit-identical shaped traffic — and Derive morphs a base
// profile per (seed, epoch), so the shape itself rotates at epoch
// boundaries exactly like the dialect does.
//
// The shaped-frame encoding is a payload trailer, mirroring the frame
// package's kind|length idiom (see TrailerLen): pad bytes live inside
// the framed payload, because the cleartext 24-bit length word must
// keep naming the exact byte count the receiver reads.
package shape

import (
	"encoding/binary"
	"fmt"
	"time"

	"protoobf/internal/rng"
)

// TrailerLen is the fixed tail every shaped data frame carries: a 4-byte
// big-endian word whose low 24 bits give the total shaping overhead
// (pad bytes plus this word) and whose top byte carries flags.
const TrailerLen = 4

// flagMore marks a fragment of an MTU-split payload: the receiver
// buffers the chunk and keeps reading until a frame without the flag
// completes the message. The remaining flag bits are reserved and must
// be zero.
const flagMore = 0x80

// Bin is one weighted length range of a profile: target lengths are
// drawn uniformly from [Lo, Hi], bins chosen in proportion to Weight.
type Bin struct {
	Lo, Hi int
	Weight int
}

// Profile is a traffic shape: what frame lengths and inter-frame gaps
// an observer should see, regardless of what the application sends.
type Profile struct {
	// Name labels the profile in reports and metrics.
	Name string

	// Bins is the target frame-length distribution (framed payload
	// bytes, shaping trailer included). A sampled target below what a
	// frame needs is clamped up, so bins whose support sits above the
	// application's frame sizes make observed lengths pure samples.
	Bins []Bin

	// MTU bounds every shaped frame's payload; messages that do not fit
	// are split into flagMore fragments of at most MTU bytes each.
	MTU int

	// MinGap and MaxGap bound the sampled inter-frame departure gap:
	// each frame departs no earlier than the previous departure plus a
	// gap drawn uniformly from [MinGap, MaxGap]. Zero both to disable
	// pacing (length morphing only).
	MinGap, MaxGap time.Duration

	// CoverIdle is how long a shaped session may sit idle before its
	// cover scheduler emits a decoy frame (frame.KindCover). Zero
	// disables cover traffic.
	CoverIdle time.Duration

	// Seed seeds the profile's samplers when the session's Versioner
	// cannot supply a per-epoch shape seed (static sessions).
	Seed int64
}

// Default returns the ScrambleSuit-style bimodal default: most frames
// near a full MTU or in a mid-size band, sub-millisecond pacing, and
// covers after a quarter second of silence.
func Default() Profile {
	return Profile{
		Name: "bimodal",
		Bins: []Bin{
			{Lo: 560, Hi: 760, Weight: 3},
			{Lo: 1248, Hi: 1448, Weight: 2},
		},
		MTU:       1448,
		MinGap:    250 * time.Microsecond,
		MaxGap:    2 * time.Millisecond,
		CoverIdle: 250 * time.Millisecond,
	}
}

// Validate checks the profile is usable: at least one bin, sane bounds,
// positive weights, every bin inside (0, MTU], gaps ordered. The MTU
// must leave room for a fragment to make progress past its trailer.
func (p Profile) Validate() error {
	if len(p.Bins) == 0 {
		return fmt.Errorf("shape: profile %q has no length bins", p.Name)
	}
	if p.MTU <= TrailerLen {
		return fmt.Errorf("shape: profile %q MTU %d leaves no room past the %d-byte trailer", p.Name, p.MTU, TrailerLen)
	}
	for i, b := range p.Bins {
		if b.Weight <= 0 {
			return fmt.Errorf("shape: profile %q bin %d has weight %d, want > 0", p.Name, i, b.Weight)
		}
		if b.Lo <= 0 || b.Hi < b.Lo || b.Hi > p.MTU {
			return fmt.Errorf("shape: profile %q bin %d [%d, %d] outside (0, MTU=%d]", p.Name, i, b.Lo, b.Hi, p.MTU)
		}
	}
	if p.MinGap < 0 || p.MaxGap < p.MinGap {
		return fmt.Errorf("shape: profile %q gap bounds [%v, %v] unordered", p.Name, p.MinGap, p.MaxGap)
	}
	if p.CoverIdle < 0 {
		return fmt.Errorf("shape: profile %q cover idle %v negative", p.Name, p.CoverIdle)
	}
	return nil
}

// Derive morphs a base profile deterministically per (seed, epoch):
// bin edges shift within their span, bin weights re-balance and the gap
// bounds stretch, all inside the base profile's envelope, so the shape
// rotates at epoch boundaries — a long-lived observer sees a moving
// target, not one fixed fingerprint — while two peers deriving from the
// same seed still agree on it. The result always validates when the
// base does.
func Derive(base Profile, seed int64, epoch uint64) Profile {
	r := rng.New(MixSeed(seed, epoch))
	d := base
	d.Bins = append([]Bin(nil), base.Bins...)
	for i := range d.Bins {
		b := &d.Bins[i]
		span := b.Hi - b.Lo
		// Shift the bin by up to a quarter of its span either way,
		// clamped into (0, MTU].
		shift := r.Intn(span/2+1) - span/4
		lo, hi := b.Lo+shift, b.Hi+shift
		if lo < 1 {
			hi += 1 - lo
			lo = 1
		}
		if hi > d.MTU {
			lo -= hi - d.MTU
			hi = d.MTU
			if lo < 1 {
				lo = 1
			}
		}
		b.Lo, b.Hi = lo, hi
		b.Weight = b.Weight + r.Intn(2) // nudge relative frequencies
	}
	if d.MaxGap > d.MinGap {
		span := d.MaxGap - d.MinGap
		// Shrink the gap window from either end by up to a quarter span.
		d.MinGap += time.Duration(r.Int63n(int64(span)/4 + 1))
		d.MaxGap -= time.Duration(r.Int63n(int64(span)/4 + 1))
		if d.MaxGap < d.MinGap {
			d.MaxGap = d.MinGap
		}
	}
	return d
}

// MixSeed mixes a master seed and an epoch with a SplitMix64-style
// finalizer (the per-epoch derivation idiom of internal/core), so
// adjacent epochs yield unrelated sampler streams.
func MixSeed(master int64, epoch uint64) int64 {
	z := uint64(master) ^ 0x73686170652e7631 // "shape.v1"
	z += 0x9E3779B97F4A7C15 * (epoch + 1)
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	z ^= z >> 31
	return int64(z >> 1)
}

// Sampler draws target lengths, inter-frame gaps and pad bytes from a
// profile. It is deterministic for a (profile, seed) pair, and every
// TargetLen/Gap call consumes a fixed number of draws from its own
// stream — pad bytes come from a split-off stream — so two sessions
// sharing a seed sample identical length/gap sequences however much
// padding each one writes. Not safe for concurrent use; the session
// layer serializes access under its shaper lock.
type Sampler struct {
	p     Profile
	r     *rng.R // lengths and gaps: fixed draws per call
	pad   *rng.R // pad bytes: volume must not skew the target stream
	total int
}

// NewSampler returns a sampler over p seeded with seed. The profile
// must validate.
func NewSampler(p Profile, seed int64) *Sampler {
	total := 0
	for _, b := range p.Bins {
		total += b.Weight
	}
	r := rng.New(seed)
	return &Sampler{p: p, r: r, pad: r.Split(), total: total}
}

// Profile returns the (possibly derived) profile the sampler draws from.
func (s *Sampler) Profile() Profile { return s.p }

// TargetLen samples a target framed-payload length: a weighted bin, then
// uniform within it. A target below min is clamped up to min — the
// frame must still fit its content — so callers keep min at or below
// the profile MTU via fragmentation.
func (s *Sampler) TargetLen(min int) int {
	w := s.r.Intn(s.total)
	b := s.p.Bins[0]
	for _, bin := range s.p.Bins {
		if w < bin.Weight {
			b = bin
			break
		}
		w -= bin.Weight
	}
	t := b.Lo + s.r.Intn(b.Hi-b.Lo+1)
	if t < min {
		t = min
	}
	return t
}

// Gap samples the next inter-frame departure gap from [MinGap, MaxGap].
func (s *Sampler) Gap() time.Duration {
	span := int64(s.p.MaxGap - s.p.MinGap)
	if span <= 0 {
		return s.p.MinGap
	}
	return s.p.MinGap + time.Duration(s.r.Int63n(span+1))
}

// AppendPad appends n random pad bytes to buf. Pad bytes are drawn from
// the sampler's isolated pad stream and are uniform — inside an
// obfuscated payload they are indistinguishable from content.
func (s *Sampler) AppendPad(buf []byte, n int) []byte {
	for i := 0; i < n; i++ {
		buf = append(buf, byte(s.pad.Intn(256)))
	}
	return buf
}

// AppendTrailer appends the shaped-frame trailer recording pad pad bytes
// (already appended by the caller) and the more-fragments flag.
func AppendTrailer(buf []byte, pad int, more bool) []byte {
	word := uint32(pad + TrailerLen)
	if more {
		word |= uint32(flagMore) << 24
	}
	var t [TrailerLen]byte
	binary.BigEndian.PutUint32(t[:], word)
	return append(buf, t[:]...)
}

// SplitTrailer validates and strips the shaping trailer from a received
// shaped payload, returning the content chunk and the more-fragments
// flag. Errors are protocol violations the session layer rejects (and
// counts): a frame too short for any trailer, reserved flag bits set,
// or an overhead claim the frame does not cover.
func SplitTrailer(p []byte) (chunk []byte, more bool, err error) {
	if len(p) < TrailerLen {
		return nil, false, fmt.Errorf("shape: frame of %d bytes is shorter than the %d-byte shaping trailer", len(p), TrailerLen)
	}
	word := binary.BigEndian.Uint32(p[len(p)-TrailerLen:])
	flags := byte(word >> 24)
	if flags&^byte(flagMore) != 0 {
		return nil, false, fmt.Errorf("shape: reserved trailer flag bits %#02x set", flags)
	}
	overhead := int(word & 0x00FFFFFF)
	if overhead < TrailerLen || overhead > len(p) {
		return nil, false, fmt.Errorf("shape: trailer claims %d overhead bytes of a %d-byte frame", overhead, len(p))
	}
	return p[:len(p)-overhead], flags&flagMore != 0, nil
}
