package session

import (
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"protoobf/internal/core"
	"protoobf/internal/frame"
	"protoobf/internal/metrics"
	"protoobf/internal/msgtree"
	"protoobf/internal/rng"
	"protoobf/internal/session/shape"
	"protoobf/internal/wire"
)

// fakeShapeClock is the deterministic time source the shaped tests
// inject: Sleep advances the clock by exactly the requested delay, so
// pacing "happens" with zero real waiting.
type fakeShapeClock struct {
	mu  sync.Mutex
	now time.Time
}

func newFakeShapeClock() *fakeShapeClock {
	return &fakeShapeClock{now: time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)}
}

func (f *fakeShapeClock) Now() time.Time {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.now
}

func (f *fakeShapeClock) Sleep(d time.Duration) {
	f.mu.Lock()
	f.now = f.now.Add(d)
	f.mu.Unlock()
}

// shapedOpts builds the session options of one shaped peer on a shared
// fake clock.
func shapedOpts(p shape.Profile, clk *fakeShapeClock, stats *metrics.ShapeCounters) Options {
	return Options{Shape: &p, ShapeClock: clk.Now, ShapeSleep: clk.Sleep, ShapeStats: stats}
}

// TestShapedRoundtrip sends every differential spec's messages through a
// shaped pair and checks the padding is invisible to the application:
// trees come back equal, frames were morphed, pad was actually added.
func TestShapedRoundtrip(t *testing.T) {
	for _, tc := range specCases {
		t.Run(tc.name, func(t *testing.T) {
			opts := core.ObfuscationOptions{PerNode: 2, Seed: 31}
			rotA, err := core.NewRotation(tc.spec, opts)
			if err != nil {
				t.Fatal(err)
			}
			rotB, err := core.NewRotation(tc.spec, opts)
			if err != nil {
				t.Fatal(err)
			}
			clk := newFakeShapeClock()
			var sa, sb metrics.ShapeCounters
			a, b, err := PairOpts(rotA.View(), rotB.View(),
				shapedOpts(shape.Default(), clk, &sa), shapedOpts(shape.Default(), clk, &sb))
			if err != nil {
				t.Fatal(err)
			}
			defer a.Release()
			defer b.Release()
			r := rng.New(5)
			for i := 0; i < 20; i++ {
				exchange(t, a, b, tc.build, r)
				exchange(t, b, a, tc.build, r)
			}
			got := sa.Snapshot()
			if got.ShapedFrames < 20 {
				t.Fatalf("a shaped %d frames, want >= 20", got.ShapedFrames)
			}
			if got.PadBytes == 0 {
				t.Fatal("a shaped frames with zero pad — the default profile should pad small messages")
			}
			if got.UnshapeRejects != 0 {
				t.Fatalf("a counted %d unshape rejects on a healthy stream", got.UnshapeRejects)
			}
		})
	}
}

// TestShapedFragmentation drives a message well past the profile MTU and
// checks it is split, reassembled, and counted.
func TestShapedFragmentation(t *testing.T) {
	rotA, rotB := newTestRotations(t, 37)
	clk := newFakeShapeClock()
	prof := shape.Profile{
		Name:   "tiny-mtu",
		Bins:   []shape.Bin{{Lo: 32, Hi: 64, Weight: 1}},
		MTU:    64,
		MinGap: time.Microsecond,
		MaxGap: 10 * time.Microsecond,
	}
	var sa, sb metrics.ShapeCounters
	a, b, err := PairOpts(rotA.View(), rotB.View(),
		shapedOpts(prof, clk, &sa), shapedOpts(prof, clk, &sb))
	if err != nil {
		t.Fatal(err)
	}
	defer a.Release()
	defer b.Release()
	r := rng.New(9)
	big := func(s *msgtree.Scope, r *rng.R) error {
		if err := s.SetUint("device", 7); err != nil {
			return err
		}
		if err := s.SetUint("seqno", 1); err != nil {
			return err
		}
		if err := s.SetBytes("status", r.PadBytes(10)); err != nil {
			return err
		}
		return s.SetBytes("sig", r.Bytes(500)) // ~9 fragments at MTU 64
	}
	for i := 0; i < 5; i++ {
		exchange(t, a, b, big, r)
	}
	got := sa.Snapshot()
	if got.Fragments == 0 {
		t.Fatal("500-byte messages through a 64-byte MTU produced no fragments")
	}
	if rx := sb.Snapshot(); rx.UnshapeRejects != 0 {
		t.Fatalf("receiver counted %d unshape rejects", rx.UnshapeRejects)
	}
}

// TestRecvKindByteRange is the full kind-byte regression table: every
// possible kind byte 0x00..0xFF is fed to a live session. Data decodes
// (or rejects malformed payloads), known control kinds reject garbage
// loudly, covers vanish silently, and every kind above frame.KindMax is
// rejected with the counted unknown-kind error — never a hang, never a
// crash, never a silently skipped frame.
func TestRecvKindByteRange(t *testing.T) {
	rotA, rotB := newTestRotations(t, 53)
	var stats metrics.ShapeCounters
	a, b := resumePair(t, rotA, rotB, Options{ShapeStats: &stats}, Options{})
	r := rng.New(3)
	wantUnknown := uint64(0)
	for kind := 0; kind < 256; kind++ {
		k := byte(kind)
		switch {
		case k == frame.KindData:
			// A 1-byte payload cannot satisfy any differential spec:
			// the reject must be a parse error, not a hang.
			if err := b.t.sendFrameAt(k, 0, r.Bytes(1)); err != nil {
				t.Fatal(err)
			}
			if _, err := a.Recv(); err == nil {
				t.Fatalf("kind %#02x: malformed data frame decoded", k)
			}
		case k == frame.KindCover:
			// Silently discarded — prove Recv moved past it by letting a
			// real message follow.
			if err := b.t.sendFrameAt(k, 0, r.Bytes(32)); err != nil {
				t.Fatal(err)
			}
			exchange(t, b, a, specCases[0].build, r)
		case k <= frame.KindMax:
			// Assigned control kinds must reject garbage payloads.
			if err := b.t.sendFrameAt(k, 0, r.Bytes(16)); err != nil {
				t.Fatal(err)
			}
			if _, err := a.Recv(); err == nil {
				t.Fatalf("kind %#02x: garbage control frame accepted", k)
			}
		default:
			if err := b.t.sendFrameAt(k, 0, r.Bytes(16)); err != nil {
				t.Fatal(err)
			}
			_, err := a.Recv()
			if err == nil || !strings.Contains(err.Error(), "unknown frame kind") {
				t.Fatalf("kind %#02x: err = %v, want an unknown-kind reject", k, err)
			}
			wantUnknown++
		}
	}
	got := stats.Snapshot()
	if got.UnknownKindRejects != wantUnknown {
		t.Fatalf("UnknownKindRejects = %d, want %d", got.UnknownKindRejects, wantUnknown)
	}
	if got.CoverDropped != 1 {
		t.Fatalf("CoverDropped = %d, want 1", got.CoverDropped)
	}
}

// TestCoversNeverSurface exercises the idle scheduler between shaped
// peers: covers are emitted only past the idle threshold, are consumed
// by Recv without ever becoming application messages, and are counted
// on both ends.
func TestCoversNeverSurface(t *testing.T) {
	rotA, rotB := newTestRotations(t, 59)
	clk := newFakeShapeClock()
	prof := shape.Default()
	var sa, sb metrics.ShapeCounters
	a, b, err := PairOpts(rotA.View(), rotB.View(),
		shapedOpts(prof, clk, &sa), shapedOpts(prof, clk, &sb))
	if err != nil {
		t.Fatal(err)
	}
	defer a.Release()
	defer b.Release()
	r := rng.New(8)

	if sent, err := a.emitCoverIfIdle(); err != nil || sent {
		t.Fatalf("cover before the idle threshold: sent=%v err=%v", sent, err)
	}
	const covers = 5
	for i := 0; i < covers; i++ {
		clk.Sleep(prof.CoverIdle)
		sent, err := a.emitCoverIfIdle()
		if err != nil {
			t.Fatal(err)
		}
		if !sent {
			t.Fatalf("cover %d: idle session emitted nothing", i)
		}
	}
	// The real message behind the covers is what Recv must deliver.
	exchange(t, a, b, specCases[0].build, r)
	if got := sa.Snapshot().CoverSent; got != covers {
		t.Fatalf("CoverSent = %d, want %d", got, covers)
	}
	if got := sb.Snapshot().CoverDropped; got != covers {
		t.Fatalf("CoverDropped = %d, want %d", got, covers)
	}
}

// TestCoverCompatibleWithUnshapedPeer is the backward-compatibility half
// of the cover contract: an unmodified (unshaped) receiver discards a
// shaped peer's covers and keeps decoding.
func TestCoverCompatibleWithUnshapedPeer(t *testing.T) {
	rotA, rotB := newTestRotations(t, 61)
	clk := newFakeShapeClock()
	var sa, sb metrics.ShapeCounters
	a, b, err := PairOpts(rotA.View(), rotB.View(),
		shapedOpts(shape.Default(), clk, &sa), Options{ShapeStats: &sb})
	if err != nil {
		t.Fatal(err)
	}
	defer a.Release()
	defer b.Release()
	clk.Sleep(shape.Default().CoverIdle)
	if sent, err := a.emitCoverIfIdle(); err != nil || !sent {
		t.Fatalf("cover emission: sent=%v err=%v", sent, err)
	}
	// Shaping is symmetric, so a's shaped data frames would not parse on
	// unshaped b — send one unshaped frame past the cover instead.
	m, err := a.NewMessage()
	if err != nil {
		t.Fatal(err)
	}
	r := rng.New(4)
	if err := specCases[0].build(m.Scope(), r); err != nil {
		t.Fatal(err)
	}
	out, err := wire.SerializeAppend(m, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := a.t.sendPayloadAt(a.Epoch(), out); err != nil {
		t.Fatal(err)
	}
	if _, err := b.Recv(); err != nil {
		t.Fatalf("unshaped peer choked on a cover frame: %v", err)
	}
	if got := sb.Snapshot().CoverDropped; got != 1 {
		t.Fatalf("unshaped peer CoverDropped = %d, want 1", got)
	}
}

// TestShapedPacingPreservesOrder: jitter delays frames but never reorders
// them — 50 sequenced messages arrive in sequence — and the pacer
// actually injected delay (the clock moved).
func TestShapedPacingPreservesOrder(t *testing.T) {
	rotA, rotB := newTestRotations(t, 67)
	clk := newFakeShapeClock()
	start := clk.Now()
	var sa, sb metrics.ShapeCounters
	a, b, err := PairOpts(rotA.View(), rotB.View(),
		shapedOpts(shape.Default(), clk, &sa), shapedOpts(shape.Default(), clk, &sb))
	if err != nil {
		t.Fatal(err)
	}
	defer a.Release()
	defer b.Release()
	for i := 0; i < 50; i++ {
		m, err := a.NewMessage()
		if err != nil {
			t.Fatal(err)
		}
		s := m.Scope()
		if err := s.SetUint("device", 1); err != nil {
			t.Fatal(err)
		}
		if err := s.SetUint("seqno", uint64(i)); err != nil {
			t.Fatal(err)
		}
		if err := s.SetBytes("status", []byte("ok")); err != nil {
			t.Fatal(err)
		}
		if err := s.SetBytes("sig", nil); err != nil {
			t.Fatal(err)
		}
		if err := a.Send(m); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 50; i++ {
		got, err := b.Recv()
		if err != nil {
			t.Fatal(err)
		}
		seq, err := got.Scope().GetUint("seqno")
		if err != nil {
			t.Fatal(err)
		}
		if seq != uint64(i) {
			t.Fatalf("message %d arrived with seqno %d — pacing reordered the stream", i, seq)
		}
	}
	if sa.Snapshot().DelayNanos == 0 {
		t.Fatal("50 back-to-back sends paid no pacing delay")
	}
	if !clk.Now().After(start) {
		t.Fatal("the injected clock never moved — pacing did not engage")
	}
}

// TestUnshapeRejectsMalformedTrailer: a shaped receiver rejects (and
// counts) frames whose shaping trailer is truncated, flag-corrupted or
// lying about its overhead — without wedging the session.
func TestUnshapeRejectsMalformedTrailer(t *testing.T) {
	rotA, rotB := newTestRotations(t, 71)
	clk := newFakeShapeClock()
	var sa metrics.ShapeCounters
	a, b, err := PairOpts(rotA.View(), rotB.View(),
		shapedOpts(shape.Default(), clk, &sa), Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer a.Release()
	defer b.Release()
	bad := [][]byte{
		{0xAB, 0xCD},             // shorter than the trailer
		{0x41, 0x00, 0x00, 0x04}, // reserved flag bit set
		{0x00, 0x00, 0x00, 0x00}, // overhead below the trailer itself
		{0x00, 0x00, 0x00, 0x09}, // overhead above the frame
	}
	for i, p := range bad {
		if err := b.t.sendFrameAt(frame.KindData, 0, p); err != nil {
			t.Fatal(err)
		}
		if _, err := a.Recv(); err == nil {
			t.Fatalf("case %d: malformed trailer %x accepted", i, p)
		}
	}
	if got := sa.Snapshot().UnshapeRejects; got != uint64(len(bad)) {
		t.Fatalf("UnshapeRejects = %d, want %d", got, len(bad))
	}
}

// TestUnshapeRejectsEpochTornFragments: a fragment stream must complete
// in the epoch it started — a fragment under a different epoch is a
// framing violation, rejected and counted.
func TestUnshapeRejectsEpochTornFragments(t *testing.T) {
	rotA, rotB := newTestRotations(t, 73)
	clk := newFakeShapeClock()
	var sa metrics.ShapeCounters
	a, b, err := PairOpts(rotA.View(), rotB.View(),
		shapedOpts(shape.Default(), clk, &sa), Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer a.Release()
	defer b.Release()
	r := rng.New(6)
	frag := shape.AppendTrailer(r.Bytes(16), 0, true)  // epoch-0 fragment, more set
	tail := shape.AppendTrailer(r.Bytes(16), 0, false) // completion... at epoch 1
	if err := b.t.sendFrameAt(frame.KindData, 0, frag); err != nil {
		t.Fatal(err)
	}
	if err := b.t.sendFrameAt(frame.KindData, 1, tail); err != nil {
		t.Fatal(err)
	}
	_, err = a.Recv()
	if err == nil || !strings.Contains(err.Error(), "fragment") {
		t.Fatalf("err = %v, want an epoch-torn fragment reject", err)
	}
	if got := sa.Snapshot().UnshapeRejects; got != 1 {
		t.Fatalf("UnshapeRejects = %d, want 1", got)
	}
}

// TestShapedResumePreservesProfile: a shaped session that rekeyed and
// rotated is exported and resumed on a fresh stream; the resumed session
// keeps shaping (messages flow both ways), and the per-epoch derived
// shape picks up exactly where the exported one left off, because it
// re-derives from the restored rekey lineage.
func TestShapedResumePreservesProfile(t *testing.T) {
	rotA, rotB := newTestRotations(t, 79)
	clk := newFakeShapeClock()
	prof := shape.Default()
	var sa, sb metrics.ShapeCounters
	aopts := shapedOpts(prof, clk, &sa)
	bopts := shapedOpts(prof, clk, &sb)
	a, b := resumePair(t, rotA, rotB, aopts, bopts)
	r := rng.New(17)
	build := specCases[0].build

	exchange(t, a, b, build, r)
	if _, err := a.Rekey(0x5EED); err != nil {
		t.Fatal(err)
	}
	exchange(t, a, b, build, r) // b acks
	exchange(t, b, a, build, r) // a completes
	for i := 0; i < 3; i++ {
		if _, err := a.Rotate(); err != nil {
			t.Fatal(err)
		}
		exchange(t, a, b, build, r)
	}
	epoch := a.Epoch()

	// The shape the exporter would use at its current epoch.
	a.shaper.mu.Lock()
	want := a.shaper.samplerLocked(epoch).Profile()
	a.shaper.mu.Unlock()

	ticket, err := a.Export()
	if err != nil {
		t.Fatal(err)
	}
	ca, cb := newPipe()
	var sa2, sb2 metrics.ShapeCounters
	b2opts := shapedOpts(prof, clk, &sb2)
	b2, err := NewConnOpts(cb, rotB.View(), b2opts)
	if err != nil {
		t.Fatal(err)
	}
	defer b2.Release()
	a2opts := shapedOpts(prof, clk, &sa2)
	a2, err := ResumeConn(ca, rotA.View(), a2opts, ticket)
	if err != nil {
		t.Fatal(err)
	}
	defer a2.Release()

	a2.shaper.mu.Lock()
	got := a2.shaper.samplerLocked(a2.Epoch()).Profile()
	a2.shaper.mu.Unlock()
	if fmt.Sprintf("%+v", got) != fmt.Sprintf("%+v", want) {
		t.Fatalf("resumed shape diverged:\n  exported: %+v\n  resumed:  %+v", want, got)
	}

	exchange(t, a2, b2, build, r)
	exchange(t, b2, a2, build, r)
	if sa2.Snapshot().ShapedFrames == 0 {
		t.Fatal("resumed session sent unshaped frames")
	}
}

// TestShapedSoak runs 64 concurrent shaped sessions on the real clock
// (microsecond gaps, live cover goroutines), each mixing rekeys, epoch
// rotation and a mid-life migration — the -race workout for the whole
// shaping plane.
func TestShapedSoak(t *testing.T) {
	if testing.Short() {
		t.Skip("soak skipped in -short")
	}
	prof := shape.Profile{
		Name:      "soak",
		Bins:      []shape.Bin{{Lo: 16, Hi: 96, Weight: 2}, {Lo: 97, Hi: 160, Weight: 1}},
		MTU:       160,
		MinGap:    time.Microsecond,
		MaxGap:    5 * time.Microsecond,
		CoverIdle: time.Millisecond,
	}
	const sessions = 64
	errs := make(chan error, sessions)
	var wg sync.WaitGroup
	for i := 0; i < sessions; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			errs <- soakSession(int64(100+i), prof)
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		if err != nil {
			t.Error(err)
		}
	}
}

// soakSession is one shaped session lifetime: exchange, rekey, rotate,
// migrate, exchange again. It runs on the production clock and returns
// the first error.
func soakSession(seed int64, prof shape.Profile) error {
	opts := core.ObfuscationOptions{PerNode: 1, Seed: seed}
	rotA, err := core.NewRotation(pingSpec, opts)
	if err != nil {
		return err
	}
	rotB, err := core.NewRotation(pingSpec, opts)
	if err != nil {
		return err
	}
	var sa, sb metrics.ShapeCounters
	aopts := Options{Shape: &prof, ShapeStats: &sa}
	bopts := Options{Shape: &prof, ShapeStats: &sb}
	a, b, err := PairOpts(rotA.View(), rotB.View(), aopts, bopts)
	if err != nil {
		return err
	}
	r := rng.New(seed)
	ping := func(from, to *Conn) error {
		m, err := from.NewMessage()
		if err != nil {
			return err
		}
		s := m.Scope()
		if err := s.SetUint("a", uint64(r.Intn(1<<16))); err != nil {
			return err
		}
		if err := s.SetUint("b", uint64(r.Intn(1<<30))); err != nil {
			return err
		}
		if err := s.SetBytes("payload", r.Bytes(8)); err != nil {
			return err
		}
		if err := from.Send(m); err != nil {
			return err
		}
		_, err = to.Recv()
		return err
	}
	for i := 0; i < 8; i++ {
		if err := ping(a, b); err != nil {
			return fmt.Errorf("seed %d ping %d: %w", seed, i, err)
		}
		if err := ping(b, a); err != nil {
			return fmt.Errorf("seed %d pong %d: %w", seed, i, err)
		}
		if i == 2 {
			if _, err := a.Rekey(seed ^ 0x7EED); err != nil {
				return err
			}
		}
		if i == 5 {
			if _, err := a.Rotate(); err != nil {
				return err
			}
		}
	}
	ticket, err := a.Export()
	if err != nil {
		return err
	}
	a.Release()
	b.Release()
	ca, cb := newPipe()
	b2, err := NewConnOpts(cb, rotB.View(), bopts)
	if err != nil {
		return err
	}
	a2, err := ResumeConn(ca, rotA.View(), aopts, ticket)
	if err != nil {
		return err
	}
	for i := 0; i < 4; i++ {
		if err := ping(a2, b2); err != nil {
			return fmt.Errorf("seed %d resumed ping %d: %w", seed, i, err)
		}
		if err := ping(b2, a2); err != nil {
			return fmt.Errorf("seed %d resumed pong %d: %w", seed, i, err)
		}
	}
	a2.Release()
	b2.Release()
	if sa.Snapshot().ShapedFrames == 0 {
		return fmt.Errorf("seed %d: no frames were shaped", seed)
	}
	return nil
}
