package session

import (
	"fmt"
	"io"
	"sync"

	"protoobf/internal/frame"
	"protoobf/internal/graph"
	"protoobf/internal/msgtree"
	"protoobf/internal/rng"
	"protoobf/internal/wire"
)

// Versioner provides the (transformed) message-format graph of each
// dialect epoch. core.Rotation is the canonical implementation; Fixed
// pins every epoch to one graph. The interface deliberately traffics in
// graphs rather than core.Protocol so the session layer sits below the
// orchestration layer (core imports codegen; the protocol applications
// import session).
type Versioner interface {
	Graph(epoch uint64) (*graph.Graph, error)
}

// Fixed returns a Versioner that serves the same dialect for every
// epoch, for peers that frame with the session transport but do not
// rotate.
func Fixed(g *graph.Graph) Versioner { return fixed{g} }

type fixed struct{ g *graph.Graph }

func (f fixed) Graph(uint64) (*graph.Graph, error) { return f.g, nil }

// DefaultMaxEpochLead bounds how far ahead of the current epoch an
// incoming frame's epoch may point. Compiling a dialect costs real CPU
// and the version cache is per-epoch, so without a bound a forged epoch
// header would let a peer force arbitrary compilation work (and cache
// growth) with a single garbage frame. Cooperating peers rotate one
// epoch at a time, so any small bound is generous.
const DefaultMaxEpochLead = 64

// Conn is an obfuscated message session over a byte stream: Send
// serializes a message with the dialect of the epoch it was composed for,
// Recv decodes each frame with the protocol version named by the frame's
// epoch header, and either peer may advance the epoch mid-session with
// Advance/Rotate — the other follows automatically on its next Recv.
//
// Conn is safe for concurrent Send, Recv, NewMessage and Advance calls.
type Conn struct {
	t        *Transport
	versions Versioner

	// MaxEpochLead is the highest accepted distance between an incoming
	// frame's epoch and the current epoch (default DefaultMaxEpochLead).
	// Raise it only for peers that may legitimately skip many epochs at
	// once (e.g. wall-clock-derived epochs after a long partition).
	MaxEpochLead uint64

	mu      sync.Mutex // guards byGraph and mrng
	byGraph map[*graph.Graph]uint64
	mrng    *rng.R

	smu  sync.Mutex // serializes Send's buffer reuse
	wbuf []byte

	pmu  sync.Mutex // serializes Recv's buffer reuse
	rbuf []byte
}

// NewConn opens a session over rw. The epoch-0 dialect is compiled (or
// fetched from the Versioner's cache) eagerly so configuration errors
// surface here rather than on the first message.
func NewConn(rw io.ReadWriter, versions Versioner) (*Conn, error) {
	c := &Conn{
		t:            NewTransport(rw),
		versions:     versions,
		MaxEpochLead: DefaultMaxEpochLead,
		byGraph:      make(map[*graph.Graph]uint64),
		mrng:         rng.New(0x5e5510),
		wbuf:         frame.GetBuffer(),
		rbuf:         frame.GetBuffer(),
	}
	if _, err := c.dialect(0); err != nil {
		return nil, err
	}
	return c, nil
}

// Transport exposes the underlying byte layer (raw payload exchange,
// benchmarking).
func (c *Conn) Transport() *Transport { return c.t }

// Release returns the session's pooled buffers (and its transport's) to
// the shared pool. Call it once the session is done — typically after
// closing the underlying connection, which remains the owner's job. The
// session must not be used afterwards.
func (c *Conn) Release() {
	c.smu.Lock()
	frame.PutBuffer(c.wbuf)
	c.wbuf = nil
	c.smu.Unlock()
	c.pmu.Lock()
	frame.PutBuffer(c.rbuf)
	c.rbuf = nil
	c.pmu.Unlock()
	c.t.Release()
}

// Epoch returns the current send epoch (lock-free).
func (c *Conn) Epoch() uint64 { return c.t.Epoch() }

// dialect fetches the graph of epoch and records it so Send can recover
// the epoch a message was composed for.
func (c *Conn) dialect(epoch uint64) (*graph.Graph, error) {
	g, err := c.versions.Graph(epoch)
	if err != nil {
		return nil, fmt.Errorf("session: epoch %d: %w", epoch, err)
	}
	c.mu.Lock()
	c.byGraph[g] = epoch
	c.mu.Unlock()
	return g, nil
}

// NewMessage returns an empty message for the current epoch's dialect.
// The message stays bound to that dialect: Send tags it with the epoch it
// was composed for even if the session rotates in between, so an epoch
// bump concurrent with message construction is harmless.
func (c *Conn) NewMessage() (*msgtree.Message, error) {
	g, err := c.dialect(c.Epoch())
	if err != nil {
		return nil, err
	}
	c.mu.Lock()
	r := c.mrng.Split()
	c.mu.Unlock()
	return msgtree.New(g, r), nil
}

// Send serializes m and writes it framed under the epoch whose dialect
// composed it. Steady-state sends reuse the connection's serialization
// buffer and do not allocate.
func (c *Conn) Send(m *msgtree.Message) error {
	c.mu.Lock()
	epoch, ok := c.byGraph[m.G]
	c.mu.Unlock()
	if !ok {
		return fmt.Errorf("session: message graph %q does not belong to this session", m.G.ProtocolName)
	}
	c.smu.Lock()
	defer c.smu.Unlock()
	out, err := wire.SerializeAppend(m, c.wbuf[:0])
	if err != nil {
		return err
	}
	c.wbuf = out
	return c.t.sendPayloadAt(epoch, out)
}

// Recv reads one frame and decodes it with the dialect of the frame's
// epoch. Receiving an epoch above the current send epoch advances it
// (the follow rule), so one peer's Rotate pulls the other along — but
// only after the payload decodes, and only within MaxEpochLead of the
// current epoch: a malformed or forged frame can neither move the
// session's epoch nor force compilation of arbitrary dialects. Frames
// from older epochs still decode — their dialects stay cached — which
// tolerates messages in flight across a rotation.
func (c *Conn) Recv() (*msgtree.Message, error) {
	c.pmu.Lock()
	defer c.pmu.Unlock()
	buf, epoch, err := c.t.recvFrame(c.rbuf[:0])
	c.rbuf = buf
	if err != nil {
		return nil, err
	}
	if cur := c.Epoch(); epoch > cur && epoch-cur > c.MaxEpochLead {
		return nil, fmt.Errorf("session: frame epoch %d is %d ahead of current %d (max lead %d)",
			epoch, epoch-cur, cur, c.MaxEpochLead)
	}
	g, err := c.dialect(epoch)
	if err != nil {
		return nil, err
	}
	c.mu.Lock()
	r := c.mrng.Split()
	c.mu.Unlock()
	// The parser copies terminal content out of buf, so reusing rbuf for
	// the next frame cannot corrupt the returned message.
	m, err := wire.Parse(g, buf, r)
	if err != nil {
		return nil, fmt.Errorf("session: epoch %d: %w", epoch, err)
	}
	c.t.Advance(epoch)
	return m, nil
}

// Advance raises the send epoch to epoch, compiling (and caching) its
// dialect first so a failing epoch never becomes current. Epochs are
// monotonic; advancing to the current epoch or below is a no-op.
func (c *Conn) Advance(epoch uint64) error {
	if _, err := c.dialect(epoch); err != nil {
		return err
	}
	c.t.Advance(epoch)
	return nil
}

// Rotate advances to the next epoch and returns it.
func (c *Conn) Rotate() (uint64, error) {
	next := c.Epoch() + 1
	if err := c.Advance(next); err != nil {
		return 0, err
	}
	return next, nil
}

// Pair connects two in-memory peers with net.Pipe, each speaking the
// dialect family of its Versioner. Both sides must be built from the same
// (spec, options) so their epochs agree, exactly as deployed peers would
// be (paper §VIII).
func Pair(a, b Versioner) (*Conn, *Conn, error) {
	ca, cb := newPipe()
	x, err := NewConn(ca, a)
	if err != nil {
		return nil, nil, err
	}
	y, err := NewConn(cb, b)
	if err != nil {
		return nil, nil, err
	}
	return x, y, nil
}
