package session

import (
	crand "crypto/rand"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"sync"
	"sync/atomic"
	"time"

	"protoobf/internal/frame"
	"protoobf/internal/graph"
	"protoobf/internal/lru"
	"protoobf/internal/metrics"
	"protoobf/internal/msgtree"
	"protoobf/internal/rng"
	"protoobf/internal/session/sched"
	"protoobf/internal/session/shape"
	"protoobf/internal/trace"
	"protoobf/internal/wire"
)

// Versioner provides the (transformed) message-format graph of each
// dialect epoch. core.Rotation is the canonical implementation; Fixed
// pins every epoch to one graph. The interface deliberately traffics in
// graphs rather than core.Protocol so the session layer sits below the
// orchestration layer (core imports codegen; the protocol applications
// import session).
type Versioner interface {
	Graph(epoch uint64) (*graph.Graph, error)
}

// Rekeyer is the optional Versioner extension behind the in-band rekey
// handshake: switching the dialect family to a fresh master seed for
// every epoch >= from. core.Rotation implements it; Fixed does not, so
// static sessions refuse to rekey.
type Rekeyer interface {
	Rekey(from uint64, seed int64) error
}

// Padder is the optional Versioner extension that masks control-frame
// payloads: a deterministic pad both peers derive from their shared
// secret (the spec/seed family), applied by XOR. Without it control
// payloads travel unmasked, which is only acceptable when the byte
// stream itself is protected.
type Padder interface {
	ControlPad(epoch uint64, n int) []byte
}

// Fixed returns a Versioner that serves the same dialect for every
// epoch, for peers that frame with the session transport but do not
// rotate.
func Fixed(g *graph.Graph) Versioner { return fixed{g} }

type fixed struct{ g *graph.Graph }

func (f fixed) Graph(uint64) (*graph.Graph, error) { return f.g, nil }

// DefaultMaxEpochLead bounds how far ahead of the current epoch an
// incoming frame's epoch may point. Compiling a dialect costs real CPU
// and the version cache is per-epoch, so without a bound a forged epoch
// header would let a peer force arbitrary compilation work (and cache
// growth) with a single garbage frame. Cooperating peers rotate one
// epoch at a time — and wall-clock scheduled peers advance their own
// epoch locally before checking the bound — so any small bound is
// generous.
const DefaultMaxEpochLead = 64

// DefaultCacheWindow bounds how many dialect epochs a Conn keeps
// compiled. A session touches the current epoch, a few stale epochs with
// frames still in flight, and the rekey target; evicted epochs recompile
// deterministically on demand, so the window keeps long-lived sessions
// at O(window) memory however many epochs they cross.
const DefaultCacheWindow = 16

// Options configures the rotation control plane of a Conn. The zero
// value gives a manually rotated session with default bounds — the
// pre-control-plane behavior.
type Options struct {
	// Schedule, when non-nil, derives the send epoch from coarse
	// wall-clock time: the session adopts the schedule's epoch on every
	// NewMessage/Recv (and at open), so two peers sharing a schedule
	// converge on the same dialect with no coordination, even after a
	// partition. Nil means epochs move only via Advance/Rotate or by
	// following the peer.
	Schedule *sched.Scheduler

	// RekeyEvery, when nonzero, proposes an in-band rekey (fresh master
	// seed for the dialect family) every RekeyEvery epochs. Either peer
	// may propose; crossed proposals settle by a deterministic
	// tie-break. Requires a Versioner implementing Rekeyer, and the
	// connection must own that Versioner exclusively — a rekey mutates
	// it, which would desynchronize other connections sharing it.
	RekeyEvery uint64

	// RekeyAfterBytes, when nonzero, proposes an in-band rekey once
	// that many bytes of framed traffic (payloads plus epoch headers,
	// both directions) have moved since the last rekey boundary — the
	// ScrambleSuit-style volume trigger: a session that moves a lot of
	// data rotates its seed family by traffic volume, not just by
	// epoch count, bounding how much ciphertext any one family covers.
	// It composes with RekeyEvery; whichever trigger fires first
	// proposes, and one proposal in flight gates both. Requires a
	// Versioner implementing Rekeyer.
	RekeyAfterBytes uint64

	// CacheWindow bounds the per-connection dialect cache: 0 means
	// DefaultCacheWindow, negative means unbounded. Messages must be
	// sent within CacheWindow epochs of composition or Send rejects
	// them as belonging to an evicted dialect.
	CacheWindow int

	// MaxEpochLead overrides DefaultMaxEpochLead when nonzero.
	MaxEpochLead uint64

	// ResumeWindow bounds how many epochs behind the session's current
	// horizon a resumption ticket's epoch may lie before the acceptor
	// rejects it as expired: the migration subsystem's ticket lifetime,
	// measured in epochs. 0 means DefaultResumeWindow.
	ResumeWindow uint64

	// ResumeStats, when non-nil, receives the session's migration
	// activity (tickets exported, resumes accepted/rejected) — how the
	// endpoint layer aggregates per-session resume events into one
	// observable counter block.
	ResumeStats *metrics.ResumeCounters

	// SeedSource supplies fresh master seeds for automatic rekeying.
	// Nil draws from crypto/rand and fails closed when the system
	// entropy source is unavailable — the session reports the error and
	// keeps its current family rather than rekeying from predictable
	// material. Tests inject a deterministic source.
	SeedSource func() (int64, error)

	// Shape, when non-nil, turns on traffic shaping: every data frame is
	// padded to a profile-sampled length (and split at the profile MTU),
	// departures are paced by sampled inter-frame gaps, and idle
	// sessions emit cover frames. Shaping is symmetric — both peers must
	// carry the same profile, exactly like the (spec, seed) contract —
	// because pad bytes ride inside the framed payload and the receiver
	// must strip them. Cover frames alone are compatible with unshaped
	// peers: every session discards frame.KindCover. The profile must
	// Validate or the constructor rejects it.
	Shape *shape.Profile

	// ShapeClock and ShapeSleep inject the shaper's time source and
	// delay primitive. Nil means time.Now and time.Sleep. A non-nil
	// ShapeClock marks the session as simulated: the idle cover
	// scheduler goroutine is not started (the simulation pumps
	// emitCoverIfIdle itself), which is how captures and tests shape
	// traffic deterministically with zero real sleeping.
	ShapeClock func() time.Time
	ShapeSleep func(time.Duration)

	// ShapeStats, when non-nil, receives the session's shaping activity
	// (frames morphed, pad and delay overhead, covers sent/dropped,
	// receive-side rejects) — the shaping analogue of ResumeStats. It is
	// honored even without Shape: an unshaped session still counts
	// covers it discards and unknown frame kinds it rejects.
	ShapeStats *metrics.ShapeCounters

	// Replay, when non-nil, makes resumption tickets single-use on the
	// acceptor side: handleResume consults the cache after the ticket
	// verifies, and a ticket seen before — by any session sharing the
	// cache — is refused with a counted replay reject. Endpoints share
	// one cache across their sessions; a gateway shares one across a
	// fleet.
	Replay *ReplayCache

	// ReissueTickets, when set, pushes a freshly exported resumption
	// ticket to the peer (a frame.KindTicket control frame) after every
	// committed rekey and after accepting a resume. With single-use
	// tickets this is what keeps a session migratable: the ticket it
	// presented is spent, and a later rekey would invalidate the old
	// lineage anyway, so the acceptor re-arms the peer with a current
	// one. Requires a Versioner that can export tickets (TicketSealer +
	// Lineage).
	ReissueTickets bool

	// Latency, when non-nil, receives the session's latency
	// observations — epoch-boundary crossings, rekey handshake round
	// trips, resume handshake round trips — how the endpoint layer
	// aggregates per-session timings into one histogram block.
	Latency *metrics.LatencyCounters

	// Trace, when non-nil, receives the session's structured lifecycle
	// events (open/close, epoch crossings, rekey and resume handshake
	// steps, cover bursts) in a bounded ring shared across the
	// endpoint. TraceID labels this session's events in the ring;
	// endpoints allocate it via Trace.NextSession. A nil Trace costs a
	// nil-check per would-be event.
	Trace   *trace.Ring
	TraceID uint64
}

// Conn is an obfuscated message session over a byte stream: Send
// serializes a message with the dialect of the epoch it was composed for,
// Recv decodes each frame with the protocol version named by the frame's
// epoch header, and the epoch advances mid-session — by wall-clock
// schedule, by explicit Advance/Rotate, or by following the peer.
//
// Conn is safe for concurrent Send, Recv, NewMessage, Advance and Rekey
// calls.
type Conn struct {
	t        *Transport
	rw       io.ReadWriter // the underlying stream, closed by Close when it can be
	versions Versioner

	// MaxEpochLead is the highest accepted distance between an incoming
	// frame's epoch and the current epoch (default DefaultMaxEpochLead).
	// Scheduled sessions measure the distance after adopting their own
	// schedule epoch, so a long partition does not trip the bound.
	MaxEpochLead uint64

	schedule        *sched.Scheduler
	rekeyEvery      uint64
	rekeyAfterBytes uint64
	seedSource      func() (int64, error)
	cacheWindow     int    // resolved lru window (0 = unbounded), the ticket's cache hint
	resumeWindow    uint64 // ticket lifetime in epochs (acceptor side)
	resumeStats     *metrics.ResumeCounters

	// bytesMoved counts framed traffic in both directions (payload plus
	// epoch header), the odometer behind the volume rekey trigger. It is
	// atomic so Send and Recv bump it without sharing a lock.
	bytesMoved atomic.Uint64

	mu            sync.Mutex // guards dialects, byGraph, mrng and rekey state
	dialects      *lru.Cache[uint64, *graph.Graph]
	byGraph       map[*graph.Graph]uint64
	mrng          *rng.R
	pending       *rekeyProposal
	abandoned     *rekeyProposal // unacked proposal the schedule outran; honored if its ack arrives late
	lastRekeyFrom uint64
	rekeyBase     uint64 // bytesMoved at the last rekey boundary (volume trigger datum)

	// Migration state (guarded by mu): resumed marks a session that was
	// minted from a ticket or adopted one in-band (a session resumes at
	// most once); await is the resuming side's pending handshake, and
	// resumeDrops bounds how many peer control frames it may discard
	// while the ack is outstanding (see handleControl).
	resumed     bool
	await       *resumeAwait
	resumeDrops int

	// replay is the shared single-use ticket cache (nil = replays
	// admitted, the pre-fleet behavior); reissue enables in-band ticket
	// re-issue; peerTicket (guarded by mu) is the latest verified
	// ticket the peer pushed, retrievable via StoredTicket.
	replay     *ReplayCache
	reissue    bool
	peerTicket []byte

	smu  sync.Mutex // serializes Send's buffer reuse
	wbuf []byte

	pmu  sync.Mutex // serializes Recv's buffer reuse
	rbuf []byte

	// Traffic shaping (see shaping.go): shaper is non-nil iff
	// Options.Shape was set; shapeStats is honored regardless. The
	// reassembly state (guarded by pmu, like rbuf) folds MTU-split
	// fragments back into one message: reasm accumulates chunks,
	// reasmEpoch pins the epoch a fragment stream started at, and
	// reasmWire counts the framed bytes buffered so far so the volume
	// odometer moves once per message, not per fragment.
	shaper     *shaper
	shapeStats *metrics.ShapeCounters
	reasm      []byte
	reasmEpoch uint64
	reasmWire  uint64

	stopCover     chan struct{} // closed by stopCoverLoop; nil without a cover goroutine
	coverDone     chan struct{} // closed when the cover goroutine has exited
	stopCoverOnce sync.Once

	// Observability (see Options.Latency/Trace): lat receives latency
	// histograms, tr lifecycle events labeled traceID. Both nil-safe.
	lat     *metrics.LatencyCounters
	tr      *trace.Ring
	traceID uint64
}

// rekeyProposal is an in-flight rekey handshake: we proposed switching
// to seed from epoch from onward and await the peer's ack. at is when
// the proposal hit the wire — the rekey RTT measurement datum (zero on
// proposals reconstructed from the wire for matching).
type rekeyProposal struct {
	from uint64
	seed int64
	at   time.Time
}

// matches reports whether an ack for (from, seed) completes this
// proposal. Field comparison, not struct equality: the timestamp is
// local bookkeeping the peer never echoes.
func (p *rekeyProposal) matches(from uint64, seed int64) bool {
	return p != nil && p.from == from && p.seed == seed
}

// rekeyAbandonLead is how many epochs of schedule progress past an
// unacked proposal's boundary the proposer tolerates before abandoning
// it: holding the epoch below the boundary forever would let a peer
// that stops reading (or a raw Transport peer, which discards control
// frames) freeze dialect rotation permanently. An abandoned proposal is
// still honored if its ack arrives late (the acker switched family when
// it acked), so the two sides reconverge.
const rekeyAbandonLead = 8

// NewConn opens a session over rw with default options (manual
// rotation, default cache window). The epoch-0 dialect is compiled (or
// fetched from the Versioner's cache) eagerly so configuration errors
// surface here rather than on the first message.
func NewConn(rw io.ReadWriter, versions Versioner) (*Conn, error) {
	return NewConnOpts(rw, versions, Options{})
}

// NewConnOpts opens a session over rw with an explicit control-plane
// configuration. With a Schedule, the session adopts the schedule's
// current wall-clock epoch before returning, so its first frames already
// speak the fleet-wide dialect.
func NewConnOpts(rw io.ReadWriter, versions Versioner, opts Options) (*Conn, error) {
	if err := validateShape(opts); err != nil {
		return nil, err
	}
	c := newConn(rw, versions, opts)
	if _, err := c.dialect(0); err != nil {
		return nil, err
	}
	if err := c.syncSchedule(); err != nil {
		return nil, err
	}
	// The cover scheduler starts only once the session is viable: a
	// constructor that fails must not leave a goroutine writing decoys
	// into the stream.
	c.startCover(opts)
	c.tr.Emit(c.traceID, trace.KindSessionOpen, c.Epoch(), "")
	return c, nil
}

// validateShape rejects an unusable shaping profile at construction,
// where the misconfiguration is actionable — not on the first Send. The
// profile MTU must also fit the frame layer's length word.
func validateShape(opts Options) error {
	if opts.Shape == nil {
		return nil
	}
	if err := opts.Shape.Validate(); err != nil {
		return err
	}
	if opts.Shape.MTU > frame.MaxFrame {
		return fmt.Errorf("session: shaping profile %q MTU %d exceeds the frame limit %d",
			opts.Shape.Name, opts.Shape.MTU, frame.MaxFrame)
	}
	return nil
}

// newConn builds a session without bringing up any dialect or adopting
// the schedule — the construction half shared by NewConnOpts (which
// starts at epoch 0) and ResumeConn (which starts at a ticket's epoch).
func newConn(rw io.ReadWriter, versions Versioner, opts Options) *Conn {
	window := opts.CacheWindow
	if window == 0 {
		window = DefaultCacheWindow
	} else if window < 0 {
		window = 0 // lru: unbounded
	}
	lead := opts.MaxEpochLead
	if lead == 0 {
		lead = DefaultMaxEpochLead
	}
	resumeWindow := opts.ResumeWindow
	if resumeWindow == 0 {
		resumeWindow = DefaultResumeWindow
	}
	seedSource := opts.SeedSource
	if seedSource == nil {
		seedSource = randomSeed
	}
	c := &Conn{
		t:               NewTransport(rw),
		rw:              rw,
		versions:        versions,
		MaxEpochLead:    lead,
		schedule:        opts.Schedule,
		rekeyEvery:      opts.RekeyEvery,
		rekeyAfterBytes: opts.RekeyAfterBytes,
		seedSource:      seedSource,
		cacheWindow:     window,
		resumeWindow:    resumeWindow,
		resumeStats:     opts.ResumeStats,
		replay:          opts.Replay,
		reissue:         opts.ReissueTickets,
		byGraph:         make(map[*graph.Graph]uint64),
		mrng:            rng.New(0x5e5510),
		wbuf:            frame.GetBuffer(),
		rbuf:            frame.GetBuffer(),
		shapeStats:      opts.ShapeStats,
		lat:             opts.Latency,
		tr:              opts.Trace,
		traceID:         opts.TraceID,
	}
	if opts.Shape != nil {
		c.shaper = newShaper(opts, versions)
	}
	c.t.maxLead = lead
	// The eviction hook keeps the reverse index in step with the window;
	// it runs under c.mu (all cache mutation does).
	c.dialects = lru.New[uint64, *graph.Graph](window, func(epoch uint64, g *graph.Graph) {
		if c.byGraph[g] == epoch {
			delete(c.byGraph, g)
		}
	})
	return c
}

// Transport exposes the underlying byte layer (raw payload exchange,
// benchmarking).
func (c *Conn) Transport() *Transport { return c.t }

// Release returns the session's pooled buffers (and its transport's) to
// the shared pool. Call it once the session is done — typically after
// closing the underlying connection, which remains the owner's job. The
// session must not be used afterwards.
func (c *Conn) Release() {
	c.stopCoverLoop()
	c.smu.Lock()
	frame.PutBuffer(c.wbuf)
	c.wbuf = nil
	c.smu.Unlock()
	c.pmu.Lock()
	frame.PutBuffer(c.rbuf)
	c.rbuf = nil
	c.pmu.Unlock()
	c.t.Release()
}

// Close closes the underlying stream (when it implements io.Closer) and
// releases the session's pooled buffers. It is how sessions handed out
// by the endpoint layer's Dial/Accept are torn down; sessions over a
// stream the caller keeps owning can keep using Release instead. The
// session must not be used after Close.
func (c *Conn) Close() error {
	c.tr.Emit(c.traceID, trace.KindSessionClose, c.Epoch(), "")
	var err error
	if cl, ok := c.rw.(io.Closer); ok {
		err = cl.Close()
	}
	c.Release()
	return err
}

// Epoch returns the current send epoch (lock-free).
func (c *Conn) Epoch() uint64 { return c.t.Epoch() }

// BytesMoved returns the framed traffic this session has moved in both
// directions (payloads plus epoch headers) — the odometer behind the
// Options.RekeyAfterBytes volume trigger. Lock-free.
func (c *Conn) BytesMoved() uint64 { return c.bytesMoved.Load() }

// dialect fetches the graph of epoch through the bounded cache and
// records it so Send can recover the epoch a message was composed for.
// Compilation happens outside c.mu: it costs real CPU and the Versioner
// (core.Rotation) serializes concurrent compiles itself.
func (c *Conn) dialect(epoch uint64) (*graph.Graph, error) {
	c.mu.Lock()
	if g, ok := c.dialects.Get(epoch); ok {
		c.mu.Unlock()
		return g, nil
	}
	c.mu.Unlock()
	g, err := c.versions.Graph(epoch)
	if err != nil {
		return nil, fmt.Errorf("session: epoch %d: %w", epoch, err)
	}
	c.mu.Lock()
	c.dialects.Put(epoch, g)
	c.byGraph[g] = epoch
	c.mu.Unlock()
	return g, nil
}

// horizon returns the epoch to measure frame plausibility against: the
// send epoch, or the schedule's current epoch when that is ahead. A
// receiver that has been blocked in Recv across many intervals measures
// incoming frames against wall-clock time rather than its stale send
// epoch, so an honest peer's first post-partition frame is never
// mistaken for a forged far-future epoch.
func (c *Conn) horizon() uint64 {
	cur := c.Epoch()
	if c.schedule != nil {
		if se := c.schedule.Epoch(); se > cur {
			cur = se
		}
	}
	return cur
}

// syncSchedule adopts the schedule's current epoch as the send epoch —
// except across a pending rekey boundary, which is only crossed once the
// peer acks (neither side sends under the new dialect before the
// handshake completes). It then proposes an automatic rekey when one is
// due. No-op without a schedule.
func (c *Conn) syncSchedule() error {
	if c.schedule == nil {
		return nil
	}
	if before := c.Epoch(); c.schedule.Epoch() > before {
		target := c.schedule.Epoch()
		start := time.Now()
		// Compile outside c.mu (it costs real CPU); the gate check and
		// the epoch bump share one c.mu section with rekey's proposal
		// registration, so a proposal cannot slip in between the check
		// and the advance. If the gate lowers the target, that epoch was
		// current moments ago or compiles lazily on first use.
		if _, err := c.dialect(target); err != nil {
			return err
		}
		c.mu.Lock()
		if p := c.pending; p != nil && target >= p.from {
			if target >= p.from+rekeyAbandonLead {
				// The peer is not acking (not reading, or a raw
				// Transport discarding control frames). Stop gating so
				// rotation continues; honor the ack if it ever arrives.
				c.abandoned, c.pending = p, nil
			} else {
				target = p.from - 1
			}
		}
		c.t.Advance(target)
		c.mu.Unlock()
		if target > before {
			if c.lat != nil {
				c.lat.EpochBoundary.ObserveDuration(time.Since(start))
			}
			c.tr.Emit(c.traceID, trace.KindEpochCross, target, "")
		}
	}
	return c.maybeAutoRekey()
}

// NewMessage returns an empty message for the current epoch's dialect
// (scheduled sessions first adopt the schedule's epoch). The message
// stays bound to that dialect: Send tags it with the epoch it was
// composed for even if the session rotates in between, so an epoch bump
// concurrent with message construction is harmless.
func (c *Conn) NewMessage() (*msgtree.Message, error) {
	if err := c.syncSchedule(); err != nil {
		return nil, err
	}
	g, err := c.dialect(c.Epoch())
	if err != nil {
		return nil, err
	}
	c.mu.Lock()
	r := c.mrng.Split()
	c.mu.Unlock()
	return msgtree.New(g, r), nil
}

// Send serializes m and writes it framed under the epoch whose dialect
// composed it. Steady-state sends reuse the connection's serialization
// buffer and do not allocate. A message composed more than CacheWindow
// epochs ago may have had its dialect evicted, in which case Send
// rejects it.
func (c *Conn) Send(m *msgtree.Message) error {
	c.mu.Lock()
	epoch, ok := c.byGraph[m.G]
	c.mu.Unlock()
	if !ok {
		return fmt.Errorf("session: message graph %q does not belong to this session (or its epoch left the cache window)", m.G.ProtocolName)
	}
	c.smu.Lock()
	defer c.smu.Unlock()
	out, err := wire.SerializeAppend(m, c.wbuf[:0])
	if err != nil {
		return err
	}
	c.wbuf = out
	if c.shaper != nil {
		if err := c.sendShaped(epoch, out); err != nil {
			return err
		}
		return c.maybeVolumeRekey()
	}
	if err := c.t.sendPayloadAt(epoch, out); err != nil {
		return err
	}
	c.bytesMoved.Add(uint64(len(out)) + frame.EpochHeaderLen)
	return c.maybeVolumeRekey()
}

// Recv reads frames until one data frame decodes, handling control
// frames (the rekey handshake) along the way. The data frame is decoded
// with the dialect of the frame's epoch. Receiving an epoch above the
// current send epoch advances it (the follow rule), so one peer's
// rotation pulls the other along — but only after the payload decodes,
// and only within MaxEpochLead of the current epoch: a malformed or
// forged frame can neither move the session's epoch nor force
// compilation of arbitrary dialects. Scheduled sessions adopt their own
// schedule epoch first, so the bound is measured against wall-clock
// time and a peer returning from a long partition resynchronizes
// immediately. Frames from older epochs still decode — their dialects
// stay cached within the window — which tolerates messages in flight
// across a rotation.
func (c *Conn) Recv() (*msgtree.Message, error) {
	if err := c.syncSchedule(); err != nil {
		return nil, err
	}
	c.pmu.Lock()
	defer c.pmu.Unlock()
	for {
		buf, epoch, kind, err := c.t.recvFrame(c.rbuf[:0])
		c.rbuf = buf
		if err != nil {
			return nil, err
		}
		if kind != frame.KindData {
			if err := c.handleControl(kind, epoch, buf); err != nil {
				return nil, err
			}
			continue
		}
		// The horizon is re-read per frame: Recv may have been blocked
		// across many schedule intervals, and the bound must reflect
		// wall-clock time at decode, not at Recv entry.
		if cur := c.horizon(); epoch > cur && epoch-cur > c.MaxEpochLead {
			return nil, fmt.Errorf("session: frame epoch %d is %d ahead of current %d (max lead %d)",
				epoch, epoch-cur, cur, c.MaxEpochLead)
		}
		// Shaped sessions strip the pad trailer first; a fragment goes to
		// the reassembly buffer and the loop keeps reading.
		payload := buf
		if c.shaper != nil {
			p, done, err := c.unshape(epoch, buf)
			if err != nil {
				return nil, err
			}
			if !done {
				continue
			}
			payload = p
		}
		// Count the whole message's framed bytes — the final frame plus
		// any fragments buffered on the way — exactly once.
		wireBytes := uint64(len(buf)) + frame.EpochHeaderLen + c.reasmWire
		c.reasmWire = 0
		g, err := c.dialect(epoch)
		if err != nil {
			return nil, err
		}
		c.mu.Lock()
		r := c.mrng.Split()
		c.mu.Unlock()
		// The parser copies terminal content out of the payload, so
		// reusing rbuf (or the reassembly buffer) for the next frame
		// cannot corrupt the returned message.
		m, err := wire.Parse(g, payload, r)
		if err != nil {
			return nil, fmt.Errorf("session: epoch %d: %w", epoch, err)
		}
		// Follow the sender's epoch, but never across our own pending
		// rekey boundary: the proposer must not compose frames at or
		// past the boundary until the ack arrives, or it would send
		// old-family bytes at epochs the acked peer has already rekeyed.
		c.mu.Lock()
		follow := epoch
		if p := c.pending; p != nil && follow >= p.from {
			follow = p.from - 1
		}
		c.t.Advance(follow)
		c.mu.Unlock()
		c.bytesMoved.Add(wireBytes)
		if err := c.maybeVolumeRekey(); err != nil {
			return nil, err
		}
		return m, nil
	}
}

// Advance raises the send epoch to epoch, compiling (and caching) its
// dialect first so a failing epoch never becomes current. Epochs are
// monotonic; advancing to the current epoch or below is a no-op.
func (c *Conn) Advance(epoch uint64) error {
	if _, err := c.dialect(epoch); err != nil {
		return err
	}
	c.t.Advance(epoch)
	return nil
}

// Rotate advances to the next epoch and returns it, proposing an
// automatic rekey when one is due (Options.RekeyEvery). Scheduled
// sessions normally never call Rotate — the schedule advances them — but
// mixing is safe: epochs are monotonic and settle on the highest value.
func (c *Conn) Rotate() (uint64, error) {
	next := c.Epoch() + 1
	if err := c.Advance(next); err != nil {
		return 0, err
	}
	if err := c.maybeAutoRekey(); err != nil {
		return 0, err
	}
	return next, nil
}

// Rekey proposes switching the dialect family to a fresh master seed
// from the next epoch onward: it sends an in-band proposal carrying
// (epoch, seed) — masked with the pad both peers derive from the shared
// secret — and returns the proposed epoch. The new family is not used
// until the peer acknowledges; the handshake completes on the Recv path
// of both sides. Until then the proposer keeps sending under the old
// family and, if scheduled, holds its epoch just below the boundary
// (for at most rekeyAbandonLead epochs of schedule progress). Only one
// proposal may be in flight at a time.
//
// Rekeying mutates the session's Versioner: a Conn that rekeys (Rekey
// or Options.RekeyEvery) must own its Rotation exclusively. Sharing one
// Rotation across several connections is fine for scheduled or manual
// rotation, but a rekey negotiated on one connection would silently
// switch the family under every other connection's feet.
func (c *Conn) Rekey(seed int64) (uint64, error) {
	if _, ok := c.versions.(Rekeyer); !ok {
		return 0, errors.New("session: versioner does not support rekeying")
	}
	from, ok, err := c.rekey(seed)
	if err != nil {
		return 0, err
	}
	if !ok {
		return 0, errors.New("session: a rekey is already in progress")
	}
	return from, nil
}

// rekey registers and sends a proposal targeting the next epoch. It
// reports ok=false (not an error) when a proposal is already pending.
// Reading the epoch and registering the proposal happen in the same
// c.mu section syncSchedule uses for its gate-and-advance, so a
// concurrent schedule sync can neither advance past a boundary being
// registered nor have the boundary land at an already-passed epoch.
func (c *Conn) rekey(seed int64) (from uint64, ok bool, err error) {
	c.mu.Lock()
	if c.pending != nil {
		c.mu.Unlock()
		return 0, false, nil
	}
	from = c.t.Epoch() + 1
	c.pending = &rekeyProposal{from: from, seed: seed, at: time.Now()}
	c.abandoned = nil // a new proposal supersedes any abandoned one
	c.lastRekeyFrom = from
	prevBase := c.rekeyBase
	c.rekeyBase = c.bytesMoved.Load()
	c.mu.Unlock()
	if err := c.sendControl(frame.KindRekeyPropose, from, seed); err != nil {
		c.mu.Lock()
		if p := c.pending; p.matches(from, seed) {
			c.pending = nil
			// Restore the volume odometer datum too: a proposal that
			// never reached the wire must not consume the traffic
			// bound (the guard above means no other boundary has
			// reset the base in between).
			c.rekeyBase = prevBase
		}
		c.mu.Unlock()
		return 0, false, err
	}
	c.tr.Emit(c.traceID, trace.KindRekeyPropose, from, "")
	return from, true, nil
}

// maybeAutoRekey proposes a rekey when the session has crossed
// RekeyEvery epochs since the last rekey boundary. Losing the
// registration race to a concurrent proposer is not an error — one
// proposal in flight is exactly the goal.
func (c *Conn) maybeAutoRekey() error {
	if c.rekeyEvery == 0 {
		return nil
	}
	if _, ok := c.versions.(Rekeyer); !ok {
		return nil
	}
	c.mu.Lock()
	due := c.pending == nil && c.t.Epoch()+1 >= c.lastRekeyFrom+c.rekeyEvery
	c.mu.Unlock()
	if !due {
		return nil
	}
	seed, err := c.seedSource()
	if err != nil {
		// Fail closed: no seed, no rekey, and the caller hears about it —
		// continuing silently would leave traffic on a family that was
		// due to rotate.
		return err
	}
	_, _, err = c.rekey(seed)
	return err
}

// maybeVolumeRekey proposes a rekey once RekeyAfterBytes of framed
// traffic have moved since the last rekey boundary — the ScrambleSuit-
// style volume trigger, evaluated after every Send and Recv. Losing
// the registration race to a concurrent proposer (or the peer's
// crossed proposal) is fine: one proposal in flight is the goal, and
// the odometer datum resets at whichever boundary wins.
//
// A failed proposal write is swallowed, not returned: the trigger runs
// after a Send delivered its payload (or a Recv decoded its message),
// and a completed operation must not be reported as failed — rekey()
// already rolled the registration back, and a genuinely broken stream
// surfaces on the next write regardless. A failed seed draw is
// different: the entropy source being down has no later write to
// surface on, so it is returned and fails the operation — better a loud
// error than a session that silently stops honoring its traffic bound.
func (c *Conn) maybeVolumeRekey() error {
	if c.rekeyAfterBytes == 0 {
		return nil
	}
	if _, ok := c.versions.(Rekeyer); !ok {
		return nil
	}
	// The odometer is read under c.mu: rekeyBase is only ever assigned
	// from a bytesMoved.Load() inside this lock, so the base can never
	// exceed a load taken here and the unsigned subtraction cannot
	// wrap (a stale pre-lock load could be outrun by a concurrent
	// boundary reset and fire a spurious immediate rekey).
	c.mu.Lock()
	moved := c.bytesMoved.Load()
	due := c.pending == nil && moved-c.rekeyBase >= c.rekeyAfterBytes
	c.mu.Unlock()
	if !due {
		return nil
	}
	seed, err := c.seedSource()
	if err != nil {
		return err
	}
	_, _, _ = c.rekey(seed)
	return nil
}

// Control-frame payload: a masked magic/epoch/seed triple, encoded by
// the shared codec in internal/frame (the datagram layer conducts the
// same handshake over packets). The magic rejects forged or
// wrong-family control frames after unmasking with overwhelming
// probability.
const (
	controlMagic = frame.ControlMagic
	controlLen   = frame.ControlLen
)

// sendControl writes one masked control frame. The handshake is
// conducted under the pre-boundary family: propose and ack are masked
// with the pad of epoch from-1, which the proposer (not yet switched)
// and the acker (switched from `from` onward only) derive identically —
// masking at the sender's current epoch would make an ack unreadable
// whenever the acker's epoch already sits past the boundary.
func (c *Conn) sendControl(kind byte, from uint64, seed int64) error {
	hdrEpoch := from - 1
	var p [controlLen]byte
	frame.EncodeControl(p[:], from, seed)
	c.maskControl(hdrEpoch, p[:])
	return c.t.sendFrameAt(kind, hdrEpoch, p[:])
}

// maskControl XORs the deterministic pad of the frame's epoch over p.
// Masking and unmasking are the same operation. Without a Padder the
// payload travels in the clear.
func (c *Conn) maskControl(epoch uint64, p []byte) {
	pd, ok := c.versions.(Padder)
	if !ok {
		return
	}
	pad := pd.ControlPad(epoch, len(p))
	for i := range p {
		p[i] ^= pad[i]
	}
}

// handleControl dispatches one control frame from the Recv loop.
//
// While this side's own resume handshake is unacked, every control frame
// except the awaited KindResumeAck is dropped (bounded by
// resumeDropLimit) rather than processed: the acceptor may have written
// control frames — typically an automatic rekey proposal minted at
// session construction — before it processed our resume frame, and those
// frames are masked under its pre-resume state, unreadable (or worse,
// readable but stale) under the ticket's lineage. The stream is ordered,
// so everything sent after the acceptor's resume ack is post-adoption
// and processed normally.
func (c *Conn) handleControl(kind byte, hdrEpoch uint64, payload []byte) error {
	switch kind {
	case frame.KindResume:
		return c.handleResume(hdrEpoch, payload)
	case frame.KindResumeAck:
		return c.handleResumeAck(hdrEpoch, payload)
	case frame.KindTicket:
		return c.handleTicket(payload)
	case frame.KindCover:
		// Cover traffic is chaff by contract: count it and keep reading.
		// Every session discards covers — shaped or not, resuming or not —
		// which is what lets a shaped peer emit decoys at an unmodified
		// one without breaking it.
		if c.shapeStats != nil {
			c.shapeStats.CoverDropped.Add(1)
		}
		return nil
	case frame.KindRekeyPropose, frame.KindRekeyAck:
	default:
		// Kinds above frame.KindMax are unassigned: reject them loudly
		// (and countably) rather than guessing. Silently skipping unknown
		// kinds would let a tampered stream smuggle arbitrary frames past
		// the session, and misframed garbage would desynchronize later
		// reads anyway.
		if c.shapeStats != nil {
			c.shapeStats.UnknownKindRejects.Add(1)
		}
		return fmt.Errorf("session: unknown frame kind %#02x (highest assigned is %#02x)", kind, frame.KindMax)
	}
	if c.dropPreResumeControl() {
		return nil
	}
	if len(payload) != controlLen {
		return fmt.Errorf("session: control frame of %d bytes, want %d", len(payload), controlLen)
	}
	c.maskControl(hdrEpoch, payload)
	from, seed, err := frame.DecodeControl(payload)
	if err != nil {
		return fmt.Errorf("session: %w", err)
	}
	if kind == frame.KindRekeyPropose {
		return c.handlePropose(from, seed)
	}
	return c.handleAck(from, seed)
}

// handlePropose accepts (or deterministically rejects) a peer's rekey
// proposal: apply the new family from the proposed epoch, compile its
// first dialect, ack, and only then cross the boundary. Crossed
// proposals — both peers proposed concurrently — settle without extra
// round-trips: the later boundary wins, ties break toward the larger
// seed, and both peers apply the same rule so exactly one proposal
// survives.
func (c *Conn) handlePropose(from uint64, seed int64) error {
	if from == 0 {
		return errors.New("session: rekey proposal for epoch 0 (the pre-negotiated epoch)")
	}
	cur := c.horizon()
	if from+c.MaxEpochLead <= cur || from > cur+c.MaxEpochLead {
		return fmt.Errorf("session: rekey proposal for epoch %d implausibly far from current %d", from, cur)
	}
	c.mu.Lock()
	if p := c.pending; p != nil {
		ours, theirs := *p, rekeyProposal{from: from, seed: seed}
		if ours.from > theirs.from || (ours.from == theirs.from && uint64(ours.seed) > uint64(theirs.seed)) {
			// Ours wins; the peer applies the same rule and acks ours.
			c.mu.Unlock()
			return nil
		}
		c.pending = nil // theirs wins; our proposal dies unacked
	}
	if from > c.lastRekeyFrom {
		c.lastRekeyFrom = from
	}
	c.mu.Unlock()
	if err := c.applyRekey(from, seed); err != nil {
		return err
	}
	// Compile the new family's first dialect before acking, so an ack
	// guarantees the acker is ready to decode the new dialect. If the
	// compile or the ack write fails, roll the family switch back: the
	// proposer was never acked and stays on the old family, so keeping
	// the switch locally would diverge the two sides for good.
	if _, err := c.dialect(from); err != nil {
		c.unapplyRekey(from, seed)
		return err
	}
	if err := c.sendControl(frame.KindRekeyAck, from, seed); err != nil {
		c.unapplyRekey(from, seed)
		return err
	}
	// The handshake is committed on our side: reset the volume odometer
	// datum now, not at acceptance, so a rolled-back attempt (compile or
	// ack failure above) does not consume the traffic bound.
	c.mu.Lock()
	c.rekeyBase = c.bytesMoved.Load()
	c.mu.Unlock()
	if err := c.Advance(from); err != nil {
		return err
	}
	c.tr.Emit(c.traceID, trace.KindRekeyAck, from, "peer")
	// The rekey invalidated any ticket the peer was holding (its
	// lineage predates the new family): re-arm it with a current one.
	return c.maybeReissue()
}

// handleAck completes our own proposal — pending, or abandoned by the
// schedule outrunning it (the acker switched family the moment it
// acked, so a late ack must still switch ours). Acks matching neither
// (stale, superseded by a tie-break) are ignored.
func (c *Conn) handleAck(from uint64, seed int64) error {
	var proposedAt time.Time
	c.mu.Lock()
	switch {
	case c.pending.matches(from, seed):
		proposedAt = c.pending.at
		c.pending = nil
	case c.abandoned.matches(from, seed):
		proposedAt = c.abandoned.at
		c.abandoned = nil
	default:
		c.mu.Unlock()
		return nil
	}
	c.mu.Unlock()
	if err := c.applyRekey(from, seed); err != nil {
		return err
	}
	if err := c.Advance(from); err != nil {
		return err
	}
	if c.lat != nil && !proposedAt.IsZero() {
		c.lat.RekeyRTT.ObserveDuration(time.Since(proposedAt))
	}
	c.tr.Emit(c.traceID, trace.KindRekeyAck, from, "")
	// Same as handlePropose: the committed rekey spent the peer's old
	// ticket lineage, so push a fresh one if re-issue is on.
	return c.maybeReissue()
}

// applyRekey records the family switch in the Versioner and drops cached
// dialects at or past the boundary — they were compiled under the old
// family.
func (c *Conn) applyRekey(from uint64, seed int64) error {
	rk, ok := c.versions.(Rekeyer)
	if !ok {
		return errors.New("session: peer requested rekey but versioner cannot rekey")
	}
	if err := rk.Rekey(from, seed); err != nil {
		return fmt.Errorf("session: rekey: %w", err)
	}
	c.dropDialectsFrom(from)
	return nil
}

// unapplyRekey rolls back a family switch that failed to commit (the
// ack never reached the stream). Best-effort: a Versioner without
// rollback support keeps the switch, which is the pre-rollback behavior.
func (c *Conn) unapplyRekey(from uint64, seed int64) {
	c.tr.Emit(c.traceID, trace.KindRekeyRollback, from, "")
	type dropper interface {
		DropRekey(from uint64, seed int64) error
	}
	if d, ok := c.versions.(dropper); ok {
		if err := d.DropRekey(from, seed); err == nil {
			c.dropDialectsFrom(from) // the new-family dialects just cached
		}
	}
}

// dropDialectsFrom invalidates cached dialects at or past a rekey
// boundary, keeping the send-side reverse index in step.
func (c *Conn) dropDialectsFrom(from uint64) {
	c.mu.Lock()
	c.dialects.DeleteIf(
		func(e uint64, _ *graph.Graph) bool { return e >= from },
		func(e uint64, g *graph.Graph) {
			if c.byGraph[g] == e {
				delete(c.byGraph, g)
			}
		})
	c.mu.Unlock()
}

// entropy is the randomness behind the default SeedSource. It is a
// package variable only so tests can prove the fail-closed path; nothing
// else may reassign it.
var entropy io.Reader = crand.Reader

// randomSeed draws a fresh positive master seed for automatic rekeying.
// It fails closed: when the system entropy source errors there is no
// fallback — a rekey seeded from a guessable value (a timestamp, say)
// would downgrade the whole dialect family to brute-forceable material
// while looking exactly like a healthy rotation on the wire.
func randomSeed() (int64, error) {
	var b [8]byte
	if _, err := io.ReadFull(entropy, b[:]); err != nil {
		return 0, fmt.Errorf("session: rekey seed entropy unavailable: %w", err)
	}
	return int64(binary.BigEndian.Uint64(b[:]) >> 1), nil
}

// Pair connects two in-memory peers with a buffered duplex, each
// speaking the dialect family of its Versioner. Both sides must be built
// from the same (spec, options) so their epochs agree, exactly as
// deployed peers would be (paper §VIII).
func Pair(a, b Versioner) (*Conn, *Conn, error) {
	return PairOpts(a, b, Options{}, Options{})
}

// PairOpts is Pair with per-side control-plane options — how the tests
// give each peer its own independently clocked schedule.
func PairOpts(a, b Versioner, aopts, bopts Options) (*Conn, *Conn, error) {
	ca, cb := newPipe()
	x, err := NewConnOpts(ca, a, aopts)
	if err != nil {
		return nil, nil, err
	}
	y, err := NewConnOpts(cb, b, bopts)
	if err != nil {
		return nil, nil, err
	}
	return x, y, nil
}
