package session

import (
	"crypto/sha256"
	"sync"

	"protoobf/internal/lru"
)

// DefaultReplayWindow is the default capacity of a ticket replay cache:
// how many recently seen tickets it remembers. Sized to cover every
// ticket a busy endpoint could plausibly see inside the resume window;
// beyond it the oldest entries age out (after which an ancient ticket
// would anyway fail the resume window's epoch bounds).
const DefaultReplayWindow = 4096

// ReplayCache makes resumption tickets single-use: the acceptor path
// consults it after a ticket verifies, and a ticket that was already
// presented — to any session sharing the cache — is refused with a
// counted `replay` reason. One cache per endpoint closes the
// single-process replay gap; a routing gateway holds one per fleet so
// a captured ticket cannot be replayed against a different backend
// than the one that first honored it.
//
// Entries key on a digest of the whole ticket (nonce, masked state and
// seal tag alike), so two distinct tickets for the same session state
// are distinct entries — re-issue after rekey mints a new ticket, which
// gets its own single use.
type ReplayCache struct {
	mu   sync.Mutex
	seen *lru.Cache[[16]byte, struct{}]
}

// NewReplayCache builds a replay cache remembering up to capacity
// tickets (capacity <= 0 means DefaultReplayWindow).
func NewReplayCache(capacity int) *ReplayCache {
	if capacity <= 0 {
		capacity = DefaultReplayWindow
	}
	return &ReplayCache{seen: lru.New[[16]byte, struct{}](capacity, nil)}
}

// Witness records the ticket as seen and reports whether it had been
// seen before — true means replay.
func (rc *ReplayCache) Witness(ticket []byte) bool {
	sum := sha256.Sum256(ticket)
	var k [16]byte
	copy(k[:], sum[:])
	rc.mu.Lock()
	defer rc.mu.Unlock()
	if _, ok := rc.seen.Get(k); ok {
		return true
	}
	rc.seen.Put(k, struct{}{})
	return false
}

// Len reports how many distinct tickets the cache currently remembers.
func (rc *ReplayCache) Len() int {
	rc.mu.Lock()
	defer rc.mu.Unlock()
	return rc.seen.Len()
}
