package session

import (
	"bytes"
	"fmt"
	"net"
	"strings"
	"sync"
	"testing"

	"protoobf/internal/core"
	"protoobf/internal/msgtree"
	"protoobf/internal/rng"
)

const beaconSpec = `
protocol beacon;
root seq msg end {
    uint  device 2;
    uint  seqno 4;
    uint  blen 2;
    seq body length(blen) {
        bytes status delim ";" min 1;
    }
    bytes sig end;
}
`

const sensorSpec = `
protocol sensor;
root seq reading end {
    uint  station 2;
    uint  kind 1;
    uint  blen 2;
    seq body length(blen) {
        bytes name delim ";" min 1;
        uint  n 1;
        tabular samples count(n) { uint sample 2; }
    }
    optional alert when kind == 9 { bytes reason end; }
}
`

const chatSpec = `
protocol chat;
root seq m end {
    bytes nick delim ";" min 1;
    uint  kind 1;
    repeat tags until "\r\n" {
        seq tag {
            bytes tname delim "=" min 1;
            bytes tval delim ";" min 1;
        }
    }
    optional extra when kind == 7 { bytes blob end; }
}
`

// pingSpec has no auto-filled references, so serialization needs no fill
// map: the steady-state zero-allocation payload path.
const pingSpec = `
protocol ping;
root seq m end {
    uint a 2;
    uint b 4;
    bytes payload fixed 8;
}
`

// specCases is the differential grid: each case knows how to populate a
// message with values drawn from r.
var specCases = []struct {
	name  string
	spec  string
	build func(s *msgtree.Scope, r *rng.R) error
}{
	{"beacon", beaconSpec, func(s *msgtree.Scope, r *rng.R) error {
		if err := s.SetUint("device", uint64(r.Intn(1<<16))); err != nil {
			return err
		}
		if err := s.SetUint("seqno", uint64(r.Intn(1<<30))); err != nil {
			return err
		}
		if err := s.SetBytes("status", r.PadBytes(1+r.Intn(12))); err != nil {
			return err
		}
		return s.SetBytes("sig", r.Bytes(r.Intn(8)))
	}},
	{"sensor", sensorSpec, func(s *msgtree.Scope, r *rng.R) error {
		if err := s.SetUint("station", uint64(r.Intn(1<<16))); err != nil {
			return err
		}
		kind := uint64(r.Intn(3))
		if r.Intn(2) == 0 {
			kind = 9
		}
		if err := s.SetUint("kind", kind); err != nil {
			return err
		}
		if err := s.SetBytes("name", r.PadBytes(1+r.Intn(10))); err != nil {
			return err
		}
		for i, n := 0, r.Intn(5); i < n; i++ {
			item, err := s.Add("samples")
			if err != nil {
				return err
			}
			if err := item.SetUint("sample", uint64(r.Intn(1<<16))); err != nil {
				return err
			}
		}
		if kind == 9 {
			sc, err := s.Enable("alert")
			if err != nil {
				return err
			}
			return sc.SetBytes("reason", r.PadBytes(r.Intn(16)))
		}
		return nil
	}},
	{"chat", chatSpec, func(s *msgtree.Scope, r *rng.R) error {
		if err := s.SetBytes("nick", r.PadBytes(1+r.Intn(8))); err != nil {
			return err
		}
		kind := uint64(r.Intn(3))
		if r.Intn(2) == 0 {
			kind = 7
		}
		if err := s.SetUint("kind", kind); err != nil {
			return err
		}
		for i, n := 0, r.Intn(4); i < n; i++ {
			item, err := s.Add("tags")
			if err != nil {
				return err
			}
			if err := item.SetBytes("tname", r.PadBytes(1+r.Intn(6))); err != nil {
				return err
			}
			if err := item.SetBytes("tval", r.PadBytes(1+r.Intn(6))); err != nil {
				return err
			}
		}
		if kind == 7 {
			sc, err := s.Enable("extra")
			if err != nil {
				return err
			}
			return sc.SetBytes("blob", r.Bytes(r.Intn(20)))
		}
		return nil
	}},
}

func rotationPair(t *testing.T, spec string, seed int64, perNode int) (*Conn, *Conn) {
	t.Helper()
	opts := core.ObfuscationOptions{PerNode: perNode, Seed: seed}
	rotA, err := core.NewRotation(spec, opts)
	if err != nil {
		t.Fatal(err)
	}
	rotB, err := core.NewRotation(spec, opts)
	if err != nil {
		t.Fatal(err)
	}
	a, b, err := Pair(rotA, rotB)
	if err != nil {
		t.Fatal(err)
	}
	return a, b
}

// exchange builds one message on from, sends it, receives it on to and
// asserts snapshot equality of the two trees.
func exchange(t *testing.T, from, to *Conn, build func(*msgtree.Scope, *rng.R) error, r *rng.R) {
	t.Helper()
	m, err := from.NewMessage()
	if err != nil {
		t.Fatal(err)
	}
	if err := build(m.Scope(), r); err != nil {
		t.Fatalf("build: %v", err)
	}
	if err := from.Send(m); err != nil {
		t.Fatalf("send: %v", err)
	}
	got, err := to.Recv()
	if err != nil {
		t.Fatalf("recv: %v", err)
	}
	want, err := m.Snapshot()
	if err != nil {
		t.Fatalf("snapshot in: %v", err)
	}
	have, err := got.Snapshot()
	if err != nil {
		t.Fatalf("snapshot out: %v", err)
	}
	if diff := msgtree.SnapshotsEqual(want, have); diff != "" {
		t.Fatalf("differential mismatch: %s\nsent:\n%s\nreceived:\n%s",
			diff, msgtree.FormatSnapshot(want), msgtree.FormatSnapshot(have))
	}
}

// TestDifferentialRoundTrip serializes via one peer's session and parses
// via the other across a (spec x seed x PerNode) grid, in both
// directions and across three epoch rotations per session.
func TestDifferentialRoundTrip(t *testing.T) {
	for _, tc := range specCases {
		for _, seed := range []int64{1, 0xC0FFEE} {
			for _, perNode := range []int{0, 1, 2, 4} {
				t.Run(fmt.Sprintf("%s/seed=%d/perNode=%d", tc.name, seed, perNode), func(t *testing.T) {
					a, b := rotationPair(t, tc.spec, seed, perNode)
					r := rng.New(seed*31 + int64(perNode))
					for epoch := 0; epoch < 3; epoch++ {
						for i := 0; i < 3; i++ {
							exchange(t, a, b, tc.build, r)
							exchange(t, b, a, tc.build, r)
						}
						if _, err := a.Rotate(); err != nil {
							t.Fatal(err)
						}
					}
					if a.Epoch() != 3 {
						t.Fatalf("sender epoch = %d, want 3", a.Epoch())
					}
					if b.Epoch() != 2 {
						// B last followed the epoch-2 frames; it sees 3 on
						// the next receive.
						t.Fatalf("receiver epoch = %d, want 2", b.Epoch())
					}
				})
			}
		}
	}
}

// TestEpochFollowAndLag pins the follow rule: the peer adopts a higher
// epoch on receive, keeps decoding frames from older epochs (messages in
// flight across a rotation), and never regresses.
func TestEpochFollowAndLag(t *testing.T) {
	a, b := rotationPair(t, beaconSpec, 42, 2)
	tc := specCases[0]
	r := rng.New(7)

	// Compose at epoch 0, rotate twice, then send the stale message: the
	// frame is tagged with the dialect that composed it.
	stale, err := a.NewMessage()
	if err != nil {
		t.Fatal(err)
	}
	if err := tc.build(stale.Scope(), r); err != nil {
		t.Fatal(err)
	}
	if err := a.Advance(2); err != nil {
		t.Fatal(err)
	}
	exchange(t, a, b, tc.build, r) // epoch-2 frame: B follows to 2
	if b.Epoch() != 2 {
		t.Fatalf("B epoch = %d, want 2", b.Epoch())
	}
	if err := a.Send(stale); err != nil {
		t.Fatal(err)
	}
	if _, err := b.Recv(); err != nil {
		t.Fatalf("stale epoch-0 frame must still decode: %v", err)
	}
	if b.Epoch() != 2 {
		t.Fatalf("B epoch regressed to %d after old frame", b.Epoch())
	}
}

// TestLiveRotationPipe is the examples/live-rotation scenario as a test:
// two peers over net.Pipe, a request/ack exchange per message, three
// mid-session rotations driven by one side only.
func TestLiveRotationPipe(t *testing.T) {
	opts := core.ObfuscationOptions{PerNode: 2, Seed: 0xC0FFEE}
	rotA, err := core.NewRotation(beaconSpec, opts)
	if err != nil {
		t.Fatal(err)
	}
	rotB, err := core.NewRotation(beaconSpec, opts)
	if err != nil {
		t.Fatal(err)
	}
	connA, connB := net.Pipe()
	defer connA.Close()
	defer connB.Close()
	a, err := NewConn(connA, rotA)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewConn(connB, rotB)
	if err != nil {
		t.Fatal(err)
	}

	done := make(chan error, 1)
	go func() {
		for {
			m, err := b.Recv()
			if err != nil {
				done <- nil // pipe closed
				return
			}
			seqno, err := m.Scope().GetUint("seqno")
			if err != nil {
				done <- fmt.Errorf("B get seqno: %w", err)
				return
			}
			ack, err := b.NewMessage()
			if err != nil {
				done <- err
				return
			}
			s := ack.Scope()
			if err := s.SetUint("device", 99); err != nil {
				done <- err
				return
			}
			if err := s.SetUint("seqno", seqno); err != nil {
				done <- err
				return
			}
			if err := s.SetString("status", "ack"); err != nil {
				done <- err
				return
			}
			if err := s.SetBytes("sig", nil); err != nil {
				done <- err
				return
			}
			if err := b.Send(ack); err != nil {
				done <- err
				return
			}
		}
	}()

	seqno := uint64(0)
	for epoch := uint64(0); epoch < 4; epoch++ {
		for i := 0; i < 2; i++ {
			seqno++
			m, err := a.NewMessage()
			if err != nil {
				t.Fatal(err)
			}
			s := m.Scope()
			if err := s.SetUint("device", 42); err != nil {
				t.Fatal(err)
			}
			if err := s.SetUint("seqno", seqno); err != nil {
				t.Fatal(err)
			}
			if err := s.SetString("status", "ok"); err != nil {
				t.Fatal(err)
			}
			if err := s.SetBytes("sig", []byte{1, 2}); err != nil {
				t.Fatal(err)
			}
			if err := a.Send(m); err != nil {
				t.Fatal(err)
			}
			ack, err := a.Recv()
			if err != nil {
				t.Fatal(err)
			}
			v, err := ack.Scope().GetUint("seqno")
			if err != nil {
				t.Fatal(err)
			}
			if v != seqno {
				t.Fatalf("ack seqno = %d, want %d", v, seqno)
			}
			// The ack was sent after B saw our epoch, so it must carry it.
			if got := b.Epoch(); got != epoch {
				t.Fatalf("B epoch = %d, want %d", got, epoch)
			}
		}
		if epoch+1 < 4 {
			if _, err := a.Rotate(); err != nil {
				t.Fatal(err)
			}
		}
	}
	connA.Close()
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	if a.Epoch() != 3 || b.Epoch() != 3 {
		t.Fatalf("final epochs A=%d B=%d, want 3/3", a.Epoch(), b.Epoch())
	}
}

// TestConcurrentSendersEpochBump drives one session with several
// concurrent sender goroutines while another goroutine bumps the epoch
// mid-stream; the receiver decodes every message whatever dialect its
// frame names. Run under -race this doubles as the locking proof.
func TestConcurrentSendersEpochBump(t *testing.T) {
	const senders = 4
	const perSender = 24

	opts := core.ObfuscationOptions{PerNode: 2, Seed: 99}
	rotA, err := core.NewRotation(beaconSpec, opts)
	if err != nil {
		t.Fatal(err)
	}
	rotB, err := core.NewRotation(beaconSpec, opts)
	if err != nil {
		t.Fatal(err)
	}
	connA, connB := net.Pipe()
	defer connA.Close()
	defer connB.Close()
	a, err := NewConn(connA, rotA)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewConn(connB, rotB)
	if err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	errc := make(chan error, senders+1)
	for g := 0; g < senders; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perSender; i++ {
				m, err := a.NewMessage()
				if err != nil {
					errc <- err
					return
				}
				s := m.Scope()
				if err := s.SetUint("device", uint64(g)); err != nil {
					errc <- err
					return
				}
				if err := s.SetUint("seqno", uint64(i)); err != nil {
					errc <- err
					return
				}
				if err := s.SetString("status", "ok"); err != nil {
					errc <- err
					return
				}
				if err := s.SetBytes("sig", nil); err != nil {
					errc <- err
					return
				}
				if err := a.Send(m); err != nil {
					errc <- err
					return
				}
				// Sender 0 rotates the session mid-stream every 8 messages.
				if g == 0 && i%8 == 7 {
					if _, err := a.Rotate(); err != nil {
						errc <- err
						return
					}
				}
			}
		}(g)
	}

	got := make(map[[2]uint64]bool)
	for n := 0; n < senders*perSender; n++ {
		m, err := b.Recv()
		if err != nil {
			t.Fatalf("recv %d: %v", n, err)
		}
		s := m.Scope()
		dev, err := s.GetUint("device")
		if err != nil {
			t.Fatal(err)
		}
		seq, err := s.GetUint("seqno")
		if err != nil {
			t.Fatal(err)
		}
		key := [2]uint64{dev, seq}
		if got[key] {
			t.Fatalf("duplicate message %v", key)
		}
		got[key] = true
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		if err != nil {
			t.Fatal(err)
		}
	}
	if len(got) != senders*perSender {
		t.Fatalf("received %d distinct messages, want %d", len(got), senders*perSender)
	}
	if a.Epoch() != 3 {
		t.Fatalf("sender epoch = %d, want 3 after three bumps", a.Epoch())
	}
}

// TestSteadyStateAllocs enforces the hot-path guarantee: after warm-up,
// one message Send plus one payload Recv performs at most 2 allocations
// (the target is 0: pooled read buffer, reused write buffer, in-place
// reversal, lazy fill map).
func TestSteadyStateAllocs(t *testing.T) {
	proto, err := core.Compile(pingSpec, core.ObfuscationOptions{})
	if err != nil {
		t.Fatal(err)
	}
	rw := &bytes.Buffer{}
	c, err := NewConn(rw, Fixed(proto.Graph))
	if err != nil {
		t.Fatal(err)
	}
	m, err := c.NewMessage()
	if err != nil {
		t.Fatal(err)
	}
	s := m.Scope()
	if err := s.SetUint("a", 7); err != nil {
		t.Fatal(err)
	}
	if err := s.SetUint("b", 1234); err != nil {
		t.Fatal(err)
	}
	if err := s.SetBytes("payload", []byte("01234567")); err != nil {
		t.Fatal(err)
	}
	tr := c.Transport()
	buf := make([]byte, 0, 64)
	roundtrip := func() {
		if err := c.Send(m); err != nil {
			t.Fatal(err)
		}
		out, _, err := tr.RecvPayload(buf[:0])
		if err != nil {
			t.Fatal(err)
		}
		buf = out
	}
	roundtrip() // warm buffers
	if allocs := testing.AllocsPerRun(200, roundtrip); allocs > 2 {
		t.Fatalf("steady-state Send+Recv allocates %.1f times per op, want <= 2", allocs)
	}
}

// TestTransportTruncation feeds truncated and oversized frames to the
// transport: every malformed stream must surface an error.
func TestTransportTruncation(t *testing.T) {
	whole := &bytes.Buffer{}
	tr := NewTransport(whole)
	if err := tr.SendPayload([]byte("hello session")); err != nil {
		t.Fatal(err)
	}
	frame := append([]byte(nil), whole.Bytes()...)
	for cut := 0; cut < len(frame); cut++ {
		tr := NewTransport(bytes.NewBuffer(append([]byte(nil), frame[:cut]...)))
		if _, _, err := tr.RecvPayload(nil); err == nil {
			t.Fatalf("truncation at %d bytes decoded successfully", cut)
		}
	}
	// Oversized length prefix.
	huge := []byte{0xFF, 0xFF, 0xFF, 0xFF, 0, 0, 0, 0, 0, 0, 0, 0}
	tr = NewTransport(bytes.NewBuffer(huge))
	if _, _, err := tr.RecvPayload(nil); err == nil {
		t.Fatal("oversized frame decoded successfully")
	}
}

// TestEpochLeadBound pins the anti-DoS rules of Recv: a frame naming an
// epoch too far ahead is rejected before any dialect is compiled, and a
// malformed payload never moves the session epoch.
func TestEpochLeadBound(t *testing.T) {
	a, b := rotationPair(t, beaconSpec, 3, 1)

	// Far-future epoch: rejected by the lead bound.
	if err := a.Transport().sendPayloadAt(b.MaxEpochLead+1, []byte("x")); err != nil {
		t.Fatal(err)
	}
	if _, err := b.Recv(); err == nil {
		t.Fatal("far-future epoch accepted")
	} else if !strings.Contains(err.Error(), "ahead of current") {
		t.Fatalf("unexpected error: %v", err)
	}
	if b.Epoch() != 0 {
		t.Fatalf("epoch moved to %d on rejected frame", b.Epoch())
	}

	// Plausible next epoch but garbage payload: parse fails, epoch stays.
	if err := a.Transport().sendPayloadAt(1, []byte("garbage")); err != nil {
		t.Fatal(err)
	}
	if _, err := b.Recv(); err == nil {
		t.Fatal("garbage payload decoded")
	}
	if b.Epoch() != 0 {
		t.Fatalf("epoch moved to %d on malformed frame", b.Epoch())
	}

	// A valid frame at epoch 1 still advances.
	r := rng.New(11)
	if err := a.Advance(1); err != nil {
		t.Fatal(err)
	}
	exchange(t, a, b, specCases[0].build, r)
	if b.Epoch() != 1 {
		t.Fatalf("epoch = %d after valid epoch-1 frame, want 1", b.Epoch())
	}
}

// TestTransportFollowBound pins the raw transport's bounded follow rule:
// a forged far-future epoch is delivered but cannot pin the monotonic
// epoch, so legitimate rotations still follow afterwards.
func TestTransportFollowBound(t *testing.T) {
	e1, e2 := newPipe()
	x, y := NewTransport(e1), NewTransport(e2)
	if err := x.sendPayloadAt(1<<60, []byte("forged")); err != nil {
		t.Fatal(err)
	}
	_, epoch, err := y.RecvPayload(nil)
	if err != nil {
		t.Fatal(err)
	}
	if epoch != 1<<60 {
		t.Fatalf("delivered epoch = %d, want 1<<60", epoch)
	}
	if y.Epoch() != 0 {
		t.Fatalf("epoch pinned to %d by forged frame", y.Epoch())
	}
	if err := x.sendPayloadAt(3, []byte("legit")); err != nil {
		t.Fatal(err)
	}
	if _, _, err := y.RecvPayload(nil); err != nil {
		t.Fatal(err)
	}
	if y.Epoch() != 3 {
		t.Fatalf("epoch = %d after legitimate rotation, want 3", y.Epoch())
	}
}
