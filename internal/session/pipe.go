package session

import (
	"io"
	"sync"
)

// halfPipe is one direction of an in-memory duplex stream. Unlike
// net.Pipe it is buffered: a write completes without a rendezvous with
// the reader, so a single goroutine can send a message and then receive
// it from the other end — what the differential tests and benchmarks do.
type halfPipe struct {
	mu     sync.Mutex
	cond   *sync.Cond
	buf    []byte
	off    int
	closed bool
}

func newHalfPipe() *halfPipe {
	h := &halfPipe{}
	h.cond = sync.NewCond(&h.mu)
	return h
}

func (h *halfPipe) Write(p []byte) (int, error) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.closed {
		return 0, io.ErrClosedPipe
	}
	if h.off > 0 && h.off == len(h.buf) {
		h.buf = h.buf[:0]
		h.off = 0
	}
	h.buf = append(h.buf, p...)
	h.cond.Broadcast()
	return len(p), nil
}

func (h *halfPipe) Read(p []byte) (int, error) {
	h.mu.Lock()
	defer h.mu.Unlock()
	for h.off == len(h.buf) && !h.closed {
		h.cond.Wait()
	}
	if h.off == len(h.buf) {
		return 0, io.EOF
	}
	n := copy(p, h.buf[h.off:])
	h.off += n
	return n, nil
}

func (h *halfPipe) close() {
	h.mu.Lock()
	h.closed = true
	h.cond.Broadcast()
	h.mu.Unlock()
}

// pipeEnd is one endpoint of the duplex: it reads from one half and
// writes to the other.
type pipeEnd struct {
	r *halfPipe
	w *halfPipe
}

func (e *pipeEnd) Read(p []byte) (int, error)  { return e.r.Read(p) }
func (e *pipeEnd) Write(p []byte) (int, error) { return e.w.Write(p) }

// Close closes both directions; pending and future reads on either end
// drain the buffer and then return io.EOF.
func (e *pipeEnd) Close() error {
	e.r.close()
	e.w.close()
	return nil
}

// newPipe returns the two ends of a buffered in-memory duplex stream.
func newPipe() (io.ReadWriteCloser, io.ReadWriteCloser) {
	ab, ba := newHalfPipe(), newHalfPipe()
	return &pipeEnd{r: ba, w: ab}, &pipeEnd{r: ab, w: ba}
}

// NewDuplex exposes the buffered duplex for tests and examples that want
// to drive two session peers from one goroutine.
func NewDuplex() (io.ReadWriteCloser, io.ReadWriteCloser) { return newPipe() }
