package session

import (
	"errors"
	"strings"
	"sync"
	"testing"
	"time"

	"protoobf/internal/core"
	"protoobf/internal/rng"
	"protoobf/internal/session/sched"
)

var schedGenesis = time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)

// serializeFixed serializes one deterministic beacon message under the
// given protocol version, for comparing wire bytes across seed families.
func serializeFixed(t *testing.T, p *core.Protocol) []byte {
	t.Helper()
	m := p.NewMessage()
	s := m.Scope()
	for _, step := range []error{
		s.SetUint("device", 7),
		s.SetUint("seqno", 1234),
		s.SetString("status", "steady"),
		s.SetBytes("sig", []byte{9, 9}),
	} {
		if step != nil {
			t.Fatal(step)
		}
	}
	data, err := p.Serialize(m)
	if err != nil {
		t.Fatal(err)
	}
	return data
}

// TestRekeyHandshake drives a full in-band rekey: propose, ack, both
// peers switch family, and the post-rekey epoch actually speaks a
// different dialect (different wire bytes) than it would have without
// the rekey.
func TestRekeyHandshake(t *testing.T) {
	opts := core.ObfuscationOptions{PerNode: 2, Seed: 21}
	rotA, err := core.NewRotation(beaconSpec, opts)
	if err != nil {
		t.Fatal(err)
	}
	rotB, err := core.NewRotation(beaconSpec, opts)
	if err != nil {
		t.Fatal(err)
	}
	a, b, err := Pair(rotA, rotB)
	if err != nil {
		t.Fatal(err)
	}
	r := rng.New(3)
	build := specCases[0].build

	exchange(t, a, b, build, r) // baseline at epoch 0

	const newSeed = 0x5EED
	from, err := a.Rekey(newSeed)
	if err != nil {
		t.Fatal(err)
	}
	if from != 1 {
		t.Fatalf("rekey targets epoch %d, want 1", from)
	}
	// The proposer must not cross the boundary before the ack.
	if a.Epoch() != 0 {
		t.Fatalf("proposer advanced to %d before ack", a.Epoch())
	}

	// B's next Recv consumes the proposal (applying + acking it) and then
	// the data frame, which was still sent under epoch 0.
	exchange(t, a, b, build, r)
	if b.Epoch() != from {
		t.Fatalf("acker epoch = %d, want %d", b.Epoch(), from)
	}
	// A's next Recv consumes the ack and completes the handshake; the
	// data frame from B already speaks the new family at epoch 1.
	exchange(t, b, a, build, r)
	if a.Epoch() != from {
		t.Fatalf("proposer epoch = %d after ack, want %d", a.Epoch(), from)
	}
	// Both directions work under the new family.
	exchange(t, a, b, build, r)
	exchange(t, b, a, build, r)

	// The rekey changed the dialect epoch 1 would otherwise have used:
	// the same message serializes to different bytes under the rekeyed
	// rotation than under a pristine rotation of the same (spec, opts).
	pristine, err := core.NewRotation(beaconSpec, opts)
	if err != nil {
		t.Fatal(err)
	}
	oldP, err := pristine.Version(from)
	if err != nil {
		t.Fatal(err)
	}
	newP, err := rotA.Version(from)
	if err != nil {
		t.Fatal(err)
	}
	oldBytes := serializeFixed(t, oldP)
	newBytes := serializeFixed(t, newP)
	if string(oldBytes) == string(newBytes) {
		t.Fatal("rekey did not change the wire bytes of the post-boundary epoch")
	}
	// And both peers agree on the new family.
	bP, err := rotB.Version(from)
	if err != nil {
		t.Fatal(err)
	}
	if bP.Seed != newP.Seed {
		t.Fatalf("peers diverged after rekey: seeds %d vs %d", bP.Seed, newP.Seed)
	}
}

// TestRekeyCrossedProposals has both peers propose concurrently with
// different seeds: the deterministic tie-break (larger seed wins at the
// same boundary) must converge both sides onto one family without extra
// round-trips.
func TestRekeyCrossedProposals(t *testing.T) {
	opts := core.ObfuscationOptions{PerNode: 2, Seed: 8}
	rotA, err := core.NewRotation(beaconSpec, opts)
	if err != nil {
		t.Fatal(err)
	}
	rotB, err := core.NewRotation(beaconSpec, opts)
	if err != nil {
		t.Fatal(err)
	}
	a, b, err := Pair(rotA, rotB)
	if err != nil {
		t.Fatal(err)
	}
	r := rng.New(5)
	build := specCases[0].build

	if _, err := a.Rekey(5); err != nil {
		t.Fatal(err)
	}
	if _, err := b.Rekey(9); err != nil {
		t.Fatal(err)
	}
	// A → B: B sees A's losing proposal (9 > 5) and keeps its own.
	exchange(t, a, b, build, r)
	// B → A: A sees B's winning proposal, adopts it and acks.
	exchange(t, b, a, build, r)
	// A → B: B consumes the ack; handshake complete on both sides.
	exchange(t, a, b, build, r)
	exchange(t, b, a, build, r)

	if a.Epoch() != 1 || b.Epoch() != 1 {
		t.Fatalf("epochs after crossed rekey: A=%d B=%d, want 1/1", a.Epoch(), b.Epoch())
	}
	pa, err := rotA.Version(1)
	if err != nil {
		t.Fatal(err)
	}
	pb, err := rotB.Version(1)
	if err != nil {
		t.Fatal(err)
	}
	if pa.Seed != pb.Seed {
		t.Fatalf("crossed proposals diverged: seeds %d vs %d", pa.Seed, pb.Seed)
	}
}

// TestRekeyFollowGate pins that a proposer does not follow the peer's
// frames across its own pending boundary: decoding succeeds, but the
// send epoch holds below the proposed switch until the ack arrives.
func TestRekeyFollowGate(t *testing.T) {
	opts := core.ObfuscationOptions{PerNode: 2, Seed: 44}
	rotA, err := core.NewRotation(beaconSpec, opts)
	if err != nil {
		t.Fatal(err)
	}
	rotB, err := core.NewRotation(beaconSpec, opts)
	if err != nil {
		t.Fatal(err)
	}
	a, b, err := Pair(rotA, rotB)
	if err != nil {
		t.Fatal(err)
	}
	r := rng.New(9)
	build := specCases[0].build

	if _, err := a.Rekey(0xD1CE); err != nil { // pending boundary at 1
		t.Fatal(err)
	}
	// B crosses into epoch 1 (old family — it has not read the proposal
	// yet) and sends. A must decode it without following to epoch 1.
	if err := b.Advance(1); err != nil {
		t.Fatal(err)
	}
	exchange(t, b, a, build, r)
	if a.Epoch() != 0 {
		t.Fatalf("proposer followed to epoch %d across its pending boundary", a.Epoch())
	}
	// The handshake then completes on normal traffic.
	exchange(t, a, b, build, r) // B reads the proposal, acks, rekeys
	exchange(t, b, a, build, r) // A reads the ack, switches and advances
	if a.Epoch() != 1 || b.Epoch() != 1 {
		t.Fatalf("epochs after handshake: A=%d B=%d, want 1/1", a.Epoch(), b.Epoch())
	}
	pa, err := rotA.Version(1)
	if err != nil {
		t.Fatal(err)
	}
	pb, err := rotB.Version(1)
	if err != nil {
		t.Fatal(err)
	}
	if pa.Seed != pb.Seed {
		t.Fatalf("families diverged: %d vs %d", pa.Seed, pb.Seed)
	}
}

// TestRekeyAbandonedThenLateAck pins the liveness rule: a proposal the
// schedule outran is abandoned (rotation resumes) but still honored
// when its ack finally arrives, with at most transient decode errors
// before the peers reconverge on one family.
func TestRekeyAbandonedThenLateAck(t *testing.T) {
	opts := core.ObfuscationOptions{PerNode: 2, Seed: 52}
	rotA, err := core.NewRotation(beaconSpec, opts)
	if err != nil {
		t.Fatal(err)
	}
	rotB, err := core.NewRotation(beaconSpec, opts)
	if err != nil {
		t.Fatal(err)
	}
	clockA := sched.NewFakeClock(schedGenesis)
	clockB := sched.NewFakeClock(schedGenesis)
	interval := time.Minute
	a, b, err := PairOpts(rotA, rotB,
		Options{Schedule: sched.New(schedGenesis, interval).WithClock(clockA.Now)},
		Options{Schedule: sched.New(schedGenesis, interval).WithClock(clockB.Now)},
	)
	if err != nil {
		t.Fatal(err)
	}
	r := rng.New(7)
	build := specCases[0].build

	if _, err := a.Rekey(0xFADE); err != nil { // boundary at 1, peer silent
		t.Fatal(err)
	}
	jump := uint64(1 + rekeyAbandonLead)
	clockA.Advance(time.Duration(jump) * interval)
	clockB.Advance(time.Duration(jump) * interval)

	// The schedule outran the unacked proposal: A abandons it and
	// rotation resumes instead of freezing at epoch 0.
	m, err := a.NewMessage()
	if err != nil {
		t.Fatal(err)
	}
	if a.Epoch() != jump {
		t.Fatalf("proposer epoch = %d after abandonment, want %d", a.Epoch(), jump)
	}
	if err := build(m.Scope(), r); err != nil {
		t.Fatal(err)
	}
	if err := a.Send(m); err != nil { // old family, epoch `jump`
		t.Fatal(err)
	}
	// B finally reads: it adopts the stale proposal (rekeying from epoch
	// 1) and acks; the data frame composed under the abandoned family
	// then fails — the documented transient error.
	if _, err := b.Recv(); err == nil {
		t.Fatal("old-family frame decoded across the peer's rekey")
	}
	// A processes the late ack on its next Recv and switches too; the
	// session reconverges in both directions.
	exchange(t, b, a, build, r)
	exchange(t, a, b, build, r)
	pa, err := rotA.Version(jump)
	if err != nil {
		t.Fatal(err)
	}
	pb, err := rotB.Version(jump)
	if err != nil {
		t.Fatal(err)
	}
	if pa.Seed != pb.Seed {
		t.Fatalf("families diverged after late ack: %d vs %d", pa.Seed, pb.Seed)
	}
}

// TestRekeyStatic pins that a static session refuses to rekey rather
// than desyncing.
func TestRekeyStatic(t *testing.T) {
	proto, err := core.Compile(pingSpec, core.ObfuscationOptions{})
	if err != nil {
		t.Fatal(err)
	}
	ca, _ := newPipe()
	c, err := NewConn(ca, Fixed(proto.Graph))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Rekey(1); err == nil || !strings.Contains(err.Error(), "does not support rekeying") {
		t.Fatalf("static rekey: %v", err)
	}
}

// TestRekeyUnderRace round-trips a mid-session rekey while several
// goroutines keep sending: run with -race this is the locking proof for
// the control plane. A worker pumps request/reply pairs in both
// directions; the main goroutine proposes a rekey mid-stream.
func TestRekeyUnderRace(t *testing.T) {
	const msgs = 60
	opts := core.ObfuscationOptions{PerNode: 2, Seed: 77}
	rotA, err := core.NewRotation(beaconSpec, opts)
	if err != nil {
		t.Fatal(err)
	}
	rotB, err := core.NewRotation(beaconSpec, opts)
	if err != nil {
		t.Fatal(err)
	}
	ca, cb := newPipe()
	a, err := NewConn(ca, rotA)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewConn(cb, rotB)
	if err != nil {
		t.Fatal(err)
	}

	// Echo peer: decode each message, reply with the same seqno.
	var wg sync.WaitGroup
	wg.Add(1)
	errc := make(chan error, 2)
	go func() {
		defer wg.Done()
		for {
			m, err := b.Recv()
			if err != nil {
				return // pipe closed
			}
			seqno, err := m.Scope().GetUint("seqno")
			if err != nil {
				errc <- err
				return
			}
			reply, err := b.NewMessage()
			if err != nil {
				errc <- err
				return
			}
			s := reply.Scope()
			if err := s.SetUint("device", 1); err != nil {
				errc <- err
				return
			}
			if err := s.SetUint("seqno", seqno); err != nil {
				errc <- err
				return
			}
			if err := s.SetString("status", "ok"); err != nil {
				errc <- err
				return
			}
			if err := s.SetBytes("sig", nil); err != nil {
				errc <- err
				return
			}
			if err := b.Send(reply); err != nil {
				errc <- err
				return
			}
		}
	}()

	rekeyAt := msgs / 2
	for i := 0; i < msgs; i++ {
		if i == rekeyAt {
			if _, err := a.Rekey(0xFACE); err != nil {
				t.Fatal(err)
			}
		}
		m, err := a.NewMessage()
		if err != nil {
			t.Fatal(err)
		}
		s := m.Scope()
		if err := s.SetUint("device", 0); err != nil {
			t.Fatal(err)
		}
		if err := s.SetUint("seqno", uint64(i)); err != nil {
			t.Fatal(err)
		}
		if err := s.SetString("status", "ok"); err != nil {
			t.Fatal(err)
		}
		if err := s.SetBytes("sig", nil); err != nil {
			t.Fatal(err)
		}
		if err := a.Send(m); err != nil {
			t.Fatal(err)
		}
		reply, err := a.Recv()
		if err != nil {
			t.Fatalf("msg %d: %v", i, err)
		}
		seqno, err := reply.Scope().GetUint("seqno")
		if err != nil {
			t.Fatal(err)
		}
		if seqno != uint64(i) {
			t.Fatalf("reply seqno = %d, want %d", seqno, i)
		}
	}
	// The handshake completed mid-stream: both sides crossed into the
	// rekeyed epoch and agree on its family.
	if a.Epoch() != 1 || b.Epoch() != 1 {
		t.Fatalf("epochs after rekey = A:%d B:%d, want 1/1", a.Epoch(), b.Epoch())
	}
	pa, err := rotA.Version(1)
	if err != nil {
		t.Fatal(err)
	}
	pb, err := rotB.Version(1)
	if err != nil {
		t.Fatal(err)
	}
	if pa.Seed != pb.Seed {
		t.Fatalf("families diverged: %d vs %d", pa.Seed, pb.Seed)
	}
	ca.Close() // unblocks the echo goroutine's Recv
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Fatal(err)
	}
}

// TestScheduledConvergence drives two peers from independent fake
// clocks: epochs advance purely from wall-clock time, and the dialects
// stay in lockstep without any in-band coordination.
func TestScheduledConvergence(t *testing.T) {
	opts := core.ObfuscationOptions{PerNode: 2, Seed: 13}
	rotA, err := core.NewRotation(beaconSpec, opts)
	if err != nil {
		t.Fatal(err)
	}
	rotB, err := core.NewRotation(beaconSpec, opts)
	if err != nil {
		t.Fatal(err)
	}
	clockA := sched.NewFakeClock(schedGenesis)
	clockB := sched.NewFakeClock(schedGenesis.Add(2 * time.Second)) // skewed within the interval
	interval := time.Minute
	a, b, err := PairOpts(rotA, rotB,
		Options{Schedule: sched.New(schedGenesis, interval).WithClock(clockA.Now)},
		Options{Schedule: sched.New(schedGenesis, interval).WithClock(clockB.Now)},
	)
	if err != nil {
		t.Fatal(err)
	}
	r := rng.New(17)
	build := specCases[0].build
	for step := 0; step < 5; step++ {
		exchange(t, a, b, build, r)
		exchange(t, b, a, build, r)
		if want := uint64(step); a.Epoch() != want || b.Epoch() != want {
			t.Fatalf("step %d: epochs A=%d B=%d, want %d", step, a.Epoch(), b.Epoch(), want)
		}
		clockA.Advance(interval)
		clockB.Advance(interval)
	}
}

// TestPartitionRecovery is the satellite scenario: a receiver offline
// across far more than MaxEpochLead wall-clock intervals must resync via
// the scheduler path — its own clock lands it on the fleet-wide epoch,
// so the incoming frame is not mistaken for a forged far-future epoch.
func TestPartitionRecovery(t *testing.T) {
	opts := core.ObfuscationOptions{PerNode: 2, Seed: 4}
	rotA, err := core.NewRotation(beaconSpec, opts)
	if err != nil {
		t.Fatal(err)
	}
	rotB, err := core.NewRotation(beaconSpec, opts)
	if err != nil {
		t.Fatal(err)
	}
	clockA := sched.NewFakeClock(schedGenesis)
	clockB := sched.NewFakeClock(schedGenesis)
	interval := time.Minute
	a, b, err := PairOpts(rotA, rotB,
		Options{Schedule: sched.New(schedGenesis, interval).WithClock(clockA.Now)},
		Options{Schedule: sched.New(schedGenesis, interval).WithClock(clockB.Now)},
	)
	if err != nil {
		t.Fatal(err)
	}
	r := rng.New(23)
	build := specCases[0].build
	exchange(t, a, b, build, r) // healthy at epoch 0

	// Partition: no traffic while both clocks cross twice the forged-epoch
	// bound's worth of intervals.
	jump := 2*DefaultMaxEpochLead + 3
	clockA.Advance(time.Duration(jump) * interval)
	clockB.Advance(time.Duration(jump) * interval)

	// First frame after the partition: A composes at its schedule epoch;
	// B's own schedule lands on the same epoch, so the frame is 0 ahead
	// and decodes — no "ahead of current" rejection.
	exchange(t, a, b, build, r)
	want := uint64(jump)
	if a.Epoch() != want || b.Epoch() != want {
		t.Fatalf("epochs after partition: A=%d B=%d, want %d", a.Epoch(), b.Epoch(), want)
	}
	exchange(t, b, a, build, r) // and the reverse direction
}

// TestPartitionRecoveryWhileBlocked pins the horizon rule: a receiver
// that was already blocked inside Recv when the partition ended must
// measure the incoming frame's epoch against wall-clock time at decode,
// not against the stale epoch it entered Recv with.
func TestPartitionRecoveryWhileBlocked(t *testing.T) {
	opts := core.ObfuscationOptions{PerNode: 2, Seed: 4}
	rotA, err := core.NewRotation(beaconSpec, opts)
	if err != nil {
		t.Fatal(err)
	}
	rotB, err := core.NewRotation(beaconSpec, opts)
	if err != nil {
		t.Fatal(err)
	}
	clockA := sched.NewFakeClock(schedGenesis)
	clockB := sched.NewFakeClock(schedGenesis)
	interval := time.Minute
	a, b, err := PairOpts(rotA, rotB,
		Options{Schedule: sched.New(schedGenesis, interval).WithClock(clockA.Now)},
		Options{Schedule: sched.New(schedGenesis, interval).WithClock(clockB.Now)},
	)
	if err != nil {
		t.Fatal(err)
	}

	// B blocks in Recv at epoch 0 with nothing on the wire.
	got := make(chan error, 1)
	go func() {
		_, err := b.Recv()
		got <- err
	}()
	time.Sleep(20 * time.Millisecond) // let B reach the blocking read

	jump := 2*DefaultMaxEpochLead + 3
	clockA.Advance(time.Duration(jump) * interval)
	clockB.Advance(time.Duration(jump) * interval)

	m, err := a.NewMessage() // composed at A's post-partition schedule epoch
	if err != nil {
		t.Fatal(err)
	}
	s := m.Scope()
	if err := s.SetUint("device", 1); err != nil {
		t.Fatal(err)
	}
	if err := s.SetUint("seqno", 1); err != nil {
		t.Fatal(err)
	}
	if err := s.SetString("status", "ok"); err != nil {
		t.Fatal(err)
	}
	if err := s.SetBytes("sig", nil); err != nil {
		t.Fatal(err)
	}
	if err := a.Send(m); err != nil {
		t.Fatal(err)
	}
	if err := <-got; err != nil {
		t.Fatalf("blocked receiver rejected the post-partition frame: %v", err)
	}
	if want := uint64(jump); b.Epoch() != want {
		t.Fatalf("receiver epoch = %d after recovery, want %d", b.Epoch(), want)
	}
}

// TestScheduledAutoRekey lets the control plane rekey itself: with
// RekeyEvery set and deterministic seed sources, crossing the boundary
// proposes in-band, the handshake completes on the normal message flow,
// and the post-boundary dialect differs from the never-rekeyed family.
func TestScheduledAutoRekey(t *testing.T) {
	opts := core.ObfuscationOptions{PerNode: 2, Seed: 31}
	rotA, err := core.NewRotation(beaconSpec, opts)
	if err != nil {
		t.Fatal(err)
	}
	rotB, err := core.NewRotation(beaconSpec, opts)
	if err != nil {
		t.Fatal(err)
	}
	clockA := sched.NewFakeClock(schedGenesis)
	clockB := sched.NewFakeClock(schedGenesis)
	interval := time.Minute
	const every = 3
	a, b, err := PairOpts(rotA, rotB,
		Options{
			Schedule:   sched.New(schedGenesis, interval).WithClock(clockA.Now),
			RekeyEvery: every,
			SeedSource: func() (int64, error) { return 1000, nil },
		},
		Options{
			Schedule:   sched.New(schedGenesis, interval).WithClock(clockB.Now),
			RekeyEvery: every,
			SeedSource: func() (int64, error) { return 2000, nil },
		},
	)
	if err != nil {
		t.Fatal(err)
	}
	r := rng.New(29)
	build := specCases[0].build
	for step := 0; step < 8; step++ {
		exchange(t, a, b, build, r)
		exchange(t, b, a, build, r)
		clockA.Advance(interval)
		clockB.Advance(interval)
	}
	// Both sides agree on every epoch's family...
	for epoch := uint64(0); epoch <= a.Epoch(); epoch++ {
		pa, err := rotA.Version(epoch)
		if err != nil {
			t.Fatal(err)
		}
		pb, err := rotB.Version(epoch)
		if err != nil {
			t.Fatal(err)
		}
		if pa.Seed != pb.Seed {
			t.Fatalf("epoch %d: families diverged (%d vs %d)", epoch, pa.Seed, pb.Seed)
		}
	}
	// ...and at least one rekey actually switched away from the pristine
	// family.
	pristine, err := core.NewRotation(beaconSpec, opts)
	if err != nil {
		t.Fatal(err)
	}
	switched := false
	for epoch := uint64(1); epoch <= a.Epoch(); epoch++ {
		pa, err := rotA.Version(epoch)
		if err != nil {
			t.Fatal(err)
		}
		pp, err := pristine.Version(epoch)
		if err != nil {
			t.Fatal(err)
		}
		if pa.Seed != pp.Seed {
			switched = true
			break
		}
	}
	if !switched {
		t.Fatal("RekeyEvery never changed the seed family")
	}
}

// TestDialectCacheSoak crosses 10k epochs on one session and checks both
// the per-connection dialect cache and the rotation's compiled-version
// cache stay bounded at the configured window.
func TestDialectCacheSoak(t *testing.T) {
	const (
		epochs = 10000
		window = 8
	)
	opts := core.ObfuscationOptions{PerNode: 1, Seed: 2}
	rot, err := core.NewRotation(pingSpec, opts)
	if err != nil {
		t.Fatal(err)
	}
	rot.Bound(window)
	ca, cb := newPipe()
	c, err := NewConnOpts(ca, rot, Options{CacheWindow: window})
	if err != nil {
		t.Fatal(err)
	}
	_ = cb
	for e := uint64(1); e <= epochs; e++ {
		if err := c.Advance(e); err != nil {
			t.Fatalf("epoch %d: %v", e, err)
		}
		if n := rot.CacheLen(); n > window {
			t.Fatalf("epoch %d: rotation cache holds %d versions, window %d", e, n, window)
		}
		c.mu.Lock()
		dn, bn := c.dialects.Len(), len(c.byGraph)
		c.mu.Unlock()
		if dn > window || bn > window {
			t.Fatalf("epoch %d: conn caches hold %d dialects / %d reverse entries, window %d", e, dn, bn, window)
		}
	}
	// The session still works at the far end of the soak.
	m, err := c.NewMessage()
	if err != nil {
		t.Fatal(err)
	}
	s := m.Scope()
	if err := s.SetUint("a", 1); err != nil {
		t.Fatal(err)
	}
	if err := s.SetUint("b", 2); err != nil {
		t.Fatal(err)
	}
	if err := s.SetBytes("payload", []byte("01234567")); err != nil {
		t.Fatal(err)
	}
	if err := c.Send(m); err != nil {
		t.Fatal(err)
	}
}

// TestSendEvictedDialectRejected pins the cache-window contract: a
// message composed for an epoch that has since left the window cannot be
// sent (its dialect is gone), and the error says so.
func TestSendEvictedDialectRejected(t *testing.T) {
	opts := core.ObfuscationOptions{PerNode: 1, Seed: 6}
	rot, err := core.NewRotation(pingSpec, opts)
	if err != nil {
		t.Fatal(err)
	}
	ca, _ := newPipe()
	c, err := NewConnOpts(ca, rot, Options{CacheWindow: 2})
	if err != nil {
		t.Fatal(err)
	}
	m, err := c.NewMessage() // composed at epoch 0
	if err != nil {
		t.Fatal(err)
	}
	s := m.Scope()
	if err := s.SetUint("a", 1); err != nil {
		t.Fatal(err)
	}
	if err := s.SetUint("b", 2); err != nil {
		t.Fatal(err)
	}
	if err := s.SetBytes("payload", []byte("01234567")); err != nil {
		t.Fatal(err)
	}
	for e := uint64(1); e <= 4; e++ {
		if err := c.Advance(e); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.Send(m); err == nil || !strings.Contains(err.Error(), "cache window") {
		t.Fatalf("send of evicted-dialect message: %v", err)
	}
}

// TestVolumeRekey: the ScrambleSuit-style trigger. With a threshold of
// a few dozen bytes, a handful of round trips must complete an in-band
// rekey on both peers — proposed by traffic volume, not by epoch count
// — and the session keeps exchanging cleanly across the boundary.
func TestVolumeRekey(t *testing.T) {
	opts := core.ObfuscationOptions{PerNode: 2, Seed: 33}
	rotA, err := core.NewRotation(beaconSpec, opts)
	if err != nil {
		t.Fatal(err)
	}
	rotB, err := core.NewRotation(beaconSpec, opts)
	if err != nil {
		t.Fatal(err)
	}
	var n int64
	seedSource := func() (int64, error) { n++; return 0x7EED + n, nil }
	o := Options{RekeyAfterBytes: 64, SeedSource: seedSource}
	a, b, err := PairOpts(rotA, rotB, o, o)
	if err != nil {
		t.Fatal(err)
	}
	r := rng.New(5)
	build := specCases[0].build

	for i := 0; i < 50 && (rotA.Stats().Rekeys == 0 || rotB.Stats().Rekeys == 0); i++ {
		exchange(t, a, b, build, r)
		exchange(t, b, a, build, r)
	}
	if ra, rb := rotA.Stats().Rekeys, rotB.Stats().Rekeys; ra == 0 || rb == 0 {
		t.Fatalf("volume trigger never completed a rekey (A=%d B=%d, moved=%d)", ra, rb, a.BytesMoved())
	}
	if a.BytesMoved() == 0 || b.BytesMoved() == 0 {
		t.Fatalf("byte odometer stuck at zero (A=%d B=%d)", a.BytesMoved(), b.BytesMoved())
	}
	// The boundary was crossed and traffic still flows.
	exchange(t, a, b, build, r)
	exchange(t, b, a, build, r)
	if a.Epoch() == 0 && b.Epoch() == 0 {
		t.Fatal("rekey completed but neither peer crossed the boundary epoch")
	}
}

// brokenEntropy simulates an unreadable system entropy source.
type brokenEntropy struct{}

func (brokenEntropy) Read([]byte) (int, error) {
	return 0, errors.New("entropy source down")
}

// TestRekeySeedFailsClosed: with the system entropy source down, the
// default SeedSource must surface an error from the operation that
// triggered the rekey — never fall back to predictable material like a
// timestamp — and the session must keep its current family.
func TestRekeySeedFailsClosed(t *testing.T) {
	saved := entropy
	entropy = brokenEntropy{}
	defer func() { entropy = saved }()

	if _, err := randomSeed(); err == nil || !strings.Contains(err.Error(), "entropy") {
		t.Fatalf("randomSeed err = %v, want entropy failure", err)
	}

	opts := core.ObfuscationOptions{PerNode: 1, Seed: 77}
	rotA, err := core.NewRotation(beaconSpec, opts)
	if err != nil {
		t.Fatal(err)
	}
	rotB, err := core.NewRotation(beaconSpec, opts)
	if err != nil {
		t.Fatal(err)
	}
	// A rekeys after every framed byte and uses the default (crypto/rand)
	// seed source; B has no trigger so its Recv stays clean.
	a, b, err := PairOpts(rotA, rotB, Options{RekeyAfterBytes: 1}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	r := rng.New(1)
	m, err := a.NewMessage()
	if err != nil {
		t.Fatal(err)
	}
	if err := specCases[0].build(m.Scope(), r); err != nil {
		t.Fatal(err)
	}
	if err := a.Send(m); err == nil || !strings.Contains(err.Error(), "entropy") {
		t.Fatalf("Send err = %v, want entropy failure", err)
	}
	if got := rotA.Stats().Rekeys; got != 0 {
		t.Errorf("rekeys applied despite entropy failure: %d", got)
	}
	// The payload itself was framed before the trigger fired; the peer
	// still decodes it, so fail-closed loses no delivered data.
	if _, err := b.Recv(); err != nil {
		t.Fatalf("peer recv after failed trigger: %v", err)
	}
}

// TestVolumeRekeyRespectsThreshold: below the threshold the trigger
// stays silent — no proposals, no family switches.
func TestVolumeRekeyRespectsThreshold(t *testing.T) {
	opts := core.ObfuscationOptions{PerNode: 1, Seed: 34}
	rotA, err := core.NewRotation(beaconSpec, opts)
	if err != nil {
		t.Fatal(err)
	}
	rotB, err := core.NewRotation(beaconSpec, opts)
	if err != nil {
		t.Fatal(err)
	}
	o := Options{RekeyAfterBytes: 1 << 30}
	a, b, err := PairOpts(rotA, rotB, o, o)
	if err != nil {
		t.Fatal(err)
	}
	r := rng.New(6)
	build := specCases[0].build
	for i := 0; i < 5; i++ {
		exchange(t, a, b, build, r)
		exchange(t, b, a, build, r)
	}
	if ra, rb := rotA.Stats().Rekeys, rotB.Stats().Rekeys; ra != 0 || rb != 0 {
		t.Fatalf("rekeys below threshold: A=%d B=%d", ra, rb)
	}
}

// TestVolumeRekeyStaticNoop: a Fixed versioner cannot rekey; the
// trigger must stay a silent no-op rather than erroring every Send.
func TestVolumeRekeyStaticNoop(t *testing.T) {
	p, err := core.Compile(beaconSpec, core.ObfuscationOptions{Seed: 35})
	if err != nil {
		t.Fatal(err)
	}
	o := Options{RekeyAfterBytes: 1}
	a, b, err := PairOpts(Fixed(p.Graph), Fixed(p.Graph), o, o)
	if err != nil {
		t.Fatal(err)
	}
	r := rng.New(7)
	build := specCases[0].build
	for i := 0; i < 3; i++ {
		exchange(t, a, b, build, r)
		exchange(t, b, a, build, r)
	}
}
