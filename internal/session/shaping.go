package session

import (
	"fmt"
	"sync"
	"time"

	"protoobf/internal/frame"
	"protoobf/internal/metrics"
	"protoobf/internal/session/shape"
	"protoobf/internal/trace"
)

// Traffic shaping: the session's answer to the statistical observer.
// The dialect rotation hides message *content*; shaping hides message
// *shape*. With Options.Shape set, every outgoing data frame is padded
// to a length sampled from the profile (and split at the profile MTU),
// departures are paced to sampled inter-frame gaps, and an idle-timer
// scheduler emits cover frames (frame.KindCover) so a quiet session
// still shows plausible traffic. Pad bytes ride inside the framed
// payload behind a fixed trailer (see shape.TrailerLen) because the
// cleartext length word must keep naming the byte count the receiver
// reads — which also means shaping is symmetric: both peers must be
// built with the same profile, exactly like the (spec, seed) contract.
// Cover frames are the asymmetric half: every receiver discards them,
// shaped or not.
//
// Profile parameters are re-derived per epoch from the Versioner's
// shape seed (ShapeSeeder; core.View follows the rekeyed seed family),
// so the observable shape rotates at epoch boundaries and jumps on
// rekey, exactly like the dialect.

// ShapeSeeder is the optional Versioner extension behind per-epoch
// shape rotation: the shaping seed of an epoch, derived from the seed
// family active at it. core.View implements it; a Versioner without it
// (Fixed) shapes every epoch from the profile's own Seed.
type ShapeSeeder interface {
	ShapeSeed(epoch uint64) int64
}

// shaper holds a Conn's shaping state. Its mutex serializes shaping
// decisions *and* the frame writes they produce (the transport write
// lock nests inside), so fragments of one message are contiguous on the
// wire and pacing decisions see departures in order.
type shaper struct {
	base   shape.Profile
	seeder ShapeSeeder // nil: static shape from base.Seed
	clock  func() time.Time
	sleep  func(time.Duration)
	stats  *metrics.ShapeCounters

	mu      sync.Mutex
	epoch   uint64         // epoch the current sampler was derived for
	sampler *shape.Sampler // lazily (re-)derived per epoch
	next    time.Time      // earliest departure of the next frame
	last    time.Time      // most recent departure (cover idle datum)
	scratch []byte         // staging buffer for shaped frames
}

// newShaper builds the shaping state for opts (opts.Shape is non-nil
// and validated). The clock and sleep are injectable for deterministic
// captures and tests; production defaults are time.Now and time.Sleep.
func newShaper(opts Options, versions Versioner) *shaper {
	sh := &shaper{
		base:  *opts.Shape,
		clock: opts.ShapeClock,
		sleep: opts.ShapeSleep,
		stats: opts.ShapeStats,
	}
	if sh.clock == nil {
		sh.clock = time.Now
	}
	if sh.sleep == nil {
		sh.sleep = time.Sleep
	}
	if s, ok := versions.(ShapeSeeder); ok {
		sh.seeder = s
	}
	sh.last = sh.clock()
	return sh
}

// samplerLocked returns the sampler of epoch, re-deriving the profile
// when the epoch moved: the shape rotates at epoch boundaries. Callers
// hold sh.mu.
func (sh *shaper) samplerLocked(epoch uint64) *shape.Sampler {
	if sh.sampler == nil || sh.epoch != epoch {
		seed := sh.base.Seed
		if sh.seeder != nil {
			seed = sh.seeder.ShapeSeed(epoch)
		}
		sh.sampler = shape.NewSampler(shape.Derive(sh.base, seed, epoch), shape.MixSeed(seed+1, epoch))
		sh.epoch = epoch
	}
	return sh.sampler
}

// paceLocked delays the caller until the scheduled departure of the
// next frame, then schedules the one after by a sampled gap — the
// inter-frame jitter. With the profile's gap support above the
// application's send cadence, observed departures are the sampled
// process and the application's burst pattern vanishes. Returns the
// injected delay. Callers hold sh.mu.
func (sh *shaper) paceLocked(s *shape.Sampler) time.Duration {
	now := sh.clock()
	var waited time.Duration
	if sh.next.After(now) {
		waited = sh.next.Sub(now)
		sh.sleep(waited)
		if now = sh.clock(); sh.next.After(now) {
			now = sh.next // a sleep stub that does not move the clock
		}
	}
	sh.next = now.Add(s.Gap())
	sh.last = now
	return waited
}

// sendShaped morphs one serialized payload into shaped frames and
// writes them: split at the profile MTU, each chunk padded to a sampled
// target length behind the shaping trailer, each departure paced.
func (c *Conn) sendShaped(epoch uint64, payload []byte) error {
	sh := c.shaper
	sh.mu.Lock()
	defer sh.mu.Unlock()
	s := sh.samplerLocked(epoch)
	maxChunk := sh.base.MTU - shape.TrailerLen
	total := uint64(0)
	frames := 0
	for {
		chunk := payload
		more := len(payload) > maxChunk
		if more {
			chunk = payload[:maxChunk]
		}
		payload = payload[len(chunk):]
		need := len(chunk) + shape.TrailerLen
		pad := s.TargetLen(need) - need
		buf := append(sh.scratch[:0], chunk...)
		buf = s.AppendPad(buf, pad)
		buf = shape.AppendTrailer(buf, pad, more)
		sh.scratch = buf
		delay := sh.paceLocked(s)
		if err := c.t.sendFrameAt(frame.KindData, epoch, buf); err != nil {
			return err
		}
		frames++
		total += uint64(len(buf)) + frame.EpochHeaderLen
		if st := sh.stats; st != nil {
			st.ShapedFrames.Add(1)
			st.PadBytes.Add(uint64(pad))
			st.DelayHist.ObserveDuration(delay)
			if delay > 0 {
				st.DelayNanos.Add(uint64(delay))
			}
		}
		if !more {
			break
		}
	}
	if st := sh.stats; st != nil && frames > 1 {
		st.Fragments.Add(uint64(frames - 1))
	}
	c.bytesMoved.Add(total)
	return nil
}

// unshape strips the shaping trailer from one received data frame and
// folds fragments into the reassembly buffer. It returns the complete
// message payload, or done=false when the frame was a fragment and the
// Recv loop should keep reading. Callers hold c.pmu.
func (c *Conn) unshape(epoch uint64, buf []byte) (payload []byte, done bool, err error) {
	reject := func(e error) (payload []byte, done bool, err error) {
		c.reasm, c.reasmWire = c.reasm[:0], 0
		if c.shapeStats != nil {
			c.shapeStats.UnshapeRejects.Add(1)
		}
		return nil, false, e
	}
	chunk, more, err := shape.SplitTrailer(buf)
	if err != nil {
		return reject(fmt.Errorf("session: epoch %d: %w", epoch, err))
	}
	if len(c.reasm) > 0 && epoch != c.reasmEpoch {
		return reject(fmt.Errorf("session: shaped fragment at epoch %d interrupts a fragment stream at epoch %d", epoch, c.reasmEpoch))
	}
	if len(c.reasm)+len(chunk) > frame.MaxFrame {
		return reject(fmt.Errorf("session: reassembled shaped message exceeds limit %d", frame.MaxFrame))
	}
	if more {
		if len(c.reasm) == 0 {
			c.reasmEpoch = epoch
		}
		c.reasm = append(c.reasm, chunk...)
		c.reasmWire += uint64(len(buf)) + frame.EpochHeaderLen
		return nil, false, nil
	}
	if len(c.reasm) > 0 {
		payload = append(c.reasm, chunk...)
		c.reasm = c.reasm[:0]
		return payload, true, nil
	}
	return chunk, true, nil
}

// emitCoverIfIdle writes one cover frame when the session has been
// quiet past the profile's CoverIdle threshold: the decoy the idle
// scheduler exists for. The cover payload is sampled chaff at a
// profile-sampled length, sent under the current epoch, and counts
// toward the volume-rekey odometer like any framed traffic. It reports
// whether a cover was sent.
func (c *Conn) emitCoverIfIdle() (bool, error) {
	sh := c.shaper
	if sh == nil || sh.base.CoverIdle <= 0 {
		return false, nil
	}
	sh.mu.Lock()
	now := sh.clock()
	if now.Sub(sh.last) < sh.base.CoverIdle {
		sh.mu.Unlock()
		return false, nil
	}
	epoch := c.t.Epoch()
	s := sh.samplerLocked(epoch)
	buf := s.AppendPad(sh.scratch[:0], s.TargetLen(1))
	sh.scratch = buf
	sh.next = now.Add(s.Gap())
	sh.last = now
	err := c.t.sendFrameAt(frame.KindCover, epoch, buf)
	sh.mu.Unlock()
	if err != nil {
		return false, err
	}
	c.bytesMoved.Add(uint64(len(buf)) + frame.EpochHeaderLen)
	if st := sh.stats; st != nil {
		st.CoverSent.Add(1)
	}
	c.tr.Emit(c.traceID, trace.KindCoverBurst, epoch, "")
	return true, nil
}

// startCover launches the idle-timer cover scheduler when the profile
// asks for cover traffic. Sessions with an injected shape clock are
// simulations — they pump emitCoverIfIdle themselves — so the goroutine
// only runs on the production clock.
func (c *Conn) startCover(opts Options) {
	if opts.Shape == nil || opts.Shape.CoverIdle <= 0 || opts.ShapeClock != nil {
		return
	}
	c.stopCover = make(chan struct{})
	c.coverDone = make(chan struct{})
	go c.coverLoop(c.stopCover, opts.Shape.CoverIdle)
}

// coverLoop polls the idle threshold at a quarter of its width until
// the session is released or the stream dies under a cover write.
func (c *Conn) coverLoop(stop <-chan struct{}, idle time.Duration) {
	defer close(c.coverDone)
	period := idle / 4
	if period <= 0 {
		period = idle
	}
	t := time.NewTicker(period)
	defer t.Stop()
	for {
		select {
		case <-stop:
			return
		case <-t.C:
			if _, err := c.emitCoverIfIdle(); err != nil {
				// The stream is gone; the owner's next Send/Recv
				// surfaces the error.
				return
			}
		}
	}
}

// stopCoverLoop terminates the cover scheduler, once, and waits for it
// to exit: Release is about to return the transport's buffers to the
// pool, and a cover write still in flight must not touch them after
// that. Close unblocks a write stuck on a dead stream by closing the
// stream first.
func (c *Conn) stopCoverLoop() {
	if c.stopCover == nil {
		return
	}
	c.stopCoverOnce.Do(func() { close(c.stopCover) })
	<-c.coverDone
}
