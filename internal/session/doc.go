// Package session is the obfuscated session transport of the framework:
// it carries obfuscated messages over a live byte stream and rotates the
// protocol dialect mid-connection, realizing the paper's deployment model
// (§VIII — "deployment of new versions, at regular intervals") on an
// actual connection rather than in memory.
//
// The package is split in two layers, mirroring the transport/format
// split of internal/frame:
//
//   - Transport frames raw payloads over any io.ReadWriter, tagging every
//     frame with a dialect epoch (outside the obfuscated bytes, next to
//     the length prefix). It knows nothing about protocol graphs and is
//     what the protocol core applications (internal/protocols/httpmsg,
//     internal/protocols/modbus) build their request/response loops on.
//
//   - Conn adds the dialect logic on top of a core.Rotation (or any
//     Versioner): Send serializes a message with the dialect its graph
//     belongs to, Recv decodes each incoming frame with the cached
//     protocol version of the frame's epoch, and the epoch advances
//     mid-session — the peer follows automatically because receiving a
//     higher epoch raises the local send epoch.
//
// Epochs advance three ways, composable per connection (Options):
//
//   - Wall-clock scheduling (Options.Schedule, internal/session/sched):
//     the session adopts the schedule's epoch on every NewMessage/Recv,
//     so peers sharing (genesis, interval) converge on the same dialect
//     from their own clocks — including across partitions, where the
//     forged-epoch bound is measured after adopting the local schedule
//     epoch and therefore never trips on an honest reconnect.
//
//   - Explicit Advance/Rotate calls, the manual control used by the
//     differential tests and the live-rotation example.
//
//   - The follow rule: a received data frame whose epoch exceeds the
//     current one (within MaxEpochLead, and only after its payload
//     decodes) pulls the session forward.
//
// Independent of how epochs move, the dialect family itself can be
// reseeded in flight: Rekey (or Options.RekeyEvery) runs an in-band
// handshake over reserved control frames — a masked (epoch, seed)
// proposal acknowledged before either side sends under the new family,
// with a deterministic tie-break when both peers propose at once. The
// handshake progresses on the Recv path of both peers, so it completes
// as a side effect of normal traffic.
//
// Orthogonal to all of the above, Options.Shape enables traffic
// shaping (internal/session/shape): outgoing data-frame payloads are
// padded to lengths sampled from the profile's bins and split at its
// MTU, departures are paced by a sampled inter-frame gap, and an idle
// session emits KindCover decoy frames — which every receiver, shaped
// or not, silently discards. The shape is derived per epoch from the
// Versioner's family seed (the ShapeSeeder interface), so it rotates
// with the dialect and survives resumption. Shaping is symmetric:
// both peers must run the same profile, because the shaped payload
// carries an in-band trailer (see shaping.go).
//
// Sessions also survive the byte stream they run on: Export seals the
// resumable control-plane state (epoch, rekey lineage, traffic
// odometer) into an opaque ticket keyed on the dialect family's base
// secret, and ResumeConn replays a ticket onto a brand-new
// io.ReadWriter — including sessions that have rekeyed, which a fresh
// connection could never rejoin. The acceptor side is any ordinary
// Conn: the KindResume control frame announces a resuming peer in-band
// on the Recv path, bound-checked and tag-verified like the rekey
// handshake (see resume.go).
//
// Compiled dialects are cached per connection in an LRU bounded by
// Options.CacheWindow (internal/lru), and core.Rotation bounds its
// shared compiled-version cache the same way (sharded, strict total
// bound), keeping long-lived sessions at O(window) memory across
// unbounded epochs; evicted epochs recompile deterministically on
// demand. Many concurrent Conns of one dialect family each take a
// core.View of the same Rotation as their Versioner — the public
// Endpoint does exactly this — sharing compiled versions while keeping
// rekey state private per connection; a Conn handed the Rotation itself
// uses the Rotation's built-in default view and must then own it
// exclusively as soon as rekeying is enabled.
//
// Concurrency: a single writer mutex serializes frame writes, a single
// reader mutex serializes frame reads, and the current epoch is read
// lock-free through an atomic, so Epoch() on the hot path never contends
// with senders. Steady-state Send/Recv reuses pooled buffers shared with
// internal/frame and does not allocate per message on the payload path.
//
// See docs/ARCHITECTURE.md for the frame format (kind|length word, epoch
// header) and the control-plane design as a whole.
package session
