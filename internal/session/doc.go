// Package session is the obfuscated session transport of the framework:
// it carries obfuscated messages over a live byte stream and rotates the
// protocol dialect mid-connection, realizing the paper's deployment model
// (§VIII — "deployment of new versions, at regular intervals") on an
// actual connection rather than in memory.
//
// The package is split in two layers, mirroring the transport/format
// split of internal/frame:
//
//   - Transport frames raw payloads over any io.ReadWriter, tagging every
//     frame with a dialect epoch (outside the obfuscated bytes, next to
//     the length prefix). It knows nothing about protocol graphs and is
//     what the protocol core applications (internal/protocols/httpmsg,
//     internal/protocols/modbus) build their request/response loops on.
//
//   - Conn adds the dialect logic on top of a core.Rotation (or any
//     Versioner): Send serializes a message with the dialect its graph
//     belongs to, Recv decodes each incoming frame with the cached
//     protocol version of the frame's epoch, and either peer may advance
//     the epoch mid-session — the other follows automatically because
//     receiving a higher epoch raises the local send epoch.
//
// Concurrency: a single writer mutex serializes frame writes, a single
// reader mutex serializes frame reads, and the current epoch is read
// lock-free through an atomic, so Epoch() on the hot path never contends
// with senders. Steady-state Send/Recv reuses pooled buffers shared with
// internal/frame and does not allocate per message on the payload path.
package session
