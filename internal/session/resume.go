package session

import (
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"time"

	"protoobf/internal/frame"
	"protoobf/internal/trace"
)

// Session migration: a live session's control-plane state — current
// epoch, rekey lineage, traffic odometer, cache-window hint — can be
// exported as a compact sealed ticket (Conn.Export) and replayed onto a
// brand-new byte stream (ResumeConn), so a dropped TCP connection no
// longer loses the session. The obfuscation is stateful — the dialect of
// an epoch depends on (seed family, epoch) — so without the ticket a
// reconnecting peer that has rekeyed cannot rejoin at all: the fresh
// acceptor speaks the base family and the returning peer a rekeyed one.
//
// The wire handshake is one round trip, mirroring the rekey handshake's
// forgery defenses:
//
//	resuming side                       acceptor side
//	-------------                       -------------
//	KindResume(ticket) at ticket epoch →
//	                                    bound-check header epoch
//	                                    open ticket (seal tag check)
//	                                    adopt lineage + odometer
//	                                    ← KindResumeAck (masked digest)
//	data flows immediately (the resuming side need not wait for the ack)
//
// The acceptor side is any ordinary session: a listener's accept loop
// does not need to know in advance whether a peer is fresh or resuming —
// a fresh peer's first frame is data, a resuming peer's is KindResume,
// and the Recv path dispatches both.
const (
	// DefaultResumeWindow is how many epochs behind the acceptor's
	// current horizon a resumption ticket's epoch may lie before it is
	// rejected as expired. Without a replay cache it doubles as the
	// replay lifetime of a ticket: within the window a captured ticket
	// could re-attach (and learn nothing beyond what its thief already
	// had — the ticket is sealed), after it the ticket is dead. With
	// Options.Replay set, tickets are single-use and the window only
	// bounds how stale a first presentation may be.
	// Options.ResumeWindow overrides it.
	DefaultResumeWindow = 64

	// resumeStateMagic guards the sealed state encoding ("res1"); it is
	// checked after the seal tag, so a mismatch means a version skew, not
	// a forgery that survived the tag.
	resumeStateMagic = 0x72657331

	// resumeAckMagic marks a resume acknowledgement after unmasking.
	resumeAckMagic = 0x72736d41 // "rsmA"

	// resumeAckLen is the ack payload: magic(4) + epoch(8) + ticket
	// digest(8). The digest binds the ack to the exact ticket resumed.
	resumeAckLen = 20

	// maxResumeRekeys bounds the lineage length a ticket may carry, so a
	// parsed state cannot demand unbounded memory.
	maxResumeRekeys = 256

	// resumeDropLimit bounds how many peer control frames the resuming
	// side discards while its resume ack is outstanding. The acceptor
	// writes at most a construction-time rekey proposal before it
	// processes the resume frame, so any small bound is generous; past
	// it, frames are processed normally (and fail loudly if unreadable).
	resumeDropLimit = 8

	resumeStateFixedLen = 4 + 8 + 8 + 8 + 8 + 4 + 2 // through nRekeys
	resumeRekeyLen      = 8 + 8
)

// TicketSealer is the optional Versioner extension behind session
// migration: sealing resumption state into opaque tickets under a key
// derived from the dialect family's base secret, and verifying/opening
// them again. core.View implements it; Fixed does not, so static
// sessions neither export nor accept tickets.
type TicketSealer interface {
	SealResume(plain []byte) ([]byte, error)
	OpenResume(ticket []byte) ([]byte, error)
}

// Lineage is the optional Versioner extension that exports and replays
// the rekey history a resumption ticket must carry: which master seed
// the family switched to from which epoch onward. core.View implements
// it.
type Lineage interface {
	RekeyLineage() (froms []uint64, seeds []int64)
	ImportRekeys(froms []uint64, seeds []int64) error
}

// resumeState is the plaintext of a resumption ticket: everything a
// fresh Conn needs to continue the session on a new byte stream.
type resumeState struct {
	epoch         uint64   // send epoch at export
	bytesMoved    uint64   // traffic odometer at export
	sinceRekey    uint64   // odometer distance past the last rekey boundary
	lastRekeyFrom uint64   // epoch-clock rekey trigger datum
	cacheWindow   int32    // exporter's resolved dialect window (0 = unbounded), a hint
	froms         []uint64 // rekey lineage boundaries, ascending
	seeds         []int64  // rekey lineage seeds, parallel to froms
}

// encode serializes the state into the fixed big-endian layout the
// ticket seals.
func (st *resumeState) encode() []byte {
	out := make([]byte, resumeStateFixedLen+resumeRekeyLen*len(st.froms))
	binary.BigEndian.PutUint32(out[0:4], resumeStateMagic)
	binary.BigEndian.PutUint64(out[4:12], st.epoch)
	binary.BigEndian.PutUint64(out[12:20], st.bytesMoved)
	binary.BigEndian.PutUint64(out[20:28], st.sinceRekey)
	binary.BigEndian.PutUint64(out[28:36], st.lastRekeyFrom)
	binary.BigEndian.PutUint32(out[36:40], uint32(st.cacheWindow))
	binary.BigEndian.PutUint16(out[40:42], uint16(len(st.froms)))
	for i := range st.froms {
		off := resumeStateFixedLen + resumeRekeyLen*i
		binary.BigEndian.PutUint64(out[off:off+8], st.froms[i])
		binary.BigEndian.PutUint64(out[off+8:off+16], uint64(st.seeds[i]))
	}
	return out
}

// decodeState parses and validates a ticket's state plaintext. Every
// structural invariant is enforced here — exact length, magic, bounded
// and strictly ascending lineage, odometer consistency — so downstream
// code can trust a decoded state.
func decodeState(p []byte) (*resumeState, error) {
	if len(p) < resumeStateFixedLen {
		return nil, fmt.Errorf("session: resumption state of %d bytes, want >= %d", len(p), resumeStateFixedLen)
	}
	if binary.BigEndian.Uint32(p[0:4]) != resumeStateMagic {
		return nil, errors.New("session: resumption state magic mismatch (ticket version skew)")
	}
	st := &resumeState{
		epoch:         binary.BigEndian.Uint64(p[4:12]),
		bytesMoved:    binary.BigEndian.Uint64(p[12:20]),
		sinceRekey:    binary.BigEndian.Uint64(p[20:28]),
		lastRekeyFrom: binary.BigEndian.Uint64(p[28:36]),
		cacheWindow:   int32(binary.BigEndian.Uint32(p[36:40])),
	}
	n := int(binary.BigEndian.Uint16(p[40:42]))
	if n > maxResumeRekeys {
		return nil, fmt.Errorf("session: resumption lineage of %d rekeys exceeds limit %d", n, maxResumeRekeys)
	}
	if len(p) != resumeStateFixedLen+resumeRekeyLen*n {
		return nil, fmt.Errorf("session: resumption state of %d bytes, want %d for %d rekeys",
			len(p), resumeStateFixedLen+resumeRekeyLen*n, n)
	}
	if st.sinceRekey > st.bytesMoved {
		return nil, errors.New("session: resumption odometer inconsistent")
	}
	if st.cacheWindow < 0 {
		return nil, errors.New("session: resumption cache window negative")
	}
	if n > 0 {
		st.froms = make([]uint64, n)
		st.seeds = make([]int64, n)
		last := uint64(0)
		for i := 0; i < n; i++ {
			off := resumeStateFixedLen + resumeRekeyLen*i
			from := binary.BigEndian.Uint64(p[off : off+8])
			if from <= last {
				return nil, fmt.Errorf("session: resumption lineage boundary %d not ascending", from)
			}
			last = from
			st.froms[i] = from
			st.seeds[i] = int64(binary.BigEndian.Uint64(p[off+8 : off+16]))
		}
	}
	return st, nil
}

// compactLineage drops rekey points that cannot matter on a fresh byte
// stream: a resumed session exchanges no frame older than its resume
// epoch, so only the point defining the family at the export epoch
// (the last one at or before it) and any future boundaries (an acked
// rekey the epoch has not reached yet) need to travel. Tickets
// therefore stay O(1) over a session's lifetime however often it
// rekeys, and legitimate exports never approach the parser's
// maxResumeRekeys bound.
func compactLineage(froms []uint64, seeds []int64, epoch uint64) ([]uint64, []int64) {
	active := -1
	for i, f := range froms {
		if f > epoch {
			break
		}
		active = i
	}
	if active <= 0 {
		return froms, seeds // nothing before the active point to drop
	}
	return froms[active:], seeds[active:]
}

// resumeAwait is the resuming side's outstanding handshake: the epoch
// the ticket re-attached at, the digest the acceptor's ack must echo,
// and when the resume frame went out (the datum the handshake latency
// histogram measures from).
type resumeAwait struct {
	epoch uint64
	check [8]byte
	at    time.Time
}

// ticketDigest derives the 8-byte digest a resume ack echoes, binding
// the ack to one exact ticket without the session layer knowing the
// ticket's sealed layout.
func ticketDigest(ticket []byte) (d [8]byte) {
	sum := sha256.Sum256(ticket)
	copy(d[:], sum[:8])
	return d
}

// Export captures the session's resumable state as an opaque ticket
// sealed under the dialect family's base secret. The ticket re-attaches
// the session — including its full rekey lineage and traffic odometer —
// to any peer endpoint built from the same (spec, seed), via ResumeConn
// on a fresh byte stream. Export may be called at any time and as often
// as wanted; later tickets supersede earlier ones, and a ticket expires
// once the fleet's epoch moves more than the acceptor's resume window
// past it.
//
// Exporting requires a Versioner that can seal tickets and report its
// rekey lineage (core's rotation views can; static Fixed versioners
// cannot).
func (c *Conn) Export() ([]byte, error) {
	sealer, okSeal := c.versions.(TicketSealer)
	lin, okLin := c.versions.(Lineage)
	if !okSeal || !okLin {
		return nil, errors.New("session: versioner does not support resumption tickets")
	}
	var st resumeState
	c.mu.Lock()
	st.epoch = c.t.Epoch()
	st.bytesMoved = c.bytesMoved.Load()
	st.sinceRekey = st.bytesMoved - c.rekeyBase
	st.lastRekeyFrom = c.lastRekeyFrom
	st.cacheWindow = int32(c.cacheWindow)
	c.mu.Unlock()
	// Lineage is read after the epoch: a rekey completing concurrently
	// may then appear as a boundary past the captured epoch, which
	// resumes correctly (the boundary applies when the epoch reaches it),
	// whereas the reverse order could capture a post-boundary epoch
	// without the family switch that defines it.
	st.froms, st.seeds = lin.RekeyLineage()
	st.froms, st.seeds = compactLineage(st.froms, st.seeds, st.epoch)
	if len(st.froms) > maxResumeRekeys {
		// Unreachable for lineages Rekey can build (compaction keeps the
		// active point plus in-flight future boundaries), kept as the
		// export-side mirror of the parser's bound.
		return nil, fmt.Errorf("session: rekey lineage of %d points exceeds the resumable limit %d",
			len(st.froms), maxResumeRekeys)
	}
	ticket, err := sealer.SealResume(st.encode())
	if err != nil {
		return nil, err
	}
	if c.resumeStats != nil {
		c.resumeStats.TicketsIssued.Add(1)
	}
	return ticket, nil
}

// ResumeConn reconstructs an exported session on a fresh byte stream:
// it opens the ticket locally, replays the rekey lineage into the
// (pristine) Versioner, restores the epoch and rekey-trigger odometers,
// and sends the in-band KindResume frame that tells the acceptor to do
// the same. The session is usable immediately — messages may be sent
// without waiting for the acceptor's ack, because the stream is ordered:
// the acceptor adopts the ticket before it reads anything sent after it.
//
// With a Schedule, the session then advances from the ticket's epoch to
// the current scheduled epoch, exactly as a session that had stayed
// connected would have. The exporter's cache-window hint applies when
// opts.CacheWindow is unset.
func ResumeConn(rw io.ReadWriter, versions Versioner, opts Options, ticket []byte) (*Conn, error) {
	if err := validateShape(opts); err != nil {
		return nil, err
	}
	sealer, okSeal := versions.(TicketSealer)
	lin, okLin := versions.(Lineage)
	if !okSeal || !okLin {
		return nil, errors.New("session: versioner does not support resumption tickets")
	}
	plain, err := sealer.OpenResume(ticket)
	if err != nil {
		if s := opts.ResumeStats; s != nil {
			s.RejectedForged.Add(1)
		}
		return nil, fmt.Errorf("session: resume: %w", err)
	}
	st, err := decodeState(plain)
	if err != nil {
		if s := opts.ResumeStats; s != nil {
			s.RejectedForged.Add(1)
		}
		return nil, err
	}
	window := opts.ResumeWindow
	if window == 0 {
		window = DefaultResumeWindow
	}
	if opts.Schedule != nil {
		// Fail fast on a ticket the acceptor is going to reject anyway.
		if cur := opts.Schedule.Epoch(); st.epoch+window < cur {
			if s := opts.ResumeStats; s != nil {
				s.RejectedExpired.Add(1)
			}
			return nil, fmt.Errorf("session: resumption ticket expired: epoch %d is %d behind current %d (window %d)",
				st.epoch, cur-st.epoch, cur, window)
		}
	}
	if opts.CacheWindow == 0 && st.cacheWindow != int32(DefaultCacheWindow) {
		// Adopt the exporter's window when the resumer did not pick one.
		if st.cacheWindow == 0 {
			opts.CacheWindow = -1 // exporter ran unbounded
		} else {
			opts.CacheWindow = int(st.cacheWindow)
		}
	}
	c := newConn(rw, versions, opts)
	if err := lin.ImportRekeys(st.froms, st.seeds); err != nil {
		c.Release()
		return nil, fmt.Errorf("session: resume: %w", err)
	}
	if _, err := c.dialect(st.epoch); err != nil {
		c.Release()
		return nil, err
	}
	c.t.Advance(st.epoch)
	c.bytesMoved.Store(st.bytesMoved)
	c.mu.Lock()
	c.lastRekeyFrom = st.lastRekeyFrom
	c.rekeyBase = st.bytesMoved - st.sinceRekey
	c.resumed = true
	c.await = &resumeAwait{epoch: st.epoch, check: ticketDigest(ticket), at: time.Now()}
	c.mu.Unlock()
	// The resume frame must be the first thing on the wire: everything
	// sent after it — data, automatic rekey proposals from the schedule
	// sync below — is read by an acceptor that has already adopted the
	// ticket.
	if err := c.t.sendFrameAt(frame.KindResume, st.epoch, ticket); err != nil {
		c.Release()
		return nil, err
	}
	if err := c.syncSchedule(); err != nil {
		c.Release()
		return nil, err
	}
	// Shaping survives migration: the profile is Options-carried
	// configuration, and the per-epoch shape re-derives from the lineage
	// just imported, so a resumed session keeps the shape the exported
	// one had. The cover scheduler starts only now that the session is
	// viable.
	c.startCover(opts)
	c.tr.Emit(c.traceID, trace.KindSessionOpen, st.epoch, "resume")
	return c, nil
}

// handleResume is the acceptor side of the migration handshake,
// dispatched from the Recv control path: verify the ticket, adopt its
// lineage and odometers, and ack. Rejections mirror the rekey
// handshake's defenses — the header epoch is bound-checked before the
// ticket is even opened, the seal tag rejects forgery, and the sealed
// epoch must match the header (the header is outside the seal). All
// outcomes are counted in the session's ResumeStats.
func (c *Conn) handleResume(hdrEpoch uint64, ticket []byte) error {
	sealer, okSeal := c.versions.(TicketSealer)
	lin, okLin := c.versions.(Lineage)
	if !okSeal || !okLin {
		if s := c.resumeStats; s != nil {
			s.RejectedState.Add(1)
		}
		c.tr.Emit(c.traceID, trace.KindResumeReject, hdrEpoch, "state")
		return errors.New("session: peer requested resume but versioner cannot open tickets")
	}
	cur := c.horizon()
	if hdrEpoch > cur+c.MaxEpochLead {
		if s := c.resumeStats; s != nil {
			s.RejectedExpired.Add(1)
		}
		c.tr.Emit(c.traceID, trace.KindResumeReject, hdrEpoch, "expired")
		return fmt.Errorf("session: resume at epoch %d implausibly far ahead of current %d (max lead %d)",
			hdrEpoch, cur, c.MaxEpochLead)
	}
	if hdrEpoch+c.resumeWindow < cur {
		if s := c.resumeStats; s != nil {
			s.RejectedExpired.Add(1)
		}
		c.tr.Emit(c.traceID, trace.KindResumeReject, hdrEpoch, "expired")
		return fmt.Errorf("session: resumption ticket expired: epoch %d is %d behind current %d (window %d)",
			hdrEpoch, cur-hdrEpoch, cur, c.resumeWindow)
	}
	// A session resumes at most once, and only before it has carried
	// traffic or rekeyed: resumption replaces a fresh session's state, it
	// does not merge into an established one.
	c.mu.Lock()
	established := c.resumed
	c.mu.Unlock()
	if froms, _ := lin.RekeyLineage(); len(froms) > 0 || c.bytesMoved.Load() > 0 {
		established = true
	}
	if established {
		if s := c.resumeStats; s != nil {
			s.RejectedState.Add(1)
		}
		c.tr.Emit(c.traceID, trace.KindResumeReject, hdrEpoch, "state")
		return errors.New("session: resume on an established session")
	}
	plain, err := sealer.OpenResume(ticket)
	if err != nil {
		if s := c.resumeStats; s != nil {
			s.RejectedForged.Add(1)
		}
		c.tr.Emit(c.traceID, trace.KindResumeReject, hdrEpoch, "forged")
		return fmt.Errorf("session: resume: %w", err)
	}
	st, err := decodeState(plain)
	if err != nil {
		if s := c.resumeStats; s != nil {
			s.RejectedForged.Add(1)
		}
		c.tr.Emit(c.traceID, trace.KindResumeReject, hdrEpoch, "forged")
		return err
	}
	if st.epoch != hdrEpoch {
		// The header epoch is outside the seal; a mismatch means someone
		// re-framed a ticket to dodge the expiry bounds.
		if s := c.resumeStats; s != nil {
			s.RejectedForged.Add(1)
		}
		c.tr.Emit(c.traceID, trace.KindResumeReject, hdrEpoch, "forged")
		return fmt.Errorf("session: resume header epoch %d contradicts sealed epoch %d", hdrEpoch, st.epoch)
	}
	// Replay gate, after authenticity (so garbage cannot pollute the
	// cache) and before any state is adopted. Witness marks the ticket
	// seen even though nothing was admitted yet: a presentation IS the
	// single use, whether or not the rest of the handshake succeeds.
	if c.replay != nil && c.replay.Witness(ticket) {
		if s := c.resumeStats; s != nil {
			s.RejectedReplayed.Add(1)
		}
		c.tr.Emit(c.traceID, trace.KindResumeReject, hdrEpoch, "replayed")
		return errors.New("session: resumption ticket already presented (tickets are single-use)")
	}
	if err := lin.ImportRekeys(st.froms, st.seeds); err != nil {
		if s := c.resumeStats; s != nil {
			s.RejectedState.Add(1)
		}
		c.tr.Emit(c.traceID, trace.KindResumeReject, hdrEpoch, "state")
		return fmt.Errorf("session: resume: %w", err)
	}
	if len(st.froms) > 0 {
		// Dialects cached before adoption at post-boundary epochs were
		// compiled under the base family; drop them before the fresh
		// compile below caches the lineage's view of the same epochs.
		c.dropDialectsFrom(st.froms[0])
	}
	// Compile the resumed epoch's dialect before acking, so the ack
	// guarantees readiness — the same contract as the rekey handshake.
	if _, err := c.dialect(st.epoch); err != nil {
		return err
	}
	// The odometer is stored before the rekey base derived from it:
	// maybeVolumeRekey relies on the base never exceeding a bytesMoved
	// load taken under c.mu, so a concurrent sender must not observe the
	// adopted base against the pre-adoption (smaller) odometer.
	c.bytesMoved.Store(st.bytesMoved)
	c.mu.Lock()
	// A rekey proposal minted before the resume arrived (typically the
	// automatic one at construction) is dead: it is masked under the
	// pre-resume family and the resuming peer discards it unread.
	c.pending, c.abandoned = nil, nil
	c.lastRekeyFrom = st.lastRekeyFrom
	c.rekeyBase = st.bytesMoved - st.sinceRekey
	c.resumed = true
	c.mu.Unlock()
	c.t.Advance(st.epoch)
	if err := c.sendResumeAck(st.epoch, ticket); err != nil {
		return err
	}
	if s := c.resumeStats; s != nil {
		s.Accepts.Add(1)
	}
	c.tr.Emit(c.traceID, trace.KindResumeAccept, st.epoch, "")
	// The ticket just presented is spent (single-use under a replay
	// cache): if re-issue is on, immediately re-arm the peer with a
	// fresh ticket for its next migration. Stream ordering puts this
	// after the ack.
	return c.maybeReissue()
}

// sendResumeAck writes the acceptance frame: a masked (magic, epoch,
// ticket digest) triple under the resumed family's control pad — so
// receiving a readable ack proves the acceptor adopted the lineage.
func (c *Conn) sendResumeAck(epoch uint64, ticket []byte) error {
	var p [resumeAckLen]byte
	binary.BigEndian.PutUint32(p[:4], resumeAckMagic)
	binary.BigEndian.PutUint64(p[4:12], epoch)
	d := ticketDigest(ticket)
	copy(p[12:20], d[:])
	c.maskControl(epoch, p[:])
	return c.t.sendFrameAt(frame.KindResumeAck, epoch, p[:])
}

// handleResumeAck completes the resuming side's handshake. Acks that
// match no outstanding resume (duplicates, stale deliveries) are
// ignored; an unreadable ack is an error — by the time an ack can
// arrive, both sides share the lineage that masks it.
func (c *Conn) handleResumeAck(hdrEpoch uint64, payload []byte) error {
	if len(payload) != resumeAckLen {
		return fmt.Errorf("session: resume ack of %d bytes, want %d", len(payload), resumeAckLen)
	}
	c.maskControl(hdrEpoch, payload)
	if binary.BigEndian.Uint32(payload[:4]) != resumeAckMagic {
		return errors.New("session: resume ack failed unmasking (forged or wrong dialect family)")
	}
	epoch := binary.BigEndian.Uint64(payload[4:12])
	var check [8]byte
	copy(check[:], payload[12:20])
	var sentAt time.Time
	c.mu.Lock()
	if a := c.await; a != nil && a.epoch == epoch && a.check == check {
		sentAt = a.at
		c.await = nil
		c.resumeDrops = 0
	}
	c.mu.Unlock()
	if c.lat != nil && !sentAt.IsZero() {
		c.lat.ResumeRTT.ObserveDuration(time.Since(sentAt))
	}
	return nil
}

// dropPreResumeControl reports whether an incoming rekey control frame
// should be silently discarded because this side's resume ack is still
// outstanding (see handleControl). Past resumeDropLimit the frame flows
// to normal processing, which surfaces a loud error if it is genuinely
// unreadable.
func (c *Conn) dropPreResumeControl() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.await == nil || c.resumeDrops >= resumeDropLimit {
		return false
	}
	c.resumeDrops++
	return true
}

// maybeReissue pushes a freshly exported resumption ticket to the peer
// when Options.ReissueTickets is on — called after a committed rekey
// (either role) and after accepting a resume, the two events that spend
// or invalidate whatever ticket the peer held. No-op when re-issue is
// off; a configuration that enables re-issue on a Versioner that cannot
// export tickets fails loudly here.
func (c *Conn) maybeReissue() error {
	if !c.reissue {
		return nil
	}
	t, err := c.Export()
	if err != nil {
		return fmt.Errorf("session: ticket re-issue: %w", err)
	}
	return c.t.sendFrameAt(frame.KindTicket, c.t.Epoch(), t)
}

// handleTicket stores a re-issued resumption ticket the peer pushed
// in-band. The payload is verified before it is kept — opened under
// this side's own dialect family and structurally decoded — so a
// tampered or misdirected frame is a loud error (assigned control kinds
// reject garbage, they never silently eat it), and StoredTicket only
// ever returns tickets that would verify on presentation.
func (c *Conn) handleTicket(payload []byte) error {
	sealer, ok := c.versions.(TicketSealer)
	if !ok {
		return errors.New("session: peer pushed a ticket but versioner cannot open tickets")
	}
	plain, err := sealer.OpenResume(payload)
	if err != nil {
		return fmt.Errorf("session: re-issued ticket: %w", err)
	}
	if _, err := decodeState(plain); err != nil {
		return fmt.Errorf("session: re-issued ticket: %w", err)
	}
	c.mu.Lock()
	c.peerTicket = append(c.peerTicket[:0], payload...)
	c.mu.Unlock()
	return nil
}

// StoredTicket returns a copy of the most recent verified ticket the
// peer re-issued in-band (see Options.ReissueTickets), or nil if none
// arrived yet. After a rekey, this — not the ticket exported before the
// rekey — is what re-attaches the session on its next migration.
func (c *Conn) StoredTicket() []byte {
	c.mu.Lock()
	defer c.mu.Unlock()
	if len(c.peerTicket) == 0 {
		return nil
	}
	return append([]byte(nil), c.peerTicket...)
}

// TicketOpener is the narrow slice of TicketSealer a routing frontend
// needs: verify and open a sealed ticket without minting a session.
// core.View implements it.
type TicketOpener interface {
	OpenResume(ticket []byte) ([]byte, error)
}

// TicketInfo is the routing-relevant summary of a verified resumption
// ticket.
type TicketInfo struct {
	// Epoch is the epoch the session exported the ticket at.
	Epoch uint64
	// Rekeyed reports whether the ticket carries a rekey lineage.
	Rekeyed bool
	// Family is the master seed of the dialect family the session
	// speaks from its last rekey boundary onward — the unit of routing
	// affinity. Zero (and meaningless) when Rekeyed is false: an
	// un-rekeyed session speaks the base family the opener itself was
	// built from.
	Family int64
}

// InspectTicket verifies a ticket with o and returns its routing
// summary without adopting any of its state — how a gateway decides
// which backend owns the session a KindResume frame re-attaches.
func InspectTicket(o TicketOpener, ticket []byte) (TicketInfo, error) {
	plain, err := o.OpenResume(ticket)
	if err != nil {
		return TicketInfo{}, err
	}
	st, err := decodeState(plain)
	if err != nil {
		return TicketInfo{}, err
	}
	info := TicketInfo{Epoch: st.epoch}
	if n := len(st.seeds); n > 0 {
		info.Rekeyed = true
		info.Family = st.seeds[n-1]
	}
	return info, nil
}
