package adversary

import (
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"testing"

	"protoobf/internal/core"
	"protoobf/internal/rng"
	"protoobf/internal/session/dgram"
)

// TestDatagramCapture: packet captures produce one frame per message
// in both modes, and zero-overhead frames really have no readable
// header.
func TestDatagramCapture(t *testing.T) {
	for _, zo := range []bool{false, true} {
		t.Run(fmt.Sprintf("zeroOverhead=%v", zo), func(t *testing.T) {
			tr, err := Capture(CaptureConfig{
				PerNode: 2, Seed: 11, TrafficSeed: 7,
				Msgs: 32, Epochs: 2,
				Datagram: true, ZeroOverhead: zo,
			})
			if err != nil {
				t.Fatal(err)
			}
			if len(tr.Frames) != 32 {
				t.Fatalf("captured %d frames, want 32", len(tr.Frames))
			}
			for i, f := range tr.Frames {
				if zo && f.Kind != 0xFF {
					t.Fatalf("frame %d: zero-overhead capture parsed a header (kind %#02x)", i, f.Kind)
				}
				if !zo && f.Kind != 0 {
					t.Fatalf("frame %d: kind %#02x, want data", i, f.Kind)
				}
			}
		})
	}
}

// TestDatagramMutationCampaign is the packet analogue of the stream
// campaign: every mutated packet either decodes, is handled as
// control, or is rejected and counted — and nothing ever crashes.
func TestDatagramMutationCampaign(t *testing.T) {
	for _, zo := range []bool{false, true} {
		t.Run(fmt.Sprintf("zeroOverhead=%v", zo), func(t *testing.T) {
			res, err := RunDatagramMutations(MutationConfig{Seed: 11, Cases: 24}, zo)
			if err != nil {
				t.Fatal(err)
			}
			if res.Crashes != 0 {
				t.Fatalf("campaign crashed %d times: %+v", res.Crashes, res)
			}
			if res.Decoded == 0 {
				t.Fatalf("campaign decoded nothing — the baseline itself is broken: %+v", res)
			}
			if res.Rejected() == 0 {
				t.Fatalf("campaign rejected nothing — the mutations are not biting: %+v", res)
			}
			t.Logf("zo=%v: %+v", zo, res)
		})
	}
}

// FuzzDatagramDecode feeds arbitrary bytes — seeded with pristine and
// strategy-mutated packets from both wire formats — through the packet
// session's Decode in both modes. Every input must decode, be handled
// as control, or error cleanly; a panic or hang is the failure. This
// is the per-packet robustness the datagram layer stakes its
// loss-tolerance claim on: any packet, however mangled, costs at most
// itself.
func FuzzDatagramDecode(f *testing.F) {
	opts := core.ObfuscationOptions{PerNode: 2, Seed: 11}
	seedConns := func(zo bool) [][]byte {
		rot, err := core.NewRotation(Spec, opts)
		if err != nil {
			f.Fatal(err)
		}
		pkts, err := baselinePackets(rot, 4, 11, zo)
		if err != nil {
			f.Fatal(err)
		}
		return pkts
	}
	r := rng.New(3)
	for _, zo := range []bool{false, true} {
		pkts := seedConns(zo)
		for _, p := range pkts {
			f.Add(p)
		}
		for _, strategy := range DatagramStrategies {
			for _, p := range MutateDatagram(pkts, strategy, r) {
				f.Add(p)
			}
		}
	}

	mkConn := func(zo bool) *dgram.Conn {
		rot, err := core.NewRotation(Spec, opts)
		if err != nil {
			f.Fatal(err)
		}
		c, err := dgram.NewConn(nullTransport{}, rot.View(), dgram.Options{ZeroOverhead: zo})
		if err != nil {
			f.Fatal(err)
		}
		return c
	}
	normal, zero := mkConn(false), mkConn(true)

	f.Fuzz(func(t *testing.T, data []byte) {
		// Decode may modify its input; each receiver gets its own copy.
		normal.Decode(append([]byte(nil), data...))
		zero.Decode(append([]byte(nil), data...))
	})
}

// TestRegenDatagramFuzzCorpus rewrites the checked-in seed corpus of
// FuzzDatagramDecode when PROTOOBF_REGEN_CORPUS=1: pristine packets of
// both wire formats plus one mutant per strategy, in the Go fuzzing
// corpus-file encoding. Deterministic, so regeneration is a no-op diff
// unless the wire format changed.
func TestRegenDatagramFuzzCorpus(t *testing.T) {
	if os.Getenv("PROTOOBF_REGEN_CORPUS") != "1" {
		t.Skip("set PROTOOBF_REGEN_CORPUS=1 to rewrite testdata/fuzz/FuzzDatagramDecode")
	}
	dir := filepath.Join("testdata", "fuzz", "FuzzDatagramDecode")
	if err := os.RemoveAll(dir); err != nil {
		t.Fatal(err)
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	opts := core.ObfuscationOptions{PerNode: 2, Seed: 11}
	r := rng.New(3)
	for _, zo := range []bool{false, true} {
		rot, err := core.NewRotation(Spec, opts)
		if err != nil {
			t.Fatal(err)
		}
		pkts, err := baselinePackets(rot, 2, 11, zo)
		if err != nil {
			t.Fatal(err)
		}
		mode := "normal"
		if zo {
			mode = "zo"
		}
		for i, p := range pkts {
			writeCorpusFile(t, dir, fmt.Sprintf("seed-%s-pristine-%d", mode, i), p)
		}
		for _, strategy := range DatagramStrategies {
			mutated := MutateDatagram(pkts, strategy, r)
			writeCorpusFile(t, dir, fmt.Sprintf("seed-%s-%s", mode, strategy), mutated[0])
		}
	}
}

func writeCorpusFile(t *testing.T, dir, name string, data []byte) {
	t.Helper()
	body := "go test fuzz v1\n[]byte(" + strconv.Quote(string(data)) + ")\n"
	if err := os.WriteFile(filepath.Join(dir, name), []byte(body), 0o644); err != nil {
		t.Fatal(err)
	}
}
