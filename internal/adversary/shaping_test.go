package adversary

import (
	"testing"
	"time"

	"protoobf"
	"protoobf/internal/core"
	"protoobf/internal/rng"
)

// gateProfile is the shaping profile the distinguisher gate runs under.
// Its length bins sit well above every advprobe payload (so each frame
// length is a pure profile sample, never a clamp) and its gap support
// sits above the application's burstiest send cadence (so each observed
// gap is a pure pacing sample) — the regime where shaped traffic from
// two different dialect levels becomes statistically interchangeable.
func gateProfile() protoobf.ShapeProfile {
	return protoobf.ShapeProfile{
		Name:   "gate",
		Bins:   []protoobf.ShapeBin{{Lo: 300, Hi: 500, Weight: 1}, {Lo: 700, Hi: 900, Weight: 1}},
		MTU:    1000,
		MinGap: 25 * time.Millisecond,
		MaxGap: 35 * time.Millisecond,
	}
}

// burstyGap is the distinct timing profile of the obfuscated workload:
// a 20ms stall every fourth message against the plaintext's steady 1ms.
func burstyGap(i int) time.Duration {
	if i%4 == 0 {
		return 20 * time.Millisecond
	}
	return time.Millisecond
}

// captureShaped is capture with traffic shaping on.
func captureShaped(t *testing.T, perNode int, trafficSeed int64, gap func(int) time.Duration, p protoobf.ShapeProfile) *Trace {
	t.Helper()
	tr, err := Capture(CaptureConfig{PerNode: perNode, Seed: 11, TrafficSeed: trafficSeed, Gap: gap, Shape: &p})
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

// TestShapingDefeatsDistinguishers is the tentpole gate, in both
// directions. Positive control: unshaped, the panel separates plaintext
// from obfuscated traffic with >= 0.9 held-out accuracy on lengths AND
// timing (the workloads carry distinct gap profiles). Countermeasure:
// with the same workloads shaped under one profile, every length and
// timing distinguisher collapses to <= 0.6 — the shaped streams sample
// their lengths and departures from the same seeded distributions, so
// there is nothing left to classify.
func TestShapingDefeatsDistinguishers(t *testing.T) {
	plain := capture(t, 0, 1, nil)
	obf := capture(t, 2, 1, burstyGap)
	unshaped := byName(Evaluate(plain, obf, 16))
	for _, name := range []string{"length-ks", "length-chi2", "timing-ks"} {
		if a := unshaped[name]; a.Accuracy < 0.9 {
			t.Errorf("positive control: unshaped %s accuracy = %.3f, want >= 0.9", name, a.Accuracy)
		}
	}

	shapedPlain := captureShaped(t, 0, 1, nil, gateProfile())
	shapedObf := captureShaped(t, 2, 1, burstyGap, gateProfile())
	shaped := byName(Evaluate(shapedPlain, shapedObf, 16))
	for _, name := range []string{"length-ks", "length-chi2", "timing-ks"} {
		if a := shaped[name]; a.Accuracy > 0.6 {
			t.Errorf("shaped %s accuracy = %.3f, want <= 0.6", name, a.Accuracy)
		}
	}
}

// TestShapedCaptureWellFormed sanity-checks the shaped capture itself:
// every tapped frame is a data frame whose length lies inside the gate
// profile's support, and consecutive departures honor the pacing bounds.
func TestShapedCaptureWellFormed(t *testing.T) {
	p := gateProfile()
	tr := captureShaped(t, 2, 1, nil, p)
	if len(tr.Frames) == 0 {
		t.Fatal("shaped capture saw no frames")
	}
	inBin := func(n int) bool {
		for _, b := range p.Bins {
			if n >= b.Lo && n <= b.Hi {
				return true
			}
		}
		return false
	}
	for i, f := range tr.Frames {
		if f.Kind != 0 {
			t.Fatalf("frame %d: kind %#02x in a cover-free capture", i, f.Kind)
		}
		// Derive may shift bins by up to a quarter span; widen by that
		// much rather than re-deriving per epoch here.
		if n := len(f.Payload); !inBin(n) && !inBin(n+50) && !inBin(n-50) {
			t.Errorf("frame %d: shaped length %d outside the (derived) profile support", i, n)
		}
		if i > 0 {
			gap := f.At.Sub(tr.Frames[i-1].At)
			if gap < p.MinGap {
				t.Errorf("frame %d: departure gap %v below the profile floor %v", i, gap, p.MinGap)
			}
		}
	}
}

// TestCoverfloodInjection: an active adversary splicing bursts of
// well-formed cover frames into a pristine stream changes nothing — the
// receiver discards every cover and decodes the entire real stream.
func TestCoverfloodInjection(t *testing.T) {
	opts := core.ObfuscationOptions{PerNode: 2, Seed: 7}
	rotTx, err := core.NewRotation(Spec, opts)
	if err != nil {
		t.Fatal(err)
	}
	rotRx, err := core.NewRotation(Spec, opts)
	if err != nil {
		t.Fatal(err)
	}
	frames, err := baselineFrames(rotTx, 6, 7)
	if err != nil {
		t.Fatal(err)
	}
	r := rng.New(1)
	for c := 0; c < 32; c++ {
		stream := Mutate(frames, "coverflood", r)
		outcome, reason := feed(rotRx, stream, len(frames))
		if outcome == outcomeCrash {
			t.Fatalf("case %d: cover burst crashed the receiver: %s", c, reason)
		}
		if outcome != outcomeDecoded {
			t.Fatalf("case %d: cover burst broke the real stream (%s) — covers must be discarded, not rejected", c, reason)
		}
	}
}
