package adversary

import (
	"math"
	"sort"

	"protoobf/internal/stats"
)

// Accuracy is the evaluated performance of one distinguisher: the
// held-out balanced accuracy of a threshold classifier trained on the
// distinguisher's window scores, plus the per-class recalls. 0.5 is
// chance; 1.0 separates the classes perfectly.
type Accuracy struct {
	Name        string  `json:"name"`
	Accuracy    float64 `json:"accuracy"`
	PlainRecall float64 `json:"plain_recall"`
	ObfRecall   float64 `json:"obf_recall"`
	Threshold   float64 `json:"threshold"`
	Windows     int     `json:"windows"` // held-out windows scored
}

// window is the feature view of a run of consecutive frames.
type window struct {
	lengths []float64    // payload lengths, one per frame
	gaps    []float64    // inter-frame deltas in seconds
	hist    [256]float64 // pooled byte histogram over all payloads
}

// windows chops a trace into consecutive n-frame windows (the partial
// tail is dropped: every window scores over the same sample size).
func (t *Trace) windows(n int) []window {
	if n <= 0 {
		n = 16
	}
	var out []window
	for start := 0; start+n <= len(t.Frames); start += n {
		var w window
		for i := start; i < start+n; i++ {
			f := t.Frames[i]
			w.lengths = append(w.lengths, float64(len(f.Payload)))
			for _, b := range f.Payload {
				w.hist[b]++
			}
			if i > start {
				w.gaps = append(w.gaps, f.At.Sub(t.Frames[i-1].At).Seconds())
			}
		}
		out = append(out, w)
	}
	return out
}

// distinguisher scores one window; higher-or-lower polarity is left to
// the threshold fit. The reference samples come from the plaintext
// training windows — the adversary's labeled baseline.
type distinguisher struct {
	name  string
	score func(w *window) float64
}

// lengthBins is the histogram resolution of the chi-squared length test.
const lengthBins = 12

// distinguishers builds the panel against a plaintext reference: pooled
// lengths and gaps from the plain training windows.
func distinguishers(refLengths, refGaps []float64) []distinguisher {
	lo, hi := bounds(refLengths)
	refHist := histogram(refLengths, lo, hi, lengthBins)
	return []distinguisher{
		{"length-ks", func(w *window) float64 {
			return stats.KS(w.lengths, refLengths)
		}},
		{"length-chi2", func(w *window) float64 {
			obs := histogram(w.lengths, lo, hi, lengthBins)
			expected := scale(refHist, float64(len(w.lengths)))
			return stats.ChiSquared(obs, expected)
		}},
		{"byte-entropy", func(w *window) float64 {
			return stats.Entropy(w.hist[:])
		}},
		{"timing-ks", func(w *window) float64 {
			return stats.KS(w.gaps, refGaps)
		}},
	}
}

// Evaluate trains and scores the distinguisher panel on two labeled
// traces. Both traces are chopped into windowFrames-sized windows and
// split even/odd into train and test halves; each distinguisher's
// window scores fit a threshold (with polarity) maximizing balanced
// accuracy on the training half, and the reported Accuracy is measured
// on the held-out half only. With identically distributed traces every
// distinguisher should land near 0.5 — the no-bias control.
func Evaluate(plain, obf *Trace, windowFrames int) []Accuracy {
	plainW := plain.windows(windowFrames)
	obfW := obf.windows(windowFrames)
	plainTrain, plainTest := split(plainW)
	obfTrain, obfTest := split(obfW)

	var refLengths, refGaps []float64
	for i := range plainTrain {
		refLengths = append(refLengths, plainTrain[i].lengths...)
		refGaps = append(refGaps, plainTrain[i].gaps...)
	}

	var out []Accuracy
	for _, d := range distinguishers(refLengths, refGaps) {
		thr, obfAbove := fitThreshold(scores(d.score, plainTrain), scores(d.score, obfTrain))
		plainRecall := recall(scores(d.score, plainTest), thr, obfAbove, false)
		obfRecall := recall(scores(d.score, obfTest), thr, obfAbove, true)
		out = append(out, Accuracy{
			Name:        d.name,
			Accuracy:    (plainRecall + obfRecall) / 2,
			PlainRecall: plainRecall,
			ObfRecall:   obfRecall,
			Threshold:   thr,
			Windows:     len(plainTest) + len(obfTest),
		})
	}
	return out
}

// split deals windows alternately into train and test halves. The
// interleave (rather than a prefix split) keeps both halves spanning the
// whole capture, so epoch-position effects cancel instead of leaking
// into the accuracy.
func split(ws []window) (train, test []*window) {
	for i := range ws {
		if i%2 == 0 {
			train = append(train, &ws[i])
		} else {
			test = append(test, &ws[i])
		}
	}
	return train, test
}

func scores(f func(*window) float64, ws []*window) []float64 {
	out := make([]float64, len(ws))
	for i, w := range ws {
		out[i] = f(w)
	}
	return out
}

// fitThreshold picks the cut (and its polarity: does "obfuscated" lie
// above or below?) maximizing balanced accuracy on the training scores.
// Candidate cuts are the midpoints between adjacent distinct scores,
// plus one below and one above everything.
func fitThreshold(plain, obf []float64) (thr float64, obfAbove bool) {
	all := append(append([]float64(nil), plain...), obf...)
	sort.Float64s(all)
	candidates := []float64{all[0] - 1}
	for i := 1; i < len(all); i++ {
		if all[i] != all[i-1] {
			candidates = append(candidates, (all[i]+all[i-1])/2)
		}
	}
	candidates = append(candidates, all[len(all)-1]+1)

	best := math.Inf(-1)
	for _, c := range candidates {
		for _, above := range []bool{true, false} {
			acc := (recall(plain, c, above, false) + recall(obf, c, above, true)) / 2
			if acc > best {
				best, thr, obfAbove = acc, c, above
			}
		}
	}
	return thr, obfAbove
}

// recall is the fraction of scores classified as their true label under
// (thr, obfAbove): a score above thr reads "obfuscated" when obfAbove,
// "plaintext" otherwise.
func recall(scores []float64, thr float64, obfAbove, labelObf bool) float64 {
	if len(scores) == 0 {
		return 0
	}
	hit := 0
	for _, s := range scores {
		predictObf := (s > thr) == obfAbove
		if predictObf == labelObf {
			hit++
		}
	}
	return float64(hit) / float64(len(scores))
}

// bounds returns the min and max of values (0,1 when empty, so
// histogram stays well-defined).
func bounds(values []float64) (lo, hi float64) {
	if len(values) == 0 {
		return 0, 1
	}
	lo, hi = values[0], values[0]
	for _, v := range values[1:] {
		lo = math.Min(lo, v)
		hi = math.Max(hi, v)
	}
	if lo == hi {
		hi = lo + 1
	}
	return lo, hi
}

// histogram bins values over [lo, hi] into n counts; out-of-range
// values clamp to the edge bins (the obfuscated lengths routinely
// exceed the plaintext range, and that mass belongs in the top bin, not
// off the books).
func histogram(values []float64, lo, hi float64, n int) []float64 {
	out := make([]float64, n)
	for _, v := range values {
		i := int((v - lo) / (hi - lo) * float64(n))
		if i < 0 {
			i = 0
		}
		if i >= n {
			i = n - 1
		}
		out[i]++
	}
	return out
}

// scale returns hist normalized to the given total mass.
func scale(hist []float64, total float64) []float64 {
	var sum float64
	for _, v := range hist {
		sum += v
	}
	out := make([]float64, len(hist))
	if sum == 0 {
		return out
	}
	for i, v := range hist {
		out[i] = v / sum * total
	}
	return out
}
