package adversary

import (
	"bytes"
	"encoding/binary"
	"testing"
	"time"

	"protoobf/internal/core"
	"protoobf/internal/frame"
	"protoobf/internal/rng"
	"protoobf/internal/session"
	"protoobf/internal/session/shape"
)

// FuzzWireMutation extends the mutation campaign with fuzzer-driven
// streams: arbitrary bytes — seeded with real mutated captures from
// every strategy — fed through a session receiver's Recv path must
// error cleanly, never panic or hang. Unlike RunMutations, nothing here
// recovers: a panic is a fuzz failure the corpus will pin.
func FuzzWireMutation(f *testing.F) {
	opts := core.ObfuscationOptions{PerNode: 2, Seed: 11}
	rotTx, err := core.NewRotation(Spec, opts)
	if err != nil {
		f.Fatal(err)
	}
	rot, err := core.NewRotation(Spec, opts)
	if err != nil {
		f.Fatal(err)
	}
	frames, err := baselineFrames(rotTx, 4, 11)
	if err != nil {
		f.Fatal(err)
	}

	// Seed corpus: the pristine stream plus one mutant per strategy.
	f.Add(bytes.Join(frames, nil))
	r := rng.New(3)
	for _, strategy := range Strategies {
		f.Add(Mutate(frames, strategy, r))
	}

	f.Fuzz(func(t *testing.T, data []byte) {
		rx, err := session.NewConn(discardWriter{bytes.NewReader(data)}, rot.View())
		if err != nil {
			t.Fatal(err)
		}
		defer rx.Release()
		// Bounded: every Recv consumes at least a frame header's worth of
		// input or errors.
		for {
			if _, err := rx.Recv(); err != nil {
				return
			}
		}
	})
}

// FuzzCoverFrame targets the cover-frame discard path: streams heavy in
// KindCover frames — well-formed, length-lying, truncated, oversized and
// interleaved with real data — driven through both an unshaped and a
// shaped receiver's real Recv. Covers must vanish silently and malformed
// input must error cleanly; as in FuzzWireMutation, nothing recovers.
func FuzzCoverFrame(f *testing.F) {
	opts := core.ObfuscationOptions{PerNode: 2, Seed: 11}
	rotTx, err := core.NewRotation(Spec, opts)
	if err != nil {
		f.Fatal(err)
	}
	rotPlain, err := core.NewRotation(Spec, opts)
	if err != nil {
		f.Fatal(err)
	}
	rotShaped, err := core.NewRotation(Spec, opts)
	if err != nil {
		f.Fatal(err)
	}
	frames, err := baselineFrames(rotTx, 4, 11)
	if err != nil {
		f.Fatal(err)
	}

	// Seed corpus: cover bursts spliced into the real stream, a pure
	// cover train, and hand-broken covers (length lies in both
	// directions, an over-limit length word, a torn payload).
	r := rng.New(5)
	for i := 0; i < 3; i++ {
		f.Add(Mutate(frames, "coverflood", r))
	}
	cover := func(payload int, lie int) []byte {
		b := make([]byte, frame.EpochHeaderLen+payload)
		if err := frame.EncodeHeader(b[:frame.EpochHeaderLen], frame.KindCover, 0, payload); err != nil {
			f.Fatal(err)
		}
		if lie >= 0 {
			word := binary.BigEndian.Uint32(b[:4])
			binary.BigEndian.PutUint32(b[:4], word&0xFF000000|uint32(lie)&0x00FFFFFF)
		}
		return b
	}
	f.Add(bytes.Join([][]byte{cover(0, -1), cover(32, -1), cover(512, -1)}, nil))
	f.Add(append(cover(8, 200), frames[0]...))  // cover claims more than it carries
	f.Add(append(cover(200, 8), frames[0]...))  // cover claims less: tail desyncs the stream
	f.Add(cover(4, frame.MaxFrame+1))           // length word over the frame limit
	f.Add(cover(64, -1)[:frame.EpochHeaderLen]) // header promises a payload the stream ends before

	profile := shape.Profile{
		Name:   "fuzz",
		Bins:   []shape.Bin{{Lo: 64, Hi: 256, Weight: 1}},
		MTU:    256,
		MinGap: time.Microsecond,
		MaxGap: time.Millisecond,
	}
	frozen := time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)

	f.Fuzz(func(t *testing.T, data []byte) {
		rx, err := session.NewConn(discardWriter{bytes.NewReader(data)}, rotPlain.View())
		if err != nil {
			t.Fatal(err)
		}
		for {
			if _, err := rx.Recv(); err != nil {
				break
			}
		}
		rx.Release()

		// Same bytes through a shaped receiver: covers still discard
		// before unshaping, and data frames additionally cross the
		// trailer/fragment parser. The frozen clock keeps the cover
		// scheduler off and the pacer a no-op.
		srx, err := session.NewConnOpts(discardWriter{bytes.NewReader(data)}, rotShaped.View(), session.Options{
			Shape:      &profile,
			ShapeClock: func() time.Time { return frozen },
			ShapeSleep: func(time.Duration) {},
		})
		if err != nil {
			t.Fatal(err)
		}
		defer srx.Release()
		for {
			if _, err := srx.Recv(); err != nil {
				return
			}
		}
	})
}
