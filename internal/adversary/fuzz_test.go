package adversary

import (
	"bytes"
	"testing"

	"protoobf/internal/core"
	"protoobf/internal/rng"
	"protoobf/internal/session"
)

// FuzzWireMutation extends the mutation campaign with fuzzer-driven
// streams: arbitrary bytes — seeded with real mutated captures from
// every strategy — fed through a session receiver's Recv path must
// error cleanly, never panic or hang. Unlike RunMutations, nothing here
// recovers: a panic is a fuzz failure the corpus will pin.
func FuzzWireMutation(f *testing.F) {
	opts := core.ObfuscationOptions{PerNode: 2, Seed: 11}
	rotTx, err := core.NewRotation(Spec, opts)
	if err != nil {
		f.Fatal(err)
	}
	rot, err := core.NewRotation(Spec, opts)
	if err != nil {
		f.Fatal(err)
	}
	frames, err := baselineFrames(rotTx, 4, 11)
	if err != nil {
		f.Fatal(err)
	}

	// Seed corpus: the pristine stream plus one mutant per strategy.
	f.Add(bytes.Join(frames, nil))
	r := rng.New(3)
	for _, strategy := range Strategies {
		f.Add(Mutate(frames, strategy, r))
	}

	f.Fuzz(func(t *testing.T, data []byte) {
		rx, err := session.NewConn(discardWriter{bytes.NewReader(data)}, rot.View())
		if err != nil {
			t.Fatal(err)
		}
		defer rx.Release()
		// Bounded: every Recv consumes at least a frame header's worth of
		// input or errors.
		for {
			if _, err := rx.Recv(); err != nil {
				return
			}
		}
	})
}
