package adversary

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"strings"

	"protoobf/internal/core"
	"protoobf/internal/frame"
	"protoobf/internal/rng"
	"protoobf/internal/session"
)

// Strategies names the wire mutation strategies, in campaign order.
var Strategies = []string{"bitflip", "lenlie", "truncate", "kindbyte", "splice", "reorder", "coverflood"}

// MutationConfig parameterizes the active-adversary campaign.
type MutationConfig struct {
	// PerNode is the obfuscation level of the session under attack
	// (default 2).
	PerNode int
	// Seed is the dialect-family seed.
	Seed int64
	// Frames is the length of the pristine baseline stream (default 12).
	Frames int
	// Cases is the number of mutated streams per strategy (default 48).
	Cases int
}

// MutationResult tallies one campaign: every case must either decode
// (the mutation was semantically invisible to the transport — a reorder
// within an epoch, a flip inside an End-bounded pad) or be rejected
// with an error; a crash is a harness failure.
type MutationResult struct {
	Total   int            `json:"total"`
	Crashes int            `json:"crashes"`
	Decoded int            `json:"decoded"`
	Rejects map[string]int `json:"rejects"`
}

// Rejected is the total count of cleanly rejected cases.
func (r *MutationResult) Rejected() int {
	n := 0
	for _, v := range r.Rejects {
		n += v
	}
	return n
}

// discardWriter adapts the mutated byte stream into the io.ReadWriter a
// session receiver expects; the receiver's own writes vanish.
type discardWriter struct{ io.Reader }

func (discardWriter) Write(p []byte) (int, error) { return len(p), nil }

// RunMutations builds a pristine frame stream from a live sender, then
// feeds deterministically mutated copies through a fresh session
// receiver's Recv path, classifying every outcome. The receiver speaks
// the same dialect family, so rejections measure the transport's own
// robustness, not a family mismatch.
func RunMutations(cfg MutationConfig) (*MutationResult, error) {
	if cfg.PerNode <= 0 {
		cfg.PerNode = 2
	}
	if cfg.Frames <= 0 {
		cfg.Frames = 12
	}
	if cfg.Cases <= 0 {
		cfg.Cases = 48
	}
	opts := core.ObfuscationOptions{PerNode: cfg.PerNode, Seed: cfg.Seed}
	rotTx, err := core.NewRotation(Spec, opts)
	if err != nil {
		return nil, err
	}
	rotRx, err := core.NewRotation(Spec, opts)
	if err != nil {
		return nil, err
	}
	frames, err := baselineFrames(rotTx, cfg.Frames, cfg.Seed)
	if err != nil {
		return nil, err
	}

	res := &MutationResult{Rejects: map[string]int{}}
	r := rng.New(cfg.Seed ^ 0x5ADBEEF)
	for _, strategy := range Strategies {
		for c := 0; c < cfg.Cases; c++ {
			stream := Mutate(frames, strategy, r)
			outcome, reason := feed(rotRx, stream, len(frames))
			res.Total++
			switch outcome {
			case outcomeCrash:
				res.Crashes++
			case outcomeDecoded:
				res.Decoded++
			default:
				res.Rejects[reason]++
			}
		}
	}
	return res, nil
}

// baselineFrames sends n telemetry messages through a real session into
// a buffer and splits the wire bytes at the frame boundaries.
func baselineFrames(rot *core.Rotation, n int, seed int64) ([][]byte, error) {
	var buf bytes.Buffer
	tx, err := session.NewConn(struct {
		io.Reader
		io.Writer
	}{bytes.NewReader(nil), &buf}, rot.View())
	if err != nil {
		return nil, err
	}
	defer tx.Release()
	r := rng.New(seed)
	var frames [][]byte
	prev := 0
	for i := 0; i < n; i++ {
		m, err := tx.NewMessage()
		if err != nil {
			return nil, err
		}
		s := m.Scope()
		if err := s.SetUint("device", uint64(r.Intn(1<<8))); err != nil {
			return nil, err
		}
		if err := s.SetUint("seqno", uint64(i)); err != nil {
			return nil, err
		}
		if err := s.SetBytes("status", statusBytes(r)); err != nil {
			return nil, err
		}
		if err := s.SetBytes("sig", nil); err != nil {
			return nil, err
		}
		if err := tx.Send(m); err != nil {
			return nil, err
		}
		frames = append(frames, append([]byte(nil), buf.Bytes()[prev:]...))
		prev = buf.Len()
	}
	return frames, nil
}

// Mutate applies one named strategy to a copy of the baseline frames
// and returns the mutated byte stream. Unknown strategies return the
// stream unmodified.
func Mutate(frames [][]byte, strategy string, r *rng.R) []byte {
	cp := make([][]byte, len(frames))
	for i, f := range frames {
		cp[i] = append([]byte(nil), f...)
	}
	switch strategy {
	case "bitflip":
		f := cp[r.Intn(len(cp))]
		f[r.Intn(len(f))] ^= 1 << r.Intn(8)
	case "lenlie":
		// Rewrite the 24-bit length field, keeping the kind byte: the
		// header now promises a payload the stream does not carry.
		f := cp[r.Intn(len(cp))]
		word := binary.BigEndian.Uint32(f[:4])
		lie := uint32(r.Intn(frame.MaxFrame + 2))
		binary.BigEndian.PutUint32(f[:4], word&0xFF000000|lie&0x00FFFFFF)
	case "kindbyte":
		cp[r.Intn(len(cp))][0] = byte(r.Intn(256))
	case "reorder":
		i, j := r.Intn(len(cp)), r.Intn(len(cp))
		cp[i], cp[j] = cp[j], cp[i]
	case "splice":
		// Foreign bytes at a frame boundary: the stream desynchronizes
		// unless the splice happens to parse.
		at := r.Intn(len(cp) + 1)
		garbage := r.Bytes(1 + r.Intn(24))
		rest := append([][]byte{garbage}, cp[at:]...)
		cp = append(cp[:at:at], rest...)
	case "coverflood":
		// A burst of well-formed cover frames at a frame boundary: every
		// receiver must silently discard each one and keep decoding the
		// real stream — the cover contract under active injection.
		at := r.Intn(len(cp) + 1)
		var burst [][]byte
		for i, n := 0, 1+r.Intn(6); i < n; i++ {
			payload := r.Bytes(r.Intn(64))
			cover := make([]byte, frame.EpochHeaderLen+len(payload))
			if err := frame.EncodeHeader(cover[:frame.EpochHeaderLen], frame.KindCover, 0, len(payload)); err != nil {
				panic(err) // 0..63-byte payloads always encode
			}
			copy(cover[frame.EpochHeaderLen:], payload)
			burst = append(burst, cover)
		}
		rest := append(burst, cp[at:]...)
		cp = append(cp[:at:at], rest...)
	}
	stream := bytes.Join(cp, nil)
	if strategy == "truncate" {
		stream = stream[:r.Intn(len(stream))]
	}
	return stream
}

const (
	outcomeDecoded = iota
	outcomeRejected
	outcomeCrash
)

// feed drives one mutated stream through a fresh receiver's Recv until
// the stream errors or every expected message decoded. A panic anywhere
// under Recv is the crash the campaign exists to rule out.
func feed(rot *core.Rotation, stream []byte, want int) (outcome int, reason string) {
	defer func() {
		if p := recover(); p != nil {
			outcome, reason = outcomeCrash, fmt.Sprintf("panic: %v", p)
		}
	}()
	rx, err := session.NewConn(discardWriter{bytes.NewReader(stream)}, rot.View())
	if err != nil {
		return outcomeRejected, "setup"
	}
	defer rx.Release()
	for n := 0; n < want; n++ {
		if _, err := rx.Recv(); err != nil {
			return outcomeRejected, rejectReason(err)
		}
	}
	return outcomeDecoded, ""
}

// rejectReason buckets a Recv error into the campaign's reject
// taxonomy. Buckets are coarse on purpose: they are trajectory labels,
// not an error-message contract.
func rejectReason(err error) string {
	if errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) {
		return "truncated"
	}
	msg := err.Error()
	switch {
	case strings.Contains(msg, "exceeds limit"):
		return "frame-header"
	case strings.Contains(msg, "ahead of current"):
		return "epoch-bound"
	case strings.Contains(msg, "unknown frame kind"):
		return "unknown-kind"
	case strings.Contains(msg, "control"), strings.Contains(msg, "rekey"), strings.Contains(msg, "resume"):
		return "control"
	case strings.Contains(msg, "session: epoch"):
		return "parse"
	default:
		return "other"
	}
}
