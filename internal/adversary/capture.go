// Package adversary is the standing adversary harness of the
// evaluation: it attacks the session layer the way a network observer
// or an active man-in-the-middle would, and reports how well each
// attack works.
//
// Three attack surfaces are covered:
//
//   - Statistical distinguishers (Evaluate): frame-length distribution
//     tests, pooled byte-entropy and inter-frame timing over traffic
//     captured from a live Endpoint session pair, each reporting its
//     held-out classification accuracy at separating obfuscated from
//     plaintext traffic.
//   - Wire-level mutation fuzzing (RunMutations): bit flips, length-field
//     lies, truncation, kind-byte mutation, splices and reorders driven
//     through the session Recv path, asserting reject-versus-crash and
//     counting reject reasons.
//   - Covert-channel capacity (CovertCapacity): how many bits per epoch
//     the dialect choice itself could leak to an observer who can replay
//     a known message.
//
// All harness randomness is seeded, so every run is reproducible and
// the accuracies it reports are comparable across commits — the BENCH
// trajectory emitted by protoobf-bench -adversary.
package adversary

import (
	"fmt"
	"io"
	"time"

	"protoobf"
	"protoobf/internal/frame"
	"protoobf/internal/rng"
	"protoobf/internal/session/sched"
)

// Spec is the message format the harness captures: telemetry-style
// messages (the session workload shape) with a variable-length status
// field, so frame lengths carry signal even before obfuscation.
const Spec = `
protocol advprobe;
root seq m end {
    uint  device 2;
    uint  seqno 4;
    uint  blen 2;
    seq body length(blen) {
        bytes status delim ";" min 1;
    }
    bytes sig end;
}
`

// Frame is one captured wire frame: the epoch-header fields plus the
// payload bytes and the capture-clock timestamp of the write that
// completed it.
type Frame struct {
	Kind    byte
	Epoch   uint64
	Payload []byte
	At      time.Time
}

// Trace is one direction of captured session traffic: the parsed frame
// sequence and the raw byte stream exactly as written.
type Trace struct {
	Frames []Frame
	Raw    []byte
}

// Tap observes one direction of a session's writes, reassembling the
// epoch-framed stream into Frames offline — the passive network
// observer's view. It implements io.Writer so it can sit between a
// session and its transport; now supplies the timestamp a frame is
// stamped with when its last byte is written.
type Tap struct {
	now     func() time.Time
	raw     []byte
	pending []byte
	frames  []Frame
}

// NewTap returns a tap stamping frames with now (nil means time.Now).
func NewTap(now func() time.Time) *Tap {
	if now == nil {
		now = time.Now
	}
	return &Tap{now: now}
}

// Write records p and parses any frames it completes. It never fails:
// the tap is an observer, not a participant.
func (t *Tap) Write(p []byte) (int, error) {
	t.raw = append(t.raw, p...)
	t.pending = append(t.pending, p...)
	for {
		if len(t.pending) < frame.EpochHeaderLen {
			return len(p), nil
		}
		kind, n, epoch, err := frame.DecodeHeader(t.pending[:frame.EpochHeaderLen])
		if err != nil {
			// Legit session traffic never produces an invalid header; stop
			// parsing rather than guess at resynchronization.
			return len(p), nil
		}
		if len(t.pending) < frame.EpochHeaderLen+n {
			return len(p), nil
		}
		payload := append([]byte(nil), t.pending[frame.EpochHeaderLen:frame.EpochHeaderLen+n]...)
		t.frames = append(t.frames, Frame{Kind: kind, Epoch: epoch, Payload: payload, At: t.now()})
		t.pending = t.pending[frame.EpochHeaderLen+n:]
	}
}

// Trace returns what the tap has seen so far.
func (t *Tap) Trace() *Trace {
	return &Trace{Frames: t.frames, Raw: t.raw}
}

// tapped routes a stream's writes through the tap on their way to the
// underlying pipe end.
type tapped struct {
	io.ReadWriter
	tap *Tap
}

func (t tapped) Write(p []byte) (int, error) {
	t.tap.Write(p)
	return t.ReadWriter.Write(p)
}

// CaptureConfig parameterizes one labeled traffic capture.
type CaptureConfig struct {
	// PerNode is the obfuscation level; 0 captures the plaintext
	// baseline the distinguishers are trained against.
	PerNode int
	// Seed is the dialect-family seed.
	Seed int64
	// TrafficSeed seeds the message contents, independently of the
	// family: two captures with the same TrafficSeed carry the same
	// application payloads under different dialects.
	TrafficSeed int64
	// Msgs is the number of client-to-server messages (default 256).
	Msgs int
	// Epochs is the number of scheduled dialect rotations the capture
	// spans (default 4), so the trace mixes dialects like long-lived
	// traffic does.
	Epochs int
	// Gap returns the capture-clock delay before message i (default a
	// constant 1ms). The distinguishers only ever see these synthetic
	// timestamps, which keeps the timing test deterministic.
	Gap func(i int) time.Duration
	// Shape, when non-nil, shapes both peers with the profile — length
	// morphing, MTU splitting and departure pacing, all on the capture
	// clock (the shaper's sleeps advance it), so shaped captures stay
	// exactly as deterministic as unshaped ones. This is the
	// countermeasure the distinguisher gate evaluates. Stream captures
	// only.
	Shape *protoobf.ShapeProfile
	// Datagram captures packet-session traffic instead of stream
	// traffic: one packet per frame, tapped at packet granularity (the
	// datagram observer's natural view).
	Datagram bool
	// ZeroOverhead selects zero-overhead data packets for a datagram
	// capture — what the observer sees when even the framing header is
	// gone. Ignored for stream captures.
	ZeroOverhead bool
}

// Capture runs a live Endpoint session pair over an in-memory duplex,
// drives cfg.Msgs telemetry messages client-to-server across cfg.Epochs
// scheduled rotations, and returns the client's wire traffic as seen by
// a tap on its transport.
func Capture(cfg CaptureConfig) (*Trace, error) {
	if cfg.Msgs <= 0 {
		cfg.Msgs = 256
	}
	if cfg.Epochs <= 0 {
		cfg.Epochs = 4
	}
	if cfg.Gap == nil {
		cfg.Gap = func(int) time.Duration { return time.Millisecond }
	}
	if cfg.Datagram {
		if cfg.Shape != nil {
			return nil, fmt.Errorf("adversary: shaping is a stream-session countermeasure; datagram captures cannot shape")
		}
		return captureDatagram(cfg)
	}

	genesis := time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)
	clock := sched.NewFakeClock(genesis)
	schedule := sched.New(genesis, time.Minute).WithClock(clock.Now)

	// The adversary's clock: advanced by Gap before every send — and by
	// the shaper's pacing sleeps, when shaping is on — read by the tap
	// when a frame completes.
	now := genesis
	tap := NewTap(func() time.Time { return now })

	epOpts := []protoobf.EndpointOption{protoobf.WithSchedule(schedule)}
	if cfg.Shape != nil {
		epOpts = append(epOpts,
			protoobf.WithShaping(*cfg.Shape),
			protoobf.WithShapeClock(
				func() time.Time { return now },
				func(d time.Duration) { now = now.Add(d) },
			))
	}
	opts := protoobf.Options{PerNode: cfg.PerNode, Seed: cfg.Seed}
	epCli, err := protoobf.NewEndpoint(Spec, opts, epOpts...)
	if err != nil {
		return nil, err
	}
	epSrv, err := protoobf.NewEndpoint(Spec, opts, epOpts...)
	if err != nil {
		return nil, err
	}

	ca, cb := protoobf.Pipe()
	cli, err := epCli.Session(tapped{ReadWriter: ca, tap: tap})
	if err != nil {
		return nil, err
	}
	defer cli.Release()
	srv, err := epSrv.Session(cb)
	if err != nil {
		return nil, err
	}
	defer srv.Release()

	r := rng.New(cfg.TrafficSeed)
	perEpoch := cfg.Msgs / cfg.Epochs
	if perEpoch == 0 {
		perEpoch = 1
	}
	for i := 0; i < cfg.Msgs; i++ {
		now = now.Add(cfg.Gap(i))
		m, err := cli.NewMessage()
		if err != nil {
			return nil, err
		}
		s := m.Scope()
		if err := s.SetUint("device", uint64(r.Intn(1<<8))); err != nil {
			return nil, err
		}
		if err := s.SetUint("seqno", uint64(i)); err != nil {
			return nil, err
		}
		if err := s.SetBytes("status", statusBytes(r)); err != nil {
			return nil, err
		}
		if err := s.SetBytes("sig", nil); err != nil {
			return nil, err
		}
		if err := cli.Send(m); err != nil {
			return nil, fmt.Errorf("adversary: capture send %d: %w", i, err)
		}
		if _, err := srv.Recv(); err != nil {
			return nil, fmt.Errorf("adversary: capture recv %d: %w", i, err)
		}
		if (i+1)%perEpoch == 0 {
			clock.Advance(time.Minute)
		}
	}
	return tap.Trace(), nil
}

// statusBytes builds a variable-length, low-entropy status value — the
// structured plaintext shape (think text protocols) a byte-level
// distinguisher feeds on. Obfuscating transformations disperse these
// concentrated byte frequencies; the plaintext keeps them.
func statusBytes(r *rng.R) []byte {
	n := 1 + r.Intn(24)
	b := make([]byte, n)
	const alphabet = "ab"
	for i := range b {
		b[i] = alphabet[i%len(alphabet)]
	}
	return b
}
