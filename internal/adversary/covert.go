package adversary

import (
	"protoobf/internal/core"
	"protoobf/internal/stats"
)

// CovertEstimate bounds the covert channel the dialect choice itself
// opens: an insider who can pick which epoch version a message is
// serialized under leaks up to Bits per message to an observer who can
// replay the known plaintext against the family's versions. Bits is the
// Shannon entropy of the wire-encoding distribution of one fixed
// message across Epochs consecutive versions; MaxBits = log2(Epochs) is
// the ceiling reached when every version encodes it distinctly.
type CovertEstimate struct {
	PerNode  int     `json:"per_node"`
	Epochs   int     `json:"epochs"`
	Distinct int     `json:"distinct_encodings"`
	Bits     float64 `json:"bits"`
	MaxBits  float64 `json:"max_bits"`
}

// CovertCapacity serializes one fixed message under each of the first
// epochs versions of the (Spec, perNode, seed) family and measures the
// entropy of the resulting encoding distribution. At perNode 0 every
// version is the unobfuscated grammar, the encodings collide and the
// channel carries 0 bits — the calibration point.
func CovertCapacity(perNode, epochs int, seed int64) (CovertEstimate, error) {
	if epochs <= 0 {
		epochs = 32
	}
	rot, err := core.NewRotation(Spec, core.ObfuscationOptions{PerNode: perNode, Seed: seed})
	if err != nil {
		return CovertEstimate{}, err
	}
	counts := map[string]float64{}
	for e := 0; e < epochs; e++ {
		p, err := rot.Version(uint64(e))
		if err != nil {
			return CovertEstimate{}, err
		}
		wire, err := serializeProbe(p)
		if err != nil {
			return CovertEstimate{}, err
		}
		counts[string(wire)]++
	}
	hist := make([]float64, 0, len(counts))
	for _, c := range counts {
		hist = append(hist, c)
	}
	return CovertEstimate{
		PerNode:  perNode,
		Epochs:   epochs,
		Distinct: len(counts),
		Bits:     stats.Entropy(hist),
		MaxBits:  log2(epochs),
	}, nil
}

// serializeProbe renders the fixed probe message under one version.
func serializeProbe(p *core.Protocol) ([]byte, error) {
	m := p.NewMessage()
	s := m.Scope()
	if err := s.SetUint("device", 7); err != nil {
		return nil, err
	}
	if err := s.SetUint("seqno", 1234); err != nil {
		return nil, err
	}
	if err := s.SetString("status", "steady"); err != nil {
		return nil, err
	}
	if err := s.SetBytes("sig", nil); err != nil {
		return nil, err
	}
	return p.Serialize(m)
}

// log2 is the integer-argument convenience over math.Log2 used by the
// capacity ceiling.
func log2(n int) float64 {
	return stats.Entropy(uniform(n))
}

// uniform returns n equal counts: its entropy is exactly log2(n).
func uniform(n int) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = 1
	}
	return out
}
