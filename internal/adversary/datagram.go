package adversary

import (
	"fmt"
	"io"
	"time"

	"protoobf"
	"protoobf/internal/core"
	"protoobf/internal/frame"
	"protoobf/internal/metrics"
	"protoobf/internal/rng"
	"protoobf/internal/session/dgram"
	"protoobf/internal/session/sched"
)

// Datagram attack surface: the same adversary, pointed at the packet
// session layer. Captures tap whole packets (the datagram observer sees
// packet boundaries for free — no stream reassembly), and the mutation
// campaign feeds mutilated packets through Decode one at a time,
// because on a datagram transport every packet must stand alone: a
// mutation can cost at most the packet it touches.

// PacketTap observes one direction of packet traffic: every Write is
// one packet and becomes one Frame. In normal mode the epoch header is
// parsed into Kind/Epoch; in zero-overhead mode there is no readable
// header — exactly the observer's problem — so frames carry the raw
// packet with Kind 0xFF and Epoch 0.
type PacketTap struct {
	now          func() time.Time
	zeroOverhead bool
	raw          []byte
	frames       []Frame
}

// NewPacketTap returns a packet tap stamping frames with now (nil means
// time.Now).
func NewPacketTap(now func() time.Time, zeroOverhead bool) *PacketTap {
	if now == nil {
		now = time.Now
	}
	return &PacketTap{now: now, zeroOverhead: zeroOverhead}
}

// Write records one packet. It never fails: the tap is an observer.
func (t *PacketTap) Write(p []byte) (int, error) {
	t.raw = append(t.raw, p...)
	fr := Frame{Kind: 0xFF, Payload: append([]byte(nil), p...), At: t.now()}
	if !t.zeroOverhead && len(p) >= frame.EpochHeaderLen {
		if kind, _, epoch, err := frame.DecodeHeader(p[:frame.EpochHeaderLen]); err == nil {
			fr.Kind, fr.Epoch = kind, epoch
		}
	}
	t.frames = append(t.frames, fr)
	return len(p), nil
}

// Trace returns what the tap has seen so far.
func (t *PacketTap) Trace() *Trace {
	return &Trace{Frames: t.frames, Raw: t.raw}
}

// tappedPacket routes a packet transport's writes through the tap.
type tappedPacket struct {
	io.ReadWriter
	tap *PacketTap
}

func (t tappedPacket) Write(p []byte) (int, error) {
	t.tap.Write(p)
	return t.ReadWriter.Write(p)
}

// captureDatagram is Capture's packet-transport leg: a PacketSession
// pair over the in-memory packet pair, the client's transport tapped,
// the same telemetry workload and scheduled rotations.
func captureDatagram(cfg CaptureConfig) (*Trace, error) {
	genesis := time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)
	clock := sched.NewFakeClock(genesis)
	schedule := sched.New(genesis, time.Minute).WithClock(clock.Now)

	now := genesis
	tap := NewPacketTap(func() time.Time { return now }, cfg.ZeroOverhead)

	opts := protoobf.Options{PerNode: cfg.PerNode, Seed: cfg.Seed}
	epOpts := []protoobf.EndpointOption{protoobf.WithSchedule(schedule)}
	epCli, err := protoobf.NewEndpoint(Spec, opts, epOpts...)
	if err != nil {
		return nil, err
	}
	epSrv, err := protoobf.NewEndpoint(Spec, opts, epOpts...)
	if err != nil {
		return nil, err
	}

	var sessOpts []protoobf.SessionOption
	if cfg.ZeroOverhead {
		sessOpts = append(sessOpts, protoobf.WithZeroOverhead(true))
	}
	ca, cb := protoobf.PacketPipe()
	cli, err := epCli.PacketSession(tappedPacket{ReadWriter: ca, tap: tap}, sessOpts...)
	if err != nil {
		return nil, err
	}
	defer cli.Release()
	srv, err := epSrv.PacketSession(cb, sessOpts...)
	if err != nil {
		return nil, err
	}
	defer srv.Release()

	r := rng.New(cfg.TrafficSeed)
	perEpoch := cfg.Msgs / cfg.Epochs
	if perEpoch == 0 {
		perEpoch = 1
	}
	for i := 0; i < cfg.Msgs; i++ {
		now = now.Add(cfg.Gap(i))
		m, err := cli.NewMessage()
		if err != nil {
			return nil, err
		}
		s := m.Scope()
		if err := s.SetUint("device", uint64(r.Intn(1<<8))); err != nil {
			return nil, err
		}
		if err := s.SetUint("seqno", uint64(i)); err != nil {
			return nil, err
		}
		if err := s.SetBytes("status", statusBytes(r)); err != nil {
			return nil, err
		}
		if err := s.SetBytes("sig", nil); err != nil {
			return nil, err
		}
		if err := cli.Send(m); err != nil {
			return nil, fmt.Errorf("adversary: datagram capture send %d: %w", i, err)
		}
		if _, err := srv.Recv(); err != nil {
			return nil, fmt.Errorf("adversary: datagram capture recv %d: %w", i, err)
		}
		if (i+1)%perEpoch == 0 {
			clock.Advance(time.Minute)
		}
	}
	return tap.Trace(), nil
}

// DatagramStrategies names the packet mutation strategies, in campaign
// order. Loss, duplication and reordering are legitimate datagram
// weather, so unlike the stream campaign they must cost at most the
// packets they touch, never the session.
var DatagramStrategies = []string{"bitflip", "lenlie", "truncate", "kindbyte", "reorder", "dup", "drop", "splice"}

// MutateDatagram applies one named strategy to a copy of the baseline
// packets. Unknown strategies return the packets unmodified.
func MutateDatagram(pkts [][]byte, strategy string, r *rng.R) [][]byte {
	cp := make([][]byte, len(pkts))
	for i, p := range pkts {
		cp[i] = append([]byte(nil), p...)
	}
	switch strategy {
	case "bitflip":
		p := cp[r.Intn(len(cp))]
		p[r.Intn(len(p))] ^= 1 << r.Intn(8)
	case "lenlie":
		// Rewrite the leading length word. In normal mode that is the
		// header lying about the payload; in zero-overhead mode it is
		// just a 3-byte corruption of masked payload.
		p := cp[r.Intn(len(cp))]
		if len(p) >= 4 {
			lie := r.Intn(frame.MaxFrame + 2)
			p[1], p[2], p[3] = byte(lie>>16), byte(lie>>8), byte(lie)
		}
	case "truncate":
		i := r.Intn(len(cp))
		cp[i] = cp[i][:r.Intn(len(cp[i]))]
	case "kindbyte":
		cp[r.Intn(len(cp))][0] = byte(r.Intn(256))
	case "reorder":
		i, j := r.Intn(len(cp)), r.Intn(len(cp))
		cp[i], cp[j] = cp[j], cp[i]
	case "dup":
		i := r.Intn(len(cp))
		at := r.Intn(len(cp) + 1)
		d := append([]byte(nil), cp[i]...)
		rest := append([][]byte{d}, cp[at:]...)
		cp = append(cp[:at:at], rest...)
	case "drop":
		i := r.Intn(len(cp))
		cp = append(cp[:i:i], cp[i+1:]...)
	case "splice":
		// A wholly foreign packet: random bytes of plausible size.
		at := r.Intn(len(cp) + 1)
		garbage := r.Bytes(1 + r.Intn(256))
		rest := append([][]byte{garbage}, cp[at:]...)
		cp = append(cp[:at:at], rest...)
	}
	return cp
}

// DatagramMutationResult tallies the packet campaign: per-packet
// outcomes rather than per-stream, because datagram damage is local by
// design.
type DatagramMutationResult struct {
	Cases    int            `json:"cases"`
	Packets  int            `json:"packets"`
	Crashes  int            `json:"crashes"`
	Decoded  int            `json:"decoded"`
	Controls int            `json:"controls"`
	Rejects  map[string]int `json:"rejects"`
}

// Rejected is the total count of cleanly rejected packets.
func (r *DatagramMutationResult) Rejected() int {
	n := 0
	for _, v := range r.Rejects {
		n += v
	}
	return n
}

// RunDatagramMutations builds a pristine packet sequence from a live
// packet sender, then feeds deterministically mutated copies through a
// fresh receiver's Decode path packet by packet, classifying every
// packet's outcome. Both modes are attacked: zeroOverhead selects the
// wire format under test.
func RunDatagramMutations(cfg MutationConfig, zeroOverhead bool) (*DatagramMutationResult, error) {
	if cfg.PerNode <= 0 {
		cfg.PerNode = 2
	}
	if cfg.Frames <= 0 {
		cfg.Frames = 12
	}
	if cfg.Cases <= 0 {
		cfg.Cases = 48
	}
	opts := core.ObfuscationOptions{PerNode: cfg.PerNode, Seed: cfg.Seed}
	rotTx, err := core.NewRotation(Spec, opts)
	if err != nil {
		return nil, err
	}
	rotRx, err := core.NewRotation(Spec, opts)
	if err != nil {
		return nil, err
	}
	pkts, err := baselinePackets(rotTx, cfg.Frames, cfg.Seed, zeroOverhead)
	if err != nil {
		return nil, err
	}

	res := &DatagramMutationResult{Rejects: map[string]int{}}
	r := rng.New(cfg.Seed ^ 0x5ADBEEF)
	for _, strategy := range DatagramStrategies {
		for c := 0; c < cfg.Cases; c++ {
			mutated := MutateDatagram(pkts, strategy, r)
			if err := feedPackets(rotRx, mutated, zeroOverhead, res); err != nil {
				return nil, err
			}
			res.Cases++
		}
	}
	return res, nil
}

// nullTransport satisfies the packet session's transport contract for a
// receiver that is only ever hand-fed packets via Decode.
type nullTransport struct{}

func (nullTransport) Read(p []byte) (int, error)  { return 0, io.EOF }
func (nullTransport) Write(p []byte) (int, error) { return len(p), nil }

// baselinePackets sends n telemetry messages through a real packet
// session, capturing each packet as written.
func baselinePackets(rot *core.Rotation, n int, seed int64, zeroOverhead bool) ([][]byte, error) {
	var cap packetCapture
	tx, err := dgram.NewConn(&cap, rot.View(), dgram.Options{ZeroOverhead: zeroOverhead})
	if err != nil {
		return nil, err
	}
	defer tx.Release()
	r := rng.New(seed)
	for i := 0; i < n; i++ {
		m, err := tx.NewMessage()
		if err != nil {
			return nil, err
		}
		s := m.Scope()
		if err := s.SetUint("device", uint64(r.Intn(1<<8))); err != nil {
			return nil, err
		}
		if err := s.SetUint("seqno", uint64(i)); err != nil {
			return nil, err
		}
		if err := s.SetBytes("status", statusBytes(r)); err != nil {
			return nil, err
		}
		if err := s.SetBytes("sig", nil); err != nil {
			return nil, err
		}
		if err := tx.Send(m); err != nil {
			return nil, err
		}
	}
	return cap.pkts, nil
}

// packetCapture records written packets; reads report EOF.
type packetCapture struct{ pkts [][]byte }

func (c *packetCapture) Write(p []byte) (int, error) {
	c.pkts = append(c.pkts, append([]byte(nil), p...))
	return len(p), nil
}
func (c *packetCapture) Read(p []byte) (int, error) { return 0, io.EOF }

// feedPackets drives one mutated packet sequence through a fresh
// receiver's Decode, packet by packet, tallying outcomes into res. A
// panic anywhere under Decode is the crash the campaign rules out.
func feedPackets(rot *core.Rotation, pkts [][]byte, zeroOverhead bool, res *DatagramMutationResult) (err error) {
	var stats metrics.DgramCounters
	rx, err := dgram.NewConn(nullTransport{}, rot.View(), dgram.Options{
		ZeroOverhead: zeroOverhead,
		Stats:        &stats,
	})
	if err != nil {
		return err
	}
	defer rx.Release()
	for _, pkt := range pkts {
		res.Packets++
		before := stats.Snapshot()
		m, crashed := decodeOne(rx, pkt)
		if crashed {
			res.Crashes++
			continue
		}
		after := stats.Snapshot()
		switch {
		case m != nil:
			res.Decoded++
		case after.Rejects() > before.Rejects():
			res.Rejects[rejectBucket(before, after)]++
		default:
			// Handled control packet (cover discard, rekey apply/dup).
			res.Controls++
		}
	}
	return nil
}

// decodeOne isolates one Decode behind a recover, so a panic is
// classified instead of killing the campaign.
func decodeOne(rx *dgram.Conn, pkt []byte) (m any, crashed bool) {
	defer func() {
		if p := recover(); p != nil {
			m, crashed = nil, true
		}
	}()
	got, _ := rx.Decode(append([]byte(nil), pkt...))
	if got == nil {
		return nil, false
	}
	return got, false
}

// rejectBucket names the reject reason that fired between two
// snapshots.
func rejectBucket(before, after metrics.DgramStats) string {
	switch {
	case after.RejectedStale > before.RejectedStale:
		return "stale"
	case after.RejectedFuture > before.RejectedFuture:
		return "future"
	case after.RejectedMalformed > before.RejectedMalformed:
		return "malformed"
	default:
		return "parse"
	}
}
