package adversary

import (
	"testing"
	"time"

	"protoobf/internal/frame"
)

// capture is the shared shorthand for a deterministic labeled capture.
func capture(t *testing.T, perNode int, trafficSeed int64, gap func(int) time.Duration) *Trace {
	t.Helper()
	tr, err := Capture(CaptureConfig{PerNode: perNode, Seed: 11, TrafficSeed: trafficSeed, Gap: gap})
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

func byName(accs []Accuracy) map[string]Accuracy {
	out := map[string]Accuracy{}
	for _, a := range accs {
		out[a.Name] = a
	}
	return out
}

// TestDistinguisherPositiveControl is the sensitivity half of the
// control pair: on plaintext-versus-obfuscated traffic with identical
// application payloads, every content distinguisher must classify with
// high held-out accuracy, and when the two captures also differ in
// timing profile the timing distinguisher must too. A harness whose
// distinguishers cannot even tell unobfuscated framed traffic apart
// measures nothing.
func TestDistinguisherPositiveControl(t *testing.T) {
	plain := capture(t, 0, 1, nil)
	obf := capture(t, 2, 1, nil)
	accs := byName(Evaluate(plain, obf, 16))
	for _, name := range []string{"length-ks", "length-chi2", "byte-entropy"} {
		if a := accs[name]; a.Accuracy < 0.9 {
			t.Errorf("%s accuracy = %.3f, want >= 0.9 on plain-vs-obf", name, a.Accuracy)
		}
	}
	// Same synthetic gap profile on both sides: timing carries no signal
	// here, and a timing score that still "separates" would be reading
	// labels through a side channel.
	if a := accs["timing-ks"]; a.Accuracy < 0.3 || a.Accuracy > 0.7 {
		t.Errorf("timing-ks accuracy = %.3f on identically timed traffic, want near chance", a.Accuracy)
	}

	// Distinct gap profiles: now timing must separate.
	bursty := capture(t, 2, 1, func(i int) time.Duration {
		if i%4 == 0 {
			return 20 * time.Millisecond
		}
		return time.Millisecond
	})
	if a := byName(Evaluate(plain, bursty, 16))["timing-ks"]; a.Accuracy < 0.9 {
		t.Errorf("timing-ks accuracy = %.3f, want >= 0.9 on distinct gap profiles", a.Accuracy)
	}
}

// TestDistinguisherNoBiasControl is the other half: on two independent
// captures of identically distributed plaintext traffic, every
// distinguisher must land near chance. High "accuracy" here would mean
// the harness's threshold fit leaks training labels into the held-out
// score, inflating every number it reports.
func TestDistinguisherNoBiasControl(t *testing.T) {
	a := capture(t, 0, 1, nil)
	b := capture(t, 0, 2, nil)
	for _, acc := range Evaluate(a, b, 16) {
		if acc.Accuracy > 0.75 {
			t.Errorf("%s accuracy = %.3f on identically distributed traffic, want <= 0.75", acc.Name, acc.Accuracy)
		}
	}
	// And obfuscated-versus-obfuscated, same family: also near chance.
	oa := capture(t, 2, 1, nil)
	ob := capture(t, 2, 2, nil)
	for _, acc := range Evaluate(oa, ob, 16) {
		if acc.Accuracy > 0.75 {
			t.Errorf("%s accuracy = %.3f on obf-vs-obf, want <= 0.75", acc.Name, acc.Accuracy)
		}
	}
}

// TestEvaluateHoldout pins the split discipline: accuracies are
// measured on held-out windows only, so the reported window count is
// the test half, not the whole capture.
func TestEvaluateHoldout(t *testing.T) {
	plain := capture(t, 0, 1, nil)
	obf := capture(t, 2, 1, nil)
	accs := Evaluate(plain, obf, 16)
	if len(accs) != 4 {
		t.Fatalf("distinguisher count = %d, want 4", len(accs))
	}
	// 256 frames / 16 per window = 16 windows per trace, 8 held out each.
	for _, a := range accs {
		if a.Windows != 16 {
			t.Errorf("%s held-out windows = %d, want 16", a.Name, a.Windows)
		}
		if a.Accuracy < 0 || a.Accuracy > 1 {
			t.Errorf("%s accuracy = %v out of range", a.Name, a.Accuracy)
		}
	}
}

// TestTapReassembly: the tap reconstructs frames from arbitrarily
// chunked writes — headers and payloads split across Write calls — and
// stamps each frame when its final byte lands.
func TestTapReassembly(t *testing.T) {
	base := time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)
	now := base
	tap := NewTap(func() time.Time { return now })

	hdr := make([]byte, frame.EpochHeaderLen)
	if err := frame.EncodeHeader(hdr, frame.KindData, 7, 3); err != nil {
		t.Fatal(err)
	}
	stream := append(append([]byte(nil), hdr...), 'a', 'b', 'c')
	if err := frame.EncodeHeader(hdr, frame.KindRekeyPropose, 9, 2); err != nil {
		t.Fatal(err)
	}
	stream = append(append(stream, hdr...), 'x', 'y')

	// Dribble the stream one byte at a time, ticking the clock.
	for _, b := range stream {
		now = now.Add(time.Second)
		tap.Write([]byte{b})
	}
	tr := tap.Trace()
	if len(tr.Frames) != 2 {
		t.Fatalf("frames = %d, want 2", len(tr.Frames))
	}
	f0, f1 := tr.Frames[0], tr.Frames[1]
	if f0.Kind != frame.KindData || f0.Epoch != 7 || string(f0.Payload) != "abc" {
		t.Errorf("frame 0 = %+v", f0)
	}
	if f1.Kind != frame.KindRekeyPropose || f1.Epoch != 9 || string(f1.Payload) != "xy" {
		t.Errorf("frame 1 = %+v", f1)
	}
	// Frame 0 completes at byte 15 (header 12 + 3 payload), frame 1 at
	// the final byte.
	if want := base.Add(15 * time.Second); !f0.At.Equal(want) {
		t.Errorf("frame 0 stamped %v, want %v", f0.At, want)
	}
	if want := base.Add(time.Duration(len(stream)) * time.Second); !f1.At.Equal(want) {
		t.Errorf("frame 1 stamped %v, want %v", f1.At, want)
	}
	if len(tr.Raw) != len(stream) {
		t.Errorf("raw bytes = %d, want %d", len(tr.Raw), len(stream))
	}
}

// TestMutationCampaign: every mutated stream either decodes or is
// rejected with a bucketed reason; a crash anywhere under Recv fails
// the whole harness.
func TestMutationCampaign(t *testing.T) {
	res, err := RunMutations(MutationConfig{Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if res.Crashes != 0 {
		t.Fatalf("crashes = %d, want 0: %+v", res.Crashes, res)
	}
	if want := len(Strategies) * 48; res.Total != want {
		t.Errorf("total cases = %d, want %d", res.Total, want)
	}
	if res.Decoded+res.Rejected() != res.Total {
		t.Errorf("decoded %d + rejected %d != total %d", res.Decoded, res.Rejected(), res.Total)
	}
	if res.Rejected() == 0 {
		t.Error("no mutation was ever rejected: the campaign is not reaching the transport")
	}
	// The taxonomy must be populated, not a single catch-all bucket.
	for _, reason := range []string{"truncated", "frame-header"} {
		if res.Rejects[reason] == 0 {
			t.Errorf("reject reason %q never observed: %v", reason, res.Rejects)
		}
	}
}

// TestCovertCapacity: at perNode 0 every epoch version encodes the
// probe identically and the dialect channel carries 0 bits; at a real
// obfuscation level the capacity is positive and bounded by log2(K).
func TestCovertCapacity(t *testing.T) {
	off, err := CovertCapacity(0, 32, 11)
	if err != nil {
		t.Fatal(err)
	}
	if off.Bits != 0 || off.Distinct != 1 {
		t.Errorf("perNode 0: bits=%v distinct=%d, want 0 bits from 1 encoding", off.Bits, off.Distinct)
	}
	on, err := CovertCapacity(2, 32, 11)
	if err != nil {
		t.Fatal(err)
	}
	if on.Bits <= 0 {
		t.Errorf("perNode 2: bits=%v, want > 0", on.Bits)
	}
	if on.Bits > on.MaxBits+1e-9 {
		t.Errorf("bits %v exceed ceiling %v", on.Bits, on.MaxBits)
	}
	if want := 5.0; on.MaxBits != want {
		t.Errorf("max bits = %v, want %v for 32 epochs", on.MaxBits, want)
	}
}
