package pre

// Field inference: within one cluster, align every message against a
// template (the longest member), classify template columns as static
// (same byte across the cluster) or dynamic, and predict field boundaries
// at the static/dynamic transitions — the core of alignment-based message
// format inference (PI project, Netzob; paper §II-B).

// FieldModel is the inferred format of one cluster.
type FieldModel struct {
	// Template is the index (into the cluster) of the template message.
	Template int
	// Static[i] tells whether template column i is constant.
	Static []bool
	// Boundaries are the predicted field-start offsets in the template.
	Boundaries []int
}

// InferFields builds the field model of one cluster of messages.
func InferFields(msgs [][]byte) *FieldModel {
	if len(msgs) == 0 {
		return &FieldModel{}
	}
	tmplIdx := 0
	for i, m := range msgs {
		if len(m) > len(msgs[tmplIdx]) {
			tmplIdx = i
		}
	}
	tmpl := msgs[tmplIdx]
	static := make([]bool, len(tmpl))
	seen := make([]int, len(tmpl))
	for i := range static {
		static[i] = true
	}
	for mi, m := range msgs {
		if mi == tmplIdx {
			for i := range tmpl {
				seen[i]++
			}
			continue
		}
		al := Align(tmpl, m)
		covered := make([]bool, len(tmpl))
		for k := range al.PairsA {
			ti, mi2 := al.PairsA[k], al.PairsB[k]
			if ti < 0 {
				continue
			}
			if mi2 < 0 {
				// Gap in the other message: the column is not universal.
				static[ti] = false
				continue
			}
			covered[ti] = true
			seen[ti]++
			if tmpl[ti] != m[mi2] {
				static[ti] = false
			}
		}
		for i, c := range covered {
			if !c {
				static[i] = false
			}
		}
	}
	var bounds []int
	for i := range tmpl {
		if i == 0 || static[i] != static[i-1] {
			bounds = append(bounds, i)
		}
	}
	return &FieldModel{Template: tmplIdx, Static: static, Boundaries: bounds}
}

// FieldScore compares predicted field boundaries against the ground
// truth with a positional tolerance of zero (exact offsets).
type FieldScore struct {
	Predicted int
	Truth     int
	Hits      int
	Precision float64
	Recall    float64
	F1        float64
}

// ScoreFields evaluates predicted boundary offsets against true ones.
func ScoreFields(predicted, truth []int) FieldScore {
	ps := map[int]bool{}
	for _, p := range predicted {
		ps[p] = true
	}
	ts := map[int]bool{}
	for _, t := range truth {
		ts[t] = true
	}
	hits := 0
	for p := range ps {
		if ts[p] {
			hits++
		}
	}
	s := FieldScore{Predicted: len(ps), Truth: len(ts), Hits: hits}
	if len(ps) > 0 {
		s.Precision = float64(hits) / float64(len(ps))
	}
	if len(ts) > 0 {
		s.Recall = float64(hits) / float64(len(ts))
	}
	if s.Precision+s.Recall > 0 {
		s.F1 = 2 * s.Precision * s.Recall / (s.Precision + s.Recall)
	}
	return s
}

// Analysis is the end-to-end result of running the PRE baseline on a
// labeled trace.
type Analysis struct {
	Classification ClassificationScore
	// FieldF1 is the boundary-inference F1 averaged over clusters
	// (template messages), weighted by cluster size.
	FieldF1 float64
}

// Run executes the full pipeline: similarity, clustering at threshold,
// per-cluster field inference, scored against labels and true boundary
// offsets (truth[i] lists the field-start offsets of message i).
func Run(msgs [][]byte, labels []int, truth [][]int, threshold float64) Analysis {
	sim := SimilarityMatrix(msgs)
	clusters := Cluster(sim, threshold)
	res := Analysis{Classification: ScoreClassification(clusters, labels)}
	totalW := 0
	sumF1 := 0.0
	for _, c := range clusters {
		sub := make([][]byte, len(c))
		for k, i := range c {
			sub[k] = msgs[i]
		}
		model := InferFields(sub)
		tmplMsg := c[model.Template]
		score := ScoreFields(model.Boundaries, truth[tmplMsg])
		sumF1 += score.F1 * float64(len(c))
		totalW += len(c)
	}
	if totalW > 0 {
		res.FieldF1 = sumF1 / float64(totalW)
	}
	return res
}
