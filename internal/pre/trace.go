package pre

import (
	"protoobf/internal/graph"
	"protoobf/internal/protocols/modbus"
	"protoobf/internal/rng"
	"protoobf/internal/wire"
)

// ModbusTrace generates the labeled Modbus capture of the resilience
// assessment (paper §VII-D): perType samples of four request types
// (Read Coils, Read Holding Registers, Write Single Coil, Write Multiple
// Registers) with realistic low-entropy field values, serialized through
// graph g. It returns the raw messages, their type labels and the true
// field-start offsets of every message.
func ModbusTrace(g *graph.Graph, r *rng.R, perType int) (msgs [][]byte, labels []int, truth [][]int) {
	fcs := []int{modbus.FcReadCoils, modbus.FcReadHolding, modbus.FcWriteCoil, modbus.FcWriteRegs}
	for li, fc := range fcs {
		for k := 0; k < perType; k++ {
			req := modbus.Request{
				TxID: uint16(r.Intn(1 << 8)), // low transaction ids, as in short captures
				Unit: uint8(1 + r.Intn(4)),
				Fc:   fc,
				Addr: uint16(r.Intn(64)),
			}
			switch fc {
			case modbus.FcReadCoils, modbus.FcReadHolding:
				req.Qty = uint16(1 + r.Intn(12))
			case modbus.FcWriteCoil:
				if r.Intn(2) == 0 {
					req.Val = 0xFF00
				}
			case modbus.FcWriteRegs:
				req.Regs = make([]uint16, 2+r.Intn(3))
				for i := range req.Regs {
					req.Regs[i] = uint16(r.Intn(256)) // low register values
				}
			}
			m, err := modbus.BuildRequest(g, r, req)
			if err != nil {
				// The graphs used here are validated; a build failure is
				// a programming error in the caller.
				panic(err)
			}
			data, spans, err := wire.SerializeWithSpans(m)
			if err != nil {
				panic(err)
			}
			bounds := make([]int, 0, len(spans))
			for _, sp := range spans {
				bounds = append(bounds, sp.Start)
			}
			msgs = append(msgs, data)
			labels = append(labels, li)
			truth = append(truth, bounds)
		}
	}
	return msgs, labels, truth
}
