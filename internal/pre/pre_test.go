package pre

import (
	"testing"

	"protoobf/internal/protocols/modbus"
	"protoobf/internal/rng"
	"protoobf/internal/transform"
)

func TestAlignIdentical(t *testing.T) {
	a := []byte("hello world")
	al := Align(a, a)
	if al.Matches != len(a) {
		t.Errorf("matches = %d, want %d", al.Matches, len(a))
	}
	if s := al.Similarity(len(a), len(a)); s != 1 {
		t.Errorf("similarity = %v, want 1", s)
	}
}

func TestAlignDisjoint(t *testing.T) {
	al := Align([]byte("aaaa"), []byte("bbbb"))
	if al.Matches != 0 {
		t.Errorf("matches = %d, want 0", al.Matches)
	}
	if s := al.Similarity(4, 4); s != 0 {
		t.Errorf("similarity = %v, want 0", s)
	}
}

func TestAlignGap(t *testing.T) {
	// "abcdef" vs "abdef": one deletion, five matches.
	al := Align([]byte("abcdef"), []byte("abdef"))
	if al.Matches != 5 {
		t.Errorf("matches = %d, want 5", al.Matches)
	}
	if len(al.PairsA) != len(al.PairsB) {
		t.Error("pair slices differ in length")
	}
	// The alignment must be monotonically increasing on both sides.
	last := -1
	for _, p := range al.PairsA {
		if p >= 0 {
			if p <= last {
				t.Fatalf("PairsA not increasing: %v", al.PairsA)
			}
			last = p
		}
	}
}

func TestAlignEmpty(t *testing.T) {
	al := Align(nil, []byte("xy"))
	if al.Matches != 0 || len(al.PairsA) != 2 {
		t.Errorf("empty alignment: %+v", al)
	}
	al = Align(nil, nil)
	if al.Similarity(0, 0) != 1 {
		t.Error("two empty messages should be identical")
	}
}

func TestClusterSeparatesTypes(t *testing.T) {
	msgs := [][]byte{
		[]byte("GET /a HTTP/1.1"),
		[]byte("GET /bb HTTP/1.1"),
		[]byte("\x00\x01\x00\x00\x00\x06\x11\x03\x00\x6B\x00\x03"),
		[]byte("\x00\x02\x00\x00\x00\x06\x11\x03\x00\x10\x00\x01"),
		[]byte("GET /ccc HTTP/1.1"),
	}
	labels := []int{0, 0, 1, 1, 0}
	sim := SimilarityMatrix(msgs)
	clusters := Cluster(sim, 0.5)
	score := ScoreClassification(clusters, labels)
	if score.Accuracy != 1.0 {
		t.Errorf("accuracy = %v, clusters = %v", score.Accuracy, clusters)
	}
	if score.Clusters != 2 {
		t.Errorf("clusters = %d, want 2", score.Clusters)
	}
}

func TestClusterThresholdOne(t *testing.T) {
	msgs := [][]byte{[]byte("aa"), []byte("bb"), []byte("aa")}
	clusters := Cluster(SimilarityMatrix(msgs), 1.0)
	// Only identical messages merge at threshold 1.
	if len(clusters) != 2 {
		t.Errorf("clusters = %v", clusters)
	}
}

func TestInferFieldsStaticDynamic(t *testing.T) {
	// 4-byte static header, 2 dynamic bytes, static trailer.
	msgs := [][]byte{
		[]byte("HEADxyTAIL"),
		[]byte("HEADabTAIL"),
		[]byte("HEADcdTAIL"),
	}
	model := InferFields(msgs)
	// Expect boundaries at 0 (static start), 4 (dynamic), 6 (static).
	want := []int{0, 4, 6}
	if len(model.Boundaries) != len(want) {
		t.Fatalf("boundaries = %v, want %v", model.Boundaries, want)
	}
	for i := range want {
		if model.Boundaries[i] != want[i] {
			t.Fatalf("boundaries = %v, want %v", model.Boundaries, want)
		}
	}
}

func TestScoreFields(t *testing.T) {
	s := ScoreFields([]int{0, 4, 6}, []int{0, 4, 8})
	if s.Hits != 2 || s.Predicted != 3 || s.Truth != 3 {
		t.Errorf("score = %+v", s)
	}
	if s.F1 <= 0.6 || s.F1 >= 0.7 {
		t.Errorf("f1 = %v, want 2/3", s.F1)
	}
	if ScoreFields(nil, []int{1}).F1 != 0 {
		t.Error("empty prediction should score 0")
	}
}

// TestResilienceModbus is the §VII-D experiment in miniature: the PRE
// baseline classifies plain Modbus traffic near-perfectly and infers many
// true boundaries, while one obfuscation per node degrades both sharply.
func TestResilienceModbus(t *testing.T) {
	reqG, err := modbus.RequestGraph()
	if err != nil {
		t.Fatal(err)
	}
	r := rng.New(1234)
	const threshold = 0.5

	// Plain protocol.
	msgs, labels, truth := ModbusTrace(reqG, r, 8)
	plain := Run(msgs, labels, truth, threshold)
	t.Logf("plain: clusters=%d pairwiseF1=%.2f fieldF1=%.2f",
		plain.Classification.Clusters, plain.Classification.PairwiseF1, plain.FieldF1)
	// Modbus request types differ by a single function-code byte, so
	// even the plain classification is imperfect (alignment confuses the
	// read requests, which share 11 of 12 bytes); what matters for the
	// resilience claim is the sharp degradation measured below.
	if plain.Classification.PairwiseF1 < 0.4 {
		t.Errorf("plain pairwise F1 %.2f below 0.4", plain.Classification.PairwiseF1)
	}

	// One obfuscation per node.
	res, err := transform.Obfuscate(reqG, transform.Options{PerNode: 1}, rng.New(99))
	if err != nil {
		t.Fatal(err)
	}
	omsgs, olabels, otruth := ModbusTrace(res.Graph, r, 8)
	obf := Run(omsgs, olabels, otruth, threshold)
	t.Logf("obf1: clusters=%d pairwiseF1=%.2f fieldF1=%.2f",
		obf.Classification.Clusters, obf.Classification.PairwiseF1, obf.FieldF1)

	if obf.Classification.PairwiseF1 > plain.Classification.PairwiseF1-0.3 {
		t.Errorf("classification did not degrade sharply: %.2f vs plain %.2f",
			obf.Classification.PairwiseF1, plain.Classification.PairwiseF1)
	}
	if obf.FieldF1 > plain.FieldF1 {
		t.Errorf("field inference improved under obfuscation: %.2f > %.2f", obf.FieldF1, plain.FieldF1)
	}
}
