package pre

// Cluster groups messages by UPGMA hierarchical clustering (average
// linkage) on the similarity matrix, merging until no pair of clusters
// exceeds the similarity threshold. This is the classification step of
// alignment-based PRE tools (paper §II-A): its quality drives everything
// downstream, which is exactly why the obfuscation targets it.
func Cluster(sim [][]float64, threshold float64) [][]int {
	n := len(sim)
	if n == 0 {
		return nil
	}
	clusters := make([][]int, n)
	for i := range clusters {
		clusters[i] = []int{i}
	}
	// Average linkage between two clusters.
	linkage := func(a, b []int) float64 {
		total := 0.0
		for _, i := range a {
			for _, j := range b {
				total += sim[i][j]
			}
		}
		return total / float64(len(a)*len(b))
	}
	for len(clusters) > 1 {
		bi, bj, best := -1, -1, threshold
		for i := 0; i < len(clusters); i++ {
			for j := i + 1; j < len(clusters); j++ {
				if l := linkage(clusters[i], clusters[j]); l >= best {
					bi, bj, best = i, j, l
				}
			}
		}
		if bi < 0 {
			break
		}
		merged := append(append([]int{}, clusters[bi]...), clusters[bj]...)
		next := make([][]int, 0, len(clusters)-1)
		for k, c := range clusters {
			if k != bi && k != bj {
				next = append(next, c)
			}
		}
		clusters = append(next, merged)
	}
	return clusters
}

// ClassificationScore evaluates clusters against ground-truth labels:
// each cluster votes its majority label; accuracy is the fraction of
// messages whose cluster vote matches their true label. PairwiseF1 is the
// F1 over message pairs (same-cluster vs same-type), which penalizes both
// over-clustering (each message alone: perfect "accuracy", zero recall)
// and under-clustering — the two failure modes the obfuscation provokes
// (paper §II-C3).
type ClassificationScore struct {
	Clusters   int
	TrueTypes  int
	Accuracy   float64
	PairwiseF1 float64
}

// ScoreClassification computes the score of a clustering.
func ScoreClassification(clusters [][]int, labels []int) ClassificationScore {
	types := map[int]bool{}
	for _, l := range labels {
		types[l] = true
	}
	correct := 0
	for _, c := range clusters {
		votes := map[int]int{}
		for _, i := range c {
			votes[labels[i]]++
		}
		bestLabel, bestCount := 0, -1
		for l, cnt := range votes {
			if cnt > bestCount {
				bestLabel, bestCount = l, cnt
			}
		}
		for _, i := range c {
			if labels[i] == bestLabel {
				correct++
			}
		}
	}
	acc := 0.0
	if len(labels) > 0 {
		acc = float64(correct) / float64(len(labels))
	}
	return ClassificationScore{
		Clusters:   len(clusters),
		TrueTypes:  len(types),
		Accuracy:   acc,
		PairwiseF1: pairwiseF1(clusters, labels),
	}
}

// pairwiseF1 scores clustering as a pair-classification problem: a pair
// of messages is positive when it shares a true type; predicted positive
// when it shares a cluster.
func pairwiseF1(clusters [][]int, labels []int) float64 {
	clusterOf := make([]int, len(labels))
	for ci, c := range clusters {
		for _, i := range c {
			clusterOf[i] = ci
		}
	}
	var tp, fp, fn float64
	for i := 0; i < len(labels); i++ {
		for j := i + 1; j < len(labels); j++ {
			sameType := labels[i] == labels[j]
			sameCluster := clusterOf[i] == clusterOf[j]
			switch {
			case sameType && sameCluster:
				tp++
			case !sameType && sameCluster:
				fp++
			case sameType && !sameCluster:
				fn++
			}
		}
	}
	if tp == 0 {
		return 0
	}
	prec := tp / (tp + fp)
	rec := tp / (tp + fn)
	return 2 * prec * rec / (prec + rec)
}
