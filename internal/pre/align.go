// Package pre implements a classic network-trace protocol reverse
// engineering (PRE) baseline in the style of the PI project and Netzob
// (paper §II-B): sequence alignment for message similarity, hierarchical
// clustering for message-type classification, and alignment-based field
// inference. It is the measurable stand-in for the paper's §VII-D expert
// study: scoring this tool on plain vs obfuscated traces quantifies the
// resilience of the obfuscation.
package pre

// Needleman–Wunsch scoring parameters (match/mismatch/gap), the classic
// values used by bioinformatics-inspired PRE tools.
const (
	scoreMatch    = 1
	scoreMismatch = -1
	scoreGap      = -1
)

// Alignment is the result of a global pairwise alignment: the aligned
// index pairs and the similarity.
type Alignment struct {
	// PairsA[i] / PairsB[i] are matched positions; -1 marks a gap.
	PairsA, PairsB []int
	// Matches counts identical aligned bytes.
	Matches int
	// Score is the raw Needleman–Wunsch score.
	Score int
}

// Similarity returns 2*matches/(len(a)+len(b)) in [0,1].
func (al *Alignment) Similarity(lenA, lenB int) float64 {
	if lenA+lenB == 0 {
		return 1
	}
	return 2 * float64(al.Matches) / float64(lenA+lenB)
}

// Align computes the global alignment of two byte sequences.
func Align(a, b []byte) *Alignment {
	n, m := len(a), len(b)
	// Score matrix, row-major (n+1) x (m+1).
	score := make([]int, (n+1)*(m+1))
	idx := func(i, j int) int { return i*(m+1) + j }
	for i := 1; i <= n; i++ {
		score[idx(i, 0)] = i * scoreGap
	}
	for j := 1; j <= m; j++ {
		score[idx(0, j)] = j * scoreGap
	}
	for i := 1; i <= n; i++ {
		for j := 1; j <= m; j++ {
			d := score[idx(i-1, j-1)]
			if a[i-1] == b[j-1] {
				d += scoreMatch
			} else {
				d += scoreMismatch
			}
			up := score[idx(i-1, j)] + scoreGap
			left := score[idx(i, j-1)] + scoreGap
			best := d
			if up > best {
				best = up
			}
			if left > best {
				best = left
			}
			score[idx(i, j)] = best
		}
	}
	// Traceback.
	al := &Alignment{Score: score[idx(n, m)]}
	var ra, rb []int
	i, j := n, m
	for i > 0 || j > 0 {
		switch {
		case i > 0 && j > 0 && score[idx(i, j)] == score[idx(i-1, j-1)]+matchScore(a[i-1], b[j-1]):
			if a[i-1] == b[j-1] {
				al.Matches++
			}
			ra = append(ra, i-1)
			rb = append(rb, j-1)
			i--
			j--
		case i > 0 && score[idx(i, j)] == score[idx(i-1, j)]+scoreGap:
			ra = append(ra, i-1)
			rb = append(rb, -1)
			i--
		default:
			ra = append(ra, -1)
			rb = append(rb, j-1)
			j--
		}
	}
	// Reverse into forward order.
	for k, l := 0, len(ra)-1; k < l; k, l = k+1, l-1 {
		ra[k], ra[l] = ra[l], ra[k]
		rb[k], rb[l] = rb[l], rb[k]
	}
	al.PairsA, al.PairsB = ra, rb
	return al
}

func matchScore(x, y byte) int {
	if x == y {
		return scoreMatch
	}
	return scoreMismatch
}

// SimilarityMatrix computes pairwise similarities of a message set.
func SimilarityMatrix(msgs [][]byte) [][]float64 {
	n := len(msgs)
	sim := make([][]float64, n)
	for i := range sim {
		sim[i] = make([]float64, n)
		sim[i][i] = 1
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			al := Align(msgs[i], msgs[j])
			s := al.Similarity(len(msgs[i]), len(msgs[j]))
			sim[i][j], sim[j][i] = s, s
		}
	}
	return sim
}
