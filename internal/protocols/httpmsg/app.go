package httpmsg

import (
	"fmt"
	"net"
	"sync"

	"protoobf/internal/graph"
	"protoobf/internal/rng"
	"protoobf/internal/session"
	"protoobf/internal/wire"
)

// Server is the simplified HTTP core application serving the canned
// content of RespondTo through a (possibly obfuscated) protocol library.
// Connections run over the obfuscated session transport
// (internal/session), which frames each message with its dialect epoch.
type Server struct {
	ReqGraph  *graph.Graph
	RespGraph *graph.Graph
	Rng       *rng.R

	mu sync.Mutex
	ln net.Listener
}

// NewServer creates a server.
func NewServer(reqG, respG *graph.Graph, seed int64) *Server {
	return &Server{ReqGraph: reqG, RespGraph: respG, Rng: rng.New(seed)}
}

// Listen binds addr and serves until Close. It returns the bound address.
func (s *Server) Listen(addr string) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", err
	}
	s.mu.Lock()
	s.ln = ln
	s.mu.Unlock()
	go session.Serve(ln, s.serveSession)
	return ln.Addr().String(), nil
}

// Close stops the listener.
func (s *Server) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.ln == nil {
		return nil
	}
	err := s.ln.Close()
	s.ln = nil
	return err
}

func (s *Server) serveSession(t *session.Transport) {
	s.mu.Lock()
	r := rng.New(s.Rng.Int63())
	s.mu.Unlock()
	_ = t.ServeLoop(func(req []byte) ([]byte, error) {
		return s.Handle(req, r)
	})
}

// Handle processes one serialized request and returns the serialized
// response.
func (s *Server) Handle(data []byte, r *rng.R) ([]byte, error) {
	msg, err := wire.Parse(s.ReqGraph, data, r)
	if err != nil {
		return nil, fmt.Errorf("parse request: %w", err)
	}
	req, err := ExtractRequest(msg)
	if err != nil {
		return nil, fmt.Errorf("extract request: %w", err)
	}
	out, err := BuildResponse(s.RespGraph, r, RespondTo(req))
	if err != nil {
		return nil, fmt.Errorf("build response: %w", err)
	}
	return wire.Serialize(out)
}

// Client is the requesting side of the core application.
type Client struct {
	ReqGraph  *graph.Graph
	RespGraph *graph.Graph
	Rng       *rng.R
	conn      net.Conn
	sess      *session.Transport
}

// Dial connects to a server.
func Dial(addr string, reqG, respG *graph.Graph, seed int64) (*Client, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	return &Client{
		ReqGraph: reqG, RespGraph: respG, Rng: rng.New(seed),
		conn: conn, sess: session.NewTransport(conn),
	}, nil
}

// Close terminates the connection.
func (c *Client) Close() error {
	err := c.conn.Close()
	c.sess.Release()
	return err
}

// Do sends a request and returns the decoded response.
func (c *Client) Do(req Request) (Response, error) {
	var resp Response
	m, err := BuildRequest(c.ReqGraph, c.Rng, req)
	if err != nil {
		return resp, err
	}
	data, err := wire.Serialize(m)
	if err != nil {
		return resp, err
	}
	raw, _, err := c.sess.Roundtrip(data)
	if err != nil {
		return resp, err
	}
	back, err := wire.Parse(c.RespGraph, raw, c.Rng)
	if err != nil {
		return resp, err
	}
	return ExtractResponse(back)
}
