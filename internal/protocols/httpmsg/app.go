package httpmsg

import (
	"fmt"
	"net"
	"sync"

	"protoobf/internal/frame"
	"protoobf/internal/graph"
	"protoobf/internal/rng"
	"protoobf/internal/wire"
)

// Server is the simplified HTTP core application serving the canned
// content of RespondTo through a (possibly obfuscated) protocol library.
type Server struct {
	ReqGraph  *graph.Graph
	RespGraph *graph.Graph
	Rng       *rng.R

	mu sync.Mutex
	ln net.Listener
}

// NewServer creates a server.
func NewServer(reqG, respG *graph.Graph, seed int64) *Server {
	return &Server{ReqGraph: reqG, RespGraph: respG, Rng: rng.New(seed)}
}

// Listen binds addr and serves until Close. It returns the bound address.
func (s *Server) Listen(addr string) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", err
	}
	s.mu.Lock()
	s.ln = ln
	s.mu.Unlock()
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			go s.serveConn(conn)
		}
	}()
	return ln.Addr().String(), nil
}

// Close stops the listener.
func (s *Server) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.ln == nil {
		return nil
	}
	err := s.ln.Close()
	s.ln = nil
	return err
}

func (s *Server) serveConn(conn net.Conn) {
	defer conn.Close()
	s.mu.Lock()
	r := rng.New(s.Rng.Int63())
	s.mu.Unlock()
	for {
		data, err := frame.Read(conn)
		if err != nil {
			return
		}
		reply, err := s.Handle(data, r)
		if err != nil {
			return
		}
		if err := frame.Write(conn, reply); err != nil {
			return
		}
	}
}

// Handle processes one serialized request and returns the serialized
// response.
func (s *Server) Handle(data []byte, r *rng.R) ([]byte, error) {
	msg, err := wire.Parse(s.ReqGraph, data, r)
	if err != nil {
		return nil, fmt.Errorf("parse request: %w", err)
	}
	req, err := ExtractRequest(msg)
	if err != nil {
		return nil, fmt.Errorf("extract request: %w", err)
	}
	out, err := BuildResponse(s.RespGraph, r, RespondTo(req))
	if err != nil {
		return nil, fmt.Errorf("build response: %w", err)
	}
	return wire.Serialize(out)
}

// Client is the requesting side of the core application.
type Client struct {
	ReqGraph  *graph.Graph
	RespGraph *graph.Graph
	Rng       *rng.R
	conn      net.Conn
}

// Dial connects to a server.
func Dial(addr string, reqG, respG *graph.Graph, seed int64) (*Client, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	return &Client{ReqGraph: reqG, RespGraph: respG, Rng: rng.New(seed), conn: conn}, nil
}

// Close terminates the connection.
func (c *Client) Close() error { return c.conn.Close() }

// Do sends a request and returns the decoded response.
func (c *Client) Do(req Request) (Response, error) {
	var resp Response
	m, err := BuildRequest(c.ReqGraph, c.Rng, req)
	if err != nil {
		return resp, err
	}
	data, err := wire.Serialize(m)
	if err != nil {
		return resp, err
	}
	if err := frame.Write(c.conn, data); err != nil {
		return resp, err
	}
	raw, err := frame.Read(c.conn)
	if err != nil {
		return resp, err
	}
	back, err := wire.Parse(c.RespGraph, raw, c.Rng)
	if err != nil {
		return resp, err
	}
	return ExtractResponse(back)
}
