package httpmsg

import (
	"bytes"
	"fmt"
	"reflect"
	"strings"
	"testing"

	"protoobf/internal/rng"
	"protoobf/internal/transform"
	"protoobf/internal/wire"
)

func TestSpecsParse(t *testing.T) {
	if _, err := RequestGraph(); err != nil {
		t.Fatalf("request spec: %v", err)
	}
	if _, err := ResponseGraph(); err != nil {
		t.Fatalf("response spec: %v", err)
	}
}

// TestPlainWireFormat pins the non-obfuscated serialization to real HTTP.
func TestPlainWireFormat(t *testing.T) {
	g, err := RequestGraph()
	if err != nil {
		t.Fatal(err)
	}
	r := rng.New(1)
	req := Request{
		Method: "GET", URI: "/index.html", Version: "HTTP/1.1",
		Headers: []Header{{"Host", "example.com"}, {"Accept", "text/html"}},
	}
	m, err := BuildRequest(g, r, req)
	if err != nil {
		t.Fatal(err)
	}
	data, err := wire.Serialize(m)
	if err != nil {
		t.Fatal(err)
	}
	want := "GET /index.html HTTP/1.1\r\nHost: example.com\r\nAccept: text/html\r\n\r\n"
	if string(data) != want {
		t.Fatalf("wire = %q, want %q", data, want)
	}

	// POST with body.
	req = Request{
		Method: "POST", URI: "/submit", Version: "HTTP/1.1",
		Headers: []Header{{"Host", "example.com"}},
		Body:    []byte("a=1&b=2"),
	}
	m, err = BuildRequest(g, r, req)
	if err != nil {
		t.Fatal(err)
	}
	data, err = wire.Serialize(m)
	if err != nil {
		t.Fatal(err)
	}
	want = "POST /submit HTTP/1.1\r\nHost: example.com\r\n\r\na=1&b=2"
	if string(data) != want {
		t.Fatalf("wire = %q, want %q", data, want)
	}
}

func TestResponseWireFormat(t *testing.T) {
	g, err := ResponseGraph()
	if err != nil {
		t.Fatal(err)
	}
	r := rng.New(1)
	resp := Response{
		Version: "HTTP/1.1", Status: 200, Reason: "OK",
		Headers: []Header{{"Server", "protoobf/1.0"}},
		Body:    []byte("hello"),
	}
	m, err := BuildResponse(g, r, resp)
	if err != nil {
		t.Fatal(err)
	}
	data, err := wire.Serialize(m)
	if err != nil {
		t.Fatal(err)
	}
	want := "HTTP/1.1 200 OK\r\nServer: protoobf/1.0\r\n\r\nhello"
	if string(data) != want {
		t.Fatalf("wire = %q, want %q", data, want)
	}
}

func normalizeReq(r Request) Request {
	if len(r.Headers) == 0 {
		r.Headers = nil
	}
	if len(r.Body) == 0 {
		r.Body = nil
	}
	return r
}

func normalizeResp(r Response) Response {
	if len(r.Headers) == 0 {
		r.Headers = nil
	}
	if len(r.Body) == 0 {
		r.Body = nil
	}
	return r
}

func TestRoundTripPlain(t *testing.T) {
	reqG, err := RequestGraph()
	if err != nil {
		t.Fatal(err)
	}
	respG, err := ResponseGraph()
	if err != nil {
		t.Fatal(err)
	}
	r := rng.New(5)
	for i := 0; i < 50; i++ {
		req := RandomRequest(r)
		m, err := BuildRequest(reqG, r, req)
		if err != nil {
			t.Fatal(err)
		}
		data, err := wire.Serialize(m)
		if err != nil {
			t.Fatal(err)
		}
		back, err := wire.Parse(reqG, data, r)
		if err != nil {
			t.Fatalf("parse %q: %v", data, err)
		}
		got, err := ExtractRequest(back)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(normalizeReq(req), normalizeReq(got)) {
			t.Fatalf("request mismatch:\n in %+v\nout %+v", req, got)
		}

		resp := RandomResponse(r)
		rm, err := BuildResponse(respG, r, resp)
		if err != nil {
			t.Fatal(err)
		}
		rdata, err := wire.Serialize(rm)
		if err != nil {
			t.Fatal(err)
		}
		rback, err := wire.Parse(respG, rdata, r)
		if err != nil {
			t.Fatalf("parse %q: %v", rdata, err)
		}
		rgot, err := ExtractResponse(rback)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(normalizeResp(resp), normalizeResp(rgot)) {
			t.Fatalf("response mismatch:\n in %+v\nout %+v", resp, rgot)
		}
	}
}

func TestObfuscatedRoundTrip(t *testing.T) {
	for perNode := 1; perNode <= 3; perNode++ {
		perNode := perNode
		t.Run(fmt.Sprintf("perNode=%d", perNode), func(t *testing.T) {
			reqG, err := RequestGraph()
			if err != nil {
				t.Fatal(err)
			}
			respG, err := ResponseGraph()
			if err != nil {
				t.Fatal(err)
			}
			r := rng.New(int64(200 + perNode))
			reqRes, err := transform.Obfuscate(reqG, transform.Options{PerNode: perNode}, r)
			if err != nil {
				t.Fatal(err)
			}
			respRes, err := transform.Obfuscate(respG, transform.Options{PerNode: perNode}, r)
			if err != nil {
				t.Fatal(err)
			}
			for i := 0; i < 20; i++ {
				req := RandomRequest(r)
				m, err := BuildRequest(reqRes.Graph, r, req)
				if err != nil {
					t.Fatalf("build: %v\ntrace:\n%s", err, reqRes.Trace())
				}
				data, err := wire.Serialize(m)
				if err != nil {
					t.Fatalf("serialize: %v\ntrace:\n%s", err, reqRes.Trace())
				}
				back, err := wire.Parse(reqRes.Graph, data, r)
				if err != nil {
					t.Fatalf("parse: %v\ntrace:\n%s", err, reqRes.Trace())
				}
				got, err := ExtractRequest(back)
				if err != nil {
					t.Fatal(err)
				}
				if !reflect.DeepEqual(normalizeReq(req), normalizeReq(got)) {
					t.Fatalf("request mismatch:\n in %+v\nout %+v\ntrace:\n%s", req, got, reqRes.Trace())
				}

				resp := RandomResponse(r)
				rm, err := BuildResponse(respRes.Graph, r, resp)
				if err != nil {
					t.Fatalf("resp build: %v\ntrace:\n%s", err, respRes.Trace())
				}
				rdata, err := wire.Serialize(rm)
				if err != nil {
					t.Fatalf("resp serialize: %v\ntrace:\n%s", err, respRes.Trace())
				}
				rback, err := wire.Parse(respRes.Graph, rdata, r)
				if err != nil {
					t.Fatalf("resp parse: %v\ntrace:\n%s", err, respRes.Trace())
				}
				rgot, err := ExtractResponse(rback)
				if err != nil {
					t.Fatal(err)
				}
				if !reflect.DeepEqual(normalizeResp(resp), normalizeResp(rgot)) {
					t.Fatalf("response mismatch:\n in %+v\nout %+v", resp, rgot)
				}
			}
		})
	}
}

// TestObfuscatedWireHidesKeywords: with one obfuscation per node, the
// GET keyword region should usually not survive verbatim at the start of
// the message (classification challenge of table II). We require that at
// least one of several seeds moves or transforms it.
func TestObfuscatedWireHidesKeywords(t *testing.T) {
	reqG, err := RequestGraph()
	if err != nil {
		t.Fatal(err)
	}
	moved := false
	for seed := int64(0); seed < 5 && !moved; seed++ {
		r := rng.New(300 + seed)
		res, err := transform.Obfuscate(reqG, transform.Options{PerNode: 1}, r)
		if err != nil {
			t.Fatal(err)
		}
		req := Request{Method: "GET", URI: "/x", Version: "HTTP/1.1",
			Headers: []Header{{"Host", "h"}}}
		m, err := BuildRequest(res.Graph, r, req)
		if err != nil {
			t.Fatal(err)
		}
		data, err := wire.Serialize(m)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.HasPrefix(data, []byte("GET ")) {
			moved = true
		}
	}
	if !moved {
		t.Error("across 5 seeds, the obfuscated request always starts with the plain method keyword")
	}
}

func TestClientServerTCP(t *testing.T) {
	reqG, err := RequestGraph()
	if err != nil {
		t.Fatal(err)
	}
	respG, err := ResponseGraph()
	if err != nil {
		t.Fatal(err)
	}
	r := rng.New(77)
	reqRes, err := transform.Obfuscate(reqG, transform.Options{PerNode: 2}, r)
	if err != nil {
		t.Fatal(err)
	}
	respRes, err := transform.Obfuscate(respG, transform.Options{PerNode: 2}, r)
	if err != nil {
		t.Fatal(err)
	}
	srv := NewServer(reqRes.Graph, respRes.Graph, 1)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	cli, err := Dial(addr, reqRes.Graph, respRes.Graph, 2)
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()

	resp, err := cli.Do(Request{Method: "GET", URI: "/api/v1/items", Version: "HTTP/1.1",
		Headers: []Header{{"Host", "example.com"}}})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Status != 200 || !strings.Contains(string(resp.Body), "items") {
		t.Fatalf("GET /api -> %d %q", resp.Status, resp.Body)
	}
	resp, err = cli.Do(Request{Method: "POST", URI: "/submit", Version: "HTTP/1.1",
		Headers: []Header{{"Host", "example.com"}}, Body: []byte("xyz")})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Status != 201 || !strings.Contains(string(resp.Body), "3 bytes") {
		t.Fatalf("POST -> %d %q", resp.Status, resp.Body)
	}
	resp, err = cli.Do(Request{Method: "GET", URI: "/missing", Version: "HTTP/1.1",
		Headers: []Header{{"Host", "example.com"}}})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Status != 404 {
		t.Fatalf("GET /missing -> %d", resp.Status)
	}
}
