// Package httpmsg provides the simplified HTTP/1.1 message-format
// specification used in the paper's evaluation (§VII): request line,
// repeated headers, optional body — the text-protocol side of the model,
// exercising Optional fields, Repetition fields and Delimited boundaries.
//
// As in the paper, the core application does not enforce semantic
// consistency of header keywords; that is the server's concern, not the
// parser's (§VII).
package httpmsg

import (
	"fmt"
	"strings"

	"protoobf/internal/graph"
	"protoobf/internal/msgtree"
	"protoobf/internal/rng"
	"protoobf/internal/spec"
)

// RequestSpec is the simplified HTTP request message format.
const RequestSpec = `
protocol http_request;
root seq request end {
    bytes method delim " " min 3;
    bytes uri delim " " min 1;
    bytes version delim "\r\n" min 8;
    repeat headers until "\r\n" {
        seq header {
            bytes hname delim ": " min 1;
            bytes hvalue delim "\r\n" min 1;
        }
    }
    optional body when method == "POST" { bytes payload end; }
}
`

// ResponseSpec is the simplified HTTP response message format. The status
// code is an ASCII-encoded integer (EncASCII).
const ResponseSpec = `
protocol http_response;
root seq response end {
    bytes rversion delim " " min 8;
    ascii status delim " ";
    bytes reason delim "\r\n" min 2;
    repeat rheaders until "\r\n" {
        seq rheader {
            bytes rhname delim ": " min 1;
            bytes rhvalue delim "\r\n" min 1;
        }
    }
    bytes rbody end;
}
`

// RequestGraph parses the request specification.
func RequestGraph() (*graph.Graph, error) { return spec.Parse(RequestSpec) }

// ResponseGraph parses the response specification.
func ResponseGraph() (*graph.Graph, error) { return spec.Parse(ResponseSpec) }

// Header is one name/value pair.
type Header struct {
	Name  string
	Value string
}

// Request is the logical content of a simplified HTTP request.
type Request struct {
	Method  string
	URI     string
	Version string
	Headers []Header
	// Body is serialized only for POST requests (the spec's presence
	// predicate).
	Body []byte
}

// Response is the logical content of a simplified HTTP response.
type Response struct {
	Version string
	Status  uint64
	Reason  string
	Headers []Header
	Body    []byte
}

// BuildRequest constructs the message AST of req on graph g.
func BuildRequest(g *graph.Graph, r *rng.R, req Request) (*msgtree.Message, error) {
	m := msgtree.New(g, r)
	s := m.Scope()
	if err := s.SetString("method", req.Method); err != nil {
		return nil, err
	}
	if err := s.SetString("uri", req.URI); err != nil {
		return nil, err
	}
	if err := s.SetString("version", req.Version); err != nil {
		return nil, err
	}
	for _, h := range req.Headers {
		hs, err := s.Add("headers")
		if err != nil {
			return nil, err
		}
		if err := hs.SetString("hname", h.Name); err != nil {
			return nil, err
		}
		if err := hs.SetString("hvalue", h.Value); err != nil {
			return nil, err
		}
	}
	if req.Method == "POST" {
		bs, err := s.Enable("body")
		if err != nil {
			return nil, err
		}
		if err := bs.SetBytes("payload", req.Body); err != nil {
			return nil, err
		}
	}
	return m, nil
}

// ExtractRequest recovers the logical request from a parsed message.
func ExtractRequest(m *msgtree.Message) (Request, error) {
	s := m.Scope()
	var req Request
	get := func(name string) (string, error) {
		b, err := s.GetBytes(name)
		return string(b), err
	}
	var err error
	if req.Method, err = get("method"); err != nil {
		return req, err
	}
	if req.URI, err = get("uri"); err != nil {
		return req, err
	}
	if req.Version, err = get("version"); err != nil {
		return req, err
	}
	items, err := s.Items("headers")
	if err != nil {
		return req, err
	}
	for _, h := range items {
		name, err := h.GetBytes("hname")
		if err != nil {
			return req, err
		}
		val, err := h.GetBytes("hvalue")
		if err != nil {
			return req, err
		}
		req.Headers = append(req.Headers, Header{Name: string(name), Value: string(val)})
	}
	present, err := s.Present("body")
	if err != nil {
		return req, err
	}
	if present {
		bs, err := s.Enable("body")
		if err != nil {
			return req, err
		}
		if req.Body, err = bs.GetBytes("payload"); err != nil {
			return req, err
		}
	}
	return req, nil
}

// BuildResponse constructs the message AST of resp on graph g.
func BuildResponse(g *graph.Graph, r *rng.R, resp Response) (*msgtree.Message, error) {
	m := msgtree.New(g, r)
	s := m.Scope()
	if err := s.SetString("rversion", resp.Version); err != nil {
		return nil, err
	}
	if err := s.SetUint("status", resp.Status); err != nil {
		return nil, err
	}
	if err := s.SetString("reason", resp.Reason); err != nil {
		return nil, err
	}
	for _, h := range resp.Headers {
		hs, err := s.Add("rheaders")
		if err != nil {
			return nil, err
		}
		if err := hs.SetString("rhname", h.Name); err != nil {
			return nil, err
		}
		if err := hs.SetString("rhvalue", h.Value); err != nil {
			return nil, err
		}
	}
	if err := s.SetBytes("rbody", resp.Body); err != nil {
		return nil, err
	}
	return m, nil
}

// ExtractResponse recovers the logical response from a parsed message.
func ExtractResponse(m *msgtree.Message) (Response, error) {
	s := m.Scope()
	var resp Response
	v, err := s.GetBytes("rversion")
	if err != nil {
		return resp, err
	}
	resp.Version = string(v)
	if resp.Status, err = s.GetUint("status"); err != nil {
		return resp, err
	}
	reason, err := s.GetBytes("reason")
	if err != nil {
		return resp, err
	}
	resp.Reason = string(reason)
	items, err := s.Items("rheaders")
	if err != nil {
		return resp, err
	}
	for _, h := range items {
		name, err := h.GetBytes("rhname")
		if err != nil {
			return resp, err
		}
		val, err := h.GetBytes("rhvalue")
		if err != nil {
			return resp, err
		}
		resp.Headers = append(resp.Headers, Header{Name: string(name), Value: string(val)})
	}
	if resp.Body, err = s.GetBytes("rbody"); err != nil {
		return resp, err
	}
	return resp, nil
}

// --- workload generation ----------------------------------------------------

var (
	methods = []string{"GET", "POST", "HEAD", "DELETE", "OPTIONS"}
	paths   = []string{"/", "/index.html", "/api/v1/items", "/static/app.js", "/login", "/search"}
	hdrPool = []Header{
		{"Host", "example.com"},
		{"User-Agent", "protoobf-client/1.0"},
		{"Accept", "text/html"},
		{"Accept-Language", "en-US"},
		{"Cache-Control", "no-cache"},
		{"Connection", "keep-alive"},
		{"X-Request-Id", "0"},
	}
	reasons = map[uint64]string{200: "OK", 201: "Created", 204: "No Content", 301: "Moved", 404: "Not Found", 500: "Server Error"}
)

// RandomRequest draws a request with realistic values. Delimiter bytes
// never appear inside field values, per the protocol contract.
func RandomRequest(r *rng.R) Request {
	method := methods[r.Intn(len(methods))]
	req := Request{
		Method:  method,
		URI:     paths[r.Intn(len(paths))],
		Version: "HTTP/1.1",
	}
	if r.Intn(3) == 0 {
		req.URI += fmt.Sprintf("?q=%d", r.Intn(1000))
	}
	n := 1 + r.Intn(5)
	for i := 0; i < n; i++ {
		h := hdrPool[r.Intn(len(hdrPool))]
		if h.Name == "X-Request-Id" {
			h.Value = fmt.Sprintf("%d", r.Intn(1<<30))
		}
		req.Headers = append(req.Headers, h)
	}
	if method == "POST" {
		req.Body = []byte(fmt.Sprintf("field=%s&value=%d", strings.Repeat("x", 1+r.Intn(32)), r.Intn(1000)))
	}
	return req
}

// RandomResponse draws a response with realistic values.
func RandomResponse(r *rng.R) Response {
	statuses := []uint64{200, 201, 204, 301, 404, 500}
	status := statuses[r.Intn(len(statuses))]
	resp := Response{
		Version: "HTTP/1.1",
		Status:  status,
		Reason:  reasons[status],
	}
	n := 1 + r.Intn(4)
	for i := 0; i < n; i++ {
		resp.Headers = append(resp.Headers, hdrPool[r.Intn(len(hdrPool))])
	}
	if status == 200 {
		resp.Body = []byte("<html><body>" + strings.Repeat("content ", 1+r.Intn(8)) + "</body></html>")
	}
	return resp
}

// RespondTo is the server logic of the core application: a canned
// content map keyed by URI.
func RespondTo(req Request) Response {
	resp := Response{Version: "HTTP/1.1", Headers: []Header{{"Server", "protoobf/1.0"}}}
	switch {
	case req.Method == "POST":
		resp.Status, resp.Reason = 201, "Created"
		resp.Body = []byte("stored " + fmt.Sprint(len(req.Body)) + " bytes")
	case req.URI == "/" || strings.HasPrefix(req.URI, "/index"):
		resp.Status, resp.Reason = 200, "OK"
		resp.Body = []byte("<html><body>welcome</body></html>")
	case strings.HasPrefix(req.URI, "/api/"):
		resp.Status, resp.Reason = 200, "OK"
		resp.Body = []byte(`{"items":[1,2,3]}`)
	default:
		resp.Status, resp.Reason = 404, "Not Found"
		resp.Body = []byte("nothing here")
	}
	return resp
}
