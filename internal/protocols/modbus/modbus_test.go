package modbus

import (
	"bytes"
	"fmt"
	"reflect"
	"testing"

	"protoobf/internal/rng"
	"protoobf/internal/transform"
	"protoobf/internal/wire"
)

func TestSpecsParse(t *testing.T) {
	if _, err := RequestGraph(); err != nil {
		t.Fatalf("request spec: %v", err)
	}
	if _, err := ResponseGraph(); err != nil {
		t.Fatalf("response spec: %v", err)
	}
}

// TestPlainWireFormat pins the non-obfuscated serialization to the real
// Modbus TCP layout (the paper's figure 3 shows exactly this shape).
func TestPlainWireFormat(t *testing.T) {
	g, err := RequestGraph()
	if err != nil {
		t.Fatal(err)
	}
	r := rng.New(1)

	// Read Holding Registers: fc 3, addr 0x006B, qty 3.
	m, err := BuildRequest(g, r, Request{TxID: 0x0001, Unit: 0x11, Fc: 3, Addr: 0x006B, Qty: 3})
	if err != nil {
		t.Fatal(err)
	}
	data, err := wire.Serialize(m)
	if err != nil {
		t.Fatal(err)
	}
	want := []byte{0x00, 0x01, 0x00, 0x00, 0x00, 0x06, 0x11, 0x03, 0x00, 0x6B, 0x00, 0x03}
	if !bytes.Equal(data, want) {
		t.Fatalf("fc3 wire = %x, want %x", data, want)
	}

	// Write Multiple Registers: fc 16, addr 1, regs {0x000A, 0x0102}.
	m, err = BuildRequest(g, r, Request{TxID: 2, Unit: 1, Fc: 16, Addr: 1, Regs: []uint16{0x000A, 0x0102}})
	if err != nil {
		t.Fatal(err)
	}
	data, err = wire.Serialize(m)
	if err != nil {
		t.Fatal(err)
	}
	want = []byte{
		0x00, 0x02, 0x00, 0x00, 0x00, 0x0B, 0x01, 0x10,
		0x00, 0x01, 0x00, 0x02, 0x04, 0x00, 0x0A, 0x01, 0x02,
	}
	if !bytes.Equal(data, want) {
		t.Fatalf("fc16 wire = %x, want %x", data, want)
	}
}

func TestRequestRoundTripAllCodes(t *testing.T) {
	g, err := RequestGraph()
	if err != nil {
		t.Fatal(err)
	}
	r := rng.New(7)
	for _, fc := range FunctionCodes {
		for trial := 0; trial < 10; trial++ {
			req := RandomRequest(r)
			req.Fc = fc
			fixupRequest(&req, r)
			m, err := BuildRequest(g, r, req)
			if err != nil {
				t.Fatalf("fc%d build: %v", fc, err)
			}
			data, err := wire.Serialize(m)
			if err != nil {
				t.Fatalf("fc%d serialize: %v", fc, err)
			}
			back, err := wire.Parse(g, data, r)
			if err != nil {
				t.Fatalf("fc%d parse: %v", fc, err)
			}
			got, err := ExtractRequest(back)
			if err != nil {
				t.Fatalf("fc%d extract: %v", fc, err)
			}
			if !reflect.DeepEqual(normReq(req), normReq(got)) {
				t.Fatalf("fc%d mismatch:\n in %+v\nout %+v", fc, req, got)
			}
		}
	}
}

// fixupRequest regenerates the payload fields after forcing a function
// code onto a randomly drawn request.
func fixupRequest(req *Request, r *rng.R) {
	req.Coils, req.Regs, req.Qty, req.Val = nil, nil, 0, 0
	switch req.Fc {
	case FcReadCoils, FcReadDiscrete, FcReadHolding, FcReadInput:
		req.Qty = uint16(1 + r.Intn(100))
	case FcWriteCoil:
		req.Val = 0xFF00
	case FcWriteReg:
		req.Val = uint16(r.Intn(1 << 16))
	case FcWriteCoils:
		n := 1 + r.Intn(32)
		req.Qty = uint16(n)
		req.Coils = r.Bytes((n + 7) / 8)
	case FcWriteRegs:
		req.Regs = make([]uint16, 1+r.Intn(8))
		for i := range req.Regs {
			req.Regs[i] = uint16(r.Intn(1 << 16))
		}
	}
}

func normReq(r Request) Request {
	if len(r.Coils) == 0 {
		r.Coils = nil
	}
	if len(r.Regs) == 0 {
		r.Regs = nil
	}
	return r
}

func normResp(r Response) Response {
	if len(r.Bits) == 0 {
		r.Bits = nil
	}
	if len(r.Regs) == 0 {
		r.Regs = nil
	}
	return r
}

func TestResponseRoundTripAllCodes(t *testing.T) {
	g, err := ResponseGraph()
	if err != nil {
		t.Fatal(err)
	}
	r := rng.New(9)
	bank := NewBank()
	bank.WriteRegs(0, []uint16{1, 2, 3, 0xFFFF})
	bank.WriteBit(2, true)
	for _, fc := range FunctionCodes {
		req := RandomRequest(r)
		req.Fc = fc
		fixupRequest(&req, r)
		resp := RespondTo(req, bank)
		m, err := BuildResponse(g, r, resp)
		if err != nil {
			t.Fatalf("fc%d build: %v", fc, err)
		}
		data, err := wire.Serialize(m)
		if err != nil {
			t.Fatalf("fc%d serialize: %v", fc, err)
		}
		back, err := wire.Parse(g, data, r)
		if err != nil {
			t.Fatalf("fc%d parse: %v", fc, err)
		}
		got, err := ExtractResponse(back)
		if err != nil {
			t.Fatalf("fc%d extract: %v", fc, err)
		}
		if !reflect.DeepEqual(normResp(resp), normResp(got)) {
			t.Fatalf("fc%d mismatch:\n in %+v\nout %+v", fc, resp, got)
		}
	}
}

// TestObfuscatedRoundTrip runs every function code through obfuscated
// request and response graphs at 1..3 transformations per node.
func TestObfuscatedRoundTrip(t *testing.T) {
	for perNode := 1; perNode <= 3; perNode++ {
		perNode := perNode
		t.Run(fmt.Sprintf("perNode=%d", perNode), func(t *testing.T) {
			reqG, err := RequestGraph()
			if err != nil {
				t.Fatal(err)
			}
			respG, err := ResponseGraph()
			if err != nil {
				t.Fatal(err)
			}
			r := rng.New(int64(100 + perNode))
			reqRes, err := transform.Obfuscate(reqG, transform.Options{PerNode: perNode}, r)
			if err != nil {
				t.Fatal(err)
			}
			respRes, err := transform.Obfuscate(respG, transform.Options{PerNode: perNode}, r)
			if err != nil {
				t.Fatal(err)
			}
			bank := NewBank()
			bank.WriteRegs(0, []uint16{10, 20, 30})
			for _, fc := range FunctionCodes {
				req := RandomRequest(r)
				req.Fc = fc
				fixupRequest(&req, r)
				m, err := BuildRequest(reqRes.Graph, r, req)
				if err != nil {
					t.Fatalf("fc%d build: %v\ntrace:\n%s", fc, err, reqRes.Trace())
				}
				data, err := wire.Serialize(m)
				if err != nil {
					t.Fatalf("fc%d serialize: %v\ntrace:\n%s", fc, err, reqRes.Trace())
				}
				back, err := wire.Parse(reqRes.Graph, data, r)
				if err != nil {
					t.Fatalf("fc%d parse: %v\ntrace:\n%s", fc, err, reqRes.Trace())
				}
				got, err := ExtractRequest(back)
				if err != nil {
					t.Fatalf("fc%d extract: %v", fc, err)
				}
				if !reflect.DeepEqual(normReq(req), normReq(got)) {
					t.Fatalf("fc%d req mismatch:\n in %+v\nout %+v", fc, req, got)
				}
				resp := RespondTo(req, bank)
				rm, err := BuildResponse(respRes.Graph, r, resp)
				if err != nil {
					t.Fatalf("fc%d resp build: %v\ntrace:\n%s", fc, err, respRes.Trace())
				}
				rdata, err := wire.Serialize(rm)
				if err != nil {
					t.Fatalf("fc%d resp serialize: %v\ntrace:\n%s", fc, err, respRes.Trace())
				}
				rback, err := wire.Parse(respRes.Graph, rdata, r)
				if err != nil {
					t.Fatalf("fc%d resp parse: %v\ntrace:\n%s", fc, err, respRes.Trace())
				}
				rgot, err := ExtractResponse(rback)
				if err != nil {
					t.Fatalf("fc%d resp extract: %v", fc, err)
				}
				if !reflect.DeepEqual(normResp(resp), normResp(rgot)) {
					t.Fatalf("fc%d resp mismatch:\n in %+v\nout %+v", fc, resp, rgot)
				}
			}
		})
	}
}

// TestClientServerTCP runs the full core application over loopback TCP
// with an obfuscated protocol: the scenario of the paper's §VII-A.
func TestClientServerTCP(t *testing.T) {
	reqG, err := RequestGraph()
	if err != nil {
		t.Fatal(err)
	}
	respG, err := ResponseGraph()
	if err != nil {
		t.Fatal(err)
	}
	r := rng.New(42)
	reqRes, err := transform.Obfuscate(reqG, transform.Options{PerNode: 2}, r)
	if err != nil {
		t.Fatal(err)
	}
	respRes, err := transform.Obfuscate(respG, transform.Options{PerNode: 2}, r)
	if err != nil {
		t.Fatal(err)
	}

	srv := NewServer(reqRes.Graph, respRes.Graph, 1)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	cli, err := Dial(addr, reqRes.Graph, respRes.Graph, 2)
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()

	// Write then read back registers through the obfuscated channel.
	wr := Request{TxID: 1, Unit: 3, Fc: FcWriteRegs, Addr: 10, Regs: []uint16{111, 222, 333}}
	if _, err := cli.Do(wr); err != nil {
		t.Fatalf("write regs: %v", err)
	}
	rd := Request{TxID: 2, Unit: 3, Fc: FcReadHolding, Addr: 10, Qty: 3}
	resp, err := cli.Do(rd)
	if err != nil {
		t.Fatalf("read holding: %v", err)
	}
	if !reflect.DeepEqual(resp.Regs, []uint16{111, 222, 333}) {
		t.Fatalf("read back %v, want [111 222 333]", resp.Regs)
	}

	// Coils too.
	if _, err := cli.Do(Request{TxID: 3, Unit: 3, Fc: FcWriteCoil, Addr: 5, Val: 0xFF00}); err != nil {
		t.Fatal(err)
	}
	resp, err = cli.Do(Request{TxID: 4, Unit: 3, Fc: FcReadCoils, Addr: 5, Qty: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Bits) != 1 || resp.Bits[0]&1 != 1 {
		t.Fatalf("coil read back %x", resp.Bits)
	}
}

func TestBank(t *testing.T) {
	b := NewBank()
	b.WriteBits(0, 10, []byte{0b10101010, 0b11})
	bits := b.ReadBits(0, 10)
	if bits[0] != 0b10101010 || bits[1] != 0b11 {
		t.Errorf("bits = %08b", bits)
	}
	if got := b.ReadBits(1, 1); got[0] != 1 {
		t.Errorf("bit 1 = %v", got)
	}
	b.WriteReg(100, 7)
	if got := b.ReadRegs(99, 3); got[1] != 7 {
		t.Errorf("regs = %v", got)
	}
}

// TestExceptionResponses: malformed requests yield exception responses
// (fc|0x80 + exception code) that round-trip plain and obfuscated.
func TestExceptionResponses(t *testing.T) {
	respG, err := ResponseGraph()
	if err != nil {
		t.Fatal(err)
	}
	bank := NewBank()
	cases := []Request{
		{TxID: 1, Unit: 1, Fc: FcReadHolding, Addr: 0, Qty: 0},    // zero qty
		{TxID: 2, Unit: 1, Fc: FcReadHolding, Addr: 0, Qty: 1000}, // too many
		{TxID: 3, Unit: 1, Fc: FcWriteCoil, Addr: 0, Val: 0x1234}, // bad coil value
		{TxID: 4, Unit: 1, Fc: FcWriteRegs, Addr: 0},              // no registers
		{TxID: 5, Unit: 1, Fc: FcWriteCoils, Qty: 9, Coils: nil},  // count mismatch
	}
	r := rng.New(31)
	for _, req := range cases {
		resp := RespondTo(req, bank)
		if !resp.IsException() {
			t.Fatalf("fc%d request %+v not rejected", req.Fc, req)
		}
		if resp.Fc != req.Fc|0x80 || resp.ExCode != ExIllegalValue {
			t.Fatalf("exception = %+v", resp)
		}
		m, err := BuildResponse(respG, r, resp)
		if err != nil {
			t.Fatalf("build exception: %v", err)
		}
		data, err := wire.Serialize(m)
		if err != nil {
			t.Fatal(err)
		}
		back, err := wire.Parse(respG, data, r)
		if err != nil {
			t.Fatal(err)
		}
		got, err := ExtractResponse(back)
		if err != nil {
			t.Fatal(err)
		}
		if got.Fc != resp.Fc || got.ExCode != resp.ExCode || got.TxID != resp.TxID {
			t.Fatalf("exception round trip: %+v vs %+v", resp, got)
		}
	}
}

// TestExceptionOverObfuscatedTCP: the server rejects a bad request with
// an exception through the obfuscated channel.
func TestExceptionOverObfuscatedTCP(t *testing.T) {
	reqG, err := RequestGraph()
	if err != nil {
		t.Fatal(err)
	}
	respG, err := ResponseGraph()
	if err != nil {
		t.Fatal(err)
	}
	r := rng.New(55)
	reqRes, err := transform.Obfuscate(reqG, transform.Options{PerNode: 1}, r)
	if err != nil {
		t.Fatal(err)
	}
	respRes, err := transform.Obfuscate(respG, transform.Options{PerNode: 1}, r)
	if err != nil {
		t.Fatal(err)
	}
	srv := NewServer(reqRes.Graph, respRes.Graph, 1)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	cli, err := Dial(addr, reqRes.Graph, respRes.Graph, 2)
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()
	resp, err := cli.Do(Request{TxID: 9, Unit: 1, Fc: FcReadHolding, Addr: 0, Qty: 0})
	if err != nil {
		t.Fatal(err)
	}
	if !resp.IsException() || resp.Fc != FcReadHolding|0x80 {
		t.Fatalf("expected exception, got %+v", resp)
	}
}
