package modbus

import (
	"errors"
	"fmt"
	"net"
	"sync"

	"protoobf/internal/graph"
	"protoobf/internal/msgtree"
	"protoobf/internal/rng"
	"protoobf/internal/session"
	"protoobf/internal/wire"
)

// ExtractRequest recovers the logical request from a (possibly
// obfuscated) parsed message using the original-name accessors.
func ExtractRequest(m *msgtree.Message) (Request, error) {
	s := m.Scope()
	var req Request
	txid, err := s.GetUint("txid")
	if err != nil {
		return req, err
	}
	unit, err := s.GetUint("unit")
	if err != nil {
		return req, err
	}
	fc, err := s.GetUint("fc")
	if err != nil {
		return req, err
	}
	req.TxID, req.Unit, req.Fc = uint16(txid), uint8(unit), int(fc)

	getU16 := func(sc *msgtree.Scope, name string) (uint16, error) {
		v, err := sc.GetUint(name)
		return uint16(v), err
	}
	simple := func(opt, prefix string) error {
		sc, err := enabled(s, opt)
		if err != nil {
			return err
		}
		if req.Addr, err = getU16(sc, prefix+"_addr"); err != nil {
			return err
		}
		req.Qty, err = getU16(sc, prefix+"_qty")
		return err
	}
	switch req.Fc {
	case FcReadCoils:
		return req, simple("read_coils", "rc")
	case FcReadDiscrete:
		return req, simple("read_discrete", "rd")
	case FcReadHolding:
		return req, simple("read_holding", "rh")
	case FcReadInput:
		return req, simple("read_input", "ri")
	case FcWriteCoil:
		sc, err := enabled(s, "write_coil")
		if err != nil {
			return req, err
		}
		if req.Addr, err = getU16(sc, "wc_addr"); err != nil {
			return req, err
		}
		req.Val, err = getU16(sc, "wc_val")
		return req, err
	case FcWriteReg:
		sc, err := enabled(s, "write_reg")
		if err != nil {
			return req, err
		}
		if req.Addr, err = getU16(sc, "wr_addr"); err != nil {
			return req, err
		}
		req.Val, err = getU16(sc, "wr_val")
		return req, err
	case FcWriteCoils:
		sc, err := enabled(s, "write_coils")
		if err != nil {
			return req, err
		}
		if req.Addr, err = getU16(sc, "wcs_addr"); err != nil {
			return req, err
		}
		if req.Qty, err = getU16(sc, "wcs_qty"); err != nil {
			return req, err
		}
		req.Coils, err = sc.GetBytes("wcs_bytes")
		return req, err
	case FcWriteRegs:
		sc, err := enabled(s, "write_regs")
		if err != nil {
			return req, err
		}
		if req.Addr, err = getU16(sc, "wrs_addr"); err != nil {
			return req, err
		}
		items, err := sc.Items("wrs_regs")
		if err != nil {
			return req, err
		}
		for _, item := range items {
			v, err := item.GetUint("wrs_reg")
			if err != nil {
				return req, err
			}
			req.Regs = append(req.Regs, uint16(v))
		}
		return req, nil
	default:
		return req, fmt.Errorf("modbus: unsupported function code %d", req.Fc)
	}
}

// ExtractResponse recovers the logical response from a parsed message.
func ExtractResponse(m *msgtree.Message) (Response, error) {
	s := m.Scope()
	var resp Response
	txid, err := s.GetUint("txid")
	if err != nil {
		return resp, err
	}
	unit, err := s.GetUint("unit")
	if err != nil {
		return resp, err
	}
	fc, err := s.GetUint("fc")
	if err != nil {
		return resp, err
	}
	resp.TxID, resp.Unit, resp.Fc = uint16(txid), uint8(unit), int(fc)

	regs := func(opt, rep, field string) error {
		sc, err := enabled(s, opt)
		if err != nil {
			return err
		}
		items, err := sc.Items(rep)
		if err != nil {
			return err
		}
		for _, item := range items {
			v, err := item.GetUint(field)
			if err != nil {
				return err
			}
			resp.Regs = append(resp.Regs, uint16(v))
		}
		return nil
	}
	echo := func(opt, prefix string) error {
		sc, err := enabled(s, opt)
		if err != nil {
			return err
		}
		a, err := sc.GetUint(prefix + "_addr")
		if err != nil {
			return err
		}
		q, err := sc.GetUint(prefix + "_qty")
		if err != nil {
			return err
		}
		resp.Addr, resp.Qty = uint16(a), uint16(q)
		return nil
	}
	if resp.IsException() {
		opt, field, ok := exceptionBranch(resp.Fc)
		if !ok {
			return resp, fmt.Errorf("modbus: unsupported exception code %#x", resp.Fc)
		}
		sc, err := enabled(s, opt)
		if err != nil {
			return resp, err
		}
		code, err := sc.GetUint(field)
		if err != nil {
			return resp, err
		}
		resp.ExCode = uint8(code)
		return resp, nil
	}
	switch resp.Fc {
	case FcReadCoils:
		sc, err := enabled(s, "r_coils")
		if err != nil {
			return resp, err
		}
		resp.Bits, err = sc.GetBytes("rc_bytes")
		return resp, err
	case FcReadDiscrete:
		sc, err := enabled(s, "r_discrete")
		if err != nil {
			return resp, err
		}
		resp.Bits, err = sc.GetBytes("rd_bytes")
		return resp, err
	case FcReadHolding:
		return resp, regs("r_holding", "rh_regs", "rh_reg")
	case FcReadInput:
		return resp, regs("r_input", "ri_regs", "ri_reg")
	case FcWriteCoil:
		sc, err := enabled(s, "r_wcoil")
		if err != nil {
			return resp, err
		}
		a, err := sc.GetUint("wc_addr")
		if err != nil {
			return resp, err
		}
		v, err := sc.GetUint("wc_val")
		if err != nil {
			return resp, err
		}
		resp.Addr, resp.Val = uint16(a), uint16(v)
		return resp, nil
	case FcWriteReg:
		sc, err := enabled(s, "r_wreg")
		if err != nil {
			return resp, err
		}
		a, err := sc.GetUint("wr_addr")
		if err != nil {
			return resp, err
		}
		v, err := sc.GetUint("wr_val")
		if err != nil {
			return resp, err
		}
		resp.Addr, resp.Val = uint16(a), uint16(v)
		return resp, nil
	case FcWriteCoils:
		return resp, echo("r_wcoils", "wcs")
	case FcWriteRegs:
		return resp, echo("r_wregs", "wrs")
	default:
		return resp, fmt.Errorf("modbus: unsupported function code %d", resp.Fc)
	}
}

func enabled(s *msgtree.Scope, opt string) (*msgtree.Scope, error) {
	ok, err := s.Present(opt)
	if err != nil {
		return nil, err
	}
	if !ok {
		return nil, fmt.Errorf("modbus: optional %q absent for its function code", opt)
	}
	return s.Enable(opt)
}

// Server is the Modbus core application: it answers requests over a
// register bank, parsing and serializing through a (possibly obfuscated)
// protocol library. Both peers must be generated with the same
// transformations, as the paper requires (§IV). Connections run over the
// obfuscated session transport (internal/session), which frames each
// message with its dialect epoch.
type Server struct {
	ReqGraph  *graph.Graph
	RespGraph *graph.Graph
	Bank      *Bank
	Rng       *rng.R

	mu sync.Mutex
	ln net.Listener
}

// NewServer creates a server with an empty bank.
func NewServer(reqG, respG *graph.Graph, seed int64) *Server {
	return &Server{ReqGraph: reqG, RespGraph: respG, Bank: NewBank(), Rng: rng.New(seed)}
}

// Listen binds addr ("127.0.0.1:0" for an ephemeral port) and serves
// until Close. It returns the bound address.
func (s *Server) Listen(addr string) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", err
	}
	s.mu.Lock()
	s.ln = ln
	s.mu.Unlock()
	go session.Serve(ln, s.serveSession)
	return ln.Addr().String(), nil
}

// Close stops the listener.
func (s *Server) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.ln == nil {
		return nil
	}
	err := s.ln.Close()
	s.ln = nil
	return err
}

func (s *Server) serveSession(t *session.Transport) {
	s.mu.Lock()
	r := rng.New(s.Rng.Int63())
	s.mu.Unlock()
	_ = t.ServeLoop(func(req []byte) ([]byte, error) {
		return s.Handle(req, r)
	})
}

// Handle processes one serialized request and returns the serialized
// response (exposed separately for in-process tests and benchmarks).
func (s *Server) Handle(frame []byte, r *rng.R) ([]byte, error) {
	msg, err := wire.Parse(s.ReqGraph, frame, r)
	if err != nil {
		return nil, fmt.Errorf("parse request: %w", err)
	}
	req, err := ExtractRequest(msg)
	if err != nil {
		return nil, fmt.Errorf("extract request: %w", err)
	}
	resp := RespondTo(req, s.Bank)
	out, err := BuildResponse(s.RespGraph, r, resp)
	if err != nil {
		return nil, fmt.Errorf("build response: %w", err)
	}
	return wire.Serialize(out)
}

// Client is the requesting side of the core application.
type Client struct {
	ReqGraph  *graph.Graph
	RespGraph *graph.Graph
	Rng       *rng.R
	conn      net.Conn
	sess      *session.Transport
}

// Dial connects to a server.
func Dial(addr string, reqG, respG *graph.Graph, seed int64) (*Client, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	return &Client{
		ReqGraph: reqG, RespGraph: respG, Rng: rng.New(seed),
		conn: conn, sess: session.NewTransport(conn),
	}, nil
}

// Close terminates the connection.
func (c *Client) Close() error {
	err := c.conn.Close()
	c.sess.Release()
	return err
}

// Do sends a request and returns the decoded response.
func (c *Client) Do(req Request) (Response, error) {
	var resp Response
	m, err := BuildRequest(c.ReqGraph, c.Rng, req)
	if err != nil {
		return resp, err
	}
	data, err := wire.Serialize(m)
	if err != nil {
		return resp, err
	}
	raw, _, err := c.sess.Roundtrip(data)
	if err != nil {
		return resp, err
	}
	back, err := wire.Parse(c.RespGraph, raw, c.Rng)
	if err != nil {
		return resp, err
	}
	resp, err = ExtractResponse(back)
	if err != nil {
		return resp, err
	}
	if resp.TxID != req.TxID {
		return resp, errors.New("modbus: transaction id mismatch")
	}
	return resp, nil
}
