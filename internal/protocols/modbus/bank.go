package modbus

import "sync"

// Bank is the register/coil store of the Modbus server core application.
// It is safe for concurrent use.
type Bank struct {
	mu    sync.Mutex
	coils [65536]bool
	regs  [65536]uint16
}

// NewBank returns an empty bank.
func NewBank() *Bank { return &Bank{} }

// ReadBits packs qty coils starting at addr, LSB-first per byte, as the
// Modbus wire format requires.
func (b *Bank) ReadBits(addr, qty int) []byte {
	b.mu.Lock()
	defer b.mu.Unlock()
	out := make([]byte, (qty+7)/8)
	for i := 0; i < qty; i++ {
		idx := (addr + i) % len(b.coils)
		if b.coils[idx] {
			out[i/8] |= 1 << (i % 8)
		}
	}
	return out
}

// ReadRegs copies qty registers starting at addr.
func (b *Bank) ReadRegs(addr, qty int) []uint16 {
	b.mu.Lock()
	defer b.mu.Unlock()
	out := make([]uint16, qty)
	for i := range out {
		out[i] = b.regs[(addr+i)%len(b.regs)]
	}
	return out
}

// WriteBit sets one coil.
func (b *Bank) WriteBit(addr int, on bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.coils[addr%len(b.coils)] = on
}

// WriteBits unpacks qty coils from packed (LSB-first) starting at addr.
func (b *Bank) WriteBits(addr, qty int, packed []byte) {
	b.mu.Lock()
	defer b.mu.Unlock()
	for i := 0; i < qty && i/8 < len(packed); i++ {
		b.coils[(addr+i)%len(b.coils)] = packed[i/8]&(1<<(i%8)) != 0
	}
}

// WriteReg sets one holding register.
func (b *Bank) WriteReg(addr int, val uint16) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.regs[addr%len(b.regs)] = val
}

// WriteRegs sets consecutive holding registers.
func (b *Bank) WriteRegs(addr int, vals []uint16) {
	b.mu.Lock()
	defer b.mu.Unlock()
	for i, v := range vals {
		b.regs[(addr+i)%len(b.regs)] = v
	}
}
