// Package modbus provides the TCP-Modbus message-format specification
// used in the paper's evaluation (§VII): the request and response formats
// of function codes 1, 2, 3, 4, 5, 6, 15 and 16 — the message set of the
// simplymodbus client implementation — plus builders, random workload
// generators and a TCP client/server core application.
//
// Modbus exercises the binary-protocol side of the model: Tabular fields,
// Length boundaries and Counter boundaries (paper §VII).
package modbus

import (
	"fmt"

	"protoobf/internal/graph"
	"protoobf/internal/msgtree"
	"protoobf/internal/rng"
	"protoobf/internal/spec"
)

// Function codes covered by the core application.
const (
	FcReadCoils    = 1
	FcReadDiscrete = 2
	FcReadHolding  = 3
	FcReadInput    = 4
	FcWriteCoil    = 5
	FcWriteReg     = 6
	FcWriteCoils   = 15
	FcWriteRegs    = 16
)

// FunctionCodes lists the supported codes in protocol order.
var FunctionCodes = []int{
	FcReadCoils, FcReadDiscrete, FcReadHolding, FcReadInput,
	FcWriteCoil, FcWriteReg, FcWriteCoils, FcWriteRegs,
}

// RequestSpec is the message format specification of Modbus TCP requests:
// the MBAP header (transaction, protocol, length, unit) followed by the
// PDU, whose shape depends on the function code.
const RequestSpec = `
protocol modbus_request;
root seq adu end {
    uint txid 2;
    uint proto 2;
    uint mblen 2;                      # auto-filled: bytes following
    seq rest length(mblen) {
        uint unit 1;
        uint fc 1;
        optional read_coils when fc == 1 {
            seq rc { uint rc_addr 2; uint rc_qty 2; }
        }
        optional read_discrete when fc == 2 {
            seq rd { uint rd_addr 2; uint rd_qty 2; }
        }
        optional read_holding when fc == 3 {
            seq rh { uint rh_addr 2; uint rh_qty 2; }
        }
        optional read_input when fc == 4 {
            seq ri { uint ri_addr 2; uint ri_qty 2; }
        }
        optional write_coil when fc == 5 {
            seq wc { uint wc_addr 2; uint wc_val 2; }
        }
        optional write_reg when fc == 6 {
            seq wr { uint wr_addr 2; uint wr_val 2; }
        }
        optional write_coils when fc == 15 {
            seq wcs {
                uint wcs_addr 2;
                uint wcs_qty 2;
                uint wcs_bc 1;          # auto-filled byte count
                seq wcs_data length(wcs_bc) { bytes wcs_bytes end; }
            }
        }
        optional write_regs when fc == 16 {
            seq wrs {
                uint wrs_addr 2;
                uint wrs_qty 2;         # auto-filled register count
                uint wrs_bc 1;          # auto-filled byte count
                seq wrs_data length(wrs_bc) {
                    tabular wrs_regs count(wrs_qty) { uint wrs_reg 2; }
                }
            }
        }
    }
}
`

// ResponseSpec is the message format specification of Modbus TCP
// responses for the same function codes.
const ResponseSpec = `
protocol modbus_response;
root seq adu end {
    uint txid 2;
    uint proto 2;
    uint mblen 2;
    seq rest length(mblen) {
        uint unit 1;
        uint fc 1;
        optional r_coils when fc == 1 {
            seq rc {
                uint rc_bc 1;
                seq rc_data length(rc_bc) { bytes rc_bytes end; }
            }
        }
        optional r_discrete when fc == 2 {
            seq rd {
                uint rd_bc 1;
                seq rd_data length(rd_bc) { bytes rd_bytes end; }
            }
        }
        optional r_holding when fc == 3 {
            seq rh {
                uint rh_bc 1;
                seq rh_data length(rh_bc) {
                    repeat rh_regs end { uint rh_reg 2; }
                }
            }
        }
        optional r_input when fc == 4 {
            seq ri {
                uint ri_bc 1;
                seq ri_data length(ri_bc) {
                    repeat ri_regs end { uint ri_reg 2; }
                }
            }
        }
        optional r_wcoil when fc == 5 {
            seq wc { uint wc_addr 2; uint wc_val 2; }
        }
        optional r_wreg when fc == 6 {
            seq wr { uint wr_addr 2; uint wr_val 2; }
        }
        optional r_wcoils when fc == 15 {
            seq wcs { uint wcs_addr 2; uint wcs_qty 2; }
        }
        optional r_wregs when fc == 16 {
            seq wrs { uint wrs_addr 2; uint wrs_qty 2; }
        }
        # Exception responses: function code with the high bit set,
        # followed by a one-byte exception code (Modbus spec §7).
        optional x_coils    when fc == 129 { seq x1  { uint x1_code 1; } }
        optional x_discrete when fc == 130 { seq x2  { uint x2_code 1; } }
        optional x_holding  when fc == 131 { seq x3  { uint x3_code 1; } }
        optional x_input    when fc == 132 { seq x4  { uint x4_code 1; } }
        optional x_wcoil    when fc == 133 { seq x5  { uint x5_code 1; } }
        optional x_wreg     when fc == 134 { seq x6  { uint x6_code 1; } }
        optional x_wcoils   when fc == 143 { seq x15 { uint x15_code 1; } }
        optional x_wregs    when fc == 144 { seq x16 { uint x16_code 1; } }
    }
}
`

// RequestGraph parses the request specification.
func RequestGraph() (*graph.Graph, error) { return spec.Parse(RequestSpec) }

// ResponseGraph parses the response specification.
func ResponseGraph() (*graph.Graph, error) { return spec.Parse(ResponseSpec) }

// Request describes the logical content of one Modbus request.
type Request struct {
	TxID uint16
	Unit uint8
	Fc   int
	Addr uint16
	// Qty is the coil/register quantity for read requests and multi-writes.
	Qty uint16
	// Val is the value for single-write requests (5, 6).
	Val uint16
	// Coils is the packed coil payload for function 15.
	Coils []byte
	// Regs are the register values for function 16.
	Regs []uint16
}

// BuildRequest constructs the message AST of req on graph g (plain or
// obfuscated: the accessors use original field names either way).
func BuildRequest(g *graph.Graph, r *rng.R, req Request) (*msgtree.Message, error) {
	m := msgtree.New(g, r)
	s := m.Scope()
	if err := firstErr(
		s.SetUint("txid", uint64(req.TxID)),
		s.SetUint("proto", 0),
		s.SetUint("unit", uint64(req.Unit)),
		s.SetUint("fc", uint64(req.Fc)),
	); err != nil {
		return nil, err
	}
	simple := func(opt, prefix string, a, b uint64) error {
		sc, err := s.Enable(opt)
		if err != nil {
			return err
		}
		return firstErr(
			sc.SetUint(prefix+"_addr", a),
			sc.SetUint(prefix+"_qty", b),
		)
	}
	switch req.Fc {
	case FcReadCoils:
		if err := simple("read_coils", "rc", uint64(req.Addr), uint64(req.Qty)); err != nil {
			return nil, err
		}
	case FcReadDiscrete:
		if err := simple("read_discrete", "rd", uint64(req.Addr), uint64(req.Qty)); err != nil {
			return nil, err
		}
	case FcReadHolding:
		if err := simple("read_holding", "rh", uint64(req.Addr), uint64(req.Qty)); err != nil {
			return nil, err
		}
	case FcReadInput:
		if err := simple("read_input", "ri", uint64(req.Addr), uint64(req.Qty)); err != nil {
			return nil, err
		}
	case FcWriteCoil:
		sc, err := s.Enable("write_coil")
		if err != nil {
			return nil, err
		}
		if err := firstErr(sc.SetUint("wc_addr", uint64(req.Addr)), sc.SetUint("wc_val", uint64(req.Val))); err != nil {
			return nil, err
		}
	case FcWriteReg:
		sc, err := s.Enable("write_reg")
		if err != nil {
			return nil, err
		}
		if err := firstErr(sc.SetUint("wr_addr", uint64(req.Addr)), sc.SetUint("wr_val", uint64(req.Val))); err != nil {
			return nil, err
		}
	case FcWriteCoils:
		sc, err := s.Enable("write_coils")
		if err != nil {
			return nil, err
		}
		if err := firstErr(
			sc.SetUint("wcs_addr", uint64(req.Addr)),
			sc.SetUint("wcs_qty", uint64(req.Qty)),
			sc.SetBytes("wcs_bytes", req.Coils),
		); err != nil {
			return nil, err
		}
	case FcWriteRegs:
		sc, err := s.Enable("write_regs")
		if err != nil {
			return nil, err
		}
		if err := firstErr(sc.SetUint("wrs_addr", uint64(req.Addr))); err != nil {
			return nil, err
		}
		for _, reg := range req.Regs {
			item, err := sc.Add("wrs_regs")
			if err != nil {
				return nil, err
			}
			if err := item.SetUint("wrs_reg", uint64(reg)); err != nil {
				return nil, err
			}
		}
	default:
		return nil, fmt.Errorf("modbus: unsupported function code %d", req.Fc)
	}
	return m, nil
}

// Exception codes (Modbus application protocol §7).
const (
	ExIllegalFunction = 1
	ExIllegalAddress  = 2
	ExIllegalValue    = 3
)

// Response describes the logical content of one Modbus response.
type Response struct {
	TxID uint16
	Unit uint8
	// Fc is the function code; exception responses carry fc|0x80.
	Fc int
	// Bits is the packed coil/discrete payload (1, 2).
	Bits []byte
	// Regs are register values (3, 4).
	Regs []uint16
	// Addr/Qty/Val echo request fields (5, 6, 15, 16).
	Addr uint16
	Qty  uint16
	Val  uint16
	// ExCode is the exception code of an exception response (Fc >= 0x80).
	ExCode uint8
}

// IsException reports whether the response is an exception.
func (r Response) IsException() bool { return r.Fc >= 0x80 }

// exceptionBranch maps an exception function code to its optional branch
// and code-field names.
func exceptionBranch(fc int) (opt, field string, ok bool) {
	switch fc {
	case 0x81:
		return "x_coils", "x1_code", true
	case 0x82:
		return "x_discrete", "x2_code", true
	case 0x83:
		return "x_holding", "x3_code", true
	case 0x84:
		return "x_input", "x4_code", true
	case 0x85:
		return "x_wcoil", "x5_code", true
	case 0x86:
		return "x_wreg", "x6_code", true
	case 0x8F:
		return "x_wcoils", "x15_code", true
	case 0x90:
		return "x_wregs", "x16_code", true
	default:
		return "", "", false
	}
}

// BuildResponse constructs the message AST of resp on graph g.
func BuildResponse(g *graph.Graph, r *rng.R, resp Response) (*msgtree.Message, error) {
	m := msgtree.New(g, r)
	s := m.Scope()
	if err := firstErr(
		s.SetUint("txid", uint64(resp.TxID)),
		s.SetUint("proto", 0),
		s.SetUint("unit", uint64(resp.Unit)),
		s.SetUint("fc", uint64(resp.Fc)),
	); err != nil {
		return nil, err
	}
	bitsResp := func(opt, field string) error {
		sc, err := s.Enable(opt)
		if err != nil {
			return err
		}
		return sc.SetBytes(field, resp.Bits)
	}
	regsResp := func(opt, rep, field string) error {
		sc, err := s.Enable(opt)
		if err != nil {
			return err
		}
		for _, reg := range resp.Regs {
			item, err := sc.Add(rep)
			if err != nil {
				return err
			}
			if err := item.SetUint(field, uint64(reg)); err != nil {
				return err
			}
		}
		return nil
	}
	echo := func(opt, prefix string, a, b uint64) error {
		sc, err := s.Enable(opt)
		if err != nil {
			return err
		}
		return firstErr(sc.SetUint(prefix+"_addr", a), sc.SetUint(prefix+"_qty", b))
	}
	if resp.IsException() {
		opt, field, ok := exceptionBranch(resp.Fc)
		if !ok {
			return nil, fmt.Errorf("modbus: unsupported exception code %#x", resp.Fc)
		}
		sc, err := s.Enable(opt)
		if err != nil {
			return nil, err
		}
		if err := sc.SetUint(field, uint64(resp.ExCode)); err != nil {
			return nil, err
		}
		return m, nil
	}
	var err error
	switch resp.Fc {
	case FcReadCoils:
		err = bitsResp("r_coils", "rc_bytes")
	case FcReadDiscrete:
		err = bitsResp("r_discrete", "rd_bytes")
	case FcReadHolding:
		err = regsResp("r_holding", "rh_regs", "rh_reg")
	case FcReadInput:
		err = regsResp("r_input", "ri_regs", "ri_reg")
	case FcWriteCoil:
		sc, serr := s.Enable("r_wcoil")
		if serr != nil {
			return nil, serr
		}
		err = firstErr(sc.SetUint("wc_addr", uint64(resp.Addr)), sc.SetUint("wc_val", uint64(resp.Val)))
	case FcWriteReg:
		sc, serr := s.Enable("r_wreg")
		if serr != nil {
			return nil, serr
		}
		err = firstErr(sc.SetUint("wr_addr", uint64(resp.Addr)), sc.SetUint("wr_val", uint64(resp.Val)))
	case FcWriteCoils:
		err = echo("r_wcoils", "wcs", uint64(resp.Addr), uint64(resp.Qty))
	case FcWriteRegs:
		err = echo("r_wregs", "wrs", uint64(resp.Addr), uint64(resp.Qty))
	default:
		err = fmt.Errorf("modbus: unsupported function code %d", resp.Fc)
	}
	if err != nil {
		return nil, err
	}
	return m, nil
}

// RandomRequest draws a request with random but protocol-consistent
// field values, as the paper's core application does (§VII-A).
func RandomRequest(r *rng.R) Request {
	fc := FunctionCodes[r.Intn(len(FunctionCodes))]
	req := Request{
		TxID: uint16(r.Intn(1 << 16)),
		Unit: uint8(1 + r.Intn(16)),
		Fc:   fc,
		Addr: uint16(r.Intn(1 << 12)),
	}
	switch fc {
	case FcReadCoils, FcReadDiscrete, FcReadHolding, FcReadInput:
		req.Qty = uint16(1 + r.Intn(100))
	case FcWriteCoil:
		if r.Intn(2) == 0 {
			req.Val = 0xFF00
		}
	case FcWriteReg:
		req.Val = uint16(r.Intn(1 << 16))
	case FcWriteCoils:
		nbits := 1 + r.Intn(64)
		req.Qty = uint16(nbits)
		req.Coils = r.Bytes((nbits + 7) / 8)
	case FcWriteRegs:
		nregs := 1 + r.Intn(16)
		req.Regs = make([]uint16, nregs)
		for i := range req.Regs {
			req.Regs[i] = uint16(r.Intn(1 << 16))
		}
	}
	return req
}

// RespondTo computes the server's logical answer to req over a register
// bank, mimicking a real Modbus slave: invalid quantities yield
// exception responses (fc|0x80 with an exception code).
func RespondTo(req Request, bank *Bank) Response {
	resp := Response{TxID: req.TxID, Unit: req.Unit, Fc: req.Fc}
	if code := validateRequest(req); code != 0 {
		resp.Fc = req.Fc | 0x80
		resp.ExCode = code
		return resp
	}
	switch req.Fc {
	case FcReadCoils, FcReadDiscrete:
		resp.Bits = bank.ReadBits(int(req.Addr), int(req.Qty))
	case FcReadHolding, FcReadInput:
		resp.Regs = bank.ReadRegs(int(req.Addr), int(req.Qty))
	case FcWriteCoil:
		bank.WriteBit(int(req.Addr), req.Val == 0xFF00)
		resp.Addr, resp.Val = req.Addr, req.Val
	case FcWriteReg:
		bank.WriteReg(int(req.Addr), req.Val)
		resp.Addr, resp.Val = req.Addr, req.Val
	case FcWriteCoils:
		bank.WriteBits(int(req.Addr), int(req.Qty), req.Coils)
		resp.Addr, resp.Qty = req.Addr, req.Qty
	case FcWriteRegs:
		bank.WriteRegs(int(req.Addr), req.Regs)
		resp.Addr, resp.Qty = req.Addr, uint16(len(req.Regs))
	}
	return resp
}

// validateRequest returns a Modbus exception code for malformed
// requests, or 0 when the request is acceptable.
func validateRequest(req Request) uint8 {
	switch req.Fc {
	case FcReadCoils, FcReadDiscrete:
		if req.Qty == 0 || req.Qty > 2000 {
			return ExIllegalValue
		}
	case FcReadHolding, FcReadInput:
		if req.Qty == 0 || req.Qty > 125 {
			return ExIllegalValue
		}
	case FcWriteCoil:
		if req.Val != 0 && req.Val != 0xFF00 {
			return ExIllegalValue
		}
	case FcWriteCoils:
		if req.Qty == 0 || int(req.Qty+7)/8 != len(req.Coils) {
			return ExIllegalValue
		}
	case FcWriteRegs:
		if len(req.Regs) == 0 || len(req.Regs) > 123 {
			return ExIllegalValue
		}
	}
	return 0
}

func firstErr(errs ...error) error {
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}
