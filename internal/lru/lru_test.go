package lru

import (
	"fmt"
	"testing"
)

func TestBoundAndRecency(t *testing.T) {
	var evicted []int
	c := New[int, string](3, func(k int, _ string) { evicted = append(evicted, k) })
	for i := 1; i <= 3; i++ {
		c.Put(i, fmt.Sprint(i))
	}
	if c.Len() != 3 {
		t.Fatalf("len = %d, want 3", c.Len())
	}
	// Touch 1 so 2 becomes the LRU entry.
	if _, ok := c.Get(1); !ok {
		t.Fatal("entry 1 missing")
	}
	c.Put(4, "4")
	if len(evicted) != 1 || evicted[0] != 2 {
		t.Fatalf("evicted %v, want [2]", evicted)
	}
	for _, want := range []int{1, 3, 4} {
		if _, ok := c.Get(want); !ok {
			t.Errorf("entry %d evicted, want kept", want)
		}
	}
}

func TestReplaceDoesNotGrow(t *testing.T) {
	c := New[int, int](2, nil)
	c.Put(1, 10)
	c.Put(1, 11)
	c.Put(2, 20)
	if c.Len() != 2 {
		t.Fatalf("len = %d, want 2", c.Len())
	}
	if v, _ := c.Get(1); v != 11 {
		t.Fatalf("Get(1) = %d, want 11", v)
	}
}

func TestUnboundedAndRebound(t *testing.T) {
	var evicted int
	c := New[int, int](0, func(int, int) { evicted++ })
	for i := 0; i < 100; i++ {
		c.Put(i, i)
	}
	if c.Len() != 100 || evicted != 0 {
		t.Fatalf("unbounded cache: len=%d evicted=%d", c.Len(), evicted)
	}
	c.SetCap(10)
	if c.Len() != 10 || evicted != 90 {
		t.Fatalf("after SetCap(10): len=%d evicted=%d", c.Len(), evicted)
	}
	// The survivors are the 10 most recently inserted.
	for i := 90; i < 100; i++ {
		if _, ok := c.Get(i); !ok {
			t.Errorf("entry %d missing after rebound", i)
		}
	}
}

func TestDeleteIf(t *testing.T) {
	var evicted, deleted []int
	c := New[int, int](10, func(k, _ int) { evicted = append(evicted, k) })
	for i := 0; i < 6; i++ {
		c.Put(i, i*10)
	}
	c.DeleteIf(func(k, v int) bool { return k >= 3 },
		func(k, v int) { deleted = append(deleted, v) })
	if c.Len() != 3 {
		t.Fatalf("len = %d, want 3", c.Len())
	}
	if len(deleted) != 3 {
		t.Fatalf("onDelete ran %d times, want 3", len(deleted))
	}
	if len(evicted) != 0 {
		t.Fatalf("eviction callback ran on explicit DeleteIf: %v", evicted)
	}
	for i := 0; i < 3; i++ {
		if _, ok := c.Get(i); !ok {
			t.Errorf("entry %d removed, want kept", i)
		}
	}
}

func TestDeleteSkipsCallback(t *testing.T) {
	var evicted int
	c := New[int, int](4, func(int, int) { evicted++ })
	c.Put(1, 1)
	c.Delete(1)
	if c.Len() != 0 || evicted != 0 {
		t.Fatalf("after Delete: len=%d evicted=%d", c.Len(), evicted)
	}
}

func TestSoakStaysBounded(t *testing.T) {
	const window = 8
	c := New[uint64, uint64](window, nil)
	for e := uint64(0); e < 10000; e++ {
		c.Put(e, e)
		if c.Len() > window {
			t.Fatalf("epoch %d: len = %d exceeds window %d", e, c.Len(), window)
		}
	}
	if c.Len() != window {
		t.Fatalf("final len = %d, want %d", c.Len(), window)
	}
}
