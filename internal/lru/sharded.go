package lru

import (
	"sync"
	"sync/atomic"

	"protoobf/internal/metrics"
)

// Sharded is a concurrency-safe bounded cache built from N independently
// locked Cache shards. It exists for the one cache in the system that
// many goroutines genuinely hammer at once: the compiled-version cache
// of a rotation shared by hundreds of concurrent sessions. A single
// mutex there serializes every epoch lookup of every session; sharding
// by key hash keeps lookups of different keys on different locks, so
// throughput scales with cores instead of flatlining at one lock's
// hand-off rate.
//
// The total bound is strict: Len() never exceeds the configured
// capacity. Capacity is split exactly across the active shards, and when
// the capacity is smaller than the shard count only the first `capacity`
// shards are active (keys route to `hash % active`), so a tightly
// bounded cache degrades gracefully toward a single-mutex cache instead
// of silently overshooting its bound. Eviction is per-shard LRU — an
// approximation of global LRU that is exact when keys spread evenly,
// which epoch-keyed workloads do by construction (the hash mixes the
// epoch).
//
// Re-bounding with SetCap may change the active shard count; entries
// stranded in deactivated shards are dropped (they are caches of
// deterministic computations — the next use recomputes).
type Sharded[K comparable, V any] struct {
	shards []shard[K, V]
	hash   func(K) uint64
	cap    int          // requested total capacity (<= 0 means unbounded)
	active atomic.Int32 // shards currently routed to
	mu     sync.Mutex   // serializes SetCap against itself
}

// shard pads each lock to its own cache line so neighboring shards do
// not false-share under write-heavy load. The traffic counters live in
// the shard for the same reason: a Get on one shard bumps an atomic
// nobody else's cache line holds.
type shard[K comparable, V any] struct {
	mu       sync.Mutex
	c        *Cache[K, V]
	inactive bool // deactivated by SetCap; writers must re-route
	stats    metrics.CacheCounters
	_        [64 - 48]byte
}

// NewSharded returns a sharded cache of the given total capacity
// (<= 0 means unbounded). shards <= 0 picks DefaultShards. hash
// distributes keys across shards and must be deterministic; a weak hash
// only costs balance, never correctness. onEvict, if non-nil, runs for
// entries removed by the bound, under the owning shard's lock.
func NewSharded[K comparable, V any](shards, capacity int, hash func(K) uint64, onEvict func(K, V)) *Sharded[K, V] {
	if shards <= 0 {
		shards = DefaultShards
	}
	s := &Sharded[K, V]{
		shards: make([]shard[K, V], shards),
		hash:   hash,
		cap:    capacity,
	}
	for i := range s.shards {
		// Per-shard eviction hook: count the eviction on the owning
		// shard's counters, then run the caller's callback.
		sh := &s.shards[i]
		sh.c = New[K, V](0, func(k K, v V) {
			sh.stats.Evictions.Add(1)
			if onEvict != nil {
				onEvict(k, v)
			}
		})
	}
	s.applyCap(capacity)
	return s
}

// DefaultShards is the shard count used when the caller does not pick
// one: enough parallelism for the session fleets the rotation layer
// targets, small enough that per-shard capacity stays useful.
const DefaultShards = 16

// shardOf routes k to its active shard.
func (s *Sharded[K, V]) shardOf(k K) *shard[K, V] {
	n := uint64(s.active.Load())
	return &s.shards[s.hash(k)%n]
}

// Get returns the value under k, marking it most recently used in its
// shard. Only the owning shard's lock is taken; the hit/miss counters
// are bumped outside it (one atomic add, no allocation).
func (s *Sharded[K, V]) Get(k K) (V, bool) {
	sh := s.shardOf(k)
	sh.mu.Lock()
	v, ok := sh.c.Get(k)
	sh.mu.Unlock()
	if ok {
		sh.stats.Hits.Add(1)
	} else {
		sh.stats.Misses.Add(1)
	}
	return v, ok
}

// Put inserts or replaces the value under k, evicting the shard's least
// recently used entries while the shard's slice of the bound is
// exceeded. A put racing a SetCap that deactivated its shard re-routes,
// so the strict total bound holds even across re-bounding.
func (s *Sharded[K, V]) Put(k K, v V) {
	for {
		sh := s.shardOf(k)
		sh.mu.Lock()
		if sh.inactive {
			sh.mu.Unlock()
			continue
		}
		sh.c.Put(k, v)
		sh.mu.Unlock()
		return
	}
}

// GetQuiet is Get without touching the hit/miss counters: for callers
// re-checking the cache as part of one logical lookup whose first Get
// already counted the outcome (the singleflight compile path), so a
// single miss is never reported twice. Recency is still updated.
func (s *Sharded[K, V]) GetQuiet(k K) (V, bool) {
	sh := s.shardOf(k)
	sh.mu.Lock()
	v, ok := sh.c.Get(k)
	sh.mu.Unlock()
	return v, ok
}

// Delete removes k without invoking the eviction callback.
func (s *Sharded[K, V]) Delete(k K) {
	sh := s.shardOf(k)
	sh.mu.Lock()
	sh.c.Delete(k)
	sh.mu.Unlock()
}

// DeleteIf removes every entry for which fn returns true, calling
// onDelete (if non-nil) for each removed entry. Shards are swept one at
// a time, so concurrent readers of other shards proceed. All shards are
// swept, including ones deactivated by a past SetCap.
func (s *Sharded[K, V]) DeleteIf(fn func(K, V) bool, onDelete func(K, V)) {
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.Lock()
		sh.c.DeleteIf(fn, onDelete)
		sh.mu.Unlock()
	}
}

// Len returns the total number of cached entries across all shards.
func (s *Sharded[K, V]) Len() int {
	n := 0
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.Lock()
		n += sh.c.Len()
		sh.mu.Unlock()
	}
	return n
}

// Cap returns the configured total bound (<= 0 means unbounded).
func (s *Sharded[K, V]) Cap() int { return s.cap }

// Stats snapshots the cache's traffic: totals and the per-shard
// breakdown, plus the live geometry. The snapshot is not atomic across
// shards — concurrent traffic may land between shard reads — but every
// counter individually is monotonic and the per-shard rows always sum
// to the totals of the same snapshot.
func (s *Sharded[K, V]) Stats() metrics.CacheStats {
	st := metrics.CacheStats{
		Cap:      s.cap,
		Shards:   len(s.shards),
		PerShard: make([]metrics.CacheShardStats, len(s.shards)),
	}
	for i := range s.shards {
		sh := &s.shards[i]
		row := sh.stats.Snapshot()
		st.PerShard[i] = row
		st.Hits += row.Hits
		st.Misses += row.Misses
		st.Evictions += row.Evictions
		sh.mu.Lock()
		st.Len += sh.c.Len()
		sh.mu.Unlock()
	}
	return st
}

// Shards returns the construction-time shard count.
func (s *Sharded[K, V]) Shards() int { return len(s.shards) }

// SetCap re-bounds the cache to at most capacity total entries,
// evicting immediately. A capacity <= 0 removes the bound. Shrinking
// below the shard count deactivates shards; their entries are dropped.
func (s *Sharded[K, V]) SetCap(capacity int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.cap = capacity
	s.applyCap(capacity)
}

// applyCap distributes capacity across shards and flushes deactivated
// ones. The active count is published only after the newly active
// shards have their caps in place, so a racing Put can never land in a
// shard believing itself unbounded.
func (s *Sharded[K, V]) applyCap(capacity int) {
	active := len(s.shards)
	if capacity > 0 && capacity < active {
		active = capacity
	}
	base, extra := 0, 0
	if capacity > 0 {
		base, extra = capacity/active, capacity%active
	}
	for i := 0; i < active; i++ {
		c := base
		if i < extra {
			c++
		}
		if capacity <= 0 {
			c = 0 // unbounded
		}
		sh := &s.shards[i]
		sh.mu.Lock()
		sh.inactive = false
		sh.c.SetCap(c)
		sh.mu.Unlock()
	}
	s.active.Store(int32(active))
	// Entries routed to now-inactive shards would never be found again;
	// drop them rather than strand them.
	for i := active; i < len(s.shards); i++ {
		sh := &s.shards[i]
		sh.mu.Lock()
		sh.inactive = true
		sh.c.DeleteIf(func(K, V) bool { return true }, nil)
		sh.c.SetCap(0)
		sh.mu.Unlock()
	}
}

// Range calls fn for every cached entry, stopping early when fn returns
// false. Each shard is locked only while it is being walked; entries
// added or removed concurrently in other shards may or may not be seen.
func (s *Sharded[K, V]) Range(fn func(K, V) bool) {
	for i := range s.shards {
		sh := &s.shards[i]
		stop := false
		sh.mu.Lock()
		sh.c.Range(func(k K, v V) bool {
			if !fn(k, v) {
				stop = true
				return false
			}
			return true
		})
		sh.mu.Unlock()
		if stop {
			return
		}
	}
}

// Mix64 is a SplitMix64-style finalizer usable as the hash for integer
// keys: consecutive inputs land on unrelated shards.
func Mix64(x uint64) uint64 {
	x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9
	x = (x ^ (x >> 27)) * 0x94D049BB133111EB
	return x ^ (x >> 31)
}
