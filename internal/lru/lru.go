// Package lru is a small bounded map with least-recently-used eviction,
// sized for the dialect caches of the rotation control plane: a session
// touches a handful of epochs around the current one (the current send
// epoch, a few stale epochs with frames still in flight, the rekey
// target), so the working set is tiny while the epoch counter itself
// grows without bound. Bounding the cache at a window keeps a long-lived
// session at O(window) memory instead of O(epochs).
//
// The implementation is deliberately simple: entries carry a use tick
// and eviction scans for the minimum. For the window sizes the control
// plane uses (tens of entries) the scan is cheaper than maintaining an
// intrusive list, and the zero-allocation Get path is what the session
// hot path actually exercises.
//
// Cache is not safe for concurrent use; callers hold their own locks
// (core.Rotation and session.Conn both already serialize cache access).
package lru

// Cache maps K to V, keeping at most Cap entries.
type Cache[K comparable, V any] struct {
	cap     int
	tick    uint64
	entries map[K]*entry[V]
	onEvict func(K, V)
}

type entry[V any] struct {
	v    V
	used uint64
}

// New returns a cache bounded at capacity entries. A capacity <= 0 means
// unbounded. onEvict, if non-nil, runs for every entry removed by the
// bound (not for explicit Delete calls), letting callers drop derived
// state alongside.
func New[K comparable, V any](capacity int, onEvict func(K, V)) *Cache[K, V] {
	return &Cache[K, V]{
		cap:     capacity,
		entries: make(map[K]*entry[V]),
		onEvict: onEvict,
	}
}

// Get returns the value under k, marking it most recently used.
func (c *Cache[K, V]) Get(k K) (V, bool) {
	e, ok := c.entries[k]
	if !ok {
		var zero V
		return zero, false
	}
	c.tick++
	e.used = c.tick
	return e.v, true
}

// Put inserts or replaces the value under k as most recently used,
// evicting the least recently used entries while the bound is exceeded.
func (c *Cache[K, V]) Put(k K, v V) {
	c.tick++
	if e, ok := c.entries[k]; ok {
		e.v = v
		e.used = c.tick
		return
	}
	c.entries[k] = &entry[V]{v: v, used: c.tick}
	c.shrink()
}

// Delete removes k without invoking the eviction callback.
func (c *Cache[K, V]) Delete(k K) { delete(c.entries, k) }

// DeleteIf removes every entry for which fn returns true, calling
// onDelete (if non-nil) for each removed entry. The eviction callback
// does not run — explicit invalidation (a rekey boundary) is not an
// LRU eviction.
func (c *Cache[K, V]) DeleteIf(fn func(K, V) bool, onDelete func(K, V)) {
	for k, e := range c.entries {
		if fn(k, e.v) {
			delete(c.entries, k)
			if onDelete != nil {
				onDelete(k, e.v)
			}
		}
	}
}

// Len returns the number of cached entries.
func (c *Cache[K, V]) Len() int { return len(c.entries) }

// Cap returns the configured bound (<= 0 means unbounded).
func (c *Cache[K, V]) Cap() int { return c.cap }

// SetCap re-bounds the cache, evicting down to the new capacity
// immediately. A capacity <= 0 removes the bound.
func (c *Cache[K, V]) SetCap(capacity int) {
	c.cap = capacity
	c.shrink()
}

// Range calls fn for every cached entry in unspecified order, stopping
// early when fn returns false. It does not touch recency.
func (c *Cache[K, V]) Range(fn func(K, V) bool) {
	for k, e := range c.entries {
		if !fn(k, e.v) {
			return
		}
	}
}

func (c *Cache[K, V]) shrink() {
	if c.cap <= 0 {
		return
	}
	for len(c.entries) > c.cap {
		var (
			lruKey K
			lruUse uint64
			found  bool
		)
		for k, e := range c.entries {
			if !found || e.used < lruUse {
				lruKey, lruUse, found = k, e.used, true
			}
		}
		e := c.entries[lruKey]
		delete(c.entries, lruKey)
		if c.onEvict != nil {
			c.onEvict(lruKey, e.v)
		}
	}
}
