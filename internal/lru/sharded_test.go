package lru

import (
	"fmt"
	"sync"
	"testing"
)

func shardedForTest(shards, capacity int, onEvict func(uint64, string)) *Sharded[uint64, string] {
	return NewSharded[uint64, string](shards, capacity, Mix64, onEvict)
}

func TestShardedBasics(t *testing.T) {
	s := shardedForTest(4, 0, nil)
	if _, ok := s.Get(1); ok {
		t.Fatal("hit on empty cache")
	}
	s.Put(1, "one")
	s.Put(2, "two")
	if v, ok := s.Get(1); !ok || v != "one" {
		t.Fatalf("Get(1) = %q, %v", v, ok)
	}
	if s.Len() != 2 {
		t.Fatalf("Len = %d, want 2", s.Len())
	}
	s.Put(1, "uno")
	if v, _ := s.Get(1); v != "uno" {
		t.Fatalf("replace: Get(1) = %q", v)
	}
	if s.Len() != 2 {
		t.Fatalf("Len after replace = %d, want 2", s.Len())
	}
	s.Delete(1)
	if _, ok := s.Get(1); ok {
		t.Fatal("deleted key still present")
	}
}

// TestShardedStrictBound is the property the rotation soak tests rely
// on: Len never exceeds the configured capacity, for every combination
// of capacity and shard count — including capacities smaller than the
// shard count.
func TestShardedStrictBound(t *testing.T) {
	for _, shards := range []int{1, 3, 8, 16} {
		for _, capacity := range []int{1, 2, 5, 16, 64} {
			t.Run(fmt.Sprintf("shards=%d/cap=%d", shards, capacity), func(t *testing.T) {
				s := shardedForTest(shards, capacity, nil)
				for k := uint64(0); k < 500; k++ {
					s.Put(k, "v")
					if n := s.Len(); n > capacity {
						t.Fatalf("after %d puts: Len = %d exceeds cap %d", k+1, n, capacity)
					}
				}
				// The cache is not degenerate: it retains a meaningful
				// fraction of its capacity under a uniform key stream.
				if n := s.Len(); n < (capacity+1)/2 {
					t.Fatalf("retained %d of cap %d", n, capacity)
				}
			})
		}
	}
}

func TestShardedRecency(t *testing.T) {
	// One shard makes LRU order exact; the point is that Get refreshes.
	s := shardedForTest(1, 2, nil)
	s.Put(1, "a")
	s.Put(2, "b")
	s.Get(1) // 2 is now least recently used
	s.Put(3, "c")
	if _, ok := s.Get(2); ok {
		t.Fatal("LRU entry survived eviction")
	}
	if _, ok := s.Get(1); !ok {
		t.Fatal("recently used entry evicted")
	}
}

func TestShardedSetCap(t *testing.T) {
	s := shardedForTest(8, 0, nil)
	for k := uint64(0); k < 100; k++ {
		s.Put(k, "v")
	}
	if s.Len() != 100 {
		t.Fatalf("unbounded Len = %d", s.Len())
	}
	// Shrink below the shard count: the bound must still be strict.
	s.SetCap(3)
	if n := s.Len(); n > 3 {
		t.Fatalf("after SetCap(3): Len = %d", n)
	}
	for k := uint64(200); k < 300; k++ {
		s.Put(k, "v")
		if n := s.Len(); n > 3 {
			t.Fatalf("after post-shrink put: Len = %d", n)
		}
	}
	// Grow again: previously deactivated shards rejoin.
	s.SetCap(64)
	for k := uint64(300); k < 400; k++ {
		s.Put(k, "v")
	}
	if n := s.Len(); n > 64 || n < 32 {
		t.Fatalf("after SetCap(64) refill: Len = %d", n)
	}
	// Remove the bound.
	s.SetCap(0)
	for k := uint64(400); k < 600; k++ {
		s.Put(k, "v")
	}
	if n := s.Len(); n < 200 {
		t.Fatalf("unbounded again: Len = %d", n)
	}
}

func TestShardedDeleteIf(t *testing.T) {
	s := shardedForTest(4, 0, nil)
	for k := uint64(0); k < 40; k++ {
		s.Put(k, "v")
	}
	var dropped int
	s.DeleteIf(func(k uint64, _ string) bool { return k >= 20 },
		func(uint64, string) { dropped++ })
	if dropped != 20 || s.Len() != 20 {
		t.Fatalf("dropped %d, Len %d", dropped, s.Len())
	}
	s.Range(func(k uint64, _ string) bool {
		if k >= 20 {
			t.Fatalf("key %d survived DeleteIf", k)
		}
		return true
	})
}

func TestShardedEvictCallback(t *testing.T) {
	evicted := map[uint64]bool{}
	s := shardedForTest(2, 2, func(k uint64, _ string) { evicted[k] = true })
	for k := uint64(0); k < 10; k++ {
		s.Put(k, "v")
	}
	if len(evicted) != 8 {
		t.Fatalf("evicted %d entries, want 8", len(evicted))
	}
}

// TestShardedConcurrent hammers every operation from many goroutines;
// run under -race this is the shard-lock correctness test.
func TestShardedConcurrent(t *testing.T) {
	s := shardedForTest(8, 128, nil)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 2000; i++ {
				k := uint64(w*1000 + i%300)
				switch i % 4 {
				case 0, 1:
					s.Get(k)
				case 2:
					s.Put(k, "v")
				default:
					if i%64 == 0 {
						s.SetCap(64 + i%128)
					} else {
						s.Get(k)
					}
				}
			}
		}(w)
	}
	wg.Wait()
	if n, c := s.Len(), s.Cap(); c > 0 && n > c {
		t.Fatalf("Len %d exceeds cap %d after concurrent churn", n, c)
	}
}

func BenchmarkShardedGet(b *testing.B) {
	for _, shards := range []int{1, 16} {
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			s := shardedForTest(shards, 256, nil)
			for k := uint64(0); k < 128; k++ {
				s.Put(k, "v")
			}
			b.ReportAllocs()
			b.RunParallel(func(pb *testing.PB) {
				k := uint64(0)
				for pb.Next() {
					s.Get(k & 127)
					k++
				}
			})
		})
	}
}

// TestShardedStats pins the counter semantics the observability layer
// reports: hits and misses count Get outcomes, evictions count only
// bound-driven removals, per-shard rows sum to the totals, and the
// geometry fields reflect the live configuration.
func TestShardedStats(t *testing.T) {
	s := shardedForTest(4, 0, nil)
	s.Get(1) // miss
	s.Put(1, "one")
	s.Put(2, "two")
	s.Get(1) // hit
	s.Get(2) // hit
	s.Get(9) // miss

	st := s.Stats()
	if st.Hits != 2 || st.Misses != 2 {
		t.Fatalf("hits/misses = %d/%d, want 2/2", st.Hits, st.Misses)
	}
	if st.Evictions != 0 {
		t.Fatalf("evictions = %d on an unbounded cache, want 0", st.Evictions)
	}
	if st.Len != s.Len() || st.Cap != 0 || st.Shards != 4 {
		t.Fatalf("geometry = len %d cap %d shards %d, want %d/0/4", st.Len, st.Cap, st.Shards, s.Len())
	}
	var h, m, e uint64
	for _, row := range st.PerShard {
		h += row.Hits
		m += row.Misses
		e += row.Evictions
	}
	if h != st.Hits || m != st.Misses || e != st.Evictions {
		t.Fatalf("per-shard rows (%d/%d/%d) do not sum to totals (%d/%d/%d)",
			h, m, e, st.Hits, st.Misses, st.Evictions)
	}
	if r := st.HitRate(); r != 0.5 {
		t.Fatalf("hit rate = %v, want 0.5", r)
	}

	// Bound-driven removals do count: a single-shard cap-2 cache must
	// record exactly one eviction for three inserts.
	b := shardedForTest(1, 2, nil)
	b.Put(1, "one")
	b.Put(2, "two")
	b.Put(3, "three")
	if ev := b.Stats().Evictions; ev != 1 {
		t.Fatalf("evictions = %d after overflowing cap-2 by one, want 1", ev)
	}
}

// TestShardedStatsExplicitRemovalsNotCounted: Delete and DeleteIf are
// invalidation, not LRU pressure; they must not show up as evictions.
func TestShardedStatsExplicitRemovalsNotCounted(t *testing.T) {
	s := shardedForTest(2, 0, nil)
	s.Put(1, "one")
	s.Put(2, "two")
	s.Delete(1)
	s.DeleteIf(func(uint64, string) bool { return true }, nil)
	if ev := s.Stats().Evictions; ev != 0 {
		t.Fatalf("evictions = %d after explicit removals only, want 0", ev)
	}
}

// TestShardedGetQuiet: the counter-free lookup serves values and
// updates recency but records neither hits nor misses.
func TestShardedGetQuiet(t *testing.T) {
	s := shardedForTest(2, 0, nil)
	s.Put(1, "one")
	if v, ok := s.GetQuiet(1); !ok || v != "one" {
		t.Fatalf("GetQuiet(1) = %q, %v", v, ok)
	}
	if _, ok := s.GetQuiet(2); ok {
		t.Fatal("GetQuiet hit on absent key")
	}
	st := s.Stats()
	if st.Hits != 0 || st.Misses != 0 {
		t.Fatalf("GetQuiet counted traffic: hits=%d misses=%d", st.Hits, st.Misses)
	}
}
