//go:build ignore

// gen_corpus writes the checked-in seed corpus for FuzzArtifactDecode:
// a handful of real encodings (different seeds, so different transform
// pipelines), a mutated sibling, and the shortest interesting prefixes.
// Run from the repo root with
//
//	go run internal/artifact/gen_corpus.go
//
// and commit the files it writes under
// internal/artifact/testdata/fuzz/FuzzArtifactDecode/.
package main

import (
	"encoding/binary"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"strconv"

	"protoobf/internal/artifact"
	"protoobf/internal/core"
)

const spec = `
protocol telemetry;
root seq msg end {
    uint  device 2;
    uint  seqno 4;
    uint  blen 2;
    seq body length(blen) {
        bytes status delim ";" min 1;
    }
    bytes sig end;
}
`

func encoded(seed int64, epoch uint64) []byte {
	p, err := core.Compile(spec, core.ObfuscationOptions{PerNode: 3, Seed: seed})
	if err != nil {
		log.Fatalf("compile seed %d: %v", seed, err)
	}
	enc, err := artifact.Encode(&artifact.Artifact{
		Key: artifact.Key{
			SpecDigest: artifact.SpecDigest(spec, 3, nil, nil),
			Family:     seed,
			Epoch:      epoch,
		},
		PerNode: 3,
		Applied: len(p.Applied),
		Graph:   p.Graph,
	})
	if err != nil {
		log.Fatalf("encode seed %d: %v", seed, err)
	}
	return enc
}

func main() {
	dir := filepath.Join("internal", "artifact", "testdata", "fuzz", "FuzzArtifactDecode")
	if err := os.MkdirAll(dir, 0o755); err != nil {
		log.Fatal(err)
	}

	seeds := map[string][]byte{}

	var magic [4]byte
	binary.BigEndian.PutUint32(magic[:], 0x64696131)
	seeds["empty"] = nil
	seeds["magic-only"] = magic[:]
	seeds["magic-version"] = append(append([]byte(nil), magic[:]...), 0x00, 0x01)

	for _, s := range []int64{7, 53, 9001} {
		seeds[fmt.Sprintf("encoded-seed-%d", s)] = encoded(s, uint64(s)%5)
	}

	// A mutated sibling: a valid encoding with one byte flipped deep in
	// the node tree, so the fuzzer starts with a near-miss.
	mut := encoded(7, 1)
	mut[len(mut)/2] ^= 0x01
	seeds["mutated"] = mut

	// Truncation of a real encoding: exercises every reader bound.
	trunc := encoded(53, 2)
	seeds["truncated"] = trunc[:len(trunc)/3]

	for name, data := range seeds {
		body := "go test fuzz v1\n[]byte(" + strconv.Quote(string(data)) + ")\n"
		path := filepath.Join(dir, name)
		if err := os.WriteFile(path, []byte(body), 0o644); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("wrote %s (%d bytes of input)\n", path, len(data))
	}
}
