// Package artifact serializes compiled dialect state so a fleet of
// processes can share one compilation: a backend that needs the dialect
// for (spec, family seed, epoch) loads the transformed message graph
// from a byte blob instead of re-running the obfuscation pipeline.
//
// An artifact is keyed by (spec digest, family seed, epoch). The digest
// covers the spec source AND the obfuscation options that shape the
// transformation search (per-node budget, transformation filters), so
// two processes compiled with different configurations can never
// confuse each other's artifacts. The payload is the transformed graph
// only — the per-dialect RNG is re-derived from the seed by the loader,
// which is safe because runtime randomness feeds pad bytes and split
// halves that the parser ignores by construction.
//
// The format is a versioned binary encoding with strict decode bounds:
// decoding untrusted bytes may fail loudly but never allocates without
// limit or recurses without a depth budget.
package artifact

import (
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"fmt"

	"protoobf/internal/graph"
)

// Key identifies one compiled dialect version across processes.
type Key struct {
	// SpecDigest fingerprints the spec source and the obfuscation
	// configuration (see SpecDigest).
	SpecDigest [32]byte
	// Family is the master seed of the dialect family.
	Family int64
	// Epoch is the rotation epoch within the family.
	Epoch uint64
}

// Artifact is one serializable compiled dialect version.
type Artifact struct {
	Key Key
	// PerNode is the obfuscation budget the graph was compiled at
	// (informational — the digest already pins it).
	PerNode int
	// Applied is the number of transformations the compiler applied
	// (informational — the transformation records themselves do not
	// survive serialization, only their product does).
	Applied int
	// Graph is the transformed message graph, parse- and
	// serialize-ready.
	Graph *graph.Graph
}

// SpecDigest fingerprints a spec source plus the obfuscation options
// that influence compilation output. Seed and epoch are deliberately
// excluded — they are the other two key components.
func SpecDigest(source string, perNode int, only, exclude []string) [32]byte {
	h := sha256.New()
	h.Write([]byte("protoobf artifact spec v1\n"))
	var n [8]byte
	put := func(b []byte) {
		binary.BigEndian.PutUint64(n[:], uint64(len(b)))
		h.Write(n[:])
		h.Write(b)
	}
	put([]byte(source))
	binary.BigEndian.PutUint64(n[:], uint64(perNode))
	h.Write(n[:])
	binary.BigEndian.PutUint64(n[:], uint64(len(only)))
	h.Write(n[:])
	for _, s := range only {
		put([]byte(s))
	}
	binary.BigEndian.PutUint64(n[:], uint64(len(exclude)))
	h.Write(n[:])
	for _, s := range exclude {
		put([]byte(s))
	}
	var d [32]byte
	h.Sum(d[:0])
	return d
}

const (
	// artifactMagic opens every encoded artifact ("dia1": dialect
	// artifact, format 1).
	artifactMagic = 0x64696131
	// formatVersion is bumped on any incompatible layout change; old
	// blobs then miss in the store and get recompiled, never misread.
	formatVersion = 1

	// Decode bounds. A transformed telemetry-scale graph is a few KiB;
	// the caps below leave two orders of magnitude of headroom while
	// keeping hostile inputs cheap to reject.
	maxEncodedLen = 4 << 20
	maxBlobLen    = 1 << 16
	maxNodes      = 1 << 16
	maxDepth      = 200
	maxOpsPerNode = 1 << 12
	maxDim        = 1 << 24 // cap on sizes, widths, offsets, min lengths
)

// ErrCorrupt reports an artifact blob that failed structural
// validation. Loaders treat it as a cache miss worth surfacing.
var ErrCorrupt = errors.New("artifact: corrupt encoding")

func corrupt(format string, args ...any) error {
	return fmt.Errorf("%w: %s", ErrCorrupt, fmt.Sprintf(format, args...))
}

// Encode serializes a. The artifact's graph must be non-nil with a
// non-nil root.
func Encode(a *Artifact) ([]byte, error) {
	if a == nil || a.Graph == nil || a.Graph.Root == nil {
		return nil, errors.New("artifact: nothing to encode")
	}
	w := &writer{}
	w.u32(artifactMagic)
	w.u16(formatVersion)
	w.raw(a.Key.SpecDigest[:])
	w.u64(uint64(a.Key.Family))
	w.u64(a.Key.Epoch)
	w.u16(uint16(a.PerNode))
	w.u32(uint32(a.Applied))
	if err := w.str(a.Graph.ProtocolName); err != nil {
		return nil, err
	}
	if err := encodeNode(w, a.Graph.Root, 0); err != nil {
		return nil, err
	}
	if len(w.b) > maxEncodedLen {
		return nil, fmt.Errorf("artifact: encoding exceeds %d bytes", maxEncodedLen)
	}
	return w.b, nil
}

// Decode parses an encoded artifact and reconstructs its graph with
// parent links and ID state rebuilt.
func Decode(data []byte) (*Artifact, error) {
	if len(data) > maxEncodedLen {
		return nil, corrupt("input %d bytes exceeds %d cap", len(data), maxEncodedLen)
	}
	r := &reader{b: data}
	magic, err := r.u32()
	if err != nil {
		return nil, err
	}
	if magic != artifactMagic {
		return nil, corrupt("bad magic %#x", magic)
	}
	ver, err := r.u16()
	if err != nil {
		return nil, err
	}
	if ver != formatVersion {
		return nil, corrupt("unsupported format version %d", ver)
	}
	a := &Artifact{}
	dig, err := r.raw(32)
	if err != nil {
		return nil, err
	}
	copy(a.Key.SpecDigest[:], dig)
	fam, err := r.u64()
	if err != nil {
		return nil, err
	}
	a.Key.Family = int64(fam)
	if a.Key.Epoch, err = r.u64(); err != nil {
		return nil, err
	}
	pn, err := r.u16()
	if err != nil {
		return nil, err
	}
	a.PerNode = int(pn)
	ap, err := r.u32()
	if err != nil {
		return nil, err
	}
	a.Applied = int(ap)
	name, err := r.str()
	if err != nil {
		return nil, err
	}
	root, err := decodeNode(r, 0)
	if err != nil {
		return nil, err
	}
	if r.off != len(r.b) {
		return nil, corrupt("%d trailing bytes", len(r.b)-r.off)
	}
	// graph.New would stamp fresh Origins over the serialized ones;
	// build the struct directly and let Rebuild restore parent links
	// and the ID high-water mark.
	g := &graph.Graph{ProtocolName: name, Root: root}
	g.Rebuild()
	a.Graph = g
	return a, nil
}

// Node layout flag bits.
const (
	flagReversed = 1 << iota
	flagAutoFill
	flagComb
	flagPair
)

func encodeNode(w *writer, n *graph.Node, depth int) error {
	if depth > maxDepth {
		return fmt.Errorf("artifact: graph deeper than %d", maxDepth)
	}
	w.u8(uint8(n.Kind))
	if err := w.str(n.Name); err != nil {
		return err
	}
	var flags uint8
	if n.Reversed {
		flags |= flagReversed
	}
	if n.AutoFill {
		flags |= flagAutoFill
	}
	if n.Comb != nil {
		flags |= flagComb
	}
	if n.Pair != nil {
		flags |= flagPair
	}
	w.u8(flags)
	w.u8(uint8(n.Boundary.Kind))
	if err := w.dim(n.Boundary.Size); err != nil {
		return err
	}
	if err := w.bytes(n.Boundary.Delim); err != nil {
		return err
	}
	if err := w.str(n.Boundary.Ref); err != nil {
		return err
	}
	w.u8(uint8(n.Enc))
	if err := w.dim(n.MinLen); err != nil {
		return err
	}
	if err := w.str(n.Cond.Ref); err != nil {
		return err
	}
	w.u8(uint8(n.Cond.Op))
	w.u64(n.Cond.UintVal)
	if err := w.bytes(n.Cond.BytesVal); err != nil {
		return err
	}
	w.bool(n.Cond.IsBytes)
	if err := w.str(n.Origin.Name); err != nil {
		return err
	}
	w.u8(uint8(n.Origin.Role))
	if len(n.Ops) > maxOpsPerNode {
		return fmt.Errorf("artifact: %d value ops on one node", len(n.Ops))
	}
	w.u16(uint16(len(n.Ops)))
	for _, op := range n.Ops {
		w.u8(uint8(op.Kind))
		w.u64(op.K)
		if err := w.bytes(op.KB); err != nil {
			return err
		}
	}
	if n.Comb != nil {
		w.u8(uint8(n.Comb.Kind))
		if err := w.dim(n.Comb.Width); err != nil {
			return err
		}
		if err := w.dim(n.Comb.SplitAt); err != nil {
			return err
		}
	}
	if n.Pair != nil {
		if err := w.dim(n.Pair.SizeA); err != nil {
			return err
		}
		if err := w.dim(n.Pair.SizeB); err != nil {
			return err
		}
	}
	if len(n.Children) > maxNodes {
		return fmt.Errorf("artifact: %d children on one node", len(n.Children))
	}
	w.u16(uint16(len(n.Children)))
	for _, c := range n.Children {
		if err := encodeNode(w, c, depth+1); err != nil {
			return err
		}
	}
	return nil
}

func decodeNode(r *reader, depth int) (*graph.Node, error) {
	if depth > maxDepth {
		return nil, corrupt("graph deeper than %d", maxDepth)
	}
	r.nodes++
	if r.nodes > maxNodes {
		return nil, corrupt("more than %d nodes", maxNodes)
	}
	n := &graph.Node{}
	kind, err := r.u8()
	if err != nil {
		return nil, err
	}
	n.Kind = graph.Kind(kind)
	if n.Name, err = r.str(); err != nil {
		return nil, err
	}
	flags, err := r.u8()
	if err != nil {
		return nil, err
	}
	if flags&^uint8(flagReversed|flagAutoFill|flagComb|flagPair) != 0 {
		return nil, corrupt("unknown node flags %#x", flags)
	}
	n.Reversed = flags&flagReversed != 0
	n.AutoFill = flags&flagAutoFill != 0
	bk, err := r.u8()
	if err != nil {
		return nil, err
	}
	n.Boundary.Kind = graph.BoundaryKind(bk)
	if n.Boundary.Size, err = r.dim(); err != nil {
		return nil, err
	}
	if n.Boundary.Delim, err = r.bytes(); err != nil {
		return nil, err
	}
	if n.Boundary.Ref, err = r.str(); err != nil {
		return nil, err
	}
	enc, err := r.u8()
	if err != nil {
		return nil, err
	}
	n.Enc = graph.Enc(enc)
	if n.MinLen, err = r.dim(); err != nil {
		return nil, err
	}
	if n.Cond.Ref, err = r.str(); err != nil {
		return nil, err
	}
	op, err := r.u8()
	if err != nil {
		return nil, err
	}
	n.Cond.Op = graph.CondOp(op)
	if n.Cond.UintVal, err = r.u64(); err != nil {
		return nil, err
	}
	if n.Cond.BytesVal, err = r.bytes(); err != nil {
		return nil, err
	}
	if n.Cond.IsBytes, err = r.bool(); err != nil {
		return nil, err
	}
	if n.Origin.Name, err = r.str(); err != nil {
		return nil, err
	}
	role, err := r.u8()
	if err != nil {
		return nil, err
	}
	n.Origin.Role = graph.Role(role)
	nOps, err := r.u16()
	if err != nil {
		return nil, err
	}
	if int(nOps) > maxOpsPerNode {
		return nil, corrupt("%d value ops on one node", nOps)
	}
	for i := 0; i < int(nOps); i++ {
		var vo graph.ValueOp
		k, err := r.u8()
		if err != nil {
			return nil, err
		}
		vo.Kind = graph.OpKind(k)
		if vo.K, err = r.u64(); err != nil {
			return nil, err
		}
		if vo.KB, err = r.bytes(); err != nil {
			return nil, err
		}
		n.Ops = append(n.Ops, vo)
	}
	if flags&flagComb != 0 {
		n.Comb = &graph.Combine{}
		ck, err := r.u8()
		if err != nil {
			return nil, err
		}
		n.Comb.Kind = graph.CombineKind(ck)
		if n.Comb.Width, err = r.dim(); err != nil {
			return nil, err
		}
		if n.Comb.SplitAt, err = r.dim(); err != nil {
			return nil, err
		}
	}
	if flags&flagPair != 0 {
		n.Pair = &graph.RepPair{}
		if n.Pair.SizeA, err = r.dim(); err != nil {
			return nil, err
		}
		if n.Pair.SizeB, err = r.dim(); err != nil {
			return nil, err
		}
	}
	nKids, err := r.u16()
	if err != nil {
		return nil, err
	}
	for i := 0; i < int(nKids); i++ {
		c, err := decodeNode(r, depth+1)
		if err != nil {
			return nil, err
		}
		n.Children = append(n.Children, c)
	}
	return n, nil
}

// writer is a bounds-checking big-endian append encoder.
type writer struct {
	b []byte
}

func (w *writer) raw(p []byte) { w.b = append(w.b, p...) }
func (w *writer) u8(v uint8)   { w.b = append(w.b, v) }
func (w *writer) u16(v uint16) { w.b = binary.BigEndian.AppendUint16(w.b, v) }
func (w *writer) u32(v uint32) { w.b = binary.BigEndian.AppendUint32(w.b, v) }
func (w *writer) u64(v uint64) { w.b = binary.BigEndian.AppendUint64(w.b, v) }
func (w *writer) bool(v bool) {
	if v {
		w.u8(1)
	} else {
		w.u8(0)
	}
}

func (w *writer) bytes(p []byte) error {
	if len(p) >= maxBlobLen {
		return fmt.Errorf("artifact: blob of %d bytes exceeds %d cap", len(p), maxBlobLen-1)
	}
	w.u16(uint16(len(p)))
	w.raw(p)
	return nil
}

func (w *writer) str(s string) error { return w.bytes([]byte(s)) }

// dim encodes a non-negative structural dimension (size, width,
// offset) with a sanity cap.
func (w *writer) dim(v int) error {
	if v < 0 || v > maxDim {
		return fmt.Errorf("artifact: dimension %d outside [0, %d]", v, maxDim)
	}
	w.u32(uint32(v))
	return nil
}

// reader is the matching bounds-checked decoder.
type reader struct {
	b     []byte
	off   int
	nodes int
}

func (r *reader) take(n int) ([]byte, error) {
	if len(r.b)-r.off < n {
		return nil, corrupt("truncated at offset %d (need %d bytes)", r.off, n)
	}
	p := r.b[r.off : r.off+n]
	r.off += n
	return p, nil
}

func (r *reader) raw(n int) ([]byte, error) { return r.take(n) }

func (r *reader) u8() (uint8, error) {
	p, err := r.take(1)
	if err != nil {
		return 0, err
	}
	return p[0], nil
}

func (r *reader) u16() (uint16, error) {
	p, err := r.take(2)
	if err != nil {
		return 0, err
	}
	return binary.BigEndian.Uint16(p), nil
}

func (r *reader) u32() (uint32, error) {
	p, err := r.take(4)
	if err != nil {
		return 0, err
	}
	return binary.BigEndian.Uint32(p), nil
}

func (r *reader) u64() (uint64, error) {
	p, err := r.take(8)
	if err != nil {
		return 0, err
	}
	return binary.BigEndian.Uint64(p), nil
}

func (r *reader) bool() (bool, error) {
	v, err := r.u8()
	if err != nil {
		return false, err
	}
	switch v {
	case 0:
		return false, nil
	case 1:
		return true, nil
	default:
		return false, corrupt("bool byte %d", v)
	}
}

func (r *reader) bytes() ([]byte, error) {
	n, err := r.u16()
	if err != nil {
		return nil, err
	}
	if n == 0 {
		return nil, nil
	}
	p, err := r.take(int(n))
	if err != nil {
		return nil, err
	}
	out := make([]byte, n)
	copy(out, p)
	return out, nil
}

func (r *reader) str() (string, error) {
	p, err := r.bytes()
	if err != nil {
		return "", err
	}
	return string(p), nil
}

func (r *reader) dim() (int, error) {
	v, err := r.u32()
	if err != nil {
		return 0, err
	}
	if v > maxDim {
		return 0, corrupt("dimension %d exceeds %d", v, maxDim)
	}
	return int(v), nil
}
