package artifact_test

import (
	"bytes"
	"testing"

	"protoobf/internal/artifact"
)

// FuzzArtifactDecode throws arbitrary bytes at the artifact decoder —
// the one parser in the system that reads attacker-reachable disk
// state (a shared cache directory). Properties: never panic, never
// accept trailing or truncated input silently, and accepted inputs
// must re-encode byte-identically (the format is canonical).
func FuzzArtifactDecode(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0x64, 0x69, 0x61, 0x31})       // magic only
	f.Add([]byte{0x64, 0x69, 0x61, 0x31, 0, 1}) // magic + version
	for _, seed := range []int64{7, 53} {
		a := testArtifact(f, seed, 1)
		enc, err := artifact.Encode(a)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(enc)
		// A mutated sibling so the engine starts near the deep paths.
		mut := append([]byte(nil), enc...)
		mut[len(mut)/2] ^= 0x40
		f.Add(mut)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		a, err := artifact.Decode(data)
		if err != nil {
			return
		}
		if a.Graph == nil || a.Graph.Root == nil {
			t.Fatal("accepted artifact with no graph")
		}
		enc, err := artifact.Encode(a)
		if err != nil {
			t.Fatalf("accepted input failed to re-encode: %v", err)
		}
		if !bytes.Equal(enc, data) {
			t.Fatalf("re-encode differs from accepted input (%d vs %d bytes)", len(enc), len(data))
		}
	})
}
