package artifact

import (
	"errors"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
)

// Store is a disk cache of encoded artifacts, one file per key, shared
// between processes. Writes are atomic (temp file + rename), so
// concurrent writers racing on the same key are safe: both produce a
// complete blob and the last rename wins. Readers never observe a
// partial file.
type Store struct {
	dir string
}

// NewStore opens (creating if needed) the cache directory.
func NewStore(dir string) (*Store, error) {
	if dir == "" {
		return nil, errors.New("artifact: empty store directory")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("artifact: %w", err)
	}
	return &Store{dir: dir}, nil
}

// Dir returns the cache directory.
func (s *Store) Dir() string { return s.dir }

// Path returns the file a key maps to. The name carries a spec-digest
// prefix plus the full (family, epoch) pair, so fleets with different
// specs or obfuscation options can share one directory without
// collisions.
func (s *Store) Path(k Key) string {
	name := fmt.Sprintf("%x-%016x-%016x.dia", k.SpecDigest[:8], uint64(k.Family), k.Epoch)
	return filepath.Join(s.dir, name)
}

// Load fetches and decodes the artifact for k. A missing file is a
// clean miss (nil, false, nil); a present-but-invalid file is an
// error, including a decoded artifact whose embedded key disagrees
// with the requested one (a digest-prefix collision or a renamed
// file).
func (s *Store) Load(k Key) (*Artifact, bool, error) {
	path := s.Path(k)
	data, err := os.ReadFile(path)
	if err != nil {
		if errors.Is(err, fs.ErrNotExist) {
			return nil, false, nil
		}
		return nil, false, fmt.Errorf("artifact: %w", err)
	}
	a, err := Decode(data)
	if err != nil {
		return nil, false, fmt.Errorf("artifact %s: %w", path, err)
	}
	if a.Key != k {
		return nil, false, fmt.Errorf("artifact %s: embedded key (family %d, epoch %d) does not match the requested one (family %d, epoch %d)",
			path, a.Key.Family, a.Key.Epoch, k.Family, k.Epoch)
	}
	return a, true, nil
}

// Save encodes and atomically writes a under its key.
func (s *Store) Save(a *Artifact) error {
	data, err := Encode(a)
	if err != nil {
		return err
	}
	tmp, err := os.CreateTemp(s.dir, ".dia-*")
	if err != nil {
		return fmt.Errorf("artifact: %w", err)
	}
	_, werr := tmp.Write(data)
	cerr := tmp.Close()
	if werr == nil {
		werr = cerr
	}
	if werr == nil {
		werr = os.Rename(tmp.Name(), s.Path(a.Key))
	}
	if werr != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("artifact: %w", werr)
	}
	return nil
}
