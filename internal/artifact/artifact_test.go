package artifact_test

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"protoobf/internal/artifact"
	"protoobf/internal/core"
	"protoobf/internal/graph"
)

const testSpec = `
protocol telemetry;
root seq msg end {
    uint  device 2;
    uint  seqno 4;
    uint  blen 2;
    seq body length(blen) {
        bytes status delim ";" min 1;
    }
    bytes sig end;
}
`

func compileTest(t testing.TB, seed int64) *core.Protocol {
	t.Helper()
	p, err := core.Compile(testSpec, core.ObfuscationOptions{PerNode: 3, Seed: seed})
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	return p
}

func testArtifact(t testing.TB, seed int64, epoch uint64) *artifact.Artifact {
	t.Helper()
	p := compileTest(t, seed)
	return &artifact.Artifact{
		Key: artifact.Key{
			SpecDigest: artifact.SpecDigest(testSpec, 3, nil, nil),
			Family:     seed,
			Epoch:      epoch,
		},
		PerNode: 3,
		Applied: len(p.Applied),
		Graph:   p.Graph,
	}
}

// sameNode compares every serialized Node field, recursively.
func sameNode(t *testing.T, path string, a, b *graph.Node) {
	t.Helper()
	if a.Name != b.Name || a.Kind != b.Kind {
		t.Fatalf("%s: name/kind %q/%v != %q/%v", path, a.Name, a.Kind, b.Name, b.Kind)
	}
	if a.Boundary.Kind != b.Boundary.Kind || a.Boundary.Size != b.Boundary.Size ||
		!bytes.Equal(a.Boundary.Delim, b.Boundary.Delim) || a.Boundary.Ref != b.Boundary.Ref {
		t.Fatalf("%s: boundary %+v != %+v", path, a.Boundary, b.Boundary)
	}
	if a.Enc != b.Enc || a.MinLen != b.MinLen || a.Reversed != b.Reversed || a.AutoFill != b.AutoFill {
		t.Fatalf("%s: enc/minlen/flags differ", path)
	}
	if a.Cond.Ref != b.Cond.Ref || a.Cond.Op != b.Cond.Op || a.Cond.UintVal != b.Cond.UintVal ||
		!bytes.Equal(a.Cond.BytesVal, b.Cond.BytesVal) || a.Cond.IsBytes != b.Cond.IsBytes {
		t.Fatalf("%s: cond %+v != %+v", path, a.Cond, b.Cond)
	}
	if a.Origin != b.Origin {
		t.Fatalf("%s: origin %+v != %+v", path, a.Origin, b.Origin)
	}
	if len(a.Ops) != len(b.Ops) {
		t.Fatalf("%s: %d ops != %d ops", path, len(a.Ops), len(b.Ops))
	}
	for i := range a.Ops {
		if a.Ops[i].Kind != b.Ops[i].Kind || a.Ops[i].K != b.Ops[i].K || !bytes.Equal(a.Ops[i].KB, b.Ops[i].KB) {
			t.Fatalf("%s: op %d differs", path, i)
		}
	}
	if (a.Comb == nil) != (b.Comb == nil) {
		t.Fatalf("%s: comb presence differs", path)
	}
	if a.Comb != nil && *a.Comb != *b.Comb {
		t.Fatalf("%s: comb %+v != %+v", path, *a.Comb, *b.Comb)
	}
	if (a.Pair == nil) != (b.Pair == nil) {
		t.Fatalf("%s: pair presence differs", path)
	}
	if a.Pair != nil && *a.Pair != *b.Pair {
		t.Fatalf("%s: pair %+v != %+v", path, *a.Pair, *b.Pair)
	}
	if len(a.Children) != len(b.Children) {
		t.Fatalf("%s: %d children != %d children", path, len(a.Children), len(b.Children))
	}
	for i := range a.Children {
		sameNode(t, path+"/"+a.Children[i].Name, a.Children[i], b.Children[i])
	}
}

func TestRoundTrip(t *testing.T) {
	for _, seed := range []int64{7, 53, 9001} {
		a := testArtifact(t, seed, uint64(seed)%5)
		enc, err := artifact.Encode(a)
		if err != nil {
			t.Fatalf("encode: %v", err)
		}
		got, err := artifact.Decode(enc)
		if err != nil {
			t.Fatalf("decode: %v", err)
		}
		if got.Key != a.Key {
			t.Fatalf("key %+v != %+v", got.Key, a.Key)
		}
		if got.PerNode != a.PerNode || got.Applied != a.Applied {
			t.Fatalf("metadata differs: %+v vs %+v", got, a)
		}
		if got.Graph.ProtocolName != a.Graph.ProtocolName {
			t.Fatalf("protocol name %q != %q", got.Graph.ProtocolName, a.Graph.ProtocolName)
		}
		sameNode(t, a.Graph.Root.Name, a.Graph.Root, got.Graph.Root)
	}
}

// A restored graph must have parent links rebuilt so serialization and
// parsing can walk upward.
func TestDecodeRebuildsParents(t *testing.T) {
	a := testArtifact(t, 11, 0)
	enc, err := artifact.Encode(a)
	if err != nil {
		t.Fatal(err)
	}
	got, err := artifact.Decode(enc)
	if err != nil {
		t.Fatal(err)
	}
	var walk func(n *graph.Node)
	walk = func(n *graph.Node) {
		for _, c := range n.Children {
			if c.Parent != n {
				t.Fatalf("child %q has parent %v, want %q", c.Name, c.Parent, n.Name)
			}
			walk(c)
		}
	}
	walk(got.Graph.Root)
}

func TestDecodeRejectsTruncation(t *testing.T) {
	a := testArtifact(t, 11, 0)
	enc, err := artifact.Encode(a)
	if err != nil {
		t.Fatal(err)
	}
	// Every proper prefix must fail loudly; step to keep the test fast.
	for n := 0; n < len(enc); n += 7 {
		if _, err := artifact.Decode(enc[:n]); err == nil {
			t.Fatalf("decode accepted a %d-byte prefix of a %d-byte artifact", n, len(enc))
		}
	}
	// Trailing junk must fail too.
	if _, err := artifact.Decode(append(append([]byte(nil), enc...), 0x00)); err == nil {
		t.Fatal("decode accepted trailing bytes")
	}
}

func TestDecodeRejectsBadMagicAndVersion(t *testing.T) {
	a := testArtifact(t, 11, 0)
	enc, err := artifact.Encode(a)
	if err != nil {
		t.Fatal(err)
	}
	bad := append([]byte(nil), enc...)
	bad[0] ^= 0xFF
	if _, err := artifact.Decode(bad); err == nil {
		t.Fatal("decode accepted a bad magic")
	}
	bad = append([]byte(nil), enc...)
	bad[5] ^= 0xFF // version low byte
	if _, err := artifact.Decode(bad); err == nil {
		t.Fatal("decode accepted an unknown format version")
	}
}

func TestSpecDigestSensitivity(t *testing.T) {
	base := artifact.SpecDigest(testSpec, 3, nil, nil)
	if artifact.SpecDigest(testSpec, 3, nil, nil) != base {
		t.Fatal("digest is not deterministic")
	}
	if artifact.SpecDigest(testSpec+" ", 3, nil, nil) == base {
		t.Fatal("digest ignores the source")
	}
	if artifact.SpecDigest(testSpec, 4, nil, nil) == base {
		t.Fatal("digest ignores the per-node budget")
	}
	if artifact.SpecDigest(testSpec, 3, []string{"SplitField"}, nil) == base {
		t.Fatal("digest ignores the Only filter")
	}
	if artifact.SpecDigest(testSpec, 3, nil, []string{"PadMessage"}) == base {
		t.Fatal("digest ignores the Exclude filter")
	}
}

func TestStoreRoundTrip(t *testing.T) {
	st, err := artifact.NewStore(filepath.Join(t.TempDir(), "cache"))
	if err != nil {
		t.Fatal(err)
	}
	a := testArtifact(t, 42, 3)

	if _, ok, err := st.Load(a.Key); err != nil || ok {
		t.Fatalf("load before save: ok=%v err=%v", ok, err)
	}
	if err := st.Save(a); err != nil {
		t.Fatalf("save: %v", err)
	}
	got, ok, err := st.Load(a.Key)
	if err != nil || !ok {
		t.Fatalf("load after save: ok=%v err=%v", ok, err)
	}
	sameNode(t, "root", a.Graph.Root, got.Graph.Root)

	// A different epoch of the same family is still a miss.
	miss := a.Key
	miss.Epoch++
	if _, ok, _ := st.Load(miss); ok {
		t.Fatal("load hit on a different epoch")
	}
}

func TestStoreRejectsKeyMismatch(t *testing.T) {
	st, err := artifact.NewStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	a := testArtifact(t, 42, 3)
	if err := st.Save(a); err != nil {
		t.Fatal(err)
	}
	// Rename the blob under a different key's filename: the embedded
	// key check must refuse to serve it.
	other := a.Key
	other.Epoch = 9
	if err := os.Rename(st.Path(a.Key), st.Path(other)); err != nil {
		t.Fatal(err)
	}
	_, _, err = st.Load(other)
	if err == nil || !strings.Contains(err.Error(), "does not match") {
		t.Fatalf("load of a renamed artifact: %v", err)
	}
}

func TestStoreRejectsCorruptFile(t *testing.T) {
	st, err := artifact.NewStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	a := testArtifact(t, 42, 3)
	if err := st.Save(a); err != nil {
		t.Fatal(err)
	}
	path := st.Path(a.Key)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, data[:len(data)/2], 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := st.Load(a.Key); err == nil {
		t.Fatal("load accepted a corrupt file")
	}
}
