package codegen

import (
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"

	"protoobf/internal/graph"
	"protoobf/internal/protocols/httpmsg"
	"protoobf/internal/protocols/modbus"
	"protoobf/internal/rng"
	"protoobf/internal/spec"
	"protoobf/internal/transform"
)

const demoSpec = `
protocol demo;
root seq msg end {
    bytes magic fixed 2;
    uint  kind 1;
    uint  plen 2;
    seq payload length(plen) {
        bytes name delim ";" min 3;
        uint  cnt 1;
        tabular items count(cnt) {
            seq entry {
                uint ekey 2;
                uint eval 2;
            }
        }
        optional maybe when kind == 7 { bytes extra delim "|" min 2; }
    }
    repeat hdrs until "\r\n" {
        seq hdr {
            bytes hname delim ": " min 3;
            bytes hval  delim "\r\n" min 2;
        }
    }
    bytes body end;
}
`

func graphs(t testing.TB) map[string]*graph.Graph {
	t.Helper()
	out := map[string]*graph.Graph{}
	var err error
	if out["demo"], err = spec.Parse(demoSpec); err != nil {
		t.Fatal(err)
	}
	if out["modbus_req"], err = modbus.RequestGraph(); err != nil {
		t.Fatal(err)
	}
	if out["modbus_resp"], err = modbus.ResponseGraph(); err != nil {
		t.Fatal(err)
	}
	if out["http_req"], err = httpmsg.RequestGraph(); err != nil {
		t.Fatal(err)
	}
	if out["http_resp"], err = httpmsg.ResponseGraph(); err != nil {
		t.Fatal(err)
	}
	return out
}

func TestGeneratePlainParses(t *testing.T) {
	for name, g := range graphs(t) {
		src, err := Generate(g, Options{Seed: 1})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		for _, want := range []string{"func Parse(", "func (m *Message) Serialize()", "func SelfTest()"} {
			if !strings.Contains(src, want) {
				t.Errorf("%s: generated source lacks %q", name, want)
			}
		}
	}
}

func TestGenerateObfuscatedParses(t *testing.T) {
	for name, g := range graphs(t) {
		for seed := int64(0); seed < 8; seed++ {
			r := rng.New(seed)
			res, err := transform.Obfuscate(g, transform.Options{PerNode: 1 + int(seed%4)}, r)
			if err != nil {
				t.Fatal(err)
			}
			if _, err := Generate(res.Graph, Options{Seed: seed}); err != nil {
				t.Fatalf("%s seed=%d: %v\ntrace:\n%s", name, seed, err, res.Trace())
			}
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	g := graphs(t)["modbus_req"]
	a, err := Generate(g, Options{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(g, Options{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Error("generation is not deterministic")
	}
}

// TestGeneratedCodeCompilesAndSelfTests builds the generated library with
// the real Go toolchain and runs its SelfTest for plain and obfuscated
// graphs of every protocol. This is the framework's end-to-end contract:
// the emitted source is a working protocol library.
func TestGeneratedCodeCompilesAndSelfTests(t *testing.T) {
	if testing.Short() {
		t.Skip("uses the go toolchain")
	}
	type job struct {
		name    string
		g       *graph.Graph
		perNode int
		seed    int64
	}
	var jobs []job
	for name, g := range graphs(t) {
		jobs = append(jobs, job{name + "_plain", g, 0, 1})
		jobs = append(jobs, job{name + "_obf1", g, 1, 11})
		jobs = append(jobs, job{name + "_obf3", g, 3, 13})
	}
	for _, j := range jobs {
		j := j
		t.Run(j.name, func(t *testing.T) {
			t.Parallel()
			gg := j.g
			var trace string
			if j.perNode > 0 {
				res, err := transform.Obfuscate(j.g, transform.Options{PerNode: j.perNode}, rng.New(j.seed))
				if err != nil {
					t.Fatal(err)
				}
				gg = res.Graph
				trace = res.Trace()
			}
			src, err := Generate(gg, Options{Seed: j.seed})
			if err != nil {
				t.Fatalf("generate: %v\ntrace:\n%s", err, trace)
			}
			runSelfTest(t, src, trace)
		})
	}
}

// runSelfTest writes the generated package plus a main that calls
// SelfTest into a temp module and executes it.
func runSelfTest(t *testing.T, src, trace string) {
	t.Helper()
	dir := t.TempDir()
	writeFile := func(name, content string) {
		t.Helper()
		if err := os.WriteFile(filepath.Join(dir, name), []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	writeFile("go.mod", "module gentest\n\ngo 1.22\n")
	if err := os.Mkdir(filepath.Join(dir, "obfproto"), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "obfproto", "obfproto.go"), []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	writeFile("main.go", `package main

import (
	"fmt"
	"os"

	"gentest/obfproto"
)

func main() {
	if err := obfproto.SelfTest(); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Println("selftest ok")
}
`)
	cmd := exec.Command("go", "run", ".")
	cmd.Dir = dir
	cmd.Env = append(os.Environ(), "GOFLAGS=-mod=mod", "GOPROXY=off")
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("generated code failed: %v\n%s\ntrace:\n%s", err, out, trace)
	}
	if !strings.Contains(string(out), "selftest ok") {
		t.Fatalf("unexpected output: %s", out)
	}
}

func TestGoNameAndSanitize(t *testing.T) {
	if goName("wrs_addr") != "WrsAddr" || goName("fc") != "Fc" || goName("a$1") != "A1" {
		t.Errorf("goName broken: %q %q %q", goName("wrs_addr"), goName("fc"), goName("a$1"))
	}
	if sanitize("name$5") != "name_d5" {
		t.Errorf("sanitize = %q", sanitize("name$5"))
	}
}

func TestGeneratedSourceGrowsWithObfuscation(t *testing.T) {
	g := graphs(t)["http_req"]
	plain, err := Generate(g, Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	res, err := transform.Obfuscate(g, transform.Options{PerNode: 2}, rng.New(4))
	if err != nil {
		t.Fatal(err)
	}
	obf, err := Generate(res.Graph, Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	pl := strings.Count(plain, "\n")
	ol := strings.Count(obf, "\n")
	if ol <= pl {
		t.Errorf("obfuscated source (%d lines) not larger than plain (%d lines)", ol, pl)
	}
	ratio := float64(ol) / float64(pl)
	t.Logf("line growth at 2/node: %.2fx (%d -> %d)", ratio, pl, ol)
	if ratio < 1.3 {
		t.Errorf("growth ratio %.2f suspiciously small", ratio)
	}
}

func ExampleGenerate() {
	g, err := spec.Parse(`
protocol tiny;
root seq m end {
    uint a 2;
    bytes b end;
}`)
	if err != nil {
		panic(err)
	}
	src, err := Generate(g, Options{Seed: 1})
	if err != nil {
		panic(err)
	}
	fmt.Println(strings.Contains(src, "func Parse(data []byte) (*Message, error)"))
	// Output: true
}
