// Package codegen generates the Go source code of a protocol library for
// one (possibly obfuscated) message format graph: the message parser, the
// message serializer, and the accessors the core application uses
// (paper §IV and §VI).
//
// The generated package mirrors the runtime engine of package wire, but
// everything is specialized per node with the transformation constants
// baked in: one struct per node, one size/emit/parse function per node,
// one setter/getter per value-bearing node. Aggregation transformations
// run inside the generated setters and getters; ordering transformations
// run inside the generated emit/parse functions — exactly the code
// placement the paper prescribes to defeat probe placement (§VI).
//
// The output is self-contained (stdlib only) and self-verifying: it
// exposes SelfTest(), which builds a sample message through the
// accessors, serializes, parses and compares.
package codegen

import (
	"bytes"
	"fmt"
	"go/format"
	"sort"
	"strings"

	"protoobf/internal/graph"
)

// Options parameterizes generation.
type Options struct {
	// Package is the generated package name (default "obfproto").
	Package string
	// Seed seeds the generated library's internal RNG (split randomness,
	// padding values).
	Seed int64
}

// Generate renders the protocol library source for g.
func Generate(g *graph.Graph, opts Options) (string, error) {
	if opts.Package == "" {
		opts.Package = "obfproto"
	}
	if err := g.Validate(); err != nil {
		return "", fmt.Errorf("codegen: graph invalid: %w", err)
	}
	gen := &generator{g: g, opts: opts, names: map[*graph.Node]string{}, used: map[string]bool{}}
	src, err := gen.run()
	if err != nil {
		return "", err
	}
	formatted, err := format.Source([]byte(src))
	if err != nil {
		// A formatting failure means the generator emitted invalid Go.
		return "", fmt.Errorf("codegen: generated source does not parse: %w", err)
	}
	return string(formatted), nil
}

type generator struct {
	g    *graph.Graph
	opts Options
	buf  bytes.Buffer
	// names maps nodes to sanitized identifiers.
	names map[*graph.Node]string
	used  map[string]bool
	// refNames are original names referenced by boundaries (stored in the
	// parse context as integers).
	refNames map[string]bool
	// guardNames are original names referenced by optional predicates.
	guardUint  map[string]bool
	guardBytes map[string]bool
	hasASCII   bool
}

func (gen *generator) p(format string, args ...any) {
	fmt.Fprintf(&gen.buf, format, args...)
}

// ident returns the sanitized unique identifier of a node.
func (gen *generator) ident(n *graph.Node) string {
	if s, ok := gen.names[n]; ok {
		return s
	}
	base := sanitize(n.Name)
	s := base
	for i := 2; gen.used[s]; i++ {
		s = fmt.Sprintf("%s_%d", base, i)
	}
	gen.used[s] = true
	gen.names[n] = s
	return s
}

func sanitize(name string) string {
	var b strings.Builder
	for _, c := range name {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9', c == '_':
			b.WriteRune(c)
		case c == '$':
			b.WriteString("_d")
		default:
			b.WriteByte('x')
		}
	}
	return b.String()
}

// byteLit renders a []byte literal.
func byteLit(b []byte) string {
	parts := make([]string, len(b))
	for i, c := range b {
		parts[i] = fmt.Sprintf("0x%02x", c)
	}
	return "[]byte{" + strings.Join(parts, ", ") + "}"
}

func maskExpr(width int) string {
	if width >= 8 {
		return "" // full uint64, no mask needed
	}
	return fmt.Sprintf(" & 0x%x", (uint64(1)<<(8*width))-1)
}

// isBytesNode reports whether the node's user value is []byte.
func isBytesNode(n *graph.Node) bool { return n.Enc == graph.EncBytes }

// valueBearing mirrors transform.valueBearing.
func valueBearing(n *graph.Node) bool {
	if n.Kind != graph.Terminal && n.Comb == nil {
		return false
	}
	switch n.Origin.Role {
	case graph.RoleWhole, graph.RoleLengthOf, graph.RoleSplitLeft, graph.RoleSplitRight:
		return true
	default:
		return false
	}
}

func opWidth(n *graph.Node) int {
	switch {
	case n.Comb != nil:
		return n.Comb.Width
	case n.Enc == graph.EncUint:
		return n.Boundary.Size
	default:
		return 8
	}
}

func (gen *generator) collectRefs() {
	gen.refNames = map[string]bool{}
	gen.guardUint = map[string]bool{}
	gen.guardBytes = map[string]bool{}
	gen.g.Walk(func(n *graph.Node) bool {
		if n.Boundary.Ref != "" {
			gen.refNames[n.Boundary.Ref] = true
		}
		if n.Kind == graph.Optional {
			if n.Cond.IsBytes {
				gen.guardBytes[n.Cond.Ref] = true
			} else {
				gen.guardUint[n.Cond.Ref] = true
			}
		}
		if n.Enc == graph.EncASCII {
			gen.hasASCII = true
		}
		return true
	})
}

func (gen *generator) run() (string, error) {
	gen.collectRefs()
	nodes := gen.g.Nodes()
	// Reserve identifiers in DFS order for stable output.
	for _, n := range nodes {
		gen.ident(n)
	}

	gen.header()
	gen.helpers()
	for _, n := range nodes {
		gen.structFor(n)
	}
	for _, n := range nodes {
		gen.ctorFor(n)
	}
	for _, n := range nodes {
		if valueBearing(n) {
			if err := gen.setterFor(n); err != nil {
				return "", err
			}
			if err := gen.getterFor(n); err != nil {
				return "", err
			}
		}
	}
	for _, n := range nodes {
		gen.sizeFor(n)
	}
	if err := gen.fillFunc(); err != nil {
		return "", err
	}
	for _, n := range nodes {
		gen.emitFor(n)
	}
	for _, n := range nodes {
		gen.parseFor(n)
	}
	gen.messageAPI()
	if err := gen.accessors(); err != nil {
		return "", err
	}
	if err := gen.selfTest(); err != nil {
		return "", err
	}
	return gen.buf.String(), nil
}

func (gen *generator) header() {
	gen.p("// Code generated by protoobf codegen. DO NOT EDIT.\n")
	gen.p("//\n// Protocol: %s\n// Seed: %d\n", gen.g.ProtocolName, gen.opts.Seed)
	gen.p("package %s\n\n", gen.opts.Package)
	gen.p("import (\n\t\"bytes\"\n\t\"fmt\"\n\t\"math/rand\"\n")
	if gen.hasASCII {
		gen.p("\t\"strconv\"\n")
	}
	gen.p(")\n\n")
}

func (gen *generator) helpers() {
	gen.p(`var prng = rand.New(rand.NewSource(%d))

const padAlphabet = "ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789"

func padBytes(n int) []byte {
	b := make([]byte, n)
	for i := range b {
		b[i] = padAlphabet[prng.Intn(len(padAlphabet))]
	}
	return b
}

func encU(u uint64, w int) []byte {
	out := make([]byte, w)
	for i := w - 1; i >= 0; i-- {
		out[i] = byte(u)
		u >>= 8
	}
	return out
}

func decU(b []byte) uint64 {
	var u uint64
	for _, c := range b {
		u = u<<8 | uint64(c)
	}
	return u
}

func indexOf(h, n []byte) int {
	return bytes.Index(h, n)
}

func reverseBytes(b []byte) []byte {
	out := make([]byte, len(b))
	for i, c := range b {
		out[len(b)-1-i] = c
	}
	return out
}

// pctx is the parse context: input bytes plus the decoded values of the
// fields that boundaries and presence predicates reference.
type pctx struct {
	data  []byte
	refs  map[string]uint64
	refsB map[string][]byte
}

`, gen.opts.Seed)
}

// structFor emits the struct type of one node.
func (gen *generator) structFor(n *graph.Node) {
	id := gen.ident(n)
	switch n.Kind {
	case graph.Terminal:
		gen.p("// N%s holds field %q (%v, %v).\ntype N%s struct {\n\tB []byte\n\tS bool\n}\n\n", id, n.Name, n.Kind, n.Boundary, id)
	case graph.Sequence:
		gen.p("// N%s is sequence %q.\ntype N%s struct {\n", id, n.Name, id)
		for _, c := range n.Children {
			gen.p("\tC%s *N%s\n", gen.ident(c), gen.ident(c))
		}
		gen.p("}\n\n")
	case graph.Optional:
		gen.p("// N%s is optional %q (present when %v).\ntype N%s struct {\n\tPresent bool\n\tC%s *N%s\n}\n\n",
			id, n.Name, n.Cond, id, gen.ident(n.Child()), gen.ident(n.Child()))
	case graph.Repetition, graph.Tabular:
		gen.p("// N%s repeats %q.\ntype N%s struct {\n\tItems []*N%s\n}\n\n", id, n.Name, id, gen.ident(n.Child()))
	}
}

// ctorFor emits the constructor of one node (pads pre-filled).
func (gen *generator) ctorFor(n *graph.Node) {
	id := gen.ident(n)
	switch n.Kind {
	case graph.Terminal:
		if n.Origin.Role == graph.RolePad {
			gen.p("func new%s() *N%s { return &N%s{B: padBytes(%d), S: true} }\n\n", id, id, id, n.Boundary.Size)
		} else {
			gen.p("func new%s() *N%s { return &N%s{} }\n\n", id, id, id)
		}
	case graph.Sequence:
		gen.p("func new%s() *N%s {\n\treturn &N%s{\n", id, id, id)
		for _, c := range n.Children {
			gen.p("\t\tC%s: new%s(),\n", gen.ident(c), gen.ident(c))
		}
		gen.p("\t}\n}\n\n")
	case graph.Optional:
		gen.p("func new%s() *N%s { return &N%s{} }\n\n", id, id, id)
	case graph.Repetition, graph.Tabular:
		gen.p("func new%s() *N%s { return &N%s{} }\n\n", id, id, id)
	}
}

// opsEncode emits statements transforming variable v (uint64 or []byte)
// in the encode direction for node n.
func (gen *generator) opsEncode(n *graph.Node, v string) {
	w := opWidth(n)
	for _, op := range n.Ops {
		switch op.Kind {
		case graph.OpAdd:
			gen.p("\t%s = (%s + 0x%x)%s\n", v, v, op.K, maskExpr(w))
		case graph.OpSub:
			gen.p("\t%s = (%s - 0x%x)%s\n", v, v, op.K, maskExpr(w))
		case graph.OpXor:
			gen.p("\t%s = (%s ^ 0x%x)%s\n", v, v, op.K, maskExpr(w))
		case graph.OpByteAdd, graph.OpByteXor:
			opc := "+"
			if op.Kind == graph.OpByteXor {
				opc = "^"
			}
			gen.p("\t{\n\t\tkey := %s\n\t\tout := make([]byte, len(%s))\n\t\tfor i, c := range %s {\n\t\t\tout[i] = c %s key[i%%len(key)]\n\t\t}\n\t\t%s = out\n\t}\n", byteLit(op.KB), v, v, opc, v)
		}
	}
}

// opsDecode emits the inverse pipeline (reverse order).
func (gen *generator) opsDecode(n *graph.Node, v string) {
	w := opWidth(n)
	for i := len(n.Ops) - 1; i >= 0; i-- {
		op := n.Ops[i]
		switch op.Kind {
		case graph.OpAdd:
			gen.p("\t%s = (%s - 0x%x)%s\n", v, v, op.K, maskExpr(w))
		case graph.OpSub:
			gen.p("\t%s = (%s + 0x%x)%s\n", v, v, op.K, maskExpr(w))
		case graph.OpXor:
			gen.p("\t%s = (%s ^ 0x%x)%s\n", v, v, op.K, maskExpr(w))
		case graph.OpByteAdd, graph.OpByteXor:
			opc := "-"
			if op.Kind == graph.OpByteXor {
				opc = "^"
			}
			gen.p("\t{\n\t\tkey := %s\n\t\tout := make([]byte, len(%s))\n\t\tfor i, c := range %s {\n\t\t\tout[i] = c %s key[i%%len(key)]\n\t\t}\n\t\t%s = out\n\t}\n", byteLit(op.KB), v, v, opc, v)
		}
	}
}

// splitHalfNodes finds the shallowest split-role holders under n.
func splitHalfNodes(n *graph.Node) (l, r *graph.Node) {
	return graph.FindRoleHolder(n, graph.RoleSplitLeft), graph.FindRoleHolder(n, graph.RoleSplitRight)
}

// halfPath renders the field navigation from a comb struct variable to a
// half node (through RoleGroup wrappers).
func (gen *generator) halfPath(from *graph.Node, half *graph.Node) string {
	var segs []string
	for cur := half; cur != from; cur = cur.Parent {
		segs = append(segs, "C"+gen.ident(cur))
	}
	for i, j := 0, len(segs)-1; i < j; i, j = i+1, j-1 {
		segs[i], segs[j] = segs[j], segs[i]
	}
	return strings.Join(segs, ".")
}

// setterFor emits setval<id> assigning the user-level value, applying the
// aggregation pipeline (ops + splits) on the fly.
func (gen *generator) setterFor(n *graph.Node) error {
	id := gen.ident(n)
	if isBytesNode(n) {
		gen.p("// setval%s stores field %q (bytes).\nfunc setval%s(x *N%s, v []byte) error {\n", id, n.Origin.Name, id, id)
		if n.MinLen > 0 {
			gen.p("\tif len(v) < %d {\n\t\treturn fmt.Errorf(\"field %s: %%d bytes below minimum %d\", len(v))\n\t}\n", n.MinLen, n.Origin.Name, n.MinLen)
		}
		gen.opsEncode(n, "v")
		if n.Comb == nil {
			if n.Boundary.Kind == graph.Fixed {
				gen.p("\tif len(v) != %d {\n\t\treturn fmt.Errorf(\"field %s: %%d bytes for a %d-byte field\", len(v))\n\t}\n", n.Boundary.Size, n.Origin.Name, n.Boundary.Size)
			}
			gen.p("\tx.B = append([]byte(nil), v...)\n\tx.S = true\n\treturn nil\n}\n\n")
			return nil
		}
		if n.Comb.Kind != graph.CombCat {
			return fmt.Errorf("codegen: bytes node %q with arithmetic combine", n.Name)
		}
		l, r := splitHalfNodes(n)
		if l == nil || r == nil {
			return fmt.Errorf("codegen: split halves of %q missing", n.Name)
		}
		gen.p("\tif len(v) < %d {\n\t\treturn fmt.Errorf(\"field %s: too short to split\")\n\t}\n", n.Comb.SplitAt, n.Origin.Name)
		gen.p("\tif err := setval%s(x.%s, v[:%d]); err != nil {\n\t\treturn err\n\t}\n", gen.ident(l), gen.halfPath(n, l), n.Comb.SplitAt)
		gen.p("\treturn setval%s(x.%s, v[%d:])\n}\n\n", gen.ident(r), gen.halfPath(n, r), n.Comb.SplitAt)
		return nil
	}

	// Integer-valued node (EncUint or EncASCII).
	gen.p("// setval%s stores field %q (integer).\nfunc setval%s(x *N%s, v uint64) error {\n", id, n.Origin.Name, id, id)
	// Overflow detection must precede the (masking) value pipeline.
	if w := opWidth(n); n.Enc == graph.EncUint && w < 8 {
		gen.p("\tif v > 0x%x {\n\t\treturn fmt.Errorf(\"field %s: %%d overflows %d bytes\", v)\n\t}\n", (uint64(1)<<(8*w))-1, n.Origin.Name, w)
	}
	gen.opsEncode(n, "v")
	if n.Comb == nil {
		switch n.Enc {
		case graph.EncUint:
			w := n.Boundary.Size
			if w < 8 {
				gen.p("\tif v > 0x%x {\n\t\treturn fmt.Errorf(\"field %s: %%d overflows %d bytes\", v)\n\t}\n", (uint64(1)<<(8*w))-1, n.Origin.Name, w)
			}
			gen.p("\tx.B = encU(v, %d)\n\tx.S = true\n\treturn nil\n}\n\n", w)
		case graph.EncASCII:
			gen.p("\tx.B = []byte(strconv.FormatUint(v, 10))\n\tx.S = true\n\treturn nil\n}\n\n")
		default:
			return fmt.Errorf("codegen: integer setter for %v", n.Enc)
		}
		return nil
	}
	l, r := splitHalfNodes(n)
	if l == nil || r == nil {
		return fmt.Errorf("codegen: split halves of %q missing", n.Name)
	}
	lid, rid := gen.ident(l), gen.ident(r)
	lp, rp := gen.halfPath(n, l), gen.halfPath(n, r)
	w := n.Comb.Width
	switch n.Comb.Kind {
	case graph.CombAdd:
		gen.p("\tl := prng.Uint64()%s\n\tr := (v - l)%s\n", maskExpr(w), maskExpr(w))
	case graph.CombSub:
		gen.p("\tr := prng.Uint64()%s\n\tl := (v + r)%s\n", maskExpr(w), maskExpr(w))
	case graph.CombXor:
		gen.p("\tl := prng.Uint64()%s\n\tr := (v ^ l)%s\n", maskExpr(w), maskExpr(w))
	case graph.CombCat:
		gen.p("\traw := encU(v, %d)\n", w)
		gen.p("\tif err := setval%s(x.%s, raw[:%d]); err != nil {\n\t\treturn err\n\t}\n", lid, lp, n.Comb.SplitAt)
		gen.p("\treturn setval%s(x.%s, raw[%d:])\n}\n\n", rid, rp, n.Comb.SplitAt)
		return nil
	}
	gen.p("\tif err := setval%s(x.%s, l); err != nil {\n\t\treturn err\n\t}\n", lid, lp)
	gen.p("\treturn setval%s(x.%s, r)\n}\n\n", rid, rp)
	return nil
}

// getterFor emits getval<id>, the inverse of setval<id>.
func (gen *generator) getterFor(n *graph.Node) error {
	id := gen.ident(n)
	if isBytesNode(n) {
		gen.p("// getval%s recovers field %q (bytes).\nfunc getval%s(x *N%s) ([]byte, error) {\n", id, n.Origin.Name, id, id)
		if n.Comb == nil {
			gen.p("\tif !x.S {\n\t\treturn nil, fmt.Errorf(\"field %s not set\")\n\t}\n", n.Origin.Name)
			gen.p("\tv := append([]byte(nil), x.B...)\n")
		} else {
			l, r := splitHalfNodes(n)
			gen.p("\tlv, err := getval%s(x.%s)\n\tif err != nil {\n\t\treturn nil, err\n\t}\n", gen.ident(l), gen.halfPath(n, l))
			gen.p("\trv, err := getval%s(x.%s)\n\tif err != nil {\n\t\treturn nil, err\n\t}\n", gen.ident(r), gen.halfPath(n, r))
			gen.p("\tv := append(append([]byte(nil), lv...), rv...)\n")
		}
		gen.opsDecode(n, "v")
		gen.p("\treturn v, nil\n}\n\n")
		return nil
	}
	gen.p("// getval%s recovers field %q (integer).\nfunc getval%s(x *N%s) (uint64, error) {\n", id, n.Origin.Name, id, id)
	if n.Comb == nil {
		gen.p("\tif !x.S {\n\t\treturn 0, fmt.Errorf(\"field %s not set\")\n\t}\n", n.Origin.Name)
		switch n.Enc {
		case graph.EncUint:
			gen.p("\tv := decU(x.B)\n")
		case graph.EncASCII:
			gen.p("\tv, err := strconv.ParseUint(string(x.B), 10, 64)\n\tif err != nil {\n\t\treturn 0, fmt.Errorf(\"field %s: %%v\", err)\n\t}\n", n.Origin.Name)
		}
	} else {
		l, r := splitHalfNodes(n)
		lid, rid := gen.ident(l), gen.ident(r)
		lp, rp := gen.halfPath(n, l), gen.halfPath(n, r)
		w := n.Comb.Width
		switch n.Comb.Kind {
		case graph.CombCat:
			gen.p("\tlv, err := getval%s(x.%s)\n\tif err != nil {\n\t\treturn 0, err\n\t}\n", lid, lp)
			gen.p("\trv, err := getval%s(x.%s)\n\tif err != nil {\n\t\treturn 0, err\n\t}\n", rid, rp)
			gen.p("\tv := decU(append(append([]byte(nil), lv...), rv...))\n")
		default:
			gen.p("\tlv, err := getval%s(x.%s)\n\tif err != nil {\n\t\treturn 0, err\n\t}\n", lid, lp)
			gen.p("\trv, err := getval%s(x.%s)\n\tif err != nil {\n\t\treturn 0, err\n\t}\n", rid, rp)
			switch n.Comb.Kind {
			case graph.CombAdd:
				gen.p("\tv := (lv + rv)%s\n", maskExpr(w))
			case graph.CombSub:
				gen.p("\tv := (lv - rv)%s\n", maskExpr(w))
			case graph.CombXor:
				gen.p("\tv := (lv ^ rv)%s\n", maskExpr(w))
			}
		}
	}
	gen.opsDecode(n, "v")
	gen.p("\treturn v, nil\n}\n\n")
	return nil
}

// sizeFor emits size<id> computing the serialized size of a subtree.
func (gen *generator) sizeFor(n *graph.Node) {
	id := gen.ident(n)
	gen.p("// size%s is the serialized size of %q.\nfunc size%s(x *N%s) (int, error) {\n", id, n.Name, id, id)
	switch n.Kind {
	case graph.Terminal:
		if n.Boundary.Kind == graph.Fixed {
			gen.p("\t_ = x\n\treturn %d, nil\n}\n\n", n.Boundary.Size)
			return
		}
		gen.p("\tif !x.S {\n\t\treturn 0, fmt.Errorf(\"field %s not set\")\n\t}\n", n.Name)
		extra := 0
		if n.Boundary.Kind == graph.Delimited {
			extra = len(n.Boundary.Delim)
		}
		gen.p("\treturn len(x.B) + %d, nil\n}\n\n", extra)
	case graph.Optional:
		gen.p("\tif !x.Present {\n\t\treturn 0, nil\n\t}\n\treturn size%s(x.C%s)\n}\n\n", gen.ident(n.Child()), gen.ident(n.Child()))
	case graph.Sequence:
		gen.p("\ttotal := 0\n")
		for _, c := range n.Children {
			cid := gen.ident(c)
			gen.p("\tif s, err := size%s(x.C%s); err != nil {\n\t\treturn 0, err\n\t} else {\n\t\ttotal += s\n\t}\n", cid, cid)
		}
		if n.Boundary.Kind == graph.Delimited {
			gen.p("\ttotal += %d\n", len(n.Boundary.Delim))
		}
		gen.p("\treturn total, nil\n}\n\n")
	case graph.Repetition, graph.Tabular:
		cid := gen.ident(n.Child())
		gen.p("\ttotal := 0\n\tfor _, it := range x.Items {\n\t\ts, err := size%s(it)\n\t\tif err != nil {\n\t\t\treturn 0, err\n\t\t}\n\t\ttotal += s\n\t}\n", cid)
		if n.Boundary.Kind == graph.Delimited {
			gen.p("\ttotal += %d\n", len(n.Boundary.Delim))
		}
		gen.p("\treturn total, nil\n}\n\n")
	}
}

// pathStep is one navigation step from a struct variable.
type pathStep struct {
	node *graph.Node // the node stepped into
}

// instancePath returns the chain of nodes from the root (exclusive) down
// to n (inclusive).
func instancePath(n *graph.Node) []*graph.Node {
	var chain []*graph.Node
	for cur := n; cur.Parent != nil; cur = cur.Parent {
		chain = append(chain, cur)
	}
	for i, j := 0, len(chain)-1; i < j; i, j = i+1, j-1 {
		chain[i], chain[j] = chain[j], chain[i]
	}
	return chain
}

// fillFunc emits fillMsg, assigning every auto-filled reference target
// (Length/Counter) from the sizes and counts of its dependent node. The
// navigation, loops over repeated containers and optional-presence guards
// are generated statically from the graph.
func (gen *generator) fillFunc() error {
	gen.p("// fillMsg computes the auto-filled fields (lengths and counters)\n// before emission.\nfunc fillMsg(root *N%s) error {\n", gen.ident(gen.g.Root))

	var deps []*graph.Node
	gen.g.Walk(func(n *graph.Node) bool {
		if n.Boundary.Ref != "" {
			deps = append(deps, n)
		}
		return true
	})
	if len(deps) == 0 {
		gen.p("\t_ = root\n\treturn nil\n}\n\n")
		return nil
	}

	for i, d := range deps {
		ref := d.Boundary.Ref
		target := gen.g.FindOriginal(ref)
		if target == nil {
			return fmt.Errorf("codegen: reference %q unresolved", ref)
		}
		gen.p("\t// %v of %q -> %q\n", d.Boundary.Kind, d.Name, ref)
		if err := gen.fillOne(i, d, target); err != nil {
			return err
		}
	}
	gen.p("\treturn nil\n}\n\n")
	return nil
}

// fillOne emits the statements for one dependent/target pair, opening
// loops and presence guards along the common path.
func (gen *generator) fillOne(idx int, dep, target *graph.Node) error {
	dPath := instancePath(dep)
	tPath := instancePath(target)
	common := 0
	for common < len(dPath) && common < len(tPath) && dPath[common] == tPath[common] {
		common++
	}
	// Walk the shared prefix, opening loops/guards.
	varName := "root"
	indent := "\t"
	closes := []string{}
	step := func(n *graph.Node, fromRepeat bool) {
		if fromRepeat {
			it := fmt.Sprintf("it%d_%d", idx, len(closes))
			gen.p("%sfor _, %s := range %s.Items {\n", indent, it, varName)
			closes = append(closes, indent+"}\n")
			indent += "\t"
			varName = it
			return
		}
		varName = varName + ".C" + gen.ident(n)
	}
	guard := func(n *graph.Node) {
		gen.p("%sif %s.Present {\n", indent, varName)
		closes = append(closes, indent+"}\n")
		indent += "\t"
	}
	for i := 0; i < common; i++ {
		n := dPath[i]
		parentKind := gen.g.Root.Kind
		if i > 0 {
			parentKind = dPath[i-1].Kind
		}
		if parentKind == graph.Repetition || parentKind == graph.Tabular {
			step(n, true)
		} else {
			step(n, false)
			if n.Kind == graph.Optional {
				guard(n)
				varName += ".C" + gen.ident(n.Child())
				// The next path element IS the child; skip it.
				i++
				if i < common && dPath[i] != n.Child() {
					return fmt.Errorf("codegen: optional path mismatch at %q", n.Name)
				}
			}
		}
	}
	// Navigate from the common prefix to the dependent and the target.
	nav := func(base string, path []*graph.Node) (string, error) {
		v := base
		for i := common; i < len(path); i++ {
			n := path[i]
			parent := gen.g.Root
			if i > 0 {
				parent = path[i-1]
			}
			if parent.Kind == graph.Repetition || parent.Kind == graph.Tabular {
				return "", fmt.Errorf("codegen: reference path of %q crosses items below the common prefix", dep.Name)
			}
			if parent.Kind == graph.Optional {
				// Optional child pointer (presence guaranteed by the
				// shared guard or by construction: a dependent inside a
				// disabled optional is never serialized).
				v += ".C" + gen.ident(n)
				continue
			}
			v += ".C" + gen.ident(n)
		}
		return v, nil
	}
	// Presence guards below the common prefix on the dependent side: if
	// the dependent sits inside optionals, only fill when instantiated.
	for i := common; i < len(dPath); i++ {
		if dPath[i].Kind == graph.Optional {
			ov, err := nav(varName, dPath[:i+1])
			if err != nil {
				return err
			}
			gen.p("%sif %s.Present {\n", indent, ov)
			closes = append(closes, indent+"}\n")
			indent += "\t"
		}
	}
	dVar, err := nav(varName, dPath)
	if err != nil {
		return err
	}
	tVar, err := nav(varName, tPath)
	if err != nil {
		return err
	}
	switch dep.Boundary.Kind {
	case graph.Length:
		gen.p("%s{\n%s\tsz, err := size%s(%s)\n%s\tif err != nil {\n%s\t\treturn err\n%s\t}\n%s\tif err := setval%s(%s, uint64(sz)); err != nil {\n%s\t\treturn err\n%s\t}\n%s}\n",
			indent, indent, gen.ident(dep), dVar, indent, indent, indent, indent, gen.ident(target), tVar, indent, indent, indent)
	case graph.Counter:
		gen.p("%sif err := setval%s(%s, uint64(len(%s.Items))); err != nil {\n%s\treturn err\n%s}\n",
			indent, gen.ident(target), tVar, dVar, indent, indent)
	default:
		return fmt.Errorf("codegen: dependent %q has boundary %v", dep.Name, dep.Boundary.Kind)
	}
	for i := len(closes) - 1; i >= 0; i-- {
		gen.p("%s", closes[i])
	}
	return nil
}

// emitFor emits emit<id>, writing the subtree (reversal applied).
func (gen *generator) emitFor(n *graph.Node) {
	id := gen.ident(n)
	gen.p("// emit%s serializes %q.\nfunc emit%s(x *N%s, out *bytes.Buffer) error {\n", id, n.Name, id, id)
	if n.Reversed {
		gen.p("\tvar sub bytes.Buffer\n\tif err := emitInner%s(x, &sub); err != nil {\n\t\treturn err\n\t}\n\tout.Write(reverseBytes(sub.Bytes()))\n\treturn nil\n}\n\n", id)
		gen.p("func emitInner%s(x *N%s, out *bytes.Buffer) error {\n", id, id)
	}
	switch n.Kind {
	case graph.Terminal:
		gen.p("\tif !x.S {\n\t\treturn fmt.Errorf(\"field %s not set\")\n\t}\n\tout.Write(x.B)\n", n.Name)
		if n.Boundary.Kind == graph.Delimited {
			gen.p("\tout.Write(%s)\n", byteLit(n.Boundary.Delim))
		}
		gen.p("\treturn nil\n}\n\n")
	case graph.Optional:
		cid := gen.ident(n.Child())
		gen.p("\tif !x.Present {\n\t\treturn nil\n\t}\n\treturn emit%s(x.C%s, out)\n}\n\n", cid, cid)
	case graph.Sequence:
		for _, c := range n.Children {
			cid := gen.ident(c)
			gen.p("\tif err := emit%s(x.C%s, out); err != nil {\n\t\treturn err\n\t}\n", cid, cid)
		}
		if n.Boundary.Kind == graph.Delimited {
			gen.p("\tout.Write(%s)\n", byteLit(n.Boundary.Delim))
		}
		gen.p("\treturn nil\n}\n\n")
	case graph.Repetition, graph.Tabular:
		cid := gen.ident(n.Child())
		gen.p("\tfor _, it := range x.Items {\n\t\tif err := emit%s(it, out); err != nil {\n\t\t\treturn err\n\t\t}\n\t}\n", cid)
		if n.Boundary.Kind == graph.Delimited {
			gen.p("\tout.Write(%s)\n", byteLit(n.Boundary.Delim))
		}
		gen.p("\treturn nil\n}\n\n")
	}
}

// refStore emits the statement recording a just-parsed reference or guard
// value into the parse context.
func (gen *generator) refStore(n *graph.Node, v string) {
	name := n.Origin.Name
	isRef := gen.refNames[name] && (n.Origin.Role == graph.RoleWhole || n.Origin.Role == graph.RoleLengthOf)
	isGuardU := gen.guardUint[name] && n.Origin.Role == graph.RoleWhole
	isGuardB := gen.guardBytes[name] && n.Origin.Role == graph.RoleWhole
	if !isRef && !isGuardU && !isGuardB {
		return
	}
	id := gen.ident(n)
	if isGuardB {
		gen.p("\t{\n\t\tu, err := getval%s(%s)\n\t\tif err != nil {\n\t\t\treturn nil, 0, err\n\t\t}\n\t\tc.refsB[%q] = u\n\t}\n", id, v, name)
		return
	}
	gen.p("\t{\n\t\tu, err := getval%s(%s)\n\t\tif err != nil {\n\t\t\treturn nil, 0, err\n\t\t}\n\t\tc.refs[%q] = u\n\t}\n", id, v, name)
}

// parseFor emits parse<id>.
func (gen *generator) parseFor(n *graph.Node) {
	id := gen.ident(n)
	gen.p("// parse%s parses %q from c.data[pos:end].\nfunc parse%s(c *pctx, pos, end int) (*N%s, int, error) {\n", id, n.Name, id, id)
	if n.Reversed {
		// Extent, reverse, reparse on a sub-context.
		if sz, ok := graph.StaticSize(n); ok {
			gen.p("\text := %d\n", sz)
		} else if n.Boundary.Kind == graph.Length {
			gen.refRead(n, n.Boundary.Ref, "l64")
			gen.p("\text := int(l64)\n")
		} else {
			gen.p("\text := end - pos\n")
		}
		gen.p("\tif pos+ext > end || ext < 0 {\n\t\treturn nil, 0, fmt.Errorf(\"%s: reversed region out of bounds\")\n\t}\n", n.Name)
		gen.p("\tsub := &pctx{data: reverseBytes(c.data[pos : pos+ext]), refs: c.refs, refsB: c.refsB}\n")
		gen.p("\tx, used, err := parseInner%s(sub, 0, ext)\n\tif err != nil {\n\t\treturn nil, 0, err\n\t}\n", id)
		gen.p("\tif used != ext {\n\t\treturn nil, 0, fmt.Errorf(\"%s: reversed region not fully consumed\")\n\t}\n", n.Name)
		gen.p("\treturn x, pos + ext, nil\n}\n\n")
		gen.p("func parseInner%s(c *pctx, pos, end int) (*N%s, int, error) {\n", id, id)
	}
	switch n.Kind {
	case graph.Terminal:
		gen.parseTerminalBody(n)
	case graph.Optional:
		gen.parseOptionalBody(n)
	case graph.Sequence:
		gen.parseSequenceBody(n)
	case graph.Repetition:
		gen.parseRepetitionBody(n)
	case graph.Tabular:
		gen.parseTabularBody(n)
	}
}

func (gen *generator) parseTerminalBody(n *graph.Node) {
	id := gen.ident(n)
	gen.p("\tx := &N%s{}\n", id)
	switch n.Boundary.Kind {
	case graph.Fixed:
		gen.p("\tif pos+%d > end {\n\t\treturn nil, 0, fmt.Errorf(\"%s: need %d bytes, %%d remain\", end-pos)\n\t}\n", n.Boundary.Size, n.Name, n.Boundary.Size)
		gen.p("\tx.B = append([]byte(nil), c.data[pos:pos+%d]...)\n\tx.S = true\n\tpos += %d\n", n.Boundary.Size, n.Boundary.Size)
	case graph.Delimited:
		gen.p("\tidx := indexOf(c.data[pos:end], %s)\n\tif idx < 0 {\n\t\treturn nil, 0, fmt.Errorf(\"%s: delimiter not found\")\n\t}\n", byteLit(n.Boundary.Delim), n.Name)
		gen.p("\tx.B = append([]byte(nil), c.data[pos:pos+idx]...)\n\tx.S = true\n\tpos += idx + %d\n", len(n.Boundary.Delim))
	case graph.Length:
		gen.refRead(n, n.Boundary.Ref, "l64")
		gen.p("\tl := int(l64)\n\tif l < 0 || pos+l > end {\n\t\treturn nil, 0, fmt.Errorf(\"%s: length %%d out of bounds\", l)\n\t}\n", n.Name)
		gen.p("\tx.B = append([]byte(nil), c.data[pos:pos+l]...)\n\tx.S = true\n\tpos += l\n")
	case graph.End:
		gen.p("\tx.B = append([]byte(nil), c.data[pos:end]...)\n\tx.S = true\n\tpos = end\n")
	}
	if n.MinLen > 0 {
		gen.p("\tif len(x.B) < %d {\n\t\treturn nil, 0, fmt.Errorf(\"%s: below minimum length %d\")\n\t}\n", n.MinLen, n.Name, n.MinLen)
	}
	gen.refStore(n, "x")
	gen.p("\treturn x, pos, nil\n}\n\n")
}

func (gen *generator) parseOptionalBody(n *graph.Node) {
	id := gen.ident(n)
	cid := gen.ident(n.Child())
	gen.p("\tx := &N%s{}\n", id)
	var cond string
	if n.Cond.IsBytes {
		gen.p("\tgb, ok := c.refsB[%q]\n\tif !ok {\n\t\treturn nil, 0, fmt.Errorf(\"%s: guard %s not parsed yet\")\n\t}\n", n.Cond.Ref, n.Name, n.Cond.Ref)
		cond = fmt.Sprintf("bytes.Equal(gb, %s)", byteLit(n.Cond.BytesVal))
	} else {
		gen.p("\tgv, ok := c.refs[%q]\n\tif !ok {\n\t\treturn nil, 0, fmt.Errorf(\"%s: guard %s not parsed yet\")\n\t}\n", n.Cond.Ref, n.Name, n.Cond.Ref)
		cond = fmt.Sprintf("gv == 0x%x", n.Cond.UintVal)
	}
	if n.Cond.Op == graph.CondNe {
		cond = "!(" + cond + ")"
	}
	gen.p("\tif %s {\n\t\tx.Present = true\n\t\tkid, next, err := parse%s(c, pos, end)\n\t\tif err != nil {\n\t\t\treturn nil, 0, err\n\t\t}\n\t\tx.C%s = kid\n\t\tpos = next\n\t}\n",
		cond, cid, cid)
	gen.p("\treturn x, pos, nil\n}\n\n")
}

func (gen *generator) parseSequenceBody(n *graph.Node) {
	id := gen.ident(n)
	if n.Pair != nil {
		gen.parsePairBody(n)
		return
	}
	gen.p("\tx := &N%s{}\n", id)
	enforce := false
	switch n.Boundary.Kind {
	case graph.Length:
		gen.refRead(n, n.Boundary.Ref, "l64")
		gen.p("\tl := int(l64)\n\tif l < 0 || pos+l > end {\n\t\treturn nil, 0, fmt.Errorf(\"%s: length %%d out of bounds\", l)\n\t}\n\tsubEnd := pos + l\n", n.Name)
		enforce = true
	case graph.End:
		gen.p("\tsubEnd := end\n")
		enforce = true
	default:
		gen.p("\tsubEnd := end\n")
	}
	for _, c := range n.Children {
		cid := gen.ident(c)
		gen.p("\t{\n\t\tkid, next, err := parse%s(c, pos, subEnd)\n\t\tif err != nil {\n\t\t\treturn nil, 0, err\n\t\t}\n\t\tx.C%s = kid\n\t\tpos = next\n\t}\n", cid, cid)
	}
	if enforce {
		gen.p("\tif pos != subEnd {\n\t\treturn nil, 0, fmt.Errorf(\"%s: %%d unconsumed bytes\", subEnd-pos)\n\t}\n", n.Name)
	}
	if n.Boundary.Kind == graph.Delimited {
		d := n.Boundary.Delim
		gen.p("\tif pos+%d > end || !bytes.Equal(c.data[pos:pos+%d], %s) {\n\t\treturn nil, 0, fmt.Errorf(\"%s: missing delimiter\")\n\t}\n\tpos += %d\n",
			len(d), len(d), byteLit(d), n.Name, len(d))
	}
	// A combine sequence carries the value of a split original field:
	// record it for later boundary references and presence predicates.
	if valueBearing(n) {
		gen.refStore(n, "x")
	}
	gen.p("\treturn x, pos, nil\n}\n\n")
}

// refRead emits a checked read of a reference value into varName.
func (gen *generator) refRead(n *graph.Node, ref, varName string) {
	gen.p("\t%s, ok := c.refs[%q]\n\tif !ok {\n\t\treturn nil, 0, fmt.Errorf(\"%s: reference %s not parsed yet\")\n\t}\n", varName, ref, n.Name, ref)
}

func (gen *generator) parsePairBody(n *graph.Node) {
	id := gen.ident(n)
	gen.p("\tx := &N%s{}\n", id)
	switch n.Boundary.Kind {
	case graph.Length:
		gen.refRead(n, n.Boundary.Ref, "l64")
		gen.p("\text := int(l64)\n")
	case graph.End:
		gen.p("\text := end - pos\n")
	default:
		gen.p("\text := end - pos\n")
	}
	var sizes []int
	for _, half := range n.Children {
		sz, _ := graph.StaticSize(half.Child())
		sizes = append(sizes, sz)
	}
	per := sizes[0] + sizes[1]
	gen.p("\tif ext < 0 || pos+ext > end || ext%%%d != 0 {\n\t\treturn nil, 0, fmt.Errorf(\"%s: region %%d not a multiple of %d\", ext)\n\t}\n\tcount := ext / %d\n", per, n.Name, per, per)
	for i, half := range n.Children {
		hid := gen.ident(half)
		eid := gen.ident(half.Child())
		gen.p("\th%d := &N%s{}\n\tfor j := 0; j < count; j++ {\n\t\tit, next, err := parse%s(c, pos, pos+%d)\n\t\tif err != nil {\n\t\t\treturn nil, 0, err\n\t\t}\n\t\tif next != pos+%d {\n\t\t\treturn nil, 0, fmt.Errorf(\"%s: element size mismatch\")\n\t\t}\n\t\th%d.Items = append(h%d.Items, it)\n\t\tpos = next\n\t}\n\tx.C%s = h%d\n",
			i, hid, eid, sizes[i], sizes[i], n.Name, i, i, hid, i)
	}
	gen.p("\treturn x, pos, nil\n}\n\n")
}

func (gen *generator) parseRepetitionBody(n *graph.Node) {
	id := gen.ident(n)
	cid := gen.ident(n.Child())
	gen.p("\tx := &N%s{}\n", id)
	switch n.Boundary.Kind {
	case graph.Delimited:
		d := n.Boundary.Delim
		gen.p("\tfor {\n\t\tif pos+%d <= end && bytes.Equal(c.data[pos:pos+%d], %s) {\n\t\t\treturn x, pos + %d, nil\n\t\t}\n\t\tif pos >= end {\n\t\t\treturn nil, 0, fmt.Errorf(\"%s: unterminated repetition\")\n\t\t}\n\t\tit, next, err := parse%s(c, pos, end)\n\t\tif err != nil {\n\t\t\treturn nil, 0, err\n\t\t}\n\t\tif next == pos {\n\t\t\treturn nil, 0, fmt.Errorf(\"%s: empty item\")\n\t\t}\n\t\tx.Items = append(x.Items, it)\n\t\tpos = next\n\t}\n}\n\n",
			len(d), len(d), byteLit(d), len(d), n.Name, cid, n.Name)
		return
	case graph.Length:
		gen.refRead(n, n.Boundary.Ref, "l64")
		gen.p("\tl := int(l64)\n\tif l < 0 || pos+l > end {\n\t\treturn nil, 0, fmt.Errorf(\"%s: length %%d out of bounds\", l)\n\t}\n\tsubEnd := pos + l\n", n.Name)
	default: // End or Delegated (pair halves are parsed by the pair)
		gen.p("\tsubEnd := end\n")
	}
	gen.p("\tfor pos < subEnd {\n\t\tit, next, err := parse%s(c, pos, subEnd)\n\t\tif err != nil {\n\t\t\treturn nil, 0, err\n\t\t}\n\t\tif next == pos {\n\t\t\treturn nil, 0, fmt.Errorf(\"%s: empty item\")\n\t\t}\n\t\tx.Items = append(x.Items, it)\n\t\tpos = next\n\t}\n\treturn x, pos, nil\n}\n\n", cid, n.Name)
}

func (gen *generator) parseTabularBody(n *graph.Node) {
	id := gen.ident(n)
	cid := gen.ident(n.Child())
	gen.p("\tx := &N%s{}\n", id)
	gen.refRead(n, n.Boundary.Ref, "c64")
	gen.p("\tcount := int(c64)\n\tif count < 0 || count > end-pos {\n\t\treturn nil, 0, fmt.Errorf(\"%s: count %%d out of bounds\", count)\n\t}\n", n.Name)
	gen.p("\tfor i := 0; i < count; i++ {\n\t\tit, next, err := parse%s(c, pos, end)\n\t\tif err != nil {\n\t\t\treturn nil, 0, err\n\t\t}\n\t\tx.Items = append(x.Items, it)\n\t\tpos = next\n\t}\n\treturn x, pos, nil\n}\n\n", cid)
}

// messageAPI emits the top-level Message type, Serialize and Parse.
func (gen *generator) messageAPI() {
	rid := gen.ident(gen.g.Root)
	gen.p(`// Message is one %s message under construction or parsed.
type Message struct {
	Root *N%s
}

// New creates an empty message.
func New() *Message { return &Message{Root: new%s()} }

// Serialize computes the auto-filled fields and emits the obfuscated
// wire bytes.
func (m *Message) Serialize() ([]byte, error) {
	if err := fillMsg(m.Root); err != nil {
		return nil, err
	}
	var out bytes.Buffer
	if err := emit%s(m.Root, &out); err != nil {
		return nil, err
	}
	return out.Bytes(), nil
}

// Parse rebuilds a message from obfuscated wire bytes.
func Parse(data []byte) (*Message, error) {
	c := &pctx{data: data, refs: map[string]uint64{}, refsB: map[string][]byte{}}
	root, pos, err := parse%s(c, 0, len(data))
	if err != nil {
		return nil, err
	}
	if pos != len(data) {
		return nil, fmt.Errorf("parse: %%d trailing bytes", len(data)-pos)
	}
	return &Message{Root: root}, nil
}

`, gen.g.ProtocolName, rid, rid, rid, rid)
}

// sortedUserFields returns user-facing value-bearing nodes (RoleWhole,
// not auto-filled, not pads) in DFS order.
func (gen *generator) userFields() []*graph.Node {
	var out []*graph.Node
	gen.g.Walk(func(n *graph.Node) bool {
		if valueBearing(n) && n.Origin.Role == graph.RoleWhole && !n.AutoFill {
			out = append(out, n)
			return false // do not descend into split parts
		}
		return true
	})
	return out
}

// containerOf returns the innermost Repetition/Tabular/pair container
// enclosing n, or nil. A half of a split pair reports the pair itself,
// seen through any RoleGroup wrappers (e.g. a BoundaryChange applied to
// one half).
func containerOf(n *graph.Node) *graph.Node {
	for cur := n.Parent; cur != nil; cur = cur.Parent {
		if cur.IsSplitPair() {
			return cur
		}
		if cur.Kind == graph.Repetition || cur.Kind == graph.Tabular {
			p := cur.Parent
			for p != nil && p.Kind == graph.Sequence && p.Origin.Role == graph.RoleGroup {
				p = p.Parent
			}
			if p != nil && p.IsSplitPair() {
				return p
			}
			return cur
		}
	}
	return nil
}

// accessors emits the stable application-facing API: Set/Get per user
// field, Enable/Present per optional, Add/Count per repeated container.
// The interface is derived from the ORIGINAL field names, so it does not
// change when the transformation set changes (paper §VI).
func (gen *generator) accessors() error {
	// Containers first.
	containers := map[*graph.Node]bool{}
	gen.g.Walk(func(n *graph.Node) bool {
		if n.IsSplitPair() {
			containers[n] = true
			return false
		}
		if n.Kind == graph.Repetition || n.Kind == graph.Tabular {
			containers[n] = true
			return false
		}
		return true
	})
	var containerList []*graph.Node
	for c := range containers {
		containerList = append(containerList, c)
	}
	sort.Slice(containerList, func(i, j int) bool {
		return gen.ident(containerList[i]) < gen.ident(containerList[j])
	})

	for _, c := range containerList {
		if err := gen.containerAPI(c); err != nil {
			return err
		}
	}

	// Optionals.
	gen.g.Walk(func(n *graph.Node) bool {
		if n.Kind == graph.Optional && containerOf(n) == nil {
			gen.optionalAPI(n)
		}
		return true
	})

	// Scalar fields.
	for _, f := range gen.userFields() {
		if err := gen.fieldAPI(f); err != nil {
			return err
		}
	}
	return nil
}

// navFromRoot renders navigation from m.Root to node n, or an error when
// the path crosses a repeated container. Optional crossings emit
// presence checks into the function body (gen.p) and require err/nil
// returns with the given zero value.
func (gen *generator) navFromRoot(n *graph.Node, zero string) (string, error) {
	path := instancePath(n)
	v := "m.Root"
	for i, step := range path {
		parent := gen.g.Root
		if i > 0 {
			parent = path[i-1]
		}
		switch parent.Kind {
		case graph.Repetition, graph.Tabular:
			return "", fmt.Errorf("path of %q crosses repeated container %q", n.Name, parent.Name)
		case graph.Optional:
			gen.p("\tif !%s.Present {\n\t\treturn %sfmt.Errorf(\"optional %s disabled\")\n\t}\n", v, zero, parent.Origin.Name)
		}
		v += ".C" + gen.ident(step)
	}
	return v, nil
}

func goName(orig string) string {
	var b strings.Builder
	up := true
	for _, c := range orig {
		switch {
		case c == '_' || c == '$':
			up = true
		default:
			if up {
				b.WriteString(strings.ToUpper(string(c)))
				up = false
			} else {
				b.WriteRune(c)
			}
		}
	}
	return b.String()
}

func (gen *generator) optionalAPI(n *graph.Node) {
	name := goName(n.Origin.Name)
	id := gen.ident(n)
	gen.p("// Enable%s instantiates the optional %q subtree.\nfunc (m *Message) Enable%s() error {\n", name, n.Origin.Name, name)
	v, err := gen.navFromRoot(n, "")
	if err != nil {
		gen.p("\treturn fmt.Errorf(\"optional %s is inside a repeated container; use item accessors\")\n}\n\n", n.Origin.Name)
		return
	}
	cid := gen.ident(n.Child())
	gen.p("\tif !%s.Present {\n\t\t%s.Present = true\n\t\t%s.C%s = new%s()\n\t}\n\treturn nil\n}\n\n", v, v, v, cid, cid)

	gen.p("// Present%s reports whether optional %q is instantiated.\nfunc (m *Message) Present%s() (bool, error) {\n", name, n.Origin.Name, name)
	v, err = gen.navFromRoot(n, "false, ")
	if err != nil {
		gen.p("\treturn false, fmt.Errorf(\"optional %s is inside a repeated container\")\n}\n\n", n.Origin.Name)
		return
	}
	gen.p("\treturn %s.Present, nil\n}\n\n", v)
	_ = id
}

// containerAPI emits Add/Count plus an item handle for one container.
func (gen *generator) containerAPI(c *graph.Node) error {
	name := goName(c.Origin.Name)
	if c.IsSplitPair() {
		l := graph.FindRoleHolder(c, graph.RoleSplitLeft)
		r := graph.FindRoleHolder(c, graph.RoleSplitRight)
		lid, rid := gen.ident(l.Child()), gen.ident(r.Child())
		gen.p("// Item%s addresses one logical item of the split container %q.\ntype Item%s struct {\n\tA *N%s\n\tB *N%s\n}\n\n", name, c.Origin.Name, name, lid, rid)
		gen.p("// Add%s appends one item to %q (both halves).\nfunc (m *Message) Add%s() (*Item%s, error) {\n", name, c.Origin.Name, name, name)
		v, err := gen.navFromRoot(c, "nil, ")
		if err != nil {
			return err
		}
		lp, rp := gen.halfPath(c, l), gen.halfPath(c, r)
		gen.p("\ta := new%s()\n\tb := new%s()\n\t%s.%s.Items = append(%s.%s.Items, a)\n\t%s.%s.Items = append(%s.%s.Items, b)\n\treturn &Item%s{A: a, B: b}, nil\n}\n\n",
			lid, rid, v, lp, v, lp, v, rp, v, rp, name)
		gen.p("// Count%s returns the item count of %q.\nfunc (m *Message) Count%s() (int, error) {\n", name, c.Origin.Name, name)
		v, err = gen.navFromRoot(c, "0, ")
		if err != nil {
			return err
		}
		gen.p("\treturn len(%s.%s.Items), nil\n}\n\n", v, lp)
		gen.p("// Item%sAt returns the i-th logical item of %q.\nfunc (m *Message) Item%sAt(i int) (*Item%s, error) {\n", name, c.Origin.Name, name, name)
		v, err = gen.navFromRoot(c, "nil, ")
		if err != nil {
			return err
		}
		gen.p("\tif i < 0 || i >= len(%s.%s.Items) || i >= len(%s.%s.Items) {\n\t\treturn nil, fmt.Errorf(\"%s: index %%d out of range\", i)\n\t}\n", v, lp, v, rp, c.Origin.Name)
		gen.p("\treturn &Item%s{A: %s.%s.Items[i], B: %s.%s.Items[i]}, nil\n}\n\n", name, v, lp, v, rp)
		return nil
	}
	cid := gen.ident(c.Child())
	gen.p("// Item%s addresses one item of container %q.\ntype Item%s struct {\n\tA *N%s\n}\n\n", name, c.Origin.Name, name, cid)
	gen.p("// Add%s appends one item to %q.\nfunc (m *Message) Add%s() (*Item%s, error) {\n", name, c.Origin.Name, name, name)
	v, err := gen.navFromRoot(c, "nil, ")
	if err != nil {
		return err
	}
	gen.p("\tit := new%s()\n\t%s.Items = append(%s.Items, it)\n\treturn &Item%s{A: it}, nil\n}\n\n", cid, v, v, name)
	gen.p("// Count%s returns the item count of %q.\nfunc (m *Message) Count%s() (int, error) {\n", name, c.Origin.Name, name)
	v, err = gen.navFromRoot(c, "0, ")
	if err != nil {
		return err
	}
	gen.p("\treturn len(%s.Items), nil\n}\n\n", v)
	gen.p("// Item%sAt returns the i-th item of %q.\nfunc (m *Message) Item%sAt(i int) (*Item%s, error) {\n", name, c.Origin.Name, name, name)
	v, err = gen.navFromRoot(c, "nil, ")
	if err != nil {
		return err
	}
	gen.p("\tif i < 0 || i >= len(%s.Items) {\n\t\treturn nil, fmt.Errorf(\"%s: index %%d out of range\", i)\n\t}\n\treturn &Item%s{A: %s.Items[i]}, nil\n}\n\n", v, c.Origin.Name, name, v)
	return nil
}

// fieldAPI emits Set<Field>/Get<Field> for one user field, either on the
// Message (scalar) or on the enclosing container's item handle.
func (gen *generator) fieldAPI(f *graph.Node) error {
	name := goName(f.Origin.Name)
	fid := gen.ident(f)
	typ := "uint64"
	if isBytesNode(f) {
		typ = "[]byte"
	}
	cont := containerOf(f)
	if cont == nil {
		gen.p("// Set%s assigns field %q.\nfunc (m *Message) Set%s(v %s) error {\n", name, f.Origin.Name, name, typ)
		v, err := gen.navFromRoot(f, "")
		if err != nil {
			return err
		}
		gen.p("\treturn setval%s(%s, v)\n}\n\n", fid, v)
		zero := "0, "
		if typ == "[]byte" {
			zero = "nil, "
		}
		gen.p("// Get%s reads field %q.\nfunc (m *Message) Get%s() (%s, error) {\n", name, f.Origin.Name, name, typ)
		v, err = gen.navFromRoot(f, zero)
		if err != nil {
			return err
		}
		gen.p("\treturn getval%s(%s)\n}\n\n", fid, v)
		return nil
	}
	// Field inside a container: accessor on the item handle.
	cname := goName(cont.Origin.Name)
	itemVar, err := gen.itemNav(cont, f)
	if err != nil {
		return err
	}
	gen.p("// Set%s assigns field %q within one %q item.\nfunc (it *Item%s) Set%s(v %s) error {\n\treturn setval%s(%s, v)\n}\n\n",
		name, f.Origin.Name, cont.Origin.Name, cname, name, typ, fid, itemVar)
	gen.p("// Get%s reads field %q within one %q item.\nfunc (it *Item%s) Get%s() (%s, error) {\n\treturn getval%s(%s)\n}\n\n",
		name, f.Origin.Name, cont.Origin.Name, cname, name, typ, fid, itemVar)
	return nil
}

// itemNav renders navigation from an item handle to field f inside
// container cont.
func (gen *generator) itemNav(cont *graph.Node, f *graph.Node) (string, error) {
	// Determine which half (for pairs) and the element root.
	var elemRoot *graph.Node
	base := "it.A"
	if cont.IsSplitPair() {
		l := graph.FindRoleHolder(cont, graph.RoleSplitLeft)
		r := graph.FindRoleHolder(cont, graph.RoleSplitRight)
		if isUnder(f, l) {
			elemRoot = l.Child()
			base = "it.A"
		} else if isUnder(f, r) {
			elemRoot = r.Child()
			base = "it.B"
		} else {
			return "", fmt.Errorf("field %q not under either half of %q", f.Name, cont.Name)
		}
	} else {
		elemRoot = cont.Child()
	}
	if f == elemRoot {
		return base, nil
	}
	var segs []string
	for cur := f; cur != elemRoot; cur = cur.Parent {
		if cur.Parent == nil {
			return "", fmt.Errorf("field %q not under element %q", f.Name, elemRoot.Name)
		}
		if cur.Parent.Kind == graph.Repetition || cur.Parent.Kind == graph.Tabular {
			return "", fmt.Errorf("field %q nested in repeated container below %q", f.Name, cont.Name)
		}
		segs = append(segs, "C"+gen.ident(cur))
	}
	for i, j := 0, len(segs)-1; i < j; i, j = i+1, j-1 {
		segs[i], segs[j] = segs[j], segs[i]
	}
	return base + "." + strings.Join(segs, "."), nil
}

func isUnder(n, anc *graph.Node) bool {
	for cur := n; cur != nil; cur = cur.Parent {
		if cur == anc {
			return true
		}
	}
	return false
}
