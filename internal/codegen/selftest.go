package codegen

import (
	"fmt"

	"protoobf/internal/graph"
)

// sample is the value SelfTest assigns to one user field.
type sample struct {
	node  *graph.Node
	u     uint64
	b     []byte
	bytes bool
}

// selfTest emits a generated SelfTest() that builds a sample message
// through the public accessors, serializes it, parses the result and
// compares every field — proving the generated library round-trips.
func (gen *generator) selfTest() error {
	plan, err := gen.planSelfTest()
	if err != nil {
		return err
	}
	gen.p("// SelfTest builds a sample message, serializes, parses and compares.\n// It returns nil when the generated library round-trips correctly.\nfunc SelfTest() error {\n")
	gen.p("\tm := New()\n")

	// Enable optionals (outer to inner DFS order).
	for _, n := range plan.enables {
		gen.p("\tif err := m.Enable%s(); err != nil {\n\t\treturn err\n\t}\n", goName(n.Origin.Name))
	}
	// Scalar fields.
	for _, s := range plan.scalars {
		name := goName(s.node.Origin.Name)
		if s.bytes {
			gen.p("\tif err := m.Set%s(%s); err != nil {\n\t\treturn err\n\t}\n", name, byteLit(s.b))
		} else {
			gen.p("\tif err := m.Set%s(%d); err != nil {\n\t\treturn err\n\t}\n", name, s.u)
		}
	}
	// Containers: two items each.
	for ci, c := range plan.containers {
		cname := goName(c.node.Origin.Name)
		for item := 0; item < 2; item++ {
			iv := fmt.Sprintf("it%d_%d", ci, item)
			gen.p("\t%s, err := m.Add%s()\n\tif err != nil {\n\t\treturn err\n\t}\n", iv, cname)
			for _, s := range c.fields {
				name := goName(s.node.Origin.Name)
				if s.bytes {
					gen.p("\tif err := %s.Set%s(%s); err != nil {\n\t\treturn err\n\t}\n", iv, name, byteLit(s.b))
				} else {
					gen.p("\tif err := %s.Set%s(%d); err != nil {\n\t\treturn err\n\t}\n", iv, name, s.u+uint64(item))
				}
			}
		}
	}

	gen.p("\n\tdata, err := m.Serialize()\n\tif err != nil {\n\t\treturn fmt.Errorf(\"serialize: %%v\", err)\n\t}\n")
	gen.p("\tback, err := Parse(data)\n\tif err != nil {\n\t\treturn fmt.Errorf(\"parse: %%v\", err)\n\t}\n\t_ = back\n\n")

	// Compare scalars.
	for si, s := range plan.scalars {
		name := goName(s.node.Origin.Name)
		gv := fmt.Sprintf("g%d", si)
		if s.bytes {
			gen.p("\t%s, err := back.Get%s()\n\tif err != nil {\n\t\treturn err\n\t}\n\tif !bytes.Equal(%s, %s) {\n\t\treturn fmt.Errorf(\"field %s: got %%x\", %s)\n\t}\n",
				gv, name, gv, byteLit(s.b), s.node.Origin.Name, gv)
		} else {
			gen.p("\t%s, err := back.Get%s()\n\tif err != nil {\n\t\treturn err\n\t}\n\tif %s != %d {\n\t\treturn fmt.Errorf(\"field %s: got %%d want %d\", %s)\n\t}\n",
				gv, name, gv, s.u, s.node.Origin.Name, s.u, gv)
		}
	}
	// Compare containers.
	for ci, c := range plan.containers {
		cname := goName(c.node.Origin.Name)
		gen.p("\tif n, err := back.Count%s(); err != nil || n != 2 {\n\t\treturn fmt.Errorf(\"container %s: %%d items, %%v\", n, err)\n\t}\n", cname, c.node.Origin.Name)
		for item := 0; item < 2; item++ {
			iv := fmt.Sprintf("b%d_%d", ci, item)
			gen.p("\t%s, err := back.Item%sAt(%d)\n\tif err != nil {\n\t\treturn err\n\t}\n", iv, cname, item)
			for fi, s := range c.fields {
				name := goName(s.node.Origin.Name)
				gv := fmt.Sprintf("gc%d_%d_%d", ci, item, fi)
				if s.bytes {
					gen.p("\t%s, err := %s.Get%s()\n\tif err != nil {\n\t\treturn err\n\t}\n\tif !bytes.Equal(%s, %s) {\n\t\treturn fmt.Errorf(\"item field %s: got %%x\", %s)\n\t}\n",
						gv, iv, name, gv, byteLit(s.b), s.node.Origin.Name, gv)
				} else {
					gen.p("\t%s, err := %s.Get%s()\n\tif err != nil {\n\t\treturn err\n\t}\n\tif %s != %d {\n\t\treturn fmt.Errorf(\"item field %s: got %%d\", %s)\n\t}\n",
						gv, iv, name, gv, s.u+uint64(item), s.node.Origin.Name, gv)
				}
			}
		}
	}
	gen.p("\treturn nil\n}\n")
	return nil
}

type containerPlan struct {
	node   *graph.Node
	fields []sample
}

type testPlan struct {
	enables    []*graph.Node
	scalars    []sample
	containers []containerPlan
}

// planSelfTest decides which optionals to enable, which guard values to
// assign and which sample value every reachable user field receives.
func (gen *generator) planSelfTest() (*testPlan, error) {
	plan := &testPlan{}
	guardU := map[string]uint64{}
	guardB := map[string][]byte{}
	enabled := map[*graph.Node]bool{} // Optional nodes chosen enabled

	// First pass: decide optional enables in DFS order.
	gen.g.Walk(func(n *graph.Node) bool {
		if n.Kind != graph.Optional {
			return true
		}
		c := n.Cond
		if c.IsBytes {
			v, assigned := guardB[c.Ref]
			if !assigned {
				want := append([]byte(nil), c.BytesVal...)
				if c.Op == graph.CondNe {
					want = append(want, 'A')
				}
				target := gen.g.FindOriginal(c.Ref)
				if target != nil && len(want) < target.MinLen {
					// Cannot satisfy the predicate and the length
					// contract at once; leave disabled with a padded
					// value.
					for len(want) < target.MinLen {
						want = append(want, 'A')
					}
					if c.Op == graph.CondEq {
						guardB[c.Ref] = want
						return true // disabled
					}
				}
				guardB[c.Ref] = want
				v = want
			}
			eq := string(v) == string(c.BytesVal)
			on := eq == (c.Op == graph.CondEq)
			if on {
				enabled[n] = true
			}
			return true
		}
		v, assigned := guardU[c.Ref]
		if !assigned {
			v = c.UintVal
			if c.Op == graph.CondNe {
				v = c.UintVal + 1
			}
			guardU[c.Ref] = v
		}
		eq := v == c.UintVal
		if eq == (c.Op == graph.CondEq) {
			enabled[n] = true
		}
		return true
	})

	// reachable reports whether every Optional ancestor is enabled.
	reachable := func(n *graph.Node) bool {
		for cur := n.Parent; cur != nil; cur = cur.Parent {
			if cur.Kind == graph.Optional && !enabled[cur] {
				return false
			}
		}
		return true
	}

	gen.g.Walk(func(n *graph.Node) bool {
		if n.Kind == graph.Optional && enabled[n] && containerOf(n) == nil && reachable(n) {
			plan.enables = append(plan.enables, n)
		}
		return true
	})

	// Sample values for user fields.
	sampleFor := func(n *graph.Node) sample {
		name := n.Origin.Name
		if isBytesNode(n) {
			if v, ok := guardB[name]; ok {
				return sample{node: n, b: v, bytes: true}
			}
			ln := n.MinLen
			switch {
			case n.Boundary.Kind == graph.Fixed:
				ln = n.Boundary.Size
			case n.Comb != nil && n.Comb.Kind == graph.CombCat && n.Comb.Width > 0:
				// A split fixed-size field: the original width survives
				// in the combine recipe.
				ln = n.Comb.Width
			case ln < 3:
				ln = 3
			}
			fill := byte('A')
			for _, c := range n.Boundary.Delim {
				if c == fill {
					fill = 'z'
					break
				}
			}
			b := make([]byte, ln)
			for i := range b {
				b[i] = fill
			}
			return sample{node: n, b: b, bytes: true}
		}
		if v, ok := guardU[name]; ok {
			return sample{node: n, u: v}
		}
		return sample{node: n, u: 7}
	}

	containers := map[*graph.Node]*containerPlan{}
	var order []*graph.Node
	for _, f := range gen.userFields() {
		if !reachable(f) {
			continue
		}
		cont := containerOf(f)
		if cont == nil {
			plan.scalars = append(plan.scalars, sampleFor(f))
			continue
		}
		if !reachable(cont) {
			continue
		}
		cp, ok := containers[cont]
		if !ok {
			cp = &containerPlan{node: cont}
			containers[cont] = cp
			order = append(order, cont)
		}
		cp.fields = append(cp.fields, sampleFor(f))
	}
	for _, c := range order {
		plan.containers = append(plan.containers, *containers[c])
	}
	return plan, nil
}
