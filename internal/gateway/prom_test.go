package gateway

import (
	"strings"
	"testing"

	"protoobf/internal/metrics"
)

func TestWritePromLints(t *testing.T) {
	s := Stats{
		Accepted: 12, FreshRouted: 7, ResumeRouted: 4,
		ReplayRejects: 1, ForgedRejects: 2, DialErrors: 3, HeaderErrors: 5,
	}
	var sb strings.Builder
	if err := WriteProm(&sb, s); err != nil {
		t.Fatal(err)
	}
	page := sb.String()
	if err := metrics.LintProm([]byte(page)); err != nil {
		t.Fatalf("gateway prom page fails lint: %v\n%s", err, page)
	}
	for _, want := range []string{
		"protoobf_gateway_accepted_total 12",
		"protoobf_gateway_resume_routed_total 4",
		"protoobf_gateway_replay_rejects_total 1",
		"# TYPE protoobf_gateway_header_errors_total counter",
	} {
		if !strings.Contains(page, want) {
			t.Fatalf("page missing %q:\n%s", want, page)
		}
	}
}
