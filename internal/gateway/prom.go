package gateway

import (
	"bufio"
	"fmt"
	"io"
)

// WriteProm renders the gateway's routing counters in the Prometheus
// text exposition format under the protoobf_gateway_* namespace — the
// gateway's own half of the obs page cmd/protoobf-gateway serves, next
// to the fleet-merged backend snapshots (metrics.WriteFleetProm). The
// error is the writer's, from the first failing write.
func WriteProm(w io.Writer, s Stats) error {
	bw := bufio.NewWriter(w)
	counter := func(name, help string, v uint64) {
		fmt.Fprintf(bw, "# HELP %s %s\n# TYPE %s counter\n%s %d\n", name, help, name, name, v)
	}
	counter("protoobf_gateway_accepted_total",
		"Streams accepted from the gateway listener.", s.Accepted)
	counter("protoobf_gateway_fresh_routed_total",
		"Streams routed round-robin as fresh dials.", s.FreshRouted)
	counter("protoobf_gateway_resume_routed_total",
		"Authenticated resume streams routed by dialect family.", s.ResumeRouted)
	counter("protoobf_gateway_replay_rejects_total",
		"Authentic tickets dropped by the fleet replay cache (single-use).", s.ReplayRejects)
	counter("protoobf_gateway_forged_rejects_total",
		"Resume streams dropped because the ticket failed verification.", s.ForgedRejects)
	counter("protoobf_gateway_dial_errors_total",
		"Streams dropped on a failed backend dial.", s.DialErrors)
	counter("protoobf_gateway_header_errors_total",
		"Streams dropped before routing (torn or oversized opening frame, header timeout, empty registry).", s.HeaderErrors)
	return bw.Flush()
}
