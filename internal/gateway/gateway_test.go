// The gateway tests live in an external package importing the public
// protoobf API: the root package imports internal/gateway for its
// aliases, so testing through the API both avoids the import cycle and
// exercises exactly what a fleet operator wires up.
package gateway_test

import (
	"context"
	"errors"
	"fmt"
	"net"
	"sync"
	"testing"
	"time"

	"protoobf"
)

const gwSpec = `
protocol beacon;
root seq msg end {
    uint  seqno 4;
    bytes note end;
}`

// startBackend runs one echo backend on 127.0.0.1: every accepted
// session answers each seqno with seqno+1000 and tags the note with the
// backend's name so clients can tell who served them.
func startBackend(t *testing.T, ep *protoobf.Endpoint, name string) *protoobf.Listener {
	t.Helper()
	ln, err := ep.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ln.Close() })
	go func() {
		for {
			sess, err := ln.Accept()
			if err != nil {
				if errors.Is(err, protoobf.ErrSessionSetup) {
					continue // one bad stream must not kill the backend
				}
				return
			}
			go func(sess *protoobf.Session) {
				defer sess.Close()
				for {
					got, err := sess.Recv()
					if err != nil {
						return
					}
					seq, err := got.Scope().GetUint("seqno")
					if err != nil {
						return
					}
					reply, err := sess.NewMessage()
					if err != nil {
						return
					}
					if reply.Scope().SetUint("seqno", seq+1000) != nil {
						return
					}
					if reply.Scope().SetString("note", name) != nil {
						return
					}
					if sess.Send(reply) != nil {
						return
					}
				}
			}(sess)
		}
	}()
	return ln
}

// trip bounces one seqno through the echo backend and returns the name
// the serving backend stamped on the reply.
func trip(sess *protoobf.Session, seqno uint64) (string, error) {
	m, err := sess.NewMessage()
	if err != nil {
		return "", err
	}
	if err := m.Scope().SetUint("seqno", seqno); err != nil {
		return "", err
	}
	if err := m.Scope().SetString("note", "n"); err != nil {
		return "", err
	}
	if err := sess.Send(m); err != nil {
		return "", err
	}
	got, err := sess.Recv()
	if err != nil {
		return "", err
	}
	v, err := got.Scope().GetUint("seqno")
	if err != nil {
		return "", err
	}
	if v != seqno+1000 {
		return "", fmt.Errorf("echoed seqno %d, want %d", v, seqno+1000)
	}
	note, err := got.Scope().GetBytes("note")
	return string(note), err
}

// startGateway serves a gateway over the given config on 127.0.0.1 and
// returns its address.
func startGateway(t *testing.T, cfg protoobf.GatewayConfig) (*protoobf.Gateway, string) {
	t.Helper()
	gw, err := protoobf.NewGateway(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { gw.Close() })
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go gw.Serve(ln)
	return gw, ln.Addr().String()
}

func TestRegistryRoundRobinAndOwners(t *testing.T) {
	r := protoobf.NewRegistry(4)
	if _, ok := r.Pick(); ok {
		t.Fatal("empty registry picked a backend")
	}
	if err := r.Add(protoobf.Backend{Name: "a", Addr: "1:1"}); err != nil {
		t.Fatal(err)
	}
	if err := r.Add(protoobf.Backend{Name: "b", Addr: "1:2"}); err != nil {
		t.Fatal(err)
	}
	if err := r.Add(protoobf.Backend{Name: "", Addr: "1:3"}); err == nil {
		t.Fatal("nameless backend accepted")
	}
	// Round-robin alternates.
	seen := map[string]int{}
	for i := 0; i < 4; i++ {
		b, ok := r.Pick()
		if !ok {
			t.Fatal("pick failed")
		}
		seen[b.Name]++
	}
	if seen["a"] != 2 || seen["b"] != 2 {
		t.Fatalf("round robin skewed: %v", seen)
	}
	// Claim then Owner.
	r.Claim(42, "b")
	if b, ok := r.Owner(42); !ok || b.Name != "b" {
		t.Fatalf("owner of 42 = %v,%v, want b", b, ok)
	}
	// Claiming for an unregistered backend is ignored.
	r.Claim(43, "ghost")
	if _, ok := r.Owner(43); ok {
		t.Fatal("ghost backend owns a family")
	}
	// Re-adding updates the address in place and keeps ownership.
	if err := r.Add(protoobf.Backend{Name: "b", Addr: "1:9"}); err != nil {
		t.Fatal(err)
	}
	if b, _ := r.Owner(42); b.Addr != "1:9" {
		t.Fatalf("owner addr after re-add = %s, want 1:9", b.Addr)
	}
	// Removing a backend orphans its families.
	r.Remove("b")
	if _, ok := r.Owner(42); ok {
		t.Fatal("removed backend still owns a family")
	}
	if b, ok := r.Pick(); !ok || b.Name != "a" {
		t.Fatalf("pick after remove = %v,%v, want a", b, ok)
	}
	// Owner capacity is bounded: old claims age out.
	for fam := int64(100); fam < 110; fam++ {
		r.Claim(fam, "a")
	}
	if _, ok := r.Owner(100); ok {
		t.Fatal("owner map unbounded: family 100 survived 10 claims at cap 4")
	}
}

func TestSeedOpenerRejectsForged(t *testing.T) {
	o := protoobf.SeedOpener(99)
	if _, err := o.OpenResume([]byte("definitely not a sealed ticket")); err == nil {
		t.Fatal("forged ticket opened")
	}
	if _, err := protoobf.InspectTicket(o, []byte("nope")); err == nil {
		t.Fatal("forged ticket inspected")
	}
}

// TestGatewayRoutesAndRejectsReplay is the end-to-end fleet story over
// real TCP: fresh dials round-robin across two backend processes,
// a rekeyed session migrates through the gateway onto a (possibly
// different) backend, and a second presentation of the spent ticket is
// dropped at the front door and counted.
func TestGatewayRoutesAndRejectsReplay(t *testing.T) {
	const seed = int64(31)
	opts := protoobf.Options{PerNode: 1, Seed: seed}
	mkEp := func() *protoobf.Endpoint {
		ep, err := protoobf.NewEndpoint(gwSpec, opts)
		if err != nil {
			t.Fatal(err)
		}
		return ep
	}
	ln1 := startBackend(t, mkEp(), "b1")
	ln2 := startBackend(t, mkEp(), "b2")

	reg := protoobf.NewRegistry(0)
	if err := reg.Add(protoobf.Backend{Name: "b1", Addr: ln1.Addr().String()}); err != nil {
		t.Fatal(err)
	}
	if err := reg.Add(protoobf.Backend{Name: "b2", Addr: ln2.Addr().String()}); err != nil {
		t.Fatal(err)
	}
	gw, addr := startGateway(t, protoobf.GatewayConfig{
		Registry: reg,
		Opener:   protoobf.SeedOpener(seed),
		Replay:   protoobf.NewReplayCache(0),
	})

	client := mkEp()
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Second)
	defer cancel()

	// Fresh dials spread across both backends.
	served := map[string]bool{}
	for i := 0; i < 4; i++ {
		sess, err := client.Dial(ctx, "tcp", addr)
		if err != nil {
			t.Fatal(err)
		}
		who, err := trip(sess, uint64(i))
		if err != nil {
			t.Fatalf("fresh trip %d: %v", i, err)
		}
		served[who] = true
		sess.Close()
	}
	if !served["b1"] || !served["b2"] {
		t.Fatalf("round robin served only %v", served)
	}

	// A session rekeys (so its ticket names a private family), exports,
	// dies, and migrates through the gateway.
	sess, err := client.Dial(ctx, "tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := trip(sess, 10); err != nil {
		t.Fatal(err)
	}
	if _, err := sess.Rekey(0xFA0); err != nil {
		t.Fatal(err)
	}
	if _, err := trip(sess, 11); err != nil {
		t.Fatal(err)
	}
	if _, err := trip(sess, 12); err != nil {
		t.Fatal(err)
	}
	ticket, err := sess.Export()
	if err != nil {
		t.Fatal(err)
	}
	sess.Close()

	resumed, err := client.DialResume(ctx, "tcp", addr, ticket)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := trip(resumed, 20); err != nil {
		t.Fatalf("post-migration trip: %v", err)
	}
	resumed.Close()

	// Replaying the spent ticket is refused before any backend sees it.
	replayed, err := client.DialResume(ctx, "tcp", addr, ticket)
	if err == nil {
		_, terr := trip(replayed, 30)
		replayed.Close()
		if terr == nil {
			t.Fatal("replayed ticket served traffic")
		}
	}
	stats := gw.Stats()
	if stats.ResumeRouted != 1 {
		t.Fatalf("ResumeRouted = %d, want 1", stats.ResumeRouted)
	}
	if stats.ReplayRejects != 1 {
		t.Fatalf("ReplayRejects = %d, want 1", stats.ReplayRejects)
	}
	if stats.FreshRouted < 5 {
		t.Fatalf("FreshRouted = %d, want >= 5", stats.FreshRouted)
	}
	if stats.ForgedRejects != 0 {
		t.Fatalf("ForgedRejects = %d, want 0", stats.ForgedRejects)
	}
}

// fakeClock drives schedules deterministically under -race.
type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func (c *fakeClock) now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *fakeClock) advance(d time.Duration) {
	c.mu.Lock()
	c.t = c.t.Add(d)
	c.mu.Unlock()
}

// TestGatewayChurn is the routing churn soak: sessions migrate through
// the gateway between two backends while the epoch schedule rotates
// dialects and every session rekeys each cycle. Both backends share one
// artifact cache, so a migrated family restores from disk wherever it
// lands. Every trip must decode — a session served a superseded family
// version would fail its round trip — and a deliberate double-use of a
// spent ticket must be rejected and counted.
func TestGatewayChurn(t *testing.T) {
	const (
		seed     = int64(37)
		sessions = 8
		cycles   = 3
	)
	genesis := time.Unix(1_700_000_000, 0)
	clock := &fakeClock{t: genesis}
	schedule := protoobf.NewSchedule(genesis, time.Minute).WithClock(clock.now)
	artDir := t.TempDir()
	opts := protoobf.Options{PerNode: 1, Seed: seed}
	mkEp := func() *protoobf.Endpoint {
		ep, err := protoobf.NewEndpoint(gwSpec, opts,
			protoobf.WithSchedule(schedule),
			protoobf.WithArtifactCache(artDir),
			protoobf.WithTicketReissue(true))
		if err != nil {
			t.Fatal(err)
		}
		return ep
	}
	epB1, epB2 := mkEp(), mkEp()
	ln1 := startBackend(t, epB1, "b1")
	ln2 := startBackend(t, epB2, "b2")

	reg := protoobf.NewRegistry(0)
	if err := reg.Add(protoobf.Backend{Name: "b1", Addr: ln1.Addr().String()}); err != nil {
		t.Fatal(err)
	}
	if err := reg.Add(protoobf.Backend{Name: "b2", Addr: ln2.Addr().String()}); err != nil {
		t.Fatal(err)
	}
	gw, addr := startGateway(t, protoobf.GatewayConfig{
		Registry: reg,
		Opener:   protoobf.SeedOpener(seed),
		Replay:   protoobf.NewReplayCache(0),
	})

	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()

	var wg sync.WaitGroup
	errs := make(chan error, sessions)
	spent := make(chan []byte, sessions) // one used ticket per worker for the replay probe
	for i := 0; i < sessions; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			client, err := protoobf.NewEndpoint(gwSpec, opts,
				protoobf.WithSchedule(schedule),
				protoobf.WithArtifactCache(artDir))
			if err != nil {
				errs <- err
				return
			}
			sess, err := client.Dial(ctx, "tcp", addr)
			if err != nil {
				errs <- fmt.Errorf("worker %d dial: %w", i, err)
				return
			}
			var kept []byte
			for c := 0; c < cycles; c++ {
				if _, err := sess.Rekey(seed + int64(i*1000+c+13)); err != nil {
					errs <- fmt.Errorf("worker %d cycle %d rekey: %w", i, c, err)
					return
				}
				for m := 0; m < 3; m++ {
					if _, err := trip(sess, uint64(i*100+c*10+m)); err != nil {
						errs <- fmt.Errorf("worker %d cycle %d trip %d: %w", i, c, m, err)
						return
					}
				}
				// Prefer the backend's re-issued ticket; fall back to a
				// local export (first cycle may not have drained one).
				ticket := sess.StoredTicket()
				if ticket == nil {
					if ticket, err = sess.Export(); err != nil {
						errs <- fmt.Errorf("worker %d cycle %d export: %w", i, c, err)
						return
					}
				}
				sess.Close()
				if kept == nil {
					kept = ticket
				}
				if sess, err = client.DialResume(ctx, "tcp", addr, ticket); err != nil {
					errs <- fmt.Errorf("worker %d cycle %d resume: %w", i, c, err)
					return
				}
				if _, err := trip(sess, uint64(i*100+c*10+9)); err != nil {
					errs <- fmt.Errorf("worker %d cycle %d post-migration trip: %w", i, c, err)
					return
				}
			}
			sess.Close()
			spent <- kept
		}(i)
	}

	// Rotate the dialect schedule while the churn runs.
	for e := 0; e < 3; e++ {
		time.Sleep(20 * time.Millisecond)
		clock.advance(time.Minute)
	}
	wg.Wait()
	close(errs)
	close(spent)
	for err := range errs {
		t.Fatal(err)
	}

	// Every kept ticket was already presented once: replaying them all
	// through the gateway must be rejected at the front door.
	before := gw.Stats().ReplayRejects
	var probes uint64
	for ticket := range spent {
		if ticket == nil {
			continue
		}
		probes++
		client, err := protoobf.NewEndpoint(gwSpec, opts, protoobf.WithSchedule(schedule))
		if err != nil {
			t.Fatal(err)
		}
		if replayed, err := client.DialResume(ctx, "tcp", addr, ticket); err == nil {
			if _, terr := trip(replayed, 1); terr == nil {
				t.Fatal("replayed ticket served traffic")
			}
			replayed.Close()
		}
	}
	if got := gw.Stats().ReplayRejects - before; got != probes {
		t.Fatalf("replay probes rejected = %d, want %d", got, probes)
	}

	// The shared artifact cache did its job: at least one backend loaded
	// a dialect some other process compiled instead of recompiling.
	m1, m2 := epB1.Metrics(), epB2.Metrics()
	if m1.Rotation.ArtifactLoads+m2.Rotation.ArtifactLoads == 0 {
		t.Fatalf("no artifact loads across the fleet (b1 %+v, b2 %+v)", m1.Rotation, m2.Rotation)
	}
	if got := gw.Stats().ResumeRouted; got < sessions*cycles {
		t.Fatalf("ResumeRouted = %d, want >= %d", got, sessions*cycles)
	}
}
