package gateway

import (
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"protoobf/internal/core"
	"protoobf/internal/frame"
	"protoobf/internal/session"
)

// maxTicketWire bounds a resume payload the gateway will buffer before
// routing — the session layer's own ticket ceiling (core enforces the
// same 8 KiB on open), so anything larger is garbage, not a ticket.
const maxTicketWire = 8192

// Config configures a Gateway.
type Config struct {
	// Registry is the routing table of backend processes. Required.
	Registry *Registry

	// Opener verifies and inspects resumption tickets (the fleet's
	// shared base seed opens every ticket its backends seal — see
	// SeedOpener or Endpoint.TicketOpener). When nil the gateway cannot
	// authenticate resumes and routes every stream round-robin like a
	// fresh dial.
	Opener session.TicketOpener

	// Replay, when non-nil, is the fleet-wide single-use ticket cache:
	// the gateway witnesses every authentic resume ticket before
	// routing it, so a captured ticket replayed against the fleet — on
	// any backend — is dropped at the front door.
	Replay *session.ReplayCache

	// DialTimeout bounds each backend dial (0 means 10s).
	DialTimeout time.Duration

	// HeaderTimeout bounds how long an accepted stream may take to
	// produce its opening frame header and, for resumes, the ticket
	// payload (0 means 30s). It caps slow-loris holds on the routing
	// peek; after routing the gateway imposes no deadlines.
	HeaderTimeout time.Duration
}

// Counters is the gateway's routing telemetry. All fields are atomic;
// read a consistent-enough view with Stats.
type Counters struct {
	// Accepted counts streams accepted from the listener.
	Accepted atomic.Uint64
	// FreshRouted counts streams routed round-robin (fresh dials, and
	// everything when no Opener is configured).
	FreshRouted atomic.Uint64
	// ResumeRouted counts authenticated resume streams routed by
	// dialect family.
	ResumeRouted atomic.Uint64
	// ReplayRejects counts authentic tickets dropped because the fleet
	// replay cache had already seen them.
	ReplayRejects atomic.Uint64
	// ForgedRejects counts resume streams dropped because their ticket
	// did not verify under the fleet seed.
	ForgedRejects atomic.Uint64
	// DialErrors counts failed backend dials (the stream is dropped).
	DialErrors atomic.Uint64
	// HeaderErrors counts streams dropped before routing: torn or
	// oversized opening frames, header timeouts, empty registry.
	HeaderErrors atomic.Uint64
}

// Stats is a point-in-time copy of Counters.
type Stats struct {
	Accepted, FreshRouted, ResumeRouted uint64
	ReplayRejects, ForgedRejects        uint64
	DialErrors, HeaderErrors            uint64
}

// Gateway routes protoobf streams to backend processes. One Gateway
// may serve multiple listeners; Close stops them all.
type Gateway struct {
	cfg Config
	n   Counters

	mu        sync.Mutex
	listeners []net.Listener
	closed    bool
	wg        sync.WaitGroup
}

// New builds a Gateway from cfg, filling timeout defaults.
func New(cfg Config) (*Gateway, error) {
	if cfg.Registry == nil {
		return nil, errors.New("gateway: Config.Registry is required")
	}
	if cfg.DialTimeout <= 0 {
		cfg.DialTimeout = 10 * time.Second
	}
	if cfg.HeaderTimeout <= 0 {
		cfg.HeaderTimeout = 30 * time.Second
	}
	return &Gateway{cfg: cfg}, nil
}

// Serve accepts streams from ln until ln or the gateway closes. A
// closed listener returns nil; other accept errors are returned.
func (g *Gateway) Serve(ln net.Listener) error {
	g.mu.Lock()
	if g.closed {
		g.mu.Unlock()
		ln.Close()
		return errors.New("gateway: closed")
	}
	g.listeners = append(g.listeners, ln)
	g.mu.Unlock()
	for {
		conn, err := ln.Accept()
		if err != nil {
			if errors.Is(err, net.ErrClosed) {
				return nil
			}
			return err
		}
		g.n.Accepted.Add(1)
		g.wg.Add(1)
		go func() {
			defer g.wg.Done()
			g.handle(conn)
		}()
	}
}

// ListenAndServe listens on addr (TCP) and serves it.
func (g *Gateway) ListenAndServe(addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	return g.Serve(ln)
}

// Close stops all listeners and waits for in-flight routing peeks (not
// spliced streams — those end with their peers).
func (g *Gateway) Close() error {
	g.mu.Lock()
	g.closed = true
	lns := g.listeners
	g.listeners = nil
	g.mu.Unlock()
	for _, ln := range lns {
		ln.Close()
	}
	return nil
}

// Stats snapshots the gateway's counters.
func (g *Gateway) Stats() Stats {
	return Stats{
		Accepted:      g.n.Accepted.Load(),
		FreshRouted:   g.n.FreshRouted.Load(),
		ResumeRouted:  g.n.ResumeRouted.Load(),
		ReplayRejects: g.n.ReplayRejects.Load(),
		ForgedRejects: g.n.ForgedRejects.Load(),
		DialErrors:    g.n.DialErrors.Load(),
		HeaderErrors:  g.n.HeaderErrors.Load(),
	}
}

// handle peeks one stream's opening frame, routes it, and splices.
func (g *Gateway) handle(client net.Conn) {
	defer func() {
		if client != nil {
			client.Close()
		}
	}()

	client.SetReadDeadline(time.Now().Add(g.cfg.HeaderTimeout))
	var hdr [frame.EpochHeaderLen]byte
	if _, err := io.ReadFull(client, hdr[:]); err != nil {
		g.n.HeaderErrors.Add(1)
		return
	}
	kind, payloadLen, _, err := frame.DecodeHeader(hdr[:])
	if err != nil {
		g.n.HeaderErrors.Add(1)
		return
	}

	var (
		backend Backend
		ok      bool
		payload []byte
	)
	if kind == frame.KindResume && g.cfg.Opener != nil {
		// The opening frame is a resumption ticket: authenticate it at
		// the front door, spend its single use fleet-wide, and route by
		// the dialect family it names.
		if payloadLen > maxTicketWire {
			g.n.HeaderErrors.Add(1)
			return
		}
		payload = make([]byte, payloadLen)
		if _, err := io.ReadFull(client, payload); err != nil {
			g.n.HeaderErrors.Add(1)
			return
		}
		info, err := session.InspectTicket(g.cfg.Opener, payload)
		if err != nil {
			g.n.ForgedRejects.Add(1)
			return
		}
		if g.cfg.Replay != nil && g.cfg.Replay.Witness(payload) {
			g.n.ReplayRejects.Add(1)
			return
		}
		if info.Rekeyed {
			// A rekeyed session's family lives only in the processes
			// that negotiated it (or can restore it from the ticket) —
			// prefer the backend that last served the family, falling
			// back to fresh placement, which the ticket itself makes
			// correct: the backend rebuilds the lineage from it.
			backend, ok = g.cfg.Registry.Owner(info.Family)
			if !ok {
				backend, ok = g.cfg.Registry.Pick()
			}
			if ok {
				g.cfg.Registry.Claim(info.Family, backend.Name)
			}
		} else {
			backend, ok = g.cfg.Registry.Pick()
		}
		if !ok {
			g.n.HeaderErrors.Add(1)
			return
		}
		g.n.ResumeRouted.Add(1)
	} else {
		backend, ok = g.cfg.Registry.Pick()
		if !ok {
			g.n.HeaderErrors.Add(1)
			return
		}
		g.n.FreshRouted.Add(1)
	}
	client.SetReadDeadline(time.Time{})

	up, err := net.DialTimeout("tcp", backend.Addr, g.cfg.DialTimeout)
	if err != nil {
		g.n.DialErrors.Add(1)
		return
	}
	if _, err := up.Write(hdr[:]); err != nil {
		up.Close()
		g.n.DialErrors.Add(1)
		return
	}
	if len(payload) > 0 {
		if _, err := up.Write(payload); err != nil {
			up.Close()
			g.n.DialErrors.Add(1)
			return
		}
	}
	c := client
	client = nil // splice owns both ends now
	splice(c, up)
}

// splice copies bytes both ways until both directions end, propagating
// half-closes so a clean shutdown on one side drains the other.
func splice(a, b net.Conn) {
	var wg sync.WaitGroup
	wg.Add(2)
	cp := func(dst, src net.Conn) {
		defer wg.Done()
		io.Copy(dst, src)
		if hc, ok := dst.(interface{ CloseWrite() error }); ok {
			hc.CloseWrite()
		} else {
			dst.Close()
		}
	}
	go cp(a, b)
	go cp(b, a)
	wg.Wait()
	a.Close()
	b.Close()
}

// SeedOpener builds a ticket opener from the fleet's base master seed:
// it opens any resumption ticket sealed by a backend whose dialect
// family was compiled from the same seed. This is what a standalone
// gateway process — which never compiles a spec — authenticates with.
func SeedOpener(seed int64) session.TicketOpener { return seedOpener(seed) }

type seedOpener int64

func (s seedOpener) OpenResume(ticket []byte) ([]byte, error) {
	return core.OpenTicket(int64(s), ticket)
}

var _ fmt.Stringer = Backend{}

// String renders a backend as name=addr, the flag syntax that creates
// one.
func (b Backend) String() string { return b.Name + "=" + b.Addr }
