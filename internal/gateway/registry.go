// Package gateway implements the multi-process obfuscation gateway: a
// front process that accepts raw byte streams, peeks the one control
// frame a protoobf stream leads with, and routes the connection to a
// backend process from a registry — fresh sessions to any warm backend,
// resuming sessions to the backend that owns (or can load from the
// artifact cache) their dialect family. The gateway never decodes
// payload traffic: after routing it splices bytes. Combined with the
// fleet-wide ticket replay cache it is the deployment shape where a
// dialect family outlives any single process.
package gateway

import (
	"fmt"
	"sync"

	"protoobf/internal/lru"
)

// Backend names one routable backend process.
type Backend struct {
	// Name is the stable identity used in the owner map; it survives
	// address changes (a restarted backend re-registers its new addr
	// under the old name and inherits its families).
	Name string
	// Addr is the TCP address the gateway dials, host:port.
	Addr string
}

// defaultOwnerCap bounds the family->backend owner map: beyond it the
// least recently routed families age out and fall back to fresh
// placement, which is correct (any backend can load the family from
// the shared artifact cache) just less warm.
const defaultOwnerCap = 65536

// Registry is the gateway's routing table: the set of live backends
// plus a bounded map of which backend last served each rekeyed dialect
// family. Safe for concurrent use.
type Registry struct {
	mu       sync.Mutex
	backends []Backend
	byName   map[string]int
	next     int // round-robin cursor for Pick
	owners   *lru.Cache[int64, string]
}

// NewRegistry builds an empty registry. ownerCap bounds the
// family-owner map (0 means a default of 65536 families).
func NewRegistry(ownerCap int) *Registry {
	if ownerCap <= 0 {
		ownerCap = defaultOwnerCap
	}
	return &Registry{
		byName: make(map[string]int),
		owners: lru.New[int64, string](ownerCap, nil),
	}
}

// Add registers (or re-registers) a backend. Re-registering an
// existing name updates its address in place — the restart path — and
// keeps every family it owns.
func (r *Registry) Add(b Backend) error {
	if b.Name == "" || b.Addr == "" {
		return fmt.Errorf("gateway: backend needs name and addr, got %+v", b)
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if i, ok := r.byName[b.Name]; ok {
		r.backends[i] = b
		return nil
	}
	r.byName[b.Name] = len(r.backends)
	r.backends = append(r.backends, b)
	return nil
}

// Remove drops a backend by name. Its owned families stay in the owner
// map until they age out; Owner filters them, so lookups for a removed
// backend fall back to fresh placement.
func (r *Registry) Remove(name string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	i, ok := r.byName[name]
	if !ok {
		return
	}
	delete(r.byName, name)
	r.backends = append(r.backends[:i], r.backends[i+1:]...)
	for n, j := range r.byName {
		if j > i {
			r.byName[n] = j - 1
		}
	}
	if r.next > len(r.backends) {
		r.next = 0
	}
}

// Backends returns a snapshot of the registered backends in
// registration order.
func (r *Registry) Backends() []Backend {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]Backend, len(r.backends))
	copy(out, r.backends)
	return out
}

// Pick returns the next backend round-robin, false when the registry
// is empty.
func (r *Registry) Pick() (Backend, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if len(r.backends) == 0 {
		return Backend{}, false
	}
	b := r.backends[r.next%len(r.backends)]
	r.next = (r.next + 1) % len(r.backends)
	return b, true
}

// Claim records that backend name now serves dialect family fam:
// subsequent resumes of that family route there.
func (r *Registry) Claim(fam int64, name string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.byName[name]; !ok {
		return
	}
	r.owners.Put(fam, name)
}

// Owner returns the backend owning dialect family fam, if it is still
// registered.
func (r *Registry) Owner(fam int64) (Backend, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	name, ok := r.owners.Get(fam)
	if !ok {
		return Backend{}, false
	}
	i, ok := r.byName[name]
	if !ok {
		return Backend{}, false
	}
	return r.backends[i], true
}
