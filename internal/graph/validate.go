package graph

import (
	"errors"
	"fmt"
)

// ValidationError describes a violated graph invariant.
type ValidationError struct {
	Node string // name of the offending node ("" for graph-level issues)
	Msg  string
}

func (e *ValidationError) Error() string {
	if e.Node == "" {
		return "graph: " + e.Msg
	}
	return fmt.Sprintf("graph: node %q: %s", e.Node, e.Msg)
}

func verr(n *Node, format string, args ...any) error {
	name := ""
	if n != nil {
		name = n.Name
	}
	return &ValidationError{Node: name, Msg: fmt.Sprintf(format, args...)}
}

// Validate checks every structural invariant required for unambiguous,
// invertible serialization and parsing. Transformations are applied
// tentatively and rolled back when the resulting graph does not validate,
// which makes Validate the single source of truth for applicability.
func (g *Graph) Validate() error {
	if g.Root == nil {
		return verr(nil, "nil root")
	}
	var errs []error
	report := func(err error) { errs = append(errs, err) }

	g.Rebuild()
	names := make(map[string]*Node)
	g.Walk(func(n *Node) bool {
		if n.Name == "" {
			report(verr(n, "empty name"))
		}
		if prev, dup := names[n.Name]; dup {
			report(verr(n, "duplicate name (also %q)", prev.Path()))
		}
		names[n.Name] = n
		report2 := func(err error) {
			if err != nil {
				report(err)
			}
		}
		report2(g.validateArity(n))
		report2(g.validateBoundary(n))
		report2(g.validateTerminal(n))
		report2(g.validateComb(n))
		report2(g.validatePair(n))
		return true
	})
	if len(errs) > 0 {
		return errors.Join(errs...)
	}

	// Reference invariants need the name table complete. The parse
	// index is built once and shared across nodes.
	idx := g.parseIndex()
	g.Walk(func(n *Node) bool {
		if err := g.validateRefs(n, idx); err != nil {
			report(err)
		}
		return true
	})
	// Extent invariants for End-bounded, Reversed and RepSplit nodes.
	g.Walk(func(n *Node) bool {
		if err := g.validateExtent(n); err != nil {
			report(err)
		}
		return true
	})
	// Prefix-safety of delimited repetitions.
	g.Walk(func(n *Node) bool {
		if n.Kind == Repetition && n.Boundary.Kind == Delimited {
			if err := g.validateRepPrefix(n); err != nil {
				report(err)
			}
		}
		return true
	})
	if len(errs) > 0 {
		return errors.Join(errs...)
	}
	return nil
}

func (g *Graph) validateArity(n *Node) error {
	switch n.Kind {
	case Terminal:
		if len(n.Children) != 0 {
			return verr(n, "terminal with %d children", len(n.Children))
		}
	case Sequence:
		if len(n.Children) == 0 {
			return verr(n, "sequence without children")
		}
	case Optional, Repetition, Tabular:
		if len(n.Children) != 1 {
			return verr(n, "%v must have exactly one child, has %d", n.Kind, len(n.Children))
		}
	default:
		return verr(n, "unknown kind %d", int(n.Kind))
	}
	return nil
}

func (g *Graph) validateBoundary(n *Node) error {
	b := n.Boundary
	switch b.Kind {
	case Fixed:
		if b.Size <= 0 {
			return verr(n, "fixed boundary with size %d", b.Size)
		}
	case Delimited:
		if len(b.Delim) == 0 {
			return verr(n, "delimited boundary with empty delimiter")
		}
	case Length, Counter:
		if b.Ref == "" {
			return verr(n, "%v boundary without reference", b.Kind)
		}
	case End, Delegated:
	default:
		return verr(n, "unknown boundary kind %d", int(b.Kind))
	}

	// The halves of a RepSplit pair are Repetitions whose count is
	// derived from the enclosing region size; they carry no boundary of
	// their own.
	if n.Kind == Repetition && b.Kind == Delegated && n.Parent != nil && n.Parent.Pair != nil {
		return nil
	}
	allowed := map[Kind][]BoundaryKind{
		Terminal:   {Fixed, Delimited, Length, End},
		Sequence:   {Delegated, Delimited, Length, End},
		Optional:   {Delegated},
		Repetition: {Delimited, Length, End},
		Tabular:    {Counter},
	}
	for _, k := range allowed[n.Kind] {
		if b.Kind == k {
			return nil
		}
	}
	return verr(n, "%v boundary not allowed on %v node", b.Kind, n.Kind)
}

func (g *Graph) validateTerminal(n *Node) error {
	if n.Kind != Terminal {
		return nil
	}
	switch n.Enc {
	case EncBytes:
	case EncASCII:
		if n.Boundary.Kind == Fixed {
			return verr(n, "ascii terminal cannot have a fixed boundary (digit count varies)")
		}
	case EncUint:
		if n.Boundary.Kind != Fixed {
			return verr(n, "uint terminal requires a fixed boundary, has %v", n.Boundary)
		}
		switch n.Boundary.Size {
		case 1, 2, 4, 8:
		default:
			return verr(n, "uint terminal width %d not in {1,2,4,8}", n.Boundary.Size)
		}
	default:
		return verr(n, "terminal without encoding")
	}
	for _, op := range n.Ops {
		switch op.Kind {
		case OpAdd, OpSub, OpXor:
			if n.Enc == EncBytes {
				return verr(n, "integer op %v on bytes terminal", op.Kind)
			}
		case OpByteAdd, OpByteXor:
			if len(op.KB) == 0 {
				return verr(n, "byte op %v with empty key", op.Kind)
			}
		default:
			return verr(n, "unknown value op %d", int(op.Kind))
		}
	}
	return nil
}

func (g *Graph) validateComb(n *Node) error {
	if n.Comb == nil {
		return nil
	}
	if n.Kind != Sequence || len(n.Children) != 2 {
		return verr(n, "combine node must be a two-child sequence")
	}
	switch n.Comb.Kind {
	case CombAdd, CombSub, CombXor:
		if n.Comb.Width <= 0 || n.Comb.Width > 8 {
			return verr(n, "combine width %d invalid", n.Comb.Width)
		}
	case CombCat:
		if n.Comb.SplitAt <= 0 {
			return verr(n, "combine cat split offset %d invalid", n.Comb.SplitAt)
		}
		if n.Enc != EncBytes && (n.Comb.Width <= 0 || n.Comb.Width > 8) {
			return verr(n, "combine cat on integer value needs a width, has %d", n.Comb.Width)
		}
	default:
		return verr(n, "unknown combine kind %d", int(n.Comb.Kind))
	}
	return nil
}

func (g *Graph) validatePair(n *Node) error {
	if n.Pair == nil {
		return nil
	}
	if n.Kind != Sequence || len(n.Children) != 2 {
		return verr(n, "rep-split pair must be a two-child sequence")
	}
	for _, c := range n.Children {
		if c.Kind != Repetition {
			return verr(n, "rep-split pair child %q is not a repetition", c.Name)
		}
		if c.Child() == nil {
			return verr(n, "rep-split pair child %q has no element", c.Name)
		}
		// The parser derives the item count from the region size, which
		// requires static element sizes — even after transformations
		// have been applied inside the elements.
		if _, ok := StaticSize(c.Child()); !ok {
			return verr(n, "rep-split pair child %q has a non-static element size", c.Name)
		}
	}
	return nil
}

// validateRefs checks that Length/Counter/Cond references resolve to
// suitable nodes and that every contributing leaf is parsed before the
// dependent node needs the value.
func (g *Graph) validateRefs(n *Node, idx map[*Node]int) error {
	check := func(ref string, wantAutoFill bool, use string) error {
		target := g.FindOriginal(ref)
		if target == nil {
			return verr(n, "%s reference %q does not resolve", use, ref)
		}
		// Length/Counter targets must have a size that does not depend
		// on their (serializer-computed) value, hence EncUint: the
		// two-phase serializer lays out sizes before filling values.
		if target.Enc != EncUint {
			return verr(n, "%s reference %q is not an integer field", use, ref)
		}
		if wantAutoFill && !target.AutoFill {
			return verr(n, "%s reference %q is not auto-filled", use, ref)
		}
		for _, leaf := range g.ContributingLeaves(ref) {
			if idx[leaf] >= idx[n] {
				return verr(n, "%s reference %q: leaf %q parses at or after the dependent node", use, ref, leaf.Name)
			}
		}
		return nil
	}

	switch n.Boundary.Kind {
	case Length:
		if err := check(n.Boundary.Ref, true, "length"); err != nil {
			return err
		}
	case Counter:
		if err := check(n.Boundary.Ref, true, "counter"); err != nil {
			return err
		}
	}
	if n.Kind == Optional {
		ref := n.Cond.Ref
		target := g.FindOriginal(ref)
		if target == nil {
			return verr(n, "presence reference %q does not resolve", ref)
		}
		if target.AutoFill {
			return verr(n, "presence reference %q is auto-filled", ref)
		}
		if n.Cond.IsBytes && target.Enc != EncBytes {
			return verr(n, "presence predicate compares bytes but %q is %v", ref, target.Enc)
		}
		if !n.Cond.IsBytes && target.Enc == EncBytes {
			return verr(n, "presence predicate compares an integer but %q is bytes", ref)
		}
		if n.Cond.Op != CondEq && n.Cond.Op != CondNe {
			return verr(n, "unknown presence operator %d", int(n.Cond.Op))
		}
		idxN := idx[n]
		for _, leaf := range g.ContributingLeaves(ref) {
			if idx[leaf] >= idxN {
				return verr(n, "presence reference %q: leaf %q parses at or after the optional node", ref, leaf.Name)
			}
		}
	}
	return nil
}

// validateExtent checks that nodes whose parsing requires a pre-computed
// byte extent (End boundaries, Reversed subtrees, RepSplit pairs) can
// actually obtain one.
func (g *Graph) validateExtent(n *Node) error {
	needsEndRegion := n.Boundary.Kind == End
	if n.Reversed || n.Pair != nil {
		if _, ok := StaticSize(n); !ok {
			switch n.Boundary.Kind {
			case Length:
				// extent given by the reference
			case End:
				needsEndRegion = true
			default:
				what := "reversed node"
				if n.Pair != nil {
					what = "rep-split pair"
				}
				return verr(n, "%s has no computable extent (boundary %v)", what, n.Boundary)
			}
		}
	}
	if !needsEndRegion {
		return nil
	}
	// An End-bounded node consumes up to the end of the innermost
	// enclosing region. That end must be known when the parser reaches
	// the node, and nothing else may serialize after the node within the
	// region.
	cur := n
	for {
		p := cur.Parent
		if p == nil {
			return nil // region is the whole message
		}
		// Nothing may follow cur inside p.
		if p.Kind == Sequence {
			last := p.Children[len(p.Children)-1]
			if last != cur {
				return verr(n, "end-bounded node is not last in sequence %q", p.Name)
			}
		}
		if p.Kind == Repetition || p.Kind == Tabular {
			return verr(n, "end-bounded node inside %v %q would consume all items", p.Kind, p.Name)
		}
		if p.Reversed {
			// The reversed ancestor has its own computable extent
			// (validated above), which bounds the region.
			return nil
		}
		switch p.Boundary.Kind {
		case Length:
			return nil // region end known from the reference
		case Delimited:
			return verr(n, "end-bounded node inside delimited region %q", p.Name)
		}
		cur = p
	}
}

// validateRepPrefix enforces prefix-safety for delimited repetitions: the
// first byte serialized for each item must come from application data that
// the protocol contract keeps distinct from the terminator. Synthetic
// bytes (pads, integer fields, transformed values, reversed regions) at
// the item start could collide with the terminator and make parsing
// ambiguous, so such graphs are rejected.
//
// This check is a soundness improvement over the paper, which relies on
// per-transformation parent-boundary constraints only.
func (g *Graph) validateRepPrefix(rep *Node) error {
	item := rep.Child()
	leaf, onPath, reversed := firstWireLeaf(item)
	if leaf == nil {
		return verr(rep, "delimited repetition item has no terminal")
	}
	if reversed {
		return verr(rep, "item of delimited repetition starts inside a reversed region")
	}
	if leaf.Origin.Role == RolePad {
		return verr(rep, "item of delimited repetition starts with pad %q", leaf.Name)
	}
	if leaf.Enc == EncUint {
		return verr(rep, "item of delimited repetition starts with integer field %q", leaf.Name)
	}
	if len(leaf.Ops) > 0 {
		return verr(rep, "item of delimited repetition starts with transformed field %q", leaf.Name)
	}
	// The first leaf may itself be Optional-guarded: if the optional is
	// absent, the next leaf starts the item. Conservatively require that
	// the first leaf is not under an Optional between item and leaf.
	for _, pn := range onPath {
		if pn.Kind == Optional {
			return verr(rep, "item of delimited repetition starts with optional subtree %q", pn.Name)
		}
	}
	// An empty first field would make the item start with its own
	// delimiter, which could collide with the terminator scan.
	if leaf.Boundary.Kind != Fixed && leaf.MinLen < 1 {
		return verr(rep, "item of delimited repetition starts with possibly-empty field %q (declare min 1)", leaf.Name)
	}
	return nil
}

// firstWireLeaf returns the leaf providing the first serialized byte of n,
// the chain of nodes from n down to that leaf (n excluded, leaf included),
// and whether that first byte lies inside a reversed region. Reversed
// nodes flip which side serializes first.
func firstWireLeaf(n *Node) (leaf *Node, path []*Node, reversed bool) {
	cur := n
	for {
		if cur.Reversed {
			reversed = !reversed
		}
		if cur.IsLeaf() {
			return cur, path, reversed
		}
		if len(cur.Children) == 0 {
			return nil, path, reversed
		}
		var next *Node
		if reversed {
			next = cur.Children[len(cur.Children)-1]
		} else {
			next = cur.Children[0]
		}
		path = append(path, next)
		cur = next
	}
}

// AutoFillNames returns the set of original field names whose values the
// serializer computes (Length/Counter boundary targets).
func (g *Graph) AutoFillNames() map[string]bool {
	out := make(map[string]bool)
	g.Walk(func(n *Node) bool {
		if n.AutoFill && n.Origin.Role != RolePad {
			out[n.Origin.Name] = true
		}
		return true
	})
	return out
}
