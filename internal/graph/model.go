// Package graph defines the message format graph of ProtoObf
// (Duchêne et al., "Specification-based Protocol Obfuscation", DSN 2018).
//
// A message format graph describes every abstract syntax tree (AST) that is
// compliant with a protocol message-format specification. A node of the
// graph describes a node of the corresponding ASTs. Nodes are typed
// (Terminal, Sequence, Optional, Repetition, Tabular) and carry a boundary
// method (Fixed, Delimited, Length, Counter, End, Delegated) that defines
// how the extent of the corresponding field is determined on the wire.
//
// Obfuscating transformations (package internal/transform) rewrite this
// graph; provenance annotations (Origin, Combine, Ops) let accessors keep
// exposing the original, non-obfuscated field names while the wire format
// is transformed.
package graph

import (
	"fmt"
	"strings"
)

// Kind is the type of a message format graph node (paper §V-A).
type Kind int

const (
	// Terminal nodes carry user data or message-related information
	// (e.g. the size of another node).
	Terminal Kind = iota + 1
	// Sequence nodes contain an ordered sequence of sub-nodes.
	Sequence
	// Optional nodes are present or absent depending on the value of
	// another node in the AST.
	Optional
	// Repetition nodes consist of a repetition of the same sub-node; the
	// number of repetitions is determined by the node's boundary
	// (a terminating delimiter or the end of the enclosing region).
	Repetition
	// Tabular nodes consist of a repetition of the same sub-node whose
	// count is given by another node (the Counter boundary reference).
	Tabular
)

// String implements fmt.Stringer using the paper's notation.
func (k Kind) String() string {
	switch k {
	case Terminal:
		return "Te"
	case Sequence:
		return "S"
	case Optional:
		return "O"
	case Repetition:
		return "R"
	case Tabular:
		return "Ta"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// BoundaryKind is the method used to define the length of a field (§V-A).
type BoundaryKind int

const (
	// Fixed size, defined in the specification.
	Fixed BoundaryKind = iota + 1
	// Delimited fields end with a predefined byte sequence
	// (for instance "\r\n" in HTTP).
	Delimited
	// Length fields have their length defined by another node.
	Length
	// Counter applies to Tabular nodes: the number of repetitions of the
	// sub-node is defined by another node.
	Counter
	// End fields correspond to the remaining of the enclosing region.
	End
	// Delegated means the length of the field is the sum of the lengths
	// of its sub-nodes.
	Delegated
)

// String implements fmt.Stringer using the paper's notation.
func (b BoundaryKind) String() string {
	switch b {
	case Fixed:
		return "F"
	case Delimited:
		return "De"
	case Length:
		return "L"
	case Counter:
		return "C"
	case End:
		return "E"
	case Delegated:
		return "Dgt"
	default:
		return fmt.Sprintf("BoundaryKind(%d)", int(b))
	}
}

// Boundary describes how the extent of a node is determined on the wire.
type Boundary struct {
	Kind BoundaryKind
	// Size is the byte size for Fixed boundaries.
	Size int
	// Delim is the terminating byte sequence for Delimited boundaries.
	// For Repetition nodes it is the terminator of the whole repetition;
	// for Terminal and Sequence nodes it follows the node's content.
	Delim []byte
	// Ref names the node holding the length (Length) or the repetition
	// count (Counter). The referenced node must be an auto-filled
	// unsigned integer Terminal parsed before any dependent node.
	Ref string
}

func (b Boundary) String() string {
	switch b.Kind {
	case Fixed:
		return fmt.Sprintf("F(%d)", b.Size)
	case Delimited:
		return fmt.Sprintf("De(%q)", string(b.Delim))
	case Length:
		return fmt.Sprintf("L(%s)", b.Ref)
	case Counter:
		return fmt.Sprintf("C(%s)", b.Ref)
	default:
		return b.Kind.String()
	}
}

// Enc is the value encoding of a Terminal node.
type Enc int

const (
	// EncBytes terminals hold raw bytes.
	EncBytes Enc = iota + 1
	// EncUint terminals hold a big-endian unsigned integer whose width is
	// the Fixed size of the node (1, 2, 4 or 8 bytes).
	EncUint
	// EncASCII terminals hold an unsigned integer encoded as a decimal
	// ASCII string (e.g. HTTP Content-Length).
	EncASCII
)

func (e Enc) String() string {
	switch e {
	case EncBytes:
		return "bytes"
	case EncUint:
		return "uint"
	case EncASCII:
		return "ascii"
	default:
		return fmt.Sprintf("Enc(%d)", int(e))
	}
}

// CondOp is the comparison operator of an Optional node's presence predicate.
type CondOp int

const (
	// CondEq: the optional sub-tree is present iff the referenced node's
	// value equals the predicate value.
	CondEq CondOp = iota + 1
	// CondNe: present iff the referenced value differs.
	CondNe
)

// Cond is the presence predicate of an Optional node: the node is present
// in the AST depending on the value of another node (paper §V-A).
type Cond struct {
	Ref string // name of the original node whose value is tested
	Op  CondOp
	// UintVal is compared for EncUint/EncASCII references, BytesVal for
	// EncBytes references.
	UintVal  uint64
	BytesVal []byte
	IsBytes  bool
}

func (c Cond) String() string {
	op := "=="
	if c.Op == CondNe {
		op = "!="
	}
	if c.IsBytes {
		return fmt.Sprintf("%s %s %q", c.Ref, op, string(c.BytesVal))
	}
	return fmt.Sprintf("%s %s %d", c.Ref, op, c.UintVal)
}

// Role records how an obfuscated node relates to the original node it
// derives from. It is the provenance side of a transformation.
type Role int

const (
	// RoleWhole: the node carries the (possibly transformed) value of the
	// original node named by Origin.Name.
	RoleWhole Role = iota + 1
	// RoleSplitLeft / RoleSplitRight: the node carries one half of a
	// Split* transformation; the parent Sequence carries the Combine
	// recipe and the RoleWhole provenance.
	RoleSplitLeft
	RoleSplitRight
	// RoleLengthOf: a synthetic length field introduced by
	// BoundaryChange; auto-filled at serialization time.
	RoleLengthOf
	// RolePad: a synthetic padding field introduced by PadInsert; the
	// value is random and ignored by the parser.
	RolePad
	// RoleGroup: a synthetic structural grouping (e.g. the Sequence
	// wrapping a BoundaryChange pair or a TabSplit pair).
	RoleGroup
)

func (r Role) String() string {
	switch r {
	case RoleWhole:
		return "whole"
	case RoleSplitLeft:
		return "split-left"
	case RoleSplitRight:
		return "split-right"
	case RoleLengthOf:
		return "length-of"
	case RolePad:
		return "pad"
	case RoleGroup:
		return "group"
	default:
		return fmt.Sprintf("Role(%d)", int(r))
	}
}

// Origin is the provenance annotation of a node: which original
// (pre-obfuscation) node it derives from, and in which role.
type Origin struct {
	// Name of the original node. Empty for purely synthetic nodes (pads).
	Name string
	Role Role
}

// OpKind is an invertible value operation applied to a terminal value
// (aggregation transformations of the paper: ConstAdd, ConstSub, ConstXor).
type OpKind int

const (
	// OpAdd adds K modulo 2^(8*width) (EncUint/EncASCII).
	OpAdd OpKind = iota + 1
	// OpSub subtracts K modulo 2^(8*width).
	OpSub
	// OpXor xors with K.
	OpXor
	// OpByteAdd adds the cycled key KB byte-wise modulo 256 (EncBytes).
	OpByteAdd
	// OpByteXor xors with the cycled key KB byte-wise (EncBytes).
	OpByteXor
)

func (k OpKind) String() string {
	switch k {
	case OpAdd:
		return "add"
	case OpSub:
		return "sub"
	case OpXor:
		return "xor"
	case OpByteAdd:
		return "byteadd"
	case OpByteXor:
		return "bytexor"
	default:
		return fmt.Sprintf("OpKind(%d)", int(k))
	}
}

// ValueOp is one step of the encode-direction value pipeline of a node.
// Setters apply Ops in order; getters and the parser invert them in
// reverse order.
type ValueOp struct {
	Kind OpKind
	K    uint64 // constant for OpAdd/OpSub/OpXor
	KB   []byte // key for OpByteAdd/OpByteXor
}

func (o ValueOp) String() string {
	if len(o.KB) > 0 {
		return fmt.Sprintf("%s(%x)", o.Kind, o.KB)
	}
	return fmt.Sprintf("%s(%d)", o.Kind, o.K)
}

// CombineKind tells how the two halves of a Split* transformation
// recombine into the original value.
type CombineKind int

const (
	// CombAdd: v = left + right (mod 2^(8*width)).
	CombAdd CombineKind = iota + 1
	// CombSub: v = left - right (mod 2^(8*width)).
	CombSub
	// CombXor: v = left ^ right.
	CombXor
	// CombCat: v = concat(left, right) at the byte level.
	CombCat
)

func (c CombineKind) String() string {
	switch c {
	case CombAdd:
		return "add"
	case CombSub:
		return "sub"
	case CombXor:
		return "xor"
	case CombCat:
		return "cat"
	default:
		return fmt.Sprintf("CombineKind(%d)", int(c))
	}
}

// Combine is carried by the Sequence node that replaces a split Terminal.
type Combine struct {
	Kind CombineKind
	// Width is the byte width of the original integer value
	// (CombAdd/CombSub/CombXor).
	Width int
	// SplitAt is the byte offset of the cut (CombCat).
	SplitAt int
}

// RepPair is carried by the Sequence produced by RepSplit: the original
// Repetition of Sequence{A,B} became A^n B^n, with n derived from the
// enclosing region size and the static element sizes.
type RepPair struct {
	SizeA int // static byte size of one A element
	SizeB int // static byte size of one B element
}

// Node is a node of the message format graph. A node is defined by a name,
// a type, a list of sub-nodes, a parent and a boundary method (§V-A),
// plus the obfuscation annotations maintained by package transform.
type Node struct {
	Name     string
	Kind     Kind
	Boundary Boundary
	// Enc is the value encoding (Terminal only).
	Enc Enc
	// MinLen is the minimum byte length the application guarantees for
	// the values of a variable-length Terminal. Transformations that cut
	// a prefix (SplitCat) only apply when MinLen permits.
	MinLen int
	// Cond is the presence predicate (Optional only).
	Cond Cond
	// Children: Sequence has 1..n, Optional/Repetition/Tabular exactly 1,
	// Terminal none.
	Children []*Node
	Parent   *Node

	// Obfuscation annotations.

	// Origin records provenance; for nodes of the original graph it is
	// {Name: Name, Role: RoleWhole}.
	Origin Origin
	// Ops is the encode-direction value pipeline (ConstAdd/Sub/Xor...).
	Ops []ValueOp
	// Comb, when non-nil, marks a Sequence that recombines into one
	// original terminal value (Split* transformations).
	Comb *Combine
	// Reversed marks a node serialized right-to-left (ReadFromEnd).
	Reversed bool
	// Pair, when non-nil, marks a RepSplit pair Sequence.
	Pair *RepPair
	// AutoFill marks Terminals whose value is computed by the serializer
	// (Length/Counter targets and synthetic RoleLengthOf fields).
	AutoFill bool
}

// IsLeaf reports whether the node is a Terminal.
func (n *Node) IsLeaf() bool { return n.Kind == Terminal }

// FindRoleHolder returns the shallowest descendant of n (n excluded)
// whose Origin.Role is role. The search stops at matches and never enters
// the items of Repetition/Tabular containers, so it sees through
// RoleGroup wrappers (e.g. BoundaryChange) without crossing into nested
// splits or items.
func FindRoleHolder(n *Node, role Role) *Node {
	var rec func(cur *Node) *Node
	rec = func(cur *Node) *Node {
		if cur.Origin.Role == role {
			return cur
		}
		// Sealed sub-units: a node bearing the opposite split role, and
		// any combine sequence (its children are the halves of a
		// different, nested split).
		if cur.Origin.Role == RoleSplitLeft || cur.Origin.Role == RoleSplitRight || cur.Comb != nil {
			return nil
		}
		if cur.Kind == Repetition || cur.Kind == Tabular {
			return nil
		}
		for _, c := range cur.Children {
			if hit := rec(c); hit != nil {
				return hit
			}
		}
		return nil
	}
	for _, c := range n.Children {
		if hit := rec(c); hit != nil {
			return hit
		}
	}
	return nil
}

// IsSplitPair reports whether n is the pair Sequence introduced by
// TabSplit or RepSplit: two repeated containers deriving from the same
// original node with split roles, possibly wrapped by later group
// transformations. Accessors pair their items by index.
func (n *Node) IsSplitPair() bool {
	if n.Kind != Sequence || n.Comb != nil {
		return false
	}
	if n.Pair != nil {
		return true
	}
	// Only the pair Sequence itself (RoleWhole) qualifies — RoleGroup
	// wrappers around a pair must stay transparent.
	if n.Origin.Role != RoleWhole {
		return false
	}
	l := FindRoleHolder(n, RoleSplitLeft)
	r := FindRoleHolder(n, RoleSplitRight)
	container := func(c *Node) bool {
		return c != nil && (c.Kind == Tabular || c.Kind == Repetition)
	}
	return container(l) && container(r) &&
		l.Origin.Name == n.Origin.Name && r.Origin.Name == n.Origin.Name
}

// Child returns the single child of Optional/Repetition/Tabular nodes.
func (n *Node) Child() *Node {
	if len(n.Children) != 1 {
		return nil
	}
	return n.Children[0]
}

// Path returns the slash-separated path of node names from the root.
func (n *Node) Path() string {
	var parts []string
	for cur := n; cur != nil; cur = cur.Parent {
		parts = append(parts, cur.Name)
	}
	for i, j := 0, len(parts)-1; i < j; i, j = i+1, j-1 {
		parts[i], parts[j] = parts[j], parts[i]
	}
	return strings.Join(parts, "/")
}

// Graph is a message format graph: a tree of Nodes with name references
// (Length, Counter, Optional predicates) across the tree.
type Graph struct {
	// ProtocolName is the name declared in the specification.
	ProtocolName string
	Root         *Node

	// nextID provides fresh unique suffixes for synthetic node names.
	nextID int
}

// New creates a graph with the given root. Origin annotations are
// initialized so that every node is its own provenance.
func New(protocol string, root *Node) *Graph {
	g := &Graph{ProtocolName: protocol, Root: root}
	g.Walk(func(n *Node) bool {
		if n.Origin == (Origin{}) {
			n.Origin = Origin{Name: n.Name, Role: RoleWhole}
		}
		return true
	})
	g.Rebuild()
	return g
}

// Walk visits nodes depth-first, parents before children, in child order.
// The visit function returns false to prune the subtree.
func (g *Graph) Walk(visit func(*Node) bool) {
	var rec func(*Node)
	rec = func(n *Node) {
		if n == nil || !visit(n) {
			return
		}
		for _, c := range n.Children {
			rec(c)
		}
	}
	rec(g.Root)
}

// Nodes returns all nodes in depth-first order.
func (g *Graph) Nodes() []*Node {
	var out []*Node
	g.Walk(func(n *Node) bool {
		out = append(out, n)
		return true
	})
	return out
}

// NodeCount returns the number of nodes in the graph.
func (g *Graph) NodeCount() int {
	count := 0
	g.Walk(func(*Node) bool { count++; return true })
	return count
}

// Find returns the node with the given name, or nil.
func (g *Graph) Find(name string) *Node {
	var found *Node
	g.Walk(func(n *Node) bool {
		if n.Name == name {
			found = n
			return false
		}
		return found == nil
	})
	return found
}

// FindOriginal returns the node carrying the value of the original node
// named name: the unique node with Origin{Name: name, Role: RoleWhole}.
// After Split* transformations this is the Combine sequence. Synthetic
// length fields introduced by BoundaryChange (RoleLengthOf, named after
// themselves) resolve the same way so that boundary references work.
func (g *Graph) FindOriginal(name string) *Node {
	var found *Node
	g.Walk(func(n *Node) bool {
		if n.Origin.Name == name && (n.Origin.Role == RoleWhole || n.Origin.Role == RoleLengthOf) {
			found = n
			return false
		}
		return found == nil
	})
	return found
}

// Rebuild restores parent pointers after structural edits.
func (g *Graph) Rebuild() {
	var rec func(n *Node)
	rec = func(n *Node) {
		for _, c := range n.Children {
			c.Parent = n
			rec(c)
		}
	}
	if g.Root != nil {
		g.Root.Parent = nil
		rec(g.Root)
	}
}

// FreshName returns a unique node name derived from base.
func (g *Graph) FreshName(base string) string {
	for {
		g.nextID++
		name := fmt.Sprintf("%s$%d", base, g.nextID)
		if g.Find(name) == nil {
			return name
		}
	}
}

// Replace substitutes old with repl in old's parent (or as root).
// Parent pointers are rebuilt.
func (g *Graph) Replace(old, repl *Node) error {
	if old == g.Root {
		g.Root = repl
		g.Rebuild()
		return nil
	}
	p := old.Parent
	if p == nil {
		return fmt.Errorf("graph: node %q has no parent and is not root", old.Name)
	}
	for i, c := range p.Children {
		if c == old {
			p.Children[i] = repl
			g.Rebuild()
			return nil
		}
	}
	return fmt.Errorf("graph: node %q not found among children of %q", old.Name, p.Name)
}

// Clone returns a deep copy of the graph.
func (g *Graph) Clone() *Graph {
	ng := &Graph{ProtocolName: g.ProtocolName, nextID: g.nextID}
	ng.Root = cloneNode(g.Root)
	ng.Rebuild()
	return ng
}

func cloneNode(n *Node) *Node {
	if n == nil {
		return nil
	}
	c := &Node{
		Name:     n.Name,
		Kind:     n.Kind,
		Boundary: n.Boundary,
		Enc:      n.Enc,
		MinLen:   n.MinLen,
		Cond:     n.Cond,
		Origin:   n.Origin,
		Reversed: n.Reversed,
		AutoFill: n.AutoFill,
	}
	c.Boundary.Delim = append([]byte(nil), n.Boundary.Delim...)
	c.Cond.BytesVal = append([]byte(nil), n.Cond.BytesVal...)
	if len(n.Ops) > 0 {
		c.Ops = make([]ValueOp, len(n.Ops))
		for i, op := range n.Ops {
			c.Ops[i] = op
			c.Ops[i].KB = append([]byte(nil), op.KB...)
		}
	}
	if n.Comb != nil {
		comb := *n.Comb
		c.Comb = &comb
	}
	if n.Pair != nil {
		pair := *n.Pair
		c.Pair = &pair
	}
	for _, ch := range n.Children {
		c.Children = append(c.Children, cloneNode(ch))
	}
	return c
}
