package graph

import (
	"strings"
	"testing"
)

// expectInvalid asserts that mutate breaks the sample graph in a way the
// validator reports, with a message containing want.
func expectInvalid(t *testing.T, want string, mutate func(g *Graph)) {
	t.Helper()
	g := sampleGraph(t)
	mutate(g)
	err := g.Validate()
	if err == nil {
		t.Fatalf("graph accepted, want error containing %q", want)
	}
	if !strings.Contains(err.Error(), want) {
		t.Fatalf("error %q does not contain %q", err, want)
	}
}

func TestValidateDuplicateName(t *testing.T) {
	expectInvalid(t, "duplicate name", func(g *Graph) {
		g.Find("hval").Name = "hname"
	})
}

func TestValidateArity(t *testing.T) {
	expectInvalid(t, "terminal with", func(g *Graph) {
		g.Find("kind").Children = []*Node{term("sub", EncUint, fixed(1))}
	})
	expectInvalid(t, "must have exactly one child", func(g *Graph) {
		items := g.Find("items")
		items.Children = append(items.Children, term("extra2", EncUint, fixed(1)))
	})
	expectInvalid(t, "sequence without children", func(g *Graph) {
		g.Find("hdr").Children = nil
	})
}

func TestValidateBoundaryRules(t *testing.T) {
	expectInvalid(t, "fixed boundary with size 0", func(g *Graph) {
		g.Find("magic").Boundary.Size = 0
	})
	expectInvalid(t, "empty delimiter", func(g *Graph) {
		g.Find("name").Boundary.Delim = nil
	})
	expectInvalid(t, "not allowed on", func(g *Graph) {
		g.Find("payload").Boundary = fixed(4)
	})
	expectInvalid(t, "not allowed on", func(g *Graph) {
		g.Find("items").Boundary = Boundary{Kind: End}
	})
	expectInvalid(t, "without reference", func(g *Graph) {
		g.Find("payload").Boundary = Boundary{Kind: Length}
	})
}

func TestValidateTerminalRules(t *testing.T) {
	expectInvalid(t, "uint terminal requires a fixed boundary", func(g *Graph) {
		g.Find("kind").Boundary = delim(";")
	})
	expectInvalid(t, "width 3 not in", func(g *Graph) {
		g.Find("plen").Boundary.Size = 3
	})
	expectInvalid(t, "without encoding", func(g *Graph) {
		g.Find("magic").Enc = 0
	})
	expectInvalid(t, "integer op", func(g *Graph) {
		g.Find("magic").Ops = []ValueOp{{Kind: OpAdd, K: 3}}
	})
	expectInvalid(t, "empty key", func(g *Graph) {
		g.Find("name").Ops = []ValueOp{{Kind: OpByteXor}}
	})
}

func TestValidateRefRules(t *testing.T) {
	expectInvalid(t, "does not resolve", func(g *Graph) {
		g.Find("payload").Boundary.Ref = "ghost"
	})
	expectInvalid(t, "is not an integer field", func(g *Graph) {
		g.Find("payload").Boundary.Ref = "magic"
	})
	expectInvalid(t, "is not auto-filled", func(g *Graph) {
		g.Find("plen").AutoFill = false
	})
	// A length field moved after its dependent must be rejected.
	expectInvalid(t, "parses at or after", func(g *Graph) {
		root := g.Root
		// move plen (index 2) after payload (index 3)
		root.Children[2], root.Children[3] = root.Children[3], root.Children[2]
		g.Rebuild()
	})
}

func TestValidateCondRules(t *testing.T) {
	expectInvalid(t, "presence reference \"ghost\"", func(g *Graph) {
		g.Find("maybe").Cond.Ref = "ghost"
	})
	expectInvalid(t, "compares an integer but", func(g *Graph) {
		g.Find("maybe").Cond.Ref = "magic"
	})
	expectInvalid(t, "is auto-filled", func(g *Graph) {
		g.Find("maybe").Cond.Ref = "plen"
	})
	expectInvalid(t, "compares bytes", func(g *Graph) {
		c := &g.Find("maybe").Cond
		c.IsBytes = true
		c.BytesVal = []byte("x")
	})
}

func TestValidateEndExtent(t *testing.T) {
	// An End-bounded terminal that is not last in its sequence.
	expectInvalid(t, "not last in sequence", func(g *Graph) {
		root := g.Root
		// move body (last) before hdrs
		n := len(root.Children)
		root.Children[n-1], root.Children[n-2] = root.Children[n-2], root.Children[n-1]
		g.Rebuild()
	})
	// An End-bounded node inside a repetition would eat every item.
	expectInvalid(t, "would consume all items", func(g *Graph) {
		g.Find("hval").Boundary = Boundary{Kind: End}
		// keep it last in hdr: drop hname
		hdr := g.Find("hdr")
		hdr.Children = hdr.Children[1:]
		g.Rebuild()
	})
	// An End-bounded node directly inside a delimited sequence.
	expectInvalid(t, "inside delimited region", func(g *Graph) {
		s := seq("ds", term("v", EncBytes, Boundary{Kind: End}))
		s.Boundary = delim("$")
		root := g.Root
		root.Children = append(root.Children[:5:5], s)
		// body was End and last; now ds is last, and v is End inside ds.
		g.Rebuild()
	})
}

func TestValidateReversedExtent(t *testing.T) {
	// Reversing a delimited terminal has no computable extent.
	expectInvalid(t, "no computable extent", func(g *Graph) {
		g.Find("name").Reversed = true
	})
	// Reversing a fixed terminal is fine.
	g := sampleGraph(t)
	g.Find("magic").Reversed = true
	if err := g.Validate(); err != nil {
		t.Errorf("reversed fixed terminal rejected: %v", err)
	}
	// Reversing a Length-bounded sequence is fine.
	g = sampleGraph(t)
	g.Find("payload").Reversed = true
	if err := g.Validate(); err != nil {
		t.Errorf("reversed length-bounded sequence rejected: %v", err)
	}
	// Reversing the End-bounded final terminal is fine (region = message).
	g = sampleGraph(t)
	g.Find("body").Reversed = true
	if err := g.Validate(); err != nil {
		t.Errorf("reversed end terminal rejected: %v", err)
	}
}

func TestValidateRepPrefixSafety(t *testing.T) {
	// Pad at item start of a delimited repetition.
	expectInvalid(t, "starts with pad", func(g *Graph) {
		hdr := g.Find("hdr")
		pad := term("pad1", EncBytes, fixed(2))
		pad.Origin = Origin{Role: RolePad}
		hdr.Children = append([]*Node{pad}, hdr.Children...)
		g.Rebuild()
	})
	// Integer field at item start.
	expectInvalid(t, "starts with integer field", func(g *Graph) {
		hdr := g.Find("hdr")
		hdr.Children = append([]*Node{term("n1", EncUint, fixed(2))}, hdr.Children...)
		g.Rebuild()
	})
	// Transformed field at item start.
	expectInvalid(t, "starts with transformed field", func(g *Graph) {
		g.Find("hname").Ops = []ValueOp{{Kind: OpByteXor, KB: []byte{1}}}
	})
	// Reversed region at item start.
	expectInvalid(t, "reversed region", func(g *Graph) {
		hdr := g.Find("hdr")
		f := term("f1", EncBytes, fixed(2))
		f.Reversed = true
		hdr.Children = append([]*Node{f}, hdr.Children...)
		g.Rebuild()
	})
	// Optional subtree at item start.
	expectInvalid(t, "starts with optional subtree", func(g *Graph) {
		hdr := g.Find("hdr")
		opt := &Node{Name: "o1", Kind: Optional, Boundary: Boundary{Kind: Delegated},
			Cond:     Cond{Ref: "kind", Op: CondEq, UintVal: 1},
			Children: []*Node{term("ov", EncBytes, fixed(1))}}
		hdr.Children = append([]*Node{opt}, hdr.Children...)
		g.Rebuild()
	})
}

func TestValidateCombRules(t *testing.T) {
	expectInvalid(t, "two-child sequence", func(g *Graph) {
		g.Find("payload").Comb = &Combine{Kind: CombAdd, Width: 2}
	})
	expectInvalid(t, "combine width", func(g *Graph) {
		s := g.Find("hdr")
		s.Comb = &Combine{Kind: CombAdd, Width: 0}
	})
	expectInvalid(t, "cat split offset", func(g *Graph) {
		s := g.Find("hdr")
		s.Comb = &Combine{Kind: CombCat}
	})
}

func TestValidateAcceptsSample(t *testing.T) {
	g := sampleGraph(t)
	if err := g.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
}

func TestValidationErrorFormat(t *testing.T) {
	e := &ValidationError{Node: "x", Msg: "boom"}
	if !strings.Contains(e.Error(), `node "x"`) {
		t.Errorf("Error() = %q", e.Error())
	}
	e2 := &ValidationError{Msg: "top"}
	if e2.Error() != "graph: top" {
		t.Errorf("Error() = %q", e2.Error())
	}
}
