package graph

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestUintBERoundTrip(t *testing.T) {
	cases := []struct {
		u     uint64
		width int
		wire  []byte
	}{
		{0, 1, []byte{0}},
		{0xAB, 1, []byte{0xAB}},
		{0x0102, 2, []byte{1, 2}},
		{0xDEADBEEF, 4, []byte{0xDE, 0xAD, 0xBE, 0xEF}},
		{1, 8, []byte{0, 0, 0, 0, 0, 0, 0, 1}},
	}
	for _, c := range cases {
		got := EncodeUintBE(c.u, c.width)
		if !bytes.Equal(got, c.wire) {
			t.Errorf("EncodeUintBE(%#x,%d) = %x, want %x", c.u, c.width, got, c.wire)
		}
		if back := DecodeUintBE(got); back != c.u {
			t.Errorf("DecodeUintBE(%x) = %#x, want %#x", got, back, c.u)
		}
	}
}

func TestEncodeTerminal(t *testing.T) {
	b, err := EncodeTerminal(EncUint, 2, UintVal(0x1234))
	if err != nil || !bytes.Equal(b, []byte{0x12, 0x34}) {
		t.Errorf("EncodeTerminal uint = %x, %v", b, err)
	}
	if _, err := EncodeTerminal(EncUint, 1, UintVal(256)); err == nil {
		t.Error("overflow not detected")
	}
	if _, err := EncodeTerminal(EncUint, 2, BytesVal([]byte("x"))); err == nil {
		t.Error("type mismatch not detected")
	}
	b, err = EncodeTerminal(EncASCII, 0, UintVal(1234))
	if err != nil || string(b) != "1234" {
		t.Errorf("EncodeTerminal ascii = %q, %v", b, err)
	}
	b, err = EncodeTerminal(EncBytes, 0, BytesVal([]byte("hi")))
	if err != nil || string(b) != "hi" {
		t.Errorf("EncodeTerminal bytes = %q, %v", b, err)
	}
}

func TestDecodeTerminal(t *testing.T) {
	v, err := DecodeTerminal(EncASCII, []byte("42"))
	if err != nil || v.U != 42 {
		t.Errorf("DecodeTerminal ascii = %v, %v", v, err)
	}
	if _, err := DecodeTerminal(EncASCII, []byte("4x")); err == nil {
		t.Error("bad ascii integer accepted")
	}
	if _, err := DecodeTerminal(EncUint, nil); err == nil {
		t.Error("empty uint accepted")
	}
}

// TestOpsInvertible is a property test: for every op pipeline, value and
// width, InvertOps(ApplyOps(v)) == v.
func TestOpsInvertible(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	f := func(raw uint64, kAdd, kXor uint64, key []byte) bool {
		if len(key) == 0 {
			key = []byte{0x5A}
		}
		width := 1 << (rng.Intn(4)) // 1,2,4,8
		v := UintVal(raw & maskFor(width))
		ops := []ValueOp{
			{Kind: OpAdd, K: kAdd},
			{Kind: OpXor, K: kXor},
			{Kind: OpSub, K: kAdd ^ kXor},
		}
		enc, err := ApplyOps(ops, width, v)
		if err != nil {
			return false
		}
		dec, err := InvertOps(ops, width, enc)
		if err != nil {
			return false
		}
		if !dec.Equal(v) {
			return false
		}
		// Byte pipeline on random bytes.
		bv := BytesVal(key)
		bops := []ValueOp{{Kind: OpByteAdd, KB: []byte{1, 2, 3}}, {Kind: OpByteXor, KB: key}}
		benc, err := ApplyOps(bops, 0, bv)
		if err != nil {
			return false
		}
		bdec, err := InvertOps(bops, 0, benc)
		return err == nil && bdec.Equal(bv)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// TestSplitCombineInverse: CombineVals(SplitVals(v, r)) == v for all
// combine kinds, values and random material.
func TestSplitCombineInverse(t *testing.T) {
	f := func(raw, random uint64, blob []byte) bool {
		for _, kind := range []CombineKind{CombAdd, CombSub, CombXor} {
			for _, width := range []int{1, 2, 4, 8} {
				c := Combine{Kind: kind, Width: width}
				v := UintVal(raw & maskFor(width))
				l, r, err := SplitVals(c, v, random)
				if err != nil {
					return false
				}
				back, err := CombineVals(c, l, r)
				if err != nil || !back.Equal(v) {
					return false
				}
			}
		}
		if len(blob) >= 2 {
			c := Combine{Kind: CombCat, SplitAt: 1 + int(random%uint64(len(blob)-1))}
			v := BytesVal(blob)
			l, r, err := SplitVals(c, v, random)
			if err != nil {
				return false
			}
			back, err := CombineVals(c, l, r)
			if err != nil || !back.Equal(v) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestSplitValsErrors(t *testing.T) {
	if _, _, err := SplitVals(Combine{Kind: CombCat, SplitAt: 5}, BytesVal([]byte("ab")), 0); err == nil {
		t.Error("short cat split accepted")
	}
	if _, _, err := SplitVals(Combine{Kind: CombAdd, Width: 2}, BytesVal([]byte("ab")), 0); err == nil {
		t.Error("arithmetic split of bytes accepted")
	}
	if _, err := CombineVals(Combine{Kind: CombCat}, UintVal(1), UintVal(2)); err == nil {
		t.Error("cat combine of ints accepted")
	}
}

func TestValEqualAndString(t *testing.T) {
	if !UintVal(5).Equal(UintVal(5)) || UintVal(5).Equal(UintVal(6)) {
		t.Error("uint equality broken")
	}
	if !BytesVal([]byte("a")).Equal(BytesVal([]byte("a"))) || BytesVal([]byte("a")).Equal(UintVal(97)) {
		t.Error("bytes equality broken")
	}
	if UintVal(7).String() != "7" || BytesVal([]byte("x")).String() != `"x"` {
		t.Error("Val.String format changed")
	}
}
