package graph

import (
	"strings"
	"testing"
)

// term builds a terminal node for tests.
func term(name string, enc Enc, b Boundary) *Node {
	return &Node{Name: name, Kind: Terminal, Enc: enc, Boundary: b}
}

func seq(name string, children ...*Node) *Node {
	return &Node{Name: name, Kind: Sequence, Boundary: Boundary{Kind: Delegated}, Children: children}
}

func fixed(n int) Boundary       { return Boundary{Kind: Fixed, Size: n} }
func delim(d string) Boundary    { return Boundary{Kind: Delimited, Delim: []byte(d)} }
func length(ref string) Boundary { return Boundary{Kind: Length, Ref: ref} }

// sampleGraph returns a small but representative graph exercising every
// node kind: fixed/uint terminals, a length reference, an optional guarded
// by a field value, a tabular with counter, and a delimited repetition.
func sampleGraph(t testing.TB) *Graph {
	t.Helper()
	lenField := term("plen", EncUint, fixed(2))
	lenField.AutoFill = true
	cnt := term("cnt", EncUint, fixed(1))
	cnt.AutoFill = true
	root := seq("msg",
		term("magic", EncBytes, fixed(2)),
		term("kind", EncUint, fixed(1)),
		lenField,
		&Node{Name: "payload", Kind: Sequence, Boundary: length("plen"), Children: []*Node{
			term("name", EncBytes, delim(";")),
			cnt,
			&Node{Name: "items", Kind: Tabular, Boundary: Boundary{Kind: Counter, Ref: "cnt"}, Children: []*Node{
				term("item", EncUint, fixed(2)),
			}},
			&Node{Name: "maybe", Kind: Optional, Boundary: Boundary{Kind: Delegated},
				Cond: Cond{Ref: "kind", Op: CondEq, UintVal: 7},
				Children: []*Node{
					term("extra", EncBytes, delim("|")),
				}},
		}},
		&Node{Name: "hdrs", Kind: Repetition, Boundary: delim("\r\n"), Children: []*Node{
			seq("hdr",
				func() *Node { n := term("hname", EncBytes, delim(": ")); n.MinLen = 1; return n }(),
				term("hval", EncBytes, delim("\r\n")),
			),
		}},
		term("body", EncBytes, Boundary{Kind: End}),
	)
	root.Boundary = Boundary{Kind: End}
	g := New("sample", root)
	if err := g.Validate(); err != nil {
		t.Fatalf("sample graph does not validate: %v", err)
	}
	return g
}

func TestSampleGraphShape(t *testing.T) {
	g := sampleGraph(t)
	if got := g.NodeCount(); got != 16 {
		t.Errorf("NodeCount = %d, want 16", got)
	}
	if g.Find("items") == nil || g.Find("nope") != nil {
		t.Error("Find misbehaves")
	}
	n := g.Find("hname")
	if got := n.Path(); got != "msg/hdrs/hdr/hname" {
		t.Errorf("Path = %q", got)
	}
	if g.FindOriginal("plen") == nil {
		t.Error("FindOriginal(plen) = nil")
	}
	auto := g.AutoFillNames()
	if !auto["plen"] || !auto["cnt"] || auto["kind"] {
		t.Errorf("AutoFillNames = %v", auto)
	}
}

func TestCloneIsDeep(t *testing.T) {
	g := sampleGraph(t)
	c := g.Clone()
	if err := c.Validate(); err != nil {
		t.Fatalf("clone does not validate: %v", err)
	}
	c.Find("kind").Boundary.Size = 4
	c.Find("name").Boundary.Delim[0] = '!'
	if g.Find("kind").Boundary.Size != 1 {
		t.Error("clone shares boundary struct")
	}
	if g.Find("name").Boundary.Delim[0] != ';' {
		t.Error("clone shares delimiter bytes")
	}
	if c.NodeCount() != g.NodeCount() {
		t.Error("clone has different node count")
	}
}

func TestReplaceNode(t *testing.T) {
	g := sampleGraph(t)
	old := g.Find("kind")
	repl := seq("kindwrap", term("k1", EncUint, fixed(1)))
	if err := g.Replace(old, repl); err != nil {
		t.Fatalf("Replace: %v", err)
	}
	if g.Find("kind") != nil {
		t.Error("old node still present")
	}
	if got := g.Find("k1").Parent.Name; got != "kindwrap" {
		t.Errorf("parent of k1 = %q", got)
	}
	// Replacing the root works too.
	root2 := seq("newroot", term("x", EncBytes, Boundary{Kind: End}))
	root2.Boundary = Boundary{Kind: End}
	if err := g.Replace(g.Root, root2); err != nil {
		t.Fatalf("Replace root: %v", err)
	}
	if g.Root.Name != "newroot" {
		t.Errorf("root = %q", g.Root.Name)
	}
}

func TestFreshNameUnique(t *testing.T) {
	g := sampleGraph(t)
	seen := map[string]bool{}
	for i := 0; i < 50; i++ {
		n := g.FreshName("kind")
		if seen[n] {
			t.Fatalf("FreshName returned duplicate %q", n)
		}
		if g.Find(n) != nil {
			t.Fatalf("FreshName returned existing name %q", n)
		}
		seen[n] = true
	}
}

func TestStaticSize(t *testing.T) {
	g := sampleGraph(t)
	cases := []struct {
		node string
		size int
		ok   bool
	}{
		{"magic", 2, true},
		{"kind", 1, true},
		{"plen", 2, true},
		{"name", 0, false},  // delimited
		{"items", 0, false}, // count varies
		{"payload", 0, false},
		{"item", 2, true},
	}
	for _, c := range cases {
		got, ok := StaticSize(g.Find(c.node))
		if ok != c.ok || (ok && got != c.size) {
			t.Errorf("StaticSize(%s) = %d,%v want %d,%v", c.node, got, ok, c.size, c.ok)
		}
	}
	// A sequence of fixed terminals has a static size including its
	// trailing delimiter.
	s := seq("s", term("a", EncUint, fixed(2)), term("b", EncBytes, fixed(3)))
	s.Boundary = delim("##")
	if got, ok := StaticSize(s); !ok || got != 7 {
		t.Errorf("StaticSize(seq) = %d,%v want 7,true", got, ok)
	}
}

func TestLeavesOrder(t *testing.T) {
	g := sampleGraph(t)
	var names []string
	for _, l := range Leaves(g.Root) {
		names = append(names, l.Name)
	}
	want := "magic kind plen name cnt item extra hname hval body"
	if got := strings.Join(names, " "); got != want {
		t.Errorf("leaves = %q, want %q", got, want)
	}
	if FirstLeaf(g.Find("payload")).Name != "name" {
		t.Error("FirstLeaf(payload) wrong")
	}
}

func TestContributingLeaves(t *testing.T) {
	g := sampleGraph(t)
	ls := g.ContributingLeaves("plen")
	if len(ls) != 1 || ls[0].Name != "plen" {
		t.Fatalf("ContributingLeaves(plen) = %v", ls)
	}
	// After a split, the combine sequence holds provenance and both
	// halves contribute.
	old := g.Find("plen")
	comb := &Node{
		Name: "plen$c", Kind: Sequence, Boundary: Boundary{Kind: Delegated},
		Origin: Origin{Name: "plen", Role: RoleWhole},
		Enc:    EncUint, AutoFill: true,
		Comb: &Combine{Kind: CombAdd, Width: 2},
		Children: []*Node{
			{Name: "plen$1", Kind: Terminal, Enc: EncUint, Boundary: fixed(2), Origin: Origin{Name: "plen", Role: RoleSplitLeft}},
			{Name: "plen$2", Kind: Terminal, Enc: EncUint, Boundary: fixed(2), Origin: Origin{Name: "plen", Role: RoleSplitRight}},
		},
	}
	if err := g.Replace(old, comb); err != nil {
		t.Fatal(err)
	}
	if err := g.Validate(); err != nil {
		t.Fatalf("graph after split invalid: %v", err)
	}
	ls = g.ContributingLeaves("plen")
	if len(ls) != 2 {
		t.Fatalf("ContributingLeaves after split = %d leaves", len(ls))
	}
}

func TestInsideDelimitedRegion(t *testing.T) {
	g := sampleGraph(t)
	if !InsideDelimitedRegion(g.Find("hname")) {
		t.Error("hname should be inside a delimited region (hdrs repetition)")
	}
	if InsideDelimitedRegion(g.Find("kind")) {
		t.Error("kind should not be inside a delimited region")
	}
}

func TestDotOutput(t *testing.T) {
	g := sampleGraph(t)
	dot := g.Dot()
	for _, want := range []string{"digraph", `"hname"`, "style=dashed", `"items" -> "item"`} {
		if !strings.Contains(dot, want) {
			t.Errorf("Dot output missing %q", want)
		}
	}
}

func TestKindAndBoundaryStrings(t *testing.T) {
	if Terminal.String() != "Te" || Sequence.String() != "S" || Tabular.String() != "Ta" ||
		Optional.String() != "O" || Repetition.String() != "R" {
		t.Error("Kind notation mismatch with the paper")
	}
	if fixed(3).String() != "F(3)" || length("x").String() != "L(x)" {
		t.Error("Boundary notation mismatch")
	}
	if (Boundary{Kind: Delegated}).String() != "Dgt" || (Boundary{Kind: End}).String() != "E" {
		t.Error("Boundary notation mismatch")
	}
}
