package graph

// StaticSize returns the byte size of the node's serialization when that
// size is the same for every compliant AST, and ok=false otherwise.
//
// It is used by transformations that must pre-compute the extent of a
// region before parsing it (ReadFromEnd, RepSplit).
func StaticSize(n *Node) (size int, ok bool) {
	switch n.Kind {
	case Terminal:
		if n.Boundary.Kind == Fixed {
			return n.Boundary.Size, true
		}
		return 0, false
	case Sequence:
		total := 0
		for _, c := range n.Children {
			s, sok := StaticSize(c)
			if !sok {
				return 0, false
			}
			total += s
		}
		if n.Boundary.Kind == Delimited {
			total += len(n.Boundary.Delim)
		}
		return total, true
	case Optional, Repetition, Tabular:
		// Presence / repetition count varies between ASTs.
		return 0, false
	default:
		return 0, false
	}
}

// ExtentComputable reports whether a parser can determine the byte extent
// of the node's region without parsing its content: either the size is
// static, the node is Length-bounded, or the node extends to the end of
// the enclosing region.
func ExtentComputable(n *Node) bool {
	if _, ok := StaticSize(n); ok {
		return true
	}
	switch n.Boundary.Kind {
	case Length, End:
		return true
	default:
		return false
	}
}

// Leaves returns the Terminal descendants of n (including n itself when it
// is a Terminal) in serialization order.
func Leaves(n *Node) []*Node {
	var out []*Node
	var rec func(*Node)
	rec = func(cur *Node) {
		if cur.IsLeaf() {
			out = append(out, cur)
			return
		}
		for _, c := range cur.Children {
			rec(c)
		}
	}
	rec(n)
	return out
}

// FirstLeaf returns the first Terminal encountered in serialization order
// under n, or nil when n has no Terminal descendant.
func FirstLeaf(n *Node) *Node {
	leaves := Leaves(n)
	if len(leaves) == 0 {
		return nil
	}
	return leaves[0]
}

// ContributingLeaves returns every Terminal whose parsed bytes are needed
// to evaluate the value of the original node named origName: all leaves
// under the RoleWhole node for that name.
func (g *Graph) ContributingLeaves(origName string) []*Node {
	whole := g.FindOriginal(origName)
	if whole == nil {
		return nil
	}
	return Leaves(whole)
}

// ParseOrder returns all nodes in the order the parser visits them, which
// for this model equals depth-first pre-order.
func (g *Graph) ParseOrder() []*Node {
	return g.Nodes()
}

// parseIndex maps each node to its position in parse order.
func (g *Graph) parseIndex() map[*Node]int {
	idx := make(map[*Node]int)
	for i, n := range g.ParseOrder() {
		idx[n] = i
	}
	return idx
}

// Ancestors returns the chain of ancestors of n from parent to root.
func Ancestors(n *Node) []*Node {
	var out []*Node
	for cur := n.Parent; cur != nil; cur = cur.Parent {
		out = append(out, cur)
	}
	return out
}

// InsideDelimitedRegion reports whether any ancestor of n determines its
// extent with a delimiter scan (Delimited boundary), which makes
// byte-reversal of n unsafe.
func InsideDelimitedRegion(n *Node) bool {
	for _, a := range Ancestors(n) {
		if a.Boundary.Kind == Delimited {
			return true
		}
	}
	return false
}
