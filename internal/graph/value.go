package graph

import (
	"fmt"
	"strconv"
)

// Val is a terminal value in user space: either an unsigned integer
// (EncUint, EncASCII) or raw bytes (EncBytes).
type Val struct {
	U       uint64
	B       []byte
	IsBytes bool
}

// UintVal wraps an integer value.
func UintVal(u uint64) Val { return Val{U: u} }

// BytesVal wraps a byte value. The slice is not copied.
func BytesVal(b []byte) Val { return Val{B: b, IsBytes: true} }

// Equal compares two values.
func (v Val) Equal(o Val) bool {
	if v.IsBytes != o.IsBytes {
		return false
	}
	if v.IsBytes {
		return string(v.B) == string(o.B)
	}
	return v.U == o.U
}

func (v Val) String() string {
	if v.IsBytes {
		return fmt.Sprintf("%q", string(v.B))
	}
	return strconv.FormatUint(v.U, 10)
}

// maskFor returns the modulus mask for a byte width.
func maskFor(width int) uint64 {
	if width >= 8 {
		return ^uint64(0)
	}
	return (uint64(1) << (8 * width)) - 1
}

// EncodeUintBE encodes u big-endian on width bytes.
func EncodeUintBE(u uint64, width int) []byte {
	out := make([]byte, width)
	for i := width - 1; i >= 0; i-- {
		out[i] = byte(u)
		u >>= 8
	}
	return out
}

// DecodeUintBE decodes a big-endian unsigned integer.
func DecodeUintBE(b []byte) uint64 {
	var u uint64
	for _, c := range b {
		u = u<<8 | uint64(c)
	}
	return u
}

// EncodeTerminal converts a user value to wire bytes for a terminal with
// encoding enc and (for EncUint) fixed width.
func EncodeTerminal(enc Enc, width int, v Val) ([]byte, error) {
	switch enc {
	case EncBytes:
		if !v.IsBytes {
			return nil, fmt.Errorf("value %v is not bytes", v)
		}
		return append([]byte(nil), v.B...), nil
	case EncUint:
		if v.IsBytes {
			return nil, fmt.Errorf("value %v is not an integer", v)
		}
		if width < 8 && v.U > maskFor(width) {
			return nil, fmt.Errorf("value %d overflows %d-byte field", v.U, width)
		}
		return EncodeUintBE(v.U, width), nil
	case EncASCII:
		if v.IsBytes {
			return nil, fmt.Errorf("value %v is not an integer", v)
		}
		return []byte(strconv.FormatUint(v.U, 10)), nil
	default:
		return nil, fmt.Errorf("unknown encoding %v", enc)
	}
}

// DecodeTerminal converts wire bytes back to a user value.
func DecodeTerminal(enc Enc, b []byte) (Val, error) {
	switch enc {
	case EncBytes:
		return BytesVal(append([]byte(nil), b...)), nil
	case EncUint:
		if len(b) == 0 || len(b) > 8 {
			return Val{}, fmt.Errorf("uint field with %d bytes", len(b))
		}
		return UintVal(DecodeUintBE(b)), nil
	case EncASCII:
		u, err := strconv.ParseUint(string(b), 10, 64)
		if err != nil {
			return Val{}, fmt.Errorf("ascii integer %q: %w", string(b), err)
		}
		return UintVal(u), nil
	default:
		return Val{}, fmt.Errorf("unknown encoding %v", enc)
	}
}

// ApplyOp transforms v in the encode (user -> wire) direction.
func ApplyOp(op ValueOp, width int, v Val) (Val, error) {
	switch op.Kind {
	case OpAdd, OpSub, OpXor:
		if v.IsBytes {
			return Val{}, fmt.Errorf("integer op %v on bytes value", op.Kind)
		}
		mask := maskFor(width)
		switch op.Kind {
		case OpAdd:
			return UintVal((v.U + op.K) & mask), nil
		case OpSub:
			return UintVal((v.U - op.K) & mask), nil
		default:
			return UintVal((v.U ^ op.K) & mask), nil
		}
	case OpByteAdd, OpByteXor:
		if !v.IsBytes {
			return Val{}, fmt.Errorf("byte op %v on integer value", op.Kind)
		}
		if len(op.KB) == 0 {
			return Val{}, fmt.Errorf("byte op %v with empty key", op.Kind)
		}
		out := make([]byte, len(v.B))
		for i, c := range v.B {
			k := op.KB[i%len(op.KB)]
			if op.Kind == OpByteAdd {
				out[i] = c + k
			} else {
				out[i] = c ^ k
			}
		}
		return BytesVal(out), nil
	default:
		return Val{}, fmt.Errorf("unknown op %v", op.Kind)
	}
}

// InvertOp transforms v in the decode (wire -> user) direction.
func InvertOp(op ValueOp, width int, v Val) (Val, error) {
	inv := op
	switch op.Kind {
	case OpAdd:
		inv.Kind = OpSub
	case OpSub:
		inv.Kind = OpAdd
	case OpXor, OpByteXor:
		// self-inverse
	case OpByteAdd:
		inv.KB = make([]byte, len(op.KB))
		for i, k := range op.KB {
			inv.KB[i] = -k
		}
	default:
		return Val{}, fmt.Errorf("unknown op %v", op.Kind)
	}
	return ApplyOp(inv, width, v)
}

// ApplyOps runs the full encode-direction pipeline.
func ApplyOps(ops []ValueOp, width int, v Val) (Val, error) {
	var err error
	for _, op := range ops {
		if v, err = ApplyOp(op, width, v); err != nil {
			return Val{}, err
		}
	}
	return v, nil
}

// InvertOps runs the full decode-direction pipeline (reverse order).
func InvertOps(ops []ValueOp, width int, v Val) (Val, error) {
	var err error
	for i := len(ops) - 1; i >= 0; i-- {
		if v, err = InvertOp(ops[i], width, v); err != nil {
			return Val{}, err
		}
	}
	return v, nil
}

// CombineVals recombines the two halves of a split into the original
// (post-Ops) value, in the decode direction.
func CombineVals(c Combine, left, right Val) (Val, error) {
	switch c.Kind {
	case CombAdd, CombSub, CombXor:
		if left.IsBytes || right.IsBytes {
			return Val{}, fmt.Errorf("arithmetic combine on bytes halves")
		}
		mask := maskFor(c.Width)
		switch c.Kind {
		case CombAdd:
			return UintVal((left.U + right.U) & mask), nil
		case CombSub:
			return UintVal((left.U - right.U) & mask), nil
		default:
			return UintVal((left.U ^ right.U) & mask), nil
		}
	case CombCat:
		if !left.IsBytes || !right.IsBytes {
			return Val{}, fmt.Errorf("concatenation combine on integer halves")
		}
		out := make([]byte, 0, len(left.B)+len(right.B))
		out = append(out, left.B...)
		out = append(out, right.B...)
		return BytesVal(out), nil
	default:
		return Val{}, fmt.Errorf("unknown combine %v", c.Kind)
	}
}

// SplitVals decomposes v into two halves in the encode direction, using
// random material r (for arithmetic splits). CombineVals inverts it:
// CombineVals(c, l, r) == v for every r.
func SplitVals(c Combine, v Val, random uint64) (left, right Val, err error) {
	switch c.Kind {
	case CombAdd:
		if v.IsBytes {
			return Val{}, Val{}, fmt.Errorf("arithmetic split on bytes value")
		}
		mask := maskFor(c.Width)
		l := random & mask
		return UintVal(l), UintVal((v.U - l) & mask), nil
	case CombSub:
		if v.IsBytes {
			return Val{}, Val{}, fmt.Errorf("arithmetic split on bytes value")
		}
		mask := maskFor(c.Width)
		r := random & mask
		return UintVal((v.U + r) & mask), UintVal(r), nil
	case CombXor:
		if v.IsBytes {
			return Val{}, Val{}, fmt.Errorf("arithmetic split on bytes value")
		}
		mask := maskFor(c.Width)
		l := random & mask
		return UintVal(l), UintVal((v.U ^ l) & mask), nil
	case CombCat:
		if !v.IsBytes {
			return Val{}, Val{}, fmt.Errorf("concatenation split on integer value")
		}
		if len(v.B) < c.SplitAt {
			return Val{}, Val{}, fmt.Errorf("value of %d bytes too short to split at %d", len(v.B), c.SplitAt)
		}
		return BytesVal(append([]byte(nil), v.B[:c.SplitAt]...)),
			BytesVal(append([]byte(nil), v.B[c.SplitAt:]...)), nil
	default:
		return Val{}, Val{}, fmt.Errorf("unknown combine %v", c.Kind)
	}
}
