package graph

import (
	"fmt"
	"strings"
)

// Dot renders the graph in Graphviz DOT format, using the paper's
// notation for node kinds and boundaries (figure 3). Reference edges
// (Length, Counter, presence predicates) are drawn dashed.
func (g *Graph) Dot() string {
	var b strings.Builder
	fmt.Fprintf(&b, "digraph %q {\n", g.ProtocolName)
	b.WriteString("  node [shape=box, fontsize=10];\n")
	g.Walk(func(n *Node) bool {
		label := fmt.Sprintf("%s\\n%v %v", n.Name, n.Kind, n.Boundary)
		var marks []string
		if n.Reversed {
			marks = append(marks, "rev")
		}
		if n.Comb != nil {
			marks = append(marks, "comb:"+n.Comb.Kind.String())
		}
		if n.Pair != nil {
			marks = append(marks, "pair")
		}
		if n.AutoFill {
			marks = append(marks, "auto")
		}
		if len(n.Ops) > 0 {
			marks = append(marks, fmt.Sprintf("ops:%d", len(n.Ops)))
		}
		if len(marks) > 0 {
			label += "\\n[" + strings.Join(marks, ",") + "]"
		}
		fmt.Fprintf(&b, "  %q [label=\"%s\"];\n", n.Name, label)
		for _, c := range n.Children {
			fmt.Fprintf(&b, "  %q -> %q;\n", n.Name, c.Name)
		}
		if ref := n.Boundary.Ref; ref != "" {
			if t := g.FindOriginal(ref); t != nil {
				fmt.Fprintf(&b, "  %q -> %q [style=dashed, label=%q];\n", n.Name, t.Name, n.Boundary.Kind.String())
			}
		}
		if n.Kind == Optional {
			if t := g.FindOriginal(n.Cond.Ref); t != nil {
				fmt.Fprintf(&b, "  %q -> %q [style=dashed, label=\"when\"];\n", n.Name, t.Name)
			}
		}
		return true
	})
	b.WriteString("}\n")
	return b.String()
}
