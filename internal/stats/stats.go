// Package stats provides the descriptive statistics used by the
// experiment harness: avg[min,max] aggregates (the cell format of the
// paper's tables III and IV) and least-squares linear regression with the
// Pearson correlation coefficient (the fitted lines of figures 4 and 5).
package stats

import (
	"errors"
	"fmt"
	"math"
	"sort"
)

// ErrDegenerate is returned by Fit when the x values carry no spread (a
// single-level campaign where every run applies the same transformation
// count, for example): no line can be fitted, but the condition is a
// property of the data rather than a failure, so callers that can render
// the raw scatter without the fit check for it with errors.Is.
var ErrDegenerate = errors.New("stats: degenerate x values")

// Agg accumulates samples and reports average, minimum and maximum.
type Agg struct {
	n        int
	sum      float64
	min, max float64
}

// Add records one sample.
func (a *Agg) Add(v float64) {
	if a.n == 0 || v < a.min {
		a.min = v
	}
	if a.n == 0 || v > a.max {
		a.max = v
	}
	a.n++
	a.sum += v
}

// N returns the sample count.
func (a *Agg) N() int { return a.n }

// Avg returns the mean (0 when empty).
func (a *Agg) Avg() float64 {
	if a.n == 0 {
		return 0
	}
	return a.sum / float64(a.n)
}

// Min returns the minimum (0 when empty).
func (a *Agg) Min() float64 { return a.min }

// Max returns the maximum (0 when empty).
func (a *Agg) Max() float64 { return a.max }

// Cell renders the paper's "avg[min; max]" cell with prec decimals.
func (a *Agg) Cell(prec int) string {
	return fmt.Sprintf("%.*f[%.*f; %.*f]", prec, a.Avg(), prec, a.min, prec, a.max)
}

// CellInt renders the cell with integer rounding.
func (a *Agg) CellInt() string {
	return fmt.Sprintf("%.0f[%.0f; %.0f]", a.Avg(), a.min, a.max)
}

// LinReg is a least-squares fit y = Slope*x + Intercept.
type LinReg struct {
	Slope     float64
	Intercept float64
	// R is the Pearson correlation coefficient.
	R float64
	N int
}

// Fit computes the least-squares regression of y on x.
func Fit(x, y []float64) (LinReg, error) {
	if len(x) != len(y) {
		return LinReg{}, fmt.Errorf("stats: %d x-values vs %d y-values", len(x), len(y))
	}
	n := float64(len(x))
	if len(x) < 2 {
		return LinReg{}, fmt.Errorf("stats: need at least 2 points, have %d", len(x))
	}
	var sx, sy, sxx, syy, sxy float64
	for i := range x {
		sx += x[i]
		sy += y[i]
		sxx += x[i] * x[i]
		syy += y[i] * y[i]
		sxy += x[i] * y[i]
	}
	dx := n*sxx - sx*sx
	if dx == 0 {
		return LinReg{}, ErrDegenerate
	}
	slope := (n*sxy - sx*sy) / dx
	intercept := (sy - slope*sx) / n
	dy := n*syy - sy*sy
	r := 0.0
	if dy > 0 {
		r = (n*sxy - sx*sy) / math.Sqrt(dx*dy)
	}
	return LinReg{Slope: slope, Intercept: intercept, R: r, N: len(x)}, nil
}

// At evaluates the fitted line.
func (l LinReg) At(x float64) float64 { return l.Slope*x + l.Intercept }

func (l LinReg) String() string {
	return fmt.Sprintf("y = %.6g*x + %.6g (r = %.4f, n = %d)", l.Slope, l.Intercept, l.R, l.N)
}

// Percentile returns the p-th percentile (0..100) of values, by nearest
// rank on a sorted copy.
func Percentile(values []float64, p float64) float64 {
	if len(values) == 0 {
		return 0
	}
	sorted := append([]float64(nil), values...)
	sort.Float64s(sorted)
	if p <= 0 {
		return sorted[0]
	}
	if p >= 100 {
		return sorted[len(sorted)-1]
	}
	rank := p / 100 * float64(len(sorted)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return sorted[lo]
	}
	frac := rank - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// Mean returns the arithmetic mean.
func Mean(values []float64) float64 {
	if len(values) == 0 {
		return 0
	}
	s := 0.0
	for _, v := range values {
		s += v
	}
	return s / float64(len(values))
}

// KS returns the two-sample Kolmogorov–Smirnov statistic: the largest
// absolute gap between the empirical CDFs of a and b, in [0, 1]. 0 means
// the samples draw from indistinguishable distributions, 1 means they
// never overlap. Either sample empty yields 0 (nothing to compare).
func KS(a, b []float64) float64 {
	if len(a) == 0 || len(b) == 0 {
		return 0
	}
	sa := append([]float64(nil), a...)
	sb := append([]float64(nil), b...)
	sort.Float64s(sa)
	sort.Float64s(sb)
	var i, j int
	var d float64
	for i < len(sa) && j < len(sb) {
		// Advance whichever CDF steps next; on ties advance both so the
		// gap is measured between steps, never mid-step.
		switch {
		case sa[i] < sb[j]:
			i++
		case sb[j] < sa[i]:
			j++
		default:
			v := sa[i]
			for i < len(sa) && sa[i] == v {
				i++
			}
			for j < len(sb) && sb[j] == v {
				j++
			}
		}
		gap := math.Abs(float64(i)/float64(len(sa)) - float64(j)/float64(len(sb)))
		if gap > d {
			d = gap
		}
	}
	return d
}

// ChiSquared returns Pearson's χ² statistic between observed and
// expected bin counts, skipping empty expected bins (an observation in a
// bin the model deems impossible contributes the observation itself, the
// conventional correction that keeps the statistic finite). The two
// slices must align bin-for-bin.
func ChiSquared(obs, expected []float64) float64 {
	n := len(obs)
	if len(expected) < n {
		n = len(expected)
	}
	var x2 float64
	for i := 0; i < n; i++ {
		if expected[i] <= 0 {
			x2 += obs[i]
			continue
		}
		d := obs[i] - expected[i]
		x2 += d * d / expected[i]
	}
	return x2
}

// Entropy returns the Shannon entropy, in bits, of the discrete
// distribution given by non-negative counts (or weights); zero counts
// contribute nothing. An empty or all-zero histogram has entropy 0.
func Entropy(counts []float64) float64 {
	var total float64
	for _, c := range counts {
		if c > 0 {
			total += c
		}
	}
	if total == 0 {
		return 0
	}
	var h float64
	for _, c := range counts {
		if c <= 0 {
			continue
		}
		p := c / total
		h -= p * math.Log2(p)
	}
	return h
}

// StdDev returns the population standard deviation.
func StdDev(values []float64) float64 {
	if len(values) < 2 {
		return 0
	}
	m := Mean(values)
	s := 0.0
	for _, v := range values {
		d := v - m
		s += d * d
	}
	return math.Sqrt(s / float64(len(values)))
}
