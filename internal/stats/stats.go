// Package stats provides the descriptive statistics used by the
// experiment harness: avg[min,max] aggregates (the cell format of the
// paper's tables III and IV) and least-squares linear regression with the
// Pearson correlation coefficient (the fitted lines of figures 4 and 5).
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Agg accumulates samples and reports average, minimum and maximum.
type Agg struct {
	n        int
	sum      float64
	min, max float64
}

// Add records one sample.
func (a *Agg) Add(v float64) {
	if a.n == 0 || v < a.min {
		a.min = v
	}
	if a.n == 0 || v > a.max {
		a.max = v
	}
	a.n++
	a.sum += v
}

// N returns the sample count.
func (a *Agg) N() int { return a.n }

// Avg returns the mean (0 when empty).
func (a *Agg) Avg() float64 {
	if a.n == 0 {
		return 0
	}
	return a.sum / float64(a.n)
}

// Min returns the minimum (0 when empty).
func (a *Agg) Min() float64 { return a.min }

// Max returns the maximum (0 when empty).
func (a *Agg) Max() float64 { return a.max }

// Cell renders the paper's "avg[min; max]" cell with prec decimals.
func (a *Agg) Cell(prec int) string {
	return fmt.Sprintf("%.*f[%.*f; %.*f]", prec, a.Avg(), prec, a.min, prec, a.max)
}

// CellInt renders the cell with integer rounding.
func (a *Agg) CellInt() string {
	return fmt.Sprintf("%.0f[%.0f; %.0f]", a.Avg(), a.min, a.max)
}

// LinReg is a least-squares fit y = Slope*x + Intercept.
type LinReg struct {
	Slope     float64
	Intercept float64
	// R is the Pearson correlation coefficient.
	R float64
	N int
}

// Fit computes the least-squares regression of y on x.
func Fit(x, y []float64) (LinReg, error) {
	if len(x) != len(y) {
		return LinReg{}, fmt.Errorf("stats: %d x-values vs %d y-values", len(x), len(y))
	}
	n := float64(len(x))
	if len(x) < 2 {
		return LinReg{}, fmt.Errorf("stats: need at least 2 points, have %d", len(x))
	}
	var sx, sy, sxx, syy, sxy float64
	for i := range x {
		sx += x[i]
		sy += y[i]
		sxx += x[i] * x[i]
		syy += y[i] * y[i]
		sxy += x[i] * y[i]
	}
	dx := n*sxx - sx*sx
	if dx == 0 {
		return LinReg{}, fmt.Errorf("stats: degenerate x values")
	}
	slope := (n*sxy - sx*sy) / dx
	intercept := (sy - slope*sx) / n
	dy := n*syy - sy*sy
	r := 0.0
	if dy > 0 {
		r = (n*sxy - sx*sy) / math.Sqrt(dx*dy)
	}
	return LinReg{Slope: slope, Intercept: intercept, R: r, N: len(x)}, nil
}

// At evaluates the fitted line.
func (l LinReg) At(x float64) float64 { return l.Slope*x + l.Intercept }

func (l LinReg) String() string {
	return fmt.Sprintf("y = %.6g*x + %.6g (r = %.4f, n = %d)", l.Slope, l.Intercept, l.R, l.N)
}

// Percentile returns the p-th percentile (0..100) of values, by nearest
// rank on a sorted copy.
func Percentile(values []float64, p float64) float64 {
	if len(values) == 0 {
		return 0
	}
	sorted := append([]float64(nil), values...)
	sort.Float64s(sorted)
	if p <= 0 {
		return sorted[0]
	}
	if p >= 100 {
		return sorted[len(sorted)-1]
	}
	rank := p / 100 * float64(len(sorted)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return sorted[lo]
	}
	frac := rank - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// Mean returns the arithmetic mean.
func Mean(values []float64) float64 {
	if len(values) == 0 {
		return 0
	}
	s := 0.0
	for _, v := range values {
		s += v
	}
	return s / float64(len(values))
}

// StdDev returns the population standard deviation.
func StdDev(values []float64) float64 {
	if len(values) < 2 {
		return 0
	}
	m := Mean(values)
	s := 0.0
	for _, v := range values {
		d := v - m
		s += d * d
	}
	return math.Sqrt(s / float64(len(values)))
}
