package stats

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestAgg(t *testing.T) {
	var a Agg
	for _, v := range []float64{3, 1, 2} {
		a.Add(v)
	}
	if a.N() != 3 || a.Avg() != 2 || a.Min() != 1 || a.Max() != 3 {
		t.Errorf("agg = n%d avg%v min%v max%v", a.N(), a.Avg(), a.Min(), a.Max())
	}
	if got := a.Cell(1); got != "2.0[1.0; 3.0]" {
		t.Errorf("Cell = %q", got)
	}
	if got := a.CellInt(); got != "2[1; 3]" {
		t.Errorf("CellInt = %q", got)
	}
	var empty Agg
	if empty.Avg() != 0 || empty.N() != 0 {
		t.Error("empty agg misbehaves")
	}
}

func TestFitPerfectLine(t *testing.T) {
	x := []float64{1, 2, 3, 4, 5}
	y := []float64{3, 5, 7, 9, 11} // y = 2x + 1
	l, err := Fit(x, y)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(l.Slope-2) > 1e-9 || math.Abs(l.Intercept-1) > 1e-9 {
		t.Errorf("fit = %v", l)
	}
	if math.Abs(l.R-1) > 1e-9 {
		t.Errorf("r = %v, want 1", l.R)
	}
	if math.Abs(l.At(10)-21) > 1e-9 {
		t.Errorf("At(10) = %v", l.At(10))
	}
	if !strings.Contains(l.String(), "r = 1.0000") {
		t.Errorf("String = %q", l.String())
	}
}

func TestFitNegativeCorrelation(t *testing.T) {
	x := []float64{0, 1, 2, 3}
	y := []float64{9, 6, 3, 0}
	l, err := Fit(x, y)
	if err != nil {
		t.Fatal(err)
	}
	if l.Slope >= 0 || math.Abs(l.R+1) > 1e-9 {
		t.Errorf("fit = %v", l)
	}
}

func TestFitErrors(t *testing.T) {
	if _, err := Fit([]float64{1}, []float64{1}); err == nil {
		t.Error("single point accepted")
	}
	if _, err := Fit([]float64{1, 2}, []float64{1}); err == nil {
		t.Error("length mismatch accepted")
	}
	if _, err := Fit([]float64{2, 2, 2}, []float64{1, 2, 3}); err == nil {
		t.Error("degenerate x accepted")
	}
}

// TestFitRecoversLine is a property test: fitting y = a*x + b on noise-free
// data recovers a and b for arbitrary parameters.
func TestFitRecoversLine(t *testing.T) {
	f := func(a8, b8 int8) bool {
		a, b := float64(a8), float64(b8)
		x := []float64{0, 1, 2, 3, 4, 7, 11}
		y := make([]float64, len(x))
		for i := range x {
			y[i] = a*x[i] + b
		}
		l, err := Fit(x, y)
		if err != nil {
			return false
		}
		return math.Abs(l.Slope-a) < 1e-6 && math.Abs(l.Intercept-b) < 1e-6
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPercentile(t *testing.T) {
	vals := []float64{5, 1, 3, 2, 4}
	if got := Percentile(vals, 0); got != 1 {
		t.Errorf("p0 = %v", got)
	}
	if got := Percentile(vals, 100); got != 5 {
		t.Errorf("p100 = %v", got)
	}
	if got := Percentile(vals, 50); got != 3 {
		t.Errorf("p50 = %v", got)
	}
	if got := Percentile(nil, 50); got != 0 {
		t.Errorf("empty = %v", got)
	}
	// Input must not be mutated.
	if vals[0] != 5 {
		t.Error("Percentile mutated its input")
	}
}

func TestMeanStdDev(t *testing.T) {
	if Mean([]float64{2, 4, 6}) != 4 {
		t.Error("mean wrong")
	}
	if got := StdDev([]float64{2, 4, 6}); math.Abs(got-math.Sqrt(8.0/3.0)) > 1e-9 {
		t.Errorf("stddev = %v", got)
	}
	if Mean(nil) != 0 || StdDev(nil) != 0 {
		t.Error("empty inputs misbehave")
	}
}
