package stats

import (
	"errors"
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestAgg(t *testing.T) {
	var a Agg
	for _, v := range []float64{3, 1, 2} {
		a.Add(v)
	}
	if a.N() != 3 || a.Avg() != 2 || a.Min() != 1 || a.Max() != 3 {
		t.Errorf("agg = n%d avg%v min%v max%v", a.N(), a.Avg(), a.Min(), a.Max())
	}
	if got := a.Cell(1); got != "2.0[1.0; 3.0]" {
		t.Errorf("Cell = %q", got)
	}
	if got := a.CellInt(); got != "2[1; 3]" {
		t.Errorf("CellInt = %q", got)
	}
	var empty Agg
	if empty.Avg() != 0 || empty.N() != 0 {
		t.Error("empty agg misbehaves")
	}
}

func TestFitPerfectLine(t *testing.T) {
	x := []float64{1, 2, 3, 4, 5}
	y := []float64{3, 5, 7, 9, 11} // y = 2x + 1
	l, err := Fit(x, y)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(l.Slope-2) > 1e-9 || math.Abs(l.Intercept-1) > 1e-9 {
		t.Errorf("fit = %v", l)
	}
	if math.Abs(l.R-1) > 1e-9 {
		t.Errorf("r = %v, want 1", l.R)
	}
	if math.Abs(l.At(10)-21) > 1e-9 {
		t.Errorf("At(10) = %v", l.At(10))
	}
	if !strings.Contains(l.String(), "r = 1.0000") {
		t.Errorf("String = %q", l.String())
	}
}

func TestFitNegativeCorrelation(t *testing.T) {
	x := []float64{0, 1, 2, 3}
	y := []float64{9, 6, 3, 0}
	l, err := Fit(x, y)
	if err != nil {
		t.Fatal(err)
	}
	if l.Slope >= 0 || math.Abs(l.R+1) > 1e-9 {
		t.Errorf("fit = %v", l)
	}
}

func TestFitErrors(t *testing.T) {
	if _, err := Fit([]float64{1}, []float64{1}); err == nil {
		t.Error("single point accepted")
	}
	if _, err := Fit([]float64{1, 2}, []float64{1}); err == nil {
		t.Error("length mismatch accepted")
	}
	if _, err := Fit([]float64{2, 2, 2}, []float64{1, 2, 3}); err == nil {
		t.Error("degenerate x accepted")
	}
}

// TestFitDegenerateSentinel pins the contract callers rely on to render
// a fit-less scatter: constant x values surface ErrDegenerate, and only
// constant x values do.
func TestFitDegenerateSentinel(t *testing.T) {
	_, err := Fit([]float64{3, 3, 3, 3}, []float64{1, 2, 3, 4})
	if !errors.Is(err, ErrDegenerate) {
		t.Errorf("constant x: err = %v, want ErrDegenerate", err)
	}
	if _, err := Fit([]float64{1}, []float64{1}); errors.Is(err, ErrDegenerate) {
		t.Error("too-few-points error must not be ErrDegenerate")
	}
	if _, err := Fit([]float64{1, 2}, []float64{1}); errors.Is(err, ErrDegenerate) {
		t.Error("length-mismatch error must not be ErrDegenerate")
	}
}

// TestFitRecoversLine is a property test: fitting y = a*x + b on noise-free
// data recovers a and b for arbitrary parameters.
func TestFitRecoversLine(t *testing.T) {
	f := func(a8, b8 int8) bool {
		a, b := float64(a8), float64(b8)
		x := []float64{0, 1, 2, 3, 4, 7, 11}
		y := make([]float64, len(x))
		for i := range x {
			y[i] = a*x[i] + b
		}
		l, err := Fit(x, y)
		if err != nil {
			return false
		}
		return math.Abs(l.Slope-a) < 1e-6 && math.Abs(l.Intercept-b) < 1e-6
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPercentile(t *testing.T) {
	vals := []float64{5, 1, 3, 2, 4}
	if got := Percentile(vals, 0); got != 1 {
		t.Errorf("p0 = %v", got)
	}
	if got := Percentile(vals, 100); got != 5 {
		t.Errorf("p100 = %v", got)
	}
	if got := Percentile(vals, 50); got != 3 {
		t.Errorf("p50 = %v", got)
	}
	if got := Percentile(nil, 50); got != 0 {
		t.Errorf("empty = %v", got)
	}
	// Input must not be mutated.
	if vals[0] != 5 {
		t.Error("Percentile mutated its input")
	}
}

func TestKS(t *testing.T) {
	same := []float64{1, 2, 3, 4, 5}
	if got := KS(same, same); got != 0 {
		t.Errorf("identical samples: KS = %v, want 0", got)
	}
	// Disjoint supports: the CDFs are a full step apart.
	if got := KS([]float64{1, 2, 3}, []float64{10, 11, 12}); got != 1 {
		t.Errorf("disjoint samples: KS = %v, want 1", got)
	}
	// Half-overlapping: {0,0,1,1} vs {1,1,2,2} — at v=0 the gap is 0.5.
	if got := KS([]float64{0, 0, 1, 1}, []float64{1, 1, 2, 2}); math.Abs(got-0.5) > 1e-9 {
		t.Errorf("half overlap: KS = %v, want 0.5", got)
	}
	if KS(nil, same) != 0 || KS(same, nil) != 0 {
		t.Error("empty samples should compare as indistinguishable")
	}
	// Inputs must not be mutated (KS sorts copies).
	in := []float64{3, 1, 2}
	KS(in, []float64{5, 4})
	if in[0] != 3 {
		t.Error("KS mutated its input")
	}
}

func TestChiSquared(t *testing.T) {
	if got := ChiSquared([]float64{10, 20, 30}, []float64{10, 20, 30}); got != 0 {
		t.Errorf("matching histograms: χ² = %v, want 0", got)
	}
	// One bin off by 10 against expected 10: contributes 100/10 = 10.
	if got := ChiSquared([]float64{20, 20}, []float64{10, 20}); math.Abs(got-10) > 1e-9 {
		t.Errorf("χ² = %v, want 10", got)
	}
	// Observation in a zero-expected bin contributes the observation.
	if got := ChiSquared([]float64{5}, []float64{0}); got != 5 {
		t.Errorf("zero-expected bin: χ² = %v, want 5", got)
	}
}

func TestEntropy(t *testing.T) {
	if got := Entropy([]float64{8, 8}); math.Abs(got-1) > 1e-9 {
		t.Errorf("uniform 2 bins: H = %v, want 1", got)
	}
	if got := Entropy([]float64{1, 1, 1, 1}); math.Abs(got-2) > 1e-9 {
		t.Errorf("uniform 4 bins: H = %v, want 2", got)
	}
	if got := Entropy([]float64{42}); got != 0 {
		t.Errorf("single bin: H = %v, want 0", got)
	}
	if Entropy(nil) != 0 || Entropy([]float64{0, 0}) != 0 {
		t.Error("empty histogram should have zero entropy")
	}
}

func TestMeanStdDev(t *testing.T) {
	if Mean([]float64{2, 4, 6}) != 4 {
		t.Error("mean wrong")
	}
	if got := StdDev([]float64{2, 4, 6}); math.Abs(got-math.Sqrt(8.0/3.0)) > 1e-9 {
		t.Errorf("stddev = %v", got)
	}
	if Mean(nil) != 0 || StdDev(nil) != 0 {
		t.Error("empty inputs misbehave")
	}
}
